// RoutingPolicy edge cases under replica failure/removal: the target set
// may shrink, grow, collapse to one instance, or empty out entirely
// between pick() calls, and every policy must stay in range (empty set ->
// sentinel 0, never dereferenced by contract).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "asu/node.hpp"
#include "core/routing.hpp"
#include "sim/sim.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;

namespace {

core::Packet packet(std::uint32_t subset, std::uint32_t seq = 0) {
  core::Packet p;
  p.subset = subset;
  p.seq = seq;
  return p;
}

std::vector<core::RouteTarget> plain_targets(std::size_t k) {
  return std::vector<core::RouteTarget>(k);
}

TEST(RoutingEdge, EmptyTargetSetYieldsSentinelZero) {
  const std::span<const core::RouteTarget> none;
  core::StaticPartitionRouter st(8);
  core::RoundRobinRouter rr;
  core::SimpleRandomizationRouter sr{sim::Rng(1)};
  core::LeastLoadedRouter ll;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(st.pick(packet(i), none), 0u);
    EXPECT_EQ(rr.pick(packet(i), none), 0u);
    EXPECT_EQ(sr.pick(packet(i), none), 0u);
    EXPECT_EQ(ll.pick(packet(i), none), 0u);
  }
}

TEST(RoutingEdge, SingleTargetAlwaysYieldsZero) {
  const auto one = plain_targets(1);
  core::StaticPartitionRouter st(8);
  core::RoundRobinRouter rr;
  core::SimpleRandomizationRouter sr{sim::Rng(1)};
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(st.pick(packet(s), one), 0u);
    EXPECT_EQ(rr.pick(packet(s), one), 0u);
    EXPECT_EQ(sr.pick(packet(s), one), 0u);
  }
}

TEST(RoutingEdge, PoliciesStayInRangeWhenTargetSetShrinksAndGrows) {
  core::StaticPartitionRouter st(16);
  core::RoundRobinRouter rr;
  core::SimpleRandomizationRouter sr{sim::Rng(7)};
  // 4 replicas -> failure drops to 2 -> recovery to 5 -> collapse to 1.
  for (const std::size_t k : {4u, 2u, 5u, 1u}) {
    const auto targets = plain_targets(k);
    for (std::uint32_t i = 0; i < 32; ++i) {
      EXPECT_LT(st.pick(packet(i % 16, i), targets), k);
      EXPECT_LT(rr.pick(packet(i % 16, i), targets), k);
      EXPECT_LT(sr.pick(packet(i % 16, i), targets), k);
    }
  }
}

TEST(RoutingEdge, SrKeepsCyclingEvenlyAfterResize) {
  core::SimpleRandomizationRouter sr{sim::Rng(3)};
  (void)sr.pick(packet(0), plain_targets(5));  // prime a 5-wide cycle
  // After the shrink the reset cycle must still visit each of the 3
  // remaining instances exactly once per cycle.
  const auto targets = plain_targets(3);
  std::vector<int> count(3, 0);
  for (int i = 0; i < 30; ++i) ++count[sr.pick(packet(0), targets)];
  EXPECT_EQ(count[0], 10);
  EXPECT_EQ(count[1], 10);
  EXPECT_EQ(count[2], 10);
}

TEST(RoutingEdge, LeastLoadedTracksBacklogAfterReplicaRemoval) {
  sim::Engine eng;
  asu::MachineParams mp;
  asu::Node n0(eng, asu::NodeKind::Host, 0, mp);
  asu::Node n1(eng, asu::NodeKind::Host, 1, mp);
  asu::Node n2(eng, asu::NodeKind::Host, 2, mp);
  n0.cpu().post(5.0);
  n1.cpu().post(1.0);
  n2.cpu().post(3.0);

  core::LeastLoadedRouter ll;
  std::vector<core::RouteTarget> all = {{&n0}, {&n1}, {&n2}};
  EXPECT_EQ(ll.pick(packet(0), all), 1u);  // n1 has the least backlog

  // n1 fails and is removed: the policy must fall back to the least
  // loaded survivor, not remember a stale index.
  std::vector<core::RouteTarget> survivors = {{&n0}, {&n2}};
  EXPECT_EQ(ll.pick(packet(0), survivors), 1u);  // n2 (backlog 3 < 5)

  std::vector<core::RouteTarget> last = {{&n0}};
  EXPECT_EQ(ll.pick(packet(0), last), 0u);
}

TEST(RoutingEdge, MakeRouterHandlesEmptyAndSingleForAllKinds) {
  sim::Engine eng;
  asu::MachineParams mp;
  asu::Node node(eng, asu::NodeKind::Host, 0, mp);
  const std::span<const core::RouteTarget> none;
  const std::vector<core::RouteTarget> one = {{&node}};
  for (const auto kind :
       {core::RouterKind::Static, core::RouterKind::RoundRobin,
        core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded,
        core::RouterKind::PowerOfD}) {
    auto r = core::make_router(
        {.kind = kind, .rng = sim::Rng(11), .total_subsets = 4});
    EXPECT_EQ(r->pick(packet(2), none), 0u) << r->name();
    EXPECT_EQ(r->pick(packet(2), one), 0u) << r->name();
  }
}

TEST(RoutingEdge, PowerOfDWithFullSampleIsLeastLoaded) {
  // d >= target count degenerates to an exact arg-min over the probe
  // (first sampled wins ties) — the d -> D limit the mean-field model
  // calls "least loaded". A synthetic probe keeps the targets nodeless.
  const std::vector<double> loads = {5.0, 2.0, 7.0, 2.0};
  const std::vector<core::RouteTarget> targets(loads.size());
  core::PowerOfDChoicesRouter pod(
      sim::Rng(3), 16,
      [&loads](std::span<const core::RouteTarget>, std::size_t i) {
        return loads[i];
      });
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t got = pod.pick(packet(0), targets);
    EXPECT_DOUBLE_EQ(loads[got], 2.0) << got;
  }
}

TEST(RoutingEdge, PowerOfOneIgnoresLoad) {
  // d = 1 is uniform random assignment: over enough picks every target is
  // hit even when one target advertises zero load.
  const std::vector<double> loads = {0.0, 9.0, 9.0, 9.0};
  const std::vector<core::RouteTarget> targets(loads.size());
  core::PowerOfDChoicesRouter pod(
      sim::Rng(5), 1,
      [&loads](std::span<const core::RouteTarget>, std::size_t i) {
        return loads[i];
      });
  std::vector<int> hits(targets.size(), 0);
  for (int trial = 0; trial < 256; ++trial) {
    ++hits[pod.pick(packet(0), targets)];
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GT(hits[i], 0) << i;
  }
}

}  // namespace

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "asu/asu.hpp"
#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;

namespace {

struct Rig {
  sim::Engine eng;
  asu::MachineParams mp;
  std::unique_ptr<asu::Cluster> cluster;

  explicit Rig(unsigned hosts = 1, unsigned asus = 4) {
    mp.num_hosts = hosts;
    mp.num_asus = asus;
    cluster = std::make_unique<asu::Cluster>(eng, mp);
  }

  std::vector<asu::Node*> all_asus() {
    std::vector<asu::Node*> v;
    for (unsigned i = 0; i < mp.num_asus; ++i) v.push_back(&cluster->asu(i));
    return v;
  }
  std::vector<asu::Node*> host0() { return {&cluster->host(0)}; }
};

/// Source emitting `per_instance` packets of `per_packet` records with
/// keys from a deterministic per-instance stream.
core::SourceFn counting_source(std::size_t per_instance,
                               std::size_t per_packet,
                               std::uint64_t seed = 1) {
  auto emitted = std::make_shared<std::map<unsigned, std::size_t>>();
  auto rngs = std::make_shared<std::map<unsigned, sim::Rng>>();
  return [=](unsigned instance, core::Packet& out) {
    auto& count = (*emitted)[instance];
    if (count >= per_instance) return false;
    auto [it, inserted] =
        rngs->try_emplace(instance, sim::Rng(seed * 100 + instance));
    out.subset = 0;
    out.seq = std::uint32_t(count);
    for (std::size_t i = 0; i < per_packet; ++i) {
      out.records.push_back({std::uint32_t(it->second.next()),
                             std::uint32_t(instance)});
    }
    ++count;
    return true;
  };
}

core::FunctorCost tiny_cost() { return {50e-9, 1e-6}; }

TEST(Program, IdentityMapDeliversEverything) {
  Rig rig;
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(10, 100));
  prog.add_stage({.name = "id",
                  .make = [](unsigned) {
                    return std::make_unique<core::MapFunctor>(
                        [](const lmas::em::KeyRecord& r) { return r; },
                        tiny_cost());
                  },
                  .placement = rig.host0()});
  auto stats = prog.run();
  std::size_t records = 0;
  for (const auto& p : stats.sink_output) records += p.records.size();
  EXPECT_EQ(records, 4u * 10 * 100);
  EXPECT_GT(stats.makespan, 0.0);
  ASSERT_EQ(stats.stages.size(), 2u);  // source + map
  EXPECT_EQ(stats.stages[0].records_out, 4000u);
  EXPECT_EQ(stats.stages[1].records_in, 4000u);
  EXPECT_EQ(stats.stages[1].records_out, 4000u);
}

TEST(Program, FilterOnAsusReducesTraffic) {
  Rig rig;
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(20, 256));
  // The filter runs ON the ASUs: only matching records cross the network.
  prog.add_stage({.name = "filter@asu",
                  .make =
                      [](unsigned) {
                        return std::make_unique<core::FilterFunctor>(
                            [](const lmas::em::KeyRecord& r) {
                              return r.key < 0x10000000u;  // ~1/16 kept
                            },
                            tiny_cost());
                      },
                  .placement = rig.all_asus()});
  prog.add_stage({.name = "collect@host",
                  .make = [](unsigned) {
                    return std::make_unique<core::MapFunctor>(
                        [](const lmas::em::KeyRecord& r) { return r; },
                        tiny_cost());
                  },
                  .placement = rig.host0()});
  auto stats = prog.run();
  const auto& filter = stats.stages[1];
  const auto& collect = stats.stages[2];
  EXPECT_EQ(filter.records_in, 4u * 20 * 256);
  // Selectivity ~1/16.
  EXPECT_NEAR(double(filter.records_out), 4.0 * 20 * 256 / 16.0,
              4.0 * 20 * 256 / 32.0);
  EXPECT_EQ(collect.records_in, filter.records_out);
  // Every surviving record is a match.
  for (const auto& p : stats.sink_output) {
    for (const auto& r : p.records) EXPECT_LT(r.key, 0x10000000u);
  }
}

TEST(Program, ReplicatedHistogramMatchesOracle) {
  Rig rig;
  constexpr unsigned kBuckets = 16;
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(8, 512, 7));
  prog.add_stage({.name = "partial-hist@asu",
                  .make =
                      [&](unsigned) {
                        return std::make_unique<core::HistogramFunctor>(
                            kBuckets, tiny_cost());
                      },
                  .placement = rig.all_asus()});
  prog.add_stage({.name = "combine@host",
                  .make =
                      [&](unsigned) {
                        return std::make_unique<
                            core::CombineHistogramsFunctor>(kBuckets,
                                                            tiny_cost());
                      },
                  .placement = rig.host0()});
  auto stats = prog.run();

  // Oracle: regenerate the same keys and bucket them directly.
  std::vector<std::uint64_t> oracle(kBuckets, 0);
  for (unsigned i = 0; i < 4; ++i) {
    sim::Rng rng(7 * 100 + i);
    for (int k = 0; k < 8 * 512; ++k) {
      const auto key = std::uint32_t(rng.next());
      ++oracle[std::size_t((std::uint64_t(key) * kBuckets) >> 32)];
    }
  }
  ASSERT_EQ(stats.sink_output.size(), 1u);
  const auto& total = stats.sink_output[0];
  ASSERT_EQ(total.records.size(), kBuckets);
  std::uint64_t sum = 0;
  for (const auto& r : total.records) {
    EXPECT_EQ(std::uint64_t(r.id), oracle[r.key]) << "bucket " << r.key;
    sum += r.id;
  }
  EXPECT_EQ(sum, 4u * 8 * 512);
}

TEST(Program, PacketSortPreservesPacketsAndSortsThem) {
  Rig rig;
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(5, 64));
  prog.add_stage({.name = "presort@asu",
                  .make =
                      [](unsigned) {
                        return std::make_unique<core::PacketSortFunctor>(
                            tiny_cost());
                      },
                  .placement = rig.all_asus()});
  prog.add_stage({.name = "sink",
                  .make = [](unsigned) {
                    return std::make_unique<core::MapFunctor>(
                        [](const lmas::em::KeyRecord& r) { return r; },
                        tiny_cost());
                  },
                  .placement = rig.host0()});
  auto stats = prog.run();
  EXPECT_EQ(stats.sink_output.size(), 20u);
  for (const auto& p : stats.sink_output) {
    EXPECT_TRUE(p.sorted);
    EXPECT_TRUE(std::is_sorted(p.records.begin(), p.records.end()));
    EXPECT_EQ(p.records.size(), 64u);
  }
}

TEST(Program, RejectsOversizedAsuState) {
  Rig rig;
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(1, 1));
  // A histogram whose state exceeds the 8 MiB ASU memory bound.
  const unsigned huge = 4u << 20;  // 4M buckets * 8B = 32 MiB
  EXPECT_THROW(
      prog.add_stage({.name = "huge@asu",
                      .make =
                          [&](unsigned) {
                            return std::make_unique<core::HistogramFunctor>(
                                huge, tiny_cost());
                          },
                      .placement = rig.all_asus()}),
      std::invalid_argument);
  // The same functor is fine on a host.
  EXPECT_NO_THROW(
      prog.add_stage({.name = "huge@host",
                      .make =
                          [&](unsigned) {
                            return std::make_unique<core::HistogramFunctor>(
                                huge, tiny_cost());
                          },
                      .placement = rig.host0()}));
}

TEST(Program, MissingPiecesThrow) {
  Rig rig;
  {
    core::Program prog(*rig.cluster);
    EXPECT_THROW(prog.run(), std::logic_error);  // no source, no stages
  }
  {
    core::Program prog(*rig.cluster);
    EXPECT_THROW(prog.set_source("s", {}, counting_source(1, 1)),
                 std::invalid_argument);
  }
  {
    core::Program prog(*rig.cluster);
    EXPECT_THROW(prog.add_stage({.name = "x",
                                 .make =
                                     [](unsigned) {
                                       return std::make_unique<
                                           core::PacketSortFunctor>(
                                           core::FunctorCost{});
                                     },
                                 .placement = {}}),
                 std::invalid_argument);
  }
}

TEST(Program, DeclaredCostDrivesMakespan) {
  // Double the declared per-record cost and the (CPU-bound) makespan
  // roughly doubles: the system charges exactly what functors declare.
  auto run_with = [](double per_record) {
    Rig rig(1, 4);
    core::Program prog(*rig.cluster);
    prog.set_source("gen", rig.all_asus(), counting_source(50, 512));
    prog.add_stage({.name = "work",
                    .make =
                        [=](unsigned) {
                          return std::make_unique<core::MapFunctor>(
                              [](const lmas::em::KeyRecord& r) { return r; },
                              core::FunctorCost{per_record, 0});
                        },
                    .placement = rig.host0()});
    return prog.run().makespan;
  };
  const double t1 = run_with(1e-6);
  const double t2 = run_with(2e-6);
  EXPECT_NEAR(t2 / t1, 2.0, 0.25);
}

TEST(Program, AsuPlacementScalesWithUnits) {
  // The same ASU-side work finishes faster with more ASUs.
  auto run_with = [](unsigned asus) {
    Rig rig(1, asus);
    core::Program prog(*rig.cluster);
    const std::size_t per_instance = 256 / asus;  // fixed total work
    prog.set_source("gen", rig.all_asus(),
                    counting_source(per_instance, 512));
    prog.add_stage({.name = "work@asu",
                    .make =
                        [](unsigned) {
                          return std::make_unique<core::MapFunctor>(
                              [](const lmas::em::KeyRecord& r) { return r; },
                              core::FunctorCost{2e-6, 0});
                        },
                    .placement = rig.all_asus()});
    prog.add_stage({.name = "sink",
                    .make = [](unsigned) {
                      return std::make_unique<core::MapFunctor>(
                          [](const lmas::em::KeyRecord& r) { return r; },
                          core::FunctorCost{1e-9, 0});
                    },
                    .placement = rig.host0()});
    return prog.run().makespan;
  };
  const double t4 = run_with(4);
  const double t16 = run_with(16);
  EXPECT_LT(t16, t4 * 0.5);
}

TEST(Migration, OverloadedHostShedsFunctorToAsu) {
  // A functor starts on a host that is also saturated by foreign work;
  // a backlog-threshold policy migrates it to an idle ASU mid-run. The
  // migrated run must finish earlier and still deliver every record.
  auto run = [](bool allow_migration) {
    Rig rig(2, 4);
    // host0 is busy with 50ms of competing work.
    rig.cluster->host(0).cpu().post(0.05);
    core::Program prog(*rig.cluster);
    prog.set_source("gen", rig.all_asus(), counting_source(20, 256));
    core::ProgramStageSpec spec;
    spec.name = "work";
    spec.make = [](unsigned) {
      return std::make_unique<core::MapFunctor>(
          [](const lmas::em::KeyRecord& r) { return r; },
          core::FunctorCost{100e-9, 0});
    };
    spec.placement = {&rig.cluster->host(0)};
    if (allow_migration) {
      asu::Node* fallback = &rig.cluster->host(1);
      spec.migrate = [fallback](unsigned, asu::Node& current) -> asu::Node* {
        // Move when the current node has >5ms of queued foreign work.
        return current.cpu().backlog() > 0.005 ? fallback : nullptr;
      };
    }
    prog.add_stage(std::move(spec));
    prog.add_stage({.name = "sink",
                    .make = [](unsigned) {
                      return std::make_unique<core::MapFunctor>(
                          [](const lmas::em::KeyRecord& r) { return r; },
                          core::FunctorCost{1e-9, 0});
                    },
                    .placement = {&rig.cluster->host(1)}});
    return prog.run();
  };

  const auto pinned = run(false);
  const auto mobile = run(true);
  std::size_t pinned_records = 0, mobile_records = 0;
  for (const auto& p : pinned.sink_output) pinned_records += p.records.size();
  for (const auto& p : mobile.sink_output) mobile_records += p.records.size();
  EXPECT_EQ(pinned_records, 4u * 20 * 256);
  EXPECT_EQ(mobile_records, pinned_records);
  EXPECT_EQ(pinned.stages[1].migrations, 0u);
  EXPECT_EQ(mobile.stages[1].migrations, 1u);  // moved once, then stayed
  EXPECT_LT(mobile.makespan, pinned.makespan);
}

TEST(Migration, StablePolicyNeverMoves) {
  Rig rig(1, 2);
  core::Program prog(*rig.cluster);
  prog.set_source("gen", rig.all_asus(), counting_source(5, 64));
  core::ProgramStageSpec spec;
  spec.name = "steady";
  spec.make = [](unsigned) {
    return std::make_unique<core::MapFunctor>(
        [](const lmas::em::KeyRecord& r) { return r; }, tiny_cost());
  };
  spec.placement = rig.host0();
  spec.migrate = [](unsigned, asu::Node& current) { return &current; };
  prog.add_stage(std::move(spec));
  auto stats = prog.run();
  EXPECT_EQ(stats.stages[1].migrations, 0u);
}

}  // namespace

// Property/metamorphic conformance suites (ctest label: property).
//
// Each suite runs 100 seeded cases through the forall() harness; on
// failure the assertion message carries the shrunk counterexample plus a
// copy-pasteable repro command (LMAS_CHECK_SEED=... lmas_check property).
#include <gtest/gtest.h>

#include "check/suites.hpp"

namespace check = lmas::check;

namespace {

constexpr std::size_t kCases = 100;
constexpr std::uint64_t kSeed = 0;

TEST(Property, SortedOutputIsPermutationOfInput) {
  const auto f = check::suite_permutation(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, PacketPartialOrderSurvivesEveryRouter) {
  const auto f = check::suite_packet_order(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, RecordsAndChecksumsAreConserved) {
  const auto f = check::suite_conservation(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, SrRoutingStaysWithinImbalanceBound) {
  const auto f = check::suite_sr_balance(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, PredictorTracksEmulatedPass1Time) {
  const auto f = check::suite_predictor(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, DigestsAreStableAcrossReruns) {
  const auto f = check::suite_digest(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, ConservationHoldsUnderEveryFaultPlan) {
  const auto f = check::suite_fault_conservation(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, NoPacketIsLostToACrashedReplica) {
  const auto f = check::suite_fault_routing(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, RouterHotSwapPreservesPacketOrder) {
  const auto f = check::suite_lm_switch(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, MigrationConservesPacketMultiset) {
  const auto f = check::suite_lm_migration(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, HistogramQuantilesWithinBoundAndMergeOrderFree) {
  const auto f = check::suite_histogram(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, TenantServingConservesRecordsAndJobs) {
  const auto f = check::suite_tenant_conservation(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, TenantArrivalsAreSeedDeterministic) {
  const auto f = check::suite_tenant_arrival(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, ShardedDigestsMatchSerialAtEveryShardCount) {
  const auto f = check::suite_sharded_digest(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, TopologyChoiceNeverChangesConservation) {
  const auto f = check::suite_topology_conservation(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

TEST(Property, PodBalanceContractsHold) {
  const auto f = check::suite_pod_balance(kCases, kSeed);
  ASSERT_FALSE(f.has_value()) << f->describe();
}

// The registry the lmas_check driver iterates must cover every suite above.
TEST(Property, RegistryListsAllSuites) {
  ASSERT_EQ(check::all_suites().size(), 17u);
  for (const auto& s : check::all_suites()) {
    EXPECT_NE(s.fn, nullptr) << s.name;
    EXPECT_GE(s.default_cases, 100u) << s.name;
  }
}

}  // namespace

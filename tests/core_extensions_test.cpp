#include <gtest/gtest.h>

#include "core/core.hpp"
#include "core/splitters.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  return mp;
}

// ---------- splitter selection ----------

TEST(Splitters, QuantilesBalanceSkewedSample) {
  core::KeyGenerator gen(core::KeyDist::Exponential, 100000, sim::Rng(3));
  auto sample = gen.take(100000);
  auto splitters = core::choose_splitters(sample, 16);
  ASSERT_EQ(splitters.size(), 15u);
  EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));

  core::SplitterClassifier cls(splitters);
  std::vector<std::size_t> counts(16, 0);
  core::KeyGenerator gen2(core::KeyDist::Exponential, 100000, sim::Rng(4));
  for (int i = 0; i < 100000; ++i) {
    ++counts.at(cls(lmas::em::KeyRecord{gen2.next(), 0}));
  }
  for (auto c : counts) {
    EXPECT_NEAR(double(c), 100000.0 / 16, 100000.0 / 16 * 0.25);
  }
}

TEST(Splitters, ClassifierBoundaries) {
  core::SplitterClassifier cls({10, 20, 30});
  EXPECT_EQ(cls.buckets(), 4u);
  EXPECT_EQ(cls(lmas::em::KeyRecord{5, 0}), 0u);
  EXPECT_EQ(cls(lmas::em::KeyRecord{10, 0}), 0u);  // upper_bound: <= goes low
  EXPECT_EQ(cls(lmas::em::KeyRecord{11, 0}), 1u);
  EXPECT_EQ(cls(lmas::em::KeyRecord{30, 0}), 2u);
  EXPECT_EQ(cls(lmas::em::KeyRecord{31, 0}), 3u);
}

TEST(Splitters, DegenerateCases) {
  EXPECT_TRUE(core::choose_splitters({}, 8).empty());
  EXPECT_TRUE(core::choose_splitters({1, 2, 3}, 1).empty());
  // All-equal sample: duplicated splitters, still valid (empty buckets).
  auto s = core::choose_splitters(std::vector<std::uint32_t>(100, 42), 4);
  ASSERT_EQ(s.size(), 3u);
  core::SplitterClassifier cls(s);
  EXPECT_EQ(cls(lmas::em::KeyRecord{42, 0}), 0u);
  EXPECT_EQ(cls(lmas::em::KeyRecord{43, 0}), 3u);
}

TEST(Splitters, SampledDsmSortBalancesStationarySkew) {
  // Exponential keys: range buckets are badly skewed, sampled splitters
  // even them out — visible through the static-routing host shares.
  auto cfg = core::DsmSortConfig{};
  cfg.total_records = 1 << 17;
  cfg.alpha = 16;
  cfg.log2_alpha_beta = 14;
  cfg.key_dist = core::KeyDist::Exponential;
  cfg.sort_router = core::RouterKind::Static;
  cfg.seed = 7;

  auto imbalance = [](const core::DsmSortReport& r) {
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    return std::abs(a - b) / (a + b);
  };

  cfg.splitters = core::DsmSortConfig::Splitters::Range;
  auto range = core::run_dsm_sort(machine(2, 8), cfg);
  cfg.splitters = core::DsmSortConfig::Splitters::Sampled;
  auto sampled = core::run_dsm_sort(machine(2, 8), cfg);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_GT(imbalance(range), 0.5);    // nearly everything in low buckets
  EXPECT_LT(imbalance(sampled), 0.1);  // quantile splitters fix it
  EXPECT_LT(sampled.pass1_seconds, range.pass1_seconds);
}

TEST(Splitters, SampledCannotFixTimeVaryingSkew) {
  // The Figure 10 workload switches distribution mid-stream: splitters
  // chosen for the whole input cannot balance each half, so static
  // routing still starves a host part of the time; SR remains necessary.
  auto cfg = core::DsmSortConfig{};
  cfg.total_records = 1 << 17;
  cfg.alpha = 16;
  cfg.log2_alpha_beta = 14;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.splitters = core::DsmSortConfig::Splitters::Sampled;
  cfg.seed = 7;

  cfg.sort_router = core::RouterKind::Static;
  auto stat = core::run_dsm_sort(machine(2, 8), cfg);
  cfg.sort_router = core::RouterKind::SimpleRandomization;
  auto sr = core::run_dsm_sort(machine(2, 8), cfg);
  ASSERT_TRUE(stat.ok());
  ASSERT_TRUE(sr.ok());
  EXPECT_LT(sr.pass1_seconds, stat.pass1_seconds * 0.98);
}

// ---------- performance isolation / shared ASUs ----------

TEST(Isolation, BackgroundLoadSlowsAsusOnly) {
  sim::Engine eng;
  auto mp = machine(1, 1);
  mp.asu_background_load = 0.5;
  asu::Node host(eng, asu::NodeKind::Host, 0, mp);
  asu::Node unit(eng, asu::NodeKind::Asu, 0, mp);
  EXPECT_DOUBLE_EQ(host.speed(), 1.0);
  EXPECT_DOUBLE_EQ(unit.speed(), 0.5 / 8.0);  // half of a 1/8-speed CPU
}

TEST(Isolation, AdaptiveShedsWorkFromBusyAsus) {
  // With competing tenants on the ASUs, the predictor moves the knee:
  // the same machine shape now prefers a smaller alpha.
  const unsigned candidates[] = {1, 4, 16, 64, 256};
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 20;

  auto mp = machine(1, 16);
  const unsigned idle = core::choose_alpha(mp, cfg, candidates);
  mp.asu_background_load = 0.75;  // ASUs three-quarters busy elsewhere
  const unsigned busy = core::choose_alpha(mp, cfg, candidates);
  EXPECT_EQ(idle, 256u);
  EXPECT_LT(busy, idle);
}

TEST(Isolation, SharedAsusSlowActiveButNotPassive) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 18;
  cfg.alpha = 64;
  cfg.seed = 11;

  auto mp = machine(1, 8);
  const auto idle = core::run_dsm_sort(mp, cfg);
  mp.asu_background_load = 0.5;
  const auto busy = core::run_dsm_sort(mp, cfg);
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(busy.ok());
  EXPECT_GT(busy.pass1_seconds, idle.pass1_seconds * 1.2);

  // The passive baseline barely cares: its ASUs only stream bytes.
  cfg.distribute_on_asus = false;
  mp.asu_background_load = 0.0;
  const auto p_idle = core::run_dsm_sort(mp, cfg);
  mp.asu_background_load = 0.5;
  const auto p_busy = core::run_dsm_sort(mp, cfg);
  EXPECT_NEAR(p_busy.pass1_seconds, p_idle.pass1_seconds,
              0.05 * p_idle.pass1_seconds);
}

// ---------- measured (direct-execution) timing ----------

TEST(MeasuredTiming, ProducesValidSortWithPositiveTimes) {
  auto mp = machine(1, 4);
  mp.measured_timing = true;
  mp.measured_scale = 25.0;
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 16;
  cfg.alpha = 16;
  cfg.log2_alpha_beta = 14;
  const auto rep = core::run_dsm_sort(mp, cfg);
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.pass1_seconds, 0.0);
  EXPECT_EQ(rep.records_stored, cfg.total_records);
}

TEST(MeasuredTiming, ScaleStretchesTime) {
  // Measured charges scale linearly with measured_scale; with 10x the
  // scale the CPU-bound portion should grow substantially (not exactly
  // 10x: disk and network are unaffected).
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 17;
  cfg.alpha = 16;
  auto mp = machine(1, 4);
  mp.measured_timing = true;
  mp.measured_scale = 20.0;
  const auto lo = core::run_dsm_sort(mp, cfg);
  mp.measured_scale = 200.0;
  const auto hi = core::run_dsm_sort(mp, cfg);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GT(hi.pass1_seconds, lo.pass1_seconds * 3.0);
}

}  // namespace

// ---------- full configuration matrix ----------

struct MatrixCase {
  core::KeyDist dist;
  core::RouterKind router;
  core::DsmSortConfig::Splitters splitters;
  bool merge;
};

class DsmMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DsmMatrix, InvariantsHoldForEveryConfiguration) {
  const auto& mc = GetParam();
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 15;
  cfg.alpha = 8;
  cfg.log2_alpha_beta = 13;
  cfg.key_dist = mc.dist;
  cfg.sort_router = mc.router;
  cfg.splitters = mc.splitters;
  cfg.run_merge_pass = mc.merge;
  cfg.seed = 17;
  const auto rep = core::run_dsm_sort(machine(2, 6), cfg);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.records_stored, cfg.total_records);
  if (mc.merge) {
    EXPECT_TRUE(rep.final_sorted_ok);
    EXPECT_EQ(rep.records_final, cfg.total_records);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DsmMatrix,
    ::testing::Values(
        MatrixCase{core::KeyDist::Uniform, core::RouterKind::Static,
                   core::DsmSortConfig::Splitters::Range, true},
        MatrixCase{core::KeyDist::Uniform, core::RouterKind::RoundRobin,
                   core::DsmSortConfig::Splitters::Sampled, true},
        MatrixCase{core::KeyDist::Uniform,
                   core::RouterKind::SimpleRandomization,
                   core::DsmSortConfig::Splitters::Range, false},
        MatrixCase{core::KeyDist::Exponential, core::RouterKind::Static,
                   core::DsmSortConfig::Splitters::Sampled, true},
        MatrixCase{core::KeyDist::Exponential,
                   core::RouterKind::LeastLoaded,
                   core::DsmSortConfig::Splitters::Range, true},
        MatrixCase{core::KeyDist::HalfUniformHalfExp,
                   core::RouterKind::SimpleRandomization,
                   core::DsmSortConfig::Splitters::Sampled, true},
        MatrixCase{core::KeyDist::HalfUniformHalfExp,
                   core::RouterKind::RoundRobin,
                   core::DsmSortConfig::Splitters::Range, false},
        MatrixCase{core::KeyDist::Sorted, core::RouterKind::Static,
                   core::DsmSortConfig::Splitters::Sampled, true},
        MatrixCase{core::KeyDist::ReverseSorted,
                   core::RouterKind::SimpleRandomization,
                   core::DsmSortConfig::Splitters::Sampled, true},
        MatrixCase{core::KeyDist::Sorted, core::RouterKind::LeastLoaded,
                   core::DsmSortConfig::Splitters::Range, false}));

TEST(DsmMatrix, MergePassWithGammaSweep) {
  for (const unsigned g1 : {1u, 2u, 3u, 0u}) {
    core::DsmSortConfig cfg;
    cfg.total_records = 1 << 15;
    cfg.alpha = 4;
    cfg.log2_alpha_beta = 11;
    cfg.run_merge_pass = true;
    cfg.gamma1 = g1;
    cfg.seed = 23;
    const auto rep = core::run_dsm_sort(machine(1, 5), cfg);
    EXPECT_TRUE(rep.ok()) << "gamma1=" << g1;
    EXPECT_EQ(rep.records_final, cfg.total_records);
    EXPECT_TRUE(rep.final_sorted_ok);
  }
}

TEST(DsmMatrix, BackgroundLoadPreservesCorrectness) {
  auto mp = machine(1, 4);
  mp.asu_background_load = 0.9;  // ASUs nearly starved, still correct
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 14;
  cfg.run_merge_pass = true;
  const auto rep = core::run_dsm_sort(mp, cfg);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.final_sorted_ok);
}

// ---------- load monitor ----------

namespace {

TEST(LoadMonitor, ImbalanceMetric) {
  EXPECT_DOUBLE_EQ(core::LoadSample::imbalance({1.0, 1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(core::LoadSample::imbalance({4.0, 0.0, 0.0, 0.0}), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(core::LoadSample::imbalance({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::LoadSample::imbalance({5.0}), 0.0);
  const double mid = core::LoadSample::imbalance({3.0, 1.0});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(LoadMonitor, ObservesWorkAndStopsWhenDrained) {
  sim::Engine eng;
  auto mp = machine(2, 2);
  asu::Cluster cluster(eng, mp);
  core::LoadMonitor mon(cluster, 0.01);
  mon.start();
  // Put 0.1s of work on host0 only.
  auto worker = [](asu::Node& n) -> sim::Task<> { co_await n.compute(0.1); };
  eng.spawn(worker(cluster.host(0)));
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 0u);  // monitor terminated itself
  ASSERT_GT(mon.samples().size(), 2u);
  EXPECT_GT(mon.peak_host_imbalance(), 0.9);  // all load on one host
}

TEST(LoadMonitor, PublishesBacklogGaugesToRegistry) {
  sim::Engine eng;
  auto mp = machine(2, 2);
  asu::Cluster cluster(eng, mp);
  core::LoadMonitor mon(cluster, 0.01);
  mon.start();
  auto worker = [](asu::Node& n) -> sim::Task<> { co_await n.compute(0.1); };
  eng.spawn(worker(cluster.host(0)));
  eng.run();
  // Every sampled node has a backlog gauge; the imbalance gauge carries
  // the last sample (0 once drained). Old accessor still works alongside.
  const auto& reg = eng.metrics();
  ASSERT_NE(reg.find_gauge("host.backlog.0"), nullptr);
  ASSERT_NE(reg.find_gauge("host.backlog.1"), nullptr);
  ASSERT_NE(reg.find_gauge("asu.backlog.0"), nullptr);
  ASSERT_NE(reg.find_gauge("asu.backlog.1"), nullptr);
  ASSERT_NE(reg.find_gauge("load.host_imbalance"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("host.backlog.0")->value(),
                   mon.samples().back().host_backlog[0]);
  EXPECT_FALSE(mon.samples().empty());
}

TEST(LoadMonitor, BalancedWorkShowsLowImbalance) {
  sim::Engine eng;
  auto mp = machine(2, 2);
  asu::Cluster cluster(eng, mp);
  core::LoadMonitor mon(cluster, 0.01);
  mon.start();
  auto worker = [](asu::Node& n) -> sim::Task<> { co_await n.compute(0.1); };
  eng.spawn(worker(cluster.host(0)));
  eng.spawn(worker(cluster.host(1)));
  eng.run();
  EXPECT_LT(mon.peak_host_imbalance(), 0.2);
}

// Regression: the monitor used to stop at the FIRST all-idle sample after
// any work. DSM-Sort-style programs have quiescent gaps between phases
// longer than one sampling period, and stopping inside one missed every
// later sample (Fig. 10's utilization series would truncate at the first
// phase boundary). A single idle sample must not end monitoring; two
// consecutive ones do.
TEST(LoadMonitor, SurvivesIdleGapLongerThanOnePeriod) {
  sim::Engine eng;
  auto mp = machine(1, 1);
  asu::Cluster cluster(eng, mp);
  core::LoadMonitor mon(cluster, 0.01);
  mon.start();
  // Two bursts with a 0.012s quiescent gap (> one period, < two): the
  // sample at t=0.05 lands inside the gap and sees an idle cluster.
  auto worker = [](sim::Engine& e, asu::Node& n) -> sim::Task<> {
    co_await n.compute(0.045);
    co_await e.sleep(0.012);
    co_await n.compute(0.03);  // second burst: busy [0.057, 0.087]
  };
  eng.spawn(worker(eng, cluster.host(0)));
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);  // monitor still terminates
  ASSERT_FALSE(mon.samples().empty());
  // The monitor sampled through the gap: the second burst is observed...
  bool saw_second_burst = false;
  for (const auto& s : mon.samples()) {
    if (s.time > 0.055 && s.host_backlog[0] > 0) saw_second_burst = true;
  }
  EXPECT_TRUE(saw_second_burst);
  EXPECT_GT(mon.samples().back().time, 0.087);
  // ...and it still stops promptly once the workload truly drains (two
  // idle samples after the last burst, not max_samples).
  EXPECT_LT(mon.samples().size(), 20u);
}

// Satellite of the same fix: ASU backlogs are sampled and published
// symmetrically with host backlogs (the trace/registry view used to cover
// hosts only).
TEST(LoadMonitor, SamplesAsuBacklogsSymmetrically) {
  sim::Engine eng;
  auto mp = machine(1, 2);
  asu::Cluster cluster(eng, mp);
  core::LoadMonitor mon(cluster, 0.01);
  mon.start();
  auto worker = [](asu::Node& n) -> sim::Task<> { co_await n.compute(0.1); };
  eng.spawn(worker(cluster.asu(1)));  // work on an ASU, hosts idle
  eng.run();
  double peak_asu = 0;
  for (const auto& s : mon.samples()) {
    ASSERT_EQ(s.asu_backlog.size(), 2u);
    peak_asu = std::max(peak_asu, s.asu_backlog[1]);
  }
  EXPECT_GT(peak_asu, 0.0);
  ASSERT_NE(eng.metrics().find_gauge("asu.backlog.1"), nullptr);
}

}  // namespace

// ---------- distributed two-level B+-tree ----------

namespace {

TEST(DistBTree, LookupsMatchOracleInBothMaintenanceModes) {
  for (auto mode : {core::MaintenanceMode::Online,
                    core::MaintenanceMode::Batched}) {
    auto mp = machine(1, 4);
    core::DistBTreeConfig cfg;
    cfg.initial_keys = 20000;
    cfg.operations = 1000;
    cfg.maintenance = mode;
    cfg.batch_size = 64;
    const auto rep = core::run_dist_btree(mp, cfg);
    EXPECT_TRUE(rep.lookups_ok)
        << (mode == core::MaintenanceMode::Online ? "online" : "batched");
    EXPECT_TRUE(rep.final_state_ok);
    EXPECT_GT(rep.lookups, 0u);
    EXPECT_GT(rep.inserts, 0u);
    if (mode == core::MaintenanceMode::Batched) {
      EXPECT_GT(rep.batches_shipped, 0u);
    } else {
      EXPECT_EQ(rep.batches_shipped, 0u);
    }
  }
}

TEST(DistBTree, BatchedMaintenanceBeatsOnlineUnderInsertHeavyLoad) {
  // The Section 4.2 claim: lower-level maintenance as an ASU batch job
  // outperforms per-operation random I/O at the storage units.
  auto mp = machine(1, 4);
  core::DistBTreeConfig cfg;
  cfg.initial_keys = 50000;
  cfg.operations = 4000;
  cfg.insert_ratio = 0.8;
  cfg.batch_size = 256;
  cfg.maintenance = core::MaintenanceMode::Online;
  const auto online = core::run_dist_btree(mp, cfg);
  cfg.maintenance = core::MaintenanceMode::Batched;
  const auto batched = core::run_dist_btree(mp, cfg);
  ASSERT_TRUE(online.lookups_ok && online.final_state_ok);
  ASSERT_TRUE(batched.lookups_ok && batched.final_state_ok);
  EXPECT_LT(batched.makespan, online.makespan);
}

TEST(DistBTree, LookupOnlyWorkloadHasNoBatches) {
  auto mp = machine(1, 8);
  core::DistBTreeConfig cfg;
  cfg.initial_keys = 10000;
  cfg.operations = 500;
  cfg.insert_ratio = 0.0;
  const auto rep = core::run_dist_btree(mp, cfg);
  EXPECT_TRUE(rep.lookups_ok);
  EXPECT_EQ(rep.inserts, 0u);
  EXPECT_EQ(rep.lookups, 500u);
}

}  // namespace

// ---------- multi-pass host merge (small gamma2) ----------

namespace {

TEST(DsmMatrix, Gamma2CapForcesMultiPassMergeAndStaysCorrect) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 15;
  cfg.alpha = 4;
  cfg.log2_alpha_beta = 10;  // many short runs: deep merge tree
  cfg.run_merge_pass = true;
  cfg.gamma1 = 1;            // no ASU pre-merge: host sees full fan-in
  cfg.seed = 29;

  cfg.gamma2_max = 0;  // single wide merge
  const auto wide = core::run_dsm_sort(machine(1, 4), cfg);
  cfg.gamma2_max = 2;  // binary merges: several passes
  const auto narrow = core::run_dsm_sort(machine(1, 4), cfg);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow.ok());
  EXPECT_TRUE(narrow.final_sorted_ok);
  EXPECT_EQ(narrow.records_final, cfg.total_records);
  // Extra passes mean extra compares: the capped merge pays for its
  // bounded buffers with a slower pass 2.
  EXPECT_GT(narrow.pass2_seconds, wide.pass2_seconds);
}

}  // namespace

// ---------- remote (cross-shard) endpoints ----------

namespace {

sim::Task<> drain(sim::Channel<core::Packet>& in,
                  std::vector<core::Packet>& got) {
  while (auto p = co_await in.recv()) {
    got.push_back(std::move(*p));
  }
}

core::Packet remote_packet(std::size_t records) {
  core::Packet p;
  p.subset = 7;
  for (std::size_t r = 0; r < records; ++r) {
    p.records.push_back({std::uint32_t(r), std::uint32_t(r)});
  }
  return p;
}

TEST(RemoteEndpoint, SinkReceivesPacketAfterSenderSideCharging) {
  // A null-channel endpoint models an instance owned by another shard
  // (sim::ShardedEngine): the local engine charges the sender NIC and
  // the wire latency, then hands the packet to the sink.
  sim::Engine eng;
  auto mp = machine(1, 1);
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 1, 4);
  auto eps = inboxes.endpoints({&cluster.asu(0)});
  eps.push_back(core::Endpoint{nullptr, nullptr});  // remote instance
  ASSERT_TRUE(eps[1].remote());
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = std::move(eps),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .name = "xshard"});

  struct Arrival {
    std::size_t idx;
    double at;
    core::Packet p;
  };
  std::vector<Arrival> sunk;
  out.set_remote_sink([&](std::size_t idx, double at, core::Packet&& p) {
    sunk.push_back({idx, at, std::move(p)});
  });

  std::vector<core::Packet> local;
  eng.spawn(drain(inboxes.inbox(0), local));
  auto producer = [&]() -> sim::Task<> {
    co_await out.emit_to(1, cluster.host(0), remote_packet(8));
    out.producer_done();
  };
  eng.spawn(producer());
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  EXPECT_TRUE(local.empty());
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].idx, 1u);
  EXPECT_EQ(sunk[0].p.records.size(), 8u);
  // Sender-side occupancy elapsed before the hand-off: NIC serialization
  // of 8 records plus one wire latency.
  const double nic = double(8 * mp.record_bytes) / mp.host_nic_bandwidth;
  EXPECT_GE(sunk[0].at, nic + mp.link_latency);
  EXPECT_EQ(out.packets_sent(), 1u);
}

TEST(RemoteEndpoint, RouterNeverPicksRemoteInstances) {
  sim::Engine eng;
  auto mp = machine(1, 1);
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 1, 8);
  auto eps = inboxes.endpoints({&cluster.asu(0)});
  eps.push_back(core::Endpoint{nullptr, nullptr});
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = std::move(eps),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .name = "xshard_rr"});
  bool sink_fired = false;
  out.set_remote_sink(
      [&](std::size_t, double, core::Packet&&) { sink_fired = true; });

  std::vector<core::Packet> local;
  eng.spawn(drain(inboxes.inbox(0), local));
  auto producer = [&]() -> sim::Task<> {
    // Round-robin over the ACTIVE set: with the remote instance excluded
    // every pick must land on the single local replica.
    for (int i = 0; i < 6; ++i) {
      co_await out.emit(cluster.host(0), remote_packet(2));
    }
    out.producer_done();
  };
  eng.spawn(producer());
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  EXPECT_EQ(local.size(), 6u);
  EXPECT_FALSE(sink_fired);
}

TEST(RemoteEndpoint, EmitToRemoteWithoutSinkThrows) {
  sim::Engine eng;
  auto mp = machine(1, 1);
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 1, 4);
  auto eps = inboxes.endpoints({&cluster.asu(0)});
  eps.push_back(core::Endpoint{nullptr, nullptr});
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = std::move(eps),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .name = "xshard_nosink"});

  auto producer = [&]() -> sim::Task<> {
    co_await out.emit_to(1, cluster.host(0), remote_packet(1));
    out.producer_done();
  };
  eng.spawn(producer());
  EXPECT_THROW(eng.run(), std::logic_error);
}

}  // namespace

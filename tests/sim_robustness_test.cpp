#include <gtest/gtest.h>

#include <memory>

#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

sim::Task<> waits_forever(sim::Condition& cv) { co_await cv.wait(); }

TEST(EngineRobustness, TeardownWithSuspendedCoroutinesDoesNotCrash) {
  // Destroying the engine while tasks are parked on conditions/channels
  // must release every coroutine frame (would leak or crash otherwise;
  // runs under the default build's sanitizer-free mode but exercised for
  // lifetime correctness).
  auto eng = std::make_unique<sim::Engine>();
  auto cv = std::make_unique<sim::Condition>(*eng);
  for (int i = 0; i < 100; ++i) eng->spawn(waits_forever(*cv));
  eng->run();
  EXPECT_EQ(eng->unfinished_tasks(), 100u);
  cv.reset();
  eng.reset();  // frames destroyed here
  SUCCEED();
}

TEST(EngineRobustness, ReapCompletedFreesOnlyDoneTasks) {
  sim::Engine eng;
  sim::Condition cv(eng);
  auto quick = [](sim::Engine& e) -> sim::Task<> { co_await e.sleep(1.0); };
  for (int i = 0; i < 10; ++i) eng.spawn(quick(eng));
  eng.spawn(waits_forever(cv));
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 1u);
  eng.reap_completed();
  EXPECT_EQ(eng.unfinished_tasks(), 1u);  // blocked task survives the reap
  cv.notify_all();
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

TEST(EngineRobustness, RunAfterRunContinuesFromCurrentTime) {
  sim::Engine eng;
  std::vector<double> marks;
  auto marker = [](sim::Engine& e, std::vector<double>& m,
                   double d) -> sim::Task<> {
    co_await e.sleep(d);
    m.push_back(e.now());
  };
  eng.spawn(marker(eng, marks, 1.0));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
  eng.spawn(marker(eng, marks, 1.0));  // scheduled relative to t=1
  eng.run();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_DOUBLE_EQ(marks[1], 2.0);
}

TEST(EngineRobustness, YieldInterleavesSameTimeWork) {
  sim::Engine eng;
  std::string log;
  auto chatty = [](sim::Engine& e, std::string& l, char id) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) {
      l.push_back(id);
      co_await e.yield();
    }
  };
  eng.spawn(chatty(eng, log, 'a'));
  eng.spawn(chatty(eng, log, 'b'));
  eng.run();
  EXPECT_EQ(log, "ababab");  // fair round-robin at equal time
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

TEST(EngineRobustness, ScheduleInPastClampsToNow) {
  sim::Engine eng;
  double when = -1;
  auto probe = [](sim::Engine& e, double& w) -> sim::Task<> {
    co_await e.sleep(5.0);
    w = e.now();
  };
  eng.spawn(probe(eng, when));
  // An event scheduled "in the past" (negative delay) fires at now.
  auto instant = [](sim::Engine& e, double& w) -> sim::Task<> {
    co_await e.sleep(-10.0);
    w = e.now();
  };
  double instant_when = -1;
  eng.spawn(instant(eng, instant_when));
  eng.run();
  EXPECT_DOUBLE_EQ(instant_when, 0.0);
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(EngineRobustness, ManyTasksScale) {
  sim::Engine eng;
  std::size_t done = 0;
  auto tick = [](sim::Engine& e, std::size_t& d, int n) -> sim::Task<> {
    co_await e.sleep(double(n % 97) * 0.001);
    ++d;
  };
  constexpr int kTasks = 20000;
  for (int i = 0; i < kTasks; ++i) eng.spawn(tick(eng, done, i));
  const auto events = eng.run();
  EXPECT_EQ(done, std::size_t(kTasks));
  EXPECT_GE(events, std::size_t(kTasks));
}

TEST(EngineRobustness, ChannelDestructionWithParkedWaitersIsSafe) {
  // Waiters parked in a channel that is destroyed before the engine:
  // nothing may resume them afterwards (the engine only holds events for
  // explicitly scheduled handles, and close() was never called).
  auto eng = std::make_unique<sim::Engine>();
  {
    auto ch = std::make_unique<sim::Channel<int>>(*eng);
    auto rx = [](sim::Channel<int>& c) -> sim::Task<> {
      (void)co_await c.recv();
    };
    eng->spawn(rx(*ch));
    eng->run();
    EXPECT_EQ(eng->unfinished_tasks(), 1u);
    ch.reset();  // channel gone; coroutine still parked
  }
  eng.reset();  // frame released with the engine
  SUCCEED();
}

TEST(EngineRobustness, DeterministicEventCountAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng;
    sim::Channel<int> ch(eng, 4);
    auto prod = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
      for (int i = 0; i < 500; ++i) {
        co_await e.sleep(0.001);
        co_await c.send(i);
      }
      c.close();
    };
    auto cons = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
      while (auto v = co_await c.recv()) {
        co_await e.sleep(0.0015);
      }
    };
    eng.spawn(prod(eng, ch));
    eng.spawn(cons(eng, ch));
    return std::pair(eng.run(), eng.now());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace

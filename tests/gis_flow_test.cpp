#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gis/gis.hpp"

namespace gis = lmas::gis;

namespace {

/// Independent in-memory oracle: process cells in descending (elev, id)
/// order and push areas along steepest-descent edges computed directly
/// from the grid.
std::vector<std::uint64_t> oracle_accumulation(const gis::Grid& g) {
  const auto n = g.cells();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  auto elev = [&](std::uint32_t id) {
    return g.at(id % g.width(), id / g.width());
  };
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (elev(a) != elev(b)) return elev(a) > elev(b);
              return a > b;
            });
  std::vector<std::uint64_t> area(n, 0);
  for (const auto id : order) {
    area[id] += 1;
    const std::uint32_t x = id % g.width(), y = id / g.width();
    // Steepest-descent neighbor under the (elev, id) total order.
    bool found = false;
    float be = 0;
    std::uint32_t bid = 0;
    g.for_each_neighbor(x, y, [&](std::uint32_t nx, std::uint32_t ny) {
      const float ne = g.at(nx, ny);
      const std::uint32_t nid = g.cell_id(nx, ny);
      const bool lower =
          ne < elev(id) || (ne == elev(id) && nid < id);
      if (!lower) return;
      if (!found || ne < be || (ne == be && nid < bid)) {
        found = true;
        be = ne;
        bid = nid;
      }
    });
    if (found) area[bid] += area[id];
  }
  return area;
}

TEST(FlowDirection, RampFlowsDiagonallyToOrigin) {
  auto g = gis::make_ramp(8, 8);
  auto dir = gis::flow_directions(g);
  // Interior cells: steepest descent is the NW diagonal (slot 0).
  EXPECT_EQ(dir[g.cell_id(4, 4)], 0);
  // Top row (y=0): west neighbor (slot 3).
  EXPECT_EQ(dir[g.cell_id(4, 0)], 3);
  // Left column: north neighbor (slot 1).
  EXPECT_EQ(dir[g.cell_id(0, 4)], 1);
  // Origin is the unique pit.
  EXPECT_EQ(dir[g.cell_id(0, 0)], -1);
  EXPECT_EQ(std::count(dir.begin(), dir.end(), -1), 1);
}

TEST(FlowAccumulation, RampDrainsEverythingThroughOrigin) {
  auto g = gis::make_ramp(12, 9);
  gis::FlowStats st;
  auto area = gis::flow_accumulation(g, &st);
  EXPECT_EQ(st.pits, 1u);
  EXPECT_EQ(area[g.cell_id(0, 0)], 12u * 9);  // everything reaches the pit
  EXPECT_EQ(st.max_area, 12u * 9);
  // Every cell contributes at least itself.
  for (auto a : area) EXPECT_GE(a, 1u);
}

TEST(FlowAccumulation, AreaConservedAcrossPits) {
  // Total area collected at the pits equals the number of cells.
  for (std::uint64_t seed : {3ull, 9ull, 27ull}) {
    auto g = gis::make_fractal(40, 40, seed);
    auto dir = gis::flow_directions(g);
    gis::FlowStats st;
    auto area = gis::flow_accumulation(g, &st);
    std::uint64_t at_pits = 0;
    for (std::size_t id = 0; id < area.size(); ++id) {
      if (dir[id] == -1) at_pits += area[id];
    }
    EXPECT_EQ(at_pits, g.cells()) << "seed " << seed;
    EXPECT_EQ(st.pits, gis::count_local_minima(g));
  }
}

TEST(FlowAccumulation, MatchesInMemoryOracle) {
  for (std::uint64_t seed : {1ull, 5ull}) {
    auto g = gis::make_fractal(32, 24, seed);
    const auto got = gis::flow_accumulation(g);
    const auto expect = oracle_accumulation(g);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "cell " << i << " seed " << seed;
    }
  }
}

TEST(FlowAccumulation, PitAreasMatchWatershedSizes) {
  // Cross-validation of the two TerraFlow analyses: the upstream area of
  // each pit equals the cell count of its watershed.
  auto g = gis::make_basins(48, 32, {{10, 10}, {38, 20}, {24, 28}});
  auto colors = gis::watershed_labels(g);
  gis::FlowStats st;
  auto area = gis::flow_accumulation(g, &st);
  auto dir = gis::flow_directions(g);

  std::vector<std::uint64_t> watershed_size(3, 0);
  for (auto c : colors) ++watershed_size.at(c);

  std::size_t checked = 0;
  for (std::size_t id = 0; id < area.size(); ++id) {
    if (dir[id] != -1) continue;
    EXPECT_EQ(area[id], watershed_size.at(colors[id])) << "pit " << id;
    ++checked;
  }
  EXPECT_EQ(checked, 3u);
}

TEST(FlowAccumulation, ExternalMemoryPathExercised) {
  auto g = gis::make_fractal(64, 64, 13);
  gis::TerraFlowOptions opt;
  opt.memory_bytes = 16 * 1024;  // force sort runs and PQ spills
  gis::FlowStats st;
  auto tight = gis::flow_accumulation(g, &st, opt);
  EXPECT_GT(st.sort.runs_formed, 1u);
  auto roomy = gis::flow_accumulation(g);
  EXPECT_EQ(tight, roomy);  // memory pressure must not change the answer
}

TEST(FlowAccumulation, FlatGridIsOneSink) {
  gis::Grid g(6, 6);  // all zero elevation: plateau drains to cell 0
  gis::FlowStats st;
  auto area = gis::flow_accumulation(g, &st);
  EXPECT_EQ(st.pits, 1u);
  EXPECT_EQ(area[0], 36u);
}

}  // namespace

/// Tests for the observability subsystem: instrument semantics, JSON
/// round-trips, pull-model collectors, bench artifacts, and sim-time
/// tracing (including the trace a real two-task engine run exports).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "sim/sim.hpp"

namespace obs = lmas::obs;
namespace sim = lmas::sim;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeSetsAndAdds) {
  obs::Gauge g;
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramBucketsBoundariesInclusive) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);   // bucket 0: <= 1
  h.observe(1.0);   // bucket 0: boundary is inclusive
  h.observe(5.0);   // bucket 1: (1, 10]
  h.observe(100.0); // bucket 2: overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_DOUBLE_EQ(h.mean(), 106.5 / 4);
}

TEST(Metrics, RegistryFindOrCreateIsStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.inc();
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.find_counter("x")->value(), 1u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, CollectorRunsAtSnapshotAndDeregisters) {
  obs::MetricsRegistry reg;
  int runs = 0;
  const std::size_t id = reg.add_collector([&] {
    ++runs;
    reg.gauge("pulled").set(7.0);
  });
  EXPECT_EQ(runs, 0);  // pull model: nothing happens until a snapshot
  obs::Json snap = reg.snapshot();
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("pulled").as_double(), 7.0);
  reg.remove_collector(id);
  (void)reg.snapshot();
  EXPECT_EQ(runs, 1);
}

TEST(Metrics, SnapshotRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").inc(3);
  reg.counter("a.count").inc(1);
  reg.gauge("load").set(0.75);
  reg.histogram("lat", {0.1, 1.0}).observe(0.5);

  const std::string text = reg.snapshot().dump(2);
  auto parsed = obs::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("counters").at("b.count").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed->at("gauges").at("load").as_double(), 0.75);
  EXPECT_EQ(parsed->at("histograms").at("lat").at("count").as_int(), 1);
  // Keys are emitted sorted for deterministic artifacts.
  EXPECT_EQ(parsed->at("counters").members()[0].first, "a.count");
}

// ------------------------------------------------------------------ json

TEST(Json, DumpAndParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["int"] = 42;
  doc["neg"] = -1.5;
  doc["str"] = "he said \"hi\"\n";
  doc["null"] = nullptr;
  doc["flag"] = true;
  doc["arr"] = obs::Json::array_of(std::vector<double>{1, 2.5, 3});

  for (int indent : {-1, 2}) {
    auto back = obs::Json::parse(doc.dump(indent));
    ASSERT_TRUE(back.has_value()) << "indent " << indent;
    EXPECT_EQ(back->at("int").as_int(), 42);
    EXPECT_DOUBLE_EQ(back->at("neg").as_double(), -1.5);
    EXPECT_EQ(back->at("str").as_string(), "he said \"hi\"\n");
    EXPECT_TRUE(back->at("null").is_null());
    EXPECT_TRUE(back->at("flag").as_bool());
    EXPECT_EQ(back->at("arr").size(), 3u);
    EXPECT_DOUBLE_EQ(back->at("arr").at(1).as_double(), 2.5);
  }
}

TEST(Json, IntegralDoublesPrintAsIntegers) {
  obs::Json j(1048576.0);
  EXPECT_EQ(j.dump(), "1048576");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(obs::Json::parse("{").has_value());
  EXPECT_FALSE(obs::Json::parse("[1,]").has_value());
  EXPECT_FALSE(obs::Json::parse("{} trailing").has_value());
  EXPECT_FALSE(obs::Json::parse("nul").has_value());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::Json j = obs::Json::object();
  j["z"] = 1;
  j["a"] = 2;
  ASSERT_EQ(j.members().size(), 2u);
  EXPECT_EQ(j.members()[0].first, "z");
}

// ----------------------------------------------------------------- report

TEST(BenchReport, WritesParsableArtifact) {
  obs::BenchReport report("obs_test");
  report.params()["n"] = 128;
  obs::Json row = obs::Json::object();
  row["speedup"] = 1.5;
  report.results().push_back(std::move(row));
  report.add_utilization("host0.cpu", 0.5, 0.25, {0.25, 0.75});

  obs::MetricsRegistry reg;
  reg.counter("c").inc(9);
  report.add_metrics(reg);

  ASSERT_TRUE(report.write("."));
  std::ifstream in(report.path("."));
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::Json::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("schema").as_string(), "lmas-bench-v1");
  EXPECT_EQ(parsed->at("bench").as_string(), "obs_test");
  EXPECT_EQ(parsed->at("params").at("n").as_int(), 128);
  EXPECT_DOUBLE_EQ(parsed->at("results").at(0).at("speedup").as_double(), 1.5);
  const obs::Json& util = parsed->at("utilization").at("host0.cpu");
  EXPECT_DOUBLE_EQ(util.at("mean").as_double(), 0.5);
  EXPECT_EQ(util.at("series").size(), 2u);
  EXPECT_EQ(parsed->at("metrics").at("counters").at("c").as_int(), 9);
  std::remove(report.path(".").c_str());
}

// ------------------------------------------------------------------ trace

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  t.begin(0, "x", 1.0);
  t.complete(0, "y", 1.0, 2.0);
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(Trace, RecordsSpansWhenEnabled) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer t;
  t.enable();
  const auto track = t.track("res");
  t.complete(track, "io", 1.0, 1.5);
  t.instant(track, "mark", 2.0);
  t.counter(track, "depth", 2.5, 3.0);
  ASSERT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.events()[0].ph, 'X');
  EXPECT_DOUBLE_EQ(t.events()[0].ts, 1.0e6);   // microseconds
  EXPECT_DOUBLE_EQ(t.events()[0].dur, 0.5e6);
}

TEST(Trace, JsonEventsCarryRequiredKeys) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  obs::Tracer t;
  t.enable();
  const auto track = t.track("worker");
  t.begin(track, "job", 0.0);
  t.end(track, "job", 1.0);
  const obs::Json doc = t.to_json();
  ASSERT_TRUE(doc.is_array());
  for (const obs::Json& ev : doc.items()) {
    EXPECT_TRUE(ev.contains("name"));
    EXPECT_TRUE(ev.contains("ph"));
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("pid"));
    EXPECT_TRUE(ev.contains("tid"));
  }
  // One thread_name metadata record per registered track.
  EXPECT_EQ(doc.at(0).at("ph").as_string(), "M");
}

namespace {

sim::Task<> worker(sim::Engine& eng, sim::Resource& res, int uses) {
  for (int i = 0; i < uses; ++i) {
    co_await res.use(0.25);
    co_await eng.sleep(0.25);
  }
}

sim::Task<> napper(sim::Engine& eng, int naps) {
  for (int i = 0; i < naps; ++i) co_await eng.sleep(0.1);
}

}  // namespace

TEST(Trace, TwoTaskEngineRunExportsWellFormedTrace) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  sim::Engine eng;
  eng.tracer().enable();
  sim::Resource res(eng, "shared");
  eng.spawn(worker(eng, res, 2), "w1");
  eng.spawn(worker(eng, res, 3), "w2");
  eng.run();
  ASSERT_EQ(eng.unfinished_tasks(), 0u);

  const obs::Json doc = eng.tracer().to_json();
  ASSERT_TRUE(doc.is_array());
  ASSERT_GT(doc.size(), 0u);

  // B/E spans must nest and their timestamps must be monotone. ('X'
  // events are exempt: queued resource occupancy legitimately records a
  // start time in the future of the emission point.)
  std::vector<std::string> stack;
  double last_ts = 0;
  std::size_t spans = 0;
  for (const obs::Json& ev : doc.items()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph != "B" && ph != "E") continue;
    const double ts = ev.at("ts").as_double();
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
    if (ph == "B") {
      stack.push_back(ev.at("name").as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), ev.at("name").as_string())
          << "spans must close innermost-first";
      stack.pop_back();
      ++spans;
    }
  }
  EXPECT_TRUE(stack.empty()) << "every span must close";
  EXPECT_GT(spans, 0u);

  // The named roots appear as span names; resource occupancy as 'X'.
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"w1\""), std::string::npos);
  EXPECT_NE(text.find("\"w2\""), std::string::npos);
  EXPECT_NE(text.find("\"X\""), std::string::npos);
}

TEST(Trace, WriteChromeTraceProducesParsableFile) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  sim::Engine eng;
  eng.tracer().enable();
  sim::Resource res(eng, "disk");
  eng.spawn(worker(eng, res, 1), "w");
  eng.run();
  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(eng.tracer().write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::Json::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_array());
  std::remove(path.c_str());
}

// ------------------------------------------------- engine + resource obs

TEST(EngineObs, EventsProcessedCountsAcrossRuns) {
  sim::Engine eng;
  eng.spawn(napper(eng, 3));
  eng.run();
  const auto first = eng.events_processed();
  EXPECT_GT(first, 0u);
  sim::Resource res(eng, "r");
  eng.spawn(worker(eng, res, 2), "w");
  eng.run();
  EXPECT_GT(eng.events_processed(), first);
}

TEST(EngineObs, SnapshotPublishesResourceAndEventMetrics) {
  sim::Engine eng;
  sim::Resource res(eng, "host0.cpu");
  eng.spawn(worker(eng, res, 3), "w");
  eng.run();
  const obs::Json snap = eng.metrics().snapshot();
  EXPECT_EQ(snap.at("counters").at("host0.cpu.requests").as_int(), 3);
  EXPECT_DOUBLE_EQ(
      snap.at("gauges").at("host0.cpu.busy_seconds").as_double(), 0.75);
  EXPECT_EQ(snap.at("counters").at("engine.events").as_int(),
            std::int64_t(eng.events_processed()));
  // Idempotent across snapshots (collectors re-publish, not re-add).
  const obs::Json again = eng.metrics().snapshot();
  EXPECT_EQ(again.at("counters").at("host0.cpu.requests").as_int(), 3);
}

TEST(EngineObs, UnfinishedTaskNamesIdentifyBlockedProcess) {
  sim::Engine eng;
  sim::Condition cv(eng);
  eng.spawn([](sim::Condition& c) -> sim::Task<> { co_await c.wait(); }(cv),
            "stuck-process");
  eng.spawn([](sim::Engine& e) -> sim::Task<> { co_await e.sleep(1); }(eng));
  eng.run();
  const auto names = eng.unfinished_task_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "stuck-process");
  cv.notify_all();
  eng.run();
  EXPECT_TRUE(eng.unfinished_task_names().empty());
}

// Telemetry pipeline units: LatencyHistogram bucket math and quantile
// bounds, MetricsRegistry cross-kind duplicate-name detection, Tracer
// capacity cap + flow events, and the engine-driven Sampler (boundary
// sampling, parked clock, digest neutrality).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/sim.hpp"

namespace obs = lmas::obs;
namespace sim = lmas::sim;

namespace {

// ---- LatencyHistogram ------------------------------------------------

TEST(LatencyHistogram, EmptyAnswersZero) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LatencyHistogram, SingleValueIsExactAtEveryQuantile) {
  obs::LatencyHistogram h;
  h.observe(3.7e-3);
  // Midpoint answers are clamped to [min, max], so a one-value histogram
  // reports the value itself, not its bucket's midpoint.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.7e-3) << q;
  }
}

TEST(LatencyHistogram, QuantileWithinDocumentedRelativeError) {
  obs::LatencyHistogram h;
  std::vector<double> vals;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 1e-6 * i;  // 1us .. 1ms
    vals.push_back(v);
    h.observe(v);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(std::ceil(q * 1000.0));
    const double exact = vals[rank - 1];
    EXPECT_NEAR(h.quantile(q), exact,
                exact * obs::LatencyHistogram::kRelativeError)
        << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e-3);
}

TEST(LatencyHistogram, UnderflowAndOverflowBucketsCatchExtremes) {
  obs::LatencyHistogram h;
  h.observe(0.0);
  h.observe(-1.0);
  h.observe(std::nan(""));
  h.observe(1e9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_counts().front(), 3u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);   // underflow answers zero
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e9);    // overflow answers max
}

TEST(LatencyHistogram, MergeEqualsPooledObservation) {
  obs::LatencyHistogram pooled, a, b;
  for (int i = 1; i <= 64; ++i) {
    const double v = std::ldexp(1.0 + (i % 7) / 7.0, i % 20 - 10);
    pooled.observe(v);
    (i % 2 ? a : b).observe(v);
  }
  obs::LatencyHistogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.bucket_counts(), pooled.bucket_counts());
  EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), pooled.quantile(q)) << q;
  }
}

TEST(LatencyHistogram, BucketEdgesBracketTheValue) {
  for (const double v : {1.5e-9, 3.3e-6, 0.25, 1.0, 17.0, 1999.0}) {
    const std::size_t idx = obs::LatencyHistogram::bucket_of(v);
    ASSERT_GT(idx, 0u);
    ASSERT_LT(idx, obs::LatencyHistogram::kBucketCount - 1);
    EXPECT_LE(obs::LatencyHistogram::bucket_lower(idx), v) << v;
    EXPECT_GT(obs::LatencyHistogram::bucket_upper(idx), v) << v;
  }
}

TEST(LatencyHistogram, SummaryJsonCarriesQuantiles) {
  obs::LatencyHistogram h;
  h.observe(2.0);
  h.observe(4.0);
  const obs::Json j = h.summary_json();
  EXPECT_EQ(j.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("mean").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(j.at("max").as_double(), 4.0);
  ASSERT_TRUE(obs::Json::parse(j.dump()).has_value());
}

// ---- MetricsRegistry duplicate-name detection ------------------------
// Regression for the registry accepting the same name for two different
// instrument kinds, which emitted ambiguous snapshot keys.

TEST(MetricsRegistry, SameKindSameNameIsFindOrCreate) {
  obs::MetricsRegistry reg;
  auto& c1 = reg.counter("pkts");
  auto& c2 = reg.counter("pkts");
  EXPECT_EQ(&c1, &c2);
  auto& l1 = reg.latency("lat");
  auto& l2 = reg.latency("lat");
  EXPECT_EQ(&l1, &l2);
}

TEST(MetricsRegistry, CrossKindDuplicateNameThrows) {
  obs::MetricsRegistry reg;
  reg.counter("dup.counter");
  reg.gauge("dup.gauge");
  reg.histogram("dup.hist", {1.0, 2.0});
  reg.latency("dup.latency");
  EXPECT_THROW(reg.gauge("dup.counter"), std::invalid_argument);
  EXPECT_THROW(reg.latency("dup.counter"), std::invalid_argument);
  EXPECT_THROW(reg.counter("dup.gauge"), std::invalid_argument);
  EXPECT_THROW(reg.latency("dup.hist"), std::invalid_argument);
  EXPECT_THROW(reg.counter("dup.latency"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dup.latency", {1.0}), std::invalid_argument);
  // The failed registrations must not have corrupted the registry.
  EXPECT_NO_THROW(reg.counter("dup.counter"));
  EXPECT_NO_THROW(reg.latency("dup.latency"));
}

TEST(MetricsRegistry, LatencySummariesSortedByName) {
  obs::MetricsRegistry reg;
  reg.latency("b.lat").observe(1.0);
  reg.latency("a.lat").observe(2.0);
  const obs::Json j = reg.latency_summaries();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.members().front().first, "a.lat");
}

// ---- Tracer capacity cap + flows -------------------------------------

TEST(Tracer, CapacityCapCountsDroppedEventsAndKeepsJsonValid) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with -DLMAS_TRACE=OFF";
  obs::Tracer tr;
  tr.enable();
  tr.set_capacity(8);
  const std::uint32_t tid = tr.track("t0");
  for (int i = 0; i < 20; ++i) tr.instant(tid, "ev", i * 1e-3);
  EXPECT_EQ(tr.event_count(), 8u);
  EXPECT_EQ(tr.dropped_events(), 12u);
  const auto parsed = obs::Json::parse(tr.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_array());
  tr.clear();
  EXPECT_EQ(tr.dropped_events(), 0u);
}

TEST(Tracer, FlowEventsCarryIdParentAndBindingPoint) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with -DLMAS_TRACE=OFF";
  obs::Tracer tr;
  tr.enable();
  const std::uint32_t tid = tr.track("t0");
  tr.flow_begin(tid, "emit", 0.0, /*id=*/7, /*parent=*/3);
  tr.flow_step(tid, "deliver", 1.0, 7);
  tr.flow_end(tid, "consume", 2.0, 7);
  const obs::Json j = tr.to_json();
  // [0] is the thread_name metadata record for the track.
  const obs::Json& s = j.at(1);
  const obs::Json& t = j.at(2);
  const obs::Json& f = j.at(3);
  EXPECT_EQ(s.at("ph").as_string(), "s");
  EXPECT_EQ(s.at("cat").as_string(), "flow");
  EXPECT_EQ(s.at("id").as_int(), 7);
  EXPECT_EQ(s.at("args").at("parent").as_int(), 3);
  EXPECT_EQ(t.at("ph").as_string(), "t");
  EXPECT_EQ(f.at("ph").as_string(), "f");
  EXPECT_EQ(f.at("bp").as_string(), "e");
}

TEST(Tracer, EngineCollectorPublishesDropCounterOnlyWhenDropping) {
  sim::Engine eng;
  // No drops: the counter must NOT appear (pinned goldens fingerprint the
  // metrics snapshot of trace-free runs).
  obs::Json snap = eng.metrics().snapshot();
  EXPECT_TRUE(snap.at("counters").find("trace.dropped_events") == nullptr);
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with -DLMAS_TRACE=OFF";
  eng.tracer().enable();
  eng.tracer().set_capacity(1);
  const std::uint32_t tid = eng.tracer().track("t0");
  eng.tracer().instant(tid, "a", 0.0);
  eng.tracer().instant(tid, "b", 0.0);
  snap = eng.metrics().snapshot();
  const obs::Json* c = snap.at("counters").find("trace.dropped_events");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_int(), 1);
}

// ---- TimeSeries ring + Sampler ---------------------------------------

TEST(TimeSeries, EvictsOldestOnceFull) {
  obs::TimeSeries ts(3);
  for (int i = 1; i <= 5; ++i) ts.push(i);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 2u);
  EXPECT_EQ(ts.values(), (std::vector<double>{3, 4, 5}));
}

TEST(TimeSeries, ExactlyAtCapacityKeepsEverythingAndDropsNothing) {
  obs::TimeSeries ts(4);
  for (int i = 1; i <= 4; ++i) ts.push(i);
  // The boundary push (4th into capacity 4) must fill, not evict.
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 0u);
  EXPECT_EQ(ts.values(), (std::vector<double>{1, 2, 3, 4}));
  // The very next push is the first eviction.
  ts.push(5);
  EXPECT_EQ(ts.dropped(), 1u);
  EXPECT_EQ(ts.values(), (std::vector<double>{2, 3, 4, 5}));
}

TEST(TimeSeries, HeadWrapsAroundAfterFullRingOfEvictions) {
  obs::TimeSeries ts(3);
  // 3 fills + 6 evictions: the head walks the ring twice and must land
  // back at slot 0 with values still reported oldest-first.
  for (int i = 1; i <= 9; ++i) ts.push(i);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 6u);
  EXPECT_EQ(ts.values(), (std::vector<double>{7, 8, 9}));
  // Capacity 1 degenerates to "latest value wins" without corruption.
  obs::TimeSeries one(0);  // clamped to 1
  EXPECT_EQ(one.capacity(), 1u);
  for (int i = 1; i <= 5; ++i) one.push(i);
  EXPECT_EQ(one.dropped(), 4u);
  EXPECT_EQ(one.values(), (std::vector<double>{5}));
}

TEST(LatencyHistogram, MergeWithEmptyOperandIsIdentity) {
  obs::LatencyHistogram h, empty;
  h.observe(1.0);
  h.observe(3.0);
  h.merge(empty);  // rhs empty: no-op, min/max untouched
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  empty.merge(h);  // lhs empty: becomes a copy
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), h.quantile(0.5));
}

TEST(LatencyHistogram, SelfMergeDoublesCountsButPreservesQuantiles) {
  obs::LatencyHistogram h;
  for (int i = 1; i <= 32; ++i) h.observe(1e-3 * i);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  h.merge(h);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * 1e-3 * (32 * 33 / 2));
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 32e-3);
  // Doubling every bucket count leaves the distribution alone.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), p50);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), p99);
}

sim::Task<> three_sleeps(sim::Engine& eng) {
  co_await eng.sleep(0.4);
  co_await eng.sleep(0.4);
  co_await eng.sleep(0.4);
}

TEST(Sampler, SamplesOnPeriodBoundariesWithParkedClock) {
  sim::Engine eng;
  obs::Sampler s(0.25);
  std::vector<double> seen;
  s.add_probe("clock", [&] {
    seen.push_back(eng.now());
    return eng.now();
  });
  eng.set_sampler(&s);
  eng.spawn(three_sleeps(eng));
  eng.run();
  // Events at 0.4/0.8/1.2 cross boundaries 0.25, 0.5+0.75, 1.0; the
  // probe must observe the clock parked exactly on each boundary.
  EXPECT_EQ(s.sample_count(), 4u);
  EXPECT_EQ(seen, (std::vector<double>{0.25, 0.5, 0.75, 1.0}));
  const obs::Json j = s.to_json();
  EXPECT_EQ(j.at("samples").as_int(), 4);
  EXPECT_EQ(j.at("series").at("clock").size(), 4u);
}

TEST(Sampler, NextTimeAdvancesExactlyOnePeriodPerSampleAtHorizonEdge) {
  obs::Sampler s(0.25);
  // Before any sample, the first boundary is one full period in: time 0
  // is NOT due (a run that never advances the clock takes no samples).
  EXPECT_DOUBLE_EQ(s.next_time(), 0.25);
  EXPECT_FALSE(s.due(0.0));
  EXPECT_FALSE(s.due(0.25 - 1e-12));
  // The boundary itself is due (>=, not >): an event landing exactly on
  // the horizon edge samples once, and the boundary advances exactly one
  // period — never skipping ahead past un-crossed boundaries.
  EXPECT_TRUE(s.due(0.25));
  s.sample(s.next_time());
  EXPECT_DOUBLE_EQ(s.next_time(), 0.5);
  EXPECT_FALSE(s.due(0.25));
  // A large jump leaves next_time() lagging: the engine drains one
  // boundary per sample() call until caught up.
  EXPECT_TRUE(s.due(1.0));
  s.sample(s.next_time());
  EXPECT_DOUBLE_EQ(s.next_time(), 0.75);
  EXPECT_TRUE(s.due(1.0));
  s.sample(s.next_time());
  s.sample(s.next_time());
  EXPECT_DOUBLE_EQ(s.next_time(), 1.25);
  EXPECT_FALSE(s.due(1.0));
  EXPECT_EQ(s.sample_count(), 4u);
  // Non-positive period is clamped to 1s, not an infinite-loop zero.
  obs::Sampler degenerate(0.0);
  EXPECT_DOUBLE_EQ(degenerate.period(), 1.0);
  EXPECT_DOUBLE_EQ(degenerate.next_time(), 1.0);
}

TEST(Sampler, InstallingSamplerDoesNotMoveDigestOrEventCount) {
  auto run_once = [](bool with_sampler) {
    sim::Engine eng;
    obs::Sampler s(0.1);
    s.add_probe("zero", [] { return 0.0; });
    if (with_sampler) eng.set_sampler(&s);
    eng.spawn(three_sleeps(eng));
    eng.run();
    return std::pair<std::uint64_t, std::uint64_t>{eng.digest(),
                                                   eng.events_processed()};
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

}  // namespace

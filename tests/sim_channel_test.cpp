#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

sim::Task<> produce_ints(sim::Engine& eng, sim::Channel<int>& ch, int n,
                         double gap) {
  for (int i = 0; i < n; ++i) {
    co_await eng.sleep(gap);
    co_await ch.send(i);
  }
  ch.close();
}

sim::Task<> consume_ints(sim::Engine&, sim::Channel<int>& ch,
                         std::vector<int>& out) {
  while (true) {
    auto v = co_await ch.recv();
    if (!v) break;
    out.push_back(*v);
  }
}

TEST(Channel, DeliversAllMessagesInOrder) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn(produce_ints(eng, ch, 100, 0.01));
  eng.spawn(consume_ints(eng, ch, got));
  eng.run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[size_t(i)], i);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

TEST(Channel, RecvBlocksUntilSend) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<double> recv_times;
  auto consumer = [](sim::Engine& e, sim::Channel<int>& c,
                     std::vector<double>& t) -> sim::Task<> {
    (void)co_await c.recv();
    t.push_back(e.now());
  };
  auto producer = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
    co_await e.sleep(5.0);
    co_await c.send(1);
  };
  eng.spawn(consumer(eng, ch, recv_times));
  eng.spawn(producer(eng, ch));
  eng.run();
  ASSERT_EQ(recv_times.size(), 1u);
  EXPECT_DOUBLE_EQ(recv_times[0], 5.0);
}

TEST(Channel, BoundedSendBlocksWhenFull) {
  sim::Engine eng;
  sim::Channel<int> ch(eng, 2);
  std::vector<double> send_done;
  auto producer = [](sim::Engine& e, sim::Channel<int>& c,
                     std::vector<double>& t) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      const bool ok = co_await c.send(i);
      EXPECT_TRUE(ok);
      t.push_back(e.now());
    }
  };
  auto slow_consumer = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await e.sleep(1.0);
      auto v = co_await c.recv();
      EXPECT_TRUE(v.has_value());
      if (v) EXPECT_EQ(*v, i);
    }
  };
  eng.spawn(producer(eng, ch, send_done));
  eng.spawn(slow_consumer(eng, ch));
  eng.run();
  ASSERT_EQ(send_done.size(), 4u);
  // First two sends fill the buffer at t=0; the rest wait for recvs at 1,2.
  EXPECT_DOUBLE_EQ(send_done[0], 0.0);
  EXPECT_DOUBLE_EQ(send_done[1], 0.0);
  EXPECT_DOUBLE_EQ(send_done[2], 1.0);
  EXPECT_DOUBLE_EQ(send_done[3], 2.0);
}

TEST(Channel, CloseWakesBlockedReceivers) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  bool got_nullopt = false;
  auto consumer = [](sim::Channel<int>& c, bool& flag) -> sim::Task<> {
    auto v = co_await c.recv();
    flag = !v.has_value();
  };
  auto closer = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
    co_await e.sleep(1.0);
    c.close();
  };
  eng.spawn(consumer(ch, got_nullopt));
  eng.spawn(closer(eng, ch));
  eng.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(Channel, CloseReportsUndeliveredToBlockedSender) {
  // Contract: a sender blocked on a full channel when close() arrives is
  // woken WITHOUT its value being enqueued — send resolves delivered ==
  // false and the value is destroyed. Pre-fix callers that ignored the
  // result lost the packet silently; this pins the documented behavior
  // the delivery-checking callers now rely on.
  sim::Engine eng;
  sim::Channel<int> ch(eng, 1);
  ASSERT_TRUE(ch.try_send(1));  // fill the single slot
  bool first_delivered = false;
  bool second_delivered = true;
  auto sender = [](sim::Channel<int>& c, bool& d1, bool& d2) -> sim::Task<> {
    d1 = co_await c.send(2);  // blocks: channel full
    d2 = co_await c.send(3);  // post-close send: immediate failure
  };
  auto closer = [](sim::Engine& e, sim::Channel<int>& c) -> sim::Task<> {
    co_await e.sleep(1.0);
    c.close();
  };
  eng.spawn(sender(ch, first_delivered, second_delivered));
  eng.spawn(closer(eng, ch));
  eng.run();
  EXPECT_FALSE(first_delivered);
  EXPECT_FALSE(second_delivered);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  // The buffered pre-close value still drains; the dropped ones never
  // appear.
  std::vector<int> got;
  eng.spawn(consume_ints(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1}));
}

TEST(Channel, DrainsBufferedItemsAfterClose) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  ASSERT_TRUE(ch.try_send(7));
  ASSERT_TRUE(ch.try_send(8));
  ch.close();
  std::vector<int> got;
  eng.spawn(consume_ints(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

TEST(Channel, TrySendFailsWhenClosedOrFull) {
  sim::Engine eng;
  sim::Channel<int> bounded(eng, 1);
  EXPECT_TRUE(bounded.try_send(1));
  EXPECT_FALSE(bounded.try_send(2));
  sim::Channel<int> closed(eng);
  closed.close();
  EXPECT_FALSE(closed.try_send(1));
}

TEST(Channel, ManyToOneFanInPreservesCount) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> got;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  int open_producers = kProducers;
  auto producer = [](sim::Engine& e, sim::Channel<int>& c, int id,
                     int& open) -> sim::Task<> {
    for (int i = 0; i < kPerProducer; ++i) {
      co_await e.sleep(0.001 * (id + 1));
      co_await c.send(id);
    }
    if (--open == 0) c.close();
  };
  for (int p = 0; p < kProducers; ++p) {
    eng.spawn(producer(eng, ch, p, open_producers));
  }
  eng.spawn(consume_ints(eng, ch, got));
  eng.run();
  EXPECT_EQ(got.size(), size_t(kProducers * kPerProducer));
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(std::count(got.begin(), got.end(), p), kPerProducer);
  }
}

TEST(Channel, ContendedBoundedChannelNeverDropsValues) {
  // Regression: when many senders contend for a bounded channel, a freed
  // slot must go to the longest-waiting sender; a newly arriving sender
  // stealing it used to silently drop the woken sender's value.
  sim::Engine eng;
  sim::Channel<int> ch(eng, 2);
  constexpr int kSenders = 16;
  constexpr int kPerSender = 100;
  int open_senders = kSenders;
  auto producer = [](sim::Engine&, sim::Channel<int>& c, int id,
                     int& open) -> sim::Task<> {
    for (int i = 0; i < kPerSender; ++i) {
      const bool ok = co_await c.send(id * 1000 + i);
      EXPECT_TRUE(ok);
    }
    if (--open == 0) c.close();
  };
  std::vector<int> got;
  auto consumer = [](sim::Engine& e, sim::Channel<int>& c,
                     std::vector<int>& out) -> sim::Task<> {
    while (true) {
      auto v = co_await c.recv();
      if (!v) break;
      out.push_back(*v);
      co_await e.sleep(0.001);  // slow consumer: senders pile up
    }
  };
  for (int sidx = 0; sidx < kSenders; ++sidx) {
    eng.spawn(producer(eng, ch, sidx, open_senders));
  }
  eng.spawn(consumer(eng, ch, got));
  eng.run();
  ASSERT_EQ(got.size(), size_t(kSenders * kPerSender));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::unique(got.begin(), got.end()), got.end());
  // Per-sender FIFO: within one sender's values, order must have been
  // preserved (checked via sorted uniqueness above plus count).
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

}  // namespace

// Multi-tenant scheduler regressions: zero-job drain, construction-time
// weight validation (TenancyConfig and DsmSortConfig paths), cross-job
// isolation when one tenant's job rides through a mid-run crash while
// another is admitted, seeded-run determinism, and fair-share weighting
// actually speeding up the heavier tenant.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "core/dsm_sort.hpp"
#include "tenant/tenant.hpp"

namespace asu = lmas::asu;
namespace core = lmas::core;
namespace tenant = lmas::tenant;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  return mp;
}

tenant::TenantSpec spec(std::string name, double weight = 1.0) {
  tenant::TenantSpec ts;
  ts.name = std::move(name);
  ts.fair_share_weight = weight;
  return ts;
}

tenant::TenancyConfig small_config() {
  tenant::TenancyConfig cfg;
  cfg.tenants.push_back(spec("alice"));
  cfg.tenants.push_back(spec("bob"));
  cfg.total_jobs = 4;
  cfg.offered_rate = 4.0;
  cfg.max_in_flight = 2;
  cfg.job_alpha = 4;
  cfg.job_log2_alpha_beta = 8;
  return cfg;
}

// ---- construction-time validation ------------------------------------

TEST(Tenancy, FairShareWeightZeroThrowsAtConstruction) {
  tenant::TenancyConfig cfg = small_config();
  cfg.tenants[1].fair_share_weight = 0.0;
  EXPECT_THROW(tenant::run_tenancy(machine(1, 4), cfg),
               std::invalid_argument);
  cfg.tenants[1].fair_share_weight = -1.0;
  EXPECT_THROW(tenant::run_tenancy(machine(1, 4), cfg),
               std::invalid_argument);
}

TEST(Tenancy, DsmSortConfigRejectsNonPositiveFairShare) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 10;
  cfg.alpha = 4;
  cfg.log2_alpha_beta = 8;
  cfg.fair_share_weight = 0.0;
  EXPECT_THROW(core::run_dsm_sort(machine(1, 4), cfg),
               std::invalid_argument);
}

TEST(Tenancy, InvalidMixAndArrivalConfigsThrow) {
  tenant::TenancyConfig cfg = small_config();
  cfg.tenants[0].mix.push_back({.weight = 0.0});
  EXPECT_THROW(tenant::ArrivalProcess{cfg}, std::invalid_argument);

  cfg = small_config();
  cfg.tenants[0].arrival_weight = 0.0;
  EXPECT_THROW(tenant::ArrivalProcess{cfg}, std::invalid_argument);

  cfg = small_config();
  cfg.offered_rate = 0.0;
  EXPECT_THROW(tenant::ArrivalProcess{cfg}, std::invalid_argument);

  cfg = small_config();
  cfg.tenants.clear();
  EXPECT_THROW(tenant::ArrivalProcess{cfg}, std::invalid_argument);
}

// ---- zero-admitted-jobs drain ----------------------------------------

TEST(Tenancy, ZeroJobsDrainsWithoutHanging) {
  tenant::TenancyConfig cfg = small_config();
  cfg.total_jobs = 0;
  const auto rep = tenant::run_tenancy(machine(1, 4), cfg);
  EXPECT_EQ(rep.jobs_submitted, 0u);
  EXPECT_EQ(rep.jobs_completed, 0u);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.makespan, 0.0);
}

// ---- cross-job isolation under a crash window ------------------------

TEST(Tenancy, TenantAdmittedWhileAnotherRidesThroughCrash) {
  tenant::TenancyConfig cfg = small_config();
  cfg.total_jobs = 6;
  cfg.offered_rate = 50.0;  // arrivals pile up against max_in_flight
  cfg.max_in_flight = 2;
  cfg.load_manager.mode = core::LoadManagerMode::Manage;
  // Crash one sort-tier ASU early enough to land mid-migration for the
  // first admitted jobs, recover before the run ends.
  cfg.faults.crash(/*on_asu=*/true, /*node=*/1, /*at=*/0.005,
                   /*duration=*/0.05);
  const auto rep = tenant::run_tenancy(machine(2, 4), cfg);
  EXPECT_EQ(rep.jobs_completed, 6u);
  EXPECT_TRUE(rep.conservation_ok);
  EXPECT_TRUE(rep.ok());
  // The cap was binding at this offered rate: someone waited.
  EXPECT_GT(rep.admission_waits, 0u);
  for (const auto& t : rep.tenants) {
    EXPECT_TRUE(t.conservation_ok) << t.name;
    EXPECT_EQ(t.records_in, t.records_out) << t.name;
  }
}

// ---- seeded determinism ----------------------------------------------

TEST(Tenancy, SameSeedReproducesDigestAndFingerprint) {
  tenant::TenancyConfig cfg = small_config();
  cfg.tenants[0].mix.push_back(
      {.kind = tenant::JobKind::ActiveScan, .records = 1 << 12});
  cfg.tenants[1].mix.push_back(
      {.kind = tenant::JobKind::RTreeBulkLoad, .records = 1 << 12});
  const auto a = tenant::run_tenancy(machine(2, 4), cfg);
  const auto b = tenant::run_tenancy(machine(2, 4), cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.arrival_fingerprint, b.arrival_fingerprint);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.makespan, b.makespan);

  tenant::TenancyConfig other = cfg;
  other.seed = 43;
  const auto c = tenant::run_tenancy(machine(2, 4), other);
  EXPECT_NE(a.arrival_fingerprint, c.arrival_fingerprint);
}

// ---- fair-share weighting has teeth ----------------------------------

TEST(Tenancy, HigherFairShareWeightRunsFaster) {
  auto run_with_weight = [](double w) {
    tenant::TenancyConfig cfg;
    cfg.tenants.push_back(spec("solo", w));
    cfg.total_jobs = 2;
    cfg.offered_rate = 10.0;
    cfg.max_in_flight = 1;  // serialize: pure per-job cost comparison
    cfg.job_alpha = 4;
    cfg.job_log2_alpha_beta = 8;
    return tenant::run_tenancy(machine(1, 4), cfg);
  };
  const auto heavy = run_with_weight(2.0);   // charged at half rate
  const auto light = run_with_weight(0.5);   // charged at double rate
  ASSERT_TRUE(heavy.ok());
  ASSERT_TRUE(light.ok());
  EXPECT_LT(heavy.mean_job_seconds, light.mean_job_seconds);
}

// ---- per-tenant telemetry shape --------------------------------------

TEST(Tenancy, ManagedRunPublishesPerTenantHistogramsAndLmCounters) {
  tenant::TenancyConfig cfg = small_config();
  cfg.load_manager.mode = core::LoadManagerMode::Manage;
  const auto rep = tenant::run_tenancy(machine(2, 4), cfg);
  ASSERT_TRUE(rep.histograms.is_object());
  EXPECT_NE(rep.histograms.find("dsm.job_seconds"), nullptr);
  EXPECT_NE(rep.histograms.find("dsm.job_seconds.alice"), nullptr);
  EXPECT_NE(rep.histograms.find("dsm.job_seconds.bob"), nullptr);
  const lmas::obs::Json* counters = rep.metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("lm.alice.migrations"), nullptr);
  EXPECT_NE(counters->find("lm.bob.router_switches"), nullptr);
}

}  // namespace

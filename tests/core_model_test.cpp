#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "core/core.hpp"

namespace core = lmas::core;
namespace sim = lmas::sim;
namespace asu = lmas::asu;

namespace {

core::Packet packet_for_subset(std::uint32_t s) {
  core::Packet p;
  p.subset = s;
  p.records.resize(10);
  return p;
}

std::vector<core::RouteTarget> fake_targets(std::vector<asu::Node*> nodes) {
  std::vector<core::RouteTarget> t;
  for (auto* n : nodes) t.push_back({n});
  return t;
}

// ---------- routing policies ----------

TEST(Routing, StaticPartitionIsDeterministicBySubset) {
  core::StaticPartitionRouter modulo;  // no subset count: modulo fallback
  std::vector<core::RouteTarget> targets(4);
  for (std::uint32_t s = 0; s < 16; ++s) {
    const auto p = packet_for_subset(s);
    EXPECT_EQ(modulo.pick(p, targets), s % 4);
    EXPECT_EQ(modulo.pick(p, targets), s % 4);  // stable
  }
  // With the subset count known, instances own contiguous blocks (the
  // paper's "half the subsets to each host").
  core::StaticPartitionRouter block(16);
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(block.pick(packet_for_subset(s), targets), s / 4);
  }
}

TEST(Routing, RoundRobinCycles) {
  core::RoundRobinRouter r;
  std::vector<core::RouteTarget> targets(3);
  const auto p = packet_for_subset(0);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(r.pick(p, targets));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Routing, SimpleRandomizationBalancesEachSubset) {
  core::SimpleRandomizationRouter r{sim::Rng(7)};
  std::vector<core::RouteTarget> targets(4);
  // For each subset, after k*4 picks every target got exactly k packets:
  // randomized cycling preserves the balance of records across hosts.
  for (std::uint32_t s = 0; s < 8; ++s) {
    std::map<std::size_t, int> counts;
    const auto p = packet_for_subset(s);
    for (int i = 0; i < 40; ++i) counts[r.pick(p, targets)]++;
    for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(counts[t], 10);
  }
}

TEST(Routing, SimpleRandomizationCyclesAreShuffled) {
  core::SimpleRandomizationRouter r{sim::Rng(7)};
  std::vector<core::RouteTarget> targets(8);
  const auto p = packet_for_subset(3);
  std::vector<std::size_t> cycle1, cycle2;
  for (int i = 0; i < 8; ++i) cycle1.push_back(r.pick(p, targets));
  for (int i = 0; i < 8; ++i) cycle2.push_back(r.pick(p, targets));
  // Each cycle is a permutation of 0..7.
  auto is_perm = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] != i) return false;
    }
    return true;
  };
  EXPECT_TRUE(is_perm(cycle1));
  EXPECT_TRUE(is_perm(cycle2));
  EXPECT_NE(cycle1, cycle2);  // reshuffled (true for this seed)
}

TEST(Routing, LeastLoadedPicksSmallestBacklog) {
  sim::Engine eng;
  asu::MachineParams mp;
  asu::Node n0(eng, asu::NodeKind::Host, 0, mp);
  asu::Node n1(eng, asu::NodeKind::Host, 1, mp);
  asu::Node n2(eng, asu::NodeKind::Host, 2, mp);
  n0.cpu().post(5.0);
  n1.cpu().post(1.0);
  n2.cpu().post(3.0);
  core::LeastLoadedRouter r;
  auto targets = fake_targets({&n0, &n1, &n2});
  EXPECT_EQ(r.pick(packet_for_subset(0), targets), 1u);
  n1.cpu().post(10.0);
  EXPECT_EQ(r.pick(packet_for_subset(0), targets), 2u);
}

TEST(Routing, FactoryProducesAllKinds) {
  using core::RouterKind;
  for (auto kind : {RouterKind::Static, RouterKind::RoundRobin,
                    RouterKind::SimpleRandomization,
                    RouterKind::LeastLoaded}) {
    auto r = core::make_router(
        {.kind = kind,
         .rng = sim::Rng(7).stream(sim::stream_id("routing-test"))});
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name(), core::router_kind_name(kind));
  }
  // PowerOfD reports its sample width, not the kind tag.
  auto pod = core::make_router(
      {.kind = RouterKind::PowerOfD,
       .rng = sim::Rng(7).stream(sim::stream_id("routing-test")),
       .d_choices = 3});
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->name(), "power-of-3");
}

// ---------- containers ----------

TEST(Containers, SetScanVisitsEverythingOnce) {
  core::SetContainer<int> set;
  for (int i = 0; i < 10; ++i) set.insert(i);
  std::set<int> seen;
  while (auto v = set.take_any()) seen.insert(*v);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_TRUE(set.scan_done());
  EXPECT_EQ(set.completed_count(), 10u);
}

TEST(Containers, SetRescanAfterReset) {
  core::SetContainer<int> set;
  set.insert(1);
  set.insert(2);
  while (set.take_any()) {
  }
  EXPECT_TRUE(set.scan_done());
  set.reset_scan();
  EXPECT_EQ(set.pending_count(), 2u);
}

TEST(Containers, SetDestructiveScanReleasesRecords) {
  core::SetContainer<int> set;
  set.insert(1);
  set.insert(2);
  while (set.take_any(/*destructive=*/true)) {
  }
  EXPECT_EQ(set.completed_count(), 0u);
  set.reset_scan();
  EXPECT_EQ(set.pending_count(), 0u);  // gone for good
}

TEST(Containers, SetRandomizedTakeStillCoversAll) {
  core::SetContainer<int> set;
  for (int i = 0; i < 50; ++i) set.insert(i);
  sim::Rng rng(3);
  std::set<int> seen;
  while (auto v = set.take_any(false, &rng)) seen.insert(*v);
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Containers, StreamDeliversInOrder) {
  core::StreamContainer<int> st;
  for (int i = 0; i < 5; ++i) st.push_back(i * 10);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(st.take_next().value(), i * 10);
  EXPECT_FALSE(st.take_next().has_value());
  st.reset_scan();
  EXPECT_EQ(st.take_next().value(), 0);
}

TEST(Containers, StreamDestructiveScan) {
  core::StreamContainer<int> st;
  st.push_back(1);
  st.push_back(2);
  EXPECT_EQ(st.take_next(true).value(), 1);
  EXPECT_EQ(st.size(), 1u);
}

TEST(Containers, ArrayRandomAccess) {
  core::ArrayContainer<int> arr(4);
  arr[2] = 42;
  EXPECT_EQ(arr.at(2), 42);
  EXPECT_THROW(arr.at(10), std::out_of_range);
  arr.push_back(7);
  EXPECT_EQ(arr.size(), 5u);
}

// ---------- workload ----------

TEST(Workload, UniformCoversKeySpace) {
  core::KeyGenerator gen(core::KeyDist::Uniform, 100000, sim::Rng(1));
  std::size_t low = 0, high = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto k = gen.next();
    if (k < 0x40000000u) ++low;
    if (k >= 0xC0000000u) ++high;
  }
  EXPECT_NEAR(double(low), 25000.0, 1000.0);
  EXPECT_NEAR(double(high), 25000.0, 1000.0);
}

TEST(Workload, ExponentialSkewsLow) {
  core::KeyGenerator gen(core::KeyDist::Exponential, 100000, sim::Rng(2));
  std::size_t low_quarter = 0;
  for (int i = 0; i < 100000; ++i) {
    if (gen.next() < 0x40000000u) ++low_quarter;
  }
  EXPECT_GT(low_quarter, 80000u);  // heavy concentration at low keys
}

TEST(Workload, HalfUniformHalfExpSwitchesAtMidpoint) {
  const std::size_t n = 50000;
  core::KeyGenerator gen(core::KeyDist::HalfUniformHalfExp, n, sim::Rng(3));
  std::size_t low_first = 0, low_second = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool low = gen.next() < 0x40000000u;
    (i < n / 2 ? low_first : low_second) += low ? 1 : 0;
  }
  EXPECT_NEAR(double(low_first), double(n) / 8, 600.0);  // ~25% of half
  EXPECT_GT(low_second, n / 2 * 8 / 10);                 // skewed half
}

TEST(Workload, SortedAndReverseAreMonotone) {
  const std::size_t n = 1000;
  core::KeyGenerator asc(core::KeyDist::Sorted, n, sim::Rng(4));
  core::KeyGenerator desc(core::KeyDist::ReverseSorted, n, sim::Rng(4));
  std::uint32_t prev_a = 0, prev_d = std::uint32_t(-1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = asc.next();
    const auto d = desc.next();
    EXPECT_GE(a, prev_a);
    EXPECT_LE(d, prev_d);
    prev_a = a;
    prev_d = d;
  }
}

TEST(Workload, DeterministicForSeed) {
  core::KeyGenerator g1(core::KeyDist::Uniform, 100, sim::Rng(9));
  core::KeyGenerator g2(core::KeyDist::Uniform, 100, sim::Rng(9));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g1.next(), g2.next());
}

// ---------- packet / functor cost ----------

TEST(Packet, WireBytesUsesModeledRecordSize) {
  core::Packet p;
  p.records.resize(100);
  EXPECT_EQ(p.wire_bytes(128), 12800u);
  EXPECT_EQ(p.size(), 100u);
}

TEST(FunctorCost, PacketCostCombinesTerms) {
  core::FunctorCost c{1e-6, 5e-6};
  EXPECT_DOUBLE_EQ(c.packet_cost(10), 5e-6 + 10e-6);
}

// ---------- config derivations ----------

TEST(DsmConfig, BetaShrinksAsAlphaGrows) {
  core::DsmSortConfig cfg;
  cfg.log2_alpha_beta = 18;
  cfg.alpha = 1;
  EXPECT_EQ(cfg.beta(), std::size_t(1) << 18);
  cfg.alpha = 256;
  EXPECT_EQ(cfg.beta(), std::size_t(1) << 10);
  // alpha * beta constant:
  for (unsigned a : {1u, 4u, 16u, 64u, 256u}) {
    cfg.alpha = a;
    EXPECT_EQ(std::size_t(a) * cfg.beta(), std::size_t(1) << 18);
  }
}

TEST(DsmConfig, BaselineUsesFullKRuns) {
  core::DsmSortConfig cfg;
  cfg.alpha = 64;
  cfg.distribute_on_asus = false;
  EXPECT_EQ(cfg.host_run_length(), std::size_t(1) << cfg.log2_alpha_beta);
  cfg.distribute_on_asus = true;
  EXPECT_EQ(cfg.host_run_length(), cfg.beta());
}

}  // namespace

// Golden-run regression (ctest label: tier1).
//
// The pinned file lives at tests/golden/golden_runs.json (override with
// LMAS_GOLDEN_FILE). When an intentional behavior change moves a digest,
// regenerate with `make regolden` and commit the new file alongside the
// change. See EXPERIMENTS.md, "Reproducing a run".
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "check/golden.hpp"

namespace check = lmas::check;

namespace {

// The conformance contract: same seed + same config => identical digest.
// Every pinned case is executed twice in-process; any divergence means
// hidden nondeterminism (iteration order, uninitialized state, wall-clock
// leakage) entered the engine.
TEST(Golden, DigestIsDeterministicAcrossReruns) {
  for (const auto& c : check::golden_cases()) {
    const check::GoldenResult a = check::run_golden_case(c);
    const check::GoldenResult b = check::run_golden_case(c);
    EXPECT_EQ(a, b) << c.name << ": rerun diverged";
    EXPECT_TRUE(a.ok) << c.name << ": run failed validation";
  }
}

// The telemetry pipeline's acceptance gate: every pinned case must
// execute bit-identically with histograms + sampler + spans enabled —
// same digest, same timings, same event count. Histograms observe from
// existing control flow, the sampler rides the run loop without
// scheduling events, and span ids are only allocated while tracing.
// The metrics fingerprint is the one field that legitimately grows:
// opting in registers latency instruments, and the snapshot dumps the
// whole registry. That is exactly why telemetry defaults OFF — the
// pinned fingerprints cover the default configuration.
TEST(Golden, ExecutionUnmovedByTelemetry) {
  for (const auto& c : check::golden_cases()) {
    const check::GoldenResult off = check::run_golden_case(c);
    check::GoldenCase with = c;
    with.config.telemetry.histograms = true;
    with.config.telemetry.sampler = true;
    const check::GoldenResult on = check::run_golden_case(with);
    EXPECT_EQ(on.digest, off.digest) << c.name;
    EXPECT_EQ(on.pass1_seconds, off.pass1_seconds) << c.name;
    EXPECT_EQ(on.sim_events, off.sim_events) << c.name;
    EXPECT_EQ(on.records_in, off.records_in) << c.name;
    EXPECT_TRUE(on.ok) << c.name;
    EXPECT_NE(on.metrics_fingerprint, off.metrics_fingerprint)
        << c.name << ": opting in should register latency instruments";
  }
}

// The sharded-engine compatibility gate: the pinned golden workloads run
// on the serial coroutine engine, which never consults LMAS_SHARDS — the
// variable selects a shard count only for sim::ShardedEngine models. The
// pinned digests therefore must be bit-identical with the variable set,
// unset, or garbage. If this test ever fails, golden workloads started
// depending on the sharding environment, which would silently fork the
// pinned baselines by machine configuration.
TEST(Golden, PinnedDigestsUnmovedByShardsEnvironment) {
  const std::string path = check::default_golden_path();
  const auto pinned = check::load_goldens(path);
  ASSERT_TRUE(pinned.has_value())
      << "cannot load " << path << " (regenerate with: make regolden)";
  ASSERT_EQ(setenv("LMAS_SHARDS", "4", 1), 0);
  std::vector<check::GoldenResult> fresh;
  for (const auto& c : check::golden_cases()) {
    fresh.push_back(check::run_golden_case(c));
  }
  ASSERT_EQ(unsetenv("LMAS_SHARDS"), 0);
  for (const auto& m : check::compare_goldens(*pinned, fresh)) {
    ADD_FAILURE() << m.name << " at LMAS_SHARDS=4: " << m.detail
                  << "\n  (golden workloads run the serial engine and must "
                     "not consult the sharding environment)";
  }
}

TEST(Golden, FreshRunsMatchPinnedFile) {
  const std::string path = check::default_golden_path();
  const auto pinned = check::load_goldens(path);
  ASSERT_TRUE(pinned.has_value())
      << "cannot load " << path << " (regenerate with: make regolden)";
  std::vector<check::GoldenResult> fresh;
  for (const auto& c : check::golden_cases()) {
    fresh.push_back(check::run_golden_case(c));
  }
  const auto mismatches = check::compare_goldens(*pinned, fresh);
  for (const auto& m : mismatches) {
    ADD_FAILURE() << m.name << ": " << m.detail
                  << "\n  (intentional change? run: make regolden)";
  }
}

TEST(Golden, FileRoundTripsThroughJson) {
  std::vector<check::GoldenResult> results;
  check::GoldenResult r;
  r.name = "case-a";
  r.digest = 0xdeadbeefcafef00dULL;
  r.metrics_fingerprint = 0x0123456789abcdefULL;
  r.pass1_seconds = 1.25;
  r.records_in = 16384;
  r.sim_events = 987654321;
  r.ok = true;
  results.push_back(r);

  const std::string path = ::testing::TempDir() + "golden_roundtrip.json";
  ASSERT_TRUE(check::write_goldens(path, results));
  const auto back = check::load_goldens(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ(back->front(), results.front());
  EXPECT_TRUE(check::compare_goldens(results, *back).empty());
}

TEST(Golden, CompareFlagsMissingAndExtraCases) {
  check::GoldenResult a;
  a.name = "only-pinned";
  check::GoldenResult b;
  b.name = "only-fresh";
  const auto mism = check::compare_goldens({a}, {b});
  ASSERT_EQ(mism.size(), 2u);
  EXPECT_EQ(mism[0].name, "only-pinned");
  EXPECT_EQ(mism[1].name, "only-fresh");
}

TEST(Golden, LoadRejectsWrongSchema) {
  const std::string path = ::testing::TempDir() + "golden_bad_schema.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << R"({"schema": "something-else", "runs": []})" << "\n";
  }
  EXPECT_FALSE(check::load_goldens(path).has_value());
  EXPECT_FALSE(check::load_goldens(path + ".does-not-exist").has_value());
}

}  // namespace

#include <gtest/gtest.h>

#include "asu/asu.hpp"
#include "sim/sim.hpp"

namespace sim = lmas::sim;
namespace asu = lmas::asu;

namespace {

asu::MachineParams small_params() {
  asu::MachineParams p;
  p.num_hosts = 2;
  p.num_asus = 4;
  return p;
}

TEST(CostModel, CeilLog2) {
  EXPECT_EQ(asu::ceil_log2(1), 0u);
  EXPECT_EQ(asu::ceil_log2(2), 1u);
  EXPECT_EQ(asu::ceil_log2(3), 2u);
  EXPECT_EQ(asu::ceil_log2(4), 2u);
  EXPECT_EQ(asu::ceil_log2(256), 8u);
  EXPECT_EQ(asu::ceil_log2(257), 9u);
  EXPECT_EQ(asu::ceil_log2(std::uint64_t(1) << 40), 40u);
}

TEST(CostModel, WorkDecomposesAsPaperTotalWork) {
  // Total Work = n log(alpha) + n log(beta) + n log(gamma) = n log(alpha
  // beta gamma) in compares: the per-record compare charges of the three
  // stages must sum to log2 of the product (all powers of two here).
  asu::CostModel cm;
  const unsigned alpha = 16;
  const std::uint64_t beta = 1 << 10;
  const unsigned gamma = 64;
  const double compares =
      (cm.distribute_per_record(alpha, true) - cm.handling(true)) +
      (cm.sort_per_record(beta, false) - cm.handling(false)) +
      (cm.merge_per_record(gamma, false) - cm.handling(false));
  EXPECT_NEAR(compares,
              double(asu::ceil_log2(std::uint64_t(alpha) * beta * gamma)) *
                  cm.compare,
              1e-15);
}

TEST(CostModel, AlphaOneDistributeChargesNoCompares) {
  asu::CostModel cm;
  EXPECT_DOUBLE_EQ(cm.distribute_per_record(1, false), cm.host_handling);
  EXPECT_DOUBLE_EQ(cm.distribute_per_record(1, true), cm.asu_handling);
}

TEST(Node, AsuCpuRunsCTimesSlower) {
  sim::Engine eng;
  auto p = small_params();
  p.c = 8.0;
  asu::Node host(eng, asu::NodeKind::Host, 0, p);
  asu::Node unit(eng, asu::NodeKind::Asu, 0, p);
  double host_done = 0, asu_done = 0;
  auto run = [](asu::Node& n, double work, double& done,
                sim::Engine& e) -> sim::Task<> {
    co_await n.compute(work);
    done = e.now();
  };
  eng.spawn(run(host, 1.0, host_done, eng));
  eng.spawn(run(unit, 1.0, asu_done, eng));
  eng.run();
  EXPECT_DOUBLE_EQ(host_done, 1.0);
  EXPECT_DOUBLE_EQ(asu_done, 8.0);
}

TEST(Node, HostHasNoDiskAsuDoes) {
  sim::Engine eng;
  auto p = small_params();
  asu::Node host(eng, asu::NodeKind::Host, 0, p);
  asu::Node unit(eng, asu::NodeKind::Asu, 1, p);
  EXPECT_FALSE(host.has_disk());
  EXPECT_TRUE(unit.has_disk());
  EXPECT_EQ(host.name(), "host0");
  EXPECT_EQ(unit.name(), "asu1");
  EXPECT_EQ(unit.memory_bytes(), p.asu_memory);
  EXPECT_EQ(host.memory_bytes(), p.host_memory);
}

TEST(Disk, SequentialReadChargesTransferTime) {
  sim::Engine eng;
  asu::Disk disk(eng, "d", 100.0);  // 100 bytes/s
  double done = 0;
  auto reader = [](asu::Disk& d, double& t, sim::Engine& e) -> sim::Task<> {
    co_await d.read(250);
    t = e.now();
  };
  eng.spawn(reader(disk, done, eng));
  eng.run();
  EXPECT_DOUBLE_EQ(done, 2.5);
}

TEST(Disk, WriteBehindBlocksOnlyOnPreviousWrite) {
  sim::Engine eng;
  asu::Disk disk(eng, "d", 100.0);
  std::vector<double> ts;
  auto writer = [](asu::Disk& d, std::vector<double>& out,
                   sim::Engine& e) -> sim::Task<> {
    co_await d.write(100);  // returns immediately; disk busy [0,1)
    out.push_back(e.now());
    co_await d.write(100);  // waits for write 1 to finish (t=1)
    out.push_back(e.now());
  };
  eng.spawn(writer(disk, ts, eng));
  eng.run();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0], 0.0);
  EXPECT_DOUBLE_EQ(ts[1], 1.0);
}

TEST(Disk, ReadStreamPrefetchOverlapsCompute) {
  sim::Engine eng;
  asu::Disk disk(eng, "d", 100.0);  // 1 block of 100B per second
  std::vector<double> block_ready;
  auto consumer = [](asu::Disk& d, std::vector<double>& out,
                     sim::Engine& e) -> sim::Task<> {
    asu::Disk::ReadStream rs(d, 100);
    for (int i = 0; i < 3; ++i) {
      co_await rs.next_block(i == 2);
      out.push_back(e.now());
      co_await e.sleep(2.0);  // compute slower than disk
    }
  };
  eng.spawn(consumer(disk, block_ready, eng));
  eng.run();
  ASSERT_EQ(block_ready.size(), 3u);
  EXPECT_DOUBLE_EQ(block_ready[0], 1.0);  // first block: full transfer wait
  // Subsequent blocks were prefetched during the 2 s compute: no wait.
  EXPECT_DOUBLE_EQ(block_ready[1], 3.0);
  EXPECT_DOUBLE_EQ(block_ready[2], 5.0);
}

TEST(Disk, ReadStreamFastConsumerIsDiskBound) {
  sim::Engine eng;
  asu::Disk disk(eng, "d", 100.0);
  std::vector<double> block_ready;
  auto consumer = [](asu::Disk& d, std::vector<double>& out,
                     sim::Engine& e) -> sim::Task<> {
    asu::Disk::ReadStream rs(d, 100);
    for (int i = 0; i < 3; ++i) {
      co_await rs.next_block(i == 2);
      out.push_back(e.now());  // zero compute: disk-bound
    }
  };
  eng.spawn(consumer(disk, block_ready, eng));
  eng.run();
  ASSERT_EQ(block_ready.size(), 3u);
  EXPECT_DOUBLE_EQ(block_ready[0], 1.0);
  EXPECT_DOUBLE_EQ(block_ready[1], 2.0);
  EXPECT_DOUBLE_EQ(block_ready[2], 3.0);
}

TEST(Cluster, BuildsRequestedTopology) {
  sim::Engine eng;
  auto p = small_params();
  asu::Cluster cluster(eng, p);
  EXPECT_EQ(cluster.num_hosts(), 2u);
  EXPECT_EQ(cluster.num_asus(), 4u);
  EXPECT_FALSE(cluster.host(1).is_asu());
  EXPECT_TRUE(cluster.asu(3).is_asu());
  EXPECT_THROW(cluster.host(2), std::out_of_range);
}

TEST(Network, TransferChargesLatencyAndBandwidth) {
  sim::Engine eng;
  auto p = small_params();
  p.link_bandwidth = 1000.0;      // bytes/s
  p.link_latency = 0.5;           // s
  p.host_nic_bandwidth = 1e12;    // non-binding
  p.asu_nic_bandwidth = 1e12;
  asu::Cluster cluster(eng, p);
  double done = 0;
  auto xfer = [](asu::Cluster& c, double& t, sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.asu(0), c.host(0), 2000);
    t = e.now();
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  EXPECT_NEAR(done, 2.0 + 0.5, 1e-6);
}

TEST(Network, DistinctLinksDoNotContend) {
  sim::Engine eng;
  auto p = small_params();
  p.link_bandwidth = 1000.0;
  p.link_latency = 0.0;
  p.host_nic_bandwidth = 1e12;
  p.asu_nic_bandwidth = 1e12;
  asu::Cluster cluster(eng, p);
  std::vector<double> done;
  auto xfer = [](asu::Cluster& c, unsigned a, std::vector<double>& out,
                 sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.asu(a), c.host(0), 1000);
    out.push_back(e.now());
  };
  eng.spawn(xfer(cluster, 0, done, eng));
  eng.spawn(xfer(cluster, 1, done, eng));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);  // parallel links: both finish at t=1
  EXPECT_NEAR(done[1], 1.0, 1e-6);
}

TEST(Network, SharedLinkSerializes) {
  sim::Engine eng;
  auto p = small_params();
  p.link_bandwidth = 1000.0;
  p.link_latency = 0.0;
  p.host_nic_bandwidth = 1e12;
  p.asu_nic_bandwidth = 1e12;
  asu::Cluster cluster(eng, p);
  std::vector<double> done;
  auto xfer = [](asu::Cluster& c, std::vector<double>& out,
                 sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.asu(0), c.host(0), 1000);
    out.push_back(e.now());
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);  // same link: serialized
}

TEST(Network, HostNicAggregatesAcrossLinks) {
  sim::Engine eng;
  auto p = small_params();
  p.link_bandwidth = 1e12;  // links non-binding
  p.link_latency = 0.0;
  p.host_nic_bandwidth = 1000.0;  // host NIC binds
  p.asu_nic_bandwidth = 1e12;
  asu::Cluster cluster(eng, p);
  std::vector<double> done;
  auto xfer = [](asu::Cluster& c, unsigned a, std::vector<double>& out,
                 sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.asu(a), c.host(0), 1000);
    out.push_back(e.now());
  };
  eng.spawn(xfer(cluster, 0, done, eng));
  eng.spawn(xfer(cluster, 1, done, eng));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);  // host NIC serializes the two receives
}

TEST(ShardLookahead, DerivedFromMinimumLinkLatency)  {
  // The conservative window width for sharded simulation of this machine
  // is the floor every cross-node message pays: link_latency (fault delay
  // windows only ever add to it). Degenerate latencies map to 0, which
  // ShardedEngine rejects for shards > 1.
  asu::MachineParams mp;
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(mp), mp.link_latency);
  mp.link_latency = 2e-4;
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(mp), 2e-4);
  mp.link_latency = 0.0;
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(mp), 0.0);
  mp.link_latency = -1.0;
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(mp), 0.0);
  EXPECT_THROW(
      sim::ShardedEngine(4, {.shards = 2, .lookahead = asu::shard_lookahead(mp)},
                         [](sim::ShardContext&, const sim::ShardEvent&) {}),
      std::invalid_argument);
}

}  // namespace

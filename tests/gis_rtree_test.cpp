#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gis/gis.hpp"

namespace gis = lmas::gis;

namespace {

gis::Rect query_rect(float x, float y, float e) {
  return gis::Rect{x, y, x + e, y + e};
}

/// Brute-force oracle.
std::set<std::uint32_t> brute_force(const std::vector<gis::RTree::Item>& items,
                                    const gis::Rect& q) {
  std::set<std::uint32_t> out;
  for (const auto& it : items) {
    if (it.rect.intersects(q)) out.insert(it.id);
  }
  return out;
}

TEST(Rect, IntersectsAndContains) {
  gis::Rect a{0, 0, 1, 1};
  EXPECT_TRUE(a.intersects({0.5f, 0.5f, 2, 2}));
  EXPECT_TRUE(a.intersects({1, 1, 2, 2}));  // touching counts
  EXPECT_FALSE(a.intersects({1.1f, 0, 2, 1}));
  EXPECT_TRUE(a.contains(0.5f, 0.5f));
  EXPECT_FALSE(a.contains(1.5f, 0.5f));
  gis::Rect g{0, 0, 0.1f, 0.1f};
  g.grow({0.5f, -0.5f, 1, 1});
  EXPECT_FLOAT_EQ(g.y0, -0.5f);
  EXPECT_FLOAT_EQ(g.x1, 1.0f);
}

TEST(RTree, EmptyTree) {
  auto t = gis::RTree::bulk_load({});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.num_leaves(), 0u);
  EXPECT_TRUE(t.query(query_rect(0, 0, 1)).empty());
}

TEST(RTree, SingleItem) {
  auto t = gis::RTree::bulk_load({{{0.4f, 0.4f, 0.5f, 0.5f}, 7}});
  auto hit = t.query(query_rect(0.3f, 0.3f, 0.3f));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 7u);
  EXPECT_TRUE(t.query(query_rect(0.8f, 0.8f, 0.1f)).empty());
}

TEST(RTree, MatchesBruteForceOracle) {
  const auto items = gis::make_random_rects(20000, 3);
  auto t = gis::RTree::bulk_load(items);
  lmas::sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const float e = float(rng.uniform()) * 0.1f;
    const auto q = query_rect(float(rng.uniform()) * 0.9f,
                              float(rng.uniform()) * 0.9f, e);
    auto got = t.query(q);
    std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size());  // no duplicates
    EXPECT_EQ(got_set, brute_force(items, q));
  }
}

TEST(RTree, StructureRespectsCapacities) {
  gis::RTreeParams p;
  p.leaf_capacity = 32;
  p.node_fanout = 8;
  auto t = gis::RTree::bulk_load(gis::make_random_rects(10000, 4), p);
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_EQ(t.num_leaves(), (10000u + 31) / 32);
  EXPECT_GE(t.height(), 3u);
  // Root MBR covers everything.
  const auto b = t.bounds();
  for (const auto& it : t.items()) {
    EXPECT_TRUE(b.intersects(it.rect));
    EXPECT_LE(b.x0, it.rect.x0);
    EXPECT_GE(b.x1, it.rect.x1);
  }
}

TEST(RTree, QueryStatsCountWork) {
  auto t = gis::RTree::bulk_load(gis::make_random_rects(50000, 6));
  gis::RTree::QueryStats st;
  auto res = t.query(query_rect(0.4f, 0.4f, 0.05f), &st);
  EXPECT_EQ(st.results, res.size());
  EXPECT_GT(st.internal_visited, 0u);
  EXPECT_GT(st.leaves_visited, 0u);
  // A small query touches a small fraction of the leaves (STR locality).
  EXPECT_LT(st.leaves_visited, t.num_leaves() / 10);
}

TEST(RTree, LeavesForAgreesWithQuery) {
  auto t = gis::RTree::bulk_load(gis::make_random_rects(30000, 8));
  const auto q = query_rect(0.2f, 0.6f, 0.08f);
  const auto leaves = t.leaves_for(q);
  std::size_t hits = 0;
  for (auto l : leaves) hits += t.scan_leaf(l, q, nullptr);
  EXPECT_EQ(hits, t.query(q).size());
}

// ---------- distributed layouts ----------

TEST(LeafPlacement, StripeRoundRobins) {
  auto p = gis::leaf_placement(10, 4, gis::RTreeLayout::Stripe);
  EXPECT_EQ(p, (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}));
}

TEST(LeafPlacement, PartitionIsContiguous) {
  auto p = gis::leaf_placement(10, 4, gis::RTreeLayout::Partition);
  EXPECT_EQ(p, (std::vector<std::uint32_t>{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}));
}

TEST(RTreeSim, DistributedResultsMatchCentralizedOracle) {
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 8;
  gis::RTreeSimConfig cfg;
  cfg.num_rects = 20000;
  cfg.clients = 2;
  cfg.queries_per_client = 16;
  for (auto layout : {gis::RTreeLayout::Partition, gis::RTreeLayout::Stripe}) {
    cfg.layout = layout;
    auto rep = gis::run_rtree_sim(mp, cfg);
    EXPECT_TRUE(rep.results_match_oracle)
        << gis::rtree_layout_name(layout);
    EXPECT_EQ(rep.total_queries, 32u);
    EXPECT_GT(rep.total_results, 0u);
    EXPECT_GT(rep.throughput_qps, 0.0);
  }
}

TEST(RTreeSim, StripeFansOutPartitionFocuses) {
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  gis::RTreeSimConfig cfg;
  cfg.num_rects = 50000;
  cfg.clients = 1;
  cfg.queries_per_client = 32;
  cfg.layout = gis::RTreeLayout::Stripe;
  auto stripe = gis::run_rtree_sim(mp, cfg);
  cfg.layout = gis::RTreeLayout::Partition;
  auto part = gis::run_rtree_sim(mp, cfg);
  // Striped leaves: most queries touch many ASUs; partitioned: few.
  EXPECT_GT(stripe.mean_asus_per_query, part.mean_asus_per_query * 2);
}

TEST(RTreeSim, StripeBoundsSingleQueryLatency) {
  // Figure 5's claim: striping executes every query in parallel on all
  // ASUs, bounding search latency for an isolated query stream.
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  gis::RTreeSimConfig cfg;
  cfg.num_rects = 100000;
  cfg.clients = 1;
  cfg.queries_per_client = 32;
  cfg.query_extent = 0.1f;  // big queries: lots of leaf work
  cfg.layout = gis::RTreeLayout::Stripe;
  auto stripe = gis::run_rtree_sim(mp, cfg);
  cfg.layout = gis::RTreeLayout::Partition;
  auto part = gis::run_rtree_sim(mp, cfg);
  EXPECT_LT(stripe.mean_latency, part.mean_latency);
}

TEST(RTreeSim, PartitionWinsThroughputUnderConcurrency) {
  // The flip side: with many concurrent small searches, partitioning
  // spreads different queries across different ASUs, while striping pays
  // the fan-out overhead on every query.
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  gis::RTreeSimConfig cfg;
  cfg.num_rects = 100000;
  cfg.clients = 32;
  cfg.queries_per_client = 8;
  cfg.query_extent = 0.01f;  // small point-ish queries
  cfg.layout = gis::RTreeLayout::Partition;
  auto part = gis::run_rtree_sim(mp, cfg);
  cfg.layout = gis::RTreeLayout::Stripe;
  auto stripe = gis::run_rtree_sim(mp, cfg);
  EXPECT_GT(part.throughput_qps, stripe.throughput_qps);
}

}  // namespace

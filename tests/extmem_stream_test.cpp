#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "extmem/extmem.hpp"
#include "sim/random.hpp"

namespace em = lmas::em;

namespace {

struct Small {
  std::uint32_t key = 0;
  std::uint32_t id = 0;
  friend bool operator==(const Small&, const Small&) = default;
};

TEST(Record128, LayoutMatchesPaper) {
  EXPECT_EQ(sizeof(em::Record128), 128u);
  EXPECT_EQ(sizeof(em::Record128::key), 4u);
  em::Record128 a, b;
  a.key = 1;
  b.key = 2;
  EXPECT_LT(a, b);
}

TEST(Stream, EmptyStreamBehaviour) {
  em::Stream<Small> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.eof());
  EXPECT_FALSE(s.read().has_value());
}

TEST(Stream, WriteThenReadBack) {
  em::Stream<Small> s;
  for (std::uint32_t i = 0; i < 1000; ++i) s.push_back({i, i * 2});
  EXPECT_EQ(s.size(), 1000u);
  s.rewind();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    auto r = s.read();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, i);
    EXPECT_EQ(r->id, i * 2);
  }
  EXPECT_FALSE(s.read().has_value());
}

TEST(Stream, CrossesBlockBoundaries) {
  // Tiny blocks: 3 records per block forces many block switches.
  em::Stream<Small> s(em::make_memory_bte(), 3 * sizeof(Small));
  EXPECT_EQ(s.records_per_block(), 3u);
  for (std::uint32_t i = 0; i < 100; ++i) s.push_back({i, 0});
  s.rewind();
  for (std::uint32_t i = 0; i < 100; ++i) {
    auto r = s.read();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, i);
  }
}

TEST(Stream, SeekAndOverwrite) {
  em::Stream<Small> s(em::make_memory_bte(), 4 * sizeof(Small));
  for (std::uint32_t i = 0; i < 20; ++i) s.push_back({i, 0});
  s.seek(7);
  s.write({777, 1});
  s.seek(7);
  auto r = s.read();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->key, 777u);
  // Neighbors unharmed.
  s.seek(6);
  EXPECT_EQ(s.read()->key, 6u);
  s.seek(8);
  EXPECT_EQ(s.read()->key, 8u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(Stream, PeekDoesNotAdvance) {
  em::Stream<Small> s;
  s.push_back({5, 0});
  s.rewind();
  EXPECT_EQ(s.peek()->key, 5u);
  EXPECT_EQ(s.tell(), 0u);
  EXPECT_EQ(s.read()->key, 5u);
  EXPECT_EQ(s.tell(), 1u);
}

TEST(Stream, ClearAndTruncate) {
  em::Stream<Small> s;
  for (std::uint32_t i = 0; i < 10; ++i) s.push_back({i, 0});
  s.truncate(4);
  EXPECT_EQ(s.size(), 4u);
  s.rewind();
  std::size_t n = 0;
  while (s.read()) ++n;
  EXPECT_EQ(n, 4u);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Stream, BulkReadWrite) {
  em::Stream<Small> s;
  std::vector<Small> in;
  for (std::uint32_t i = 0; i < 50; ++i) in.push_back({i, i});
  s.append(in);
  s.rewind();
  std::vector<Small> out(64);
  const std::size_t got = s.read_bulk(out);
  EXPECT_EQ(got, 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Stream, IoStatsCountBlockTransfers) {
  em::Stream<Small> s(em::make_memory_bte(), 8 * sizeof(Small));
  for (std::uint32_t i = 0; i < 64; ++i) s.push_back({i, 0});
  s.flush();
  // 64 records at 8/block = 8 block writes.
  EXPECT_EQ(s.io_stats().write_ops, 8u);
}

class BteKinds : public ::testing::TestWithParam<const char*> {};

std::unique_ptr<em::Bte> make_bte(const std::string& kind) {
  if (kind == "memory") return em::make_memory_bte();
  return em::make_temp_file_bte();
}

TEST_P(BteKinds, RoundTripAndStats) {
  auto bte = make_bte(GetParam());
  std::vector<std::byte> w(1000);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = std::byte(i & 0xff);
  bte->write(0, w);
  EXPECT_EQ(bte->size(), 1000u);
  std::vector<std::byte> r(1000);
  bte->read(0, r);
  EXPECT_EQ(w, r);
  EXPECT_EQ(bte->stats().bytes_written, 1000u);
  EXPECT_EQ(bte->stats().bytes_read, 1000u);
}

TEST_P(BteKinds, SparseWriteExtends) {
  auto bte = make_bte(GetParam());
  std::byte b{42};
  bte->write(500, std::span(&b, 1));
  EXPECT_EQ(bte->size(), 501u);
  std::byte out{0};
  bte->read(500, std::span(&out, 1));
  EXPECT_EQ(out, b);
}

TEST_P(BteKinds, ReadPastEndThrows) {
  auto bte = make_bte(GetParam());
  std::byte b{1};
  bte->write(0, std::span(&b, 1));
  std::array<std::byte, 8> out{};
  EXPECT_THROW(bte->read(0, out), std::out_of_range);
}

TEST_P(BteKinds, TruncateShrinks) {
  auto bte = make_bte(GetParam());
  std::vector<std::byte> w(100, std::byte{7});
  bte->write(0, w);
  bte->truncate(10);
  EXPECT_EQ(bte->size(), 10u);
}

TEST_P(BteKinds, StreamOnTopRoundTrips) {
  em::Stream<em::Record128> s(make_bte(GetParam()), 4096);
  lmas::sim::Rng rng(5);
  std::vector<em::Record128> in(300);
  for (auto& r : in) {
    r.key = std::uint32_t(rng.next());
    r.id = std::uint32_t(rng.next());
  }
  for (const auto& r : in) s.push_back(r);
  s.rewind();
  for (const auto& expect : in) {
    auto got = s.read();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BteKinds,
                         ::testing::Values("memory", "file"));

TEST(FileBte, PersistsAcrossReopen) {
  const std::string path = "/tmp/lmas_persist_test.bin";
  {
    auto bte = em::make_file_bte(path);
    std::vector<std::byte> w(64, std::byte{9});
    bte->write(0, w);
  }
  {
    auto bte = em::make_file_bte(path, /*truncate_existing=*/false);
    EXPECT_EQ(bte->size(), 64u);
    std::vector<std::byte> r(64);
    bte->read(0, r);
    EXPECT_EQ(r[63], std::byte{9});
  }
  std::remove(path.c_str());
}

}  // namespace

namespace {

// ---------- out-of-core Record128 end-to-end ----------

TEST(OutOfCore, Record128FileBackedSortAtScale) {
  // A genuinely out-of-core run with the paper's record format: 200k
  // 128-byte records (25 MB) through file-backed streams with a 1 MiB
  // memory budget and file-backed scratch.
  namespace em2 = lmas::em;
  em2::Stream<em2::Record128> in(em2::make_temp_file_bte());
  lmas::sim::Rng rng(99);
  constexpr std::size_t kN = 200000;
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    em2::Record128 r;
    r.key = std::uint32_t(rng.next());
    r.id = std::uint32_t(i);
    r.payload[0] = std::uint8_t(r.key);  // payload carried along
    checksum += r.key;
    in.push_back(r);
  }
  em2::Stream<em2::Record128> out(em2::make_temp_file_bte());
  em2::SortOptions opt;
  opt.memory_bytes = 1 << 20;
  opt.scratch = em2::temp_file_bte_factory();
  em2::SortStats st;
  em2::sort_stream(in, out, opt, std::less<em2::Record128>{}, &st);
  EXPECT_EQ(st.items, kN);
  EXPECT_GT(st.runs_formed, 20u);
  out.rewind();
  EXPECT_TRUE(em2::is_sorted(out));
  // Payload integrity + key conservation.
  out.rewind();
  std::uint64_t out_sum = 0;
  while (auto r = out.read()) {
    out_sum += r->key;
    EXPECT_EQ(r->payload[0], std::uint8_t(r->key));
  }
  EXPECT_EQ(out_sum, checksum);
}

TEST(Stream, AlternatingReadWriteIsConsistent) {
  namespace em2 = lmas::em;
  em2::Stream<em2::KeyRecord> s(em2::make_memory_bte(), 4 * 8);
  for (std::uint32_t i = 0; i < 32; ++i) s.push_back({i, i});
  // Read two, overwrite one, read again — buffer flushes must not lose
  // either the read position or the written data.
  s.seek(0);
  EXPECT_EQ(s.read()->key, 0u);
  EXPECT_EQ(s.read()->key, 1u);
  s.seek(20);
  s.write({2020, 0});
  s.seek(2);
  EXPECT_EQ(s.read()->key, 2u);
  s.seek(20);
  EXPECT_EQ(s.read()->key, 2020u);
  EXPECT_EQ(s.read()->key, 21u);
  EXPECT_EQ(s.size(), 32u);
}

TEST(Bte, StatsAccumulateAcrossOperations) {
  auto bte = lmas::em::make_memory_bte();
  std::vector<std::byte> buf(100, std::byte{1});
  bte->write(0, buf);
  bte->write(100, buf);
  std::vector<std::byte> r(50);
  bte->read(25, r);
  EXPECT_EQ(bte->stats().bytes_written, 200u);
  EXPECT_EQ(bte->stats().write_ops, 2u);
  EXPECT_EQ(bte->stats().bytes_read, 50u);
  EXPECT_EQ(bte->stats().read_ops, 1u);
}

}  // namespace

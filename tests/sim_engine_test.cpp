#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

TEST(Engine, StartsAtTimeZero) {
  sim::Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending_events(), 0u);
}

sim::Task<> record_times(sim::Engine& eng, std::vector<double>& out) {
  out.push_back(eng.now());
  co_await eng.sleep(1.5);
  out.push_back(eng.now());
  co_await eng.sleep(2.5);
  out.push_back(eng.now());
}

TEST(Engine, SleepAdvancesVirtualTime) {
  sim::Engine eng;
  std::vector<double> times;
  eng.spawn(record_times(eng, times));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

sim::Task<> appender(sim::Engine& eng, std::string& log, char id,
                     double delay) {
  co_await eng.sleep(delay);
  log.push_back(id);
}

TEST(Engine, EventsFireInTimeOrder) {
  sim::Engine eng;
  std::string log;
  eng.spawn(appender(eng, log, 'c', 3.0));
  eng.spawn(appender(eng, log, 'a', 1.0));
  eng.spawn(appender(eng, log, 'b', 2.0));
  eng.run();
  EXPECT_EQ(log, "abc");
}

TEST(Engine, SameTimeEventsFireInSpawnOrder) {
  sim::Engine eng;
  std::string log;
  for (char id : {'x', 'y', 'z'}) eng.spawn(appender(eng, log, id, 1.0));
  eng.run();
  EXPECT_EQ(log, "xyz");
}

sim::Task<int> forty_two(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  co_return 42;
}

sim::Task<> awaits_child(sim::Engine& eng, int& result) {
  result = co_await forty_two(eng);
}

TEST(Engine, NestedTaskReturnsValue) {
  sim::Engine eng;
  int result = 0;
  eng.spawn(awaits_child(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
}

sim::Task<int> add_after(sim::Engine& eng, int a, int b, double d) {
  co_await eng.sleep(d);
  co_return a + b;
}

sim::Task<> deep_chain(sim::Engine& eng, int& out) {
  const int x = co_await add_after(eng, 1, 2, 0.5);
  const int y = co_await add_after(eng, x, 10, 0.5);
  out = co_await add_after(eng, y, 100, 0.5);
}

TEST(Engine, DeepNestingAccumulatesTimeAndValues) {
  sim::Engine eng;
  int out = 0;
  eng.spawn(deep_chain(eng, out));
  eng.run();
  EXPECT_EQ(out, 113);
}

TEST(Engine, RunUntilStopsEarly) {
  sim::Engine eng;
  std::string log;
  eng.spawn(appender(eng, log, 'a', 1.0));
  eng.spawn(appender(eng, log, 'b', 10.0));
  eng.run(5.0);
  EXPECT_EQ(log, "a");
  EXPECT_EQ(eng.unfinished_tasks(), 1u);
  eng.run();
  EXPECT_EQ(log, "ab");
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

sim::Task<int> throws_after(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  throw Boom{};
}

sim::Task<> catches_child(sim::Engine& eng, bool& caught) {
  try {
    (void)co_await throws_after(eng);
  } catch (const Boom&) {
    caught = true;
  }
}

TEST(Engine, ChildExceptionPropagatesToAwaiter) {
  sim::Engine eng;
  bool caught = false;
  eng.spawn(catches_child(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

sim::Task<> root_throws(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  throw Boom{};
}

sim::Task<> keeps_running(sim::Engine& eng, int& ticks) {
  for (int i = 0; i < 5; ++i) {
    co_await eng.sleep(1.0);
    ++ticks;
  }
}

TEST(Engine, RootExceptionRethrownByRun) {
  // A spawned root task is never awaited, so its stored exception must be
  // surfaced by run() itself — not silently discarded — and the loop must
  // stop AT the failing event: nothing past a violated invariant may
  // commit. keeps_running was spawned first, so its t=1 tick fires before
  // the bomb; everything later stays queued.
  sim::Engine eng;
  int ticks = 0;
  eng.spawn(keeps_running(eng, ticks));
  eng.spawn(root_throws(eng));
  EXPECT_THROW(eng.run(), Boom);
  EXPECT_EQ(ticks, 1);
  EXPECT_GT(eng.pending_events(), 0u);
}

TEST(Engine, RunStaysFailedUntilFailedRootIsReaped) {
  sim::Engine eng;
  int ticks = 0;
  eng.spawn(keeps_running(eng, ticks));
  eng.spawn(root_throws(eng));
  EXPECT_THROW(eng.run(), Boom);
  // The failure has not been acknowledged: run() commits nothing more and
  // keeps rethrowing rather than quietly resuming a poisoned simulation.
  const auto processed_while_failed = [&] {
    try {
      return eng.run();
    } catch (const Boom&) {
      return std::size_t(0);
    }
  }();
  EXPECT_EQ(processed_while_failed, 0u);
  EXPECT_EQ(ticks, 1);
  // Reaping the failed root acknowledges it; the survivors then finish.
  eng.reap_completed();
  eng.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

sim::Task<> immediate_exit(sim::Engine& eng) { co_await eng.yield(); }

TEST(Engine, ReapErasesTraceNamesWithFrames) {
  // reap_completed frees root frames, whose addresses the coroutine
  // allocator recycles; a surviving named_roots_ entry would label a
  // later (even anonymous) spawn with the dead task's name in traces.
  sim::Engine eng;
  eng.tracer().enable();
  eng.spawn(immediate_exit(eng), "doomed-a");
  eng.spawn(immediate_exit(eng), "doomed-b");
  EXPECT_EQ(eng.traced_root_names(), 2u);
  eng.run();
  eng.reap_completed();
  EXPECT_EQ(eng.traced_root_names(), 0u);
  // A frame allocated after the reap very likely reuses a freed address;
  // either way the map must only ever describe live named roots.
  eng.spawn(immediate_exit(eng));
  eng.run();
  EXPECT_EQ(eng.traced_root_names(), 0u);
}

// Awaitable that reschedules its coroutine at an absolute (possibly
// past) time — the hostile input for the schedule_at clamp.
struct ScheduleAt {
  sim::Engine& eng;
  double t;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule_at(h, t);
  }
  void await_resume() const noexcept {}
};

sim::Task<> schedules_into_past(sim::Engine& eng, double* resumed_at) {
  co_await eng.sleep(5.0);
  co_await ScheduleAt{eng, 1.0};  // negative-latency modeling bug
  *resumed_at = eng.now();
}

#ifdef NDEBUG
TEST(Engine, PastScheduleClampsToNowAndCounts) {
  // Release builds clamp (dropping the event would strand the process)
  // but must not do so silently: the clamp is counted and published.
  sim::Engine eng;
  double resumed_at = 0;
  eng.spawn(schedules_into_past(eng, &resumed_at));
  EXPECT_EQ(eng.clamped_schedules(), 0u);
  eng.run();
  EXPECT_DOUBLE_EQ(resumed_at, 5.0);
  EXPECT_EQ(eng.clamped_schedules(), 1u);
  (void)eng.metrics().snapshot();  // collectors materialize the counter
  const auto* c = eng.metrics().find_counter("engine.clamped_schedules");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 1u);
}

TEST(Engine, CleanRunsPublishNoClampCounter) {
  sim::Engine eng;
  std::string log;
  eng.spawn(appender(eng, log, 'a', 1.0));
  eng.run();
  EXPECT_EQ(eng.clamped_schedules(), 0u);
  // Lazily registered: the pinned golden fingerprints rely on clean runs
  // never materializing the instrument.
  (void)eng.metrics().snapshot();
  EXPECT_EQ(eng.metrics().find_counter("engine.clamped_schedules"), nullptr);
}
#elif defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST(EngineDeathTest, PastScheduleAssertsInDebugBuilds) {
  sim::Engine eng;
  double resumed_at = 0;
  eng.spawn(schedules_into_past(eng, &resumed_at));
  EXPECT_DEATH(eng.run(), "schedule_at");
}
#endif

sim::Task<> never_wakes(sim::Condition& cv) {
  co_await cv.wait();
}

TEST(Engine, BlockedTaskReportedAsUnfinished) {
  sim::Engine eng;
  sim::Condition cv(eng);
  eng.spawn(never_wakes(cv));
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 1u);
}

TEST(Engine, ConditionNotifyWakesWaiters) {
  sim::Engine eng;
  sim::Condition cv(eng);
  std::string log;
  auto waiter = [](sim::Engine&, sim::Condition& c, std::string& l,
                   char id) -> sim::Task<> {
    co_await c.wait();
    l.push_back(id);
  };
  auto notifier = [](sim::Engine& e, sim::Condition& c) -> sim::Task<> {
    co_await e.sleep(2.0);
    c.notify_all();
  };
  eng.spawn(waiter(eng, cv, log, 'a'));
  eng.spawn(waiter(eng, cv, log, 'b'));
  eng.spawn(notifier(eng, cv));
  eng.run();
  EXPECT_EQ(log, "ab");
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

}  // namespace

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

TEST(Engine, StartsAtTimeZero) {
  sim::Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending_events(), 0u);
}

sim::Task<> record_times(sim::Engine& eng, std::vector<double>& out) {
  out.push_back(eng.now());
  co_await eng.sleep(1.5);
  out.push_back(eng.now());
  co_await eng.sleep(2.5);
  out.push_back(eng.now());
}

TEST(Engine, SleepAdvancesVirtualTime) {
  sim::Engine eng;
  std::vector<double> times;
  eng.spawn(record_times(eng, times));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

sim::Task<> appender(sim::Engine& eng, std::string& log, char id,
                     double delay) {
  co_await eng.sleep(delay);
  log.push_back(id);
}

TEST(Engine, EventsFireInTimeOrder) {
  sim::Engine eng;
  std::string log;
  eng.spawn(appender(eng, log, 'c', 3.0));
  eng.spawn(appender(eng, log, 'a', 1.0));
  eng.spawn(appender(eng, log, 'b', 2.0));
  eng.run();
  EXPECT_EQ(log, "abc");
}

TEST(Engine, SameTimeEventsFireInSpawnOrder) {
  sim::Engine eng;
  std::string log;
  for (char id : {'x', 'y', 'z'}) eng.spawn(appender(eng, log, id, 1.0));
  eng.run();
  EXPECT_EQ(log, "xyz");
}

sim::Task<int> forty_two(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  co_return 42;
}

sim::Task<> awaits_child(sim::Engine& eng, int& result) {
  result = co_await forty_two(eng);
}

TEST(Engine, NestedTaskReturnsValue) {
  sim::Engine eng;
  int result = 0;
  eng.spawn(awaits_child(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
}

sim::Task<int> add_after(sim::Engine& eng, int a, int b, double d) {
  co_await eng.sleep(d);
  co_return a + b;
}

sim::Task<> deep_chain(sim::Engine& eng, int& out) {
  const int x = co_await add_after(eng, 1, 2, 0.5);
  const int y = co_await add_after(eng, x, 10, 0.5);
  out = co_await add_after(eng, y, 100, 0.5);
}

TEST(Engine, DeepNestingAccumulatesTimeAndValues) {
  sim::Engine eng;
  int out = 0;
  eng.spawn(deep_chain(eng, out));
  eng.run();
  EXPECT_EQ(out, 113);
}

TEST(Engine, RunUntilStopsEarly) {
  sim::Engine eng;
  std::string log;
  eng.spawn(appender(eng, log, 'a', 1.0));
  eng.spawn(appender(eng, log, 'b', 10.0));
  eng.run(5.0);
  EXPECT_EQ(log, "a");
  EXPECT_EQ(eng.unfinished_tasks(), 1u);
  eng.run();
  EXPECT_EQ(log, "ab");
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

sim::Task<int> throws_after(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  throw Boom{};
}

sim::Task<> catches_child(sim::Engine& eng, bool& caught) {
  try {
    (void)co_await throws_after(eng);
  } catch (const Boom&) {
    caught = true;
  }
}

TEST(Engine, ChildExceptionPropagatesToAwaiter) {
  sim::Engine eng;
  bool caught = false;
  eng.spawn(catches_child(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

sim::Task<> root_throws(sim::Engine& eng) {
  co_await eng.sleep(1.0);
  throw Boom{};
}

sim::Task<> keeps_running(sim::Engine& eng, int& ticks) {
  for (int i = 0; i < 5; ++i) {
    co_await eng.sleep(1.0);
    ++ticks;
  }
}

TEST(Engine, RootExceptionRethrownByRun) {
  // A spawned root task is never awaited, so its stored exception must be
  // surfaced by run() itself — not silently discarded. Other processes
  // still complete first: the failure is reported once the loop stops.
  sim::Engine eng;
  int ticks = 0;
  eng.spawn(keeps_running(eng, ticks));
  eng.spawn(root_throws(eng));
  EXPECT_THROW(eng.run(), Boom);
  EXPECT_EQ(ticks, 5);
}

sim::Task<> never_wakes(sim::Condition& cv) {
  co_await cv.wait();
}

TEST(Engine, BlockedTaskReportedAsUnfinished) {
  sim::Engine eng;
  sim::Condition cv(eng);
  eng.spawn(never_wakes(cv));
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 1u);
}

TEST(Engine, ConditionNotifyWakesWaiters) {
  sim::Engine eng;
  sim::Condition cv(eng);
  std::string log;
  auto waiter = [](sim::Engine&, sim::Condition& c, std::string& l,
                   char id) -> sim::Task<> {
    co_await c.wait();
    l.push_back(id);
  };
  auto notifier = [](sim::Engine& e, sim::Condition& c) -> sim::Task<> {
    co_await e.sleep(2.0);
    c.notify_all();
  };
  eng.spawn(waiter(eng, cv, log, 'a'));
  eng.spawn(waiter(eng, cv, log, 'b'));
  eng.spawn(notifier(eng, cv));
  eng.run();
  EXPECT_EQ(log, "ab");
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

}  // namespace

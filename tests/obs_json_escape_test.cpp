// String-escaping and special-value coverage for the JSON emitter, plus
// BenchReport round-trip of the execution-digest field. Bench artifacts
// embed resource and functor names verbatim; a name with a quote or a
// control character must not corrupt the document.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace obs = lmas::obs;

namespace {

TEST(JsonEscape, QuotesBackslashesAndNamedEscapes) {
  obs::Json j = std::string("a\"b\\c\bd\fe\nf\rg\th");
  EXPECT_EQ(j.dump(), R"("a\"b\\c\bd\fe\nf\rg\th")");
}

TEST(JsonEscape, ControlCharactersUseUnicodeEscapes) {
  std::string s = "x";
  s += '\x01';
  s += '\x1f';
  s += "y";
  obs::Json j = s;
  EXPECT_EQ(j.dump(), "\"x\\u0001\\u001fy\"");
}

TEST(JsonEscape, EscapedStringsRoundTripThroughParse) {
  std::string s;
  for (int c = 1; c < 0x20; ++c) s += char(c);
  s += "\"\\plain";
  obs::Json j = obs::Json::object();
  j["k\n"] = s;
  const auto back = obs::Json::parse(j.dump());
  ASSERT_TRUE(back.has_value());
  const obs::Json* v = back->find("k\n");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->as_string(), s);
}

TEST(JsonEscape, Utf8PassesThroughUntouched) {
  // Multi-byte UTF-8 (alpha, beta, a CJK char) has bytes >= 0x80: none
  // may be escaped or mangled.
  const std::string s = "αβ汉";
  obs::Json j = s;
  EXPECT_EQ(j.dump(), "\"" + s + "\"");
  const auto back = obs::Json::parse(j.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), s);
}

TEST(JsonEscape, NanAndInfinitySerializeAsNull) {
  EXPECT_EQ(obs::Json(std::nan("")).dump(), "null");
  EXPECT_EQ(obs::Json(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(obs::Json(-std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(DigestString, RoundTripsAndRejectsMalformedInput) {
  const std::uint64_t d = 0x0123456789abcdefULL;
  EXPECT_EQ(obs::digest_to_string(d), "0x0123456789abcdef");
  EXPECT_EQ(obs::digest_from_string("0x0123456789abcdef"), d);
  EXPECT_EQ(obs::digest_from_string(obs::digest_to_string(0)), 0u);
  EXPECT_FALSE(obs::digest_from_string("0123456789abcdef").has_value());
  EXPECT_FALSE(obs::digest_from_string("0x123").has_value());
  EXPECT_FALSE(obs::digest_from_string("0x0123456789abcdeg").has_value());
  EXPECT_FALSE(obs::digest_from_string("").has_value());
}

TEST(BenchReport, DigestFieldRoundTrips) {
  obs::BenchReport rep("digest_rt");
  EXPECT_FALSE(rep.digest().has_value());
  rep.add_digest(0xfeedfacedeadbeefULL);
  EXPECT_EQ(rep.digest(), 0xfeedfacedeadbeefULL);

  // And through the serialized artifact: the digest must survive as an
  // exact 64-bit value (hex string — doubles cannot carry it).
  const auto doc = obs::Json::parse(rep.root().dump());
  ASSERT_TRUE(doc.has_value());
  const obs::Json* d = doc->find("digest");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->is_string());
  EXPECT_EQ(obs::digest_from_string(d->as_string()),
            0xfeedfacedeadbeefULL);
}

}  // namespace

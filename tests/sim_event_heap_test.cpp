/// FourAryHeap: the engine's event queue. The contract that matters is
/// exact pop order under the strict-weak (time, seq) order — the golden
/// digests pin the engine's event sequence, so the heap must agree with
/// a reference priority queue on every input, including duplicate times.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/random.hpp"

namespace sim = lmas::sim;

namespace {

struct Ev {
  double t = 0;
  std::uint64_t seq = 0;
  friend bool operator==(const Ev&, const Ev&) = default;
};

struct Before {
  bool operator()(const Ev& a, const Ev& b) const noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
};

using Heap = sim::FourAryHeap<Ev, Before>;

std::vector<Ev> random_events(std::size_t n, std::uint64_t seed,
                              int distinct_times) {
  sim::Rng rng(seed);
  std::vector<Ev> evs;
  evs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Coarse time grid forces plenty of duplicate times, exercising the
    // seq tiebreak — the case a digest regression would come from.
    const double t = double(rng.below(distinct_times)) * 0.125;
    evs.push_back(Ev{t, i});
  }
  return evs;
}

TEST(EventHeap, PopsInSortedOrder) {
  auto evs = random_events(1000, 0xe1, 50);
  Heap h;
  for (const auto& e : evs) h.push(e);
  ASSERT_EQ(h.size(), evs.size());

  std::sort(evs.begin(), evs.end(), Before{});
  for (const auto& want : evs) {
    ASSERT_FALSE(h.empty());
    EXPECT_EQ(h.top(), want);
    EXPECT_EQ(h.pop_min(), want);
  }
  EXPECT_TRUE(h.empty());
}

TEST(EventHeap, MatchesPriorityQueueUnderChurn) {
  // Interleaved push/pop against std::priority_queue — the structure the
  // heap replaced. Any divergence here is a digest regression waiting to
  // happen.
  struct After {
    bool operator()(const Ev& a, const Ev& b) const {
      return Before{}(b, a);
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, After> ref;
  Heap h;
  sim::Rng rng(0xc4);
  std::uint64_t seq = 0;
  double now = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool push = h.empty() || rng.uniform() < 0.55;
    if (push) {
      const Ev e{now + double(rng.below(16)) * 0.25, seq++};
      h.push(e);
      ref.push(e);
    } else {
      const Ev got = h.pop_min();
      const Ev want = ref.top();
      ref.pop();
      ASSERT_EQ(got, want) << "step " << step;
      now = got.t;
    }
  }
  while (!h.empty()) {
    ASSERT_EQ(h.pop_min(), ref.top());
    ref.pop();
  }
  EXPECT_TRUE(ref.empty());
}

TEST(EventHeap, SingleAndDuplicateElements) {
  Heap h;
  h.push(Ev{1.0, 0});
  EXPECT_EQ(h.pop_min(), (Ev{1.0, 0}));
  EXPECT_TRUE(h.empty());

  // All-equal times: pure seq order.
  for (std::uint64_t s = 0; s < 20; ++s) h.push(Ev{3.0, 19 - s});
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(h.pop_min(), (Ev{3.0, s}));
  }
}

TEST(EventHeap, ClearAndReserve) {
  Heap h;
  h.reserve(64);
  for (std::uint64_t s = 0; s < 10; ++s) h.push(Ev{double(s), s});
  EXPECT_EQ(h.size(), 10u);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  h.push(Ev{7.0, 1});
  EXPECT_EQ(h.top(), (Ev{7.0, 1}));
}

}  // namespace

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/sharded_engine.hpp"

namespace sim = lmas::sim;

namespace {

// PHOLD-style workload: every event either hops to a uniformly random
// other node (delay >= lookahead) or re-posts locally. All randomness
// flows through the node's private stream, so any ordering or stream
// mix-up shows up as a digest mismatch, not a flaky count.
struct Phold {
  double lookahead;
  double hop_prob = 0.5;

  void operator()(sim::ShardContext& ctx, const sim::ShardEvent& ev) const {
    sim::Rng& rng = ctx.rng();
    const double u = rng.uniform();
    if (u < hop_prob && ctx.engine().node_count() > 1) {
      auto dst = sim::LogicalNode(rng.below(ctx.engine().node_count()));
      if (dst == ctx.node()) dst = (dst + 1) % ctx.engine().node_count();
      // send() demands a positive delay even when lookahead is 0 (the
      // serial zero-lookahead configuration), hence the floor.
      const double base = lookahead > 0 ? lookahead : 1e-6;
      ctx.send(dst, base * (1.0 + rng.uniform()), ev.payload + 1);
    } else {
      ctx.post(rng.exponential(1000.0), ev.payload + 1);
    }
  }
};

std::unique_ptr<sim::ShardedEngine> make_phold(std::uint32_t nodes,
                                               std::uint32_t shards,
                                               std::uint32_t workers = 0,
                                               double lookahead = 50e-6) {
  auto eng = std::make_unique<sim::ShardedEngine>(
      nodes,
      sim::ShardedParams{
          .shards = shards, .workers = workers, .lookahead = lookahead},
      Phold{lookahead});
  for (std::uint32_t n = 0; n < nodes; ++n) {
    eng->inject(n, n, 1e-6 * double(n % 7), n);
  }
  return eng;
}

TEST(ShardMap, PartitionIsContiguousBalancedAndConsistent) {
  const auto noop = [](sim::ShardContext&, const sim::ShardEvent&) {};
  for (const auto& [nodes, shards] :
       {std::pair{7u, 3u}, {8u, 4u}, {1u, 1u}, {1000u, 16u}, {5u, 5u}}) {
    sim::ShardedEngine eng(nodes, {.shards = shards, .lookahead = 1e-6},
                           noop);
    ASSERT_EQ(eng.shard_count(), shards);
    sim::LogicalNode expect = 0;
    std::size_t largest = 0, smallest = nodes;
    for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
      const auto [first, last] = eng.nodes_of(s);
      ASSERT_EQ(first, expect);  // contiguous, in shard order
      ASSERT_LT(first, last);
      largest = std::max<std::size_t>(largest, last - first);
      smallest = std::min<std::size_t>(smallest, last - first);
      for (sim::LogicalNode n = first; n < last; ++n) {
        ASSERT_EQ(eng.shard_of(n), s);
      }
      expect = last;
    }
    ASSERT_EQ(expect, nodes);        // exhaustive
    ASSERT_LE(largest - smallest, 1u);  // balanced
  }
}

TEST(ShardMap, ShardCountClampsToNodeCount) {
  const auto noop = [](sim::ShardContext&, const sim::ShardEvent&) {};
  sim::ShardedEngine eng(3, {.shards = 8, .lookahead = 1e-6}, noop);
  EXPECT_EQ(eng.shard_count(), 3u);
}

TEST(ShardedEngine, SerialFastPathRunsWithoutWindows) {
  auto eng = make_phold(32, 1, 0, 0.0);  // zero lookahead: fine at 1 shard
  EXPECT_GT(eng->run(0.05), 0u);
  EXPECT_EQ(eng->windows(), 0u);
  EXPECT_EQ(eng->cross_shard_messages(), 0u);
}

TEST(ShardedEngine, DigestInvariantAcrossShardCounts) {
  auto serial = make_phold(64, 1);
  const std::uint64_t serial_events = serial->run(0.2);
  ASSERT_GT(serial_events, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    auto sharded = make_phold(64, shards);
    EXPECT_EQ(sharded->run(0.2), serial_events) << shards << " shards";
    EXPECT_EQ(sharded->digest(), serial->digest()) << shards << " shards";
    EXPECT_GT(sharded->windows(), 0u);
    EXPECT_GT(sharded->cross_shard_messages(), 0u);
    // Per-node chains must match too — the merged digest is built from
    // them, and a matching merge with mismatched nodes would mean the
    // merge is insensitive, not that the run was deterministic.
    for (sim::LogicalNode n = 0; n < 64; ++n) {
      ASSERT_EQ(sharded->node_digest(n), serial->node_digest(n))
          << "node " << n;
    }
  }
}

TEST(ShardedEngine, DigestInvariantAcrossWorkerCounts) {
  auto one = make_phold(48, 4, 1);
  auto two = make_phold(48, 4, 2);
  EXPECT_EQ(one->worker_count(), 1u);
  EXPECT_EQ(two->worker_count(), 2u);
  EXPECT_EQ(one->run(0.2), two->run(0.2));
  EXPECT_EQ(one->digest(), two->digest());
}

TEST(ShardedEngine, ShardDigestsComposeIntoEngineDigest) {
  auto eng_ptr = make_phold(30, 3);
  auto& eng = *eng_ptr;
  eng.run(0.1);
  // Every shard digest folds that shard's node chains; together they
  // cover the node set exactly once.
  std::uint64_t refold = 0xcbf29ce484222325ULL;
  for (sim::LogicalNode n = 0; n < 30; ++n) {
    refold = lmas::sim::splitmix64_once(refold ^ eng.node_digest(n));
  }
  EXPECT_EQ(eng.digest(), refold);
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    EXPECT_NE(eng.shard_digest(s), 0u);
  }
}

TEST(ShardedEngine, RunIsResumableAndCounts) {
  auto a = make_phold(32, 4);
  auto b = make_phold(32, 4);
  const std::uint64_t whole = a->run(0.2);
  const std::uint64_t split = b->run(0.1) + b->run(0.2);
  EXPECT_EQ(whole, split);
  EXPECT_EQ(a->digest(), b->digest());
  EXPECT_EQ(a->events_processed(), whole);
}

TEST(ShardedEngine, WindowBoundaryAppliesCrossShardMessages) {
  // Deterministic two-node ping-pong across two shards: every hop is a
  // cross-shard message, so the barrier count must equal the hop count.
  const double L = 1e-3;
  const auto pingpong = [](sim::ShardContext& ctx, const sim::ShardEvent&) {
    ctx.send(ctx.node() == 0 ? 1 : 0, 1e-3, 0);
  };
  sim::ShardedEngine eng(2, {.shards = 2, .lookahead = L}, pingpong);
  eng.inject(0, 0, 0.0, 0);
  const std::uint64_t events = eng.run(10e-3 + L / 2);
  EXPECT_EQ(events, 11u);                       // t = 0, 1ms, ..., 10ms
  EXPECT_EQ(eng.cross_shard_messages(), 11u);   // one emitted per commit
  // Each window holds exactly one event here (the next hop is created at
  // exactly window start + L), so windows track events 1:1.
  EXPECT_EQ(eng.windows(), 11u);
}

TEST(ShardedEngine, ZeroLookaheadWithMultipleShardsThrows) {
  const auto noop = [](sim::ShardContext&, const sim::ShardEvent&) {};
  EXPECT_THROW(sim::ShardedEngine(8, {.shards = 2, .lookahead = 0.0}, noop),
               std::invalid_argument);
  EXPECT_THROW(sim::ShardedEngine(8, {.shards = 4, .lookahead = -1.0}, noop),
               std::invalid_argument);
  EXPECT_NO_THROW(
      sim::ShardedEngine(8, {.shards = 1, .lookahead = 0.0}, noop));
}

TEST(ShardedEngine, SendBelowLookaheadThrowsOnEveryShardCount) {
  // The lookahead contract is enforced on the serial path too: a model
  // bug must not hide at LMAS_SHARDS=1.
  for (const std::uint32_t shards : {1u, 2u}) {
    const auto too_fast = [](sim::ShardContext& ctx, const sim::ShardEvent&) {
      ctx.send(1, 1e-9, 0);  // below the 1ms lookahead
    };
    sim::ShardedEngine eng(4, {.shards = shards, .lookahead = 1e-3},
                           too_fast);
    eng.inject(0, 0, 0.0, 0);
    EXPECT_THROW(eng.run(), std::invalid_argument) << shards << " shards";
  }
}

TEST(ShardedEngine, ConstructionAndInjectValidateArguments) {
  const auto noop = [](sim::ShardContext&, const sim::ShardEvent&) {};
  EXPECT_THROW(sim::ShardedEngine(0, {.shards = 1}, noop),
               std::invalid_argument);
  EXPECT_THROW(sim::ShardedEngine(4, {.shards = 1}, sim::ShardHandler{}),
               std::invalid_argument);
  sim::ShardedEngine eng(4, {.shards = 2, .lookahead = 1e-6}, noop);
  EXPECT_THROW(eng.inject(0, 9, 0.0, 0), std::out_of_range);
  EXPECT_THROW(eng.inject(9, 0, 0.0, 0), std::out_of_range);
  EXPECT_THROW(eng.inject(0, 1, -1.0, 0), std::invalid_argument);
}

TEST(ShardedEngine, DefaultShardsReadsEnvironment) {
  ASSERT_EQ(setenv("LMAS_SHARDS", "4", 1), 0);
  EXPECT_EQ(sim::default_shards(), 4u);
  const auto noop = [](sim::ShardContext&, const sim::ShardEvent&) {};
  sim::ShardedEngine eng(16, {.lookahead = 1e-6}, noop);  // shards = 0
  EXPECT_EQ(eng.shard_count(), 4u);
  ASSERT_EQ(setenv("LMAS_SHARDS", "zebra", 1), 0);
  EXPECT_EQ(sim::default_shards(), 1u);
  ASSERT_EQ(setenv("LMAS_SHARDS", "-2", 1), 0);
  EXPECT_EQ(sim::default_shards(), 1u);
  ASSERT_EQ(unsetenv("LMAS_SHARDS"), 0);
  EXPECT_EQ(sim::default_shards(), 1u);
}

}  // namespace

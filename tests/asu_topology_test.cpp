#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "asu/asu.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/sim.hpp"

namespace sim = lmas::sim;
namespace asu = lmas::asu;

namespace {

asu::MachineParams small_params() {
  asu::MachineParams p;
  p.num_hosts = 2;
  p.num_asus = 4;
  return p;
}

/// 2 racks over the small machine: hosts {0},{1}; ASUs {0,1},{2,3}.
/// Numbers chosen so every tier charge is a round figure: a 1000-byte
/// message pays 1.0 s on its rack link, 2.0 s per spine uplink
/// (oversubscription 2 halves the spine's 1000 B/s), 0.5 s rack latency
/// and 0.25 s spine latency. NICs are non-binding.
asu::TopologySpec two_tier() {
  auto p = small_params();
  p.link_bandwidth = 1000.0;
  p.link_latency = 0.5;
  p.host_nic_bandwidth = 1e12;
  p.asu_nic_bandwidth = 1e12;
  auto t = asu::TopologySpec::flat(p);
  t.racks = 2;
  t.spine = {.latency = 0.25, .bandwidth = 1000.0, .oversubscription = 2.0};
  return t;
}

TEST(TopologySpec, FlatAdapterMirrorsMachineParams) {
  auto p = small_params();
  p.link_bandwidth = 123.0;
  p.link_latency = 7e-5;
  const auto t = asu::TopologySpec::flat(p);
  EXPECT_FALSE(t.hierarchical());
  EXPECT_EQ(t.racks, 1u);
  EXPECT_DOUBLE_EQ(t.rack.latency, 7e-5);
  EXPECT_DOUBLE_EQ(t.rack.bandwidth, 123.0);
  EXPECT_DOUBLE_EQ(t.rack.oversubscription, 1.0);
  // Exactly the flat model's charge, bit for bit.
  EXPECT_EQ(t.rack.seconds(4096), p.link_seconds(4096));
  EXPECT_NO_THROW(t.validate());
}

TEST(TopologySpec, ValidateRejectsUnusableShapes) {
  auto t = asu::TopologySpec::flat(small_params());
  t.racks = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = asu::TopologySpec::flat(small_params());
  t.rack.bandwidth = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  // Spine only checked once it is actually traversed (racks > 1).
  t = asu::TopologySpec::flat(small_params());
  t.spine.bandwidth = 0;
  EXPECT_NO_THROW(t.validate());
  t.racks = 2;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = two_tier();
  t.host_speed = {1.0, 1.0, 1.0};  // machine has 2 hosts
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = two_tier();
  t.asu_speed = {1.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = two_tier();
  t.asu_speed = {0.5, 1.0, 1.5, 2.0};
  EXPECT_NO_THROW(t.validate());
}

TEST(TopologySpec, RackBlockPartitionIsBalancedAndExhaustive) {
  auto t = two_tier();
  EXPECT_EQ(t.rack_of_host(0), 0u);
  EXPECT_EQ(t.rack_of_host(1), 1u);
  EXPECT_EQ(t.rack_of_asu(0), 0u);
  EXPECT_EQ(t.rack_of_asu(1), 0u);
  EXPECT_EQ(t.rack_of_asu(2), 1u);
  EXPECT_EQ(t.rack_of_asu(3), 1u);

  // Uneven division: blocks balanced to within one node, monotone, and
  // every rack index stays < racks.
  auto u = asu::TopologySpec::flat(small_params());
  u.machine.num_asus = 10;
  u.racks = 3;
  std::vector<unsigned> count(u.racks, 0);
  unsigned prev = 0;
  for (unsigned a = 0; a < u.machine.num_asus; ++a) {
    const unsigned r = u.rack_of_asu(a);
    ASSERT_LT(r, u.racks);
    ASSERT_GE(r, prev);
    prev = r;
    ++count[r];
  }
  for (unsigned r = 0; r < u.racks; ++r) {
    EXPECT_GE(count[r], 3u);
    EXPECT_LE(count[r], 4u);
  }
}

TEST(TopologySpec, SpeedMultipliersScaleNodeCompute) {
  sim::Engine eng;
  auto t = asu::TopologySpec::flat(small_params());
  t.machine.c = 8.0;
  t.machine.asu_background_load = 0.0;
  t.asu_speed = {1.0, 2.0, 1.0, 1.0};
  t.host_speed = {1.0, 0.5};
  asu::Cluster cluster(eng, t);
  // Base speeds: host 1.0, ASU 1/8. Multipliers scale them per node.
  EXPECT_DOUBLE_EQ(cluster.host(0).speed(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.host(1).speed(), 0.5);
  EXPECT_DOUBLE_EQ(cluster.asu(0).speed(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(cluster.asu(1).speed(), 2.0 / 8.0);

  double fast_done = 0, slow_done = 0;
  auto run = [](asu::Node& n, double& done, sim::Engine& e) -> sim::Task<> {
    co_await n.compute(1.0);
    done = e.now();
  };
  eng.spawn(run(cluster.asu(0), slow_done, eng));
  eng.spawn(run(cluster.asu(1), fast_done, eng));
  eng.run();
  EXPECT_NEAR(slow_done, 8.0, 1e-9);
  EXPECT_NEAR(fast_done, 4.0, 1e-9);
}

TEST(Topology, SameRackTransferPaysRackTierOnly) {
  sim::Engine eng;
  asu::Cluster cluster(eng, two_tier());
  double done = 0;
  auto xfer = [](asu::Cluster& c, double& t, sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.host(0), c.asu(1), 1000);
    t = e.now();
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  // Rack link 1.0 s + rack latency 0.5 s; no spine anywhere.
  EXPECT_NEAR(done, 1.5, 1e-6);
}

TEST(Topology, CrossRackTransferPaysRackPlusSpineAndSummedLatency) {
  sim::Engine eng;
  asu::Cluster cluster(eng, two_tier());
  double done = 0;
  auto xfer = [](asu::Cluster& c, double& t, sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.host(0), c.asu(3), 1000);
    t = e.now();
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  // Rack link 1.0 + source uplink 2.0 + destination uplink 2.0 +
  // latencies 0.5 + 0.25.
  EXPECT_NEAR(done, 5.75, 1e-6);
}

TEST(Topology, CrossRackHostToHostSkipsRackLinkKeepsSpine) {
  sim::Engine eng;
  asu::Cluster cluster(eng, two_tier());
  double done = 0;
  auto xfer = [](asu::Cluster& c, double& t, sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.host(0), c.host(1), 1000);
    t = e.now();
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  // Same-tier pairs have no dedicated rack link (the paper's model), but
  // a cross-rack one still pays both spine uplinks and both latencies.
  EXPECT_NEAR(done, 4.75, 1e-6);
}

TEST(Topology, NodeToSelfTransferIsFree) {
  sim::Engine eng;
  asu::Cluster cluster(eng, two_tier());
  double done = -1;
  auto xfer = [](asu::Cluster& c, double& t, sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.host(0), c.host(0), 1 << 20);
    t = e.now();
  };
  eng.spawn(xfer(cluster, done, eng));
  eng.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(Topology, SpineUplinksSerializeCrossRackTransfers) {
  sim::Engine eng;
  asu::Cluster cluster(eng, two_tier());
  std::vector<double> done;
  auto xfer = [](asu::Cluster& c, unsigned a, std::vector<double>& out,
                 sim::Engine& e) -> sim::Task<> {
    co_await c.network().transfer(c.host(0), c.asu(a), 1000);
    out.push_back(e.now());
  };
  eng.spawn(xfer(cluster, 2, done, eng));
  eng.spawn(xfer(cluster, 3, done, eng));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Distinct rack links (both 1.0 s, concurrent), then both requests
  // meet at rack 0's uplink at t=1: the first holds it [1,3] and rack
  // 1's uplink [3,5], finishing at 5 + 0.75; the second gets the source
  // uplink [3,5], the destination uplink [5,7], finishing at 7 + 0.75.
  EXPECT_NEAR(done[0], 5.75, 1e-6);
  EXPECT_NEAR(done[1], 7.75, 1e-6);
}

TEST(Topology, FlatSpecClusterMatchesMachineParamsClusterExactly) {
  // The TopologySpec::flat adapter must reproduce the pre-topology flat
  // model byte-identically: same resources, same charges, same event
  // sequence — pinned by comparing execution digests of identical
  // workloads built both ways.
  auto workload = [](asu::Cluster& c, sim::Engine& e) {
    auto xfer = [](asu::Cluster& cl, unsigned h, unsigned a,
                   std::size_t bytes) -> sim::Task<> {
      co_await cl.network().transfer(cl.host(h), cl.asu(a), bytes);
      co_await cl.asu(a).compute(1e-3);
      co_await cl.network().transfer(cl.asu(a), cl.host(h), bytes / 2);
    };
    for (unsigned i = 0; i < 8; ++i) {
      e.spawn(xfer(c, i % 2, i % 4, 1000 + 173 * i));
    }
    e.run();
  };
  sim::Engine legacy_eng;
  asu::Cluster legacy(legacy_eng, small_params());
  workload(legacy, legacy_eng);

  sim::Engine topo_eng;
  asu::Cluster flat(topo_eng, asu::TopologySpec::flat(small_params()));
  workload(flat, topo_eng);

  EXPECT_EQ(legacy_eng.digest(), topo_eng.digest());
  EXPECT_GT(legacy_eng.now(), 0.0);
  EXPECT_DOUBLE_EQ(legacy_eng.now(), topo_eng.now());
}

TEST(ShardLookahead, TopologyPerTierLatencyFloor) {
  const auto p = small_params();
  // Flat spec == flat-machine overload == link latency.
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(asu::TopologySpec::flat(p)),
                   asu::shard_lookahead(p));

  auto t = two_tier();  // rack 0.5, spine 0.25
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(t), 0.25);
  t.spine.latency = 2.0;  // floor moves to the rack tier
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(t), 0.5);
  t.spine.latency = 0.0;  // degenerate tier: no conservative window
  EXPECT_DOUBLE_EQ(asu::shard_lookahead(t), 0.0);
  EXPECT_THROW(
      sim::ShardedEngine(4, {.shards = 2, .lookahead = asu::shard_lookahead(t)},
                         [](sim::ShardContext&, const sim::ShardEvent&) {}),
      std::invalid_argument);
}

TEST(ShardLookahead, ShardedDigestPinnedOnTwoTierTopology) {
  // Regression for the lookahead derivation: a deterministic routed-hop
  // workload whose send delays are exactly the two-tier path latencies
  // must commit the same digest at every shard count when the window is
  // asu::shard_lookahead(topo) — if the derivation ever exceeded the true
  // per-tier floor, the spine-latency hops would violate the
  // send-delay >= lookahead contract and throw.
  const auto topo = two_tier();
  const double lookahead = asu::shard_lookahead(topo);
  ASSERT_DOUBLE_EQ(lookahead, 0.25);

  auto run_at = [&](std::uint32_t shards) {
    const std::uint32_t n = 16;  // 4 per "rack" of 4
    auto handler = [&](sim::ShardContext& ctx, const sim::ShardEvent& ev) {
      if (ev.payload >= 64) return;  // bounded cascade
      const std::uint32_t dst =
          std::uint32_t((ev.payload * 2654435761u + ctx.node()) % n);
      const bool cross = (dst / 4) != (ctx.node() / 4);
      // Same-rack hops pay the rack latency, cross-rack the spine+rack
      // path; both are >= the per-tier floor the engine windows on.
      const double delay =
          cross ? topo.rack.latency + topo.spine.latency : topo.rack.latency;
      if (dst == ctx.node()) {
        ctx.post(delay, ev.payload + 1);
      } else {
        ctx.send(dst, delay, ev.payload + 1);
      }
    };
    sim::ShardedEngine eng(n, {.shards = shards, .lookahead = lookahead},
                           handler);
    for (std::uint32_t i = 0; i < n; ++i) eng.inject(i, i, 0.0, i % 5);
    eng.run();
    return eng.digest();
  };

  const std::uint64_t serial = run_at(1);
  EXPECT_EQ(run_at(2), serial);
  EXPECT_EQ(run_at(4), serial);
  EXPECT_NE(serial, 0xcbf29ce484222325ULL);  // something actually committed
}

}  // namespace

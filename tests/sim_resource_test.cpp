#include <gtest/gtest.h>

#include <vector>

#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

sim::Task<> worker(sim::Engine& eng, sim::Resource& res, double service,
                   std::vector<double>& done) {
  co_await res.use(service);
  done.push_back(eng.now());
}

TEST(Resource, SerializesFifo) {
  sim::Engine eng;
  sim::Resource cpu(eng, "cpu");
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) eng.spawn(worker(eng, cpu, 2.0, done));
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 4.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
  EXPECT_DOUBLE_EQ(cpu.total_service(), 6.0);
  EXPECT_EQ(cpu.total_requests(), 3u);
}

TEST(Resource, IdleGapsAreNotBusy) {
  sim::Engine eng;
  sim::Resource cpu(eng, "cpu");
  auto gappy = [](sim::Engine& e, sim::Resource& r) -> sim::Task<> {
    co_await r.use(1.0);
    co_await e.sleep(3.0);  // idle gap [1, 4)
    co_await r.use(1.0);
  };
  eng.spawn(gappy(eng, cpu));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  EXPECT_DOUBLE_EQ(cpu.utilization().total_busy(), 2.0);
  EXPECT_NEAR(cpu.utilization().mean_utilization(5.0), 0.4, 1e-12);
}

TEST(Resource, PostReservesWithoutBlocking) {
  sim::Engine eng;
  sim::Resource disk(eng, "disk");
  auto writer = [](sim::Engine& e, sim::Resource& d) -> sim::Task<> {
    const double end1 = d.post(2.0);  // async write-behind
    EXPECT_DOUBLE_EQ(end1, 2.0);
    EXPECT_DOUBLE_EQ(e.now(), 0.0);  // caller did not block
    // A subsequent synchronous read queues behind the posted write.
    co_await d.use(1.0);
    EXPECT_DOUBLE_EQ(e.now(), 3.0);
  };
  eng.spawn(writer(eng, disk));
  eng.run();
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

TEST(Resource, BacklogReflectsQueuedWork) {
  sim::Engine eng;
  sim::Resource cpu(eng, "cpu");
  EXPECT_DOUBLE_EQ(cpu.backlog(), 0.0);
  cpu.post(5.0);
  EXPECT_DOUBLE_EQ(cpu.backlog(), 5.0);
}

TEST(Resource, ZeroServiceDoesNotSuspend) {
  sim::Engine eng;
  sim::Resource cpu(eng, "cpu");
  std::vector<double> done;
  eng.spawn(worker(eng, cpu, 0.0, done));
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 0.0);
}

TEST(UtilizationRecorder, BinsBusyTime) {
  sim::UtilizationRecorder rec(1.0);
  rec.add_busy(0.5, 2.5);  // bins: [0]=0.5, [1]=1.0, [2]=0.5
  auto s = rec.series(3.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 0.5, 1e-12);
  EXPECT_NEAR(s[1], 1.0, 1e-12);
  EXPECT_NEAR(s[2], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(rec.total_busy(), 2.0);
}

TEST(UtilizationRecorder, ClampsToOne) {
  sim::UtilizationRecorder rec(1.0);
  rec.add_busy(0.0, 1.0);
  rec.add_busy(0.0, 1.0);  // double-charged (two servers would need two recs)
  auto s = rec.series(1.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
}

TEST(UtilizationRecorder, BoundaryExactIntervalStaysInItsBin) {
  // An interval ending exactly on a bin boundary must not touch (or
  // allocate) the following bin: [0, 1) with width 1 is one full bin.
  sim::UtilizationRecorder rec(1.0);
  rec.add_busy(0.0, 1.0);
  auto s = rec.series(1.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  // Horizon 2 sees an idle second bin, not a phantom sliver.
  auto s2 = rec.series(2.0);
  ASSERT_EQ(s2.size(), 2u);
  EXPECT_DOUBLE_EQ(s2[0], 1.0);
  EXPECT_DOUBLE_EQ(s2[1], 0.0);
}

TEST(UtilizationRecorder, PartialFinalBinNormalizedByInHorizonWidth) {
  // A horizon mid-bin: the final bin covers only half a bin width, and a
  // fully-busy half must read 1.0, not 0.5.
  sim::UtilizationRecorder rec(1.0);
  rec.add_busy(0.0, 1.5);
  auto s = rec.series(1.5);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
}

TEST(UtilizationRecorder, BusyPastHorizonCannotOverReport) {
  // Busy time recorded past the horizon lands in the horizon-straddling
  // bin; the clamp keeps the reported utilization at 1.
  sim::UtilizationRecorder rec(1.0);
  rec.add_busy(0.0, 2.5);
  auto s = rec.series(1.5);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
}

TEST(Accumulator, MeanVarianceMinMax) {
  sim::Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  sim::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  sim::Rng rng(42);
  sim::Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_GE(acc.min(), 0.0);
  EXPECT_LT(acc.max(), 1.0);
}

TEST(Rng, ExponentialHasRequestedMean) {
  sim::Rng rng(42);
  sim::Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  sim::Rng parent(99);
  sim::Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamDerivationIsStableAndDoesNotAdvanceParent) {
  sim::Rng parent(99);
  sim::Rng a1 = parent.stream(sim::stream_id("workload", 0));
  sim::Rng b = parent.stream(sim::stream_id("routing"));
  sim::Rng a2 = parent.stream(sim::stream_id("workload", 0));
  // Same (state, id) -> same stream, regardless of derivation order.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a1.next(), a2.next());
  // Parent state untouched: a fresh parent derives the same stream.
  sim::Rng c = sim::Rng(99).stream(sim::stream_id("routing"));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.next(), c.next());
}

TEST(Rng, DistinctStreamsAreUncorrelated) {
  sim::Rng parent(7);
  sim::Rng w = parent.stream(sim::stream_id("workload", 3));
  sim::Rng r = parent.stream(sim::stream_id("routing", 3));
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (w.next() == r.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamIdsSeparateNameAndIndex) {
  // The failure mode of `seed * K + i` seeding: ("workload", K) colliding
  // with ("routing", 0). Named ids cannot collide that way.
  EXPECT_NE(sim::stream_id("workload", 1),
            sim::stream_id("workload", 2));
  EXPECT_NE(sim::stream_id("workload", 0), sim::stream_id("routing", 0));
  EXPECT_NE(sim::stream_id("workload"), sim::stream_id("routing"));
}

}  // namespace

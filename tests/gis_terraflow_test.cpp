#include <gtest/gtest.h>

#include <set>

#include "gis/gis.hpp"

namespace gis = lmas::gis;
namespace em = lmas::em;

namespace {

TEST(Grid, BasicAccessAndNeighbors) {
  gis::Grid g(4, 3);
  g.set(2, 1, 7.5f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 7.5f);
  EXPECT_EQ(g.cells(), 12u);
  EXPECT_EQ(g.cell_id(2, 1), 6u);

  int corner = 0, center = 0;
  g.for_each_neighbor(0, 0, [&](std::uint32_t, std::uint32_t) { ++corner; });
  g.for_each_neighbor(1, 1, [&](std::uint32_t, std::uint32_t) { ++center; });
  EXPECT_EQ(corner, 3);
  EXPECT_EQ(center, 8);
}

TEST(Grid, RampIsMonotone) {
  auto g = gis::make_ramp(10, 10);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(9, 9), 18.0f);
  EXPECT_EQ(gis::count_local_minima(g), 1u);
}

TEST(Grid, BasinsHaveOneMinimumPerCenter) {
  auto g = gis::make_basins(40, 40, {{10, 10}, {30, 30}, {10, 30}});
  EXPECT_EQ(gis::count_local_minima(g), 3u);
}

TEST(Grid, FractalIsDeterministic) {
  auto a = gis::make_fractal(33, 33, 5);
  auto b = gis::make_fractal(33, 33, 5);
  auto c = gis::make_fractal(33, 33, 6);
  bool same_ab = true, same_ac = true;
  for (std::uint32_t y = 0; y < 33; ++y) {
    for (std::uint32_t x = 0; x < 33; ++x) {
      same_ab &= a.at(x, y) == b.at(x, y);
      same_ac &= a.at(x, y) == c.at(x, y);
    }
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(Restructure, CarriesNeighborElevations) {
  auto g = gis::make_ramp(3, 3);
  em::Stream<gis::CellRecord> cells;
  gis::restructure_grid(g, cells);
  EXPECT_EQ(cells.size(), 9u);
  // Center cell (1,1): all 8 neighbors present.
  cells.seek(4);
  auto c = cells.read();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->id, 4u);
  EXPECT_EQ(c->nbr_mask, 0xffu);
  // Slot 0 is (-1,-1): elevation 0.
  EXPECT_FLOAT_EQ(c->nbr_elev[0], 0.0f);
  // Corner cell (0,0): only E, S, SE neighbors (slots 4, 6, 7).
  cells.seek(0);
  c = cells.read();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->nbr_mask, (1u << 4) | (1u << 6) | (1u << 7));
}

TEST(Watershed, RampIsOneWatershed) {
  auto g = gis::make_ramp(16, 16);
  gis::TerraFlowStats st;
  auto colors = gis::watershed_labels(g, &st);
  EXPECT_EQ(st.watersheds, 1u);
  for (auto c : colors) EXPECT_EQ(c, 0u);
  EXPECT_EQ(st.cells, 256u);
}

TEST(Watershed, TwoBasinsSplitAlongRidge) {
  auto g = gis::make_basins(32, 16, {{8, 8}, {24, 8}});
  gis::TerraFlowStats st;
  auto colors = gis::watershed_labels(g, &st);
  EXPECT_EQ(st.watersheds, 2u);
  // The two pit centers carry different colors; cells near each center
  // share its color.
  const auto c0 = colors[8u * 32 + 8];
  const auto c1 = colors[8u * 32 + 24];
  EXPECT_NE(c0, c1);
  EXPECT_EQ(colors[8u * 32 + 9], c0);
  EXPECT_EQ(colors[8u * 32 + 23], c1);
}

TEST(Watershed, ColorCountMatchesLocalMinimaOracle) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    auto g = gis::make_fractal(48, 48, seed);
    gis::TerraFlowStats st;
    auto colors = gis::watershed_labels(g, &st);
    EXPECT_EQ(st.watersheds, gis::count_local_minima(g)) << "seed " << seed;
    // Colors are dense 0..watersheds-1.
    std::set<std::uint32_t> distinct(colors.begin(), colors.end());
    EXPECT_EQ(distinct.size(), st.watersheds);
    EXPECT_EQ(*distinct.rbegin(), st.watersheds - 1);
  }
}

TEST(Watershed, PlateauDrainsDeterministically) {
  // A flat grid is one plateau: the smallest-id cell (0) is the unique
  // minimum under the (elevation, id) order.
  gis::Grid g(8, 8);
  gis::TerraFlowStats st;
  auto colors = gis::watershed_labels(g, &st);
  EXPECT_EQ(st.watersheds, 1u);
  for (auto c : colors) EXPECT_EQ(c, 0u);
}

TEST(Watershed, SpillsToExternalPqOnTightMemory) {
  auto g = gis::make_fractal(64, 64, 11);
  gis::TerraFlowOptions opt;
  opt.memory_bytes = 16 * 1024;  // force the PQ and sort to go external
  gis::TerraFlowStats st;
  auto colors = gis::watershed_labels(g, &st, opt);
  EXPECT_GT(st.pq_spills, 0u);
  EXPECT_GT(st.sort.runs_formed, 1u);
  EXPECT_EQ(st.watersheds, gis::count_local_minima(g));
  EXPECT_EQ(colors.size(), g.cells());
}

TEST(Watershed, DeterministicAcrossRuns) {
  auto g = gis::make_fractal(40, 40, 17);
  auto a = gis::watershed_labels(g);
  auto b = gis::watershed_labels(g);
  EXPECT_EQ(a, b);
}

TEST(PhaseModel, Steps12ParallelizeStep3DoesNot) {
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  const auto m = gis::terraflow_phase_model(mp, 1 << 22, 64);
  // Active placement helps steps 1 and 2...
  EXPECT_LT(m.step1_active, m.step1_passive);
  EXPECT_LT(m.step2_active, m.step2_passive);
  // ...but step 3 is a fixed sequential cost, so total speedup is
  // Amdahl-bounded.
  const double speedup = m.total_passive() / m.total_active();
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup,
            m.total_passive() / m.step3);  // can't beat the serial floor
}

}  // namespace

/// Online load management: the SwitchableRouter hot-swap decorator, the
/// LoadManager control loop (hysteresis, cooldown, dwell, projected
/// drain-time migration planning), and the DSM-Sort pass-1 integration
/// (skewed input + Manage mode must act, conserve records, and stay
/// deterministic; Off mode must be digest-identical to no manager).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;

namespace {

core::Packet packet_for_subset(std::uint32_t s) {
  core::Packet p;
  p.subset = s;
  p.records.resize(8);
  return p;
}

// ---------- SwitchableRouter ----------

TEST(SwitchableRouter, SwapsBetweenPoliciesAndBack) {
  // Baseline modulo-static vs round-robin dynamic: their pick sequences
  // differ visibly, and each policy's internal state survives being
  // swapped out (the RR cursor resumes where it left off).
  core::SwitchableRouter r(std::make_unique<core::StaticPartitionRouter>(),
                           std::make_unique<core::RoundRobinRouter>());
  std::vector<core::RouteTarget> targets(3);
  EXPECT_FALSE(r.dynamic_active());
  EXPECT_EQ(r.pick(packet_for_subset(5), targets), 5u % 3);
  EXPECT_EQ(r.pick(packet_for_subset(5), targets), 5u % 3);  // static: stable
  r.promote();
  EXPECT_TRUE(r.dynamic_active());
  EXPECT_EQ(r.pick(packet_for_subset(5), targets), 0u);  // RR from 0
  EXPECT_EQ(r.pick(packet_for_subset(5), targets), 1u);
  r.demote();
  EXPECT_EQ(r.pick(packet_for_subset(7), targets), 7u % 3);
  r.promote();
  EXPECT_EQ(r.pick(packet_for_subset(5), targets), 2u);  // cursor resumed
}

TEST(SwitchableRouter, NameReportsEngagedPolicy) {
  core::SwitchableRouter r(std::make_unique<core::StaticPartitionRouter>(),
                           std::make_unique<core::RoundRobinRouter>());
  EXPECT_EQ(r.name(), "static(switchable)");
  r.promote();
  EXPECT_EQ(r.name(), "round-robin(switchable)");
}

TEST(SwitchableRouter, InstrumentedWrapAcrossShrinkingAndGrowingTargets) {
  // The production composition: InstrumentedRouter(SwitchableRouter(...)).
  // The target set shrinks (replica failure) and grows back; both
  // regimes must keep picks in range and the per-target route counters
  // must account for every pick.
  sim::Engine eng;
  auto switchable = std::make_unique<core::SwitchableRouter>(
      std::make_unique<core::StaticPartitionRouter>(),
      std::make_unique<core::RoundRobinRouter>());
  core::SwitchableRouter* sw = switchable.get();
  core::InstrumentedRouter r(std::move(switchable), eng, "lmtest");

  std::size_t picks = 0;
  for (std::size_t k : {std::size_t(4), std::size_t(2), std::size_t(1),
                        std::size_t(5)}) {
    std::vector<core::RouteTarget> targets(k);
    for (std::uint32_t s = 0; s < 10; ++s) {
      const std::size_t idx = r.pick(packet_for_subset(s), targets);
      EXPECT_LT(idx, k);
      ++picks;
    }
    sw->promote();
    for (std::uint32_t s = 0; s < 10; ++s) {
      const std::size_t idx = r.pick(packet_for_subset(s), targets);
      EXPECT_LT(idx, k);
      ++picks;
    }
    sw->demote();
  }
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (const auto* c = eng.metrics().find_counter(
            "route.lmtest.target." + std::to_string(i))) {
      counted += c->value();
    }
  }
  EXPECT_EQ(counted, picks);
}

// ---------- LoadManager decision loop ----------

core::LoadSample sample_at(double t, std::vector<double> host_backlog) {
  core::LoadSample s;
  s.time = t;
  s.host_backlog = std::move(host_backlog);
  s.host_rate.assign(s.host_backlog.size(), 1.0);
  return s;
}

core::LoadManagerConfig manage_cfg() {
  core::LoadManagerConfig cfg;
  cfg.mode = core::LoadManagerMode::Manage;
  cfg.promote_hysteresis = 2;
  cfg.demote_hysteresis = 2;
  cfg.cooldown_samples = 4;  // outlasts demote_hysteresis: observably gates
  cfg.migrate_hysteresis = 2;
  cfg.dwell_samples = 4;
  return cfg;
}

TEST(LoadManager, PromotesOnlyOnSustainedImbalanceThenDemotes) {
  sim::Engine eng;
  core::LoadManager lm(eng, manage_cfg());
  core::SwitchableRouter router(
      std::make_unique<core::StaticPartitionRouter>(),
      std::make_unique<core::RoundRobinRouter>());
  lm.manage_router(&router);

  // One hot sample is not enough (hysteresis = 2)...
  lm.on_sample(sample_at(0.1, {1.0, 0.0}));
  EXPECT_FALSE(router.dynamic_active());
  // ...a second consecutive one is.
  lm.on_sample(sample_at(0.2, {1.0, 0.0}));
  EXPECT_TRUE(router.dynamic_active());
  EXPECT_EQ(lm.router_switches(), 1u);

  // Even load from now on. Demote hysteresis (2) is satisfied at sample
  // 0.4, but the promote's cooldown (4) gates the action until the
  // sample where the counter reaches zero.
  lm.on_sample(sample_at(0.3, {0.5, 0.5}));
  lm.on_sample(sample_at(0.4, {0.5, 0.5}));
  lm.on_sample(sample_at(0.5, {0.5, 0.5}));
  EXPECT_TRUE(router.dynamic_active());  // still cooling down
  lm.on_sample(sample_at(0.6, {0.5, 0.5}));
  EXPECT_FALSE(router.dynamic_active());
  EXPECT_EQ(lm.router_switches(), 2u);
  ASSERT_EQ(lm.events().size(), 2u);
}

TEST(LoadManager, TinyBacklogImbalanceIsIgnored) {
  // A drained cluster with one 1ms straggler reads as imbalance 1.0;
  // the actionable-backlog floor must mask it.
  sim::Engine eng;
  core::LoadManager lm(eng, manage_cfg());
  core::SwitchableRouter router(
      std::make_unique<core::StaticPartitionRouter>(),
      std::make_unique<core::RoundRobinRouter>());
  lm.manage_router(&router);
  for (int i = 0; i < 10; ++i) {
    lm.on_sample(sample_at(0.1 * i, {0.001, 0.0}));
  }
  EXPECT_FALSE(router.dynamic_active());
  EXPECT_EQ(lm.router_switches(), 0u);
}

TEST(LoadManager, PlansMigrationOffOverloadedNodeWithDwell) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 1;
  asu::Cluster cluster(eng, mp);
  asu::Node* h0 = &cluster.host(0);
  asu::Node* h1 = &cluster.host(1);

  auto cfg = manage_cfg();
  cfg.router_swap = false;
  core::LoadManager lm(eng, cfg);
  lm.manage_instances({h0, h1}, {h0, h1});

  // h0 drowning, h1 idle: drain_here / drain_there >> migrate_factor.
  h0->cpu().post(10.0);
  EXPECT_EQ(lm.migration_target(0), nullptr);
  lm.on_sample(sample_at(0.1, {10.0, 0.0}));
  EXPECT_EQ(lm.migration_target(0), nullptr);  // hysteresis not met
  lm.on_sample(sample_at(0.2, {10.0, 0.0}));
  EXPECT_EQ(lm.migration_target(0), h1);  // planned
  EXPECT_EQ(lm.migration_target(1), nullptr);

  // The plan stays pending (and is not re-issued) until the stage
  // confirms; confirmation flips placement and starts the dwell lockout.
  lm.on_sample(sample_at(0.3, {10.0, 0.0}));
  EXPECT_EQ(lm.migration_target(0), h1);
  lm.migration_performed(0, *h1);
  EXPECT_EQ(lm.migrations(), 1u);
  EXPECT_EQ(lm.migration_target(0), nullptr);

  // Still imbalanced on the nodes, but instance 0 is in dwell and
  // instance 1 has no qualifying move (its node is the idle one) — no
  // ping-pong plan may appear during the dwell window.
  for (int i = 0; i < 3; ++i) {
    lm.on_sample(sample_at(0.4 + 0.1 * i, {10.0, 0.0}));
    EXPECT_EQ(lm.migration_target(0), nullptr);
  }
}

// ---------- Migration economy (budgeted placer) ----------

TEST(LoadManager, BudgetAdmitsMultipleMovesPerTick) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 4;
  mp.num_asus = 1;
  asu::Cluster cluster(eng, mp);
  std::vector<asu::Node*> hosts;
  for (unsigned h = 0; h < 4; ++h) hosts.push_back(&cluster.host(h));

  auto cfg = manage_cfg();
  cfg.router_swap = false;
  cfg.budget_moves_per_tick = 2;
  core::LoadManager lm(eng, cfg);
  lm.manage_instances(hosts, hosts);

  // Two drowning hosts, two idle ones (the placer reads load off the
  // node CPUs). One gate opening must admit both moves in the same tick
  // — and the virtual rebalance must route them to *different* idle
  // hosts (after the first admission the first destination no longer
  // looks idle).
  hosts[0]->cpu().post(10.0);
  hosts[1]->cpu().post(10.0);
  lm.on_sample(sample_at(0.1, {10.0, 10.0, 0.0, 0.0}));
  EXPECT_EQ(lm.decisions().size(), 0u);  // hysteresis not met
  lm.on_sample(sample_at(0.2, {10.0, 10.0, 0.0, 0.0}));
  ASSERT_EQ(lm.decisions().size(), 2u);
  EXPECT_EQ(lm.decisions()[0].time, lm.decisions()[1].time);
  asu::Node* to0 = lm.migration_target(0);
  asu::Node* to1 = lm.migration_target(1);
  ASSERT_NE(to0, nullptr);
  ASSERT_NE(to1, nullptr);
  EXPECT_NE(to0, to1);
  EXPECT_TRUE(to0 == hosts[2] || to0 == hosts[3]);
  EXPECT_TRUE(to1 == hosts[2] || to1 == hosts[3]);
}

TEST(LoadManager, ByteBudgetMakesHeavyInstancesInadmissible) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 1;
  asu::Cluster cluster(eng, mp);
  asu::Node* h0 = &cluster.host(0);
  asu::Node* h1 = &cluster.host(1);

  auto cfg = manage_cfg();
  cfg.router_swap = false;
  cfg.budget_bytes_per_tick = 10000;  // ~10 KB per tick
  core::LoadManager lm(eng, cfg);
  lm.manage_instances({h0, h1}, {h0, h1});
  core::MigrationDeclaration heavy;
  heavy.working_set_bytes = [] { return std::size_t(1) << 20; };  // 1 MiB
  lm.declare_instance(0, heavy);

  // Sustained overload, but the instance's declared bytes exceed the
  // tick budget every tick: the placer must never admit the move.
  h0->cpu().post(10.0);
  for (int i = 0; i < 6; ++i) {
    lm.on_sample(sample_at(0.1 * (i + 1), {10.0, 0.0}));
    EXPECT_EQ(lm.migration_target(0), nullptr);
  }
  EXPECT_EQ(lm.decisions().size(), 0u);

  // Same pressure with the budget lifted: planned on the second sample,
  // and the journal prices the declared megabyte.
  cfg.budget_bytes_per_tick = std::size_t(-1);
  core::LoadManager lifted(eng, cfg);
  lifted.manage_instances({h0, h1}, {h0, h1});
  lifted.declare_instance(0, heavy);
  lifted.on_sample(sample_at(0.1, {10.0, 0.0}));
  lifted.on_sample(sample_at(0.2, {10.0, 0.0}));
  EXPECT_EQ(lifted.migration_target(0), h1);
  ASSERT_EQ(lifted.decisions().size(), 1u);
  EXPECT_EQ(lifted.decisions()[0].bytes, (std::size_t(1) << 20) + 4096);
}

TEST(LoadManager, PricesPreCopyForBulkStateAndStopCopyForLight) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 1;
  asu::Cluster cluster(eng, mp);
  asu::Node* h0 = &cluster.host(0);
  asu::Node* h1 = &cluster.host(1);

  auto cfg = manage_cfg();
  cfg.router_swap = false;
  h0->cpu().post(10.0);
  const auto plan_with = [&](core::MigrationDeclaration decl) {
    core::LoadManager lm(eng, cfg);
    lm.manage_instances({h0, h1}, {h0, h1});
    lm.declare_instance(0, std::move(decl));
    lm.on_sample(sample_at(0.1, {10.0, 0.0}));
    lm.on_sample(sample_at(0.2, {10.0, 0.0}));
    EXPECT_EQ(lm.migration_target(0), h1);
    return lm.migration_plan(0);
  };

  // Bulk state on a priced wire: the stop-copy stall (~1s) dwarfs the
  // window, so the placer chooses pre-copy and estimates the stall as
  // overhead + dirty delta only.
  core::MigrationDeclaration bulk;
  bulk.working_set_bytes = [] { return std::size_t(1) << 20; };
  bulk.wire_seconds_per_byte = 1e-6;
  const core::MigrationPlan pre = plan_with(bulk);
  EXPECT_EQ(pre.mode, core::MigrationMode::PreCopy);
  const double stop_stall = double((std::size_t(1) << 20) + 4096) * 1e-6;
  EXPECT_LT(pre.est_stall, stop_stall);
  EXPECT_NEAR(pre.est_stall, (4096.0 + 0.125 * double(1 << 20)) * 1e-6,
              1e-12);
  EXPECT_GT(pre.gain, 0.0);

  // A default declaration (no working set, no wire cost) prices the move
  // at the fixed overhead and stop-copies — the pre-economy behavior.
  const core::MigrationPlan stop = plan_with(core::MigrationDeclaration{});
  EXPECT_EQ(stop.mode, core::MigrationMode::StopCopy);
  EXPECT_EQ(stop.bytes, 4096u);
  EXPECT_EQ(stop.est_stall, 0.0);
}

sim::Task<> pressure_work(asu::Cluster& cl) {
  co_await cl.host(0).compute(0.3);
}

TEST(LoadMonitor, PublishesPerNodePressureGauges) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 3;
  asu::Cluster cl(eng, mp);
  core::LoadMonitor mon(cl, 0.05);
  mon.start(4);
  eng.spawn(pressure_work(cl), "work");
  eng.run();
  // One gauge per node, normalized to the sampling window: the global
  // placer (and the admission controller) read cluster pressure straight
  // off the metrics registry.
  for (unsigned h = 0; h < mp.num_hosts; ++h) {
    EXPECT_NE(eng.metrics().find_gauge("pressure.host." + std::to_string(h)),
              nullptr);
  }
  for (unsigned a = 0; a < mp.num_asus; ++a) {
    EXPECT_NE(eng.metrics().find_gauge("pressure.asu." + std::to_string(a)),
              nullptr);
  }
}

// ---------- DSM-Sort integration ----------

asu::MachineParams dsm_machine() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 4;
  mp.c = 8;
  return mp;
}

core::DsmSortConfig skewed_cfg() {
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 14;
  cfg.alpha = 8;
  cfg.log2_alpha_beta = 12;
  cfg.key_dist = core::KeyDist::Exponential;  // static split -> skew
  cfg.sort_router = core::RouterKind::Static;
  cfg.seed = 42;
  return cfg;
}

core::LoadManagerConfig dsm_manage_cfg() {
  core::LoadManagerConfig cfg;
  cfg.mode = core::LoadManagerMode::Manage;
  cfg.period = 0.002;
  cfg.promote_hysteresis = 2;
  cfg.cooldown_samples = 2;
  cfg.migrate_hysteresis = 2;
  return cfg;
}

TEST(LoadManagedDsm, ManageModeActsAndConservesRecords) {
  auto cfg = skewed_cfg();
  cfg.load_manager = dsm_manage_cfg();
  const auto rep = core::run_dsm_sort(dsm_machine(), cfg);
  EXPECT_TRUE(rep.ok()) << "conservation/sortedness broken under manager";
  EXPECT_GE(rep.lm_router_switches + rep.lm_migrations, 1u)
      << "skewed static split produced no action";
  EXPECT_EQ(rep.lm_events.size() >= 1, true);
  EXPECT_GT(rep.peak_host_imbalance, 0.0);
}

TEST(LoadManagedDsm, ManageModeIsDeterministicPerSeed) {
  auto cfg = skewed_cfg();
  cfg.load_manager = dsm_manage_cfg();
  const auto a = core::run_dsm_sort(dsm_machine(), cfg);
  const auto b = core::run_dsm_sort(dsm_machine(), cfg);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.lm_migrations, b.lm_migrations);
  EXPECT_EQ(a.lm_router_switches, b.lm_router_switches);
  EXPECT_DOUBLE_EQ(a.pass1_seconds, b.pass1_seconds);
}

TEST(LoadManagedDsm, OffModeIsDigestNeutral) {
  // mode == Off must not construct monitor or manager at all: the run is
  // bit-for-bit the pre-load-manager execution (this is what keeps the
  // six pinned golden digests valid without regoldening).
  auto plain = skewed_cfg();
  auto off = skewed_cfg();
  off.load_manager = dsm_manage_cfg();
  off.load_manager.mode = core::LoadManagerMode::Off;
  const auto a = core::run_dsm_sort(dsm_machine(), plain);
  const auto b = core::run_dsm_sort(dsm_machine(), off);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(b.lm_migrations, 0u);
  EXPECT_EQ(b.lm_router_switches, 0u);
  EXPECT_EQ(b.peak_host_imbalance, 0.0);
}

TEST(LoadManagedDsm, MonitorModeObservesWithoutChangingTimings) {
  auto plain = skewed_cfg();
  auto mon = skewed_cfg();
  mon.load_manager = dsm_manage_cfg();
  mon.load_manager.mode = core::LoadManagerMode::Monitor;
  const auto a = core::run_dsm_sort(dsm_machine(), plain);
  const auto b = core::run_dsm_sort(dsm_machine(), mon);
  // Sampling occupies no resources: identical pass timing, but the
  // monitor reports the imbalance the unmanaged static split creates.
  EXPECT_DOUBLE_EQ(a.pass1_seconds, b.pass1_seconds);
  EXPECT_GT(b.peak_host_imbalance, 0.0);
  EXPECT_GT(b.mean_host_imbalance, 0.0);
  EXPECT_EQ(b.lm_migrations, 0u);
  EXPECT_EQ(b.lm_router_switches, 0u);
}

// ---------- Rack-tier accounting (hierarchical TopologySpec) ----------

TEST(LoadSample, RackLoadAggregatesTheBlockPartition) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 4;
  auto topo = asu::TopologySpec::flat(mp);
  topo.racks = 2;
  topo.spine = asu::TierSpec{.latency = 0.001, .bandwidth = 1e9,
                             .oversubscription = 2.0};

  core::LoadSample s;
  s.host_backlog = {1.0, 3.0};
  s.asu_backlog = {1.0, 2.0, 3.0, 4.0};
  // Block partition: host 0 + ASUs {0, 1} in rack 0, the rest in rack 1.
  const auto racks = s.rack_load(topo);
  ASSERT_EQ(racks.size(), 2u);
  EXPECT_DOUBLE_EQ(racks[0], 1.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(racks[1], 3.0 + 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(s.rack_imbalance(topo),
                   core::LoadSample::imbalance({4.0, 10.0}));
}

sim::Task<> rack_gauge_work(asu::Cluster& cl) {
  co_await cl.host(0).compute(0.3);
}

TEST(LoadMonitor, RackGaugesExistOnlyOnHierarchicalTopologies) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 4;

  // Hierarchical: rack gauges appear and carry the sampled load.
  {
    sim::Engine eng;
    auto topo = asu::TopologySpec::flat(mp);
    topo.racks = 2;
    topo.spine = asu::TierSpec{.latency = 0.001, .bandwidth = 1e9,
                               .oversubscription = 2.0};
    asu::Cluster cl(eng, topo);
    core::LoadMonitor mon(cl, 0.05);
    mon.start(4);
    eng.spawn(rack_gauge_work(cl), "work");
    eng.run();
    EXPECT_NE(eng.metrics().find_gauge("rack.load.0"), nullptr);
    EXPECT_NE(eng.metrics().find_gauge("rack.load.1"), nullptr);
    EXPECT_NE(eng.metrics().find_gauge("load.rack_imbalance"), nullptr);
  }

  // Flat: the metric fingerprint must stay exactly pre-topology (the
  // pinned goldens enumerate metric names).
  {
    sim::Engine eng;
    asu::Cluster cl(eng, asu::TopologySpec::flat(mp));
    core::LoadMonitor mon(cl, 0.05);
    mon.start(4);
    eng.spawn(rack_gauge_work(cl), "work");
    eng.run();
    EXPECT_EQ(eng.metrics().find_gauge("rack.load.0"), nullptr);
    EXPECT_EQ(eng.metrics().find_gauge("load.rack_imbalance"), nullptr);
  }
}

}  // namespace

// Fault-injection layer: seeded fault plans, the injector's apply/revert
// windows, and the degraded-mode delivery contract (crashed replicas
// leave the routing target set; in-flight packets retry-with-timeout and
// re-route; recovery re-adds the target). Digest stability per seed is
// asserted at DSM-Sort level.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/core.hpp"
#include "core/pipeline.hpp"
#include "fault/fault.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;
namespace fault = lmas::fault;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  return mp;
}

// ---------- resource rate scale / node health primitives ----------

TEST(FaultPrimitives, RateScaleStretchesServiceTime) {
  sim::Engine eng;
  sim::Resource cpu(eng, "cpu");
  cpu.post(1.0);
  EXPECT_DOUBLE_EQ(cpu.free_at(), 1.0);
  cpu.set_rate_scale(0.5);  // half speed: 1s of work takes 2s
  cpu.post(1.0);
  EXPECT_DOUBLE_EQ(cpu.free_at(), 3.0);
  cpu.set_rate_scale(1.0);
  cpu.post(1.0);
  EXPECT_DOUBLE_EQ(cpu.free_at(), 4.0);
}

TEST(FaultPrimitives, DegradedNodeComputesSlower) {
  sim::Engine eng;
  asu::Cluster cluster(eng, machine(1, 1));
  asu::Node& host = cluster.host(0);

  std::vector<double> durations;
  auto probe = [&]() -> sim::Task<> {
    double t0 = eng.now();
    co_await host.compute(0.1);
    durations.push_back(eng.now() - t0);
    host.set_degraded(2.0);
    t0 = eng.now();
    co_await host.compute(0.1);
    durations.push_back(eng.now() - t0);
    host.set_healthy();
    t0 = eng.now();
    co_await host.compute(0.1);
    durations.push_back(eng.now() - t0);
  };
  eng.spawn(probe());
  eng.run();
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_DOUBLE_EQ(durations[0], 0.1);
  EXPECT_DOUBLE_EQ(durations[1], 0.2);  // 2x slowdown
  EXPECT_DOUBLE_EQ(durations[2], 0.1);  // recovery restores full rate
}

TEST(FaultPrimitives, HealthBoardEpochAdvancesOnEveryTransition) {
  sim::Engine eng;
  asu::Cluster cluster(eng, machine(1, 2));
  const auto e0 = cluster.health_board().epoch();
  cluster.asu(0).set_crashed();
  EXPECT_GT(cluster.health_board().epoch(), e0);
  const auto e1 = cluster.health_board().epoch();
  cluster.asu(0).set_healthy();
  EXPECT_GT(cluster.health_board().epoch(), e1);
  EXPECT_TRUE(cluster.asu(0).running());
}

TEST(FaultPrimitives, LinkDelayWindowStretchesTransfers) {
  sim::Engine eng;
  asu::Cluster cluster(eng, machine(1, 1));
  asu::Network& net = cluster.network();

  std::vector<double> durations;
  auto probe = [&]() -> sim::Task<> {
    double t0 = eng.now();
    co_await net.transfer(cluster.host(0), cluster.asu(0), 4096);
    durations.push_back(eng.now() - t0);
    net.set_link_delay(0.01, 0.0, sim::Rng(1));
    t0 = eng.now();
    co_await net.transfer(cluster.host(0), cluster.asu(0), 4096);
    durations.push_back(eng.now() - t0);
    net.clear_link_delay();
    t0 = eng.now();
    co_await net.transfer(cluster.host(0), cluster.asu(0), 4096);
    durations.push_back(eng.now() - t0);
  };
  eng.spawn(probe());
  eng.run();
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_NEAR(durations[1] - durations[0], 0.01, 1e-9);
  EXPECT_NEAR(durations[2], durations[0], 1e-9);  // float absorption only
}

// ---------- plan generation ----------

TEST(FaultPlan, GeneratedPlansRespectLivenessPreconditions) {
  const double horizon = 2.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Rng rng(seed);
    const auto plan = fault::generate_fault_plan(rng, 2, 4, horizon, 6);
    ASSERT_FALSE(plan.empty());
    double prev_at = 0;
    for (const auto& e : plan.events) {
      EXPECT_GE(e.at, prev_at);  // normalized: sorted by window start
      prev_at = e.at;
      EXPECT_LT(e.at, horizon * 0.8);
      EXPECT_GT(e.duration, 0.0);  // every window closes: crashes recover
      EXPECT_LE(e.duration, horizon * 0.4);
      if (e.kind == fault::FaultSpec::Kind::Crash) {
        // Crashes target ASUs only (host pumps hold unsharable state).
        EXPECT_TRUE(e.on_asu);
        EXPECT_LT(e.node, 4u);
      }
      if (e.kind == fault::FaultSpec::Kind::Slowdown) {
        EXPECT_GE(e.factor, 1.5);
      }
    }
  }
}

TEST(FaultPlan, FingerprintDistinguishesPlans) {
  fault::FaultPlan a;
  a.slowdown(true, 0, 0.1, 0.2, 2.0);
  fault::FaultPlan b;
  b.slowdown(true, 1, 0.1, 0.2, 2.0);
  fault::FaultPlan c;
  c.crash(true, 0, 0.1, 0.2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.fingerprint(), fault::FaultPlan(a).fingerprint());
}

// ---------- injector windows ----------

TEST(FaultInjector, AppliesAndRevertsEveryWindow) {
  sim::Engine eng;
  asu::Cluster cluster(eng, machine(1, 2));
  fault::FaultPlan plan;
  plan.slowdown(true, 0, 0.01, 0.02, 4.0)
      .crash(true, 1, 0.02, 0.02)
      .link_delay(0.03, 0.01, 1e-4);

  fault::FaultInjector inj(cluster, plan, sim::Rng(5));
  const std::uint64_t digest_before = eng.digest();
  eng.spawn(inj.run(), "fault-injector");

  std::vector<asu::NodeHealth> seen;
  auto probe = [&]() -> sim::Task<> {
    co_await eng.sleep(0.015);
    seen.push_back(cluster.asu(0).health());  // inside slowdown window
    co_await eng.sleep(0.01);
    seen.push_back(cluster.asu(1).health());  // inside crash window
  };
  eng.spawn(probe());
  eng.run();

  EXPECT_EQ(inj.applied(), 3u);
  EXPECT_EQ(inj.reverted(), 3u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], asu::NodeHealth::Degraded);
  EXPECT_EQ(seen[1], asu::NodeHealth::Crashed);
  // All windows closed: machine back to nominal.
  EXPECT_EQ(cluster.asu(0).health(), asu::NodeHealth::Healthy);
  EXPECT_EQ(cluster.asu(1).health(), asu::NodeHealth::Healthy);
  EXPECT_DOUBLE_EQ(cluster.asu(0).cpu().rate_scale(), 1.0);
  EXPECT_FALSE(cluster.network().link_delay_active());
  // Injected transitions committed to the digest.
  EXPECT_NE(eng.digest(), digest_before);
  EXPECT_EQ(eng.unfinished_tasks(), 0u);
}

TEST(FaultInjector, OverlappingWindowsResolveByDepth) {
  sim::Engine eng;
  asu::Cluster cluster(eng, machine(1, 1));
  fault::FaultPlan plan;
  // Two overlapping slowdowns and a crash inside them: the node must be
  // Crashed while the crash window is open, Degraded by the product of
  // the open slowdowns otherwise, and Healthy only at the very end.
  plan.slowdown(true, 0, 0.00, 0.10, 2.0)
      .slowdown(true, 0, 0.02, 0.04, 3.0)
      .crash(true, 0, 0.03, 0.02);

  fault::FaultInjector inj(cluster, plan, sim::Rng(5));
  eng.spawn(inj.run(), "fault-injector");

  struct Sample {
    double at;
    asu::NodeHealth health;
    double scale;
  };
  std::vector<Sample> samples;
  auto probe = [&]() -> sim::Task<> {
    for (const double t : {0.01, 0.025, 0.04, 0.055, 0.08, 0.15}) {
      if (t > eng.now()) co_await eng.sleep(t - eng.now());
      samples.push_back({t, cluster.asu(0).health(),
                         cluster.asu(0).cpu().rate_scale()});
    }
  };
  eng.spawn(probe());
  eng.run();

  ASSERT_EQ(samples.size(), 6u);
  EXPECT_EQ(samples[0].health, asu::NodeHealth::Degraded);  // x2
  EXPECT_DOUBLE_EQ(samples[0].scale, 0.5);
  EXPECT_EQ(samples[1].health, asu::NodeHealth::Degraded);  // x2*x3
  EXPECT_DOUBLE_EQ(samples[1].scale, 1.0 / 6.0);
  EXPECT_EQ(samples[2].health, asu::NodeHealth::Crashed);
  EXPECT_EQ(samples[3].health, asu::NodeHealth::Degraded);  // crash closed
  EXPECT_DOUBLE_EQ(samples[3].scale, 1.0 / 6.0);
  EXPECT_EQ(samples[4].health, asu::NodeHealth::Degraded);  // x2 only
  EXPECT_DOUBLE_EQ(samples[4].scale, 0.5);
  EXPECT_EQ(samples[5].health, asu::NodeHealth::Healthy);
  EXPECT_DOUBLE_EQ(samples[5].scale, 1.0);
}

// ---------- degraded-mode delivery ----------

sim::Task<> consume(asu::Node& node, sim::Channel<core::Packet>& in,
                    std::vector<std::pair<double, core::Packet>>& got,
                    sim::Engine& eng) {
  while (auto p = co_await in.recv()) {
    while (!node.running()) co_await node.health_wait();
    got.emplace_back(eng.now(), std::move(*p));
  }
}

core::Packet make_packet(std::uint32_t subset, std::uint32_t seq,
                         std::size_t records = 4) {
  core::Packet p;
  p.subset = subset;
  p.seq = seq;
  for (std::size_t r = 0; r < records; ++r) {
    p.records.push_back({std::uint32_t(r), std::uint32_t(r)});
  }
  return p;
}

TEST(DegradedDelivery, InFlightPacketRetriesAndReroutesOnCrash) {
  sim::Engine eng;
  auto mp = machine(1, 2);
  mp.link_latency = 0.02;  // wide in-flight window
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 2, 4);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = inboxes.endpoints(nodes),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .window_per_producer = 4,
                      .name = "retry_stage"});

  std::vector<std::pair<double, core::Packet>> got0, got1;
  eng.spawn(consume(cluster.asu(0), inboxes.inbox(0), got0, eng));
  eng.spawn(consume(cluster.asu(1), inboxes.inbox(1), got1, eng));

  auto producer = [&]() -> sim::Task<> {
    // Pin the first hop at asu0, then crash it mid-flight.
    co_await out.emit_to(0, cluster.host(0), make_packet(0, 0));
    out.producer_done();
  };
  auto crasher = [&]() -> sim::Task<> {
    co_await eng.sleep(0.01);  // packet launched, not yet landed
    cluster.asu(0).set_crashed();
    co_await eng.sleep(0.2);
    cluster.asu(0).set_healthy();
  };
  eng.spawn(producer());
  eng.spawn(crasher());
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  // The packet re-entered the router and landed on the healthy replica
  // well before asu0's recovery at 0.21.
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_TRUE(got0.empty());
  EXPECT_LT(got1[0].first, 0.2);
  const auto* retries = eng.metrics().find_counter("retry_stage.fault_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GE(retries->value(), 1u);
}

TEST(DegradedDelivery, AllReplicasCrashedParksUntilRecovery) {
  sim::Engine eng;
  auto mp = machine(1, 2);
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 2, 4);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = inboxes.endpoints(nodes),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .window_per_producer = 4,
                      .name = "parked_stage"});
  out.set_fault_retry(1e-3, 2);

  std::vector<std::pair<double, core::Packet>> got0, got1;
  eng.spawn(consume(cluster.asu(0), inboxes.inbox(0), got0, eng));
  eng.spawn(consume(cluster.asu(1), inboxes.inbox(1), got1, eng));

  cluster.asu(0).set_crashed();
  cluster.asu(1).set_crashed();
  auto producer = [&]() -> sim::Task<> {
    co_await out.emit(cluster.host(0), make_packet(0, 0));
    out.producer_done();
  };
  auto recoverer = [&]() -> sim::Task<> {
    co_await eng.sleep(0.05);
    cluster.asu(1).set_healthy();
    co_await eng.sleep(0.05);
    cluster.asu(0).set_healthy();
  };
  eng.spawn(producer());
  eng.spawn(recoverer());
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  // Emission waited for the first recovery, then routed to the (only)
  // healthy replica.
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_TRUE(got0.empty());
  EXPECT_GE(got1[0].first, 0.05);
}

TEST(DegradedDelivery, RecoveryReaddsTargetToRoutingSet) {
  sim::Engine eng;
  auto mp = machine(1, 2);
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, 2, 16);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = inboxes.endpoints(nodes),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .window_per_producer = 16,
                      .name = "readd_stage"});

  std::vector<std::pair<double, core::Packet>> got0, got1;
  eng.spawn(consume(cluster.asu(0), inboxes.inbox(0), got0, eng));
  eng.spawn(consume(cluster.asu(1), inboxes.inbox(1), got1, eng));

  auto producer = [&]() -> sim::Task<> {
    for (std::uint32_t i = 0; i < 12; ++i) {
      co_await out.emit(cluster.host(0), make_packet(0, i));
      co_await eng.sleep(0.01);
    }
    out.producer_done();
  };
  auto crasher = [&]() -> sim::Task<> {
    co_await eng.sleep(0.035);
    cluster.asu(0).set_crashed();
    co_await eng.sleep(0.03);
    cluster.asu(0).set_healthy();
  };
  eng.spawn(producer());
  eng.spawn(crasher());
  eng.run();

  EXPECT_EQ(eng.unfinished_tasks(), 0u);
  EXPECT_EQ(got0.size() + got1.size(), 12u);
  EXPECT_FALSE(got0.empty());  // served before the crash AND after recovery
  // asu0 accepted nothing while crashed (the pump-pause convention means
  // anything accepted during the window would carry a later timestamp).
  for (const auto& [t, p] : got0) {
    EXPECT_TRUE(t < 0.035 || t > 0.065) << "accepted at " << t;
  }
  // Packets emitted during the window all went to the healthy replica.
  EXPECT_GE(got1.size(), 3u);
}

// ---------- delivery-contract regressions ----------
// These pin misconfigurations that used to hang or silently drop packets
// (assert-only guards are compiled out in the default NDEBUG build).

TEST(DeliveryContract, ZeroProducersThrowsAtConstruction) {
  // Pre-fix: StageSpec.producers defaulted to 0, window_ became 0, and
  // the first emit_to spun on a zero-slot window forever.
  sim::Engine eng;
  auto mp = machine(1, 2);
  asu::Cluster cluster(eng, mp);
  core::StageInboxes inboxes(eng, 2, 4);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  auto make = [&] {
    return std::make_unique<core::StageOutput>(
        eng, cluster.network(),
        core::StageSpec{.record_bytes = mp.record_bytes,
                        .endpoints = inboxes.endpoints(nodes),
                        .router = std::make_unique<core::RoundRobinRouter>(),
                        .name = "forgot_producers"});  // producers defaulted
  };
  EXPECT_THROW(make(), std::invalid_argument);
}

TEST(DeliveryContract, AllTargetsDownWithoutHealthBoardThrows) {
  // Pre-fix: an assert-only guard; under NDEBUG emit() spun through the
  // health-board wait with nothing to wait on. Now it throws, and the
  // throw surfaces through Engine::run's root-failure check.
  sim::Engine eng;
  auto mp = machine(1, 2);
  asu::Cluster cluster(eng, mp);
  cluster.network().set_health_board(nullptr);  // no recovery signal
  core::StageInboxes inboxes(eng, 2, 4);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = inboxes.endpoints(nodes),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .name = "no_board_stage"});
  cluster.asu(0).set_crashed();
  cluster.asu(1).set_crashed();
  auto producer = [&]() -> sim::Task<> {
    co_await out.emit(cluster.host(0), make_packet(0, 0));
    out.producer_done();
  };
  eng.spawn(producer());
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(DeliveryContract, InboxClosedUnderInFlightPacketThrows) {
  // Pre-fix: deliver() discarded Channel::send's result, so a packet in
  // flight toward an inbox that someone closed directly vanished without
  // a trace — conservation silently broken. Now the failed send throws,
  // and (deliver being a spawned root) Engine::run surfaces it.
  sim::Engine eng;
  auto mp = machine(1, 2);
  mp.link_latency = 0.02;  // wide in-flight window
  asu::Cluster cluster(eng, mp);
  core::StageInboxes inboxes(eng, 2, 4);
  std::vector<asu::Node*> nodes{&cluster.asu(0), &cluster.asu(1)};
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{.record_bytes = mp.record_bytes,
                      .endpoints = inboxes.endpoints(nodes),
                      .router = std::make_unique<core::RoundRobinRouter>(),
                      .producers = 1,
                      .name = "closed_under_stage"});
  std::vector<std::pair<double, core::Packet>> got0, got1;
  eng.spawn(consume(cluster.asu(0), inboxes.inbox(0), got0, eng));
  eng.spawn(consume(cluster.asu(1), inboxes.inbox(1), got1, eng));
  auto producer = [&]() -> sim::Task<> {
    co_await out.emit_to(0, cluster.host(0), make_packet(0, 0));
    out.producer_done();
  };
  auto closer = [&]() -> sim::Task<> {
    co_await eng.sleep(0.01);  // packet launched, not yet landed
    inboxes.inbox(0).close();  // wrong: bypasses close_when_drained
    inboxes.inbox(1).close();
  };
  eng.spawn(producer());
  eng.spawn(closer());
  EXPECT_THROW(eng.run(), std::logic_error);
}

// ---------- DSM-Sort integration: digests & conservation ----------

TEST(FaultDsm, FaultedRunIsDeterministicAndDistinct) {
  auto mp = machine(2, 4);
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 10;
  cfg.log2_alpha_beta = 8;
  cfg.alpha = 16;
  cfg.sort_router = core::RouterKind::SimpleRandomization;
  cfg.seed = 0xfa17;

  const auto base = core::run_dsm_sort(mp, cfg);
  ASSERT_TRUE(base.ok());

  sim::Rng plan_rng(7);
  cfg.faults = fault::generate_fault_plan(plan_rng, mp.num_hosts, mp.num_asus,
                                          base.pass1_seconds, 5);
  const auto faulted1 = core::run_dsm_sort(mp, cfg);
  const auto faulted2 = core::run_dsm_sort(mp, cfg);

  // Conservation survives the plan; the digest moves and then replays.
  EXPECT_TRUE(faulted1.ok());
  EXPECT_EQ(faulted1.records_stored, faulted1.records_in);
  EXPECT_NE(faulted1.digest, base.digest);
  EXPECT_EQ(faulted1.digest, faulted2.digest);
  EXPECT_EQ(faulted1.sim_events, faulted2.sim_events);
  EXPECT_DOUBLE_EQ(faulted1.makespan, faulted2.makespan);
}

TEST(FaultDsm, EmptyPlanLeavesRunBitIdentical) {
  auto mp = machine(1, 2);
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 10;
  cfg.log2_alpha_beta = 8;
  cfg.alpha = 8;
  cfg.seed = 99;

  const auto a = core::run_dsm_sort(mp, cfg);
  core::DsmSortConfig with_empty = cfg;
  with_empty.faults = fault::FaultPlan{};  // explicit empty plan
  const auto b = core::run_dsm_sort(mp, with_empty);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(lmas::sim::fnv1a64(a.metrics.dump()),
            lmas::sim::fnv1a64(b.metrics.dump()));
}

}  // namespace

#include <gtest/gtest.h>

#include <set>

#include "gis/gis.hpp"

namespace gis = lmas::gis;
using lmas::sim::Rng;

namespace {

std::set<std::uint32_t> brute_force(const std::vector<gis::RTree::Item>& items,
                                    const gis::Rect& q) {
  std::set<std::uint32_t> out;
  for (const auto& it : items) {
    if (it.rect.intersects(q)) out.insert(it.id);
  }
  return out;
}

struct FuzzCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t leaf_capacity;
  std::size_t fanout;
};

class RTreeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RTreeFuzz, AlwaysMatchesBruteForce) {
  const auto fc = GetParam();
  Rng rng(fc.seed);

  // A mix of tiny rects, larger rects, degenerate points, and duplicates.
  std::vector<gis::RTree::Item> items;
  for (std::size_t i = 0; i < fc.n; ++i) {
    const float x = float(rng.uniform());
    const float y = float(rng.uniform());
    float w = 0, h = 0;
    switch (rng.below(4)) {
      case 0: break;  // point
      case 1: w = float(rng.uniform()) * 0.001f; h = w; break;
      case 2: w = float(rng.uniform()) * 0.05f;
              h = float(rng.uniform()) * 0.05f; break;
      case 3:  // duplicate of an earlier rect
        if (!items.empty()) {
          auto dup = items[rng.below(items.size())];
          dup.id = std::uint32_t(i);
          items.push_back(dup);
          continue;
        }
        break;
    }
    items.push_back({{x, y, x + w, y + h}, std::uint32_t(i)});
  }

  gis::RTreeParams params;
  params.leaf_capacity = fc.leaf_capacity;
  params.node_fanout = fc.fanout;
  auto tree = gis::RTree::bulk_load(items, params);
  EXPECT_EQ(tree.size(), items.size());

  for (int qi = 0; qi < 25; ++qi) {
    const float e = float(rng.uniform()) * 0.3f;
    const float x = float(rng.uniform()) * (1.0f - e);
    const float y = float(rng.uniform()) * (1.0f - e);
    const gis::Rect q{x, y, x + e, y + e};
    auto got = tree.query(q);
    std::set<std::uint32_t> got_set(got.begin(), got.end());
    ASSERT_EQ(got_set.size(), got.size()) << "duplicate results";
    EXPECT_EQ(got_set, brute_force(items, q))
        << "seed=" << fc.seed << " query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RTreeFuzz,
    ::testing::Values(FuzzCase{1, 100, 4, 2},      // tiny nodes, deep tree
                      FuzzCase{2, 1000, 8, 4},
                      FuzzCase{3, 5000, 64, 16},   // default-ish
                      FuzzCase{4, 333, 7, 3},      // odd capacities
                      FuzzCase{5, 1, 64, 16},      // single item
                      FuzzCase{6, 65, 64, 16},     // just over one leaf
                      FuzzCase{7, 4096, 16, 16}));

TEST(RTreeEdge, AllItemsIdentical) {
  std::vector<gis::RTree::Item> items;
  for (std::uint32_t i = 0; i < 500; ++i) {
    items.push_back({{0.5f, 0.5f, 0.5f, 0.5f}, i});
  }
  auto tree = gis::RTree::bulk_load(items);
  auto hit = tree.query({0.4f, 0.4f, 0.6f, 0.6f});
  EXPECT_EQ(hit.size(), 500u);
  EXPECT_TRUE(tree.query({0.6f, 0.6f, 0.7f, 0.7f}).empty());
}

TEST(RTreeEdge, QueryOutsideBounds) {
  auto tree = gis::RTree::bulk_load(gis::make_random_rects(1000, 9));
  EXPECT_TRUE(tree.query({2.0f, 2.0f, 3.0f, 3.0f}).empty());
  EXPECT_TRUE(tree.query({-1.0f, -1.0f, -0.5f, -0.5f}).empty());
}

TEST(RTreeEdge, WholeSpaceQueryReturnsEverything) {
  const auto items = gis::make_random_rects(2000, 10);
  auto tree = gis::RTree::bulk_load(items);
  auto hit = tree.query({0, 0, 1, 1});
  EXPECT_EQ(hit.size(), 2000u);
}

TEST(WatershedEdge, DegenerateGrids) {
  // 1x1: one cell, one watershed.
  {
    gis::Grid g(1, 1);
    gis::TerraFlowStats st;
    auto colors = gis::watershed_labels(g, &st);
    EXPECT_EQ(st.watersheds, 1u);
    EXPECT_EQ(colors.size(), 1u);
  }
  // 1xN strictly increasing: single watershed draining to cell 0.
  {
    gis::Grid g(1, 16);
    for (std::uint32_t y = 0; y < 16; ++y) g.set(0, y, float(y));
    gis::TerraFlowStats st;
    auto colors = gis::watershed_labels(g, &st);
    EXPECT_EQ(st.watersheds, 1u);
  }
  // Nx1 V-shape: two minima at the ends.
  {
    gis::Grid g(17, 1);
    for (std::uint32_t x = 0; x < 17; ++x) {
      g.set(x, 0, float(std::abs(int(x) - 8)));
    }
    // Minimum is the single center cell (x=8); both slopes drain to it.
    gis::TerraFlowStats st;
    auto colors = gis::watershed_labels(g, &st);
    EXPECT_EQ(st.watersheds, gis::count_local_minima(g));
    EXPECT_EQ(st.watersheds, 1u);
    for (auto c : colors) EXPECT_EQ(c, 0u);
  }
  // 2x2 checkerboard-ish elevations.
  {
    gis::Grid g(2, 2);
    g.set(0, 0, 1.0f);
    g.set(1, 0, 0.0f);
    g.set(0, 1, 0.0f);
    g.set(1, 1, 1.0f);
    gis::TerraFlowStats st;
    auto colors = gis::watershed_labels(g, &st);
    EXPECT_EQ(st.watersheds, gis::count_local_minima(g));
    EXPECT_EQ(colors.size(), 4u);
  }
}

TEST(WatershedEdge, FileBackedScratchWorks) {
  auto g = gis::make_fractal(48, 48, 21);
  gis::TerraFlowOptions opt;
  opt.scratch = lmas::em::temp_file_bte_factory();
  opt.memory_bytes = 32 * 1024;
  gis::TerraFlowStats st;
  auto colors = gis::watershed_labels(g, &st, opt);
  EXPECT_EQ(st.watersheds, gis::count_local_minima(g));
  EXPECT_EQ(colors.size(), g.cells());
}

}  // namespace

// ---------- hybrid replicated layout ----------

namespace {

TEST(HybridLayout, ReplicasAreDistinctAndContiguousBase) {
  auto owners = gis::leaf_replicas(12, 4, gis::RTreeLayout::Hybrid, 2);
  ASSERT_EQ(owners.size(), 12u);
  for (const auto& o : owners) {
    ASSERT_EQ(o.size(), 2u);
    EXPECT_NE(o[0], o[1]);
  }
  // Primary owners follow the partition layout.
  auto single = gis::leaf_placement(12, 4, gis::RTreeLayout::Partition);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(owners[i][0], single[i]);
}

TEST(HybridLayout, SingleOwnerLayoutsHaveOneCandidate) {
  for (auto layout : {gis::RTreeLayout::Partition, gis::RTreeLayout::Stripe}) {
    auto owners = gis::leaf_replicas(10, 4, layout, 3);
    for (const auto& o : owners) EXPECT_EQ(o.size(), 1u);
  }
}

TEST(HybridLayout, ReplicationClampsToAsuCount) {
  auto owners = gis::leaf_replicas(5, 2, gis::RTreeLayout::Hybrid, 8);
  for (const auto& o : owners) EXPECT_EQ(o.size(), 2u);
}

TEST(RTreeSimHybrid, MatchesOracleAndBeatsPartitionUnderHotspot) {
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 8;
  gis::RTreeSimConfig cfg;
  cfg.num_rects = 50000;
  cfg.clients = 16;
  cfg.queries_per_client = 8;
  cfg.query_extent = 0.04f;
  cfg.layout = gis::RTreeLayout::Hybrid;
  cfg.replication = 2;
  const auto hybrid = gis::run_rtree_sim(mp, cfg);
  EXPECT_TRUE(hybrid.results_match_oracle);
  EXPECT_GT(hybrid.total_results, 0u);
  cfg.layout = gis::RTreeLayout::Partition;
  const auto part = gis::run_rtree_sim(mp, cfg);
  // Replica choice lets hot chunks spill to a second ASU: throughput is
  // at least competitive with pure partitioning.
  EXPECT_GE(hybrid.throughput_qps, part.throughput_qps * 0.9);
}

}  // namespace

#include <gtest/gtest.h>

#include <numeric>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus, double c = 8.0) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  mp.c = c;
  return mp;
}

core::DsmSortConfig small_config(std::size_t n = 1 << 16) {
  core::DsmSortConfig cfg;
  cfg.total_records = n;
  cfg.alpha = 16;
  cfg.log2_alpha_beta = 14;  // beta = 1024: several runs even at small n
  cfg.seed = 7;
  return cfg;
}

TEST(DsmSort, Pass1ProducesSortedRunsAndConservesRecords) {
  auto rep = core::run_dsm_sort(machine(1, 4), small_config());
  EXPECT_TRUE(rep.runs_sorted_ok);
  EXPECT_TRUE(rep.subsets_ok);
  EXPECT_TRUE(rep.checksum_ok);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.records_in, std::size_t(1) << 16);
  EXPECT_EQ(rep.records_stored, rep.records_in);
  EXPECT_GT(rep.runs_stored, 0u);
  EXPECT_GT(rep.pass1_seconds, 0.0);
}

TEST(DsmSort, PassiveBaselineAlsoCorrect) {
  auto cfg = small_config();
  cfg.distribute_on_asus = false;
  auto rep = core::run_dsm_sort(machine(1, 4), cfg);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.records_stored, cfg.total_records);
  // Baseline forms full-K runs (except possibly the last); each run is
  // striped across the ASUs, so stored stripe count <= runs * D.
  EXPECT_LE(rep.runs_stored,
            ((cfg.total_records >> cfg.log2_alpha_beta) + 1) * 4);
}

TEST(DsmSort, FullTwoPassSortIsGloballySorted) {
  auto cfg = small_config();
  cfg.run_merge_pass = true;
  auto rep = core::run_dsm_sort(machine(2, 4), cfg);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.final_sorted_ok);
  EXPECT_EQ(rep.records_final, cfg.total_records);
  EXPECT_GT(rep.pass2_seconds, 0.0);
  EXPECT_NEAR(rep.makespan, rep.pass1_seconds + rep.pass2_seconds, 1e-9);
}

struct DsmCase {
  unsigned hosts;
  unsigned asus;
  unsigned alpha;
  core::KeyDist dist;
  bool merge;
};

class DsmSweep : public ::testing::TestWithParam<DsmCase> {};

TEST_P(DsmSweep, EndToEndInvariantsHold) {
  const auto& pc = GetParam();
  auto cfg = small_config(1 << 15);
  cfg.alpha = pc.alpha;
  cfg.key_dist = pc.dist;
  cfg.run_merge_pass = pc.merge;
  auto rep = core::run_dsm_sort(machine(pc.hosts, pc.asus), cfg);
  EXPECT_TRUE(rep.ok()) << "alpha=" << pc.alpha;
  EXPECT_EQ(rep.records_stored, cfg.total_records);
  if (pc.merge) EXPECT_EQ(rep.records_final, cfg.total_records);
  // All sort work happened on hosts.
  const auto sorted_total =
      std::accumulate(rep.records_sorted_per_host.begin(),
                      rep.records_sorted_per_host.end(), std::size_t{0});
  EXPECT_EQ(sorted_total, cfg.total_records);
  // Utilizations are sane.
  for (const auto& u : rep.hosts) {
    EXPECT_GE(u.mean, 0.0);
    EXPECT_LE(u.mean, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DsmSweep,
    ::testing::Values(
        DsmCase{1, 2, 1, core::KeyDist::Uniform, false},
        DsmCase{1, 2, 256, core::KeyDist::Uniform, false},
        DsmCase{1, 8, 16, core::KeyDist::Uniform, true},
        DsmCase{2, 4, 4, core::KeyDist::Exponential, true},
        DsmCase{2, 16, 64, core::KeyDist::HalfUniformHalfExp, false},
        DsmCase{4, 8, 16, core::KeyDist::Uniform, true},
        DsmCase{1, 3, 16, core::KeyDist::Sorted, true},
        DsmCase{2, 5, 16, core::KeyDist::ReverseSorted, true}));

TEST(DsmSort, OddRecordCountsAndTinyInputs) {
  for (std::size_t n : {std::size_t(1), std::size_t(17), std::size_t(4097)}) {
    auto cfg = small_config(n);
    cfg.run_merge_pass = true;
    auto rep = core::run_dsm_sort(machine(1, 3), cfg);
    EXPECT_TRUE(rep.ok()) << "n=" << n;
    EXPECT_EQ(rep.records_stored, n);
    EXPECT_EQ(rep.records_final, n);
  }
}

TEST(DsmSort, DeterministicAcrossRuns) {
  auto cfg = small_config();
  auto r1 = core::run_dsm_sort(machine(1, 4), cfg);
  auto r2 = core::run_dsm_sort(machine(1, 4), cfg);
  EXPECT_DOUBLE_EQ(r1.pass1_seconds, r2.pass1_seconds);
  EXPECT_EQ(r1.runs_stored, r2.runs_stored);
  EXPECT_EQ(r1.records_sorted_per_host, r2.records_sorted_per_host);
}

// ---------- the paper's qualitative performance claims ----------

TEST(DsmSortShape, HighAlphaLosesWithFewAsus) {
  // Figure 9, left edge: with 2 slow ASUs, alpha=256 shifts too much work
  // onto the bottlenecked ASUs and runs slower than the passive baseline.
  auto cfg = small_config(1 << 17);
  cfg.log2_alpha_beta = 18;
  cfg.alpha = 256;
  auto active = core::run_dsm_sort(machine(1, 2), cfg);
  cfg.distribute_on_asus = false;
  auto passive = core::run_dsm_sort(machine(1, 2), cfg);
  EXPECT_TRUE(active.ok());
  EXPECT_TRUE(passive.ok());
  EXPECT_GT(active.pass1_seconds, passive.pass1_seconds);
}

TEST(DsmSortShape, HighAlphaWinsWithManyAsus) {
  // Figure 9, right edge: with 16 ASUs the host saturates; alpha=256
  // offloads comparisons and beats the baseline. N must dwarf K and the
  // ASU staging budget for the pipeline to reach steady state.
  auto cfg = small_config(1 << 22);
  cfg.log2_alpha_beta = 18;
  cfg.alpha = 256;
  auto active = core::run_dsm_sort(machine(1, 16), cfg);
  cfg.distribute_on_asus = false;
  auto passive = core::run_dsm_sort(machine(1, 16), cfg);
  EXPECT_TRUE(active.ok());
  EXPECT_TRUE(passive.ok());
  EXPECT_LT(active.pass1_seconds, passive.pass1_seconds);
  const double speedup = passive.pass1_seconds / active.pass1_seconds;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 2.0);
}

TEST(DsmSortShape, SrRoutingBalancesSkewAcrossHosts) {
  // Figure 10: half-uniform/half-exponential input. Static subset
  // partitioning leaves one host underused; SR keeps both busy and
  // finishes sooner.
  auto cfg = small_config(1 << 17);
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.sort_router = core::RouterKind::Static;
  auto stat = core::run_dsm_sort(machine(2, 8), cfg);
  cfg.sort_router = core::RouterKind::SimpleRandomization;
  auto sr = core::run_dsm_sort(machine(2, 8), cfg);
  ASSERT_TRUE(stat.ok());
  ASSERT_TRUE(sr.ok());

  auto imbalance = [](const core::DsmSortReport& r) {
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    return std::abs(a - b) / (a + b);
  };
  EXPECT_GT(imbalance(stat), 0.15);  // skew hits one host
  EXPECT_LT(imbalance(sr), 0.05);    // SR splits every subset evenly
  EXPECT_LT(sr.pass1_seconds, stat.pass1_seconds);
}

TEST(DsmSortShape, UtilizationSeriesShowsIdleHostUnderStaticSkew) {
  auto cfg = small_config(1 << 17);
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.sort_router = core::RouterKind::Static;
  auto rep = core::run_dsm_sort(machine(2, 8), cfg);
  ASSERT_TRUE(rep.ok());
  // Mean utilizations differ notably between the two hosts.
  EXPECT_GT(std::abs(rep.hosts[0].mean - rep.hosts[1].mean), 0.1);
}

// ---------- predictor / adaptive configuration ----------

TEST(Adaptive, PredictorTracksSimulatedPass1Time) {
  // Needs N >> K and N/D >> the ASU staging budget so pipeline ramps are
  // second-order, as in the paper's experiments.
  auto cfg = small_config(1 << 21);
  cfg.log2_alpha_beta = 18;
  for (unsigned alpha : {1u, 16u, 256u}) {
    cfg.alpha = alpha;
    const auto mp = machine(1, 8);
    const auto pred = core::predict_pass1(mp, cfg);
    const auto rep = core::run_dsm_sort(mp, cfg);
    EXPECT_TRUE(rep.ok());
    EXPECT_NEAR(pred.seconds, rep.pass1_seconds, 0.35 * rep.pass1_seconds)
        << "alpha=" << alpha << " bottleneck=" << pred.bottleneck;
  }
}

TEST(Adaptive, ChoosesSmallAlphaForFewAsusLargeForMany) {
  const unsigned candidates[] = {1, 4, 16, 64, 256};
  auto cfg = small_config(1 << 20);
  cfg.log2_alpha_beta = 18;
  const unsigned few = core::choose_alpha(machine(1, 2), cfg, candidates);
  const unsigned many = core::choose_alpha(machine(1, 64), cfg, candidates);
  EXPECT_LE(few, 4u);
  EXPECT_EQ(many, 256u);
}

TEST(Adaptive, AdaptiveNeverWorseThanFixedChoices) {
  const unsigned candidates[] = {1, 4, 16, 64, 256};
  auto cfg = small_config(1 << 20);
  cfg.log2_alpha_beta = 18;
  for (unsigned d : {2u, 8u, 32u}) {
    const auto mp = machine(1, d);
    const unsigned star = core::choose_alpha(mp, cfg, candidates);
    auto best_cfg = cfg;
    best_cfg.alpha = star;
    const double t_star = core::predict_pass1(mp, best_cfg).seconds;
    for (unsigned a : candidates) {
      auto c = cfg;
      c.alpha = a;
      EXPECT_LE(t_star, core::predict_pass1(mp, c).seconds + 1e-12);
    }
  }
}

TEST(Adaptive, SpeedupPredictionMatchesHandAnalysis) {
  // At D -> infinity the active pass-1 is host-bound at
  // handling + log2(beta) compares vs. baseline handling + log2(K):
  // the asymptotic speedup for alpha=256, K=2^18 is about 1.6-1.7.
  auto cfg = small_config(1 << 20);
  cfg.log2_alpha_beta = 18;
  cfg.alpha = 256;
  const double s = core::predict_speedup(machine(1, 512), cfg);
  EXPECT_GT(s, 1.4);
  EXPECT_LT(s, 1.9);
}

}  // namespace

namespace {

TEST(DsmSort, BitIdenticalReplayAcrossProcessRuns) {
  // Full determinism: every timing, count and utilization bin must be
  // byte-identical between two executions of the same seeded config —
  // the property that makes the figure benches reproducible.
  auto cfg = small_config(1 << 16);
  cfg.run_merge_pass = true;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.sort_router = core::RouterKind::SimpleRandomization;
  const auto a = core::run_dsm_sort(machine(2, 6), cfg);
  const auto b = core::run_dsm_sort(machine(2, 6), cfg);
  EXPECT_EQ(a.pass1_seconds, b.pass1_seconds);
  EXPECT_EQ(a.pass2_seconds, b.pass2_seconds);
  EXPECT_EQ(a.runs_stored, b.runs_stored);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t h = 0; h < a.hosts.size(); ++h) {
    EXPECT_EQ(a.hosts[h].series, b.hosts[h].series);
  }
}

TEST(DsmSort, TelemetryIsDigestNeutralAndFillsReportBlocks) {
  // The telemetry pipeline's core contract: histograms + sampler observe
  // the run without perturbing it — same digest, same timings, same
  // event count as the telemetry-free execution.
  auto cfg = small_config(1 << 16);
  cfg.sort_router = core::RouterKind::SimpleRandomization;
  cfg.load_manager.mode = core::LoadManagerMode::Manage;
  const auto off = core::run_dsm_sort(machine(2, 6), cfg);

  cfg.telemetry.histograms = true;
  cfg.telemetry.sampler = true;
  cfg.telemetry.sample_period = 0;  // derive from the utilization bin
  const auto on = core::run_dsm_sort(machine(2, 6), cfg);

  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.sim_events, off.sim_events);
  EXPECT_EQ(on.pass1_seconds, off.pass1_seconds);
  EXPECT_EQ(on.makespan, off.makespan);

  // Off: the report blocks stay null and absent from the artifact.
  EXPECT_TRUE(off.histograms.is_null());
  EXPECT_TRUE(off.time_series.is_null());
  const auto off_json = core::dsm_report_to_json(off);
  EXPECT_FALSE(off_json.contains("histograms"));
  EXPECT_FALSE(off_json.contains("time_series"));

  // On: per-stage + job-level quantile summaries with sane contents.
  ASSERT_TRUE(on.histograms.is_object());
  for (const char* name :
       {"sort.packet_seconds", "store.packet_seconds", "dsm.job_seconds",
        "to_sort.delivery_seconds", "to_sort.queue_wait_seconds"}) {
    const lmas::obs::Json* h = on.histograms.find(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->at("count").as_int(), 0) << name;
    EXPECT_GE(h->at("p99").as_double(), h->at("p50").as_double()) << name;
    EXPECT_GE(h->at("max").as_double(), h->at("p99").as_double()) << name;
  }
  const lmas::obs::Json* job = on.histograms.find("dsm.job_seconds");
  EXPECT_DOUBLE_EQ(job->at("max").as_double(), on.makespan);

  // On: a host-load series sampled on the derived period.
  ASSERT_TRUE(on.time_series.is_object());
  EXPECT_GT(on.time_series.at("samples").as_int(), 0);
  const lmas::obs::Json& series = on.time_series.at("series");
  ASSERT_NE(series.find("host.load.0"), nullptr);
  EXPECT_EQ(series.at("host.load.0").size(),
            on.time_series.at("times").size());
  const auto on_json = core::dsm_report_to_json(on);
  EXPECT_TRUE(on_json.contains("histograms"));
  EXPECT_TRUE(on_json.contains("time_series"));
}

TEST(DsmSort, SeedChangesDataButNotCorrectness) {
  auto cfg = small_config(1 << 15);
  const auto a = core::run_dsm_sort(machine(1, 4), cfg);
  cfg.seed = 12345;
  const auto b = core::run_dsm_sort(machine(1, 4), cfg);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_NE(a.pass1_seconds, b.pass1_seconds);  // different keys, new timing
}

// Regression: run-storage placement used to be topology-blind — every
// sort host scattered its runs round-robin over ALL ASUs, so on a
// hierarchical spec roughly (racks-1)/racks of the stored bytes crossed
// the oversubscribed spine for no reason. With rack_affinity_store each
// sort host prefers ASUs in its own rack; the spine resources record
// exactly the cross-rack seconds, so the preference is directly
// measurable.
TEST(DsmSort, RackAffinityStoreReducesCrossRackTraffic) {
  const auto mp = machine(2, 8);
  auto topo = asu::TopologySpec::flat(mp);
  topo.racks = 2;  // host0+asu0..3 in rack 0, host1+asu4..7 in rack 1
  topo.spine = asu::TierSpec{.latency = 0.001, .bandwidth = 1e9,
                             .oversubscription = 2.0};

  const auto spine_seconds = [&](bool affinity) {
    auto cfg = small_config();
    cfg.rack_affinity_store = affinity;
    lmas::sim::Engine eng;
    asu::Cluster cluster(eng, topo);
    core::DsmSortJob job(eng, cluster, cfg);
    eng.spawn(job.body(), "rack-affinity-job");
    eng.run();
    EXPECT_TRUE(job.finished());
    EXPECT_TRUE(job.report().ok());
    double s = 0;
    for (unsigned r = 0; r < topo.racks; ++r) {
      s += cluster.network().spine(r).total_service();
    }
    return s;
  };

  const double blind = spine_seconds(false);
  const double affine = spine_seconds(true);
  // Distribute traffic (host -> sorting host) still crosses racks as the
  // splitter dictates, but run storage stays rack-local, so total spine
  // occupancy must drop strictly.
  EXPECT_GT(blind, 0.0);
  EXPECT_LT(affine, blind);
}

TEST(DsmSort, RackAffinityFlagIsFlatNeutral) {
  // On a flat topology the flag must not change a single event: there is
  // no rack structure to prefer, and the pinned goldens (all flat) must
  // stand whatever its value.
  auto cfg = small_config();
  cfg.rack_affinity_store = true;
  const auto on = core::run_dsm_sort(machine(2, 8), cfg);
  cfg.rack_affinity_store = false;
  const auto off = core::run_dsm_sort(machine(2, 8), cfg);
  EXPECT_TRUE(on.ok());
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.pass1_seconds, off.pass1_seconds);
}

}  // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "extmem/btree.hpp"
#include "sim/random.hpp"

namespace em = lmas::em;
using lmas::sim::Rng;

namespace {

TEST(BTree, EmptyTree) {
  em::BTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.find(0).has_value());
  EXPECT_TRUE(t.range(0, 0xffffffffu).empty());
  EXPECT_TRUE(t.validate());
}

TEST(BTree, SingleInsertFind) {
  em::BTree t;
  t.insert(42, 1000);
  EXPECT_EQ(t.find(42).value(), 1000u);
  EXPECT_FALSE(t.find(41).has_value());
  EXPECT_FALSE(t.find(43).has_value());
  EXPECT_TRUE(t.validate());
}

TEST(BTree, OverwriteKeepsSizeAndUpdatesValue) {
  em::BTree t;
  t.insert(7, 1);
  t.insert(7, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(7).value(), 2u);
}

TEST(BTree, SequentialInsertsSplitAndStaySorted) {
  em::BTree t(em::make_memory_bte(), 4);  // tiny fan-out: deep tree
  for (std::uint32_t k = 0; k < 1000; ++k) t.insert(k, k * 10);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GE(t.height(), 4u);
  EXPECT_TRUE(t.validate());
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(t.find(k).value(), k * 10) << k;
  }
}

TEST(BTree, ReverseAndShuffledInserts) {
  for (const char* mode : {"reverse", "shuffled"}) {
    em::BTree t(em::make_memory_bte(), 6);
    std::vector<std::uint32_t> keys(2000);
    for (std::uint32_t i = 0; i < keys.size(); ++i) {
      keys[i] = std::uint32_t(keys.size()) - i;
    }
    if (mode[0] == 's') {
      Rng rng(5);
      for (std::size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.below(i)]);
      }
    }
    for (auto k : keys) t.insert(k, k + 1);
    EXPECT_EQ(t.size(), 2000u);
    EXPECT_TRUE(t.validate()) << mode;
    for (auto k : keys) ASSERT_EQ(t.find(k).value(), k + 1);
  }
}

TEST(BTree, MatchesStdMapOracle) {
  em::BTree t(em::make_memory_bte(), 8);
  std::map<std::uint32_t, std::uint32_t> oracle;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto k = std::uint32_t(rng.below(5000));  // plenty of overwrites
    const auto v = std::uint32_t(rng.next());
    t.insert(k, v);
    oracle[k] = v;
  }
  EXPECT_EQ(t.size(), oracle.size());
  EXPECT_TRUE(t.validate());
  for (const auto& [k, v] : oracle) ASSERT_EQ(t.find(k).value(), v);
  // Probe absent keys too.
  for (int i = 0; i < 1000; ++i) {
    const auto k = std::uint32_t(5000 + rng.below(100000));
    EXPECT_FALSE(t.find(k).has_value());
  }
}

TEST(BTree, RangeQueriesMatchOracle) {
  em::BTree t(em::make_memory_bte(), 8);
  std::map<std::uint32_t, std::uint32_t> oracle;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const auto k = std::uint32_t(rng.below(100000));
    t.insert(k, k ^ 0xabcdu);
    oracle[k] = k ^ 0xabcdu;
  }
  for (int q = 0; q < 100; ++q) {
    auto lo = std::uint32_t(rng.below(100000));
    auto hi = std::uint32_t(rng.below(100000));
    if (lo > hi) std::swap(lo, hi);
    const auto got = t.range(lo, hi);
    auto it = oracle.lower_bound(lo);
    std::size_t idx = 0;
    for (; it != oracle.end() && it->first <= hi; ++it, ++idx) {
      ASSERT_LT(idx, got.size());
      EXPECT_EQ(got[idx].first, it->first);
      EXPECT_EQ(got[idx].second, it->second);
    }
    EXPECT_EQ(idx, got.size());
  }
}

TEST(BTree, RangeBoundaryCases) {
  em::BTree t;
  for (std::uint32_t k = 10; k <= 100; k += 10) t.insert(k, k);
  EXPECT_TRUE(t.range(0, 9).empty());
  EXPECT_TRUE(t.range(101, 0xffffffffu).empty());
  EXPECT_EQ(t.range(10, 10).size(), 1u);     // exact endpoints inclusive
  EXPECT_EQ(t.range(15, 45).size(), 3u);     // 20 30 40
  EXPECT_EQ(t.range(0, 0xffffffffu).size(), 10u);
}

TEST(BTree, BulkLoadMatchesIncremental) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t k = 0; k < 3000; ++k) pairs.emplace_back(k * 3, k);
  auto bulk = em::BTree::bulk_load(pairs, em::make_memory_bte(), 8);
  EXPECT_EQ(bulk.size(), pairs.size());
  EXPECT_TRUE(bulk.validate());
  for (const auto& [k, v] : pairs) ASSERT_EQ(bulk.find(k).value(), v);
  EXPECT_FALSE(bulk.find(1).has_value());
  const auto r = bulk.range(300, 600);
  EXPECT_EQ(r.size(), 101u);

  // Bulk-loaded trees keep accepting inserts.
  auto t = em::BTree::bulk_load(pairs, em::make_memory_bte(), 8);
  t.insert(1, 999);
  EXPECT_EQ(t.find(1).value(), 999u);
  EXPECT_EQ(t.size(), pairs.size() + 1);
  EXPECT_TRUE(t.validate());
}

TEST(BTree, BulkLoadEmptyAndTiny) {
  auto empty = em::BTree::bulk_load({});
  EXPECT_EQ(empty.size(), 0u);
  auto one = em::BTree::bulk_load({{5, 50}});
  EXPECT_EQ(one.find(5).value(), 50u);
  EXPECT_TRUE(one.validate());
}

TEST(BTree, FileBackedPersistsWithinSession) {
  em::BTree t(em::make_temp_file_bte(), 16);
  Rng rng(17);
  std::map<std::uint32_t, std::uint32_t> oracle;
  for (int i = 0; i < 3000; ++i) {
    const auto k = std::uint32_t(rng.next());
    t.insert(k, ~k);
    oracle[k] = ~k;
  }
  EXPECT_TRUE(t.validate());
  for (const auto& [k, v] : oracle) ASSERT_EQ(t.find(k).value(), v);
  EXPECT_GT(t.io_stats().bytes_written, 0u);
}

TEST(BTree, IoScalesLogarithmically) {
  em::BTree t(em::make_memory_bte(), 64);
  for (std::uint32_t k = 0; k < 100000; ++k) t.insert(k, k);
  const auto before = t.io_stats().read_ops;
  (void)t.find(55555);
  const auto probes = t.io_stats().read_ops - before;
  // height ~ log_64(100k) = 3ish node reads per lookup.
  EXPECT_LE(probes, t.height());
}

}  // namespace

/// PacketPool: the record-buffer recycler behind StageOutput. The
/// contract is purely allocational — a recycled buffer must come back
/// empty with its capacity intact, and the pool must never change what a
/// pipeline computes (that part is pinned by the golden digests).

#include <gtest/gtest.h>

#include <utility>

#include "core/packet_pool.hpp"

namespace core = lmas::core;

namespace {

TEST(PacketPool, AcquireGivesEmptyBufferWithCapacity) {
  core::PacketPool pool;
  auto buf = pool.acquire(128);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 128u);
  EXPECT_EQ(pool.acquired(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
}

TEST(PacketPool, ReleaseThenAcquireReusesAllocation) {
  core::PacketPool pool;
  auto buf = pool.acquire(64);
  buf.resize(64);
  const auto* data = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.free_count(), 1u);

  // LIFO reuse: same allocation comes back, cleared.
  auto again = pool.acquire(32);
  EXPECT_EQ(again.data(), data);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 64u);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(PacketPool, AcquireGrowsUndersizedFreeBuffer) {
  core::PacketPool pool;
  auto small = pool.acquire(8);
  pool.release(std::move(small));
  auto big = pool.acquire(1024);
  EXPECT_TRUE(big.empty());
  EXPECT_GE(big.capacity(), 1024u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(PacketPool, DropsZeroCapacityReleases) {
  core::PacketPool pool;
  pool.release(core::PacketPool::Buffer{});  // moved-from / empty vector
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.released(), 1u);
}

TEST(PacketPool, RespectsMaxFreeBound) {
  core::PacketPool pool;
  pool.set_max_free(2);
  for (int i = 0; i < 5; ++i) {
    auto b = pool.acquire(16);
    b.resize(1);
    pool.release(std::move(b));
  }
  // Only 1 in flight at a time, so the free list never exceeds 1 here;
  // fill it properly: acquire several, then release them all.
  core::PacketPool::Buffer bufs[5];
  for (auto& b : bufs) b = pool.acquire(16);
  for (auto& b : bufs) pool.release(std::move(b));
  EXPECT_LE(pool.free_count(), 2u);
}

TEST(PacketPool, ClearDropsFreeList) {
  core::PacketPool pool;
  auto b = pool.acquire(16);
  pool.release(std::move(b));
  ASSERT_EQ(pool.free_count(), 1u);
  pool.clear();
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(PacketPool, CountersTrackTraffic) {
  core::PacketPool pool;
  auto a = pool.acquire(4);
  auto b = pool.acquire(4);
  pool.release(std::move(a));
  pool.release(std::move(b));
  auto c = pool.acquire(4);
  EXPECT_EQ(pool.acquired(), 3u);
  EXPECT_EQ(pool.released(), 2u);
  EXPECT_EQ(pool.reused(), 1u);
  pool.release(std::move(c));
}

}  // namespace

/// The parallel sweep executor: deterministic fan-out of self-contained
/// simulation cells. Two contracts matter. First, map_ordered returns
/// results in submission order no matter which thread ran which cell.
/// Second — the one the benches lean on — running the pinned golden
/// configurations through the executor yields exactly the digests the
/// committed golden file pins, at every jobs count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/golden.hpp"
#include "par/executor.hpp"

namespace par = lmas::par;
namespace check = lmas::check;

namespace {

/// Scoped LMAS_JOBS override; restores the previous value on exit.
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    if (const char* old = std::getenv("LMAS_JOBS")) {
      old_ = old;
      had_ = true;
    }
    if (value) {
      ::setenv("LMAS_JOBS", value, 1);
    } else {
      ::unsetenv("LMAS_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (had_) {
      ::setenv("LMAS_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("LMAS_JOBS");
    }
  }

 private:
  std::string old_;
  bool had_ = false;
};

TEST(ParExecutor, DefaultJobsReadsEnv) {
  {
    ScopedJobsEnv env("3");
    EXPECT_EQ(par::default_jobs(), 3u);
  }
  {
    ScopedJobsEnv env("1");
    EXPECT_EQ(par::default_jobs(), 1u);
  }
  // Invalid values fall back to hardware concurrency (>= 1).
  for (const char* bad : {"0", "-2", "abc", "4x", ""}) {
    ScopedJobsEnv env(bad);
    EXPECT_GE(par::default_jobs(), 1u) << "LMAS_JOBS=" << bad;
  }
  {
    ScopedJobsEnv env(nullptr);
    EXPECT_GE(par::default_jobs(), 1u);
  }
}

TEST(ParExecutor, MapOrderedPreservesSubmissionOrder) {
  // Uneven per-cell work makes out-of-order completion overwhelmingly
  // likely at jobs > 1; the result vector must be index-ordered anyway.
  for (unsigned jobs = 1; jobs <= 8; ++jobs) {
    par::Executor ex(jobs);
    EXPECT_EQ(ex.jobs(), jobs);
    const std::size_t n = 64;
    auto out = par::map_ordered<std::size_t>(ex, n, [](std::size_t i) {
      if (i % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      return i * i;
    });
    ASSERT_EQ(out.size(), n) << "jobs=" << jobs;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], i * i) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParExecutor, RunsEveryIndexExactlyOnce) {
  par::Executor ex(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.for_each_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParExecutor, HandlesEmptyAndTinyBatches) {
  par::Executor ex(8);
  int calls = 0;
  ex.for_each_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Fewer cells than workers: everything still runs once.
  std::atomic<int> ran{0};
  ex.for_each_index(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ParExecutor, ReusableAcrossBatches) {
  par::Executor ex(4);
  for (int round = 0; round < 20; ++round) {
    auto out = par::map_ordered<int>(
        ex, 16, [round](std::size_t i) { return int(i) + round; });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], int(i) + round);
    }
  }
}

TEST(ParExecutor, PropagatesExceptions) {
  for (unsigned jobs : {1u, 4u}) {
    par::Executor ex(jobs);
    EXPECT_THROW(
        ex.for_each_index(32,
                          [](std::size_t i) {
                            if (i == 13) {
                              throw std::runtime_error("cell 13 failed");
                            }
                          }),
        std::runtime_error)
        << "jobs=" << jobs;
    // Executor stays usable after a throwing batch.
    std::atomic<int> ran{0};
    ex.for_each_index(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
  }
}

/// The determinism gate for the whole PR: every pinned golden
/// configuration, run as an executor cell, must reproduce the exact
/// digest / metrics fingerprint the committed golden file pins — and a
/// serial run of the same cells must agree field-for-field. Covers
/// jobs 1..8 (the benches' supported range).
TEST(ParExecutor, GoldenConfigsDigestEqualSerialVsParallel) {
  const auto pinned = check::load_goldens(check::default_golden_path());
  ASSERT_TRUE(pinned.has_value())
      << "missing golden file: " << check::default_golden_path();
  const auto& cases = check::golden_cases();
  ASSERT_EQ(pinned->size(), cases.size());

  // Serial reference, computed once.
  std::vector<check::GoldenResult> serial;
  for (const auto& c : cases) serial.push_back(check::run_golden_case(c));
  EXPECT_TRUE(check::compare_goldens(*pinned, serial).empty());

  for (unsigned jobs : {2u, 8u}) {
    par::Executor ex(jobs);
    auto parallel = par::map_ordered<check::GoldenResult>(
        ex, cases.size(),
        [&](std::size_t i) { return check::run_golden_case(cases[i]); });
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "jobs=" << jobs << " case=" << cases[i].name;
      EXPECT_EQ(parallel[i].digest, (*pinned)[i].digest)
          << "jobs=" << jobs << " case=" << cases[i].name;
    }
    const auto mismatches = check::compare_goldens(*pinned, parallel);
    for (const auto& m : mismatches) {
      ADD_FAILURE() << "jobs=" << jobs << " " << m.name << ": " << m.detail;
    }
  }
}

}  // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <numeric>
#include <vector>

#include "extmem/extmem.hpp"
#include "sim/random.hpp"

namespace em = lmas::em;
using lmas::sim::Rng;

namespace {

em::Stream<em::KeyRecord> make_stream(const std::vector<std::uint32_t>& keys) {
  em::Stream<em::KeyRecord> s(em::make_memory_bte(), 1024);
  std::uint32_t id = 0;
  for (auto k : keys) s.push_back({k, id++});
  s.rewind();
  return s;
}

std::vector<std::uint32_t> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = std::uint32_t(rng.next());
  return keys;
}

// ---------- scan ----------

TEST(Scan, ForEachVisitsAll) {
  auto s = make_stream({3, 1, 4, 1, 5});
  std::size_t sum = 0;
  const std::size_t n = em::for_each(s, [&](const em::KeyRecord& r) {
    sum += r.key;
  });
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(sum, 14u);
}

TEST(Scan, TransformMapsRecords) {
  auto s = make_stream({1, 2, 3});
  em::Stream<em::KeyRecord> out;
  em::transform(s, out, [](const em::KeyRecord& r) {
    return em::KeyRecord{r.key * 10, r.id};
  });
  out.rewind();
  EXPECT_EQ(out.read()->key, 10u);
  EXPECT_EQ(out.read()->key, 20u);
  EXPECT_EQ(out.read()->key, 30u);
}

TEST(Scan, FilterKeepsMatching) {
  auto s = make_stream({1, 2, 3, 4, 5, 6});
  em::Stream<em::KeyRecord> out;
  const std::size_t kept =
      em::filter(s, out, [](const em::KeyRecord& r) { return r.key % 2 == 0; });
  EXPECT_EQ(kept, 3u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Scan, ReduceFolds) {
  auto s = make_stream({1, 2, 3, 4});
  const auto sum = em::reduce(s, std::uint64_t{0},
                              [](std::uint64_t acc, const em::KeyRecord& r) {
                                return acc + r.key;
                              });
  EXPECT_EQ(sum, 10u);
}

TEST(Scan, IsSortedDetects) {
  auto sorted = make_stream({1, 2, 2, 3});
  EXPECT_TRUE(em::is_sorted(sorted));
  auto unsorted = make_stream({1, 3, 2});
  EXPECT_FALSE(em::is_sorted(unsorted));
  auto empty = make_stream({});
  EXPECT_TRUE(em::is_sorted(empty));
}

// ---------- merge ----------

TEST(Merge, TwoWayMerge) {
  auto a = make_stream({1, 3, 5});
  auto b = make_stream({2, 4, 6});
  em::Stream<em::KeyRecord> out;
  const std::size_t n = em::merge_streams<em::KeyRecord>({&a, &b}, out);
  EXPECT_EQ(n, 6u);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
}

TEST(Merge, StableAcrossSourcesOnTies) {
  auto a = make_stream({5});  // id 0
  auto b = make_stream({5});  // id 0 in its own stream
  // Distinguish by id: rebuild with distinct ids.
  em::Stream<em::KeyRecord> s1, s2;
  s1.push_back({5, 100});
  s2.push_back({5, 200});
  s1.rewind();
  s2.rewind();
  em::Stream<em::KeyRecord> out;
  em::merge_streams<em::KeyRecord>({&s1, &s2}, out);
  out.rewind();
  EXPECT_EQ(out.read()->id, 100u);  // lower source index first
  EXPECT_EQ(out.read()->id, 200u);
}

TEST(Merge, HandlesEmptyAndUnevenInputs) {
  auto a = make_stream({});
  auto b = make_stream({1, 2, 3, 4, 5, 6, 7, 8});
  auto c = make_stream({4});
  em::Stream<em::KeyRecord> out;
  const std::size_t n = em::merge_streams<em::KeyRecord>({&a, &b, &c}, out);
  EXPECT_EQ(n, 9u);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
}

class MergeFanIn : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeFanIn, KWayMergeSortedAndComplete) {
  const std::size_t k = GetParam();
  Rng rng(77);
  std::vector<em::Stream<em::KeyRecord>> streams;
  std::size_t total = 0;
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = rng.below(200);
    std::vector<std::uint32_t> keys(len);
    for (auto& key : keys) key = std::uint32_t(rng.below(10000));
    std::sort(keys.begin(), keys.end());
    em::Stream<em::KeyRecord> s;
    for (auto key : keys) s.push_back({key, id++});
    s.rewind();
    total += len;
    streams.push_back(std::move(s));
  }
  std::vector<em::Stream<em::KeyRecord>*> ptrs;
  for (auto& s : streams) ptrs.push_back(&s);
  em::Stream<em::KeyRecord> out;
  const std::size_t n = em::merge_streams<em::KeyRecord>(ptrs, out);
  EXPECT_EQ(n, total);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
  // Permutation: every id appears exactly once.
  out.rewind();
  std::vector<bool> seen(id, false);
  while (auto r = out.read()) {
    EXPECT_FALSE(seen[r->id]);
    seen[r->id] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), std::ptrdiff_t(id));
}

INSTANTIATE_TEST_SUITE_P(FanIns, MergeFanIn,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64));

// ---------- sort ----------

struct SortCase {
  std::size_t n;
  std::size_t memory_records;  // run length
  std::size_t fan_in;
};

class SortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSweep, SortsArbitraryInput) {
  const auto cse = GetParam();
  auto keys = random_keys(cse.n, 1000 + cse.n);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::SortOptions opt;
  opt.memory_bytes = cse.memory_records * sizeof(em::KeyRecord);
  opt.max_fan_in = cse.fan_in;
  em::SortStats st;
  em::sort_stream(in, out, opt, std::less<em::KeyRecord>{}, &st);
  EXPECT_EQ(st.items, cse.n);
  EXPECT_EQ(out.size(), cse.n);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
  // Output keys are a permutation of input keys.
  std::sort(keys.begin(), keys.end());
  out.rewind();
  for (auto k : keys) {
    auto r = out.read();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, k);
  }
  // Expected run count.
  const std::size_t expect_runs =
      (cse.n + cse.memory_records - 1) / cse.memory_records;
  EXPECT_EQ(st.runs_formed, expect_runs);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortSweep,
    ::testing::Values(SortCase{0, 16, 4}, SortCase{1, 16, 4},
                      SortCase{100, 1000, 4},     // single run
                      SortCase{1000, 100, 64},    // one merge pass
                      SortCase{5000, 50, 4},      // multi-pass merge
                      SortCase{4096, 64, 2},      // binary merges, deep
                      SortCase{10000, 128, 8}));

TEST(Sort, AlreadySortedAndReverse) {
  std::vector<std::uint32_t> asc(2000), desc(2000);
  std::iota(asc.begin(), asc.end(), 0u);
  for (std::size_t i = 0; i < desc.size(); ++i) {
    desc[i] = std::uint32_t(desc.size() - i);
  }
  for (auto* keys : {&asc, &desc}) {
    auto in = make_stream(*keys);
    em::Stream<em::KeyRecord> out;
    em::SortOptions opt;
    opt.memory_bytes = 100 * sizeof(em::KeyRecord);
    em::sort_stream(in, out, opt);
    out.rewind();
    EXPECT_TRUE(em::is_sorted(out));
    EXPECT_EQ(out.size(), keys->size());
  }
}

TEST(Sort, AllEqualKeys) {
  std::vector<std::uint32_t> keys(3000, 42);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::SortOptions opt;
  opt.memory_bytes = 64 * sizeof(em::KeyRecord);
  em::sort_stream(in, out, opt);
  EXPECT_EQ(out.size(), 3000u);
  out.rewind();
  while (auto r = out.read()) EXPECT_EQ(r->key, 42u);
}

TEST(Sort, MultiPassMergeCountsPasses) {
  auto keys = random_keys(10000, 3);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::SortOptions opt;
  opt.memory_bytes = 100 * sizeof(em::KeyRecord);  // 100 runs
  opt.max_fan_in = 4;                              // needs several passes
  em::SortStats st;
  em::sort_stream(in, out, opt, std::less<em::KeyRecord>{}, &st);
  EXPECT_EQ(st.runs_formed, 100u);
  EXPECT_GE(st.merge_passes, 3u);  // ceil(log4(100)) + final
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
}

TEST(Sort, WorksWithFileScratch) {
  auto keys = random_keys(5000, 9);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::SortOptions opt;
  opt.memory_bytes = 200 * sizeof(em::KeyRecord);
  opt.scratch = em::temp_file_bte_factory();
  em::sort_stream(in, out, opt);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
  EXPECT_EQ(out.size(), 5000u);
}

// ---------- distribute ----------

TEST(Distribute, PartitionsByClassifier) {
  auto in = make_stream({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto buckets = em::distribute(
      in, 3, [](const em::KeyRecord& r) { return r.key % 3; });
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0]->size(), 4u);  // 0 3 6 9
  EXPECT_EQ(buckets[1]->size(), 3u);  // 1 4 7
  EXPECT_EQ(buckets[2]->size(), 3u);  // 2 5 8
}

TEST(Distribute, ConservesRecords) {
  auto keys = random_keys(5000, 13);
  auto in = make_stream(keys);
  em::RangeClassifier<std::uint32_t> cls(0, std::uint32_t(-1), 16);
  auto buckets = em::distribute(in, 16, cls);
  std::size_t total = 0;
  for (auto& b : buckets) total += b->size();
  EXPECT_EQ(total, 5000u);
}

TEST(Distribute, RangeClassifierOrdersBuckets) {
  auto keys = random_keys(20000, 21);
  auto in = make_stream(keys);
  em::RangeClassifier<std::uint32_t> cls(0, std::uint32_t(-1), 8);
  auto buckets = em::distribute(in, 8, cls);
  // Max key of bucket i <= min key of bucket i+1 (range partition).
  std::uint32_t prev_max = 0;
  for (auto& b : buckets) {
    std::uint32_t lo = std::uint32_t(-1), hi = 0;
    b->rewind();
    while (auto r = b->read()) {
      lo = std::min(lo, r->key);
      hi = std::max(hi, r->key);
    }
    if (b->size() > 0) {
      EXPECT_GE(lo, prev_max);
      prev_max = hi;
    }
  }
}

TEST(Distribute, UniformKeysBalanceAcrossBuckets) {
  auto keys = random_keys(64000, 31);
  auto in = make_stream(keys);
  em::RangeClassifier<std::uint32_t> cls(0, std::uint32_t(-1), 8);
  auto buckets = em::distribute(in, 8, cls);
  for (auto& b : buckets) {
    EXPECT_NEAR(double(b->size()), 8000.0, 800.0);  // within 10%
  }
}

// ---------- external priority queue ----------

TEST(ExternalPq, InMemoryOrdering) {
  em::ExternalPq<em::KeyRecord> pq(1024);
  for (std::uint32_t k : {5u, 1u, 9u, 3u, 7u}) pq.push({k, 0});
  std::vector<std::uint32_t> out;
  while (auto r = pq.pop()) out.push_back(r->key);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(pq.spill_count(), 0u);
}

TEST(ExternalPq, SpillsAndStillSortsGlobally) {
  em::ExternalPq<em::KeyRecord> pq(64);  // force spills
  auto keys = random_keys(10000, 55);
  for (std::uint32_t i = 0; i < keys.size(); ++i) pq.push({keys[i], i});
  EXPECT_GT(pq.spill_count(), 0u);
  std::sort(keys.begin(), keys.end());
  for (auto k : keys) {
    auto r = pq.pop();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, k);
  }
  EXPECT_TRUE(pq.empty());
}

TEST(ExternalPq, InterleavedPushPop) {
  em::ExternalPq<em::KeyRecord> pq(32);
  std::multiset<std::uint32_t> oracle;
  Rng rng(66);
  for (int round = 0; round < 5000; ++round) {
    if (oracle.empty() || rng.below(100) < 60) {
      const auto k = std::uint32_t(rng.below(100000));
      pq.push({k, 0});
      oracle.insert(k);
    } else {
      auto r = pq.pop();
      ASSERT_TRUE(r);
      EXPECT_EQ(r->key, *oracle.begin());
      oracle.erase(oracle.begin());
    }
    EXPECT_EQ(pq.size(), oracle.size());
  }
  while (!oracle.empty()) {
    auto r = pq.pop();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, *oracle.begin());
    oracle.erase(oracle.begin());
  }
  EXPECT_FALSE(pq.pop().has_value());
}

TEST(ExternalPq, PeekMatchesPop) {
  em::ExternalPq<em::KeyRecord> pq(16);
  auto keys = random_keys(500, 77);
  for (std::uint32_t i = 0; i < keys.size(); ++i) pq.push({keys[i], i});
  while (!pq.empty()) {
    auto expect = pq.peek();
    auto got = pq.pop();
    ASSERT_TRUE(expect && got);
    EXPECT_EQ(expect->key, got->key);
  }
}

TEST(ExternalPq, CompactionBoundsRunCount) {
  em::ExternalPq<em::KeyRecord> pq(8);  // spill every 8 pushes
  for (std::uint32_t i = 0; i < 5000; ++i) {
    pq.push({i * 2654435761u, i});  // scrambled keys
  }
  EXPECT_LE(pq.run_count(), 25u);
  // Still sorted.
  std::uint32_t prev = 0;
  bool first = true;
  while (auto r = pq.pop()) {
    if (!first) {
      EXPECT_GE(r->key, prev);
    }
    prev = r->key;
    first = false;
  }
}

}  // namespace

// ---------- distribution sort (Vitter-Hutchinson style, ref [35]) ----------

#include "extmem/distribution_sort.hpp"

namespace {

class DistSortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistSortSweep, SortsAndConserves) {
  const std::size_t n = GetParam();
  auto keys = random_keys(n, 777 + n);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::DistributionSortOptions opt;
  opt.memory_bytes = 128 * sizeof(em::KeyRecord);  // force recursion
  opt.fan_out = 8;
  em::DistributionSortStats st;
  em::distribution_sort(in, out, opt, em::KeyOf{}, &st);
  EXPECT_EQ(out.size(), n);
  EXPECT_EQ(st.items, n);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
  // Permutation of input keys.
  std::sort(keys.begin(), keys.end());
  out.rewind();
  for (auto k : keys) {
    auto r = out.read();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->key, k);
  }
  if (n > 128) EXPECT_GE(st.recursion_depth, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistSortSweep,
                         ::testing::Values(0, 1, 100, 1000, 20000));

TEST(DistributionSort, AllEqualKeysTerminates) {
  std::vector<std::uint32_t> keys(5000, 99);
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::DistributionSortOptions opt;
  opt.memory_bytes = 64 * sizeof(em::KeyRecord);
  em::distribution_sort(in, out, opt);
  EXPECT_EQ(out.size(), 5000u);
  out.rewind();
  while (auto r = out.read()) EXPECT_EQ(r->key, 99u);
}

TEST(DistributionSort, SkewedKeysStillBalanceViaSampling) {
  // Exponentially skewed keys: sampled splitters keep the recursion
  // shallow where equal-width ranges would degenerate.
  Rng rng(31);
  std::vector<std::uint32_t> keys(30000);
  for (auto& k : keys) {
    k = std::uint32_t(std::min(1.0, rng.exponential(8.0)) * 4294967295.0);
  }
  auto in = make_stream(keys);
  em::Stream<em::KeyRecord> out;
  em::DistributionSortOptions opt;
  opt.memory_bytes = 1024 * sizeof(em::KeyRecord);
  opt.fan_out = 16;
  em::DistributionSortStats st;
  em::distribution_sort(in, out, opt, em::KeyOf{}, &st);
  out.rewind();
  EXPECT_TRUE(em::is_sorted(out));
  EXPECT_LE(st.recursion_depth, 3u);
}

TEST(DistributionSort, AgreesWithMergeSort) {
  auto keys = random_keys(10000, 55);
  auto in1 = make_stream(keys);
  auto in2 = make_stream(keys);
  em::Stream<em::KeyRecord> by_dist, by_merge;
  em::DistributionSortOptions dopt;
  dopt.memory_bytes = 256 * sizeof(em::KeyRecord);
  em::distribution_sort(in1, by_dist, dopt);
  em::SortOptions mopt;
  mopt.memory_bytes = 256 * sizeof(em::KeyRecord);
  em::sort_stream(in2, by_merge, mopt);
  ASSERT_EQ(by_dist.size(), by_merge.size());
  by_dist.rewind();
  by_merge.rewind();
  while (auto a = by_dist.read()) {
    auto b = by_merge.read();
    ASSERT_TRUE(b);
    EXPECT_EQ(a->key, b->key);  // same multiset order by key
  }
}

}  // namespace

#include <gtest/gtest.h>

#include <vector>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  return mp;
}

TEST(Predictor, IdentifiesHostBottleneckInBaseRegime) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(machine(1, 16), cfg);
  EXPECT_EQ(p.bottleneck, "host-cpu");
  EXPECT_GT(p.seconds, 0.0);
}

TEST(Predictor, IdentifiesAsuBottleneckWithFewUnits) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 256;
  const auto p = core::predict_pass1(machine(1, 2), cfg);
  EXPECT_EQ(p.bottleneck, "asu-cpu");
}

TEST(Predictor, IdentifiesDiskBottleneckWhenDisksAreSlow) {
  auto mp = machine(1, 4);
  mp.disk_rate = 10e6;  // 10 MB/s bricks: sequential I/O dominates
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(mp, cfg);
  EXPECT_EQ(p.bottleneck, "disk");
}

TEST(Predictor, IdentifiesNetworkBottleneckWhenLinksAreThin) {
  auto mp = machine(1, 4);
  mp.link_bandwidth = 5e6;  // 5 MB/s links
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(mp, cfg);
  EXPECT_EQ(p.bottleneck, "network");
}

TEST(Predictor, MoreHostsShrinkHostTime) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 16;
  const auto one = core::predict_pass1(machine(1, 32), cfg);
  const auto four = core::predict_pass1(machine(4, 32), cfg);
  EXPECT_NEAR(four.host_cpu_seconds, one.host_cpu_seconds / 4, 1e-9);
}

TEST(Predictor, SpeedupMonotoneInAsusForHighAlpha) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 256;
  double prev = 0;
  for (unsigned d : {2u, 4u, 8u, 16u, 32u}) {
    const double s = core::predict_speedup(machine(1, d), cfg);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 1.3);  // plateau for alpha=256
}

TEST(Predictor, PassiveConfigHasNoAsuCpuTerm) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.distribute_on_asus = false;
  const auto p = core::predict_pass1(machine(1, 8), cfg);
  // Only the NIC streaming share remains at the ASUs.
  EXPECT_LT(p.asu_cpu_seconds, p.host_cpu_seconds / 4);
}

TEST(Predictor, ChooseAlphaEmptyCandidatesKeepsBase) {
  core::DsmSortConfig cfg;
  cfg.alpha = 64;
  EXPECT_EQ(core::choose_alpha(machine(1, 8), cfg, {}), 64u);
}

// Regression: the declared-cost evaluation must see TopologySpec
// per-node speed multipliers. Before the topology-aware overloads, a
// heterogeneous spec silently fell back to the homogeneous model, so a
// machine with one slow ASU tier got the same alpha as the uniform one
// — these tests fail against that behavior.

TEST(Predictor, FlatTopologyPredictsIdenticallyToFlatModel) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 16;
  const auto mp = machine(2, 16);
  const auto topo = asu::TopologySpec::flat(mp);
  const auto flat = core::predict_pass1(mp, cfg);
  const auto spec = core::predict_pass1(mp, cfg, topo);
  EXPECT_EQ(spec.seconds, flat.seconds);
  EXPECT_EQ(spec.asu_cpu_seconds, flat.asu_cpu_seconds);
  EXPECT_EQ(spec.bottleneck, flat.bottleneck);
}

TEST(Predictor, SlowAsuTierStretchesAsuTimeByTheFloor) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 64;
  const auto mp = machine(1, 8);
  auto topo = asu::TopologySpec::flat(mp);
  topo.asu_speed.assign(mp.num_asus, 1.0);
  topo.asu_speed[5] = 0.25;  // one ASU at quarter speed
  const auto flat = core::predict_pass1(mp, cfg);
  const auto spec = core::predict_pass1(mp, cfg, topo);
  // The pipeline completes when the slowest node finishes: the ASU CPU
  // component stretches by exactly 1/0.25; NIC/disk/link terms and the
  // host tier do not move.
  const double asu_nic = (double(cfg.total_records) / mp.num_asus) *
                         double(mp.record_bytes) / mp.asu_nic_bandwidth;
  EXPECT_NEAR(spec.asu_cpu_seconds - asu_nic,
              (flat.asu_cpu_seconds - asu_nic) * 4.0, 1e-9);
  EXPECT_EQ(spec.host_cpu_seconds, flat.host_cpu_seconds);
  EXPECT_EQ(spec.disk_seconds, flat.disk_seconds);
  EXPECT_EQ(spec.net_seconds, flat.net_seconds);
}

TEST(Predictor, ChooseAlphaAdaptsToHeterogeneousAsuSpeeds) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  const auto mp = machine(1, 8);
  auto topo = asu::TopologySpec::flat(mp);
  topo.asu_speed.assign(mp.num_asus, 1.0);
  topo.asu_speed[3] = 0.2;  // slowest station is a fifth-speed ASU
  const std::vector<unsigned> cand = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  const unsigned flat_alpha = core::choose_alpha(mp, cfg, cand);
  const unsigned hetero_alpha = core::choose_alpha(mp, cfg, cand, topo);
  // The stretched distribute cost shifts work back toward the host tier:
  // the heterogeneous machine wants a different (smaller) alpha...
  EXPECT_NE(hetero_alpha, flat_alpha);
  EXPECT_LT(hetero_alpha, flat_alpha);
  // ...and under the heterogeneous model that choice strictly beats the
  // topology-blind one (otherwise the overload changed nothing).
  core::DsmSortConfig at_hetero = cfg;
  at_hetero.alpha = hetero_alpha;
  at_hetero.distribute_on_asus = true;
  core::DsmSortConfig at_flat = cfg;
  at_flat.alpha = flat_alpha;
  at_flat.distribute_on_asus = true;
  EXPECT_LT(core::predict_pass1(mp, at_hetero, topo).seconds,
            core::predict_pass1(mp, at_flat, topo).seconds);
  // A flat spec picks exactly the homogeneous answer.
  EXPECT_EQ(core::choose_alpha(mp, cfg, cand, asu::TopologySpec::flat(mp)),
            flat_alpha);
}

}  // namespace

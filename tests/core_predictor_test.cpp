#include <gtest/gtest.h>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

namespace {

asu::MachineParams machine(unsigned hosts, unsigned asus) {
  asu::MachineParams mp;
  mp.num_hosts = hosts;
  mp.num_asus = asus;
  return mp;
}

TEST(Predictor, IdentifiesHostBottleneckInBaseRegime) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(machine(1, 16), cfg);
  EXPECT_EQ(p.bottleneck, "host-cpu");
  EXPECT_GT(p.seconds, 0.0);
}

TEST(Predictor, IdentifiesAsuBottleneckWithFewUnits) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 256;
  const auto p = core::predict_pass1(machine(1, 2), cfg);
  EXPECT_EQ(p.bottleneck, "asu-cpu");
}

TEST(Predictor, IdentifiesDiskBottleneckWhenDisksAreSlow) {
  auto mp = machine(1, 4);
  mp.disk_rate = 10e6;  // 10 MB/s bricks: sequential I/O dominates
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(mp, cfg);
  EXPECT_EQ(p.bottleneck, "disk");
}

TEST(Predictor, IdentifiesNetworkBottleneckWhenLinksAreThin) {
  auto mp = machine(1, 4);
  mp.link_bandwidth = 5e6;  // 5 MB/s links
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 1;
  const auto p = core::predict_pass1(mp, cfg);
  EXPECT_EQ(p.bottleneck, "network");
}

TEST(Predictor, MoreHostsShrinkHostTime) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 16;
  const auto one = core::predict_pass1(machine(1, 32), cfg);
  const auto four = core::predict_pass1(machine(4, 32), cfg);
  EXPECT_NEAR(four.host_cpu_seconds, one.host_cpu_seconds / 4, 1e-9);
}

TEST(Predictor, SpeedupMonotoneInAsusForHighAlpha) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.alpha = 256;
  double prev = 0;
  for (unsigned d : {2u, 4u, 8u, 16u, 32u}) {
    const double s = core::predict_speedup(machine(1, d), cfg);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 1.3);  // plateau for alpha=256
}

TEST(Predictor, PassiveConfigHasNoAsuCpuTerm) {
  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 22;
  cfg.distribute_on_asus = false;
  const auto p = core::predict_pass1(machine(1, 8), cfg);
  // Only the NIC streaming share remains at the ASUs.
  EXPECT_LT(p.asu_cpu_seconds, p.host_cpu_seconds / 4);
}

TEST(Predictor, ChooseAlphaEmptyCandidatesKeepsBase) {
  core::DsmSortConfig cfg;
  cfg.alpha = 64;
  EXPECT_EQ(core::choose_alpha(machine(1, 8), cfg, {}), 64u);
}

}  // namespace

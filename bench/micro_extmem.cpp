/// Microbenchmarks for the external-memory toolkit kernels (google-
/// benchmark): run formation, loser-tree merge across fan-ins, alpha-way
/// distribution, external priority queue, and raw stream scan. These are
/// the primitives whose per-record costs the CostModel declares; the
/// measured host throughputs justify its constants' order of magnitude.

#include <benchmark/benchmark.h>

#include "gbench_tee.hpp"

#include <algorithm>

#include "extmem/extmem.hpp"
#include "sim/random.hpp"

namespace em = lmas::em;
using lmas::sim::Rng;

namespace {

std::vector<em::KeyRecord> random_records(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<em::KeyRecord> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {std::uint32_t(rng.next()), std::uint32_t(i)};
  }
  return v;
}

void BM_StreamScan(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  em::Stream<em::KeyRecord> s;
  for (const auto& r : random_records(n, 1)) s.push_back(r);
  for (auto _ : state) {
    s.rewind();
    std::uint64_t sum = 0;
    while (auto r = s.read()) sum += r->key;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n));
}
BENCHMARK(BM_StreamScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_RunFormation(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto data = random_records(n, 2);
  for (auto _ : state) {
    auto copy = data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n));
}
BENCHMARK(BM_RunFormation)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_LoserTreeMerge(benchmark::State& state) {
  const auto k = std::size_t(state.range(0));
  constexpr std::size_t kPerRun = 4096;
  std::vector<std::vector<em::KeyRecord>> runs(k);
  for (std::size_t i = 0; i < k; ++i) {
    runs[i] = random_records(kPerRun, 100 + i);
    std::sort(runs[i].begin(), runs[i].end());
  }
  for (auto _ : state) {
    std::vector<em::LoserTree<em::KeyRecord>::Source> sources;
    for (auto& run : runs) {
      sources.push_back([&run, pos = std::size_t(0)]() mutable
                        -> std::optional<em::KeyRecord> {
        if (pos >= run.size()) return std::nullopt;
        return run[pos++];
      });
    }
    em::LoserTree<em::KeyRecord> tree(std::move(sources));
    std::uint64_t sum = 0;
    while (auto r = tree.next()) sum += r->key;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(k * kPerRun));
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Distribute(benchmark::State& state) {
  const auto alpha = std::size_t(state.range(0));
  constexpr std::size_t kN = 1 << 18;
  const auto data = random_records(kN, 3);
  em::RangeClassifier<std::uint32_t> cls(0, std::uint32_t(-1), alpha);
  for (auto _ : state) {
    em::Stream<em::KeyRecord> in;
    for (const auto& r : data) in.push_back(r);
    in.rewind();
    auto buckets = em::distribute(in, alpha, cls);
    benchmark::DoNotOptimize(buckets.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kN));
}
BENCHMARK(BM_Distribute)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ExternalPq(benchmark::State& state) {
  const auto hot = std::size_t(state.range(0));
  constexpr std::size_t kN = 1 << 16;
  const auto data = random_records(kN, 4);
  for (auto _ : state) {
    em::ExternalPq<em::KeyRecord> pq(hot);
    for (const auto& r : data) pq.push(r);
    std::uint64_t sum = 0;
    while (auto r = pq.pop()) sum += r->key;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kN));
}
BENCHMARK(BM_ExternalPq)->Arg(1 << 16)->Arg(1 << 12)->Arg(1 << 8);

void BM_ExternalSortFileBacked(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  const auto data = random_records(n, 5);
  for (auto _ : state) {
    em::Stream<em::KeyRecord> in(em::make_temp_file_bte());
    for (const auto& r : data) in.push_back(r);
    em::Stream<em::KeyRecord> out(em::make_temp_file_bte());
    em::SortOptions opt;
    opt.memory_bytes = 64 * 1024;
    opt.scratch = em::temp_file_bte_factory();
    em::sort_stream(in, out, opt);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n));
}
BENCHMARK(BM_ExternalSortFileBacked)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  return lmas::benchio::run_with_artifact(argc, argv, "micro_extmem");
}

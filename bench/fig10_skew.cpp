/// Figure 10 — Effect of skew: host CPU utilization over time for two
/// DSM-Sort runs on two hosts and 16 ASUs, with and without load
/// management. The first half of the input is uniformly distributed, the
/// second half exponential, so static subset partitioning starves one
/// host mid-run; the load-managed run (SR routing of every subset across
/// both hosts) keeps utilizations nearly identical and terminates
/// earlier.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;

  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 23;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.seed = 42;

  std::printf("# Figure 10: host CPU utilization under skew, 2 hosts + 16 "
              "ASUs, n=%zu\n", cfg.total_records);
  std::printf("# input: first half uniform, second half exponential\n");

  bool all_ok = true;
  core::DsmSortReport reports[2];
  const core::RouterKind kinds[2] = {core::RouterKind::Static,
                                     core::RouterKind::SimpleRandomization};
  const char* labels[2] = {"no load control", "load-controlled"};

  for (int run = 0; run < 2; ++run) {
    cfg.sort_router = kinds[run];
    reports[run] = core::run_dsm_sort(mp, cfg);
    all_ok &= reports[run].ok();
  }

  // One row per time bin, paper-style four series.
  std::printf("\n%-8s %16s %16s %18s %18s\n", "time(s)", "static.host1",
              "static.host2", "managed.host1", "managed.host2");
  const std::size_t bins = std::max(reports[0].hosts[0].series.size(),
                                    reports[1].hosts[0].series.size());
  auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  for (std::size_t b = 0; b < bins; ++b) {
    std::printf("%-8.2f %16.3f %16.3f %18.3f %18.3f\n",
                double(b) * mp.util_bin,
                at(reports[0].hosts[0].series, b),
                at(reports[0].hosts[1].series, b),
                at(reports[1].hosts[0].series, b),
                at(reports[1].hosts[1].series, b));
  }

  for (int run = 0; run < 2; ++run) {
    const auto& r = reports[run];
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    std::printf("\n# %-16s makespan %.3fs | host shares %.0f / %.0f "
                "(imbalance %.1f%%) | mean util %.2f / %.2f\n",
                labels[run], r.pass1_seconds, a, b,
                100.0 * std::abs(a - b) / (a + b), r.hosts[0].mean,
                r.hosts[1].mean);
  }
  std::printf("# load-managed run ends %.1f%% earlier\n",
              100.0 * (1.0 - reports[1].pass1_seconds /
                                 reports[0].pass1_seconds));
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Figure 10 — Effect of skew: host CPU utilization over time for two
/// DSM-Sort runs on two hosts and 16 ASUs, with and without load
/// management. The first half of the input is uniformly distributed, the
/// second half exponential, so static subset partitioning starves one
/// host mid-run; the load-managed run (SR routing of every subset across
/// both hosts) keeps utilizations nearly identical and terminates
/// earlier.
///
/// Both runs are declared as a two-cell SweepSpec and evaluated through
/// the parallel executor (LMAS_JOBS threads); results return in
/// submission order, so output is bit-identical to a serial run.
///
/// Alongside the text table, writes BENCH_fig10_skew.json
/// (schema lmas-bench-v1): one result entry per run carrying the full
/// dsm_report_to_json payload (per-pass timings, per-node utilization
/// series, per-host record shares, metrics snapshot). Set LMAS_TRACE=1
/// to also export Chrome trace files for both runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/core.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

struct Cell {
  core::RouterKind router = core::RouterKind::Static;
  const char* key = "";
  const char* label = "";
};

core::DsmSortReport run_cell(const Cell& cell) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;

  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 23;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.seed = 42;
  cfg.sort_router = cell.router;
  if (trace_requested()) {
    cfg.trace_file = std::string("trace_fig10_") + cell.key + ".json";
  }
  return core::run_dsm_sort(mp, cfg);
}

}  // namespace

int main() {
  constexpr std::size_t kRecords = std::size_t(1) << 23;
  constexpr double kUtilBin = 0.05;

  obs::BenchReport report("fig10_skew");
  report.params()["records"] = double(kRecords);
  report.params()["hosts"] = 2;
  report.params()["asus"] = 16;
  report.params()["c"] = 8.0;
  report.params()["alpha"] = 16.0;
  report.params()["util_bin_seconds"] = kUtilBin;
  report.params()["key_dist"] = "half_uniform_half_exp";
  report.results() = obs::Json::array();

  std::printf("# Figure 10: host CPU utilization under skew, 2 hosts + 16 "
              "ASUs, n=%zu\n", kRecords);
  std::printf("# input: first half uniform, second half exponential\n");

  benchio::SweepSpec<Cell, core::DsmSortReport> sweep;
  sweep.report_name = "fig10_skew";
  sweep.run_fn = run_cell;
  sweep.cells = {
      {core::RouterKind::Static, "static", "no load control"},
      {core::RouterKind::SimpleRandomization, "managed", "load-controlled"},
  };

  benchio::SweepStats stats;
  const std::vector<core::DsmSortReport> reports =
      benchio::run_sweep(sweep, &stats);

  bool all_ok = true;
  double total_sim_events = 0;
  for (std::size_t run = 0; run < reports.size(); ++run) {
    all_ok &= reports[run].ok();
    total_sim_events += double(reports[run].sim_events);
    obs::Json entry = core::dsm_report_to_json(reports[run]);
    entry["router"] = sweep.cells[run].key;
    report.results().push_back(std::move(entry));
  }
  // Top-level digest: the load-managed run (each result entry also
  // carries its own digest for per-run comparison across artifacts).
  report.add_digest(reports[1].digest);

  // One row per time bin, paper-style four series.
  std::printf("\n%-8s %16s %16s %18s %18s\n", "time(s)", "static.host1",
              "static.host2", "managed.host1", "managed.host2");
  const std::size_t bins = std::max(reports[0].hosts[0].series.size(),
                                    reports[1].hosts[0].series.size());
  auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  for (std::size_t b = 0; b < bins; ++b) {
    std::printf("%-8.2f %16.3f %16.3f %18.3f %18.3f\n",
                double(b) * kUtilBin,
                at(reports[0].hosts[0].series, b),
                at(reports[0].hosts[1].series, b),
                at(reports[1].hosts[0].series, b),
                at(reports[1].hosts[1].series, b));
  }

  for (std::size_t run = 0; run < reports.size(); ++run) {
    const auto& r = reports[run];
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    std::printf("\n# %-16s makespan %.3fs | host shares %.0f / %.0f "
                "(imbalance %.1f%%) | mean util %.2f / %.2f\n",
                sweep.cells[run].label, r.pass1_seconds, a, b,
                100.0 * std::abs(a - b) / (a + b), r.hosts[0].mean,
                r.hosts[1].mean);
  }
  std::printf("# load-managed run ends %.1f%% earlier\n",
              100.0 * (1.0 - reports[1].pass1_seconds /
                                 reports[0].pass1_seconds));
  benchio::stamp_sweep(report, stats, total_sim_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs\n", stats.cells,
              stats.jobs, stats.wall_clock_s);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// Figure 10 — Effect of skew: host CPU utilization over time for two
/// DSM-Sort runs on two hosts and 16 ASUs, with and without load
/// management. The first half of the input is uniformly distributed, the
/// second half exponential, so static subset partitioning starves one
/// host mid-run; the load-managed run (SR routing of every subset across
/// both hosts) keeps utilizations nearly identical and terminates
/// earlier.
///
/// Alongside the text table, writes BENCH_fig10_skew.json
/// (schema lmas-bench-v1): one result entry per run carrying the full
/// dsm_report_to_json payload (per-pass timings, per-node utilization
/// series, per-host record shares, metrics snapshot). Set LMAS_TRACE=1
/// to also export Chrome trace files for both runs.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/core.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

}  // namespace

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;

  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 23;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.seed = 42;

  obs::BenchReport report("fig10_skew");
  report.params()["records"] = double(cfg.total_records);
  report.params()["hosts"] = 2;
  report.params()["asus"] = 16;
  report.params()["c"] = 8.0;
  report.params()["alpha"] = double(cfg.alpha);
  report.params()["util_bin_seconds"] = mp.util_bin;
  report.params()["key_dist"] = "half_uniform_half_exp";
  report.results() = obs::Json::array();

  std::printf("# Figure 10: host CPU utilization under skew, 2 hosts + 16 "
              "ASUs, n=%zu\n", cfg.total_records);
  std::printf("# input: first half uniform, second half exponential\n");

  bool all_ok = true;
  core::DsmSortReport reports[2];
  const core::RouterKind kinds[2] = {core::RouterKind::Static,
                                     core::RouterKind::SimpleRandomization};
  const char* labels[2] = {"no load control", "load-controlled"};
  const char* keys[2] = {"static", "managed"};

  for (int run = 0; run < 2; ++run) {
    cfg.sort_router = kinds[run];
    if (trace_requested()) {
      cfg.trace_file = std::string("trace_fig10_") + keys[run] + ".json";
    }
    reports[run] = core::run_dsm_sort(mp, cfg);
    all_ok &= reports[run].ok();
    obs::Json entry = core::dsm_report_to_json(reports[run]);
    entry["router"] = keys[run];
    report.results().push_back(std::move(entry));
  }
  // Top-level digest: the load-managed run (each result entry also
  // carries its own digest for per-run comparison across artifacts).
  report.add_digest(reports[1].digest);

  // One row per time bin, paper-style four series.
  std::printf("\n%-8s %16s %16s %18s %18s\n", "time(s)", "static.host1",
              "static.host2", "managed.host1", "managed.host2");
  const std::size_t bins = std::max(reports[0].hosts[0].series.size(),
                                    reports[1].hosts[0].series.size());
  auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  for (std::size_t b = 0; b < bins; ++b) {
    std::printf("%-8.2f %16.3f %16.3f %18.3f %18.3f\n",
                double(b) * mp.util_bin,
                at(reports[0].hosts[0].series, b),
                at(reports[0].hosts[1].series, b),
                at(reports[1].hosts[0].series, b),
                at(reports[1].hosts[1].series, b));
  }

  for (int run = 0; run < 2; ++run) {
    const auto& r = reports[run];
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    std::printf("\n# %-16s makespan %.3fs | host shares %.0f / %.0f "
                "(imbalance %.1f%%) | mean util %.2f / %.2f\n",
                labels[run], r.pass1_seconds, a, b,
                100.0 * std::abs(a - b) / (a + b), r.hosts[0].mean,
                r.hosts[1].mean);
  }
  std::printf("# load-managed run ends %.1f%% earlier\n",
              100.0 * (1.0 - reports[1].pass1_seconds /
                                 reports[0].pass1_seconds));
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

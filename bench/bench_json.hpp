#pragma once

/// Shared plumbing for the figure/ablation benches: every bench binary
/// writes a machine-readable BENCH_<name>.json next to its text output,
/// so the perf trajectory can be recorded run-over-run instead of
/// scraped from stdout.
///
/// The sweep helpers here are the front door to the parallel executor
/// (src/par): a bench declares its grid as a SweepSpec — a flat list of
/// self-contained cells plus a pure run function — and run_sweep()
/// evaluates the cells across LMAS_JOBS worker threads, returning
/// results in submission order. Because each cell owns a private
/// sim::Engine and results are slotted by index, the artifact bytes are
/// identical whether the sweep ran on 1 thread or 64 — only the
/// wall-clock fields stamped by stamp_sweep() differ.
///
/// google-benchmark microbenches use gbench_tee.hpp instead; this header
/// deliberately does not include benchmark.h.

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "par/executor.hpp"

namespace lmas::benchio {

/// Timing facts for one sweep. Everything here is wall-clock derived and
/// therefore machine-dependent: stamp_sweep() writes it into the
/// artifact's dedicated timing fields, never into "results".
struct SweepStats {
  unsigned jobs = 1;              ///< worker threads used
  std::size_t cells = 0;          ///< grid cells evaluated
  double wall_clock_s = 0;        ///< end-to-end sweep wall time
  double cell_seconds_total = 0;  ///< sum of per-cell wall times

  /// Observed speedup over running the same cells back-to-back on one
  /// thread: sum of per-cell times / elapsed wall time. ~jobs when the
  /// grid is wide and cells are balanced; 1.0 when jobs == 1.
  [[nodiscard]] double parallel_speedup() const {
    return wall_clock_s > 0 ? cell_seconds_total / wall_clock_s : 0.0;
  }
};

/// A declarative sweep: the full grid as a flat cell list plus the pure
/// function evaluating one cell. Cells must be self-contained (a cell
/// builds its own machine + config + engine inside run_fn) — run_fn runs
/// concurrently on executor threads and must not touch shared mutable
/// state. report_name names the BENCH_<name>.json artifact the caller
/// assembles from the results.
template <class Cell, class Result>
struct SweepSpec {
  std::string report_name;
  std::vector<Cell> cells;
  std::function<Result(const Cell&)> run_fn;
};

/// Evaluate every cell, jobs-wide, and return results in cell order
/// (results[i] is run_fn(cells[i]) regardless of which thread ran it or
/// when it finished). Fills *stats with the sweep's timing facts when
/// non-null. Throws whatever run_fn threw (first failing cell wins).
template <class Cell, class Result>
std::vector<Result> run_sweep(const SweepSpec<Cell, Result>& spec,
                              SweepStats* stats = nullptr) {
  using clock = std::chrono::steady_clock;
  par::Executor ex;
  std::vector<double> cell_seconds(spec.cells.size(), 0.0);
  const auto t0 = clock::now();
  std::vector<Result> results = par::map_ordered<Result>(
      ex, spec.cells.size(), [&](std::size_t i) {
        const auto c0 = clock::now();
        Result r = spec.run_fn(spec.cells[i]);
        cell_seconds[i] = std::chrono::duration<double>(clock::now() - c0)
                              .count();
        return r;
      });
  if (stats != nullptr) {
    stats->jobs = ex.jobs();
    stats->cells = spec.cells.size();
    stats->wall_clock_s =
        std::chrono::duration<double>(clock::now() - t0).count();
    stats->cell_seconds_total = 0;
    for (double s : cell_seconds) stats->cell_seconds_total += s;
  }
  return results;
}

/// Stamp a sweep's timing facts into the artifact. These are the ONLY
/// machine-dependent fields a figure bench writes: they live at the
/// document root (never inside "results"), so artifacts from serial and
/// parallel runs of the same build differ exactly here and nowhere else.
/// total_sim_events, when > 0, also records engine throughput as
/// events_per_sec = simulated events per second of cell compute time —
/// the hot-path metric the microbenches track.
inline void stamp_sweep(obs::BenchReport& report, const SweepStats& stats,
                        double total_sim_events = 0) {
  report.root()["jobs"] = double(stats.jobs);
  report.set_wall_clock(stats.wall_clock_s);
  report.root()["cell_seconds_total"] = stats.cell_seconds_total;
  report.root()["parallel_speedup"] = stats.parallel_speedup();
  if (total_sim_events > 0 && stats.cell_seconds_total > 0) {
    report.set_events_per_sec(total_sim_events / stats.cell_seconds_total);
  }
}

}  // namespace lmas::benchio

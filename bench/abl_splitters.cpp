/// Ablation H — bucket delimitation vs. routing under skew. Quantile
/// (sampled) splitters balance *stationary* skew at distribution time;
/// SR routing of sets balances *any* skew — including the Figure 10
/// time-varying workload, where splitters chosen for the whole input
/// cannot balance each half.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;

  std::printf("# Ablation H: splitter choice x routing under skew "
              "(2 hosts, 16 ASUs, n=2^22, alpha=16)\n");
  std::printf("%-24s %-10s %-9s %10s %11s\n", "workload", "splitters",
              "routing", "pass1(s)", "imbalance");

  bool all_ok = true;
  for (const auto dist :
       {core::KeyDist::Exponential, core::KeyDist::HalfUniformHalfExp}) {
    for (const auto spl : {core::DsmSortConfig::Splitters::Range,
                           core::DsmSortConfig::Splitters::Sampled}) {
      for (const auto router : {core::RouterKind::Static,
                                core::RouterKind::SimpleRandomization}) {
        core::DsmSortConfig cfg;
        cfg.total_records = std::size_t(1) << 22;
        cfg.alpha = 16;
        cfg.key_dist = dist;
        cfg.splitters = spl;
        cfg.sort_router = router;
        cfg.seed = 42;
        const auto r = core::run_dsm_sort(mp, cfg);
        all_ok &= r.ok();
        const double a = double(r.records_sorted_per_host[0]);
        const double b = double(r.records_sorted_per_host[1]);
        std::printf("%-24s %-10s %-9s %9.3fs %10.1f%%\n",
                    core::key_dist_name(dist),
                    spl == core::DsmSortConfig::Splitters::Range ? "range"
                                                                 : "sampled",
                    core::router_kind_name(router), r.pass1_seconds,
                    100.0 * std::abs(a - b) / (a + b));
      }
    }
  }
  std::printf("# sampled splitters fix stationary exponential skew under "
              "static routing,\n# but only SR also fixes the time-varying "
              "half/half workload\n");
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

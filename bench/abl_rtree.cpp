/// Ablation E — distributed R-tree organization (Figure 5): partition vs
/// stripe across a sweep of concurrent clients. Striping executes every
/// query on all ASUs in parallel (bounded latency); partitioning sends
/// each query to the few ASUs owning its region (concurrent searches
/// spread out, so aggregate throughput is higher).

#include <cstdio>

#include "gis/gis.hpp"

namespace gis = lmas::gis;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;

  std::printf("# Ablation E: distributed R-tree, partition vs stripe vs hybrid "
              "(16 ASUs, 100k rects)\n");
  std::printf("%-9s %-11s %13s %12s %10s %8s\n", "clients", "layout",
              "mean lat(us)", "max lat(us)", "qps", "asus/q");

  bool all_ok = true;
  for (const unsigned clients : {1u, 4u, 16u, 64u}) {
    for (const auto layout :
         {gis::RTreeLayout::Partition, gis::RTreeLayout::Stripe,
          gis::RTreeLayout::Hybrid}) {
      gis::RTreeSimConfig cfg;
      cfg.layout = layout;
      cfg.num_rects = 100000;
      cfg.clients = clients;
      cfg.queries_per_client = 256 / clients;
      cfg.query_extent = clients == 1 ? 0.08f : 0.02f;
      cfg.seed = 42;
      const auto r = gis::run_rtree_sim(mp, cfg);
      all_ok &= r.results_match_oracle;
      std::printf("%-9u %-11s %13.0f %12.0f %10.0f %8.1f\n", clients,
                  gis::rtree_layout_name(layout), r.mean_latency * 1e6,
                  r.max_latency * 1e6, r.throughput_qps,
                  r.mean_asus_per_query);
    }
  }
  std::printf("# validation: %s\n",
              all_ok ? "all distributed results match the centralized tree"
                     : "ORACLE MISMATCH");
  return all_ok ? 0 : 1;
}

/// Ablation J — two-level distributed B+-tree maintenance (Section 4.2):
/// the host layer serves the upper levels online while lower-level
/// maintenance runs at the ASUs either per-operation (online random I/O)
/// or as shipped batch jobs. Batching amortizes the storage-side I/O and
/// leaves more ASU capacity for lookups.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 8;

  std::printf("# Ablation J: distributed B+-tree maintenance, online vs "
              "batched (8 ASUs, 100k initial keys)\n");
  std::printf("%-14s %-9s %10s %14s %10s %8s\n", "insert ratio", "mode",
              "makespan", "lookup lat(us)", "inserts", "batches");

  bool all_ok = true;
  for (const double ratio : {0.2, 0.5, 0.8}) {
    for (const auto mode : {core::MaintenanceMode::Online,
                            core::MaintenanceMode::Batched}) {
      core::DistBTreeConfig cfg;
      cfg.initial_keys = 100000;
      cfg.operations = 8000;
      cfg.insert_ratio = ratio;
      cfg.clients = 4;
      cfg.batch_size = 256;
      cfg.maintenance = mode;
      cfg.seed = 42;
      const auto r = core::run_dist_btree(mp, cfg);
      all_ok &= r.lookups_ok && r.final_state_ok;
      std::printf("%-14.1f %-9s %9.3fs %14.0f %10zu %8zu\n", ratio,
                  mode == core::MaintenanceMode::Online ? "online"
                                                        : "batched",
                  r.makespan, r.mean_lookup_latency * 1e6, r.inserts,
                  r.batches_shipped);
    }
  }
  std::printf("# validation: %s\n",
              all_ok ? "all lookups matched the oracle; final trees "
                       "contain every insert"
                     : "FAILURES");
  return all_ok ? 0 : 1;
}

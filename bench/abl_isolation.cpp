/// Ablation G — shared ASUs / performance isolation (the paper's stated
/// future work, and the motivation for predictable declared costs):
/// competing applications consume a fraction of every ASU's CPU. A fixed
/// high-alpha configuration degrades badly; the adaptive configuration
/// re-chooses alpha from the predictor and sheds work back to the host.

#include <array>
#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  constexpr std::array<unsigned, 5> kAlphas{1, 4, 16, 64, 256};
  constexpr std::size_t kRecords = 1 << 22;

  std::printf("# Ablation G: ASU background load (competing tenants), "
              "H=1, D=16, c=8, n=%zu\n", kRecords);
  std::printf("%-10s %10s %10s %12s %12s %s\n", "bg load", "baseline",
              "a=256", "adaptive", "degradation", "(alpha*)");

  bool all_ok = true;
  for (const double bg : {0.0, 0.25, 0.5, 0.75}) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = 16;
    mp.asu_background_load = bg;

    core::DsmSortConfig cfg;
    cfg.total_records = kRecords;
    cfg.seed = 42;

    cfg.distribute_on_asus = false;
    const auto base = core::run_dsm_sort(mp, cfg);
    cfg.distribute_on_asus = true;
    cfg.alpha = 256;
    const auto fixed = core::run_dsm_sort(mp, cfg);
    const unsigned star = core::choose_alpha(mp, cfg, kAlphas);
    cfg.alpha = star;
    const auto adapt = core::run_dsm_sort(mp, cfg);
    all_ok &= base.ok() && fixed.ok() && adapt.ok();

    std::printf("%-10.2f %9.3fs %9.2fx %11.2fx %11.1f%%  (a=%u)\n", bg,
                base.pass1_seconds,
                base.pass1_seconds / fixed.pass1_seconds,
                base.pass1_seconds / adapt.pass1_seconds,
                100.0 * (fixed.pass1_seconds / adapt.pass1_seconds - 1.0),
                star);
  }
  std::printf("# 'degradation' = how much slower the fixed alpha=256 "
              "configuration is than adaptive\n");
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

#pragma once

/// google-benchmark plumbing for the kernel microbenches: JsonFileReporter
/// tees each run's timings into the BENCH_<name>.json artifact while the
/// console reporter keeps printing as before. Figure/ablation benches do
/// not link google-benchmark — they use the sweep helpers in
/// bench_json.hpp instead.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/report.hpp"

namespace lmas::benchio {

class JsonFileReporter final : public benchmark::BenchmarkReporter {
 public:
  explicit JsonFileReporter(std::string bench_name)
      : report_(std::move(bench_name)) {
    report_.results() = obs::Json::array();
  }

  bool ReportContext(const Context& context) override {
    obs::Json& params = report_.params();
    params["cpus"] = int(context.cpu_info.num_cpus);
    params["cpu_mhz"] = context.cpu_info.cycles_per_second / 1e6;
    return true;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::Json r = obs::Json::object();
      r["name"] = run.benchmark_name();
      r["iterations"] = double(run.iterations);
      r["real_time_ns"] = run.GetAdjustedRealTime();
      r["cpu_time_ns"] = run.GetAdjustedCPUTime();
      for (const auto& [name, counter] : run.counters) {
        r[name] = double(counter.value);
      }
      report_.results().push_back(std::move(r));
    }
  }

  /// Write the artifact; prints the path so runs are self-describing.
  void Finalize() override {
    wrote_ = report_.write();
    if (wrote_) {
      std::fprintf(stderr, "# bench artifact: %s\n",
                   report_.path().c_str());
    } else {
      std::fprintf(stderr, "# FAILED to write %s\n",
                   report_.path().c_str());
    }
  }

  bool wrote() const { return wrote_; }

 private:
  obs::BenchReport report_;
  bool wrote_ = false;
};

/// Display reporter that tees every run into both the stock console
/// reporter and a JsonFileReporter. Used as the *display* reporter so
/// google-benchmark does not demand --benchmark_out for the file side.
class TeeReporter final : public benchmark::BenchmarkReporter {
 public:
  explicit TeeReporter(std::string bench_name)
      : json_(std::move(bench_name)) {}

  bool ReportContext(const Context& context) override {
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    const bool ok = console_.ReportContext(context);
    json_.ReportContext(context);
    return ok;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    json_.ReportRuns(runs);
  }

  void Finalize() override {
    console_.Finalize();
    json_.Finalize();
  }

  bool wrote() const { return json_.wrote(); }

 private:
  benchmark::ConsoleReporter console_;
  JsonFileReporter json_;
};

/// Drop-in replacement for BENCHMARK_MAIN(): console output plus the
/// BENCH_<name>.json artifact.
inline int run_with_artifact(int argc, char** argv,
                             const std::string& bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TeeReporter tee(bench_name);
  benchmark::RunSpecifiedBenchmarks(&tee);
  benchmark::Shutdown();
  return tee.wrote() ? 0 : 1;
}

}  // namespace lmas::benchio

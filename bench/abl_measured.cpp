/// Ablation I — timing methodology: declared cost model vs. the paper's
/// direct-execution measurement (run the real functor code, measure it on
/// the emulation host, scale into emulated host-seconds). The absolute
/// numbers differ — measurement reflects THIS machine's sort/classify
/// throughput — but the qualitative Figure 9 behaviour (high alpha loses
/// with few ASUs, wins past host saturation) must hold either way.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  constexpr std::size_t kRecords = 1 << 21;

  std::printf("# Ablation I: declared vs measured functor timing "
              "(H=1, c=8, n=%zu, alpha=256)\n", kRecords);
  std::printf("%-10s %-4s %12s %12s %10s\n", "timing", "D", "baseline(s)",
              "active(s)", "speedup");

  bool all_ok = true;
  bool shape_ok = true;
  for (const bool measured : {false, true}) {
    double dip = 0, plateau = 0;
    for (const unsigned d : {2u, 16u}) {
      asu::MachineParams mp;
      mp.num_hosts = 1;
      mp.num_asus = d;
      mp.measured_timing = measured;
      mp.measured_scale = 25.0;

      core::DsmSortConfig cfg;
      cfg.total_records = kRecords;
      cfg.alpha = 256;
      cfg.seed = 42;

      cfg.distribute_on_asus = false;
      const auto base = core::run_dsm_sort(mp, cfg);
      cfg.distribute_on_asus = true;
      const auto act = core::run_dsm_sort(mp, cfg);
      all_ok &= base.ok() && act.ok();
      const double speedup = base.pass1_seconds / act.pass1_seconds;
      (d == 2 ? dip : plateau) = speedup;
      std::printf("%-10s %-4u %11.3fs %11.3fs %9.2fx\n",
                  measured ? "measured" : "declared", d, base.pass1_seconds,
                  act.pass1_seconds, speedup);
    }
    shape_ok &= dip < 1.0 && plateau > 1.0 && plateau > dip;
  }
  std::printf("# qualitative Figure 9 shape holds under both "
              "methodologies: %s\n", shape_ok ? "yes" : "NO");
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok && shape_ok ? 0 : 1;
}

/// fig_scale — hierarchical scale-out: simulated load balance at D ∈
/// {64, 256, 1024} ASUs on the sharded engine, beside the analytic
/// mean-field model.
///
/// Each cell is an open queueing system on a hierarchical TopologySpec
/// (racks of ASUs under an oversubscribed spine): H hosts emit Poisson
/// task arrivals, a load-board node routes every task to one of D ASUs
/// with a real core::RoutingPolicy, ASUs serve exp(μ) and report
/// completions back to the board. The board's per-ASU in-system counts
/// are the LoadProbe the dynamic routers read — exactly the paper's
/// load-manager arrangement, with the probe one network latency stale.
/// Four policies per machine size:
///
///   sr    SimpleRandomizationRouter — the paper's randomized cycling
///   rnd   PowerOfDChoicesRouter(d=1) — pure random, the d=1 mean-field
///   pod2  PowerOfDChoicesRouter(d=2) — two choices
///   ll    LeastLoadedRouter — full-information JSQ, the d→D limit
///
/// The analytic column is the supermarket-model stationary tail: the
/// fraction of servers with queue ≥ i is ρ^((d^i − 1)/(d − 1)) — ρ^i at
/// d = 1, doubly exponential for d ≥ 2 (Mitzenmacher's power of two
/// choices). Every cell prints simulated vs. model tails with relative
/// error; `sr` is the interesting deviation — randomized cycling spaces
/// arrivals more evenly than Poisson splitting, so it lands BELOW its
/// d=1 bound.
///
/// Runs on sim::ShardedEngine (lookahead = asu::shard_lookahead(topo),
/// the per-tier latency floor), so LMAS_SHARDS exercises the
/// conservative-window path; digests are shard-count invariant. Cells
/// are a SweepSpec evaluated LMAS_JOBS-wide; the artifact
/// BENCH_fig_scale.json is bit-identical serial vs. parallel. Each
/// result entry carries per-rack balance histograms ("rack.queue.<r>":
/// the distribution of per-ASU mean queue length inside rack r) that
/// lmas_report renders as a per-rack quantile table.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "asu/topology.hpp"
#include "bench_json.hpp"
#include "core/routing.hpp"
#include "obs/latency.hpp"
#include "obs/report.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"

namespace asu = lmas::asu;
namespace core = lmas::core;
namespace obs = lmas::obs;
namespace sim = lmas::sim;
namespace benchio = lmas::benchio;

namespace {

// ---------------------------------------------------------------------------
// Cell grid

enum class Policy { Sr, Rnd, Pod2, Ll };

struct Cell {
  const char* key = "";
  Policy policy = Policy::Sr;
  unsigned asus = 64;
  bool hetero = false;  ///< alternating 0.6/1.4 ASU speeds (Σ speed = D)
};

constexpr double kRho = 0.8;            // offered load per unit capacity
constexpr double kServiceMean = 0.010;  // seconds, exp(μ) with μ = 100/s
constexpr double kHorizon = 3.0;        // simulated seconds per cell
constexpr double kWarmup = 1.2;         // probes start here
constexpr double kProbePeriod = 0.020;  // queue-length sampling interval
constexpr std::size_t kTailMax = 8;     // tail depth i = 1..kTailMax

const char* policy_key(Policy p) {
  switch (p) {
    case Policy::Sr: return "sr";
    case Policy::Rnd: return "rnd";
    case Policy::Pod2: return "pod2";
    case Policy::Ll: return "ll";
  }
  return "?";
}

/// Effective mean-field choice count d; the ll limit is d = D.
unsigned policy_d(Policy p, unsigned asus) {
  switch (p) {
    case Policy::Sr: return 1;
    case Policy::Rnd: return 1;
    case Policy::Pod2: return 2;
    case Policy::Ll: return asus;
  }
  return 1;
}

/// The machine under test: D ASUs fed by H = D/16 hosts, D/32 racks of
/// leaves under a 4x-oversubscribed spine. Latencies are small against
/// the 10ms service mean so the board's load view is nearly fresh.
asu::TopologySpec make_topology(const Cell& cell) {
  asu::MachineParams mp;
  mp.num_hosts = std::max(2u, cell.asus / 16);
  mp.num_asus = cell.asus;
  mp.link_latency = 0.0002;   // rack tier: 200us
  mp.link_bandwidth = 1e9;

  asu::TopologySpec topo = asu::TopologySpec::flat(mp);
  topo.racks = std::max(1u, cell.asus / 32);
  topo.spine =
      asu::TierSpec{.latency = 0.0008, .bandwidth = 1e9, .oversubscription = 4.0};
  if (cell.hetero) {
    topo.asu_speed.resize(cell.asus);
    for (unsigned a = 0; a < cell.asus; ++a) {
      topo.asu_speed[a] = (a % 2 == 0) ? 0.6 : 1.4;
    }
  }
  topo.validate();
  return topo;
}

// ---------------------------------------------------------------------------
// Sharded-engine model
//
// Logical nodes: [0, H) hosts, [H, H+D) ASUs, H+D the load board. All
// handler state is owned by the node it belongs to (hosts draw from
// ctx.rng(), the board's router RNG is board-local), so digests are
// shard-count invariant by the engine's contract.

constexpr std::uint64_t kTagShift = 56;
enum PayloadTag : std::uint64_t {
  kGen = 1,    // host self-tick: emit one arrival, reschedule
  kRoute = 2,  // host -> board: route this task
  kTask = 3,   // board -> ASU: enqueue
  kDone = 4,   // ASU self-tick: service completion
  kReport = 5, // ASU -> board: decrement in-system count
  kProbe = 6,  // ASU self-tick: sample queue length
};

constexpr std::uint64_t word(PayloadTag tag) {
  return std::uint64_t(tag) << kTagShift;
}
constexpr PayloadTag tag_of(std::uint64_t payload) {
  return PayloadTag(payload >> kTagShift);
}

struct AsuState {
  std::uint64_t queue = 0;   // tasks in queue incl. the one in service
  std::uint64_t served = 0;
  double speed = 1.0;        // service-rate multiplier
  std::uint64_t probes = 0;
  double queue_sum = 0;                       // Σ sampled queue lengths
  std::vector<std::uint64_t> queue_tally;     // [min(q, kCap)] counts
  static constexpr std::size_t kCap = 64;
  AsuState() : queue_tally(kCap + 1, 0) {}
};

struct CellResult {
  Cell cell;
  unsigned hosts = 0, racks = 0;
  double lookahead = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::uint64_t routed = 0;
  std::uint64_t served = 0;
  std::uint64_t samples = 0;
  bool counts_ok = true;  // board counts never went negative / leaked
  std::vector<double> sim_tail;    // P(q >= i), i = 0..kTailMax
  std::vector<double> model_tail;  // mean-field prediction, same index
  std::vector<double> asu_mean_queue;      // per ASU
  std::vector<std::uint64_t> asu_served;   // per ASU
  std::vector<unsigned> asu_rack;          // per ASU
};

/// Supermarket-model stationary tail: P(queue >= i) = ρ^((d^i − 1)/(d − 1)).
/// The exponent is built iteratively (e_i = d·e_{i−1} + 1) and capped so
/// the d = D limit underflows cleanly to 0 instead of overflowing.
std::vector<double> mean_field_tail(double rho, unsigned d) {
  std::vector<double> tail(kTailMax + 1, 0.0);
  const double log_rho = std::log(rho);
  double exponent = 0;  // e_0
  for (std::size_t i = 0; i <= kTailMax; ++i) {
    tail[i] = std::exp(exponent * log_rho);
    exponent = std::min(1e9, exponent * double(d) + 1.0);
  }
  return tail;
}

CellResult run_cell(const Cell& cell) {
  const asu::TopologySpec topo = make_topology(cell);
  const unsigned H = topo.machine.num_hosts;
  const unsigned D = topo.machine.num_asus;
  const std::uint32_t board = H + D;

  CellResult res;
  res.cell = cell;
  res.hosts = H;
  res.racks = topo.racks;
  res.lookahead = asu::shard_lookahead(topo);

  // Board-owned routing state: the policy plus per-ASU in-system counts
  // (incremented when a task is routed, decremented when its completion
  // report arrives — the load view is one path latency stale).
  std::vector<std::int64_t> counts(D, 0);
  const core::LoadProbe board_probe =
      [&counts](std::span<const core::RouteTarget>, std::size_t i) {
        return double(counts[i]);
      };
  sim::Rng router_rng(sim::fnv1a64(cell.key) ^ (std::uint64_t(D) << 32));
  std::unique_ptr<core::RoutingPolicy> policy;
  switch (cell.policy) {
    case Policy::Sr:
      policy = std::make_unique<core::SimpleRandomizationRouter>(router_rng);
      break;
    case Policy::Rnd:
      policy = std::make_unique<core::PowerOfDChoicesRouter>(router_rng, 1,
                                                             board_probe);
      break;
    case Policy::Pod2:
      policy = std::make_unique<core::PowerOfDChoicesRouter>(router_rng, 2,
                                                             board_probe);
      break;
    case Policy::Ll:
      policy = std::make_unique<core::LeastLoadedRouter>(board_probe);
      break;
  }
  const std::vector<core::RouteTarget> targets(D);  // synthetic, nodeless
  core::Packet pkt;                                 // subset 0 throughout

  std::vector<AsuState> asus(D);
  double capacity = 0;  // Σ speed · μ
  for (unsigned a = 0; a < D; ++a) {
    asus[a].speed = topo.asu_multiplier(a);
    capacity += asus[a].speed / kServiceMean;
  }
  const double host_rate = kRho * capacity / double(H);
  const double mu = 1.0 / kServiceMean;

  const unsigned board_rack = 0;
  auto host_delay = [&](unsigned h) {
    return topo.path_latency(topo.rack_of_host(h), board_rack);
  };
  auto asu_delay = [&](unsigned a) {
    return topo.path_latency(board_rack, topo.rack_of_asu(a));
  };

  sim::ShardedParams params;
  params.shards = 0;    // LMAS_SHARDS (1 when unset)
  params.workers = 1;   // cells already run LMAS_JOBS-wide via the sweep
  params.lookahead = res.lookahead;
  params.seed = 0x5ca1ab1eu ^ sim::fnv1a64(cell.key);

  sim::ShardedEngine eng(
      board + 1, params,
      [&](sim::ShardContext& ctx, const sim::ShardEvent& ev) {
        switch (tag_of(ev.payload)) {
          case kGen: {
            const unsigned h = unsigned(ctx.node());
            ctx.send(board, host_delay(h), word(kRoute));
            ctx.post(ctx.rng().exponential(host_rate), word(kGen));
            break;
          }
          case kRoute: {
            const std::size_t idx = policy->pick(pkt, targets);
            ++counts[idx];
            ++res.routed;
            ctx.send(H + std::uint32_t(idx), asu_delay(unsigned(idx)),
                     word(kTask));
            break;
          }
          case kTask: {
            AsuState& st = asus[unsigned(ctx.node()) - H];
            if (++st.queue == 1) {
              ctx.post(ctx.rng().exponential(mu * st.speed), word(kDone));
            }
            break;
          }
          case kDone: {
            const unsigned a = unsigned(ctx.node()) - H;
            AsuState& st = asus[a];
            --st.queue;
            ++st.served;
            ctx.send(board, asu_delay(a), word(kReport));
            if (st.queue > 0) {
              ctx.post(ctx.rng().exponential(mu * st.speed), word(kDone));
            }
            break;
          }
          case kReport: {
            const std::int64_t c = --counts[unsigned(ev.src) - H];
            if (c < 0) res.counts_ok = false;
            ++res.served;
            break;
          }
          case kProbe: {
            AsuState& st = asus[unsigned(ctx.node()) - H];
            ++st.probes;
            st.queue_sum += double(st.queue);
            ++st.queue_tally[std::min<std::uint64_t>(st.queue, AsuState::kCap)];
            ctx.post(kProbePeriod, word(kProbe));
            break;
          }
        }
      });

  for (unsigned h = 0; h < H; ++h) {
    eng.inject(h, h, 1e-6 * double(h + 1), word(kGen));
  }
  for (unsigned a = 0; a < D; ++a) {
    eng.inject(H + a, H + a, kWarmup, word(kProbe));
  }
  res.events = eng.run(kHorizon);
  res.digest = eng.digest();

  // In-system tasks at the horizon must reconcile with the board's view.
  std::int64_t outstanding = 0;
  for (std::int64_t c : counts) {
    if (c < 0) res.counts_ok = false;
    outstanding += c;
  }
  if (std::uint64_t(std::max<std::int64_t>(outstanding, 0)) + res.served !=
      res.routed) {
    res.counts_ok = false;
  }

  // Aggregate the sampled queue-length tail across ASUs.
  std::vector<std::uint64_t> tally(AsuState::kCap + 1, 0);
  for (const AsuState& st : asus) {
    res.samples += st.probes;
    for (std::size_t j = 0; j < tally.size(); ++j) {
      tally[j] += st.queue_tally[j];
    }
  }
  res.sim_tail.assign(kTailMax + 1, 0.0);
  std::uint64_t at_least = res.samples;
  for (std::size_t i = 0; i <= kTailMax; ++i) {
    res.sim_tail[i] =
        res.samples ? double(at_least) / double(res.samples) : 0.0;
    if (i < tally.size()) at_least -= tally[i];
  }
  res.model_tail = mean_field_tail(kRho, policy_d(cell.policy, D));

  res.asu_mean_queue.resize(D);
  res.asu_served.resize(D);
  res.asu_rack.resize(D);
  for (unsigned a = 0; a < D; ++a) {
    res.asu_mean_queue[a] =
        asus[a].probes ? asus[a].queue_sum / double(asus[a].probes) : 0.0;
    res.asu_served[a] = asus[a].served;
    res.asu_rack[a] = topo.rack_of_asu(a);
  }
  return res;
}

// ---------------------------------------------------------------------------
// Reporting

/// Relative error of the simulated tail against the model, or -1 where
/// the prediction is below the resolvable floor (e.g. the d = D limit's
/// ρ^(D+1) ≈ 0) or the cell is heterogeneous (the model assumes a
/// homogeneous μ).
double rel_err(const CellResult& r, std::size_t i) {
  constexpr double kFloor = 1e-4;
  if (r.cell.hetero || i >= r.model_tail.size()) return -1.0;
  if (r.model_tail[i] < kFloor) return -1.0;
  return std::abs(r.sim_tail[i] - r.model_tail[i]) / r.model_tail[i];
}

std::string cell_name(const CellResult& r) {
  return std::string(policy_key(r.cell.policy)) + "_d" +
         std::to_string(r.cell.asus) + (r.cell.hetero ? "_hetero" : "");
}

/// Service balance: max/mean served per ASU, speed-normalized so the
/// heterogeneous cell is judged against its capacity shares.
double served_max_over_mean(const CellResult& r) {
  double norm_mean = 0, norm_max = 0;
  for (unsigned a = 0; a < r.cell.asus; ++a) {
    const double speed = r.cell.hetero ? (a % 2 == 0 ? 0.6 : 1.4) : 1.0;
    const double norm = double(r.asu_served[a]) / speed;
    norm_mean += norm;
    norm_max = std::max(norm_max, norm);
  }
  norm_mean /= double(r.cell.asus);
  return norm_mean > 0 ? norm_max / norm_mean : 0.0;
}

obs::Json cell_entry(const CellResult& r) {
  obs::Json entry;
  entry["name"] = cell_name(r);
  entry["router"] = policy_key(r.cell.policy);
  entry["asus"] = double(r.cell.asus);
  entry["hosts"] = double(r.hosts);
  entry["racks"] = double(r.racks);
  entry["hetero"] = r.cell.hetero;
  entry["rho"] = kRho;
  entry["lookahead_s"] = r.lookahead;
  entry["events"] = double(r.events);
  entry["tasks_routed"] = double(r.routed);
  entry["tasks_served"] = double(r.served);
  entry["queue_samples"] = double(r.samples);
  entry["counts_ok"] = r.counts_ok;
  entry["digest"] = obs::digest_to_string(r.digest);

  obs::Json sim_tail = obs::Json::array();
  for (double v : r.sim_tail) sim_tail.push_back(v);
  entry["queue_tail"] = std::move(sim_tail);

  obs::Json mf;
  mf["d"] = double(policy_d(r.cell.policy, r.cell.asus));
  mf["valid"] = !r.cell.hetero;
  obs::Json model = obs::Json::array();
  obs::Json err = obs::Json::array();
  for (std::size_t i = 0; i <= kTailMax; ++i) {
    model.push_back(r.model_tail[i]);
    err.push_back(rel_err(r, i));
  }
  mf["tail"] = std::move(model);
  mf["rel_err"] = std::move(err);
  entry["mean_field"] = std::move(mf);

  // Per-rack balance: the distribution of per-ASU mean queue length
  // inside each rack, plus the machine-wide aggregate. lmas_report
  // groups these keys into the per-rack quantile table.
  obs::Json hists;
  obs::LatencyHistogram agg;
  std::vector<obs::LatencyHistogram> per_rack(r.racks);
  for (unsigned a = 0; a < r.cell.asus; ++a) {
    agg.observe(r.asu_mean_queue[a]);
    per_rack[r.asu_rack[a]].observe(r.asu_mean_queue[a]);
  }
  hists["rack.queue"] = agg.summary_json();
  for (unsigned k = 0; k < r.racks; ++k) {
    hists["rack.queue." + std::to_string(k)] = per_rack[k].summary_json();
  }
  entry["histograms"] = std::move(hists);
  entry["served_max_over_mean"] = served_max_over_mean(r);
  return entry;
}

}  // namespace

int main() {
  std::vector<Cell> cells;
  for (unsigned d : {64u, 256u, 1024u}) {
    for (Policy p : {Policy::Sr, Policy::Rnd, Policy::Pod2, Policy::Ll}) {
      cells.push_back({policy_key(p), p, d, false});
    }
  }
  cells.push_back({"pod2", Policy::Pod2, 256, true});  // heterogeneous leg

  obs::BenchReport report("fig_scale");
  report.params()["rho"] = kRho;
  report.params()["service_mean_s"] = kServiceMean;
  report.params()["horizon_s"] = kHorizon;
  report.params()["warmup_s"] = kWarmup;
  report.params()["probe_period_s"] = kProbePeriod;
  report.params()["asu_grid"] = "64,256,1024";
  report.params()["routers"] = "sr,rnd,pod2,ll";
  report.results() = obs::Json::array();

  std::printf("# fig_scale: queue-tail balance at scale, %zu cells "
              "(D x {sr, rnd, pod2, ll} + hetero)\n", cells.size());
  std::printf("# P(q>=i) simulated vs mean-field rho^((d^i-1)/(d-1)), "
              "rho=%.2f\n", kRho);

  benchio::SweepSpec<Cell, CellResult> sweep;
  sweep.report_name = "fig_scale";
  sweep.cells = cells;
  sweep.run_fn = run_cell;
  benchio::SweepStats stats;
  const std::vector<CellResult> results = benchio::run_sweep(sweep, &stats);

  std::printf("\n%-14s %5s %5s %5s %6s  %-22s %-22s %-22s %9s\n", "cell", "D",
              "H", "racks", "d", "q>=1 sim/model(err)", "q>=2 sim/model(err)",
              "q>=3 sim/model(err)", "max/mean");
  bool all_ok = true;
  double total_events = 0;
  std::uint64_t folded = 0;
  for (const CellResult& r : results) {
    all_ok &= r.counts_ok;
    total_events += double(r.events);
    folded = sim::splitmix64_once(folded ^ r.digest);

    const std::string name = cell_name(r);
    char col[3][32];
    for (std::size_t i = 1; i <= 3; ++i) {
      const double e = rel_err(r, i);
      if (e >= 0) {
        std::snprintf(col[i - 1], sizeof col[i - 1], "%.3f/%.3f(%4.1f%%)",
                      r.sim_tail[i], r.model_tail[i], 100.0 * e);
      } else {
        std::snprintf(col[i - 1], sizeof col[i - 1], "%.3f/%s", r.sim_tail[i],
                      r.cell.hetero ? "n/a" : "~0");
      }
    }
    std::printf("%-14s %5u %5u %5u %6u  %-22s %-22s %-22s %9.3f\n",
                name.c_str(), r.cell.asus, r.hosts, r.racks,
                policy_d(r.cell.policy, r.cell.asus), col[0], col[1], col[2],
                served_max_over_mean(r));
    report.results().push_back(cell_entry(r));
  }
  report.add_digest(folded);

  std::printf("\n# sr sits below its d=1 bound (cycling beats Poisson "
              "splitting); pod2 tracks the doubly-exponential curve;\n"
              "# ll approaches the d=D limit (q>=2 is rare at rho=%.2f).\n",
              kRho);
  benchio::stamp_sweep(report, stats, total_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs, %.0f events\n",
              stats.cells, stats.jobs, stats.wall_clock_s, total_events);
  std::printf("# validation: %s\n",
              all_ok ? "all cells conserve tasks" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

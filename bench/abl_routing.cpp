/// Ablation B — routing policies for replicated sort functors under skew
/// (the Figure 10 workload, all four policies). Static partitioning is
/// the unmanaged baseline; SR is the paper's load-managed policy; round-
/// robin ignores subsets entirely; least-loaded uses the dynamic CPU
/// backlog that declared functor costs make visible to the system.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;

  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 22;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.seed = 42;

  std::printf("# Ablation B: routing policy under skewed input "
              "(2 hosts, 16 ASUs, n=%zu)\n", cfg.total_records);
  std::printf("%-14s %10s %12s %14s %14s\n", "policy", "pass1(s)",
              "imbalance", "host1 util", "host2 util");

  bool all_ok = true;
  for (const auto kind :
       {core::RouterKind::Static, core::RouterKind::RoundRobin,
        core::RouterKind::SimpleRandomization,
        core::RouterKind::LeastLoaded}) {
    cfg.sort_router = kind;
    const auto r = core::run_dsm_sort(mp, cfg);
    all_ok &= r.ok();
    const double a = double(r.records_sorted_per_host[0]);
    const double b = double(r.records_sorted_per_host[1]);
    std::printf("%-14s %9.3fs %11.1f%% %14.2f %14.2f\n",
                core::router_kind_name(kind), r.pass1_seconds,
                100.0 * std::abs(a - b) / (a + b), r.hosts[0].mean,
                r.hosts[1].mean);
  }
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Ablation A — host/ASU speed ratio c. The paper simulates c = 4 and
/// c = 8 (ASU clock at 1/4 or 1/8 of the host). Faster ASUs shift every
/// crossover left and raise the plateau: the same offload pays off with
/// fewer storage units.

#include <array>
#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  constexpr std::size_t kRecords = 1 << 22;
  constexpr std::array<unsigned, 5> kAsus{2, 4, 8, 16, 32};

  std::printf("# Ablation A: speed ratio c in {4, 8}, alpha=256 and "
              "adaptive, H=1, n=%zu\n", kRecords);
  std::printf("%-6s %-4s %10s %8s %10s %s\n", "c", "D", "baseline",
              "a=256", "adaptive", "(alpha*)");

  bool all_ok = true;
  for (const double c : {4.0, 8.0}) {
    for (const auto d : kAsus) {
      asu::MachineParams mp;
      mp.num_hosts = 1;
      mp.num_asus = d;
      mp.c = c;

      core::DsmSortConfig cfg;
      cfg.total_records = kRecords;
      cfg.seed = 42;
      cfg.distribute_on_asus = false;
      const auto base = core::run_dsm_sort(mp, cfg);

      cfg.distribute_on_asus = true;
      cfg.alpha = 256;
      const auto hi = core::run_dsm_sort(mp, cfg);

      constexpr std::array<unsigned, 5> kAlphas{1, 4, 16, 64, 256};
      const unsigned star = core::choose_alpha(mp, cfg, kAlphas);
      cfg.alpha = star;
      const auto ad = core::run_dsm_sort(mp, cfg);

      all_ok &= base.ok() && hi.ok() && ad.ok();
      std::printf("%-6.0f %-4u %9.3fs %8.2f %10.2f  (a=%u)\n", c, d,
                  base.pass1_seconds,
                  base.pass1_seconds / hi.pass1_seconds,
                  base.pass1_seconds / ad.pass1_seconds, star);
    }
  }
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Multi-tenant serving: a throughput–latency sweep of the cluster-level
/// scheduler. Three tenants share one simulated cluster — a DSM-Sort
/// tenant submitting sorts of mixed sizes, an active-scan tenant, and an
/// R-tree bulk-load tenant — on a seeded open-arrival process. Offered
/// load is swept from light to past saturation, once with the cross-job
/// load manager off (the unmanaged column) and once arbitrating every
/// in-flight job (router promotion + migration, journaled per tenant).
///
/// A serial reference run (one DSM job, alone on the cluster) fixes the
/// job-time scale J that calibrates the offered rates, the manager's
/// sampling period, and the mid-run host-0 slowdown window each cell
/// rides through. The 2x3 sweep then goes through the parallel executor:
/// results come back in submission order, so the artifact is
/// bit-identical at any LMAS_JOBS.
///
/// Acceptance gates: every run conserves records per tenant and completes
/// every admitted job; at the saturating load the managed column beats
/// the unmanaged one on p99 job completion AND goodput; the managed
/// high-load cell journals at least one load-manager action; every cell
/// publishes the per-tenant dsm.job_seconds.<name> histogram blocks.
///
/// Writes BENCH_fig_tenancy.json (schema lmas-bench-v1): one entry per
/// cell carrying the full tenancy_report_to_json payload (per-tenant
/// stats, admission waits, decision journal). Set LMAS_TRACE=1 to export
/// a Chrome trace per cell.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"
#include "tenant/tenant.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace fault = lmas::fault;
namespace tenant = lmas::tenant;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

constexpr std::size_t kTotalJobs = 24;

asu::MachineParams machine() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 8;
  mp.c = 4.0;
  return mp;
}

/// The tenant population. alice dominates arrivals with skewed DSM sorts
/// of two sizes (the jobs the manager can actually steer); bob streams
/// active scans, carol bulk-loads R-tree pages — both add disk + wire
/// pressure the admission gate and the manager see as background.
std::vector<tenant::TenantSpec> tenants() {
  std::vector<tenant::TenantSpec> out;
  tenant::TenantSpec alice;
  alice.name = "alice";
  alice.fair_share_weight = 2.0;
  alice.arrival_weight = 2.0;
  alice.mix = {{tenant::JobKind::DsmSort, 1.0, std::size_t(1) << 15},
               {tenant::JobKind::DsmSort, 1.0, std::size_t(1) << 14}};
  tenant::TenantSpec bob;
  bob.name = "bob";
  bob.mix = {{tenant::JobKind::ActiveScan, 1.0, std::size_t(1) << 16}};
  tenant::TenantSpec carol;
  carol.name = "carol";
  carol.mix = {{tenant::JobKind::RTreeBulkLoad, 1.0, std::size_t(1) << 15}};
  out.push_back(std::move(alice));
  out.push_back(std::move(bob));
  out.push_back(std::move(carol));
  return out;
}

tenant::TenancyConfig base_config() {
  tenant::TenancyConfig cfg;
  cfg.tenants = tenants();
  cfg.total_jobs = kTotalJobs;
  cfg.seed = 42;
  cfg.max_in_flight = 4;
  cfg.job_alpha = 8;
  cfg.job_log2_alpha_beta = 10;
  return cfg;
}

/// Control-loop tuning scaled to the single-job time J: sample several
/// times within one job so sustained imbalance is caught while the job
/// that caused it still runs.
core::LoadManagerConfig manager_cfg(double J, bool act) {
  core::LoadManagerConfig cfg;
  cfg.mode = act ? core::LoadManagerMode::Manage : core::LoadManagerMode::Off;
  cfg.period = J / 8.0;
  cfg.promote_hysteresis = 2;
  cfg.demote_hysteresis = 4;
  cfg.cooldown_samples = 2;
  cfg.migrate_hysteresis = 2;
  cfg.dwell_samples = 4;
  return cfg;
}

struct Cell {
  double load = 1.0;  // offered rate multiplier on the saturation scale
  bool managed = false;
  const char* key = "";
};

}  // namespace

int main() {
  obs::BenchReport report("fig_tenancy");
  report.params()["hosts"] = 2;
  report.params()["asus"] = 8;
  report.params()["c"] = 4.0;
  report.params()["tenants"] = 3;
  report.params()["total_jobs"] = double(kTotalJobs);
  report.params()["max_in_flight"] = 4;
  std::printf("# multi-tenant serving: 2 hosts + 8 ASUs, %zu jobs from 3 "
              "tenants (DSM sorts / scans / bulk loads)\n", kTotalJobs);

  // Serial reference: one DSM job alone on the cluster fixes the time
  // scale J. offered_rate = load * kInFlight / J then means "load ~ 1
  // keeps the admission window exactly full of sort-sized jobs".
  tenant::TenancyConfig ref = base_config();
  ref.tenants.resize(1);  // alice only
  ref.total_jobs = 1;
  ref.offered_rate = 1000.0;
  const double J = tenant::run_tenancy(machine(), ref).mean_job_seconds;
  std::printf("# reference single-job time J = %.4fs; manager period J/8 = "
              "%.5fs\n", J, J / 8.0);
  report.params()["reference_job_seconds"] = J;

  benchio::SweepSpec<Cell, tenant::TenancyReport> sweep;
  sweep.report_name = "fig_tenancy";
  sweep.cells = {
      {0.25, false, "low-unmanaged"},    {0.25, true, "low-managed"},
      {1.0, false, "mid-unmanaged"},     {1.0, true, "mid-managed"},
      {4.0, false, "high-unmanaged"},    {4.0, true, "high-managed"},
  };
  sweep.run_fn = [J](const Cell& cell) {
    tenant::TenancyConfig cfg = base_config();
    cfg.offered_rate = cell.load * double(cfg.max_in_flight) / J;
    cfg.pressure_limit = 8.0 * J;  // back off when queues grow deep
    cfg.load_manager = manager_cfg(J, cell.managed);
    // Mid-run host-0 slowdown, scaled to the arrival span: the window
    // both columns ride through, and the one migration steers around.
    const double span = double(kTotalJobs) / cfg.offered_rate;
    cfg.faults.slowdown(/*on_asu=*/false, 0, 0.25 * span, 0.40 * span, 3.0);
    cfg.faults.normalize();
    if (trace_requested()) {
      cfg.trace_file = std::string("trace_fig_tenancy_") + cell.key + ".json";
    }
    return tenant::run_tenancy(machine(), cfg);
  };

  benchio::SweepStats stats;
  const std::vector<tenant::TenancyReport> cells =
      benchio::run_sweep(sweep, &stats);

  report.results() = obs::Json::array();
  bool all_ok = true;
  bool tenant_blocks_ok = true;
  double sweep_sim_events = 0;
  for (std::size_t run = 0; run < cells.size(); ++run) {
    const tenant::TenancyReport& r = cells[run];
    all_ok &= r.ok();
    sweep_sim_events += double(r.sim_events);
    // Every cell must publish the per-tenant completion histograms the
    // report tool groups on (CI greps the artifact for these blocks).
    for (const char* name : {"alice", "bob", "carol"}) {
      tenant_blocks_ok &=
          r.histograms.find((std::string("dsm.job_seconds.") + name)
                                .c_str()) != nullptr;
    }
    obs::Json entry = tenant::tenancy_report_to_json(r);
    entry["cell"] = sweep.cells[run].key;
    entry["load"] = sweep.cells[run].load;
    entry["managed"] = sweep.cells[run].managed;
    report.results().push_back(std::move(entry));
  }
  report.add_digest(cells[5].digest);  // the managed saturating run

  // The throughput–latency curve: goodput against completion quantiles,
  // managed and unmanaged columns side by side.
  std::printf("\n%-16s %5s %8s %9s %9s %9s %6s %5s %5s %5s\n", "cell",
              "load", "goodput", "p50(s)", "p99(s)", "mean(s)", "waits",
              "sw", "mig", "ok");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    const tenant::TenancyReport& r = cells[run];
    std::printf("%-16s %5.2f %8.3f %9.4f %9.4f %9.4f %6zu %5llu %5llu %5s\n",
                sweep.cells[run].key, sweep.cells[run].load,
                r.goodput_jobs_per_sec, r.p50_job_seconds, r.p99_job_seconds,
                r.mean_job_seconds, r.admission_waits,
                static_cast<unsigned long long>(r.lm_router_switches),
                static_cast<unsigned long long>(r.lm_migrations),
                r.ok() ? "ok" : "FAIL");
  }

  // Per-tenant quantile table for the saturating managed cell: who pays
  // the tail, and what the manager did on whose behalf.
  {
    const tenant::TenancyReport& hot = cells[5];
    std::printf("\n# high-managed per-tenant completion quantiles:\n");
    std::printf("%-10s %6s %9s %9s %9s %5s %5s\n", "tenant", "jobs",
                "p50(s)", "p99(s)", "mean(s)", "sw", "mig");
    for (const auto& t : hot.tenants) {
      std::printf("%-10s %6zu %9.4f %9.4f %9.4f %5llu %5llu\n",
                  t.name.c_str(), t.jobs_completed, t.p50_job_seconds,
                  t.p99_job_seconds, t.mean_job_seconds,
                  static_cast<unsigned long long>(t.lm_router_switches),
                  static_cast<unsigned long long>(t.lm_migrations));
    }
    std::printf("\n# high-managed decision journal:\n");
    for (const auto& e : hot.lm_events) {
      std::printf("#   t=%.4f %s\n", e.time, e.what.c_str());
    }
  }

  // Acceptance gates, evaluated where management earns its keep: at the
  // saturating load the managed column must pull the completion tail in
  // AND push at least as many jobs per second through, having actually
  // done something (journaled actions, not a silent no-op win).
  const tenant::TenancyReport& hi_un = cells[4];
  const tenant::TenancyReport& hi_mg = cells[5];
  const bool tail_wins = hi_mg.p99_job_seconds < hi_un.p99_job_seconds;
  const bool goodput_holds =
      hi_mg.goodput_jobs_per_sec >= hi_un.goodput_jobs_per_sec;
  const bool acted =
      hi_mg.lm_router_switches + hi_mg.lm_migrations >= 1;
  std::printf("\n# saturating load: managed p99 %.4fs vs unmanaged %.4fs "
              "(%s), goodput %.3f vs %.3f (%s), %llu action(s)\n",
              hi_mg.p99_job_seconds, hi_un.p99_job_seconds,
              tail_wins ? "wins" : "DOES NOT win",
              hi_mg.goodput_jobs_per_sec, hi_un.goodput_jobs_per_sec,
              goodput_holds ? "holds" : "DROPS",
              static_cast<unsigned long long>(hi_mg.lm_router_switches +
                                              hi_mg.lm_migrations));
  std::printf("# per-tenant histogram blocks: %s\n",
              tenant_blocks_ok ? "present in every cell" : "MISSING");
  all_ok &= tail_wins && goodput_holds && acted && tenant_blocks_ok;

  benchio::stamp_sweep(report, stats, sweep_sim_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs\n", stats.cells,
              stats.jobs, stats.wall_clock_s);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// Figure 9 — Speedup of DSM-Sort pass 1 (run formation) over a passive
/// storage baseline, as ASUs are added to a single host.
///
/// Paper setup: 128-byte records / 4-byte keys, one host, ASUs at 1/8 the
/// host clock (c = 8), input pre-distributed across ASUs, distribute
/// functors on the ASUs. Series: alpha in {1,4,16,64,256} plus the
/// adaptive configuration (predictor-chosen alpha per machine shape).
/// Expected shape: high alpha far below 1.0 at D=2; all curves rise with
/// D; the host saturates around 16 ASUs, after which high alpha wins and
/// adaptive tracks the upper envelope.

#include <array>
#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  constexpr std::size_t kRecords = 1 << 22;
  constexpr std::array<unsigned, 5> kAlphas{1, 4, 16, 64, 256};
  constexpr std::array<unsigned, 6> kAsus{2, 4, 8, 16, 32, 64};

  std::printf("# Figure 9: DSM-Sort pass-1 speedup vs number of ASUs\n");
  std::printf("# n=%zu records (128B, 4B key), H=1, c=8, alpha*beta=2^18\n",
              kRecords);
  std::printf("%-8s %10s", "ASUs", "baseline");
  for (auto a : kAlphas) std::printf(" a=%-6u", a);
  std::printf(" %-8s %s\n", "adaptive", "(alpha*)");

  bool all_ok = true;
  for (const auto d : kAsus) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = d;
    mp.c = 8.0;

    core::DsmSortConfig cfg;
    cfg.total_records = kRecords;
    cfg.log2_alpha_beta = 18;
    cfg.seed = 42;

    cfg.distribute_on_asus = false;
    const auto base = core::run_dsm_sort(mp, cfg);
    all_ok &= base.ok();
    std::printf("%-8u %9.3fs", d, base.pass1_seconds);

    cfg.distribute_on_asus = true;
    for (const auto a : kAlphas) {
      cfg.alpha = a;
      const auto rep = core::run_dsm_sort(mp, cfg);
      all_ok &= rep.ok();
      std::printf(" %7.2f", base.pass1_seconds / rep.pass1_seconds);
    }

    const unsigned star = core::choose_alpha(mp, cfg, kAlphas);
    cfg.alpha = star;
    const auto ad = core::run_dsm_sort(mp, cfg);
    all_ok &= ad.ok();
    std::printf(" %8.2f  (a=%u)\n", base.pass1_seconds / ad.pass1_seconds,
                star);
  }
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Figure 9 — Speedup of DSM-Sort pass 1 (run formation) over a passive
/// storage baseline, as ASUs are added to a single host.
///
/// Paper setup: 128-byte records / 4-byte keys, one host, ASUs at 1/8 the
/// host clock (c = 8), input pre-distributed across ASUs, distribute
/// functors on the ASUs. Series: alpha in {1,4,16,64,256} plus the
/// adaptive configuration (predictor-chosen alpha per machine shape).
/// Expected shape: high alpha far below 1.0 at D=2; all curves rise with
/// D; the host saturates around 16 ASUs, after which high alpha wins and
/// adaptive tracks the upper envelope.
///
/// Alongside the text table, writes BENCH_fig9_speedup.json
/// (schema lmas-bench-v1) with per-run pass timings and, for the largest
/// machine's adaptive run, per-node utilization plus the full metrics
/// snapshot. Set LMAS_TRACE=1 to also export a Chrome trace of that run.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/core.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

}  // namespace

int main() {
  constexpr std::size_t kRecords = 1 << 22;
  constexpr std::array<unsigned, 5> kAlphas{1, 4, 16, 64, 256};
  constexpr std::array<unsigned, 6> kAsus{2, 4, 8, 16, 32, 64};

  obs::BenchReport report("fig9_speedup");
  report.params()["records"] = double(kRecords);
  report.params()["hosts"] = 1;
  report.params()["c"] = 8.0;
  report.params()["log2_alpha_beta"] = 18;
  report.params()["alphas"] = obs::Json::array_of(
      std::vector<double>(kAlphas.begin(), kAlphas.end()));
  report.params()["asus"] = obs::Json::array_of(
      std::vector<double>(kAsus.begin(), kAsus.end()));
  report.results() = obs::Json::array();

  std::printf("# Figure 9: DSM-Sort pass-1 speedup vs number of ASUs\n");
  std::printf("# n=%zu records (128B, 4B key), H=1, c=8, alpha*beta=2^18\n",
              kRecords);
  std::printf("%-8s %10s", "ASUs", "baseline");
  for (auto a : kAlphas) std::printf(" a=%-6u", a);
  std::printf(" %-8s %s\n", "adaptive", "(alpha*)");

  bool all_ok = true;
  for (const auto d : kAsus) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = d;
    mp.c = 8.0;

    core::DsmSortConfig cfg;
    cfg.total_records = kRecords;
    cfg.log2_alpha_beta = 18;
    cfg.seed = 42;

    obs::Json row = obs::Json::object();
    row["asus"] = double(d);

    cfg.distribute_on_asus = false;
    const auto base = core::run_dsm_sort(mp, cfg);
    all_ok &= base.ok();
    row["baseline_pass1_seconds"] = base.pass1_seconds;
    std::printf("%-8u %9.3fs", d, base.pass1_seconds);

    cfg.distribute_on_asus = true;
    obs::Json& by_alpha = row["by_alpha"];
    by_alpha = obs::Json::object();
    for (const auto a : kAlphas) {
      cfg.alpha = a;
      const auto rep = core::run_dsm_sort(mp, cfg);
      all_ok &= rep.ok();
      obs::Json cell = obs::Json::object();
      cell["pass1_seconds"] = rep.pass1_seconds;
      cell["speedup"] = base.pass1_seconds / rep.pass1_seconds;
      by_alpha[std::to_string(a)] = std::move(cell);
      std::printf(" %7.2f", base.pass1_seconds / rep.pass1_seconds);
    }

    const unsigned star = core::choose_alpha(mp, cfg, kAlphas);
    cfg.alpha = star;
    // Trace / detailed instrumentation for the biggest machine's
    // adaptive run only: one representative run keeps the artifact small.
    const bool detailed = d == kAsus.back();
    if (detailed && trace_requested()) {
      cfg.trace_file = "trace_fig9_adaptive.json";
    }
    const auto ad = core::run_dsm_sort(mp, cfg);
    cfg.trace_file.clear();
    all_ok &= ad.ok();
    row["adaptive_alpha"] = double(star);
    row["adaptive_pass1_seconds"] = ad.pass1_seconds;
    row["adaptive_speedup"] = base.pass1_seconds / ad.pass1_seconds;
    row["adaptive_digest"] = obs::digest_to_string(ad.digest);
    if (detailed) {
      report.add_digest(ad.digest);
      for (const auto& h : ad.hosts) {
        report.add_utilization(h.node, h.mean, ad.util_bin_seconds, h.series);
      }
      for (const auto& a : ad.asus) {
        report.add_utilization(a.node, a.mean, ad.util_bin_seconds, a.series);
      }
      report.root()["metrics"] = ad.metrics;
      row["sim_events"] = double(ad.sim_events);
    }
    report.results().push_back(std::move(row));
    std::printf(" %8.2f  (a=%u)\n", base.pass1_seconds / ad.pass1_seconds,
                star);
  }
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

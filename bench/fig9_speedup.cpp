/// Figure 9 — Speedup of DSM-Sort pass 1 (run formation) over a passive
/// storage baseline, as ASUs are added to a single host.
///
/// Paper setup: 128-byte records / 4-byte keys, one host, ASUs at 1/8 the
/// host clock (c = 8), input pre-distributed across ASUs, distribute
/// functors on the ASUs. Series: alpha in {1,4,16,64,256} plus the
/// adaptive configuration (predictor-chosen alpha per machine shape).
/// Expected shape: high alpha far below 1.0 at D=2; all curves rise with
/// D; the host saturates around 16 ASUs, after which high alpha wins and
/// adaptive tracks the upper envelope.
///
/// The whole grid — 6 machine sizes x (baseline + 5 alphas + adaptive) =
/// 42 simulations — is declared as one SweepSpec and evaluated across
/// LMAS_JOBS threads. Every cell is an independent engine, results come
/// back in submission order, so the table and artifact are bit-identical
/// to a serial run; only the wall-clock fields move.
///
/// Alongside the text table, writes BENCH_fig9_speedup.json
/// (schema lmas-bench-v1) with per-run pass timings and, for the largest
/// machine's adaptive run, per-node utilization plus the full metrics
/// snapshot. Set LMAS_TRACE=1 to also export a Chrome trace of that run.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/core.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

enum class Kind { kBaseline, kAlpha, kAdaptive };

/// One (machine size, configuration) grid point. Self-contained: run()
/// builds its own machine + config, so cells can execute on any thread.
struct Cell {
  unsigned asus = 0;
  Kind kind = Kind::kBaseline;
  unsigned alpha = 0;  ///< kAlpha: the series value; kAdaptive: alpha*
  bool detailed = false;
  bool trace = false;
};

constexpr std::size_t kRecords = 1 << 22;

core::DsmSortReport run_cell(const Cell& cell) {
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = cell.asus;
  mp.c = 8.0;

  core::DsmSortConfig cfg;
  cfg.total_records = kRecords;
  cfg.log2_alpha_beta = 18;
  cfg.seed = 42;
  cfg.distribute_on_asus = cell.kind != Kind::kBaseline;
  if (cell.kind != Kind::kBaseline) cfg.alpha = cell.alpha;
  if (cell.trace) cfg.trace_file = "trace_fig9_adaptive.json";
  // The detailed (largest adaptive) cell additionally carries latency
  // quantiles and a host/ASU load time series into the artifact.
  // Digest-neutral: its pinned digest is unaffected.
  if (cell.detailed) {
    cfg.telemetry.histograms = true;
    cfg.telemetry.sampler = true;
  }
  return core::run_dsm_sort(mp, cfg);
}

}  // namespace

int main() {
  constexpr std::array<unsigned, 5> kAlphas{1, 4, 16, 64, 256};
  constexpr std::array<unsigned, 6> kAsus{2, 4, 8, 16, 32, 64};

  obs::BenchReport report("fig9_speedup");
  report.params()["records"] = double(kRecords);
  report.params()["hosts"] = 1;
  report.params()["c"] = 8.0;
  report.params()["log2_alpha_beta"] = 18;
  report.params()["alphas"] = obs::Json::array_of(
      std::vector<double>(kAlphas.begin(), kAlphas.end()));
  report.params()["asus"] = obs::Json::array_of(
      std::vector<double>(kAsus.begin(), kAsus.end()));
  report.results() = obs::Json::array();

  // Flatten the grid. The adaptive alpha is chosen by the (pure) cost
  // predictor, so it can be fixed before any simulation runs — that is
  // what lets the adaptive cells join the same parallel sweep.
  benchio::SweepSpec<Cell, core::DsmSortReport> sweep;
  sweep.report_name = "fig9_speedup";
  sweep.run_fn = run_cell;
  for (const auto d : kAsus) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = d;
    mp.c = 8.0;
    core::DsmSortConfig cfg;
    cfg.total_records = kRecords;
    cfg.log2_alpha_beta = 18;
    cfg.seed = 42;
    cfg.distribute_on_asus = true;
    const unsigned star = core::choose_alpha(mp, cfg, kAlphas);

    sweep.cells.push_back({.asus = d, .kind = Kind::kBaseline});
    for (const auto a : kAlphas) {
      sweep.cells.push_back({.asus = d, .kind = Kind::kAlpha, .alpha = a});
    }
    const bool detailed = d == kAsus.back();
    sweep.cells.push_back({.asus = d,
                           .kind = Kind::kAdaptive,
                           .alpha = star,
                           .detailed = detailed,
                           .trace = detailed && trace_requested()});
  }

  benchio::SweepStats stats;
  const std::vector<core::DsmSortReport> runs =
      benchio::run_sweep(sweep, &stats);

  std::printf("# Figure 9: DSM-Sort pass-1 speedup vs number of ASUs\n");
  std::printf("# n=%zu records (128B, 4B key), H=1, c=8, alpha*beta=2^18\n",
              kRecords);
  std::printf("%-8s %10s", "ASUs", "baseline");
  for (auto a : kAlphas) std::printf(" a=%-6u", a);
  std::printf(" %-8s %s\n", "adaptive", "(alpha*)");

  // Reassemble the table in grid order: each machine size owns a
  // contiguous slice of (1 + |alphas| + 1) results.
  bool all_ok = true;
  double total_sim_events = 0;
  constexpr std::size_t kPerRow = 1 + kAlphas.size() + 1;
  for (std::size_t row_i = 0; row_i < kAsus.size(); ++row_i) {
    const std::size_t base_i = row_i * kPerRow;
    const Cell& base_cell = sweep.cells[base_i];
    const core::DsmSortReport& base = runs[base_i];
    all_ok &= base.ok();
    total_sim_events += double(base.sim_events);

    obs::Json row = obs::Json::object();
    row["asus"] = double(base_cell.asus);
    row["baseline_pass1_seconds"] = base.pass1_seconds;
    std::printf("%-8u %9.3fs", base_cell.asus, base.pass1_seconds);

    obs::Json& by_alpha = row["by_alpha"];
    by_alpha = obs::Json::object();
    for (std::size_t k = 0; k < kAlphas.size(); ++k) {
      const core::DsmSortReport& rep = runs[base_i + 1 + k];
      all_ok &= rep.ok();
      total_sim_events += double(rep.sim_events);
      obs::Json cell = obs::Json::object();
      cell["pass1_seconds"] = rep.pass1_seconds;
      cell["speedup"] = base.pass1_seconds / rep.pass1_seconds;
      by_alpha[std::to_string(kAlphas[k])] = std::move(cell);
      std::printf(" %7.2f", base.pass1_seconds / rep.pass1_seconds);
    }

    const Cell& ad_cell = sweep.cells[base_i + 1 + kAlphas.size()];
    const core::DsmSortReport& ad = runs[base_i + 1 + kAlphas.size()];
    all_ok &= ad.ok();
    total_sim_events += double(ad.sim_events);
    row["adaptive_alpha"] = double(ad_cell.alpha);
    row["adaptive_pass1_seconds"] = ad.pass1_seconds;
    row["adaptive_speedup"] = base.pass1_seconds / ad.pass1_seconds;
    row["adaptive_digest"] = obs::digest_to_string(ad.digest);
    if (ad_cell.detailed) {
      report.add_digest(ad.digest);
      for (const auto& h : ad.hosts) {
        report.add_utilization(h.node, h.mean, ad.util_bin_seconds, h.series);
      }
      for (const auto& a : ad.asus) {
        report.add_utilization(a.node, a.mean, ad.util_bin_seconds, a.series);
      }
      report.root()["metrics"] = ad.metrics;
      report.root()["histograms"] = ad.histograms;
      report.root()["time_series"] = ad.time_series;
      row["sim_events"] = double(ad.sim_events);
    }
    report.results().push_back(std::move(row));
    std::printf(" %8.2f  (a=%u)\n", base.pass1_seconds / ad.pass1_seconds,
                ad_cell.alpha);
  }

  benchio::stamp_sweep(report, stats, total_sim_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs, "
              "speedup %.2fx, %.0f events/s\n",
              stats.cells, stats.jobs, stats.wall_clock_s,
              stats.parallel_speedup(),
              total_sim_events / stats.cell_seconds_total);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

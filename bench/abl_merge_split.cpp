/// Ablation C — gamma split between ASUs and hosts in the pass-2 merge
/// (gamma = gamma1 * gamma2, Section 4.3). gamma1 = 1 ships every stored
/// run straight to the hosts (full fan-in there); gamma1 = all pre-merges
/// each subset's local runs at its ASU first. Which side should merge is
/// itself a load-management decision: pre-merging on few, slow ASUs adds
/// c-scaled work to the bottleneck, while with many ASUs the per-unit
/// share shrinks and the host's fan-in (and compare count) drops.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  core::DsmSortConfig base_cfg;
  base_cfg.total_records = std::size_t(1) << 21;
  base_cfg.alpha = 8;
  base_cfg.log2_alpha_beta = 12;  // short runs: a deep pass-2 merge tree
  base_cfg.run_merge_pass = true;
  base_cfg.seed = 42;

  std::printf("# Ablation C: ASU-side pre-merge fan-in gamma1 across "
              "machine shapes (H=1, n=%zu, alpha=%u, K=2^%u)\n",
              base_cfg.total_records, base_cfg.alpha,
              base_cfg.log2_alpha_beta);
  std::printf("%-5s %-10s %10s %10s %10s %8s\n", "D", "gamma1", "pass1(s)",
              "pass2(s)", "total(s)", "sorted");

  bool all_ok = true;
  for (const unsigned d : {4u, 16u, 64u}) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = d;
    for (const unsigned g1 : {1u, 4u, 0u}) {  // 0 = merge all local runs
      auto cfg = base_cfg;
      cfg.gamma1 = g1;
      const auto r = core::run_dsm_sort(mp, cfg);
      all_ok &= r.ok();
      char label[16];
      if (g1 == 0) {
        std::snprintf(label, sizeof label, "all-local");
      } else {
        std::snprintf(label, sizeof label, "%u", g1);
      }
      std::printf("%-5u %-10s %9.3fs %9.3fs %9.3fs %8s\n", d, label,
                  r.pass1_seconds, r.pass2_seconds, r.makespan,
                  r.final_sorted_ok ? "yes" : "NO");
    }
  }
  std::printf("# with few slow ASUs the host should keep the merge; the "
              "pre-merge pays off as D grows\n");
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Figure 10 companion — *online* load management: the same skewed
/// DSM-Sort workload as fig10_skew (first half uniform, second half
/// exponential), but instead of hard-wiring the managed router, pass 1
/// starts on static partitioning and a LoadManager control process
/// watches the LoadMonitor's per-window load signal, hot-swaps the sort
/// router to SR when host imbalance sustains, and plans budgeted
/// migrations through the pressure-driven placer (pre-copy vs stop-copy
/// priced from each instance's declared working set), journaling every
/// decision.
///
/// Managed-vs-unmanaged × fault-intensity matrix, skewed input
/// throughout. Three intensities, each run unmanaged (Monitor mode:
/// observes, never acts) and managed (Manage mode):
///
///   none    clean machine, no faults
///   mild    10% ASU background load + a mid-run 2x host-0 slowdown
///   severe  25% ASU background load + a 3x host-0 slowdown for the
///           middle third + a transient ASU crash (records park/retry)
///
/// The unmanaged static reference runs first (serially — it fixes the
/// horizon H that scales the sampling period and the fault windows); the
/// six cells then form a SweepSpec evaluated through the parallel
/// executor. Results come back in submission order: bit-identical
/// output at any LMAS_JOBS.
///
/// Acceptance gates: at EVERY intensity the managed cell must beat its
/// unmanaged counterpart on pass-1 time, actionable-mean host imbalance,
/// and pass-1 tail latency (to_sort queue-wait p99), without worsening
/// the peak; across the managed cells, at least one router switch, one
/// migration, and one journaled placer decision; every run conserves
/// records.
///
/// Writes BENCH_fig10_adapt.json (schema lmas-bench-v1): one entry per
/// cell carrying the full dsm_report_to_json payload, including the
/// manager's decision journal and the placer block. Set LMAS_TRACE=1 to
/// export Chrome traces (the load manager journals onto its own track).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace fault = lmas::fault;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

/// Fault intensity: background load stolen from every ASU plus a
/// horizon-scaled fault plan (built once H is known).
enum class Intensity { None, Mild, Severe };

double background_load(Intensity i) {
  switch (i) {
    case Intensity::None: return 0.0;
    case Intensity::Mild: return 0.10;
    case Intensity::Severe: return 0.25;
  }
  return 0.0;
}

const char* intensity_name(Intensity i) {
  switch (i) {
    case Intensity::None: return "none";
    case Intensity::Mild: return "mild";
    case Intensity::Severe: return "severe";
  }
  return "?";
}

asu::MachineParams machine(Intensity i) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;
  // The perturbed cells steal a slice of every ASU's cycles for
  // unrelated storage-unit work (the paper's shared-ASU scenario).
  mp.asu_background_load = background_load(i);
  return mp;
}

core::DsmSortConfig base_config() {
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 22;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.sort_router = core::RouterKind::Static;
  cfg.seed = 42;
  return cfg;
}

/// Control-loop tuning scaled to the measured horizon: ~64 samples per
/// run, act after 2 sustained hot samples, hold 4 after each action.
/// Managed cells get a 2-move per-tick budget so one gate opening can
/// fix both a hot host and a planned follow-up (the placer's virtual
/// rebalance keeps the two moves off the same destination).
core::LoadManagerConfig manager_cfg(double H, bool act) {
  core::LoadManagerConfig cfg;
  cfg.mode = act ? core::LoadManagerMode::Manage
                 : core::LoadManagerMode::Monitor;
  cfg.period = H / 64.0;
  cfg.promote_hysteresis = 2;
  cfg.demote_hysteresis = 4;
  cfg.cooldown_samples = 4;
  cfg.migrate_hysteresis = 2;
  cfg.dwell_samples = 8;
  cfg.budget_moves_per_tick = 2;
  return cfg;
}

/// Horizon-scaled fault plans per intensity. Mild: host 0 at half speed
/// for a fifth of the run. Severe: host 0 at a third of its speed for
/// the middle third, plus a transient early ASU crash (accepted records
/// park and retry — nothing is lost) — the schedule the placer must
/// steer around rather than merely survive.
fault::FaultPlan make_window(Intensity i, double H) {
  fault::FaultPlan plan;
  switch (i) {
    case Intensity::None:
      break;
    case Intensity::Mild:
      plan.slowdown(/*on_asu=*/false, 0, 0.40 * H, 0.20 * H, 2.0);
      break;
    case Intensity::Severe:
      plan.slowdown(/*on_asu=*/false, 0, 0.35 * H, 0.30 * H, 3.0);
      plan.crash(/*on_asu=*/true, 3, 0.15 * H, 0.05 * H);
      break;
  }
  plan.normalize();
  return plan;
}

struct Cell {
  bool managed = false;
  Intensity intensity = Intensity::None;
  const char* key = "";
};

}  // namespace

int main() {
  obs::BenchReport report("fig10_adapt");
  {
    const core::DsmSortConfig cfg = base_config();
    report.params()["records"] = double(cfg.total_records);
    report.params()["hosts"] = 2;
    report.params()["asus"] = 16;
    report.params()["c"] = 8.0;
    report.params()["alpha"] = double(cfg.alpha);
    report.params()["key_dist"] = "half_uniform_half_exp";
    std::printf("# Figure 10 with online management: 2 hosts + 16 ASUs, "
                "n=%zu, skewed input, managed x fault-intensity matrix\n",
                cfg.total_records);
  }
  report.results() = obs::Json::array();

  // Unmanaged static reference: fixes the horizon H that scales the
  // sampling period and the perturbation windows. Serial by necessity.
  const core::DsmSortReport base =
      core::run_dsm_sort(machine(Intensity::None), base_config());
  bool all_ok = base.ok();
  const double H = base.pass1_seconds;
  std::printf("# horizon H = unmanaged static pass 1 = %.3fs; manager "
              "period H/64 = %.4fs\n", H, H / 64.0);
  {
    obs::Json plans_json = obs::Json::object();
    for (Intensity i : {Intensity::Mild, Intensity::Severe}) {
      obs::Json plan_json = obs::Json::array();
      for (const auto& e : make_window(i, H).events) {
        const std::string d = fault::describe(e);
        std::printf("# perturbation[%s]: %s\n", intensity_name(i), d.c_str());
        plan_json.push_back(d);
      }
      plans_json[intensity_name(i)] = std::move(plan_json);
    }
    report.params()["fault_plans"] = std::move(plans_json);
    report.params()["manager_period"] = H / 64.0;
  }

  benchio::SweepSpec<Cell, core::DsmSortReport> sweep;
  sweep.report_name = "fig10_adapt";
  sweep.cells = {
      {false, Intensity::None, "unmanaged-none"},
      {true, Intensity::None, "managed-none"},
      {false, Intensity::Mild, "unmanaged-mild"},
      {true, Intensity::Mild, "managed-mild"},
      {false, Intensity::Severe, "unmanaged-severe"},
      {true, Intensity::Severe, "managed-severe"},
  };
  sweep.run_fn = [H](const Cell& cell) {
    core::DsmSortConfig c = base_config();
    c.load_manager = manager_cfg(H, cell.managed);
    c.faults = make_window(cell.intensity, H);
    // Telemetry on every cell: per-stage latency quantiles answer the
    // tail question the mean imbalance hides (does management shorten
    // the p99 packet service time, not just the average?), and the
    // host-load series is the managed-vs-unmanaged picture itself.
    // Digest-neutral, so the reference digest above is unaffected.
    c.telemetry.histograms = true;
    c.telemetry.sampler = true;
    c.telemetry.sample_period = H / 64.0;  // aligned with the manager
    if (trace_requested()) {
      c.trace_file = std::string("trace_fig10_adapt_") + cell.key + ".json";
    }
    return core::run_dsm_sort(machine(cell.intensity), c);
  };

  benchio::SweepStats stats;
  const std::vector<core::DsmSortReport> cells =
      benchio::run_sweep(sweep, &stats);

  double sweep_sim_events = 0;
  for (std::size_t run = 0; run < cells.size(); ++run) {
    all_ok &= cells[run].ok();
    sweep_sim_events += double(cells[run].sim_events);
    obs::Json entry = core::dsm_report_to_json(cells[run]);
    entry["cell"] = sweep.cells[run].key;
    entry["managed"] = sweep.cells[run].managed;
    entry["intensity"] = intensity_name(sweep.cells[run].intensity);
    report.results().push_back(std::move(entry));
  }
  report.add_digest(cells.back().digest);  // the managed severe run

  // Tail latencies per cell: sort-stage packet service time quantiles
  // from the run's latency histograms (the managed cells should pull the
  // p99 in, since migration/SR stop packets from queueing behind a hot
  // host). Values are sim seconds.
  const auto hist_q = [](const core::DsmSortReport& r, const char* name,
                         const char* q) {
    const obs::Json* h = r.histograms.find(name);
    const obs::Json* v = h != nullptr ? h->find(q) : nullptr;
    return v != nullptr ? v->as_double() : 0.0;
  };

  std::printf("\n%-18s %10s %12s %12s %12s %9s %11s %7s\n", "cell",
              "pass1(s)", "mean.imbal", "peak.imbal", "wait.p99(s)",
              "switches", "migrations", "valid");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    const auto& r = cells[run];
    std::printf("%-18s %10.3f %12.3f %12.3f %12.5f %9llu %11llu %7s\n",
                sweep.cells[run].key, r.pass1_seconds,
                r.mean_host_imbalance, r.peak_host_imbalance,
                hist_q(r, "to_sort.queue_wait_seconds", "p99"),
                static_cast<unsigned long long>(r.lm_router_switches),
                static_cast<unsigned long long>(r.lm_migrations),
                r.ok() ? "ok" : "FAIL");
  }

  std::printf("\n# decision journals:\n");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    for (const auto& e : cells[run].lm_events) {
      std::printf("#   [%s] t=%.4f %s\n", sweep.cells[run].key, e.time,
                  e.what.c_str());
    }
  }
  std::printf("# placer decisions:\n");
  std::size_t placer_decisions = 0;
  for (std::size_t run = 0; run < cells.size(); ++run) {
    for (const auto& d : cells[run].lm_decisions) {
      ++placer_decisions;
      std::printf("#   [%s] t=%.4f i%zu %s -> %s (%s, %zu B, stall "
                  "%.5fs, gain %.4fs)\n",
                  sweep.cells[run].key, d.time, d.instance, d.from.c_str(),
                  d.to.c_str(), core::migration_mode_name(d.mode), d.bytes,
                  d.est_stall, d.gain);
    }
  }

  // Acceptance gates, per intensity. The imbalance comparison uses the
  // actionable-mean statistic: a raw peak saturates at 1.0 for both
  // runs, because the manager acts only AFTER observing the same
  // sustained-hot windows the unmanaged run suffers (and any
  // lone-straggler drain window reads as imbalance 1.0). What
  // management shrinks is how long the hot phases last — exactly what
  // the mean integrates. The peak must still not get worse, and the
  // pass-1 tail (queue-wait p99) must come in too.
  std::uint64_t switches = 0, migrations = 0;
  for (std::size_t pair = 0; pair < cells.size() / 2; ++pair) {
    const core::DsmSortReport& unmanaged = cells[2 * pair];
    const core::DsmSortReport& managed = cells[2 * pair + 1];
    const double u_p99 = hist_q(unmanaged, "to_sort.queue_wait_seconds",
                                "p99");
    const double m_p99 = hist_q(managed, "to_sort.queue_wait_seconds",
                                "p99");
    const bool wins =
        managed.pass1_seconds < unmanaged.pass1_seconds &&
        managed.mean_host_imbalance < unmanaged.mean_host_imbalance &&
        managed.peak_host_imbalance <= unmanaged.peak_host_imbalance &&
        m_p99 < u_p99;
    std::printf("# managed %s unmanaged at intensity %s\n",
                wins ? "beats" : "DOES NOT beat",
                intensity_name(sweep.cells[2 * pair].intensity));
    all_ok &= wins;
    switches += managed.lm_router_switches;
    migrations += managed.lm_migrations;
  }
  std::printf("# journaled across managed cells: %llu router switch(es), "
              "%llu migration(s), %zu placer decision(s)\n",
              static_cast<unsigned long long>(switches),
              static_cast<unsigned long long>(migrations),
              placer_decisions);
  all_ok &= switches >= 1 && migrations >= 1 && placer_decisions >= 1;

  benchio::stamp_sweep(report, stats, sweep_sim_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs\n", stats.cells,
              stats.jobs, stats.wall_clock_s);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

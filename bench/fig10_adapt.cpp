/// Figure 10 companion — *online* load management: the same skewed
/// DSM-Sort workload as fig10_skew (first half uniform, second half
/// exponential), but instead of hard-wiring the managed router, pass 1
/// starts on static partitioning and a LoadManager control process
/// watches the LoadMonitor's per-window load signal, hot-swaps the sort
/// router to SR when host imbalance sustains, migrates sort instances
/// off overloaded hosts, and journals every decision.
///
/// Four cells, skewed input throughout:
///
///   unmanaged/clean      static split, Monitor mode (observes only)
///   managed/clean        static split + LoadManager (Manage mode)
///   unmanaged/perturbed  + 25% ASU background load and a mid-run host-0
///                        slowdown window, Monitor mode
///   managed/perturbed    the same perturbation, Manage mode
///
/// The unmanaged static reference runs first (serially — it fixes the
/// horizon H that scales the sampling period and the fault window); the
/// four cells then form a SweepSpec evaluated through the parallel
/// executor. Results come back in submission order: bit-identical
/// output at any LMAS_JOBS.
///
/// Acceptance gates: each managed cell must beat its unmanaged
/// counterpart on BOTH pass-1 time and peak host imbalance; across the
/// managed cells, at least one router switch and at least one migration
/// must be journaled; every run conserves records.
///
/// Writes BENCH_fig10_adapt.json (schema lmas-bench-v1): one entry per
/// cell carrying the full dsm_report_to_json payload, including the
/// manager's decision journal. Set LMAS_TRACE=1 to export Chrome traces
/// (the load manager journals onto its own track).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace fault = lmas::fault;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

asu::MachineParams machine(bool perturbed) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;
  // The perturbed cells steal a quarter of every ASU's cycles for
  // unrelated storage-unit work (the paper's shared-ASU scenario).
  if (perturbed) mp.asu_background_load = 0.25;
  return mp;
}

core::DsmSortConfig base_config() {
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 22;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.sort_router = core::RouterKind::Static;
  cfg.seed = 42;
  return cfg;
}

/// Control-loop tuning scaled to the measured horizon: ~64 samples per
/// run, act after 2 sustained hot samples, hold 4 after each action.
core::LoadManagerConfig manager_cfg(double H, bool act) {
  core::LoadManagerConfig cfg;
  cfg.mode = act ? core::LoadManagerMode::Manage
                 : core::LoadManagerMode::Monitor;
  cfg.period = H / 64.0;
  cfg.promote_hysteresis = 2;
  cfg.demote_hysteresis = 4;
  cfg.cooldown_samples = 4;
  cfg.migrate_hysteresis = 2;
  cfg.dwell_samples = 8;
  return cfg;
}

/// Mid-run perturbation, scaled to H: host 0 runs at a third of its
/// speed for the middle third of the run (the window the manager must
/// steer around by migrating host 0's sort instance away).
fault::FaultPlan make_window(double H) {
  fault::FaultPlan plan;
  plan.slowdown(/*on_asu=*/false, 0, 0.35 * H, 0.30 * H, 3.0);
  plan.normalize();
  return plan;
}

struct Cell {
  bool managed = false;
  bool perturbed = false;
  const char* key = "";
};

}  // namespace

int main() {
  obs::BenchReport report("fig10_adapt");
  {
    const core::DsmSortConfig cfg = base_config();
    report.params()["records"] = double(cfg.total_records);
    report.params()["hosts"] = 2;
    report.params()["asus"] = 16;
    report.params()["c"] = 8.0;
    report.params()["alpha"] = double(cfg.alpha);
    report.params()["key_dist"] = "half_uniform_half_exp";
    report.params()["asu_background_load_perturbed"] = 0.25;
    std::printf("# Figure 10 with online management: 2 hosts + 16 ASUs, "
                "n=%zu, skewed input\n", cfg.total_records);
  }
  report.results() = obs::Json::array();

  // Unmanaged static reference: fixes the horizon H that scales the
  // sampling period and the perturbation window. Serial by necessity.
  const core::DsmSortReport base =
      core::run_dsm_sort(machine(false), base_config());
  bool all_ok = base.ok();
  const double H = base.pass1_seconds;
  const fault::FaultPlan window = make_window(H);
  std::printf("# horizon H = unmanaged static pass 1 = %.3fs; manager "
              "period H/64 = %.4fs\n", H, H / 64.0);
  {
    obs::Json plan_json = obs::Json::array();
    for (const auto& e : window.events) {
      const std::string d = fault::describe(e);
      std::printf("# perturbation: %s\n", d.c_str());
      plan_json.push_back(d);
    }
    report.params()["fault_plan"] = std::move(plan_json);
    report.params()["manager_period"] = H / 64.0;
  }

  benchio::SweepSpec<Cell, core::DsmSortReport> sweep;
  sweep.report_name = "fig10_adapt";
  sweep.cells = {
      {false, false, "unmanaged-clean"},
      {true, false, "managed-clean"},
      {false, true, "unmanaged-perturbed"},
      {true, true, "managed-perturbed"},
  };
  sweep.run_fn = [H, &window](const Cell& cell) {
    core::DsmSortConfig c = base_config();
    c.load_manager = manager_cfg(H, cell.managed);
    if (cell.perturbed) c.faults = window;
    // Telemetry on every cell: per-stage latency quantiles answer the
    // tail question the mean imbalance hides (does management shorten
    // the p99 packet service time, not just the average?), and the
    // host-load series is the managed-vs-unmanaged picture itself.
    // Digest-neutral, so the reference digest above is unaffected.
    c.telemetry.histograms = true;
    c.telemetry.sampler = true;
    c.telemetry.sample_period = H / 64.0;  // aligned with the manager
    if (trace_requested()) {
      c.trace_file = std::string("trace_fig10_adapt_") + cell.key + ".json";
    }
    return core::run_dsm_sort(machine(cell.perturbed), c);
  };

  benchio::SweepStats stats;
  const std::vector<core::DsmSortReport> cells =
      benchio::run_sweep(sweep, &stats);

  double sweep_sim_events = 0;
  for (std::size_t run = 0; run < cells.size(); ++run) {
    all_ok &= cells[run].ok();
    sweep_sim_events += double(cells[run].sim_events);
    obs::Json entry = core::dsm_report_to_json(cells[run]);
    entry["cell"] = sweep.cells[run].key;
    entry["managed"] = sweep.cells[run].managed;
    entry["perturbed"] = sweep.cells[run].perturbed;
    report.results().push_back(std::move(entry));
  }
  report.add_digest(cells[3].digest);  // the managed perturbed run

  std::printf("\n%-20s %10s %12s %12s %9s %11s %7s\n", "cell", "pass1(s)",
              "mean.imbal", "peak.imbal", "switches", "migrations",
              "valid");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    const auto& r = cells[run];
    std::printf("%-20s %10.3f %12.3f %12.3f %9llu %11llu %7s\n",
                sweep.cells[run].key, r.pass1_seconds,
                r.mean_host_imbalance, r.peak_host_imbalance,
                static_cast<unsigned long long>(r.lm_router_switches),
                static_cast<unsigned long long>(r.lm_migrations),
                r.ok() ? "ok" : "FAIL");
  }
  // Tail latencies per cell: sort-stage packet service time quantiles
  // from the run's latency histograms (the managed cells should pull the
  // p99 in, since migration/SR stop packets from queueing behind a hot
  // host). Values are sim seconds.
  const auto hist_q = [](const core::DsmSortReport& r, const char* name,
                         const char* q) {
    const obs::Json* h = r.histograms.find(name);
    const obs::Json* v = h != nullptr ? h->find(q) : nullptr;
    return v != nullptr ? v->as_double() : 0.0;
  };
  std::printf("\n%-20s %12s %12s %12s %12s\n", "cell", "sort.p50(s)",
              "sort.p99(s)", "wait.p50(s)", "wait.p99(s)");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    const auto& r = cells[run];
    std::printf("%-20s %12.5f %12.5f %12.5f %12.5f\n", sweep.cells[run].key,
                hist_q(r, "sort.packet_seconds", "p50"),
                hist_q(r, "sort.packet_seconds", "p99"),
                hist_q(r, "to_sort.queue_wait_seconds", "p50"),
                hist_q(r, "to_sort.queue_wait_seconds", "p99"));
  }

  std::printf("\n# decision journals:\n");
  for (std::size_t run = 0; run < cells.size(); ++run) {
    for (const auto& e : cells[run].lm_events) {
      std::printf("#   [%s] t=%.4f %s\n", sweep.cells[run].key, e.time,
                  e.what.c_str());
    }
  }

  // Acceptance gates. The imbalance comparison uses the actionable-mean
  // statistic: a raw peak saturates at 1.0 for both runs, because the
  // manager acts only AFTER observing the same sustained-hot windows
  // the unmanaged run suffers (and any lone-straggler drain window
  // reads as imbalance 1.0). What management shrinks is how long the
  // hot phases last — exactly what the mean integrates. The peak must
  // still not get worse.
  const auto beats = [](const core::DsmSortReport& managed,
                        const core::DsmSortReport& unmanaged) {
    return managed.pass1_seconds < unmanaged.pass1_seconds &&
           managed.mean_host_imbalance < unmanaged.mean_host_imbalance &&
           managed.peak_host_imbalance <= unmanaged.peak_host_imbalance;
  };
  const bool clean_wins = beats(cells[1], cells[0]);
  const bool perturbed_wins = beats(cells[3], cells[2]);
  const std::uint64_t switches =
      cells[1].lm_router_switches + cells[3].lm_router_switches;
  const std::uint64_t migrations =
      cells[1].lm_migrations + cells[3].lm_migrations;
  std::printf("# managed %s unmanaged (clean), managed %s unmanaged "
              "(perturbed)\n",
              clean_wins ? "beats" : "DOES NOT beat",
              perturbed_wins ? "beats" : "DOES NOT beat");
  std::printf("# journaled across managed cells: %llu router switch(es), "
              "%llu migration(s)\n",
              static_cast<unsigned long long>(switches),
              static_cast<unsigned long long>(migrations));
  all_ok &= clean_wins && perturbed_wins;
  all_ok &= switches >= 1 && migrations >= 1;

  benchio::stamp_sweep(report, stats, sweep_sim_events);
  std::printf("# sweep: %zu cells on %u job(s), wall %.2fs\n", stats.cells,
              stats.jobs, stats.wall_clock_s);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// Ablation D — the alpha*beta product K. K fixes how much sorting the
/// pass-1 pipeline achieves (pass-2 fan-in is n/K): larger K means more
/// compares per record in pass 1 and a cheaper pass 2. The distribute
/// order alpha trades those compares between ASUs and hosts within a
/// fixed K; this sweep varies K itself.

#include <cstdio>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;

  std::printf("# Ablation D: sweep of K = alpha*beta at alpha=64 "
              "(1 host, 16 ASUs, n=2^22)\n");
  std::printf("%-8s %-10s %10s %10s %10s\n", "log2K", "beta", "passive(s)",
              "active(s)", "speedup");

  bool all_ok = true;
  for (const unsigned log2k : {12u, 14u, 16u, 18u, 20u}) {
    core::DsmSortConfig cfg;
    cfg.total_records = std::size_t(1) << 22;
    cfg.alpha = 64;
    cfg.log2_alpha_beta = log2k;
    cfg.seed = 42;

    cfg.distribute_on_asus = false;
    const auto base = core::run_dsm_sort(mp, cfg);
    cfg.distribute_on_asus = true;
    const auto act = core::run_dsm_sort(mp, cfg);
    all_ok &= base.ok() && act.ok();
    std::printf("%-8u %-10zu %9.3fs %9.3fs %9.2fx\n", log2k, cfg.beta(),
                base.pass1_seconds, act.pass1_seconds,
                base.pass1_seconds / act.pass1_seconds);
  }
  std::printf("# smaller K: less pass-1 work but a larger pass-2 merge; "
              "the alpha offload matters more as K grows\n");
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  return all_ok ? 0 : 1;
}

/// Ablation F — TerraFlow phase placement (Section 4.1). Steps 1 and 2
/// (grid restructure, sort by elevation) parallelize onto ASUs; step 3
/// (watershed coloring by time-forward processing) depends on ordering
/// and stays sequential. The table shows per-step costs from the declared
/// cost model as ASUs are added, plus a real (executed) watershed run for
/// correctness grounding.

#include <cstdio>

#include "gis/gis.hpp"

namespace gis = lmas::gis;
namespace asu = lmas::asu;

int main() {
  // Real execution first: the numbers below model THIS computation.
  auto grid = gis::make_fractal(512, 512, 42);
  gis::TerraFlowStats st;
  const auto colors = gis::watershed_labels(grid, &st);
  const bool ok = st.watersheds == gis::count_local_minima(grid) &&
                  colors.size() == grid.cells();
  std::printf("# Ablation F: TerraFlow phases, active vs passive "
              "placement\n");
  std::printf("# grounding run: 512x512 fractal terrain -> %zu watersheds "
              "(%zu tf-messages, sort runs %zu) %s\n",
              st.watersheds, st.messages_sent, st.sort.runs_formed,
              ok ? "[ok]" : "[FAIL]");

  std::printf("\n# modeled phase costs, 16M cells, alpha=64 "
              "(host-seconds)\n");
  std::printf("%-5s %12s %12s %12s %12s %10s %10s %9s\n", "D",
              "restr.pass", "restr.act", "sort.pass", "sort.act",
              "watershed", "tot.act", "speedup");
  for (const unsigned d : {4u, 8u, 16u, 32u, 64u}) {
    asu::MachineParams mp;
    mp.num_hosts = 1;
    mp.num_asus = d;
    const auto m = gis::terraflow_phase_model(mp, std::size_t(1) << 24, 64);
    std::printf("%-5u %11.2fs %11.2fs %11.2fs %11.2fs %9.2fs %9.2fs %8.2fx\n",
                d, m.step1_passive, m.step1_active, m.step2_passive,
                m.step2_active, m.step3, m.total_active(),
                m.total_passive() / m.total_active());
  }
  std::printf("# steps 1-2 scale with D; step 3 is the serial floor "
              "(time-forward ordering dependence)\n");
  return ok ? 0 : 1;
}

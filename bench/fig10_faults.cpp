/// Figure 10 companion — routing under faults: the same skewed DSM-Sort
/// workload as fig10_skew (first half uniform, second half exponential),
/// now with a deterministic fault plan driven while pass 1 runs: a host
/// CPU degradation window, ASU slowdowns, an ASU crash-and-recover
/// window, and a link delay/jitter window. Static partitioning cannot
/// steer around any of it; SR spreads every subset across both hosts;
/// least-loaded routing actively avoids the degraded host. The managed
/// configurations must complete the faulted run strictly faster than
/// static — with zero records lost (the retry/park delivery contract).
///
/// The fault-free static reference runs first (serially — it fixes the
/// horizon H the fault plan is scaled to); the three faulted runs then
/// form a SweepSpec evaluated through the parallel executor. Results
/// come back in submission order: bit-identical output at any LMAS_JOBS.
///
/// Writes BENCH_fig10_faults.json (schema lmas-bench-v1): the fault-free
/// static reference plus one entry per (router x faulted run), each
/// carrying the full dsm_report_to_json payload. Set LMAS_TRACE=1 to
/// export Chrome traces (the fault injector has its own track).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace obs = lmas::obs;
namespace fault = lmas::fault;
namespace benchio = lmas::benchio;

namespace {

bool trace_requested() {
  const char* v = std::getenv("LMAS_TRACE");
  return v != nullptr && v[0] == '1';
}

/// The fault schedule, scaled to the measured fault-free horizon H so the
/// windows land mid-run regardless of machine speed. Host 0 degrades for
/// the middle third; two ASUs slow down, one crashes and recovers; the
/// interconnect jitters late in the run.
fault::FaultPlan make_plan(double H) {
  fault::FaultPlan plan;
  plan.slowdown(/*on_asu=*/false, 0, 0.15 * H, 0.30 * H, 3.0);
  plan.slowdown(/*on_asu=*/true, 1, 0.10 * H, 0.20 * H, 4.0);
  plan.slowdown(/*on_asu=*/true, 5, 0.45 * H, 0.25 * H, 2.5);
  plan.crash(/*on_asu=*/true, 2, 0.25 * H, 0.15 * H);
  plan.link_delay(0.40 * H, 0.20 * H, /*extra=*/1e-4, /*jitter=*/5e-5);
  plan.normalize();
  return plan;
}

asu::MachineParams machine() {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.c = 8.0;
  mp.util_bin = 0.05;
  return mp;
}

core::DsmSortConfig base_config() {
  core::DsmSortConfig cfg;
  cfg.total_records = std::size_t(1) << 22;
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;
  cfg.seed = 42;
  return cfg;
}

struct Cell {
  core::RouterKind router = core::RouterKind::Static;
  const char* key = "";
};

}  // namespace

int main() {
  const asu::MachineParams mp = machine();
  core::DsmSortConfig cfg = base_config();

  obs::BenchReport report("fig10_faults");
  report.params()["records"] = double(cfg.total_records);
  report.params()["hosts"] = 2;
  report.params()["asus"] = 16;
  report.params()["c"] = 8.0;
  report.params()["alpha"] = double(cfg.alpha);
  report.params()["key_dist"] = "half_uniform_half_exp";
  report.results() = obs::Json::array();

  std::printf("# Figure 10 under faults: 2 hosts + 16 ASUs, n=%zu, skewed "
              "input\n", cfg.total_records);

  // Fault-free static run: fixes the horizon the plan is scaled to and
  // gives the artifact a clean baseline. Serial by necessity — the
  // faulted cells cannot be built until H is known.
  cfg.sort_router = core::RouterKind::Static;
  const core::DsmSortReport base = core::run_dsm_sort(mp, cfg);
  bool all_ok = base.ok();
  {
    obs::Json entry = core::dsm_report_to_json(base);
    entry["router"] = "static";
    entry["faulted"] = false;
    report.results().push_back(std::move(entry));
  }
  const double H = base.pass1_seconds;
  const fault::FaultPlan plan = make_plan(H);
  std::printf("# fault plan (H = fault-free static pass 1 = %.3fs):\n", H);
  obs::Json plan_json = obs::Json::array();
  for (const auto& e : plan.events) {
    const std::string d = fault::describe(e);
    std::printf("#   %s\n", d.c_str());
    plan_json.push_back(d);
  }
  report.params()["fault_plan"] = std::move(plan_json);

  benchio::SweepSpec<Cell, core::DsmSortReport> sweep;
  sweep.report_name = "fig10_faults";
  sweep.cells = {
      {core::RouterKind::Static, "static"},
      {core::RouterKind::SimpleRandomization, "sr"},
      {core::RouterKind::LeastLoaded, "least-loaded"},
  };
  sweep.run_fn = [&mp, &plan](const Cell& cell) {
    core::DsmSortConfig c = base_config();
    c.faults = plan;
    c.sort_router = cell.router;
    if (trace_requested()) {
      c.trace_file =
          std::string("trace_fig10_faults_") + cell.key + ".json";
    }
    return core::run_dsm_sort(machine(), c);
  };

  benchio::SweepStats stats;
  const std::vector<core::DsmSortReport> faulted =
      benchio::run_sweep(sweep, &stats);

  double sweep_sim_events = 0;
  for (std::size_t run = 0; run < faulted.size(); ++run) {
    all_ok &= faulted[run].ok();
    sweep_sim_events += double(faulted[run].sim_events);
    obs::Json entry = core::dsm_report_to_json(faulted[run]);
    entry["router"] = sweep.cells[run].key;
    entry["faulted"] = true;
    report.results().push_back(std::move(entry));
  }
  report.add_digest(faulted[1].digest);  // the managed (SR) faulted run

  std::printf("\n%-14s %12s %12s %14s %10s\n", "router", "pass1(s)",
              "vs static", "records lost", "valid");
  for (std::size_t run = 0; run < faulted.size(); ++run) {
    const auto& r = faulted[run];
    const std::size_t lost = r.records_in - r.records_stored;
    std::printf("%-14s %12.3f %11.1f%% %14zu %10s\n", sweep.cells[run].key,
                r.pass1_seconds,
                100.0 * (r.pass1_seconds / faulted[0].pass1_seconds - 1.0),
                lost, r.ok() ? "ok" : "FAIL");
    all_ok &= lost == 0;
  }
  std::printf("# fault-free static reference: %.3fs (faults cost static "
              "+%.1f%%)\n", H,
              100.0 * (faulted[0].pass1_seconds / H - 1.0));

  // The acceptance gate: under the identical plan and seed, both managed
  // routers must beat static outright.
  const bool sr_wins = faulted[1].pass1_seconds < faulted[0].pass1_seconds;
  const bool ll_wins = faulted[2].pass1_seconds < faulted[0].pass1_seconds;
  std::printf("# SR %s static, least-loaded %s static\n",
              sr_wins ? "beats" : "DOES NOT beat",
              ll_wins ? "beats" : "DOES NOT beat");
  all_ok &= sr_wins && ll_wins;

  benchio::stamp_sweep(report, stats, sweep_sim_events);
  std::printf("# sweep: %zu faulted cells on %u job(s), wall %.2fs\n",
              stats.cells, stats.jobs, stats.wall_clock_s);
  std::printf("# validation: %s\n", all_ok ? "all runs ok" : "FAILURES");
  report.root()["ok"] = all_ok;
  if (report.write()) {
    std::printf("# bench artifact: %s\n", report.path().c_str());
  } else {
    std::printf("# FAILED to write %s\n", report.path().c_str());
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// Microbenchmarks for the discrete-event simulation kernel: raw event
/// throughput bounds how large an emulated machine/workload is practical.
/// (The paper's emulator had the same concern: timing accuracy vs. the
/// cost of maintaining the global event queue.)

#include <benchmark/benchmark.h>

#include <cstdint>

#include "gbench_tee.hpp"

#include "sim/event_heap.hpp"
#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

sim::Task<> sleeper_chain(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.sleep(0.001);
}

void BM_EventQueueThroughput(benchmark::State& state) {
  const int tasks = int(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int t = 0; t < tasks; ++t) eng.spawn(sleeper_chain(eng, 100));
    const auto events = eng.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * tasks * 100);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10)->Arg(100)->Arg(1000);

sim::Task<> ping(sim::Engine&, sim::Channel<int>& tx, sim::Channel<int>& rx,
                 int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await tx.send(i);
    (void)co_await rx.recv();
  }
  tx.close();
}

sim::Task<> pong(sim::Engine&, sim::Channel<int>& rx, sim::Channel<int>& tx) {
  while (auto v = co_await rx.recv()) {
    co_await tx.send(*v);
  }
  tx.close();
}

void BM_ChannelPingPong(benchmark::State& state) {
  const int rounds = int(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng), b(eng);
    eng.spawn(ping(eng, a, b, rounds));
    eng.spawn(pong(eng, a, b));
    eng.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * rounds * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(10000);

sim::Task<> resource_user(sim::Resource& res, int uses) {
  for (int i = 0; i < uses; ++i) co_await res.use(0.0001);
}

void BM_ResourceContention(benchmark::State& state) {
  const int users = int(state.range(0));
  constexpr int kUses = 200;
  for (auto _ : state) {
    sim::Engine eng;
    sim::Resource res(eng, "shared");
    for (int u = 0; u < users; ++u) eng.spawn(resource_user(res, kUses));
    eng.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * users * kUses);
}
BENCHMARK(BM_ResourceContention)->Arg(2)->Arg(16)->Arg(128);

/// The engine's hot path in isolation: steady-state push+pop churn on the
/// four-ary event heap at a fixed pending-event depth. This is the
/// structure every simulated event flows through; items/sec here is the
/// hard ceiling on engine events/sec.
void BM_EventHeapChurn(benchmark::State& state) {
  struct Ev {
    double t;
    std::uint64_t seq;
  };
  struct Before {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };
  const std::size_t depth = std::size_t(state.range(0));
  sim::Rng rng(7);
  sim::FourAryHeap<Ev, Before> heap;
  heap.reserve(depth);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    heap.push(Ev{rng.uniform(0.0, 1.0), seq++});
  }
  double now = 0;
  for (auto _ : state) {
    const Ev ev = heap.pop_min();
    now = ev.t;
    // Re-arm like a sleeping process does: schedule a bit in the future.
    heap.push(Ev{now + rng.uniform(0.0, 0.01), seq++});
    benchmark::DoNotOptimize(heap);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_EventHeapChurn)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

/// End-to-end engine throughput in events/sec: the number every sweep's
/// events_per_sec artifact field should roughly track. A wide machine of
/// independent sleepers keeps the queue deep without channel or resource
/// overhead dominating.
void BM_EngineEventsPerSec(benchmark::State& state) {
  const int tasks = int(state.range(0));
  constexpr int kHops = 64;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine eng;
    for (int t = 0; t < tasks; ++t) eng.spawn(sleeper_chain(eng, kHops));
    events += eng.run();
  }
  state.SetItemsProcessed(std::int64_t(events));
  state.counters["events_per_sec"] = benchmark::Counter(
      double(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineEventsPerSec)->Arg(256)->Arg(4096)->Arg(32768);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_RngThroughput);

}  // namespace

int main(int argc, char** argv) {
  return lmas::benchio::run_with_artifact(argc, argv, "micro_sim");
}

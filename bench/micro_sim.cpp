/// Microbenchmarks for the discrete-event simulation kernel: raw event
/// throughput bounds how large an emulated machine/workload is practical.
/// (The paper's emulator had the same concern: timing accuracy vs. the
/// cost of maintaining the global event queue.)

#include <benchmark/benchmark.h>

#include <cstdint>

#include "gbench_tee.hpp"

#include "sim/event_heap.hpp"
#include "sim/sim.hpp"

namespace sim = lmas::sim;

namespace {

sim::Task<> sleeper_chain(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.sleep(0.001);
}

void BM_EventQueueThroughput(benchmark::State& state) {
  const int tasks = int(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int t = 0; t < tasks; ++t) eng.spawn(sleeper_chain(eng, 100));
    const auto events = eng.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * tasks * 100);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10)->Arg(100)->Arg(1000);

sim::Task<> ping(sim::Engine&, sim::Channel<int>& tx, sim::Channel<int>& rx,
                 int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await tx.send(i);
    (void)co_await rx.recv();
  }
  tx.close();
}

sim::Task<> pong(sim::Engine&, sim::Channel<int>& rx, sim::Channel<int>& tx) {
  while (auto v = co_await rx.recv()) {
    co_await tx.send(*v);
  }
  tx.close();
}

void BM_ChannelPingPong(benchmark::State& state) {
  const int rounds = int(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng), b(eng);
    eng.spawn(ping(eng, a, b, rounds));
    eng.spawn(pong(eng, a, b));
    eng.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * rounds * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(10000);

sim::Task<> resource_user(sim::Resource& res, int uses) {
  for (int i = 0; i < uses; ++i) co_await res.use(0.0001);
}

void BM_ResourceContention(benchmark::State& state) {
  const int users = int(state.range(0));
  constexpr int kUses = 200;
  for (auto _ : state) {
    sim::Engine eng;
    sim::Resource res(eng, "shared");
    for (int u = 0; u < users; ++u) eng.spawn(resource_user(res, kUses));
    eng.run();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * users * kUses);
}
BENCHMARK(BM_ResourceContention)->Arg(2)->Arg(16)->Arg(128);

/// The engine's hot path in isolation: steady-state push+pop churn on the
/// four-ary event heap at a fixed pending-event depth. This is the
/// structure every simulated event flows through; items/sec here is the
/// hard ceiling on engine events/sec.
void BM_EventHeapChurn(benchmark::State& state) {
  struct Ev {
    double t;
    std::uint64_t seq;
  };
  struct Before {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };
  const std::size_t depth = std::size_t(state.range(0));
  sim::Rng rng(7);
  sim::FourAryHeap<Ev, Before> heap;
  heap.reserve(depth);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    heap.push(Ev{rng.uniform(0.0, 1.0), seq++});
  }
  double now = 0;
  for (auto _ : state) {
    const Ev ev = heap.pop_min();
    now = ev.t;
    // Re-arm like a sleeping process does: schedule a bit in the future.
    heap.push(Ev{now + rng.uniform(0.0, 0.01), seq++});
    benchmark::DoNotOptimize(heap);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_EventHeapChurn)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

/// End-to-end engine throughput in events/sec: the number every sweep's
/// events_per_sec artifact field should roughly track. A wide machine of
/// independent sleepers keeps the queue deep without channel or resource
/// overhead dominating.
void BM_EngineEventsPerSec(benchmark::State& state) {
  const int tasks = int(state.range(0));
  constexpr int kHops = 64;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine eng;
    for (int t = 0; t < tasks; ++t) eng.spawn(sleeper_chain(eng, kHops));
    events += eng.run();
  }
  state.SetItemsProcessed(std::int64_t(events));
  state.counters["events_per_sec"] = benchmark::Counter(
      double(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineEventsPerSec)->Arg(256)->Arg(4096)->Arg(32768);

/// Sharded-engine throughput on a PHOLD-style topology: mostly-local
/// event churn with a few percent cross-node hops (delay >= lookahead =
/// the MachineParams default link latency, 50us), the regime the
/// conservative window design targets. Args are {nodes, shards};
/// shards=1 is the serial fast path, and BM_EngineEventsPerSec above is
/// the serial coroutine-engine baseline the speedup claim compares
/// against. Sharding wins twice: worker threads process shards in
/// parallel, and each shard's event heap is nodes/shards deep, so every
/// pop sifts through fewer levels — which is why shards well beyond the
/// worker count keep helping. UseRealTime makes events_per_sec an
/// honest wall-clock aggregate (the default CPU-time rate only meters
/// the coordinating thread, which sleeps while workers run).
void BM_ShardedEventsPerSec(benchmark::State& state) {
  const auto nodes = std::uint32_t(state.range(0));
  const auto shards = std::uint32_t(state.range(1));
  constexpr double kLookahead = 50e-6;
  const auto handler = [](sim::ShardContext& ctx, const sim::ShardEvent& ev) {
    if ((ev.payload & 0x1F) == 0) {  // ~3% of events hop to another node
      sim::Rng& rng = ctx.rng();
      const std::uint32_t n = ctx.engine().node_count();
      auto dst = sim::LogicalNode(rng.below(n));
      if (dst == ctx.node()) dst = (dst + 1) % n;
      ctx.send(dst, kLookahead * (1.0 + rng.uniform()), ev.payload + 1);
    } else {
      ctx.post(1.1e-6, ev.payload + 1);
    }
  };
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::ShardedEngine eng(nodes, {.shards = shards, .lookahead = kLookahead},
                           handler);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      eng.inject(n, n, 1e-9 * double(n), n);
    }
    events += eng.run(2e-3);
    benchmark::DoNotOptimize(eng.digest());
  }
  state.SetItemsProcessed(std::int64_t(events));
  state.counters["events_per_sec"] =
      benchmark::Counter(double(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedEventsPerSec)
    ->Args({256, 1})
    ->Args({256, 32})
    ->Args({1024, 1})
    ->Args({1024, 32})
    ->Args({1024, 128})
    ->UseRealTime();

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_RngThroughput);

}  // namespace

int main(int argc, char** argv) {
  return lmas::benchio::run_with_artifact(argc, argv, "micro_sim");
}

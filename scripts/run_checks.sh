#!/usr/bin/env bash
# One-shot pre-commit gate: build + tier-1 tests, then the same tier-1
# suite under ASan/UBSan (separate build tree; sanitizer runs are slower,
# so the long-running property label is left to `ctest -L property`) —
# plus a reduced-case pass of the fault property suites under the
# sanitizers, since degraded-mode delivery (crash/retry/park) is exactly
# where lifetime bugs would hide.
#
# Usage: scripts/run_checks.sh [build-dir] [sanitizer-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SAN_BUILD="${2:-build-san}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/5] configure + build (${BUILD})"
cmake -S . -B "${BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "${JOBS}"

echo "== [2/5] tier-1 tests"
ctest --test-dir "${BUILD}" -L tier1 --output-on-failure

echo "== [3/5] configure + build with sanitizers (${SAN_BUILD})"
cmake -S . -B "${SAN_BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLMAS_SANITIZE=address,undefined
cmake --build "${SAN_BUILD}" -j "${JOBS}"

echo "== [4/5] tier-1 tests under ASan/UBSan"
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "${SAN_BUILD}" -L tier1 --output-on-failure

echo "== [5/5] fault property suites under ASan/UBSan (reduced cases)"
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=1" \
  "${SAN_BUILD}/tools/lmas_check" property --suite fault-conservation --cases 20
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=1" \
  "${SAN_BUILD}/tools/lmas_check" property --suite fault-routing --cases 20

echo "== all checks passed"

#!/usr/bin/env bash
# One-shot pre-commit gate: build + tier-1 tests, then the same tier-1
# suite under ASan/UBSan (separate build tree; sanitizer runs are slower,
# so the long-running property label is left to `ctest -L property`) —
# plus a reduced-case pass of the fault property suites under the
# sanitizers, since degraded-mode delivery (crash/retry/park) is exactly
# where lifetime bugs would hide.
#
# plus a ThreadSanitizer pass over the two places in the tree where
# threads share state: the parallel sweep executor and the sharded
# engine's window loop (shard workers + coordinator outbox routing).
#
# Usage: scripts/run_checks.sh [build-dir] [sanitizer-build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SAN_BUILD="${2:-build-san}"
TSAN_BUILD="${3:-build-tsan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/8] configure + build (${BUILD})"
cmake -S . -B "${BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j "${JOBS}"

echo "== [2/8] tier-1 tests"
ctest --test-dir "${BUILD}" -L tier1 --output-on-failure

echo "== [3/8] configure + build with sanitizers (${SAN_BUILD})"
cmake -S . -B "${SAN_BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLMAS_SANITIZE=address,undefined
cmake --build "${SAN_BUILD}" -j "${JOBS}"

echo "== [4/8] tier-1 tests under ASan/UBSan"
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=1" \
  ctest --test-dir "${SAN_BUILD}" -L tier1 --output-on-failure

echo "== [5/8] fault + load-manager property suites under ASan/UBSan (reduced cases)"
# Degraded-mode delivery (crash/retry/park) and mid-run reconfiguration
# (router hot-swap, functor migration re-pinning live endpoints) are the
# two places lifetime bugs would hide; the tenant suites add concurrent
# jobs sharing one engine (embedded DsmSortJob frames, cross-job manager
# clients attaching and detaching mid-run). topology-conservation runs
# the same embedded jobs on hierarchical TopologySpecs (spine resources,
# per-node speeds), covering the rack/spine charging paths.
# migration-economy drives the budgeted placer with concurrent pre-copy
# transfers under crash schedules — background bulk transfers racing
# instance migration is a fresh lifetime surface.
for suite in fault-conservation fault-routing lm-switch lm-migration \
             tenant-conservation tenant-arrival topology-conservation \
             migration-economy; do
  UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=1" \
    "${SAN_BUILD}/tools/lmas_check" property --suite "${suite}" --cases 20
done

echo "== [6/8] build executor + sharded-engine tests under TSan (${TSAN_BUILD})"
cmake -S . -B "${TSAN_BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLMAS_SANITIZE=thread
cmake --build "${TSAN_BUILD}" -j "${JOBS}" --target par_tests sim_tests

echo "== [7/8] executor tests under TSan (LMAS_JOBS stressed)"
# Run the whole par suite at several jobs counts: the golden digest test
# inside exercises real engine workloads across the pool.
for j in 2 8; do
  TSAN_OPTIONS="halt_on_error=1" LMAS_JOBS="${j}" \
    "${TSAN_BUILD}/tests/par_tests"
done

echo "== [8/8] sharded engine under TSan (worker counts stressed)"
# The conservative-window loop is the other threaded component: shard
# workers own disjoint heaps/node state mid-window, the coordinator
# routes outboxes at barriers (DESIGN.md §14). LMAS_JOBS drives the
# default worker count; the digest-equality tests inside compare
# serial vs multi-shard runs under each pool size.
for j in 2 8; do
  TSAN_OPTIONS="halt_on_error=1" LMAS_JOBS="${j}" \
    "${TSAN_BUILD}/tests/sim_tests" --gtest_filter='ShardMap.*:ShardedEngine.*'
done

echo "== all checks passed"

/// TerraFlow demo (Section 4.1): generate a synthetic terrain, run the
/// watershed pipeline (restructure -> external sort by elevation ->
/// time-forward coloring) and draw the labeled terrain.
///
/// Usage: terraflow_demo [width] [height] [seed]

#include <cstdio>
#include <cstdlib>

#include "gis/gis.hpp"

namespace gis = lmas::gis;

int main(int argc, char** argv) {
  const auto w = std::uint32_t(argc > 1 ? std::atoi(argv[1]) : 56);
  const auto h = std::uint32_t(argc > 2 ? std::atoi(argv[2]) : 24);
  const auto seed = std::uint64_t(argc > 3 ? std::atoll(argv[3]) : 12);

  auto grid = gis::make_fractal(w, h, seed);
  gis::TerraFlowStats st;
  const auto colors = gis::watershed_labels(grid, &st);

  std::printf("terrain %ux%u (seed %llu): %zu cells, %zu watersheds\n", w, h,
              (unsigned long long)seed, st.cells, st.watersheds);
  std::printf("external sort: %zu runs, %zu merge passes; "
              "time-forward messages: %zu (pq spills %zu)\n",
              st.sort.runs_formed, st.sort.merge_passes, st.messages_sent,
              st.pq_spills);

  // Watershed map, one letter per basin.
  std::printf("\nwatersheds:\n");
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const auto c = colors[grid.cell_id(x, y)];
      std::putchar(c < 26 ? char('a' + c) : char('A' + (c - 26) % 26));
    }
    std::putchar('\n');
  }

  // Flow accumulation (the other TerraFlow index): upstream area.
  gis::FlowStats fs;
  const auto area = gis::flow_accumulation(grid, &fs);
  std::uint64_t best_area = 0;
  std::uint32_t best_cell = 0;
  for (std::uint32_t id = 0; id < area.size(); ++id) {
    if (area[id] > best_area) {
      best_area = area[id];
      best_cell = id;
    }
  }
  std::printf("\nflow accumulation: %zu pits; largest catchment drains "
              "%llu of %zu cells (outlet at %u,%u)\n",
              fs.pits, (unsigned long long)best_area, st.cells,
              best_cell % w, best_cell / w);

  // Phase-cost model: where do ASUs help?
  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  const auto m = gis::terraflow_phase_model(mp, 1 << 22, 64);
  std::printf("\nphase model at 4M cells, D=16 (host-seconds):\n");
  std::printf("  step          passive   active(ASUs)\n");
  std::printf("  restructure   %7.3f   %7.3f\n", m.step1_passive,
              m.step1_active);
  std::printf("  sort pass 1   %7.3f   %7.3f\n", m.step2_passive,
              m.step2_active);
  std::printf("  watershed     %7.3f   %7.3f   (sequential either way)\n",
              m.step3, m.step3);
  std::printf("  total         %7.3f   %7.3f   -> speedup %.2fx "
              "(Amdahl-bounded by step 3)\n",
              m.total_passive(), m.total_active(),
              m.total_passive() / m.total_active());
  return 0;
}

/// Skew adaptation demo (Figure 10 in miniature): sort a half-uniform /
/// half-exponential input on two hosts, with static subset partitioning
/// vs. load-managed SR routing, and draw both hosts' CPU utilization over
/// time as ASCII strip charts.
///
/// Usage: skew_adaptation_demo [records]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

namespace {

void strip_chart(const char* label, const std::vector<double>& series) {
  static const char* kShades[] = {" ", ".", ":", "-", "=", "#"};
  std::printf("  %-22s|", label);
  for (double v : series) {
    const int idx = v <= 0 ? 0 : v < 0.2 ? 1 : v < 0.4 ? 2
                    : v < 0.6 ? 3 : v < 0.85 ? 4 : 5;
    std::fputs(kShades[idx], stdout);
  }
  std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
  asu::MachineParams mp;
  mp.num_hosts = 2;
  mp.num_asus = 16;
  mp.util_bin = 0.05;

  core::DsmSortConfig cfg;
  cfg.total_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : (1u << 22);
  cfg.alpha = 16;
  cfg.key_dist = core::KeyDist::HalfUniformHalfExp;

  std::printf("DSM-Sort sort phase on 2 hosts + 16 ASUs, n=%zu\n",
              cfg.total_records);
  std::printf("input: first half uniform keys, second half exponential "
              "(skewed toward low buckets)\n\n");

  for (auto router : {core::RouterKind::Static,
                      core::RouterKind::SimpleRandomization}) {
    cfg.sort_router = router;
    const auto rep = core::run_dsm_sort(mp, cfg);
    std::printf("%s routing: pass 1 = %.2fs, host shares = %zu / %zu "
                "records (checks %s)\n",
                core::router_kind_name(router), rep.pass1_seconds,
                rep.records_sorted_per_host[0],
                rep.records_sorted_per_host[1],
                rep.ok() ? "ok" : "FAILED");
    strip_chart((std::string(rep.hosts[0].node) + " cpu").c_str(),
                rep.hosts[0].series);
    strip_chart((std::string(rep.hosts[1].node) + " cpu").c_str(),
                rep.hosts[1].series);
    std::printf("\n");
  }
  std::printf("static partitioning leaves one host idle once the skewed "
              "half arrives;\nSR keeps both hosts equally busy and "
              "finishes earlier (Figure 10).\n");
  return 0;
}

/// Quickstart: the three layers of the library in one small program.
///
///  1. extmem   — TPIE-style external-memory streams and algorithms.
///  2. core     — the load-managed active storage model: containers with
///                ordering contracts, routing policies, DSM-Sort.
///  3. asu/sim  — the emulated machine the model runs on.

#include <cstdio>

#include "core/core.hpp"
#include "extmem/extmem.hpp"

namespace em = lmas::em;
namespace core = lmas::core;
namespace asu = lmas::asu;

int main() {
  std::printf("== 1. External-memory toolkit ==\n");
  // A stream of the paper's 128-byte records, backed by a temp file: this
  // is a genuinely out-of-core sort, not an in-memory one.
  em::Stream<em::Record128> input(em::make_temp_file_bte());
  lmas::sim::Rng rng(42);
  for (std::uint32_t i = 0; i < 100000; ++i) {
    em::Record128 r;
    r.key = std::uint32_t(rng.next());
    r.id = i;
    input.push_back(r);
  }
  em::Stream<em::Record128> sorted(em::make_temp_file_bte());
  em::SortOptions opt;
  opt.memory_bytes = 1 << 20;  // 1 MiB of "main memory"
  opt.scratch = em::temp_file_bte_factory();
  em::SortStats st;
  em::sort_stream(input, sorted, opt, std::less<em::Record128>{}, &st);
  sorted.rewind();
  std::printf("  sorted %zu records: %zu runs, %zu merge passes, ok=%s\n",
              st.items, st.runs_formed, st.merge_passes,
              em::is_sorted(sorted) ? "yes" : "NO");

  std::printf("\n== 2. Containers with ordering contracts ==\n");
  core::SetContainer<int> set;       // unordered: system may reorder
  core::StreamContainer<int> stream; // ordered: sequence preserved
  for (int i = 0; i < 5; ++i) {
    set.insert(i);
    stream.push_back(i);
  }
  std::printf("  set scan (any order ok):   ");
  while (auto v = set.take_any()) std::printf("%d ", *v);
  std::printf("\n  stream scan (in order):    ");
  while (auto v = stream.take_next()) std::printf("%d ", *v);
  std::printf("\n");

  std::printf("\n== 3. DSM-Sort on an emulated active storage machine ==\n");
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  mp.c = 8;  // ASU processors at 1/8 host speed

  core::DsmSortConfig cfg;
  cfg.total_records = 1 << 20;
  cfg.alpha = core::choose_alpha(mp, cfg, std::array{1u, 4u, 16u, 64u, 256u});
  std::printf("  adaptive choice for D=%u, c=%.0f: alpha=%u (beta=%zu)\n",
              mp.num_asus, mp.c, cfg.alpha, cfg.beta());

  const auto rep = core::run_dsm_sort(mp, cfg);
  cfg.distribute_on_asus = false;
  const auto base = core::run_dsm_sort(mp, cfg);
  std::printf("  pass 1: active %.3fs vs passive %.3fs -> speedup %.2fx\n",
              rep.pass1_seconds, base.pass1_seconds,
              base.pass1_seconds / rep.pass1_seconds);
  std::printf("  checks: runs sorted=%s, buckets=%s, conservation=%s\n",
              rep.runs_sorted_ok ? "ok" : "FAIL",
              rep.subsets_ok ? "ok" : "FAIL",
              rep.checksum_ok ? "ok" : "FAIL");
  return rep.ok() && base.ok() ? 0 : 1;
}

/// DSM-Sort demo: run the configurable distribute/sort/merge program on an
/// emulated active-storage machine and print a full report, including the
/// two-pass (fully sorted) execution.
///
/// Usage: dsm_sort_demo [records] [asus] [hosts] [alpha] [c]

#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;

int main(int argc, char** argv) {
  asu::MachineParams mp;
  core::DsmSortConfig cfg;
  cfg.total_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : (1u << 21);
  mp.num_asus = argc > 2 ? unsigned(std::atoi(argv[2])) : 16;
  mp.num_hosts = argc > 3 ? unsigned(std::atoi(argv[3])) : 2;
  cfg.alpha = argc > 4 ? unsigned(std::atoi(argv[4])) : 16;
  mp.c = argc > 5 ? std::atof(argv[5]) : 8.0;
  cfg.run_merge_pass = true;
  cfg.sort_router = core::RouterKind::SimpleRandomization;

  std::printf("DSM-Sort: n=%zu  D=%u ASUs  H=%u hosts  c=%.0f\n",
              cfg.total_records, mp.num_asus, mp.num_hosts, mp.c);
  std::printf("config:   alpha=%u  beta=%zu  (alpha*beta = 2^%u)\n",
              cfg.alpha, cfg.beta(), cfg.log2_alpha_beta);

  const auto pred = core::predict_pass1(mp, cfg);
  std::printf("predict:  pass1 %.3fs (bottleneck: %s)\n", pred.seconds,
              pred.bottleneck.c_str());

  const auto rep = core::run_dsm_sort(mp, cfg);
  std::printf("\npass 1 (distribute on ASUs, run formation on hosts):\n");
  std::printf("  time %.3fs   runs stored %zu   records %zu\n",
              rep.pass1_seconds, rep.runs_stored, rep.records_stored);
  std::printf("pass 2 (gamma merge split ASUs/hosts):\n");
  std::printf("  time %.3fs   final records %zu   globally sorted: %s\n",
              rep.pass2_seconds, rep.records_final,
              rep.final_sorted_ok ? "yes" : "NO");

  std::printf("\nper-node mean CPU utilization over the %.3fs makespan:\n",
              rep.makespan);
  for (const auto& u : rep.hosts) {
    std::printf("  %-7s %5.1f%%   (sorted %zu records)\n", u.node.c_str(),
                u.mean * 100,
                rep.records_sorted_per_host[&u - rep.hosts.data()]);
  }
  double asu_mean = 0;
  for (const auto& u : rep.asus) asu_mean += u.mean;
  std::printf("  ASUs    %5.1f%%   (mean of %zu units)\n",
              100 * asu_mean / double(rep.asus.size()), rep.asus.size());

  std::printf("\nvalidation: %s\n", rep.ok() ? "all checks passed" : "FAILED");
  return rep.ok() ? 0 : 1;
}

/// Distributed R-tree demo (Section 4.2 / Figure 5): build an STR-packed
/// R-tree over synthetic spatial objects, then compare the two ways of
/// distributing it over ASUs — subtree partitioning vs. leaf striping —
/// under a single query stream and under heavy concurrency.
///
/// Usage: rtree_demo [rects] [asus]

#include <cstdio>
#include <cstdlib>

#include "gis/gis.hpp"

namespace gis = lmas::gis;

int main(int argc, char** argv) {
  const std::size_t rects = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 100000;
  const unsigned asus = argc > 2 ? unsigned(std::atoi(argv[2])) : 16;

  // Centralized tree first.
  auto tree = gis::RTree::bulk_load(gis::make_random_rects(rects, 1));
  std::printf("R-tree over %zu rects: %zu leaves, height %zu\n", tree.size(),
              tree.num_leaves(), tree.height());
  gis::RTree::QueryStats qs;
  auto res = tree.query({0.45f, 0.45f, 0.55f, 0.55f}, &qs);
  std::printf("sample 10%% x 10%% range query: %zu results, %zu internal "
              "nodes + %zu leaves visited\n\n",
              res.size(), qs.internal_visited, qs.leaves_visited);

  lmas::asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = asus;

  auto show = [&](const char* label, const gis::RTreeSimConfig& cfg) {
    gis::RTreeSimConfig c = cfg;
    std::printf("%s\n", label);
    std::printf("  %-10s %12s %12s %10s %8s\n", "layout", "mean lat(us)",
                "max lat(us)", "qps", "asus/q");
    for (auto layout :
         {gis::RTreeLayout::Partition, gis::RTreeLayout::Stripe,
          gis::RTreeLayout::Hybrid}) {
      c.layout = layout;
      const auto r = gis::run_rtree_sim(mp, c);
      std::printf("  %-10s %12.0f %12.0f %10.0f %8.1f   oracle:%s\n",
                  gis::rtree_layout_name(layout), r.mean_latency * 1e6,
                  r.max_latency * 1e6, r.throughput_qps,
                  r.mean_asus_per_query,
                  r.results_match_oracle ? "ok" : "FAIL");
    }
  };

  gis::RTreeSimConfig lat;
  lat.num_rects = rects;
  lat.clients = 1;
  lat.queries_per_client = 64;
  lat.query_extent = 0.08f;
  show("one client, large range queries (latency-bound):", lat);

  gis::RTreeSimConfig thr;
  thr.num_rects = rects;
  thr.clients = 32;
  thr.queries_per_client = 8;
  thr.query_extent = 0.01f;
  show("\n32 concurrent clients, small queries (throughput-bound):", thr);

  std::printf("\nstriping bounds single-query latency; partitioning spreads "
              "concurrent searches;\nthe replicated hybrid adds load-aware "
              "replica choice (Figure 5).\n");
  return 0;
}

/// Active scan example: the classic active-storage workloads (filter and
/// aggregation, Section 2) written against the functor-program API. The
/// same program is run twice — functors placed on the ASUs vs. on the
/// host — to show the data-movement and makespan effect of pushing
/// bounded computation into the storage tier.

#include <cstdio>
#include <memory>

#include "asu/asu.hpp"
#include "core/core.hpp"

namespace core = lmas::core;
namespace asu = lmas::asu;
namespace sim = lmas::sim;

namespace {

core::SourceFn make_source(std::size_t packets_per_asu,
                           std::size_t records_per_packet) {
  auto emitted = std::make_shared<std::vector<std::size_t>>(64, 0);
  auto rngs = std::make_shared<std::vector<sim::Rng>>();
  for (int i = 0; i < 64; ++i) rngs->emplace_back(1000 + i);
  return [=](unsigned instance, core::Packet& out) {
    if ((*emitted)[instance] >= packets_per_asu) return false;
    ++(*emitted)[instance];
    for (std::size_t i = 0; i < records_per_packet; ++i) {
      out.records.push_back(
          {std::uint32_t((*rngs)[instance].next()), instance});
    }
    return true;
  };
}

struct RunResult {
  double makespan;
  std::uint64_t records_over_network;
  std::size_t survivors;
};

RunResult run_filter(bool on_asus) {
  sim::Engine eng;
  asu::MachineParams mp;
  mp.num_hosts = 1;
  mp.num_asus = 16;
  asu::Cluster cluster(eng, mp);

  std::vector<asu::Node*> asus;
  for (unsigned i = 0; i < mp.num_asus; ++i) asus.push_back(&cluster.asu(i));
  std::vector<asu::Node*> host = {&cluster.host(0)};

  core::Program prog(cluster);
  prog.set_source("scan", asus, make_source(64, 512));
  const core::FunctorCost filter_cost{60e-9, 1e-6};
  prog.add_stage({.name = "filter",
                  .make =
                      [&](unsigned) {
                        return std::make_unique<core::FilterFunctor>(
                            [](const lmas::em::KeyRecord& r) {
                              return (r.key & 0xff) == 0;  // 1/256 kept
                            },
                            filter_cost);
                      },
                  .placement = on_asus ? asus : host});
  prog.add_stage({.name = "collect",
                  .make = [&](unsigned) {
                    return std::make_unique<core::MapFunctor>(
                        [](const lmas::em::KeyRecord& r) { return r; },
                        core::FunctorCost{20e-9, 0});
                  },
                  .placement = host});
  auto stats = prog.run();

  RunResult rr{};
  rr.makespan = stats.makespan;
  // Records that crossed the interconnect = input of the first stage
  // placed on the host.
  rr.records_over_network =
      on_asus ? stats.stages[2].records_in : stats.stages[1].records_in;
  for (const auto& p : stats.sink_output) rr.survivors += p.records.size();
  return rr;
}

}  // namespace

int main() {
  std::printf("Active scan: filter 1/256 selectivity over 16 ASUs' data "
              "(512k records)\n\n");
  const auto host_side = run_filter(/*on_asus=*/false);
  const auto asu_side = run_filter(/*on_asus=*/true);

  std::printf("%-18s %12s %22s %12s\n", "placement", "makespan",
              "records over network", "survivors");
  std::printf("%-18s %11.3fs %22llu %12zu\n", "filter@host",
              host_side.makespan,
              (unsigned long long)host_side.records_over_network,
              host_side.survivors);
  std::printf("%-18s %11.3fs %22llu %12zu\n", "filter@asu",
              asu_side.makespan,
              (unsigned long long)asu_side.records_over_network,
              asu_side.survivors);

  if (asu_side.survivors != host_side.survivors) {
    std::printf("\nERROR: placements disagree on the result!\n");
    return 1;
  }
  std::printf("\nsame result, %.0fx less interconnect traffic and %.2fx "
              "faster with the filter at the ASUs\n",
              double(host_side.records_over_network) /
                  double(asu_side.records_over_network),
              host_side.makespan / asu_side.makespan);
  return 0;
}

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace lmas::par {

/// Worker count for a sweep: the LMAS_JOBS environment variable when it
/// parses to a positive integer, otherwise std::thread::hardware_concurrency
/// (never less than 1). Read once per call so tests can vary the env.
[[nodiscard]] unsigned default_jobs();

/// Deterministic fixed-pool executor for embarrassingly parallel sweeps.
///
/// Design constraints (DESIGN.md §10):
///  - Work-stealing-free: a batch is a contiguous index range [0, n);
///    workers claim indices from a single shared cursor in submission
///    order. Which *thread* runs a cell is timing-dependent; which *slot*
///    a result lands in never is.
///  - One self-contained simulation per cell: the executor shares no
///    mutable state between cells, so serial (jobs=1) and parallel runs
///    of the same cells produce bit-identical results.
///  - jobs=1 runs the batch inline on the calling thread — the serial
///    path is literally a for loop, with no thread machinery to trust.
///  - jobs counts the calling thread: the pool holds jobs-1 threads and
///    for_each_index's caller claims indices alongside them, so a
///    batch never oversubscribes the machine with an idle coordinator.
///
/// One batch at a time: for_each_index() is not reentrant and the
/// executor is not meant to be shared across threads.
class Executor {
 public:
  explicit Executor(unsigned jobs = default_jobs());
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Run body(0) .. body(n-1) across the pool and block until all
  /// complete. If bodies throw, the exception thrown by the lowest index
  /// is rethrown here after the batch fully drains (no detached work).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // null when jobs_ == 1 (inline mode)
  unsigned jobs_;
};

/// Map fn over [0, n): results land in submission order (out[i] is
/// fn(i)), regardless of the thread interleaving that produced them.
/// Result must be default-constructible and movable.
template <class Result, class Fn>
[[nodiscard]] std::vector<Result> map_ordered(Executor& ex, std::size_t n,
                                              Fn&& fn) {
  std::vector<Result> out(n);
  ex.for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace lmas::par

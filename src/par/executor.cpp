#include "par/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace lmas::par {

unsigned default_jobs() {
  if (const char* e = std::getenv("LMAS_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(e, &end, 10);
    if (end != e && *end == '\0' && v >= 1 && v <= 1u << 16) {
      return unsigned(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

namespace {

/// One published batch. Workers snapshot a shared_ptr to it under the
/// pool mutex, then claim indices lock-free from `next`; a worker still
/// holding a drained batch can only observe n exhausted — it can never
/// claim into a newer batch through a stale pointer, which is what keeps
/// the pool race-free across back-to-back sweeps.
struct Batch {
  const std::function<void(std::size_t)>* body = nullptr;
  std::vector<std::exception_ptr>* errors = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
};

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Bounded spin before parking on a condition variable. A futex
/// sleep/wake round-trip costs ~100µs+ on the machines we run on; a
/// windowed simulation publishes a new batch every few hundred µs, so
/// spinning for a fraction of that keeps the pool hot across
/// back-to-back batches while still sleeping through long idle gaps.
constexpr int kSpinIters = 16384;

}  // namespace

struct Executor::Impl {
  std::mutex mu;
  std::condition_variable wake;  // workers: new batch or shutdown
  std::condition_variable done;  // caller: batch drained
  std::atomic<std::uint64_t> generation{0};  // written under mu
  bool stop = false;
  std::atomic<bool> batch_done{false};  // written under mu
  std::shared_ptr<Batch> current;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      // Spin-then-park: if the next batch lands within the spin budget
      // the condvar predicate is already true when we reach wait() and
      // no sleep (hence no expensive wake) happens.
      for (int spin = 0; spin < kSpinIters; ++spin) {
        if (generation.load(std::memory_order_acquire) != seen) break;
        cpu_relax();
      }
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock lock(mu);
        wake.wait(lock, [&] {
          return stop || generation.load(std::memory_order_relaxed) != seen;
        });
        if (stop) return;
        seen = generation.load(std::memory_order_relaxed);
        batch = current;
      }
      // `current` may already be null: if the batch drained before this
      // worker woke, the caller has reset it. The generation was still
      // consumed, so just go back to sleep.
      if (batch) run_slice(*batch);
    }
  }

  void run_slice(Batch& b) {
    for (;;) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.n) break;
      try {
        (*b.body)(i);
      } catch (...) {
        (*b.errors)[i] = std::current_exception();
      }
      if (b.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(mu);
        batch_done.store(true, std::memory_order_release);
        done.notify_all();
      }
    }
  }
};

Executor::Executor(unsigned jobs) : jobs_(jobs ? jobs : 1) {
  if (jobs_ == 1) return;
  // The calling thread participates in every batch (it claims indices in
  // for_each_index like any worker), so a pool of jobs-1 threads gives
  // exactly `jobs` runners without oversubscribing the machine.
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

Executor::~Executor() {
  if (!impl_) return;
  {
    std::lock_guard lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void Executor::for_each_index(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (!impl_) {
    // Serial mode: indices in order on the calling thread; a throw
    // propagates directly (nothing is in flight behind it).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->errors = &errors;
  batch->n = n;
  batch->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->mu);
    impl_->current = batch;
    impl_->batch_done.store(false, std::memory_order_relaxed);
    impl_->generation.fetch_add(1, std::memory_order_release);
  }
  impl_->wake.notify_all();
  // The caller is a runner too: claim indices alongside the pool instead
  // of sleeping through the batch.
  impl_->run_slice(*batch);
  // Only workers still draining their last claimed index remain; spin
  // briefly for that tail before paying a condvar sleep.
  for (int spin = 0; spin < kSpinIters; ++spin) {
    if (impl_->batch_done.load(std::memory_order_acquire)) break;
    cpu_relax();
  }
  {
    std::unique_lock lock(impl_->mu);
    impl_->done.wait(lock, [&] {
      return impl_->batch_done.load(std::memory_order_relaxed);
    });
    impl_->current.reset();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace lmas::par

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "asu/params.hpp"
#include "core/dsm_sort.hpp"
#include "core/load_manager.hpp"
#include "fault/plan.hpp"
#include "obs/json.hpp"
#include "sim/random.hpp"

namespace lmas::tenant {

/// The job shapes a tenant can submit. DsmSort runs the full embedded
/// two-stage pipeline (core::DsmSortJob); ActiveScan streams every ASU's
/// local share through a selective filter and reduces the survivors on a
/// host; RTreeBulkLoad sorts on a host (STR-style) and ships leaf pages
/// round-robin onto ASU disks.
enum class JobKind { DsmSort, ActiveScan, RTreeBulkLoad };

[[nodiscard]] const char* job_kind_name(JobKind k) noexcept;

/// One entry of a tenant's workload mix: a job shape, its relative draw
/// weight within the tenant, and the record count per submitted job.
struct JobMixEntry {
  JobKind kind = JobKind::DsmSort;
  double weight = 1.0;
  std::size_t records = std::size_t(1) << 14;
};

/// One tenant of the shared cluster. fair_share_weight scales every
/// job's CPU + wire charges at 1/weight (see DsmSortConfig); a weight of
/// 0 or less is rejected at construction. arrival_weight biases which
/// tenant each open-arrival draw lands on. An empty mix defaults to one
/// DsmSort entry.
struct TenantSpec {
  std::string name;
  double fair_share_weight = 1.0;
  double arrival_weight = 1.0;
  std::vector<JobMixEntry> mix;
};

/// Configuration of one multi-tenant serving run: the tenant set, the
/// seeded open-arrival process, the admission controller's caps, and the
/// (optional) cross-job load-management layer.
struct TenancyConfig {
  std::vector<TenantSpec> tenants;

  /// Open-arrival intensity, jobs per sim second (exponential
  /// inter-arrival times from the "tenant.arrivals" named stream).
  double offered_rate = 1.0;

  /// Jobs generated in total (the run ends when all have completed).
  std::size_t total_jobs = 8;

  std::uint64_t seed = 42;

  /// Admission controller: at most this many jobs in flight at once.
  std::size_t max_in_flight = 4;

  /// Admission controller: when > 0, an arrival additionally waits while
  /// the published mean per-node CPU backlog (host + ASU pressure)
  /// exceeds this many seconds. A job is always admitted when nothing is
  /// in flight, so the gate cannot deadlock an idle cluster. 0 disables
  /// the pressure gate (max_in_flight still applies).
  double pressure_limit = 0;

  /// Cross-job load management. Off = unmanaged (no monitor, manager, or
  /// lm.* metrics — the comparison baseline). Manage = one shared
  /// LoadMonitor plus a LoadManager arbitrating promote/demote and
  /// migration across every in-flight job (one client per job, labeled
  /// by tenant so lm.<tenant>.* counters aggregate per tenant).
  core::LoadManagerConfig load_manager;

  /// Register dsm.job_seconds and per-tenant dsm.job_seconds.<name>
  /// completion histograms (arrival → completion, admission wait
  /// included). On by default: tail latency is the product here.
  bool telemetry_histograms = true;

  /// Cluster-level fault timeline, injected once by the scheduler (jobs
  /// inherit only the retry contract). Empty = no injector spawned.
  fault::FaultPlan faults;

  /// Chrome-trace export path ("" = tracing off).
  std::string trace_file;

  /// Shape of submitted DSM-Sort jobs (kept small: many concurrent jobs,
  /// not one big one).
  unsigned job_alpha = 8;
  unsigned job_log2_alpha_beta = 10;
};

/// One pre-generated arrival: when, who, what. job_seed derives from the
/// run seed and the arrival index (not from RNG draws), so every job is
/// reproducible in isolation.
struct ArrivalEvent {
  double time = 0;
  std::size_t tenant = 0;
  JobKind kind = JobKind::DsmSort;
  std::size_t records = 0;
  std::uint64_t job_seed = 0;
};

/// The seeded open-arrival schedule, generated eagerly at construction
/// from the "tenant.arrivals" named stream: exponential inter-arrivals
/// at offered_rate, tenant picked by arrival_weight, job shape picked by
/// mix weight. Deterministic — same config + seed reproduces the same
/// schedule (and fingerprint()) exactly, which is the determinism
/// contract the tenant-arrival property suite pins.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const TenancyConfig& cfg);

  [[nodiscard]] const std::vector<ArrivalEvent>& events() const noexcept {
    return events_;
  }

  /// Order-sensitive fold over the full schedule (times, tenants, kinds,
  /// sizes, seeds): two schedules are the same iff fingerprints match,
  /// up to hash collision.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  std::vector<ArrivalEvent> events_;
};

/// Per-tenant outcome block of a tenancy run.
struct TenantStats {
  std::string name;
  std::size_t jobs_completed = 0;
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  bool conservation_ok = true;
  /// Job completion time (arrival → done, admission wait included).
  double mean_job_seconds = 0;
  double p50_job_seconds = 0;
  double p99_job_seconds = 0;
  std::uint64_t lm_migrations = 0;
  std::uint64_t lm_router_switches = 0;
};

struct TenancyReport {
  double makespan = 0;
  double goodput_jobs_per_sec = 0;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  /// Jobs that waited in the admission queue (cap or pressure gate).
  std::size_t admission_waits = 0;

  bool conservation_ok = true;  ///< AND over every job's own check

  double mean_job_seconds = 0;
  double p50_job_seconds = 0;
  double p99_job_seconds = 0;

  std::vector<TenantStats> tenants;

  std::uint64_t lm_migrations = 0;
  std::uint64_t lm_router_switches = 0;
  std::vector<core::LoadManagerEvent> lm_events;
  /// Structured placer journal of the shared cross-job arbiter (one
  /// entry per planned move, labeled by tenant); empty when unmanaged.
  /// lm_managed mirrors whether a manager existed (config-driven), so
  /// the serialized `placer` block's presence never depends on runtime
  /// state.
  bool lm_managed = false;
  std::vector<core::PlacerDecision> lm_decisions;

  obs::Json metrics;
  obs::Json histograms;
  std::uint64_t sim_events = 0;
  std::uint64_t digest = 0;
  std::uint64_t arrival_fingerprint = 0;

  [[nodiscard]] bool ok() const noexcept {
    return conservation_ok && jobs_completed == jobs_submitted;
  }
};

/// Run one multi-tenant serving experiment: N concurrent jobs on one
/// simulated cluster, seeded open arrivals, admission control, fair-share
/// charging, and (when configured) cross-job load management. Throws
/// std::invalid_argument at construction time for a tenant fair-share or
/// arrival weight <= 0, a non-positive mix weight, a zero offered rate
/// with jobs to place, or total_jobs > 0 with no tenants.
TenancyReport run_tenancy(const asu::MachineParams& machine,
                          const TenancyConfig& cfg);

/// Serialize for a BENCH_*.json artifact (same conventions as
/// dsm_report_to_json: telemetry blocks present iff configured on).
[[nodiscard]] obs::Json tenancy_report_to_json(const TenancyReport& rep);

}  // namespace lmas::tenant

#include "tenant/tenant.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <stdexcept>
#include <utility>

#include "asu/asu.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"
#include "sim/sim.hpp"

namespace lmas::tenant {

namespace {

namespace sim = lmas::sim;
namespace asu_ns = lmas::asu;

/// Default mix for a tenant that declared none.
const std::vector<JobMixEntry>& default_mix() {
  static const std::vector<JobMixEntry> kMix = {JobMixEntry{}};
  return kMix;
}

const std::vector<JobMixEntry>& mix_of(const TenantSpec& ts) {
  return ts.mix.empty() ? default_mix() : ts.mix;
}

/// Construction-time rejection of malformed configs (the regression
/// suite pins the weight-of-zero case). Shared by ArrivalProcess and
/// the scheduler so both entry points fail identically.
void validate_config(const TenancyConfig& cfg) {
  if (cfg.total_jobs > 0 && cfg.tenants.empty()) {
    throw std::invalid_argument(
        "TenancyConfig: total_jobs > 0 requires at least one tenant");
  }
  if (cfg.total_jobs > 0 && !(cfg.offered_rate > 0)) {
    throw std::invalid_argument(
        "TenancyConfig.offered_rate must be > 0 when jobs arrive");
  }
  if (cfg.max_in_flight == 0) {
    throw std::invalid_argument("TenancyConfig.max_in_flight must be >= 1");
  }
  for (const auto& ts : cfg.tenants) {
    if (!(ts.fair_share_weight > 0)) {
      throw std::invalid_argument("TenantSpec '" + ts.name +
                                  "': fair_share_weight must be > 0");
    }
    if (!(ts.arrival_weight > 0)) {
      throw std::invalid_argument("TenantSpec '" + ts.name +
                                  "': arrival_weight must be > 0");
    }
    for (const auto& m : ts.mix) {
      if (!(m.weight > 0)) {
        throw std::invalid_argument("TenantSpec '" + ts.name +
                                    "': mix weight must be > 0");
      }
      if (m.records == 0) {
        throw std::invalid_argument("TenantSpec '" + ts.name +
                                    "': mix records must be >= 1");
      }
    }
  }
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "<none>" : out;
}

std::uint64_t fold64(std::uint64_t h, std::uint64_t v) noexcept {
  return sim::splitmix64_once(h ^ v);
}

}  // namespace

const char* job_kind_name(JobKind k) noexcept {
  switch (k) {
    case JobKind::DsmSort: return "dsm-sort";
    case JobKind::ActiveScan: return "active-scan";
    case JobKind::RTreeBulkLoad: return "rtree-bulk-load";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(const TenancyConfig& cfg) {
  validate_config(cfg);
  if (cfg.total_jobs == 0 || cfg.tenants.empty()) return;

  double total_aw = 0;
  for (const auto& ts : cfg.tenants) total_aw += ts.arrival_weight;

  auto rng = sim::Rng(cfg.seed).stream(sim::stream_id("tenant.arrivals"));
  double t = 0;
  events_.reserve(cfg.total_jobs);
  for (std::size_t i = 0; i < cfg.total_jobs; ++i) {
    t += rng.exponential(cfg.offered_rate);

    // Tenant by arrival weight, then shape by mix weight: two uniform
    // draws per arrival, always consumed in the same order — the draw
    // count never depends on the outcome, so schedules with the same
    // seed are identical element-for-element.
    double u = rng.uniform() * total_aw;
    std::size_t tenant = 0;
    for (; tenant + 1 < cfg.tenants.size(); ++tenant) {
      u -= cfg.tenants[tenant].arrival_weight;
      if (u < 0) break;
    }
    const auto& mix = mix_of(cfg.tenants[tenant]);
    double total_mw = 0;
    for (const auto& m : mix) total_mw += m.weight;
    double v = rng.uniform() * total_mw;
    std::size_t entry = 0;
    for (; entry + 1 < mix.size(); ++entry) {
      v -= mix[entry].weight;
      if (v < 0) break;
    }

    ArrivalEvent ev;
    ev.time = t;
    ev.tenant = tenant;
    ev.kind = mix[entry].kind;
    ev.records = mix[entry].records;
    // Derived, not drawn: re-running job i standalone needs only the run
    // seed and the index.
    ev.job_seed = cfg.seed ^ sim::stream_id("tenant.job", i);
    events_.push_back(ev);
  }
}

std::uint64_t ArrivalProcess::fingerprint() const noexcept {
  std::uint64_t h = sim::stream_id("tenant.fingerprint", events_.size());
  for (const auto& ev : events_) {
    h = fold64(h, std::bit_cast<std::uint64_t>(ev.time));
    h = fold64(h, ev.tenant);
    h = fold64(h, std::uint64_t(ev.kind));
    h = fold64(h, ev.records);
    h = fold64(h, ev.job_seed);
  }
  return h;
}

namespace {

/// What one finished job reports back to the scheduler.
struct JobOutcome {
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  bool conservation_ok = false;
};

/// Join state for a job's fan-out across ASUs (scan shards, leaf-page
/// writers): the parent waits on the condition until every shard counts
/// itself done. Lives in the parent coroutine's frame; the parent only
/// returns after the last shard has finished, so the pointer the shards
/// hold never dangles.
struct FanState {
  explicit FanState(sim::Engine& eng) : cv(eng) {}
  std::size_t done = 0;
  std::size_t processed = 0;
  sim::Condition cv;
};

/// The cluster-level scheduler behind run_tenancy: owns the engine and
/// cluster, drives admission off the pre-generated arrival schedule,
/// launches per-tenant jobs, and (when managed) runs the shared
/// monitor + cross-job LoadManager.
class TenantScheduler {
 public:
  TenantScheduler(const asu_ns::MachineParams& machine,
                  const TenancyConfig& cfg)
      : mp_(machine),
        cfg_(cfg),
        cluster_(eng_, machine),
        d_(machine.num_asus),
        h_(machine.num_hosts),
        arrivals_(cfg),  // validates cfg
        job_done_(eng_) {}

  TenancyReport run() {
    if (!cfg_.trace_file.empty()) eng_.tracer().enable();
    accum_.assign(cfg_.tenants.size(), TenantAccum{});

    if (cfg_.telemetry_histograms) {
      job_hist_ = &eng_.metrics().latency("dsm.job_seconds");
      for (const auto& ts : cfg_.tenants) {
        tenant_hists_.push_back(
            &eng_.metrics().latency("dsm.job_seconds." + ts.name));
      }
    }

    if (!cfg_.faults.empty()) {
      injector_ = std::make_unique<fault::FaultInjector>(
          cluster_, cfg_.faults,
          sim::Rng(cfg_.seed).stream(sim::stream_id("faults")));
      eng_.spawn(injector_->run(), "fault-injector");
    }

    // Shared management layer: one monitor feeding one cross-job
    // manager. stop_when_idle=false — quiescent gaps between arrivals
    // are normal in an open-arrival run — so the last job completion
    // must request_stop() or the monitor would tick forever.
    if (cfg_.load_manager.mode != core::LoadManagerMode::Off &&
        !arrivals_.events().empty()) {
      monitor_ = std::make_unique<core::LoadMonitor>(
          cluster_, cfg_.load_manager.period);
      if (cfg_.load_manager.mode == core::LoadManagerMode::Manage) {
        manager_ =
            std::make_unique<core::LoadManager>(eng_, cfg_.load_manager);
        monitor_->set_observer(
            [this](const core::LoadSample& s) { manager_->on_sample(s); });
        // Pre-register the per-tenant counters so they exist (at zero)
        // even for tenants whose jobs never trigger an action — the
        // artifact then has a stable shape across cells.
        for (const auto& ts : cfg_.tenants) {
          tenant_migrations_.push_back(
              &eng_.metrics().counter("lm." + ts.name + ".migrations"));
          tenant_switches_.push_back(
              &eng_.metrics().counter("lm." + ts.name + ".router_switches"));
        }
      }
      monitor_->start(cfg_.load_manager.max_samples,
                      /*stop_when_idle=*/false);
    }

    if (!arrivals_.events().empty()) {
      eng_.spawn(admission(), "tenant-admission");
    }
    eng_.run();
    if (eng_.unfinished_tasks() != 0) {
      throw std::logic_error("tenancy run deadlocked; unfinished: " +
                             join_names(eng_.unfinished_task_names()));
    }
    return assemble();
  }

 private:
  struct TenantAccum {
    std::size_t jobs = 0;
    std::size_t records_in = 0;
    std::size_t records_out = 0;
    bool conservation_ok = true;
  };

  /// Published pressure: mean per-node CPU backlog (seconds of queued
  /// work) across hosts and ASUs — the aggregate signal the admission
  /// gate compares against pressure_limit.
  [[nodiscard]] double pressure() {
    double total = 0;
    for (unsigned i = 0; i < h_; ++i) total += cluster_.host(i).cpu().backlog();
    for (unsigned a = 0; a < d_; ++a) total += cluster_.asu(a).cpu().backlog();
    return total / double(h_ + d_);
  }

  /// Arrival + admission in one process: walk the pre-generated schedule
  /// in time order; each arrival is admitted once the in-flight cap and
  /// the pressure gate allow. A job with nothing in flight is always
  /// admitted (progress guarantee: the gate can defer, never starve).
  sim::Task<> admission() {
    const auto& events = arrivals_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const ArrivalEvent& ev = events[i];
      if (ev.time > eng_.now()) co_await eng_.sleep(ev.time - eng_.now());
      bool waited = false;
      while (in_flight_ >= cfg_.max_in_flight ||
             (in_flight_ > 0 && cfg_.pressure_limit > 0 &&
              pressure() > cfg_.pressure_limit)) {
        waited = true;
        co_await job_done_.wait();
      }
      if (waited) ++admission_waits_;
      ++in_flight_;
      ++jobs_submitted_;
      const std::string label =
          cfg_.tenants[ev.tenant].name + ".j" + std::to_string(i);
      eng_.spawn(run_job(ev, label), label);
    }
  }

  sim::Task<> run_job(ArrivalEvent ev, std::string label) {
    const TenantSpec& ts = cfg_.tenants[ev.tenant];
    JobOutcome out;
    switch (ev.kind) {
      case JobKind::DsmSort:
        co_await run_dsm_job(ev, ts, label, out);
        break;
      case JobKind::ActiveScan:
        co_await run_scan_job(ev, ts, label, out);
        break;
      case JobKind::RTreeBulkLoad:
        co_await run_bulk_load_job(ev, ts, label, out);
        break;
    }
    // Completion time includes the admission wait: arrival → done is
    // what a tenant experiences, and what the fig_tenancy tail reports.
    const double completion = eng_.now() - ev.time;
    if (job_hist_ != nullptr) job_hist_->observe(completion);
    if (!tenant_hists_.empty()) tenant_hists_[ev.tenant]->observe(completion);
    TenantAccum& acc = accum_[ev.tenant];
    acc.jobs += 1;
    acc.records_in += out.records_in;
    acc.records_out += out.records_out;
    acc.conservation_ok = acc.conservation_ok && out.conservation_ok;
    --in_flight_;
    ++jobs_completed_;
    if (jobs_completed_ == arrivals_.events().size() && monitor_) {
      monitor_->request_stop();
    }
    job_done_.notify_all();
  }

  sim::Task<> run_dsm_job(const ArrivalEvent& ev, const TenantSpec& ts,
                          const std::string& label, JobOutcome& out) {
    core::DsmSortConfig jc;
    jc.total_records = ev.records;
    jc.alpha = cfg_.job_alpha;
    jc.log2_alpha_beta = cfg_.job_log2_alpha_beta;
    jc.key_dist = core::KeyDist::HalfUniformHalfExp;
    jc.sort_router = core::RouterKind::Static;
    jc.seed = ev.job_seed;
    jc.label = label;
    jc.fair_share_weight = ts.fair_share_weight;
    // The retry contract rides along; the injector does not (the
    // scheduler owns the cluster's one fault timeline).
    jc.faults = cfg_.faults;
    // Build hint: Manage makes the job construct its SwitchableRouter so
    // the shared manager has something to promote/demote. The job never
    // constructs its own monitor/manager in embedded mode.
    jc.load_manager = cfg_.load_manager;

    core::DsmSortJob job(eng_, cluster_, jc);
    std::size_t client = 0;
    if (manager_ != nullptr) {
      // Clients are labeled by TENANT (not job), so lm.<tenant>.*
      // counters aggregate a tenant's jobs and journal lines read as
      // "alice: plan migrate ...".
      client = manager_->add_client(ts.name);
      if (job.switch_router() != nullptr) {
        manager_->client_router(client, job.switch_router());
      }
      if (cfg_.load_manager.migration) {
        manager_->client_instances(client, job.sort_placement(),
                                   job.sort_placement());
      }
      job.set_external_manager(manager_.get(), client);
    }
    co_await job.body();
    if (manager_ != nullptr) manager_->remove_client(client);
    const core::DsmSortReport& r = job.report();
    out.records_in = r.records_in;
    out.records_out = r.records_stored;
    out.conservation_ok = r.ok();
  }

  /// Active scan: every ASU streams its local share off disk through a
  /// selective filter (the paper's filter functor — bounded per-record
  /// cost, safe on shared ASUs), ships survivors to one host, which
  /// reduces them. Deterministic 1/16 selectivity keeps the record
  /// accounting exact.
  sim::Task<> run_scan_job(const ArrivalEvent& ev, const TenantSpec& ts,
                           const std::string& label, JobOutcome& out) {
    const std::size_t n = ev.records;
    asu_ns::Node* host = &cluster_.host(unsigned(ev.job_seed % h_));
    const double w = 1.0 / ts.fair_share_weight;
    FanState st(eng_);
    std::size_t assigned = 0;
    for (unsigned a = 0; a < d_; ++a) {
      const std::size_t share = n / d_ + (a < n % d_ ? 1 : 0);
      assigned += share;
      eng_.spawn(scan_shard(a, share, share / 16, host, w, &st),
                 label + ".scan" + std::to_string(a));
    }
    while (st.done < d_) co_await st.cv.wait();
    eng_.metrics().counter(label + ".scan.records").inc(st.processed);
    out.records_in = n;
    out.records_out = st.processed;
    out.conservation_ok = st.processed == n && assigned == n;
  }

  sim::Task<> scan_shard(unsigned a, std::size_t share, std::size_t selected,
                         asu_ns::Node* host, double w, FanState* st) {
    asu_ns::Node& node = cluster_.asu(a);
    if (share > 0) {
      while (!node.running()) co_await node.health_wait();
      co_await node.disk().read(share * mp_.record_bytes);
      co_await node.compute(w * double(share) *
                            mp_.cost.scan_per_record(/*on_asu=*/true));
      if (selected > 0) {
        co_await cluster_.network().transfer(node, *host,
                                             selected * mp_.record_bytes);
        co_await host->compute(w * double(selected) *
                               mp_.cost.host_handling);
      }
    }
    st->processed += share;
    st->done += 1;
    st->cv.notify_all();
  }

  /// R-tree bulk load, STR-style: sort the entries on a host (two
  /// passes: order by one axis, tile by the other), pack leaf pages,
  /// stripe them across the ASUs' disks.
  sim::Task<> run_bulk_load_job(const ArrivalEvent& ev, const TenantSpec& ts,
                                const std::string& label, JobOutcome& out) {
    const std::size_t n = ev.records;
    asu_ns::Node* host = &cluster_.host(unsigned(ev.job_seed % h_));
    const double w = 1.0 / ts.fair_share_weight;
    while (!host->running()) co_await host->health_wait();
    co_await host->compute(
        w * 2.0 * double(n) *
        mp_.cost.sort_per_record(std::max<std::size_t>(n, 2),
                                 /*on_asu=*/false));
    FanState st(eng_);
    std::size_t assigned = 0;
    for (unsigned a = 0; a < d_; ++a) {
      const std::size_t share = n / d_ + (a < n % d_ ? 1 : 0);
      assigned += share;
      eng_.spawn(load_shard(a, share, host, w, &st),
                 label + ".load" + std::to_string(a));
    }
    while (st.done < d_) co_await st.cv.wait();
    eng_.metrics().counter(label + ".load.records").inc(st.processed);
    out.records_in = n;
    out.records_out = st.processed;
    out.conservation_ok = st.processed == n && assigned == n;
  }

  sim::Task<> load_shard(unsigned a, std::size_t share, asu_ns::Node* host,
                         double w, FanState* st) {
    asu_ns::Node& node = cluster_.asu(a);
    if (share > 0) {
      while (!node.running()) co_await node.health_wait();
      const std::size_t bytes = share * mp_.record_bytes;
      co_await host->nic_transfer(bytes, w);
      co_await cluster_.network().transfer(*host, node, bytes);
      co_await node.disk().write(bytes);
    }
    st->processed += share;
    st->done += 1;
    st->cv.notify_all();
  }

  TenancyReport assemble() {
    TenancyReport rep;
    rep.makespan = eng_.now();
    rep.jobs_submitted = jobs_submitted_;
    rep.jobs_completed = jobs_completed_;
    rep.admission_waits = admission_waits_;
    rep.goodput_jobs_per_sec =
        rep.makespan > 0 ? double(jobs_completed_) / rep.makespan : 0;
    if (job_hist_ != nullptr) {
      rep.mean_job_seconds = job_hist_->mean();
      rep.p50_job_seconds = job_hist_->quantile(0.5);
      rep.p99_job_seconds = job_hist_->quantile(0.99);
    }
    rep.conservation_ok = true;
    for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
      TenantStats st;
      st.name = cfg_.tenants[t].name;
      st.jobs_completed = accum_[t].jobs;
      st.records_in = accum_[t].records_in;
      st.records_out = accum_[t].records_out;
      st.conservation_ok = accum_[t].conservation_ok;
      rep.conservation_ok = rep.conservation_ok && st.conservation_ok;
      if (!tenant_hists_.empty()) {
        st.mean_job_seconds = tenant_hists_[t]->mean();
        st.p50_job_seconds = tenant_hists_[t]->quantile(0.5);
        st.p99_job_seconds = tenant_hists_[t]->quantile(0.99);
      }
      if (!tenant_migrations_.empty()) {
        st.lm_migrations = tenant_migrations_[t]->value();
        st.lm_router_switches = tenant_switches_[t]->value();
      }
      rep.tenants.push_back(std::move(st));
    }
    if (manager_ != nullptr) {
      rep.lm_managed = true;
      rep.lm_migrations = manager_->migrations();
      rep.lm_router_switches = manager_->router_switches();
      rep.lm_events = manager_->events();
      rep.lm_decisions = manager_->decisions();
    }
    rep.metrics = eng_.metrics().snapshot();
    if (cfg_.telemetry_histograms) {
      rep.histograms = eng_.metrics().latency_summaries();
    }
    rep.sim_events = eng_.events_processed();
    rep.digest = eng_.digest();
    rep.arrival_fingerprint = arrivals_.fingerprint();
    if (!cfg_.trace_file.empty()) {
      eng_.tracer().write_chrome_trace(cfg_.trace_file);
    }
    return rep;
  }

  asu_ns::MachineParams mp_;
  TenancyConfig cfg_;
  sim::Engine eng_;
  asu_ns::Cluster cluster_;
  unsigned d_;
  unsigned h_;
  ArrivalProcess arrivals_;
  sim::Condition job_done_;

  std::size_t in_flight_ = 0;
  std::size_t jobs_submitted_ = 0;
  std::size_t jobs_completed_ = 0;
  std::size_t admission_waits_ = 0;
  std::vector<TenantAccum> accum_;

  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<core::LoadMonitor> monitor_;
  std::unique_ptr<core::LoadManager> manager_;
  obs::LatencyHistogram* job_hist_ = nullptr;
  std::vector<obs::LatencyHistogram*> tenant_hists_;
  std::vector<obs::Counter*> tenant_migrations_;
  std::vector<obs::Counter*> tenant_switches_;
};

}  // namespace

TenancyReport run_tenancy(const asu::MachineParams& machine,
                          const TenancyConfig& cfg) {
  TenantScheduler sched(machine, cfg);
  return sched.run();
}

obs::Json tenancy_report_to_json(const TenancyReport& rep) {
  obs::Json j = obs::Json::object();
  j["makespan"] = rep.makespan;
  j["goodput_jobs_per_sec"] = rep.goodput_jobs_per_sec;
  j["jobs_submitted"] = rep.jobs_submitted;
  j["jobs_completed"] = rep.jobs_completed;
  j["admission_waits"] = rep.admission_waits;
  j["ok"] = rep.ok();
  j["mean_job_seconds"] = rep.mean_job_seconds;
  j["p50_job_seconds"] = rep.p50_job_seconds;
  j["p99_job_seconds"] = rep.p99_job_seconds;
  j["lm_migrations"] = rep.lm_migrations;
  j["lm_router_switches"] = rep.lm_router_switches;
  j["sim_events"] = rep.sim_events;
  j["digest"] = obs::digest_to_string(rep.digest);
  j["arrival_fingerprint"] = obs::digest_to_string(rep.arrival_fingerprint);
  obs::Json tenants = obs::Json::object();
  for (const auto& t : rep.tenants) {
    obs::Json e = obs::Json::object();
    e["jobs_completed"] = t.jobs_completed;
    e["records_in"] = t.records_in;
    e["records_out"] = t.records_out;
    e["conservation_ok"] = t.conservation_ok;
    e["mean_job_seconds"] = t.mean_job_seconds;
    e["p50_job_seconds"] = t.p50_job_seconds;
    e["p99_job_seconds"] = t.p99_job_seconds;
    e["lm_migrations"] = t.lm_migrations;
    e["lm_router_switches"] = t.lm_router_switches;
    tenants[t.name] = std::move(e);
  }
  j["tenants"] = std::move(tenants);
  obs::Json lm_events = obs::Json::array();
  for (const auto& e : rep.lm_events) {
    obs::Json entry = obs::Json::object();
    entry["time"] = e.time;
    entry["what"] = e.what;
    lm_events.push_back(std::move(entry));
  }
  j["lm_events"] = std::move(lm_events);
  if (rep.lm_managed) {
    obs::Json placer = obs::Json::array();
    for (const auto& d : rep.lm_decisions) {
      obs::Json entry = obs::Json::object();
      entry["time"] = d.time;
      entry["client"] = d.client;
      entry["instance"] = d.instance;
      entry["from"] = d.from;
      entry["to"] = d.to;
      entry["mode"] = std::string(core::migration_mode_name(d.mode));
      entry["bytes"] = d.bytes;
      entry["est_stall_seconds"] = d.est_stall;
      entry["gain_seconds"] = d.gain;
      placer.push_back(std::move(entry));
    }
    j["placer"] = std::move(placer);
  }
  if (!rep.histograms.is_null()) j["histograms"] = rep.histograms;
  j["metrics"] = rep.metrics;
  return j;
}

}  // namespace lmas::tenant

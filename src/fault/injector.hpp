#pragma once

#include <cstdint>
#include <vector>

#include "asu/network.hpp"
#include "fault/plan.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace lmas::fault {

/// Seeded sim-time fault scheduler: expands a FaultPlan into an
/// apply/revert timeline and drives it from one coroutine. All
/// perturbation state (jitter draws, window ordering) comes from the
/// injector's own named Rng stream, so a (workload seed, fault seed)
/// pair replays bit-identically; each applied transition is folded into
/// the engine digest, so faulted and fault-free runs can never alias.
///
/// Overlap semantics per node: a node is Crashed while *any* crash
/// window covers it; otherwise Degraded by the product of all open
/// slowdown factors; otherwise Healthy. Overlapping link-delay windows
/// are last-writer-wins until every window has closed.
///
/// The injector must outlive the engine run that executes `run()`
/// (callers own it by value or unique_ptr next to the Engine).
class FaultInjector {
 public:
  FaultInjector(asu::Cluster& cluster, FaultPlan plan, sim::Rng rng);

  /// The driver coroutine; spawn exactly once:
  ///   eng.spawn(injector.run());
  /// Completes after the last window closes — it holds no engine work
  /// open beyond that, so quiescence detection is unaffected.
  [[nodiscard]] sim::Task<> run();

  [[nodiscard]] std::size_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::size_t reverted() const noexcept { return reverted_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct Transition {
    double at = 0;
    std::uint32_t spec = 0;  ///< index into plan_.events
    bool apply = true;       ///< false = window close
  };

  void apply(const FaultSpec& spec, std::uint32_t idx);
  void revert(const FaultSpec& spec, std::uint32_t idx);
  /// Recompute one node's health from the open-window counters.
  void settle(bool on_asu, unsigned node);
  asu::Node& target(const FaultSpec& spec);
  [[nodiscard]] unsigned clamp_index(const FaultSpec& spec) const;

  asu::Cluster* cluster_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::vector<Transition> timeline_;

  // Open-window bookkeeping, indexed [host 0..H-1][asu 0..D-1] flattened.
  std::vector<unsigned> crash_depth_;
  std::vector<double> slow_product_;
  unsigned delay_depth_ = 0;

  std::size_t applied_ = 0;
  std::size_t reverted_ = 0;
  std::uint32_t track_ = 0;
};

}  // namespace lmas::fault

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace lmas::fault {

/// One scheduled perturbation of the emulated machine. Faults are
/// *windows*: the injector applies the fault at `at` and reverts it at
/// `at + duration`. A crash window models fail-and-recover (Section 3.3's
/// "replica failure ... re-replication" without the re-replication);
/// permanent loss of a stateful replica would need state hand-off, which
/// the model does not yet include — plans therefore always schedule
/// recovery.
struct FaultSpec {
  enum class Kind {
    Slowdown,   ///< CPU service rate divided by `factor` for the window
    Crash,      ///< node leaves routing target sets; pumps pause
    LinkDelay,  ///< all transfers pay extra latency + uniform jitter
  };

  Kind kind = Kind::Slowdown;
  bool on_asu = true;   ///< target tier (ignored for LinkDelay)
  unsigned node = 0;    ///< index within the tier (ignored for LinkDelay)
  double at = 0;        ///< window start, sim seconds
  double duration = 0;  ///< window length, sim seconds (> 0)

  double factor = 2.0;        ///< Slowdown: service-time multiplier (>= 1)
  double extra_latency = 0;   ///< LinkDelay: fixed added seconds
  double jitter = 0;          ///< LinkDelay: uniform jitter amplitude

  [[nodiscard]] double end() const noexcept { return at + duration; }
  [[nodiscard]] const char* kind_name() const noexcept {
    switch (kind) {
      case Kind::Slowdown: return "slowdown";
      case Kind::Crash: return "crash";
      case Kind::LinkDelay: return "link-delay";
    }
    return "?";
  }
};

/// A reproducible fault schedule plus the degraded-mode delivery contract
/// (how long a sender waits before re-routing a packet aimed at a replica
/// that crashed while the packet was in flight, and how many re-routes it
/// attempts before parking until recovery).
struct FaultPlan {
  std::vector<FaultSpec> events;

  /// Retry-with-timeout contract for in-flight packets (see
  /// core::StageOutput::deliver): wait `retry_timeout`, re-enter the
  /// router over the healthy target set, at most `max_retries` times;
  /// afterwards park on the health board until the chosen replica
  /// recovers. Packets are never dropped — record conservation holds
  /// under every plan.
  double retry_timeout = 1e-3;
  std::size_t max_retries = 8;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  /// Injector precondition: events sorted by window start.
  void normalize() {
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultSpec& a, const FaultSpec& b) {
                       return a.at < b.at;
                     });
  }

  FaultPlan& slowdown(bool on_asu, unsigned node, double at, double duration,
                      double factor) {
    events.push_back({FaultSpec::Kind::Slowdown, on_asu, node, at, duration,
                      factor, 0, 0});
    return *this;
  }
  FaultPlan& crash(bool on_asu, unsigned node, double at, double duration) {
    events.push_back(
        {FaultSpec::Kind::Crash, on_asu, node, at, duration, 1.0, 0, 0});
    return *this;
  }
  FaultPlan& link_delay(double at, double duration, double extra,
                        double jitter = 0) {
    events.push_back({FaultSpec::Kind::LinkDelay, true, 0, at, duration, 1.0,
                      extra, jitter});
    return *this;
  }

  /// Stable digest word for one plan (folded into the engine digest when
  /// the injector starts, so two runs differing only in their fault plan
  /// can never collide).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    std::uint64_t h = sim::fnv1a64("fault-plan");
    for (const auto& e : events) {
      std::uint64_t s = h ^ (std::uint64_t(e.kind) << 32) ^
                        (std::uint64_t(e.on_asu) << 40) ^ e.node;
      h = sim::splitmix64(s);
      h ^= std::uint64_t(e.at * 1e9) + sim::splitmix64_once(h);
      h ^= std::uint64_t(e.duration * 1e9);
    }
    return h;
  }
};

/// Draw a random — but (seed, size)-deterministic — fault plan for a
/// machine with `num_hosts`/`num_asus` nodes, with every window inside
/// [0, horizon). Guarantees the degraded-mode liveness preconditions:
/// every crash recovers, and crash windows never cover an entire tier at
/// the same instant for the full horizon (windows are strictly shorter
/// than the horizon, so parked work always drains).
[[nodiscard]] FaultPlan generate_fault_plan(sim::Rng& rng, unsigned num_hosts,
                                            unsigned num_asus, double horizon,
                                            unsigned size);

/// Human/JSON-readable one-line description ("slowdown asu3 @0.1+0.2 x4").
[[nodiscard]] std::string describe(const FaultSpec& spec);

}  // namespace lmas::fault

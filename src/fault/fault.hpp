#pragma once

// Umbrella header for the fault-injection layer: deterministic, seeded
// perturbation of the emulated machine (ASU slowdown, crash/recover,
// link delay windows) plus the degraded-mode delivery contract consumed
// by core::StageOutput. See DESIGN.md "Fault model & degraded modes".

#include "fault/injector.hpp"  // IWYU pragma: export
#include "fault/plan.hpp"      // IWYU pragma: export

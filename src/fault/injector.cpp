#include "fault/injector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace lmas::fault {

FaultInjector::FaultInjector(asu::Cluster& cluster, FaultPlan plan,
                             sim::Rng rng)
    : cluster_(&cluster), plan_(std::move(plan)), rng_(rng) {
  plan_.normalize();
  timeline_.reserve(plan_.events.size() * 2);
  for (std::uint32_t i = 0; i < plan_.events.size(); ++i) {
    const FaultSpec& e = plan_.events[i];
    assert(e.duration > 0);
    timeline_.push_back({e.at, i, /*apply=*/true});
    timeline_.push_back({e.end(), i, /*apply=*/false});
  }
  // Stable sort on time only: a zero-length tie keeps apply before its own
  // revert (push order above), and cross-spec ties resolve in normalized
  // plan order — both deterministic, so the digest is too.
  std::stable_sort(
      timeline_.begin(), timeline_.end(),
      [](const Transition& a, const Transition& b) { return a.at < b.at; });
  crash_depth_.assign(cluster.num_hosts() + cluster.num_asus(), 0);
  slow_product_.assign(cluster.num_hosts() + cluster.num_asus(), 1.0);
  track_ = cluster.engine().tracer().track("fault-injector");
}

unsigned FaultInjector::clamp_index(const FaultSpec& spec) const {
  const unsigned tier =
      spec.on_asu ? cluster_->num_asus() : cluster_->num_hosts();
  return spec.node % tier;
}

asu::Node& FaultInjector::target(const FaultSpec& spec) {
  return cluster_->node(spec.on_asu ? asu::NodeKind::Asu : asu::NodeKind::Host,
                        clamp_index(spec));
}

void FaultInjector::settle(bool on_asu, unsigned node) {
  const std::size_t i = on_asu ? cluster_->num_hosts() + node : node;
  asu::Node& n =
      cluster_->node(on_asu ? asu::NodeKind::Asu : asu::NodeKind::Host, node);
  if (crash_depth_[i] > 0) {
    if (!n.crashed()) n.set_crashed();
  } else if (slow_product_[i] > 1.0) {
    n.set_degraded(slow_product_[i]);
  } else {
    n.set_healthy();
  }
}

void FaultInjector::apply(const FaultSpec& spec, std::uint32_t idx) {
  obs::MetricsRegistry& reg = cluster_->engine().metrics();
  switch (spec.kind) {
    case FaultSpec::Kind::Slowdown:
      slow_product_[(spec.on_asu ? cluster_->num_hosts() : 0) +
                    clamp_index(spec)] *= spec.factor;
      settle(spec.on_asu, clamp_index(spec));
      reg.counter("fault.slowdowns").inc();
      break;
    case FaultSpec::Kind::Crash:
      ++crash_depth_[(spec.on_asu ? cluster_->num_hosts() : 0) +
                     clamp_index(spec)];
      settle(spec.on_asu, clamp_index(spec));
      reg.counter("fault.crashes").inc();
      break;
    case FaultSpec::Kind::LinkDelay:
      ++delay_depth_;
      cluster_->network().set_link_delay(
          spec.extra_latency, spec.jitter,
          rng_.stream(sim::stream_id("link-jitter", idx)));
      reg.counter("fault.link_delay_windows").inc();
      break;
  }
  ++applied_;
}

void FaultInjector::revert(const FaultSpec& spec, std::uint32_t idx) {
  obs::MetricsRegistry& reg = cluster_->engine().metrics();
  switch (spec.kind) {
    case FaultSpec::Kind::Slowdown: {
      const std::size_t i =
          (spec.on_asu ? cluster_->num_hosts() : 0) + clamp_index(spec);
      slow_product_[i] /= spec.factor;
      // Multiplicative close-out drifts below 1 in the last window; snap
      // so the node returns to exactly nominal rate.
      if (slow_product_[i] < 1.0 + 1e-12) slow_product_[i] = 1.0;
      settle(spec.on_asu, clamp_index(spec));
      break;
    }
    case FaultSpec::Kind::Crash:
      --crash_depth_[(spec.on_asu ? cluster_->num_hosts() : 0) +
                     clamp_index(spec)];
      settle(spec.on_asu, clamp_index(spec));
      reg.counter("fault.recoveries").inc();
      break;
    case FaultSpec::Kind::LinkDelay:
      if (--delay_depth_ == 0) cluster_->network().clear_link_delay();
      (void)idx;
      break;
  }
  ++reverted_;
}

sim::Task<> FaultInjector::run() {
  sim::Engine& eng = cluster_->engine();
  // Commit the whole schedule to the digest up front: a faulted run can
  // never alias a fault-free one even if no window ends up perturbing
  // timing (e.g. a slowdown of an idle node).
  eng.fold(plan_.fingerprint());
  for (const Transition& t : timeline_) {
    if (t.at > eng.now()) co_await eng.sleep(t.at - eng.now());
    const FaultSpec& spec = plan_.events[t.spec];
    std::uint64_t w = sim::fnv1a64("fault-event") ^
                      ((std::uint64_t(t.spec) << 1) | (t.apply ? 1 : 0));
    eng.fold(sim::splitmix64_once(w ^ std::bit_cast<std::uint64_t>(eng.now())));
    if (eng.tracer().enabled()) {
      eng.tracer().instant(
          track_, (t.apply ? "apply " : "revert ") + describe(spec), eng.now());
    }
    if (t.apply) {
      apply(spec, t.spec);
    } else {
      revert(spec, t.spec);
    }
  }
}

std::string describe(const FaultSpec& spec) {
  char node[16];
  if (spec.kind == FaultSpec::Kind::LinkDelay) {
    node[0] = '\0';
  } else {
    std::snprintf(node, sizeof node, "%s%u ", spec.on_asu ? "asu" : "host",
                  spec.node);
  }
  char buf[128];
  switch (spec.kind) {
    case FaultSpec::Kind::Slowdown:
      std::snprintf(buf, sizeof buf, "slowdown %s@%.4g+%.4g x%.3g", node,
                    spec.at, spec.duration, spec.factor);
      break;
    case FaultSpec::Kind::Crash:
      std::snprintf(buf, sizeof buf, "crash %s@%.4g+%.4g", node, spec.at,
                    spec.duration);
      break;
    case FaultSpec::Kind::LinkDelay:
      std::snprintf(buf, sizeof buf, "link-delay @%.4g+%.4g +%.3gs~%.3gs",
                    spec.at, spec.duration, spec.extra_latency, spec.jitter);
      break;
  }
  return buf;
}

FaultPlan generate_fault_plan(sim::Rng& rng, unsigned num_hosts,
                              unsigned num_asus, double horizon,
                              unsigned size) {
  assert(num_hosts > 0 && num_asus > 0 && horizon > 0);
  FaultPlan plan;
  const unsigned n = 1 + unsigned(rng.below(std::max(1u, size)));
  for (unsigned i = 0; i < n; ++i) {
    // Windows start in the first 80% of the horizon and are strictly
    // shorter than it, so every crash recovers well before parked work
    // would be abandoned — the liveness precondition documented on
    // FaultPlan.
    const double at = rng.uniform(0.0, horizon * 0.8);
    const double dur = rng.uniform(horizon * 0.02, horizon * 0.4);
    switch (rng.below(4)) {
      case 0:
      case 1: {  // slowdowns twice as likely: the paper's degraded regime
        const bool on_asu = rng.below(4) != 0;
        const unsigned tier = on_asu ? num_asus : num_hosts;
        plan.slowdown(on_asu, unsigned(rng.below(tier)), at, dur,
                      1.5 + rng.uniform(0.0, 6.5));
        break;
      }
      case 2:
        // Crashes target ASUs only: ASU-side replicas are the set-typed
        // functor instances whose membership may shrink and grow
        // (Section 3.3); host pumps hold unsharable in-memory sort state,
        // so host faults are modeled as slowdowns instead.
        plan.crash(true, unsigned(rng.below(num_asus)), at, dur);
        break;
      case 3:
        plan.link_delay(at, dur, rng.uniform(0.0, 2e-4),
                        rng.uniform(0.0, 1e-4));
        break;
    }
  }
  plan.normalize();
  return plan;
}

}  // namespace lmas::fault

#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace lmas::sim {

/// Discrete-event engine. Coroutine processes suspend on awaitables that
/// register wake-up events; the engine resumes them in (time, sequence)
/// order, which yields a total causal order over all node activity —
/// the same guarantee the paper's thread + event-queue emulator provides.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule a raw coroutine resume `delay` seconds from now.
  void schedule(std::coroutine_handle<> h, SimTime delay) {
    schedule_at(h, now_ + delay);
  }

  void schedule_at(std::coroutine_handle<> h, SimTime t) {
    events_.push(Event{t < now_ ? now_ : t, next_seq_++, h});
  }

  /// Take ownership of a root task and schedule its first resume now.
  void spawn(Task<> task) {
    auto handle = task.handle();
    roots_.push_back(std::move(task));
    schedule_at(handle, now_);
  }

  /// Awaitable: suspend the current process for `dt` virtual seconds.
  [[nodiscard]] auto sleep(SimTime dt) noexcept {
    struct Awaiter {
      Engine* eng;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule(h, dt);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: reschedule through the event queue at the current time.
  /// Yields to any already-queued same-time events (fair interleaving).
  [[nodiscard]] auto yield() noexcept {
    struct Awaiter {
      Engine* eng;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule(h, 0);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Run until the event queue drains or `until` is reached.
  /// Returns the number of events processed.
  std::size_t run(SimTime until = kTimeInfinity);

  /// Number of spawned root tasks that have not completed. Non-zero after
  /// run() drains the queue means blocked (deadlocked or starved) processes.
  [[nodiscard]] std::size_t unfinished_tasks() const noexcept;

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// Drop completed root task frames (optional; frees memory in long runs).
  void reap_completed();

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<Task<>> roots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lmas::sim

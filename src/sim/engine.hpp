#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/event_heap.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace lmas::sim {

/// Intrusive hook for simulation objects that publish pull-model metrics:
/// the engine's snapshot collector walks registered sources, so hot paths
/// (and constructors — the microbenches build resources per iteration)
/// never touch the registry. Registration is two pointer writes.
/// Objects whose lifetime is shorter than the engine's must deregister;
/// metrics therefore reflect only sources alive at snapshot time.
class MetricsSource {
 public:
  virtual void publish_metrics(obs::MetricsRegistry& registry) = 0;

 protected:
  ~MetricsSource() = default;

 private:
  friend class Engine;
  MetricsSource* prev_ = nullptr;
  MetricsSource* next_ = nullptr;
};

/// Discrete-event engine. Coroutine processes suspend on awaitables that
/// register wake-up events; the engine resumes them in (time, sequence)
/// order, which yields a total causal order over all node activity —
/// the same guarantee the paper's thread + event-queue emulator provides.
///
/// The engine also owns the run's observability state: a MetricsRegistry
/// (so every instrument shares the virtual clock and one snapshot covers
/// the whole emulated machine) and a Tracer that records sim-time spans
/// for Chrome trace-event export. Construction honors the LMAS_TRACE=1
/// environment variable for runtime trace enablement.
class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Install (or remove, with nullptr) a sim-time sampler. The run loop
  /// consults it before committing each event: when the next event lies
  /// at or past a sampling boundary, the clock parks exactly on the
  /// boundary and the sampler reads its probes there. Sampling is NOT a
  /// simulation process — it schedules no events, consumes no sequence
  /// numbers, draws no randomness, and occupies no resources, so the
  /// execution digest is bit-identical with or without a sampler (the
  /// pinned goldens rely on this). Cost when absent: one pointer test
  /// per event. The sampler must outlive every run() it is installed for.
  void set_sampler(obs::Sampler* s) noexcept { sampler_ = s; }
  [[nodiscard]] obs::Sampler* sampler() const noexcept { return sampler_; }

  /// Allocate a trace flow id (causal packet spans). Monotone from 1 per
  /// engine; 0 stays "no flow". Not part of the digest — ids label trace
  /// output only, and are allocated only while tracing is enabled.
  [[nodiscard]] std::uint64_t next_trace_id() noexcept {
    return ++trace_id_seq_;
  }

  /// Schedule a raw coroutine resume `delay` seconds from now.
  void schedule(std::coroutine_handle<> h, SimTime delay) {
    schedule_at(h, now_ + delay);
  }

  void schedule_at(std::coroutine_handle<> h, SimTime t) {
    // Scheduling into the past is a modeling bug (a negative latency or
    // service time somewhere upstream): committing the event "now" would
    // silently reorder causality. Debug builds trap it; release builds
    // still clamp — dropping the event would deadlock the scheduling
    // process — but count the clamp so the drift is observable
    // (clamped_schedules(), `engine.clamped_schedules`).
    assert(t >= now_ && "schedule_at: event time in the past "
                        "(negative-latency modeling bug?)");
    if (t < now_) {
      ++clamped_schedules_;
      t = now_;
    }
    events_.push(Event{t, next_seq_++, h});
  }

  /// Take ownership of a root task and schedule its first resume now.
  void spawn(Task<> task) { spawn(std::move(task), std::string()); }

  /// Named spawn: the name shows up in deadlock diagnostics
  /// (unfinished_task_names) and labels the task's resumes in traces.
  void spawn(Task<> task, std::string name);

  /// Awaitable: suspend the current process for `dt` virtual seconds.
  [[nodiscard]] auto sleep(SimTime dt) noexcept {
    struct Awaiter {
      Engine* eng;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule(h, dt);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dt};
  }

  /// Awaitable: reschedule through the event queue at the current time.
  /// Yields to any already-queued same-time events (fair interleaving).
  [[nodiscard]] auto yield() noexcept {
    struct Awaiter {
      Engine* eng;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng->schedule(h, 0);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Run until the event queue drains, `until` is reached, or a spawned
  /// root task exits with an exception. Returns the number of events
  /// processed by this call.
  ///
  /// If any spawned root task exited with an exception, the first such
  /// exception (in spawn order) is rethrown here once the loop stops.
  /// Root tasks are never awaited, so without this check a throw inside
  /// a spawned process would be stored in its promise and silently
  /// discarded — an invariant violation would look like a clean run.
  ///
  /// The loop stops at the event whose resume killed the root: events
  /// already committed (including the fatal one) are folded into the
  /// digest, but nothing past the failure commits — a violated invariant
  /// must not be buried under millions of post-mortem events. The engine
  /// stays failed (further run() calls process nothing and rethrow) until
  /// reap_completed() removes the failed root.
  std::size_t run(SimTime until = kTimeInfinity);

  /// Events processed across all run() calls on this engine.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Execution digest: an allocation-free splitmix-chained hash folded
  /// over the committed event stream — (sim time, sequence) of every
  /// processed event, the name of every spawned root task, and every
  /// resource occupancy (resource id, completion time). Two runs with the
  /// same seed and configuration MUST produce identical digests; that
  /// invariant is what the golden-run regression suite pins, so any
  /// silent behavior drift (reordered events, changed timing, different
  /// resource usage) shows up as a digest mismatch rather than only as a
  /// crash. The digest is order-sensitive by construction: folding is a
  /// chained permutation, not a commutative sum.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Fold one word into the execution digest. Components with behavior
  /// the event stream alone cannot see (resources, routers, fault
  /// injectors) fold their own commitments; cost is a few ALU ops.
  void fold(std::uint64_t v) noexcept {
    std::uint64_t s = digest_ ^ v;
    digest_ = splitmix64(s);
  }

  /// Past-time schedule_at calls that were clamped to now (see
  /// schedule_at). Always zero in a correctly modeled run; published
  /// lazily as `engine.clamped_schedules` so clean runs keep their pinned
  /// metrics fingerprints.
  [[nodiscard]] std::uint64_t clamped_schedules() const noexcept {
    return clamped_schedules_;
  }

  /// Number of spawned root tasks that have not completed. Non-zero after
  /// run() drains the queue means blocked (deadlocked or starved) processes.
  [[nodiscard]] std::size_t unfinished_tasks() const noexcept;

  /// Names of blocked root tasks, so diagnostics can name the offender
  /// instead of printing a count. Unnamed tasks report as "<anonymous>".
  [[nodiscard]] std::vector<std::string> unfinished_task_names() const;

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// Drop completed root task frames (optional; frees memory in long
  /// runs). Also erases the frames' trace-name entries — a later spawn
  /// reusing a freed frame address must not inherit a dead task's name —
  /// and clears the root-failure latch when the last failed root goes,
  /// so an engine whose failure was handled can keep running.
  void reap_completed();

  /// Trace-name entries currently held for named roots (diagnostic; the
  /// reap regression pins that these never outlive their frames).
  [[nodiscard]] std::size_t traced_root_names() const noexcept {
    return named_roots_.size();
  }

  /// Link / unlink a pull-model metrics publisher (see MetricsSource).
  /// Allocation-free; sources run in reverse registration order.
  void add_metrics_source(MetricsSource& src) noexcept {
    src.prev_ = nullptr;
    src.next_ = sources_;
    if (sources_) sources_->prev_ = &src;
    sources_ = &src;
  }
  void remove_metrics_source(MetricsSource& src) noexcept {
    if (src.prev_) src.prev_->next_ = src.next_;
    if (src.next_) src.next_->prev_ = src.prev_;
    if (sources_ == &src) sources_ = src.next_;
    src.prev_ = src.next_ = nullptr;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };
  /// Min-order on the unique (time, seq) key; total over live events, so
  /// the heap's pop sequence is the engine's causal order.
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };
  struct Root {
    Task<> task;
    std::string name;
  };

  std::size_t run_fast(SimTime until);
  std::size_t run_traced(SimTime until);
  void rethrow_root_failure() const;

  MetricsSource* sources_ = nullptr;
  FourAryHeap<Event, EventBefore> events_;
  std::vector<Root> roots_;
  // Handle address -> name, for labeling resumes while tracing.
  std::unordered_map<const void*, std::string> named_roots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t clamped_schedules_ = 0;
  // Latched by a root task's unhandled_exception (via PromiseBase); the
  // run loops poll it so the queue stops at the first failed root.
  bool root_failed_ = false;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV offset basis
  obs::Sampler* sampler_ = nullptr;
  std::uint64_t trace_id_seq_ = 0;

  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  std::uint32_t engine_track_ = 0;
};

}  // namespace lmas::sim

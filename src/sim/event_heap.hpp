#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace lmas::sim {

/// Flat four-ary min-heap backing the engine's event queue.
///
/// The engine pops every committed event through this structure, so it is
/// the hottest data structure in the simulator. A 4-ary layout beats
/// std::priority_queue's binary heap for the (time, seq) key because the
/// tree is half as deep (log4 n levels), so a sift touches half the
/// cache lines, and the four children of node i occupy the contiguous
/// block [4i+1, 4i+4] — typically one cache line for the engine's small
/// Event struct — where a binary heap's sibling pairs give no such
/// locality across levels.
///
/// Ordering contract: `Before` must be a strict weak ordering that is
/// *total* over live elements (the engine's (time, seq) key is unique),
/// so the pop sequence is identical to std::priority_queue's — the
/// golden-run digests pin this equivalence.
template <class T, class Before>
class FourAryHeap {
 public:
  FourAryHeap() = default;
  explicit FourAryHeap(Before before) : before_(std::move(before)) {}

  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() noexcept { v_.clear(); }

  [[nodiscard]] const T& top() const noexcept { return v_.front(); }

  void push(T value) {
    v_.push_back(std::move(value));
    sift_up(v_.size() - 1);
  }

  /// Remove and return the minimum. Moving the value out before the
  /// sift-down keeps the hot loop free of a separate top()+pop() copy.
  T pop_min() {
    T out = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      v_.front() = std::move(last);
      sift_down(0);
    }
    return out;
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before_(v_[i], v_[parent])) break;
      std::swap(v_[i], v_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = v_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before_(v_[c], v_[best])) best = c;
      }
      if (!before_(v_[best], v_[i])) break;
      std::swap(v_[i], v_[best]);
      i = best;
    }
  }

  std::vector<T> v_;
  [[no_unique_address]] Before before_;
};

}  // namespace lmas::sim

#include "sim/stats.hpp"

#include <algorithm>

namespace lmas::sim {

void UtilizationRecorder::add_busy(SimTime start, SimTime end) {
  if (end <= start) return;
  total_busy_ += end - start;
  const auto first = static_cast<std::size_t>(start / bin_width_);
  // `end` is exclusive: an interval ending exactly on a bin boundary must
  // not touch (or allocate) the following bin.
  auto last = static_cast<std::size_t>(end / bin_width_);
  if (last > first && double(last) * bin_width_ >= end) --last;
  if (bins_.size() <= last) bins_.resize(last + 1, 0.0);
  for (std::size_t b = first; b <= last; ++b) {
    const SimTime lo = std::max<SimTime>(start, double(b) * bin_width_);
    const SimTime hi = std::min<SimTime>(end, double(b + 1) * bin_width_);
    if (hi > lo) bins_[b] += hi - lo;
  }
}

std::vector<double> UtilizationRecorder::series(SimTime horizon) const {
  const auto nbins =
      static_cast<std::size_t>(std::ceil(horizon / bin_width_));
  std::vector<double> out(nbins, 0.0);
  for (std::size_t b = 0; b < nbins && b < bins_.size(); ++b) {
    // The final bin may cover only [b*w, horizon): normalize by the width
    // actually inside the horizon, and clamp so busy time recorded past
    // `horizon` cannot report a utilization above 1.
    const SimTime width =
        std::min<SimTime>(bin_width_, horizon - double(b) * bin_width_);
    out[b] = width > 0 ? std::min(1.0, bins_[b] / width) : 0.0;
  }
  return out;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / double(n_);
  m2_ += d * (x - mean_);
}

}  // namespace lmas::sim

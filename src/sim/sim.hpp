#pragma once

/// Umbrella header for the discrete-event simulation kernel.
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

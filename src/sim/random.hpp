#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace lmas::sim {

/// splitmix64: seeds the main generator and serves as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One splitmix64 output for a given state (no sequencing).
constexpr std::uint64_t splitmix64_once(std::uint64_t state) noexcept {
  return splitmix64(state);
}

/// FNV-1a over a byte string; used for stable component identifiers
/// (resource names, task names) in execution digests and stream ids.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stable id for a named (and optionally indexed) random stream:
/// stream_id("workload", asu) never collides with stream_id("routing")
/// regardless of index arithmetic, unlike ad-hoc `seed * K + i` seeding.
constexpr std::uint64_t stream_id(std::string_view purpose,
                                  std::uint64_t index = 0) noexcept {
  return fnv1a64(purpose) ^ splitmix64_once(index);
}

/// xoshiro256** — deterministic across platforms (std:: distributions are
/// not), which keeps every figure in the paper reproduction bit-identical.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return double(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  // ---- stream derivation -------------------------------------------
  //
  // Seeding hygiene: components must never share one generator, or the
  // order in which they are constructed (and how many draws each takes)
  // perturbs every downstream consumer's values. Two documented ways to
  // derive an independent generator:
  //
  //  * stream(id)  — const; hashes the current state together with a
  //    caller-chosen stream id. Any number of streams can be split off
  //    the same parent in any order without affecting the parent or each
  //    other. Use a distinct id per purpose (see stream_id() for deriving
  //    ids from names, e.g. "workload"/asu-index, "routing", "faults").
  //  * split()     — consumes one draw from the parent to seed the
  //    child. Children are independent, but each split() advances the
  //    parent, so split order matters; prefer stream() wherever a stable
  //    id exists.

  /// Derive the generator for an independent, named stream. Const: does
  /// not advance this generator; same (state, id) always yields the same
  /// stream, and nearby ids yield uncorrelated streams (splitmix mixing).
  [[nodiscard]] Rng stream(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = s_[0] ^ (s_[2] * 0x9e3779b97f4a7c15ULL);
    sm = splitmix64(sm) ^ stream_id;
    return Rng(splitmix64(sm));
  }

  /// Derive an independent stream by drawing once from this generator
  /// (order-of-split sensitive; see the note above).
  [[nodiscard]] Rng split() noexcept {
    std::uint64_t sm = next();
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace lmas::sim

#pragma once

#include <cmath>
#include <cstdint>

namespace lmas::sim {

/// splitmix64: seeds the main generator and serves as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — deterministic across platforms (std:: distributions are
/// not), which keeps every figure in the paper reproduction bit-identical.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return double(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Derive an independent stream (per node / per functor instance).
  [[nodiscard]] Rng fork() noexcept {
    std::uint64_t sm = next();
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace lmas::sim

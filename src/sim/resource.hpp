#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace lmas::sim {

/// Non-preemptive FIFO server: CPUs, disk arms, and NIC links are all
/// instances of this. `use(service)` charges the caller queueing delay plus
/// `service` seconds of occupancy; requests are serviced in the causal
/// order the event queue delivers them. Busy time feeds a
/// UtilizationRecorder so per-node utilization traces fall out for free.
class Resource : public MetricsSource {
 public:
  Resource(Engine& eng, std::string name, SimTime util_bin = 0.25)
      : eng_(&eng),
        name_(std::move(name)),
        name_hash_(fnv1a64(name_)),
        util_(util_bin) {
    // Pull-model metrics: the hot path only updates plain members;
    // publish_metrics materializes `<name>.busy_seconds` /
    // `.backlog_seconds` / `.requests` when a snapshot is taken. The
    // intrusive registration keeps construction allocation-free — the
    // microbenches build a Resource per iteration, so even heap-layout
    // perturbation from an instrument lookup here is measurable.
    eng.add_metrics_source(*this);
    track_ = eng.tracer().track(name_);
  }

  ~Resource() { eng_->remove_metrics_source(*this); }

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  void publish_metrics(obs::MetricsRegistry& reg) override {
    reg.gauge(name_ + ".busy_seconds").set(total_service_);
    reg.gauge(name_ + ".backlog_seconds").set(backlog());
    auto& c = reg.counter(name_ + ".requests");
    c.inc(total_requests_ - c.value());
  }

  /// Awaitable: occupy the server for `service` seconds, after any queued
  /// work ahead of us completes. Resumes when our service finishes.
  /// Zero-service requests still pass through the queue, so control
  /// messages cannot overtake queued work (FIFO ordering is a guarantee).
  [[nodiscard]] auto use(SimTime service) {
    struct Awaiter {
      Resource* res;
      SimTime service;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        res->occupy(service, /*traced_as=*/"use");
        res->eng_->schedule_at(h, res->free_at_);
      }
      void await_resume() const noexcept {}
    };
    assert(service >= 0);
    return Awaiter{this, service};
  }

  /// Reserve occupancy without suspending the caller (e.g. the paper's
  /// write-behind: a write occupies the disk but the writer proceeds).
  /// Returns the completion time of the posted work.
  SimTime post(SimTime service) {
    occupy(service, /*traced_as=*/"post");
    return free_at_;
  }

  /// Scale the service rate for subsequently posted work: a scale of s
  /// stretches every service demand by 1/s (s < 1 = degraded, 1 = nominal).
  /// The fault injector uses this for ASU CPU degradation windows; work
  /// already queued keeps its original completion time (the emulated
  /// server finishes the request it is on at the old rate).
  void set_rate_scale(double s) noexcept {
    assert(s > 0);
    rate_scale_ = s;
  }
  [[nodiscard]] double rate_scale() const noexcept { return rate_scale_; }

  /// Time at which currently queued work completes.
  [[nodiscard]] SimTime free_at() const noexcept { return free_at_; }
  [[nodiscard]] SimTime backlog() const noexcept {
    const SimTime now = eng_->now();
    return free_at_ > now ? free_at_ - now : 0;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const UtilizationRecorder& utilization() const noexcept {
    return util_;
  }
  [[nodiscard]] SimTime total_service() const noexcept {
    return total_service_;
  }
  [[nodiscard]] std::uint64_t total_requests() const noexcept {
    return total_requests_;
  }

 private:
  /// Shared accounting for use()/post(): extend the busy horizon, update
  /// the recorder, and (when tracing) emit the occupancy span on this
  /// resource's track. Registry publication is deferred to the collector.
  void occupy(SimTime service, const char* traced_as) {
    // The == 1.0 fast path is not just speed: fault-free runs must charge
    // bit-identical times (x / 1.0 == x, but keeping the branch makes the
    // invariant explicit and free).
    if (rate_scale_ != 1.0) service /= rate_scale_;
    const SimTime now = eng_->now();
    const SimTime start = now > free_at_ ? now : free_at_;
    const SimTime end = start + service;
    free_at_ = end;
    util_.add_busy(start, end);
    total_service_ += service;
    ++total_requests_;
    // Commit (who, until-when) to the engine's execution digest: the
    // event stream alone cannot distinguish equal-length occupancies of
    // different servers.
    eng_->fold(name_hash_ ^ std::bit_cast<std::uint64_t>(end));
    if (eng_->tracer().enabled() && service > 0) {
      eng_->tracer().complete(track_, traced_as, start, end);
    }
  }

  Engine* eng_;
  std::string name_;
  std::uint64_t name_hash_;
  UtilizationRecorder util_;
  double rate_scale_ = 1.0;
  SimTime free_at_ = 0;
  SimTime total_service_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint32_t track_ = 0;
};

/// Condition variable for simulated processes. The paper implements
/// blocking waits by posting a wake-up event at t = infinity and re-timing
/// it on signal; here waiters simply park until notify schedules them.
class Condition {
 public:
  explicit Condition(Engine& eng) : eng_(&eng) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Condition* cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void notify_all() {
    for (auto h : waiters_) eng_->schedule(h, 0);
    waiters_.clear();
  }

  void notify_one() {
    if (!waiters_.empty()) {
      eng_->schedule(waiters_.front(), 0);
      waiters_.erase(waiters_.begin());
    }
  }

  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace lmas::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>

namespace lmas::sim {

Engine::Engine() {
  // Publish the event count and every registered MetricsSource only when
  // a snapshot asks; the run loop touches nothing but events_processed_.
  metrics_.add_collector([this] {
    auto& c = metrics_.counter("engine.events");
    c.inc(events_processed_ - c.value());
    // Lazily registered so runs whose traces fit the cap publish no
    // drop counter (the golden harness pins the metrics fingerprint).
    if (tracer_.dropped_events() > 0) {
      auto& d = metrics_.counter("trace.dropped_events");
      d.inc(tracer_.dropped_events() - d.value());
    }
    // Same lazy registration: a correctly modeled run never clamps, so
    // the counter must not perturb the pinned fingerprints.
    if (clamped_schedules_ > 0) {
      auto& cl = metrics_.counter("engine.clamped_schedules");
      cl.inc(clamped_schedules_ - cl.value());
    }
    for (MetricsSource* s = sources_; s != nullptr; s = s->next_) {
      s->publish_metrics(metrics_);
    }
  });
  engine_track_ = tracer_.track("engine");
  if constexpr (obs::kTraceCompiled) {
    if (const char* e = std::getenv("LMAS_TRACE")) {
      if (e[0] == '1') tracer_.enable();
    }
  }
}

void Engine::spawn(Task<> task, std::string name) {
  auto handle = task.handle();
  // Root tasks are never awaited, so their unhandled_exception must flag
  // the engine directly — the run loop stops at the failing event instead
  // of committing (and digesting) everything behind it.
  handle.promise().root_failure_latch = &root_failed_;
  fold(fnv1a64(name));
  if (!name.empty() && tracer_.enabled()) {
    // Only traces consult the handle->name map, and enablement precedes
    // spawning in every traced flow (env at construction, config before
    // the run), so the map stays empty — and unmaintained — otherwise.
    named_roots_[handle.address()] = name;
    tracer_.instant(engine_track_, "spawn " + name, now_);
  }
  roots_.push_back({std::move(task), std::move(name)});
  schedule_at(handle, now_);
}

std::size_t Engine::run(SimTime until) {
  // The traced loop is kept out of line so the common path stays as tight
  // as the uninstrumented kernel (the tier-1 microbenches gate this).
  const std::size_t processed =
      tracer_.enabled() ? run_traced(until) : run_fast(until);
  events_processed_ += processed;
  rethrow_root_failure();
  return processed;
}

void Engine::rethrow_root_failure() const {
  // Spawn order makes the choice deterministic when several roots failed
  // in the same run (their failure order is replay-stable anyway, but the
  // scan must not depend on it).
  for (const auto& r : roots_) {
    if (r.task.valid() && r.task.exception()) {
      std::rethrow_exception(r.task.exception());
    }
  }
}

std::size_t Engine::run_fast(SimTime until) {
  std::size_t processed = 0;
  while (!events_.empty() && !root_failed_) {
    if (events_.top().t > until) break;
    const Event ev = events_.pop_min();
    // Sim-time sampling: park the clock on each period boundary the next
    // event is about to cross, so probes read backlog/state at exact
    // boundary instants. No events are scheduled or consumed — the
    // digest fold below sees the identical (t, seq) stream either way.
    if (sampler_ != nullptr) {
      while (sampler_->due(ev.t)) {
        now_ = sampler_->next_time();
        sampler_->sample(now_);
      }
    }
    now_ = ev.t;
    ++processed;
    fold(std::bit_cast<std::uint64_t>(ev.t) ^ std::rotl(ev.seq, 31));
    if (ev.h && !ev.h.done()) {
      ev.h.resume();
    }
  }
  return processed;
}

std::size_t Engine::run_traced(SimTime until) {
  std::size_t processed = 0;
  while (!events_.empty() && !root_failed_) {
    if (events_.top().t > until) break;
    const Event ev = events_.pop_min();
    if (sampler_ != nullptr) {  // see run_fast: digest-neutral by design
      while (sampler_->due(ev.t)) {
        now_ = sampler_->next_time();
        sampler_->sample(now_);
      }
    }
    now_ = ev.t;
    ++processed;
    fold(std::bit_cast<std::uint64_t>(ev.t) ^ std::rotl(ev.seq, 31));
    if (ev.h && !ev.h.done()) {
      // Bracket the resume of a *named* root so traces show which
      // process the nested resource spans belong to. (Anonymous events
      // would only add noise: one instant per queue pop.)
      const auto it = named_roots_.find(ev.h.address());
      const std::string* name =
          it == named_roots_.end() ? nullptr : &it->second;
      if (name) tracer_.begin(engine_track_, *name, now_);
      ev.h.resume();
      if (name) tracer_.end(engine_track_, *name, now_);
    }
  }
  return processed;
}

std::size_t Engine::unfinished_tasks() const noexcept {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (r.task.valid() && !r.task.done()) ++n;
  }
  return n;
}

std::vector<std::string> Engine::unfinished_task_names() const {
  std::vector<std::string> out;
  for (const auto& r : roots_) {
    if (r.task.valid() && !r.task.done()) {
      out.push_back(r.name.empty() ? "<anonymous>" : r.name);
    }
  }
  return out;
}

void Engine::reap_completed() {
  std::erase_if(roots_, [this](const Root& r) {
    if (!r.task.done()) return false;
    // The frame is about to be freed and its address recycled by a later
    // coroutine allocation; a stale entry here would label the newcomer
    // with the dead task's name in every trace.
    named_roots_.erase(r.task.handle().address());
    return true;
  });
  // Reaping a failed root is how a caller acknowledges the failure after
  // run() rethrew it; recompute the latch so the engine resumes only when
  // no unprocessed root exception remains.
  root_failed_ = false;
  for (const auto& r : roots_) {
    if (r.task.valid() && r.task.exception()) root_failed_ = true;
  }
}

}  // namespace lmas::sim

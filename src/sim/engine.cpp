#include "sim/engine.hpp"

#include <algorithm>

namespace lmas::sim {

std::size_t Engine::run(SimTime until) {
  std::size_t processed = 0;
  while (!events_.empty()) {
    Event ev = events_.top();
    if (ev.t > until) break;
    events_.pop();
    now_ = ev.t;
    ++processed;
    if (ev.h && !ev.h.done()) {
      ev.h.resume();
    }
  }
  return processed;
}

std::size_t Engine::unfinished_tasks() const noexcept {
  std::size_t n = 0;
  for (const auto& t : roots_) {
    if (t.valid() && !t.done()) ++n;
  }
  return n;
}

void Engine::reap_completed() {
  std::erase_if(roots_, [](const Task<>& t) { return t.done(); });
}

}  // namespace lmas::sim

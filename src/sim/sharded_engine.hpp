#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace lmas::par {
class Executor;
}

namespace lmas::sim {

/// Index of a simulated node in a sharded simulation (DESIGN.md §14).
using LogicalNode = std::uint32_t;

/// Shard count for sharded simulations: the LMAS_SHARDS environment
/// variable when it parses to a positive integer, otherwise 1 (the serial
/// fast path). Read once per call so tests can vary the env.
[[nodiscard]] std::uint32_t default_shards();

/// Configuration for a ShardedEngine. `lookahead` is the conservative
/// synchronization window width — the minimum cross-node propagation
/// latency the topology guarantees (asu::shard_lookahead extracts it from
/// MachineParams). It must be > 0 whenever shards > 1: a zero-lookahead
/// topology admits no conservative window and the constructor throws
/// rather than letting the barrier discipline deadlock or deadlock-avoid
/// itself into nondeterminism.
struct ShardedParams {
  std::uint32_t shards = 0;   ///< 0 ⇒ default_shards() (LMAS_SHARDS)
  std::uint32_t workers = 0;  ///< 0 ⇒ min(shards, par::default_jobs())
  double lookahead = 0;       ///< seconds; > 0 required when shards > 1
  std::uint64_t seed = 0x9d2c5680u;  ///< root of every node's RNG stream
};

/// One committed (or in-flight) node event. Identity is (src, seq): every
/// emission increments the source node's private counter, so the tuple is
/// unique and — crucially — independent of how nodes are sharded. The
/// commit order is the lexicographic key (t, dst, src, seq); see
/// ShardedEngine for why that makes digests shard-count invariant.
struct ShardEvent {
  SimTime t = 0;           ///< delivery (commit) time
  LogicalNode dst = 0;     ///< node whose handler runs
  LogicalNode src = 0;     ///< emitting node (== dst for self-posts)
  std::uint64_t seq = 0;   ///< src's emission counter at send time
  std::uint64_t payload = 0;  ///< opaque user word
};

class ShardedEngine;

/// Handler-facing view of the shard executing the current event: virtual
/// time, the node being delivered to, that node's private RNG stream, and
/// the two emission primitives. One context per shard; handlers must not
/// retain it across events.
class ShardContext {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] LogicalNode node() const noexcept { return node_; }
  [[nodiscard]] Rng& rng() noexcept;
  [[nodiscard]] ShardedEngine& engine() noexcept { return *eng_; }

  /// Schedule a new event on the current node `delay >= 0` seconds out.
  void post(SimTime delay, std::uint64_t payload);

  /// Send to another node. `delay` must be positive and >= the engine's
  /// lookahead — the physical claim (no signal outruns the slowest-case
  /// minimum link latency) that makes conservative windows sound. The
  /// bound is enforced identically on the serial path, so a violation
  /// can never hide at LMAS_SHARDS=1 and surface as a digest change (or
  /// causality leak) when sharded.
  void send(LogicalNode dst, SimTime delay, std::uint64_t payload);

 private:
  friend class ShardedEngine;
  ShardedEngine* eng_ = nullptr;
  std::uint32_t shard_ = 0;
  LogicalNode node_ = 0;
  SimTime now_ = 0;
};

/// Per-event callback: runs the destination node's model logic. Invoked
/// concurrently from shard worker threads (one shard at a time per
/// thread), so it must only touch per-node state — the same discipline
/// that keeps the digest shard-count invariant keeps it race-free.
using ShardHandler = std::function<void(ShardContext&, const ShardEvent&)>;

/// Sharded discrete-event engine: conservative time-window parallel
/// simulation over a fixed node set (ROADMAP item 2, DESIGN.md §14).
///
/// Nodes are partitioned into `shards` contiguous blocks by a fixed,
/// deterministic map; each shard owns a private four-ary event heap and
/// the private RNG streams of its nodes. Shards advance in lockstep
/// windows [W, W + lookahead): within a window every shard commits its
/// local events independently (in parallel, via the src/par fixed-pool
/// executor); cross-shard sends are buffered as timestamped messages and
/// applied at the window barrier, where the coordinator routes them into
/// the destination heaps in deterministic (source shard, emission) order.
/// A message emitted at t ∈ [W, W+L) with delay >= L arrives at or after
/// W + L — always a later window — so no shard can ever observe an event
/// out of its (t, dst, src, seq) order. That is the whole correctness
/// argument, and it is why lookahead must be positive.
///
/// Determinism contract: the committed event stream of every NODE —
/// and therefore its digest chain — is identical for ANY shard count and
/// ANY worker-thread count, because per-node commit order is fixed by the
/// key and the key never mentions shards or threads. The engine digest is
/// the canonical digest-merge: a chained fold of the per-node digests in
/// node-id order, so serial (shards=1) and sharded runs of the same model
/// produce bit-identical digests (the sharded-digest property suite and
/// the golden gate pin this).
///
/// shards == 1 is the untouched fast path: one heap, no windows, no
/// barriers, no executor — a plain pop/dispatch loop.
class ShardedEngine {
 public:
  /// Throws std::invalid_argument if num_nodes == 0, or if shards > 1
  /// with a non-positive lookahead (a zero cross-shard-latency topology
  /// cannot be conservatively windowed).
  ShardedEngine(std::uint32_t num_nodes, ShardedParams params,
                ShardHandler handler);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return std::uint32_t(shards_.size());
  }
  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return workers_;
  }
  [[nodiscard]] double lookahead() const noexcept { return lookahead_; }

  /// Deterministic node→shard map: contiguous blocks, sizes differing by
  /// at most one (the first num_nodes % shards blocks are one larger).
  [[nodiscard]] std::uint32_t shard_of(LogicalNode n) const noexcept {
    const std::uint32_t wide = rem_ * (base_ + 1);
    return n < wide ? n / (base_ + 1) : rem_ + (n - wide) / base_;
  }
  /// Owned node range of a shard: [first, last).
  [[nodiscard]] std::pair<LogicalNode, LogicalNode> nodes_of(
      std::uint32_t shard) const noexcept {
    const LogicalNode first =
        shard < rem_ ? shard * (base_ + 1)
                     : rem_ * (base_ + 1) + (shard - rem_) * base_;
    return {first, first + base_ + (shard < rem_ ? 1 : 0)};
  }

  /// Seed the simulation before (or between) run() calls: an external
  /// event from `src` delivered to `dst` at absolute time `t`. Uses the
  /// source node's emission counter, so injected feeds are part of the
  /// same shard-count-invariant identity space as handler emissions.
  void inject(LogicalNode src, LogicalNode dst, SimTime t,
              std::uint64_t payload);

  /// Run until every heap drains (or past `until`). Returns events
  /// committed by this call. Handler exceptions propagate (under the
  /// executor, the lowest-indexed shard's exception, after the window
  /// fully drains).
  std::uint64_t run(SimTime until = kTimeInfinity);

  /// Events committed across all run() calls.
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  /// Synchronization windows executed (0 on the serial path).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

  /// Messages routed through a window barrier (0 on the serial path —
  /// cross-shard sends of a 1-shard engine are ordinary local pushes).
  [[nodiscard]] std::uint64_t cross_shard_messages() const noexcept {
    return cross_messages_;
  }

  /// Canonical digest-merge: per-node digest chains folded in node-id
  /// order. Bit-identical across shard counts and worker counts (and
  /// equal to the serial fast path) by the determinism contract above.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// One shard's digest fold (its nodes' chains, in node order) — the
  /// diagnostic view: shard digests are stable per shard count, and the
  /// canonical merge over them in node order equals digest().
  [[nodiscard]] std::uint64_t shard_digest(std::uint32_t shard) const;

  /// A single node's committed-event digest chain (shard-count invariant).
  [[nodiscard]] std::uint64_t node_digest(LogicalNode n) const {
    return node_state_.at(n).digest;
  }

 private:
  friend class ShardContext;

  struct EventBefore {
    bool operator()(const ShardEvent& a, const ShardEvent& b) const noexcept {
      if (a.t != b.t) return a.t < b.t;
      if (a.dst != b.dst) return a.dst < b.dst;
      if (a.src != b.src) return a.src < b.src;
      return a.seq < b.seq;
    }
  };

  /// Everything a node owns. Cache-line sized so two shards' boundary
  /// nodes never share a line (worker threads write these in parallel).
  struct alignas(64) NodeState {
    Rng rng;
    std::uint64_t emit_seq = 0;
    std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV offset basis
    std::uint64_t events = 0;
  };

  // alignas(64): workers write now/events/ctx on every commit; without
  // the alignment a shard's hot fields share a cache line with its
  // neighbour's heap-vector header and every heap op ping-pongs the line.
  struct alignas(64) Shard {
    FourAryHeap<ShardEvent, EventBefore> heap;
    std::vector<ShardEvent> outbox;  ///< cross-shard sends this window
    ShardContext ctx;
    SimTime now = 0;
    std::uint64_t events = 0;
  };

  void validate_send(LogicalNode src, LogicalNode dst, SimTime delay) const;
  void enqueue(std::uint32_t from_shard, ShardEvent ev);
  void commit(Shard& sh, const ShardEvent& ev);
  void run_serial(SimTime until);
  void run_windowed(SimTime until);
  void run_shard_window(Shard& sh, SimTime window_end, SimTime until);
  void route_outboxes();

  std::uint32_t nodes_;
  std::uint32_t base_ = 0;  ///< block partition: floor(nodes / shards)
  std::uint32_t rem_ = 0;   ///< first `rem_` shards own one extra node
  std::uint32_t workers_ = 1;
  double lookahead_ = 0;
  ShardHandler handler_;
  std::vector<Shard> shards_;
  std::vector<NodeState> node_state_;
  std::unique_ptr<par::Executor> pool_;  ///< null on the serial path
  std::uint64_t windows_ = 0;
  std::uint64_t cross_messages_ = 0;
  bool running_ = false;
};

inline Rng& ShardContext::rng() noexcept {
  return eng_->node_state_[node_].rng;
}

inline void ShardContext::post(SimTime delay, std::uint64_t payload) {
  if (!(delay >= 0)) {
    throw std::invalid_argument(
        "ShardContext::post: negative delay (events cannot be scheduled "
        "into the past)");
  }
  auto& st = eng_->node_state_[node_];
  eng_->shards_[shard_].heap.push(
      ShardEvent{now_ + delay, node_, node_, st.emit_seq++, payload});
}

inline void ShardContext::send(LogicalNode dst, SimTime delay,
                               std::uint64_t payload) {
  eng_->validate_send(node_, dst, delay);
  auto& st = eng_->node_state_[node_];
  eng_->enqueue(shard_,
                ShardEvent{now_ + delay, dst, node_, st.emit_seq++, payload});
}

}  // namespace lmas::sim

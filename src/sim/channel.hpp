#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace lmas::sim {

/// Typed FIFO mailbox between simulated processes.
///
/// `recv` suspends until a message or close arrives; `send` suspends while
/// the channel is at capacity (capacity 0 == unbounded). All wake-ups are
/// routed through the engine's event queue at the current virtual time, so
/// same-time interleavings stay deterministic.
///
/// This is the transport under the model's record/packet movement; network
/// timing (latency, bandwidth, NIC serialization) is charged separately by
/// asu::NetworkModel before the send.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& eng, std::size_t capacity = 0)
      : eng_(&eng), capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  /// Close the channel: pending and future recvs observe nullopt once
  /// the buffered items drain.
  ///
  /// Contract for senders blocked in send() at close time: they are woken
  /// WITHOUT their value being enqueued — the send completes with
  /// delivered == false and the value is destroyed. close() cannot enqueue
  /// them (the channel is at capacity, that is why they were blocked, and
  /// the receivers are gone). Any caller that closes a channel while
  /// senders may be in flight therefore owns the resulting delivery
  /// failures: check send()'s result, or only close after the last send
  /// has resolved (StageOutput::close_when_drained is the reference
  /// pattern — it waits for inflight == 0 before closing).
  void close() {
    closed_ = true;
    wake_all_receivers();
    wake_all_senders();
  }

  /// True when a send would be accepted right now.
  [[nodiscard]] bool can_send() const noexcept {
    return !closed_ && (capacity_ == 0 || items_.size() < capacity_);
  }

  /// Non-suspending send. Returns false (leaving `value` consumed) only
  /// if at capacity or closed; check can_send() to avoid losing values.
  bool try_send(T value) {
    if (!can_send()) return false;
    items_.push_back(std::move(value));
    wake_one_receiver();
    return true;
  }

  /// Awaitable send; suspends while full. Result: true if delivered.
  /// A freed slot is transferred directly to the longest-waiting sender
  /// (its value is enqueued before it even resumes), so concurrent new
  /// senders can never steal the slot and no value is ever dropped while
  /// the channel stays open. A false result (send into a closed channel,
  /// or close() arriving while blocked) means the value was destroyed —
  /// callers tracking conservation must treat it as a loss, not ignore it.
  [[nodiscard]] auto send(T value) {
    struct Awaiter {
      Channel* ch;
      T value;
      bool delivered = false;
      bool await_ready() {
        if (ch->can_send()) {
          ch->items_.push_back(std::move(value));
          ch->wake_one_receiver();
          delivered = true;
          return true;
        }
        return ch->closed_;  // closed: complete immediately, undelivered
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->send_waiters_.push_back({h, &value, &delivered});
      }
      bool await_resume() const noexcept { return delivered; }
    };
    return Awaiter{this, std::move(value)};
  }

  /// Awaitable receive; yields nullopt when the channel is closed and empty.
  [[nodiscard]] auto recv() {
    struct Awaiter {
      Channel* ch;
      bool await_ready() const noexcept {
        return !ch->items_.empty() || ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->recv_waiters_.push_back(h);
      }
      std::optional<T> await_resume() {
        if (ch->items_.empty()) return std::nullopt;  // closed and drained
        T v = std::move(ch->items_.front());
        ch->items_.pop_front();
        ch->wake_one_sender();
        return v;
      }
    };
    return Awaiter{this};
  }

 private:
  struct SendWaiter {
    std::coroutine_handle<> h;
    T* value;
    bool* delivered;
  };

  void wake_one_receiver() {
    if (!recv_waiters_.empty()) {
      eng_->schedule(recv_waiters_.front(), 0);
      recv_waiters_.pop_front();
    }
  }
  void wake_all_receivers() {
    for (auto h : recv_waiters_) eng_->schedule(h, 0);
    recv_waiters_.clear();
  }
  /// A slot was just freed: enqueue the longest-waiting sender's value
  /// immediately (slot ownership transfer) and schedule its resume.
  void wake_one_sender() {
    if (!send_waiters_.empty()) {
      SendWaiter w = send_waiters_.front();
      send_waiters_.pop_front();
      items_.push_back(std::move(*w.value));
      *w.delivered = true;
      eng_->schedule(w.h, 0);
    }
  }
  void wake_all_senders() {
    for (const auto& w : send_waiters_) eng_->schedule(w.h, 0);
    send_waiters_.clear();
  }

  Engine* eng_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> recv_waiters_;
  std::deque<SendWaiter> send_waiters_;
};

}  // namespace lmas::sim

#pragma once

#include <limits>

namespace lmas::sim {

/// Virtual time in seconds. Events at equal time are ordered by insertion
/// sequence, so double precision is sufficient for deterministic replay.
using SimTime = double;

inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

}  // namespace lmas::sim

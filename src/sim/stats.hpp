#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace lmas::sim {

/// Records busy time of a server into fixed-width bins so utilization can
/// be reported as a time series (Figure 10 plots exactly this).
class UtilizationRecorder {
 public:
  explicit UtilizationRecorder(SimTime bin_width = 0.25)
      : bin_width_(bin_width) {}

  /// Charge the interval [start, end) as busy.
  void add_busy(SimTime start, SimTime end);

  [[nodiscard]] SimTime bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] SimTime total_busy() const noexcept { return total_busy_; }

  /// Utilization of each bin in [0, horizon); bins the recorder never saw
  /// are 0. The final (partial) bin is normalized by the portion of the
  /// bin inside the horizon; values are clamped to [0, 1] so busy time
  /// recorded past the horizon cannot over-report.
  [[nodiscard]] std::vector<double> series(SimTime horizon) const;

  /// Mean utilization over [0, horizon).
  [[nodiscard]] double mean_utilization(SimTime horizon) const {
    return horizon > 0 ? total_busy_ / horizon : 0.0;
  }

 private:
  SimTime bin_width_;
  SimTime total_busy_ = 0;
  std::vector<double> bins_;  // busy seconds per bin
};

/// Streaming mean/variance/min/max (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0, m2_ = 0, sum_ = 0;
  double min_ = 0, max_ = 0;
};

}  // namespace lmas::sim

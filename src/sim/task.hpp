#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace lmas::sim {

template <typename T = void>
class Task;

namespace detail {

/// Shared state for all task promises: completion continuation and
/// exception propagation. Tasks are lazily started (suspend at entry) so
/// the Engine or an awaiting parent decides when they first run.
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  /// Set by Engine::spawn on root tasks only: points at the engine's
  /// root-failure latch so the run loop can stop at the event that killed
  /// a root instead of draining the queue first. Child tasks leave it
  /// null — their exceptions rethrow into the awaiting parent, which is
  /// already prompt.
  bool* root_failure_latch = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    exception = std::current_exception();
    if (root_failure_latch != nullptr) *root_failure_latch = true;
  }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object() noexcept;
  void return_value(T v) noexcept(std::is_nothrow_move_assignable_v<T>) {
    value = std::move(v);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

/// A lazily-started coroutine owned by its handle. Awaiting a Task starts
/// it via symmetric transfer; when it finishes, control returns to the
/// awaiter at the same virtual time. Root tasks are owned by the Engine.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return bool(handle_); }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Release ownership of the underlying handle (Engine::spawn uses this).
  Handle release() noexcept { return std::exchange(handle_, {}); }
  Handle handle() const noexcept { return handle_; }

  /// Exception the coroutine exited with, if any. Awaited tasks rethrow
  /// through await_resume; root tasks are never awaited, so the Engine
  /// inspects this after its run loop — otherwise a throw inside a
  /// spawned process would vanish into the stored exception_ptr.
  [[nodiscard]] std::exception_ptr exception() const noexcept {
    return handle_ ? handle_.promise().exception : nullptr;
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start the child now, at the same virtual time
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(h.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace lmas::sim

#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>

#include "par/executor.hpp"

namespace lmas::sim {

std::uint32_t default_shards() {
  if (const char* env = std::getenv("LMAS_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::uint32_t>(v);
    }
  }
  return 1;
}

ShardedEngine::ShardedEngine(std::uint32_t num_nodes, ShardedParams params,
                             ShardHandler handler)
    : nodes_(num_nodes),
      lookahead_(params.lookahead),
      handler_(std::move(handler)) {
  if (num_nodes == 0) {
    throw std::invalid_argument("ShardedEngine: num_nodes must be > 0");
  }
  if (!handler_) {
    throw std::invalid_argument("ShardedEngine: handler must be callable");
  }
  std::uint32_t shards = params.shards != 0 ? params.shards : default_shards();
  // A shard with no nodes would only add an idle barrier participant.
  shards = std::min(shards, num_nodes);
  if (shards > 1 && !(lookahead_ > 0)) {
    throw std::invalid_argument(
        "ShardedEngine: conservative windows require a positive lookahead "
        "(the minimum cross-shard link latency); a zero-latency topology "
        "admits no safe window and cannot be sharded");
  }
  base_ = num_nodes / shards;
  rem_ = num_nodes % shards;

  node_state_.resize(num_nodes);
  const Rng root(params.seed);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    // stream(): const derivation, so every node's stream depends only on
    // (seed, node id) — never on shard layout or initialization order.
    node_state_[n].rng = root.stream(stream_id("shard-node", n));
  }

  shards_.resize(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_[s].ctx.eng_ = this;
    shards_[s].ctx.shard_ = s;
  }

  if (shards > 1) {
    workers_ = params.workers != 0
                   ? params.workers
                   : std::min(shards, std::uint32_t(par::default_jobs()));
    workers_ = std::max(workers_, 1u);
    pool_ = std::make_unique<par::Executor>(workers_);
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::validate_send(LogicalNode src, LogicalNode dst,
                                  SimTime delay) const {
  if (dst >= nodes_) {
    throw std::out_of_range("ShardContext::send: destination node " +
                            std::to_string(dst) + " out of range (" +
                            std::to_string(nodes_) + " nodes)");
  }
  // !(delay > 0) also rejects NaN. The lookahead bound applies at every
  // shard count — see the header: a send below the topology's declared
  // minimum latency is a modeling bug whether or not it would also break
  // a window this run.
  if (!(delay > 0) || delay < lookahead_) {
    throw std::invalid_argument(
        "ShardContext::send: node " + std::to_string(src) + " -> " +
        std::to_string(dst) + " delay " + std::to_string(delay) +
        " violates the lookahead contract (delay must be positive and >= " +
        std::to_string(lookahead_) + ")");
  }
}

void ShardedEngine::enqueue(std::uint32_t from_shard, ShardEvent ev) {
  const std::uint32_t to_shard = shard_of(ev.dst);
  if (running_ && to_shard != from_shard) {
    // Worker threads own only their shard; a foreign heap push here would
    // race. Buffer in the (worker-owned) source outbox; the coordinator
    // routes it at the window barrier.
    shards_[from_shard].outbox.push_back(ev);
    return;
  }
  shards_[to_shard].heap.push(ev);
}

void ShardedEngine::inject(LogicalNode src, LogicalNode dst, SimTime t,
                           std::uint64_t payload) {
  if (running_) {
    throw std::logic_error("ShardedEngine::inject: engine is running");
  }
  if (src >= nodes_ || dst >= nodes_) {
    throw std::out_of_range("ShardedEngine::inject: node out of range");
  }
  for (const Shard& sh : shards_) {
    if (t < sh.now) {
      throw std::invalid_argument(
          "ShardedEngine::inject: time is behind the committed horizon");
    }
  }
  if (!(t >= 0)) {
    throw std::invalid_argument("ShardedEngine::inject: negative time");
  }
  auto& st = node_state_[src];
  shards_[shard_of(dst)].heap.push(
      ShardEvent{t, dst, src, st.emit_seq++, payload});
}

void ShardedEngine::commit(Shard& sh, const ShardEvent& ev) {
  sh.now = ev.t;
  sh.ctx.now_ = ev.t;
  sh.ctx.node_ = ev.dst;
  ++sh.events;
  auto& st = node_state_[ev.dst];
  ++st.events;
  // Per-node chain over the node's committed stream. The word covers the
  // full event identity (t, src, seq, payload); dst is implicit in which
  // chain the word lands in, and the merge order (digest()) restores it.
  std::uint64_t w = std::bit_cast<std::uint64_t>(ev.t);
  w ^= splitmix64_once((std::uint64_t(ev.src) << 32) ^ ev.seq);
  w ^= std::rotl(ev.payload, 17);
  st.digest = splitmix64_once(st.digest ^ w);
  handler_(sh.ctx, ev);
}

std::uint64_t ShardedEngine::run(SimTime until) {
  const std::uint64_t before = events_processed();
  running_ = true;
  try {
    if (shards_.size() == 1) {
      run_serial(until);
    } else {
      run_windowed(until);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  return events_processed() - before;
}

void ShardedEngine::run_serial(SimTime until) {
  // The LMAS_SHARDS=1 fast path: one heap, no windows, no barriers, no
  // executor — the same pop/commit loop the serial Engine runs.
  Shard& sh = shards_[0];
  while (!sh.heap.empty() && sh.heap.top().t <= until) {
    const ShardEvent ev = sh.heap.pop_min();
    commit(sh, ev);
  }
}

void ShardedEngine::run_windowed(SimTime until) {
  for (;;) {
    // Next window starts at the globally earliest pending event; every
    // window therefore commits at least one event (progress guarantee).
    SimTime next = kTimeInfinity;
    for (const Shard& sh : shards_) {
      if (!sh.heap.empty() && sh.heap.top().t < next) next = sh.heap.top().t;
    }
    if (next == kTimeInfinity || next > until) break;
    const SimTime window_end = next + lookahead_;
    if (!(window_end > next)) {
      // double underflow: at huge virtual times a small lookahead can be
      // absorbed (next + L == next), which would stall the window loop.
      throw std::runtime_error(
          "ShardedEngine: lookahead underflows at t=" + std::to_string(next) +
          " (window would be empty)");
    }
    ++windows_;
    pool_->for_each_index(shards_.size(), [&](std::size_t s) {
      run_shard_window(shards_[s], window_end, until);
    });
    route_outboxes();
  }
}

void ShardedEngine::run_shard_window(Shard& sh, SimTime window_end,
                                     SimTime until) {
  while (!sh.heap.empty()) {
    const SimTime t = sh.heap.top().t;
    if (t >= window_end || t > until) break;
    const ShardEvent ev = sh.heap.pop_min();
    commit(sh, ev);
  }
}

void ShardedEngine::route_outboxes() {
  // Coordinator-only, between windows: deterministic (source shard,
  // emission order) routing. The heap key makes insertion order
  // irrelevant to pop order, but determinism here keeps memory layout —
  // and thus any future instrumentation — replay-stable too.
  for (Shard& sh : shards_) {
    for (const ShardEvent& ev : sh.outbox) {
      shards_[shard_of(ev.dst)].heap.push(ev);
    }
    cross_messages_ += sh.outbox.size();
    sh.outbox.clear();
  }
}

std::uint64_t ShardedEngine::events_processed() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.events;
  return total;
}

std::uint64_t ShardedEngine::digest() const noexcept {
  std::uint64_t d = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    d = splitmix64_once(d ^ node_state_[n].digest);
  }
  return d;
}

std::uint64_t ShardedEngine::shard_digest(std::uint32_t shard) const {
  if (shard >= shard_count()) {
    throw std::out_of_range("ShardedEngine::shard_digest: shard out of range");
  }
  const auto [first, last] = nodes_of(shard);
  std::uint64_t d = 0xcbf29ce484222325ULL;
  for (LogicalNode n = first; n < last; ++n) {
    d = splitmix64_once(d ^ node_state_[n].digest);
  }
  return d;
}

}  // namespace lmas::sim

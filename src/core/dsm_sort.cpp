#include "core/dsm_sort.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "asu/asu.hpp"
#include "core/pipeline.hpp"
#include "fault/fault.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "core/splitters.hpp"
#include "extmem/distribute.hpp"
#include "extmem/merge.hpp"
#include "extmem/record.hpp"
#include "sim/sim.hpp"

namespace lmas::core {

namespace {

namespace sim = lmas::sim;
namespace asu_ns = lmas::asu;
namespace em = lmas::em;

constexpr std::uint32_t kSubsetDoneMarker = 0xffffffffu;

/// Fraction of a sort instance's staged records assumed re-dirtied while
/// a pre-copy bulk transfer runs in the background (the stalled delta on
/// top of kMigrationOverheadBytes). Declared to the placer and honored by
/// the consult point, so the priced stall and the paid stall agree.
constexpr double kPrecopyDirtyFraction = 0.125;

/// Wall-clock seconds on the emulation host (the paper's fine-grained
/// processor cycle counter, in portable form).
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

/// A stored (sorted) run reassembled on an ASU, tagged with its subset.
/// External linkage because DsmSortSim (whose definition is TU-local but
/// whose name is exported for DsmSortJob's pimpl) holds vectors of it.
struct StoredRun {
  std::uint32_t subset = 0;
  std::vector<em::KeyRecord> records;
};

/// Whole-program state for one emulated DSM-Sort execution. Instance
/// bodies are member coroutines; the object outlives the engine run.
///
/// Two ownership modes share this definition. Standalone (run_dsm_sort):
/// the sim owns a private engine + cluster, runs the event loop itself,
/// and may construct the fault/management layers. Embedded (DsmSortJob):
/// the sim borrows a scheduler's engine + cluster, contributes only its
/// own pipeline coroutines (wrapped so the job can detect completion),
/// and leaves injection/monitoring/sampling to the scheduler. Every
/// instrument, track, and spawn name is routed through pfx(), so an
/// empty cfg.label reproduces the legacy names byte-for-byte and the
/// pinned golden digests are untouched.
class DsmSortSim {
 public:
  /// Standalone mode: private engine and cluster, full report.
  DsmSortSim(const asu_ns::MachineParams& machine, const DsmSortConfig& cfg)
      : DsmSortSim(machine, cfg, nullptr, nullptr) {}

  /// Embedded mode: one job on a shared engine/cluster (see DsmSortJob).
  DsmSortSim(sim::Engine& eng, asu_ns::Cluster& cluster,
             const DsmSortConfig& cfg)
      : DsmSortSim(cluster.params(), cfg, &eng, &cluster) {}

  DsmSortReport run() {
    if (!cfg_.trace_file.empty()) eng_.tracer().enable();
    dsm_track_ = eng_.tracer().track(pfx("dsm-sort"));
    run_pass1();
    DsmSortReport rep;
    rep.pass1_seconds = pass1_end_;
    eng_.tracer().complete(dsm_track_, "pass1", 0.0, pass1_end_);
    eng_.metrics().gauge(pfx("dsm.pass1_seconds")).set(pass1_end_);
    if (phase_hist_ != nullptr) phase_hist_->observe(pass1_end_);
    validate_pass1(rep);
    if (cfg_.run_merge_pass) {
      run_pass2(rep);
      eng_.tracer().complete(dsm_track_, "pass2", pass1_end_,
                             pass1_end_ + rep.pass2_seconds);
      eng_.metrics().gauge(pfx("dsm.pass2_seconds")).set(rep.pass2_seconds);
      if (phase_hist_ != nullptr) phase_hist_->observe(rep.pass2_seconds);
    }
    rep.makespan = eng_.now();
    if (job_hist_ != nullptr) job_hist_->observe(rep.makespan);
    if (monitor_) {
      rep.peak_host_imbalance = monitor_->peak_host_imbalance();
      rep.mean_host_imbalance = monitor_->mean_host_imbalance();
    }
    if (manager_) {
      rep.lm_managed = true;
      rep.lm_migrations = manager_->migrations();
      rep.lm_router_switches = manager_->router_switches();
      rep.lm_events = manager_->events();
      rep.lm_decisions = manager_->decisions();
    }
    collect_utilization(rep);
    rep.metrics = eng_.metrics().snapshot();
    if (cfg_.telemetry.histograms) {
      rep.histograms = eng_.metrics().latency_summaries();
    }
    if (sampler_ != nullptr) rep.time_series = sampler_->to_json();
    rep.sim_events = eng_.events_processed();
    rep.digest = eng_.digest();
    if (!cfg_.trace_file.empty()) {
      eng_.tracer().write_chrome_trace(cfg_.trace_file);
    }
    return rep;
  }

  // ------------------------- embedded (job) mode ----------------------

  /// Build the pipeline against the shared cluster without spawning
  /// anything; DsmSortJob's constructor calls this once.
  void build_embedded() {
    if (cfg_.run_merge_pass) {
      throw std::invalid_argument(
          "DsmSortJob: run_merge_pass is not supported in embedded mode "
          "(pass 2 re-runs the engine, which a shared engine forbids)");
    }
    embedded_ = true;
    build_pass1();
  }

  /// Root coroutine of the embedded job: stamp the start time, launch
  /// the instances, wait until every one of them drains, then assemble
  /// the job-relative report. Completion is condition-driven — on a
  /// shared engine, "the event loop returned" is everyone's signal, not
  /// this job's.
  sim::Task<> job_body() {
    t0_ = eng_.now();
    total_instances_ = std::size_t(d_) + h_ + d_;
    spawn_pass1();
    while (finished_instances_ < total_instances_) {
      co_await job_done_.wait();
    }
    pass1_end_ = *std::max_element(store_end_.begin(), store_end_.end());
    rep_ = DsmSortReport{};
    rep_.pass1_seconds = pass1_end_ - t0_;
    validate_pass1(rep_);
    rep_.makespan = eng_.now() - t0_;
    finished_flag_ = true;
  }

  [[nodiscard]] bool job_finished() const noexcept { return finished_flag_; }
  [[nodiscard]] const DsmSortReport& job_report() const { return rep_; }
  [[nodiscard]] SwitchableRouter* job_switch_router() const noexcept {
    return switch_router_;
  }
  [[nodiscard]] std::vector<asu_ns::Node*> job_sort_placement() {
    return host_nodes_vec();
  }
  void set_external_manager(LoadManager* manager, std::size_t client) {
    ext_manager_ = manager;
    ext_client_ = client;
    // Declare each sort instance's migration economics to the shared
    // arbiter. Must run after the scheduler's client_instances() call
    // (which resets declarations), which the wiring order guarantees.
    for (unsigned hh = 0; hh < h_; ++hh) {
      manager->declare_instance(client, hh, sort_declaration(hh));
    }
  }

 private:
  /// Delegation target for both modes: null externals means standalone
  /// (own the engine/cluster), non-null means embedded (borrow them; the
  /// machine shape comes from the shared cluster, so jobs cannot
  /// disagree with the substrate they run on).
  DsmSortSim(const asu_ns::MachineParams& machine, const DsmSortConfig& cfg,
             sim::Engine* ext_eng, asu_ns::Cluster* ext_cluster)
      : mp_(machine),
        cfg_(cfg),
        owned_eng_(ext_eng != nullptr ? nullptr
                                      : std::make_unique<sim::Engine>()),
        owned_cluster_(ext_cluster != nullptr
                           ? nullptr
                           : std::make_unique<asu_ns::Cluster>(*owned_eng_,
                                                               machine)),
        eng_(ext_eng != nullptr ? *ext_eng : *owned_eng_),
        cluster_(ext_cluster != nullptr ? *ext_cluster : *owned_cluster_),
        d_(machine.num_asus),
        h_(machine.num_hosts),
        alpha_(cfg.distribute_on_asus ? cfg.alpha : 1),
        packet_records_(derive_packet_records()),
        block_records_(std::max<std::size_t>(
            1, std::size_t(64 * 1024) / machine.record_bytes)),
        classifier_(make_classifier()),
        checksum_in_(d_, 0),
        count_in_(d_, 0) {
    if (!(cfg.fair_share_weight > 0)) {
      throw std::invalid_argument(
          "DsmSortConfig.fair_share_weight must be > 0 (got " +
          std::to_string(cfg.fair_share_weight) + ")");
    }
    charge_scale_ = 1.0 / cfg.fair_share_weight;
  }

  /// Prefix an instrument/track/spawn name with the job label. Empty
  /// label returns the legacy name unchanged (golden compatibility).
  [[nodiscard]] std::string pfx(const char* s) const {
    return cfg_.label.empty() ? std::string(s) : cfg_.label + "." + s;
  }

  /// Fair-share scaling for CPU charges. The ==1.0 fast path is not an
  /// optimization: it guarantees default-weight charges are the very
  /// same doubles as before this knob existed.
  [[nodiscard]] double scaled(double x) const {
    return charge_scale_ == 1.0 ? x : x * charge_scale_;
  }

  // ----------------------------- pass 1 -------------------------------

  void run_pass1() {
    build_pass1();
    attach_management();
    spawn_pass1();
    eng_.run();
    if (eng_.unfinished_tasks() != 0) {
      throw std::logic_error("DSM-Sort pass 1 deadlocked; unfinished: " +
                             join_names(eng_.unfinished_task_names()));
    }
    pass1_end_ = *std::max_element(store_end_.begin(), store_end_.end());
  }

  /// Build the pass-1 pipeline: inboxes, routers, stage outputs,
  /// histograms, validation state, and (standalone only) the fault
  /// injector. No coroutines are spawned yet.
  void build_pass1() {
    // The host-side inbox may buffer generously: hosts have large
    // memories (the model's asymmetry), and smooth pipelining requires
    // roughly K = alpha*beta records of slack to absorb the synchronized
    // beta-block fill waves across subsets. ASU-side inboxes stay small
    // (bounded ASU memory).
    const std::size_t host_inbox_packets = std::max<std::size_t>(
        64, mp_.host_memory / mp_.record_bytes / 2 /
                std::max<std::size_t>(1, packet_records_) / h_);
    sort_in_ = std::make_unique<StageInboxes>(eng_, h_, host_inbox_packets);
    store_in_ = std::make_unique<StageInboxes>(eng_, d_, 64);

    std::vector<asu_ns::Node*> host_nodes, asu_nodes;
    for (unsigned i = 0; i < h_; ++i) host_nodes.push_back(&cluster_.host(i));
    for (unsigned i = 0; i < d_; ++i) asu_nodes.push_back(&cluster_.asu(i));

    // Passive baseline has no subsets, so spread packets round-robin; the
    // active configurations route per the configured policy. Under the
    // load manager the baseline policy sits inside a SwitchableRouter
    // whose dynamic alternative is SR — not least-loaded: SR keeps every
    // instance fed, so the recv-side migration consult points keep
    // firing even on the host being drained. The decorator order is
    // Instrumented(Switchable(...)): route counters then attribute picks
    // to whichever regime made them.
    const RouterKind sort_kind =
        cfg_.distribute_on_asus ? cfg_.sort_router : RouterKind::RoundRobin;
    auto sort_stream = sim::Rng(cfg_.seed).stream(sim::stream_id("routing.sort"));
    std::unique_ptr<RoutingPolicy> sort_router;
    if (cfg_.load_manager.mode == LoadManagerMode::Manage &&
        cfg_.load_manager.router_swap && cfg_.distribute_on_asus) {
      auto switchable = std::make_unique<SwitchableRouter>(
          make_router({.kind = sort_kind,
                       .rng = sort_stream,
                       .total_subsets = alpha_}),
          std::make_unique<SimpleRandomizationRouter>(
              sim::Rng(cfg_.seed)
                  .stream(sim::stream_id("routing.sort.dynamic"))));
      switch_router_ = switchable.get();
      sort_router = std::make_unique<InstrumentedRouter>(
          std::move(switchable), eng_, "sort");
    } else {
      sort_router = make_router({.kind = sort_kind,
                                 .rng = sort_stream,
                                 .total_subsets = alpha_,
                                 .instrument = &eng_,
                                 .label = "sort"});
    }
    to_sort_ = std::make_unique<StageOutput>(
        eng_, cluster_.network(),
        StageSpec{.record_bytes = mp_.record_bytes,
                  .endpoints = sort_in_->endpoints(host_nodes),
                  .router = std::move(sort_router),
                  .producers = d_,
                  .name = pfx("to_sort"),
                  .charge_scale = charge_scale_,
                  .telemetry = cfg_.telemetry.histograms});
    // Runs are striped across ASUs at packet granularity (Section 4.3:
    // merged/sorted runs are stored striped across the ASUs). On a
    // hierarchical topology the striping prefers the producing sort
    // instance's own rack (run_id encodes the producer: hh * 0x100000,
    // so run_id >> 20 recovers it; sort_rack_ tracks migrations), which
    // keeps run chunks off the oversubscribed spine. Flat topologies
    // build the exact pre-existing RoundRobinRouter — byte-identical.
    std::unique_ptr<RoutingPolicy> store_router;
    const asu_ns::TopologySpec& topo = cluster_.topology();
    if (cfg_.rack_affinity_store && topo.hierarchical()) {
      sort_rack_.assign(h_, 0);
      for (unsigned hh = 0; hh < h_; ++hh) {
        sort_rack_[hh] = topo.rack_of_host(hh);
      }
      store_router = std::make_unique<RackAffinityRouter>(
          [this](const Packet& p) {
            return sort_rack_[std::size_t(p.run_id >> 20) % h_];
          },
          [this](const asu_ns::Node* n) {
            return cluster_.topology().rack_of_asu(unsigned(n->id()));
          });
    } else {
      store_router = std::make_unique<RoundRobinRouter>();
    }
    to_store_ = std::make_unique<StageOutput>(
        eng_, cluster_.network(),
        StageSpec{.record_bytes = mp_.record_bytes,
                  .endpoints = store_in_->endpoints(asu_nodes),
                  .router = std::move(store_router),
                  .producers = h_,
                  .name = pfx("to_store"),
                  .charge_scale = charge_scale_,
                  .telemetry = cfg_.telemetry.histograms});

    // Functor-level latency histograms (the per-packet delivery and
    // queue-wait instruments live inside the StageOutputs above). All
    // push-model: registered only on opt-in, fed from control flow that
    // runs anyway, so the digest and — when off — the metrics
    // fingerprint are untouched.
    if (cfg_.telemetry.histograms) {
      auto& reg = eng_.metrics();
      sort_hist_ = &reg.latency(pfx("sort.packet_seconds"));
      store_hist_ = &reg.latency(pfx("store.packet_seconds"));
      phase_hist_ = &reg.latency(pfx("dsm.phase_seconds"));
      job_hist_ = &reg.latency(pfx("dsm.job_seconds"));
      if (cfg_.load_manager.mode == LoadManagerMode::Manage &&
          cfg_.load_manager.migration) {
        migration_hist_ = &reg.latency(pfx("lm.migration_seconds"));
      }
    }

    stored_.assign(d_, {});
    records_sorted_per_host_.assign(h_, 0);
    sort_staged_records_.assign(h_, 0);
    store_end_.assign(d_, 0.0);

    // Fault layer: spawned only for a non-empty plan so fault-free runs
    // make no extra RNG draws, schedule no extra events, and register no
    // extra metrics — the pinned golden digests stay bit-for-bit intact.
    if (!cfg_.faults.empty()) {
      to_sort_->set_fault_retry(cfg_.faults.retry_timeout,
                                cfg_.faults.max_retries);
      to_store_->set_fault_retry(cfg_.faults.retry_timeout,
                                 cfg_.faults.max_retries);
      // Embedded jobs configure the retry contract but never inject: the
      // cluster's fault timeline belongs to the tenant scheduler (one
      // injector for everyone, not one per job).
      if (!embedded_) {
        injector_ = std::make_unique<fault::FaultInjector>(
            cluster_, cfg_.faults,
            sim::Rng(cfg_.seed).stream(sim::stream_id("faults")));
        eng_.spawn(injector_->run(), "fault-injector");
      }
    }
  }

  /// Standalone only: the in-sim monitor/manager pair and the passive
  /// sampler. Embedded jobs skip this whole layer — the scheduler runs
  /// one shared monitor + cross-job manager for the cluster.
  void attach_management() {
    // Load-management layer: like the fault layer, constructed only when
    // asked for, so Off-mode runs schedule no sampling events and
    // register no lm metrics (digest neutrality for the pinned goldens).
    if (cfg_.load_manager.mode != LoadManagerMode::Off) {
      monitor_ =
          std::make_unique<LoadMonitor>(cluster_, cfg_.load_manager.period);
      if (cfg_.load_manager.mode == LoadManagerMode::Manage) {
        manager_ = std::make_unique<LoadManager>(eng_, cfg_.load_manager);
        if (switch_router_ != nullptr) {
          manager_->manage_router(switch_router_);
        }
        if (cfg_.load_manager.migration) {
          // Sort instances (one per host) may migrate; any host is a
          // candidate destination. Each declares its live working set
          // (staged records) and wire cost so the placer can price
          // moves and pick pre-copy vs stop-copy.
          manager_->manage_instances(host_nodes_vec(), host_nodes_vec());
          for (unsigned hh = 0; hh < h_; ++hh) {
            manager_->declare_instance(hh, sort_declaration(hh));
          }
        }
        monitor_->set_observer(
            [this](const LoadSample& s) { manager_->on_sample(s); });
      }
      monitor_->start(cfg_.load_manager.max_samples);
    }

    // Sim-time series: a passive sampler driven from the engine's run
    // loop (see Engine::set_sampler), NOT a scheduled process — a
    // sampling coroutine would add events and move the digest. Probe
    // order is fixed by configuration, so serial and parallel sweeps
    // emit identical time_series blocks.
    if (cfg_.telemetry.sampler) {
      const double period = cfg_.telemetry.sample_period > 0
                                ? cfg_.telemetry.sample_period
                                : mp_.util_bin;
      sampler_ = std::make_unique<obs::Sampler>(
          period, cfg_.telemetry.sample_capacity);
      for (unsigned i = 0; i < h_; ++i) {
        sampler_->add_probe(
            "host.load." + std::to_string(i),
            [n = &cluster_.host(i)] { return n->cpu().backlog(); });
      }
      for (unsigned a = 0; a < d_; ++a) {
        sampler_->add_probe(
            "asu.backlog." + std::to_string(a),
            [n = &cluster_.asu(a)] { return n->cpu().backlog(); });
      }
      if (injector_ != nullptr) {
        sampler_->add_probe("fault.nodes_impaired", [this] {
          double n = 0;
          for (unsigned i = 0; i < h_; ++i) {
            if (cluster_.host(i).health() != asu_ns::NodeHealth::Healthy) {
              ++n;
            }
          }
          for (unsigned a = 0; a < d_; ++a) {
            if (cluster_.asu(a).health() != asu_ns::NodeHealth::Healthy) {
              ++n;
            }
          }
          return n;
        });
      }
      if (manager_ != nullptr) {
        sampler_->add_probe("lm.migrations", [this] {
          return double(manager_->migrations());
        });
        sampler_->add_probe("lm.router_switches", [this] {
          return double(manager_->router_switches());
        });
        if (switch_router_ != nullptr) {
          sampler_->add_probe("lm.router_dynamic", [this] {
            return switch_router_->dynamic_active() ? 1.0 : 0.0;
          });
        }
      }
      eng_.set_sampler(sampler_.get());
    }
  }

  /// Launch the pass-1 instance coroutines. Standalone spawns them bare
  /// (names and order identical to the pre-refactor code, so the pinned
  /// digests — which fold spawn names — are untouched); embedded wraps
  /// each in tracked() so job_body() can detect drain on a shared
  /// engine, where Engine::run() returning is not this job's signal.
  void spawn_pass1() {
    for (unsigned a = 0; a < d_; ++a) {
      spawn_instance(distribute_instance(a),
                     pfx("distribute") + std::to_string(a));
    }
    for (unsigned hh = 0; hh < h_; ++hh) {
      spawn_instance(sort_instance(hh), pfx("sort") + std::to_string(hh));
    }
    for (unsigned a = 0; a < d_; ++a) {
      spawn_instance(store_instance(a), pfx("store") + std::to_string(a));
    }
  }

  void spawn_instance(sim::Task<> body, std::string name) {
    if (embedded_) {
      eng_.spawn(tracked(std::move(body)), std::move(name));
    } else {
      eng_.spawn(std::move(body), std::move(name));
    }
  }

  /// Completion envelope for embedded instances: run the instance, then
  /// count it done and wake the job body when the last one drains.
  sim::Task<> tracked(sim::Task<> inner) {
    co_await std::move(inner);
    if (++finished_instances_ == total_instances_) {
      job_done_.notify_all();
    }
  }

  [[nodiscard]] std::vector<asu_ns::Node*> host_nodes_vec() {
    std::vector<asu_ns::Node*> nodes;
    nodes.reserve(h_);
    for (unsigned i = 0; i < h_; ++i) nodes.push_back(&cluster_.host(i));
    return nodes;
  }

  /// The migration economics of sort instance `hh`: its working set is
  /// the records currently staged toward incomplete runs (exactly the
  /// bytes the consult point ships), the fixed overhead is the control/
  /// context cost every move pays, and the wire cost is the declared
  /// host-to-host path (serialize out of one NIC, across a link, into
  /// the other NIC) — an estimate for *pricing*; the actual transfer is
  /// charged by the network model when the move executes.
  [[nodiscard]] MigrationDeclaration sort_declaration(unsigned hh) {
    MigrationDeclaration decl;
    decl.working_set_bytes = [this, hh] {
      return sort_staged_records_[hh] * mp_.record_bytes;
    };
    decl.overhead_bytes = kMigrationOverheadBytes;
    decl.wire_seconds_per_byte =
        2.0 / mp_.host_nic_bandwidth + 1.0 / mp_.link_bandwidth;
    decl.dirty_fraction = kPrecopyDirtyFraction;
    return decl;
  }

  /// Per-ASU workload stream: the splitter pre-pass must regenerate the
  /// exact key sequence each distribute instance will see, so both draw
  /// from the same named stream. Independent of the routing stream by
  /// construction (distinct stream ids), not by seed arithmetic.
  [[nodiscard]] sim::Rng workload_stream(unsigned a) const {
    return sim::Rng(cfg_.seed).stream(sim::stream_id("workload", a));
  }

  [[nodiscard]] std::size_t local_share(unsigned a) const {
    const std::size_t base = cfg_.total_records / d_;
    const std::size_t extra = a < cfg_.total_records % d_ ? 1 : 0;
    return base + extra;
  }

  sim::Task<> distribute_instance(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    obs::Counter& records_done =
        eng_.metrics().counter(pfx("functor.distribute") +
                               std::to_string(a) + ".records");
    const std::size_t n_local = local_share(a);
    if (n_local == 0) {
      to_sort_->producer_done();
      co_return;
    }
    KeyGenerator gen(cfg_.key_dist, n_local, workload_stream(a));
    asu_ns::Disk::ReadStream rs(node.disk(),
                                block_records_ * mp_.record_bytes);

    std::vector<Packet> staging(alpha_);
    std::vector<std::uint32_t> seq(alpha_, 0);
    for (unsigned s = 0; s < alpha_; ++s) {
      staging[s].subset = s;
      staging[s].records = to_sort_->pool().acquire(packet_records_);
    }

    const double per_record_cpu =
        cfg_.distribute_on_asus
            ? mp_.cost.distribute_per_record(cfg_.alpha, /*on_asu=*/true)
            : 0.0;  // conventional storage: no integrated processing

    // The staged-record budget is the ASU memory bound; when staging
    // grows past it, the fullest subset buffer is flushed as a (possibly
    // partial) packet. This keeps ASU state bounded while records flow
    // downstream continuously instead of bursting at end-of-input.
    const std::size_t budget_records = std::max<std::size_t>(
        packet_records_, mp_.asu_memory / mp_.record_bytes / 2);
    std::size_t staged_records = 0;

    std::uint32_t next_id = a * 0x1000000u;
    std::size_t remaining = n_local;
    std::vector<Packet> ready;
    while (remaining > 0) {
      // Degraded modes: a crashed ASU stops reading/classifying until it
      // recovers (one branch on the healthy path, no engine work).
      while (!node.running()) co_await node.health_wait();
      const std::size_t blk = std::min(block_records_, remaining);
      remaining -= blk;
      co_await rs.next_block(/*last=*/remaining == 0);

      // Execute the real classification for this block; flushes are
      // collected and emitted after the (possibly measured) CPU charge.
      ready.clear();
      const double w0 = wall_seconds();
      for (std::size_t i = 0; i < blk; ++i) {
        const std::uint32_t key = gen.next();
        checksum_in_[a] += key;
        ++count_in_[a];
        const auto s = cfg_.distribute_on_asus
                           ? classifier_(em::KeyRecord{key, 0})
                           : 0u;
        staging[s].records.push_back({key, next_id++});
        ++staged_records;
        if (staging[s].records.size() >= packet_records_) {
          staged_records -= staging[s].records.size();
          stage_ready(staging[s], seq[s], ready, to_sort_->pool(),
                      packet_records_);
        } else if (staged_records >= budget_records) {
          std::size_t fullest = 0;
          for (unsigned t = 1; t < alpha_; ++t) {
            if (staging[t].records.size() >
                staging[fullest].records.size()) {
              fullest = t;
            }
          }
          staged_records -= staging[fullest].records.size();
          stage_ready(staging[fullest], seq[fullest], ready,
                      to_sort_->pool(), packet_records_);
        }
      }
      const double wall = wall_seconds() - w0;
      records_done.inc(blk);

      if (cfg_.distribute_on_asus) {
        // Measured mode times the real classification kernel; the
        // per-record I/O-path handling is not executed by the emulation
        // (disk and NIC are models), so it stays a declared charge.
        const double charge =
            mp_.measured_timing
                ? wall * mp_.measured_scale +
                      double(blk) * mp_.cost.asu_handling
                : double(blk) * per_record_cpu;
        if (charge > 0) co_await node.compute(scaled(charge));
      }
      for (auto& pkt : ready) {
        co_await to_sort_->emit(node, std::move(pkt));
      }
    }
    ready.clear();
    for (unsigned s = 0; s < alpha_; ++s) {
      if (!staging[s].records.empty()) {
        stage_ready(staging[s], seq[s], ready, to_sort_->pool(),
                    packet_records_);
      }
    }
    for (auto& pkt : ready) {
      co_await to_sort_->emit(node, std::move(pkt));
    }
    to_sort_->producer_done();
  }

  /// Flush one staging slot into `ready`, refilling the slot with a
  /// recycled buffer so the next fill starts at full capacity without a
  /// fresh allocation.
  static void stage_ready(Packet& slot, std::uint32_t& seq,
                          std::vector<Packet>& ready, PacketPool& pool,
                          std::size_t capacity) {
    Packet out;
    out.subset = slot.subset;
    out.seq = seq++;
    out.records = std::move(slot.records);
    slot.records = pool.acquire(capacity);
    ready.push_back(std::move(out));
  }

  sim::Task<> sort_instance(unsigned hh) {
    // The instance's location is mutable state: the load manager may
    // re-pin it to another host mid-stream (functor migration).
    asu_ns::Node* node = &cluster_.host(hh);
    auto& in = sort_in_->inbox(hh);
    const std::uint32_t track =
        eng_.tracer().track(pfx("sort") + std::to_string(hh));
    const std::size_t run_len = cfg_.host_run_length();
    std::unordered_map<std::uint32_t, std::vector<em::KeyRecord>> staging;
    std::uint32_t next_run_id = hh * 0x100000u;

    while (true) {
      auto p = co_await in.recv();
      if (!p) break;
      to_sort_->consumed(*p, track);
      const double t_take = eng_.now();
      // Accepted packets stay queued across a crash window; processing
      // pauses here and resumes on recovery (nothing is lost).
      while (!node->running()) co_await node->health_wait();
      // Migration consult point: between packets, the functor's state is
      // exactly its staged records, so that is what the move ships (plus
      // the fixed control/context overhead). Packets already in flight
      // complete against the old location's accounting.
      if (manager_ != nullptr || ext_manager_ != nullptr) {
        const MigrationPlan& plan =
            manager_ != nullptr
                ? manager_->migration_plan(hh)
                : ext_manager_->migration_plan(ext_client_, hh);
        asu_ns::Node* target = plan.to;
        if (target != nullptr && target != node) {
          std::size_t staged = 0;
          for (const auto& [s, buf] : staging) staged += buf.size();
          const std::size_t state_bytes = staged * mp_.record_bytes;
          const double t_move = eng_.now();
          if (plan.mode == MigrationMode::PreCopy && state_bytes > 0) {
            // Pre-copy: the bulk state ships in the background (its
            // wire charges are real, but the instance does not wait on
            // them); the stalled transfer is only the fixed overhead
            // plus the dirty delta assumed re-staged meanwhile.
            eng_.spawn(precopy_bulk(*node, *target, state_bytes),
                       pfx("sort") + std::to_string(hh) + ".precopy");
            const std::size_t dirty = std::size_t(
                double(state_bytes) * kPrecopyDirtyFraction);
            co_await cluster_.network().transfer(
                *node, *target, dirty + kMigrationOverheadBytes);
          } else {
            // Stop-copy: freeze for the whole working set + overhead.
            co_await cluster_.network().transfer(
                *node, *target, state_bytes + kMigrationOverheadBytes);
          }
          if (migration_hist_ != nullptr) {
            migration_hist_->observe(eng_.now() - t_move);
          }
          if (p->trace_id != 0 && eng_.tracer().enabled()) {
            // The re-pin shows up in the packet's flow lane: the packet
            // that triggered the consult carries the move.
            eng_.tracer().flow_step(track,
                                    "migrate->" + target->cpu().name(),
                                    eng_.now(), p->trace_id);
          }
          node = target;
          if (!sort_rack_.empty()) {
            sort_rack_[hh] =
                cluster_.topology().rack_of_host(unsigned(target->id()));
          }
          to_sort_->set_target_node(hh, *target);
          if (manager_ != nullptr) {
            manager_->migration_performed(hh, *target);
          } else {
            ext_manager_->migration_performed(ext_client_, hh, *target);
          }
        }
      }
      const std::uint64_t parent_flow = p->trace_id;
      auto& buf = staging[p->subset];
      buf.insert(buf.end(), p->records.begin(), p->records.end());
      sort_staged_records_[hh] += p->records.size();
      to_sort_->pool().release(std::move(p->records));
      while (buf.size() >= run_len) {
        std::vector<em::KeyRecord> block(buf.begin(),
                                         buf.begin() + std::ptrdiff_t(run_len));
        buf.erase(buf.begin(), buf.begin() + std::ptrdiff_t(run_len));
        sort_staged_records_[hh] -= run_len;
        co_await emit_run(*node, hh, p->subset, std::move(block),
                          next_run_id++, parent_flow);
      }
      if (sort_hist_ != nullptr) sort_hist_->observe(eng_.now() - t_take);
    }
    // Input closed: flush partial blocks as short runs.
    for (auto& [subset, buf] : staging) {
      if (!buf.empty()) {
        sort_staged_records_[hh] -= buf.size();
        co_await emit_run(*node, hh, subset, std::move(buf), next_run_id++,
                          /*parent_flow=*/0);
      }
    }
    to_store_->producer_done();
  }

  /// Background half of a pre-copy move: ship the bulk working set
  /// without the instance waiting on it. The wire charges are real —
  /// pre-copy trades stall time for total bytes (the dirty delta ships
  /// twice), exactly the tradeoff the placer priced.
  sim::Task<> precopy_bulk(asu_ns::Node& from, asu_ns::Node& to,
                           std::size_t bytes) {
    co_await cluster_.network().transfer(from, to, bytes);
  }

  sim::Task<> emit_run(asu_ns::Node& node, unsigned hh, std::uint32_t subset,
                       std::vector<em::KeyRecord> block,
                       std::uint32_t run_id, std::uint64_t parent_flow) {
    const double w0 = wall_seconds();
    std::sort(block.begin(), block.end());
    const double wall = wall_seconds() - w0;
    const double charge =
        mp_.measured_timing
            ? wall * mp_.measured_scale +
                  double(block.size()) * mp_.cost.host_handling
            : double(block.size()) *
                  mp_.cost.sort_per_record(cfg_.host_run_length(),
                                           /*on_asu=*/false);
    co_await node.compute(scaled(charge));
    records_sorted_per_host_[hh] += block.size();
    eng_.metrics()
        .counter(pfx("functor.sort") + std::to_string(hh) + ".records")
        .inc(block.size());

    std::size_t off = 0;
    std::uint32_t seq = 0;
    while (off < block.size()) {
      const std::size_t n = std::min(packet_records_, block.size() - off);
      Packet out;
      out.subset = subset;
      out.run_id = run_id;
      out.seq = seq++;
      out.sorted = true;
      // Derived flow: the sorted-run packet's lane links back to the
      // distribute packet whose arrival completed the run.
      out.parent_id = parent_flow;
      out.records = to_store_->pool().acquire(n);
      out.records.assign(block.begin() + std::ptrdiff_t(off),
                         block.begin() + std::ptrdiff_t(off + n));
      off += n;
      co_await to_store_->emit(node, std::move(out));
    }
  }

  sim::Task<> store_instance(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    obs::Counter& records_done =
        eng_.metrics().counter(pfx("functor.store") + std::to_string(a) +
                               ".records");
    const std::uint32_t track =
        eng_.tracer().track(pfx("store") + std::to_string(a));
    auto& in = store_in_->inbox(a);
    // Chunks are keyed by (run_id, seq) rather than appended in arrival
    // order: fault re-routing (retry-with-timeout) can let a later chunk
    // of a run overtake an earlier one, and chunk seqs within a run are
    // assigned in key order, so seq-ordered concatenation reconstructs a
    // sorted run under any interleaving. Arrival order == seq order in
    // fault-free runs, so this is behavior-neutral there.
    struct OpenRun {
      std::uint32_t subset = 0;
      std::map<std::uint32_t, std::vector<em::KeyRecord>> chunks;
    };
    std::map<std::uint32_t, OpenRun> open;  // run_id -> accumulating run
    while (true) {
      auto p = co_await in.recv();
      if (!p) break;
      to_store_->consumed(*p, track);
      const double t_take = eng_.now();
      while (!node.running()) co_await node.health_wait();
      records_done.inc(p->records.size());
      co_await node.disk().write(p->wire_bytes(mp_.record_bytes));
      if (store_hist_ != nullptr) store_hist_->observe(eng_.now() - t_take);
      OpenRun& run = open[p->run_id];
      run.subset = p->subset;
      auto& chunk = run.chunks[p->seq];
      if (chunk.empty()) {
        chunk = std::move(p->records);
      } else {
        chunk.insert(chunk.end(), p->records.begin(), p->records.end());
        to_store_->pool().release(std::move(p->records));
      }
    }
    auto& dest = stored_[a];
    dest.reserve(open.size());
    for (auto& [run_id, run] : open) {
      StoredRun sr;
      sr.subset = run.subset;
      for (auto& [seq, recs] : run.chunks) {
        sr.records.insert(sr.records.end(), recs.begin(), recs.end());
      }
      dest.push_back(std::move(sr));
    }
    store_end_[a] = eng_.now();
  }

  void validate_pass1(DsmSortReport& rep) const {
    rep.records_in = 0;
    std::uint64_t checksum_in = 0;
    for (unsigned a = 0; a < d_; ++a) {
      rep.records_in += count_in_[a];
      checksum_in += checksum_in_[a];
    }
    rep.runs_sorted_ok = true;
    rep.subsets_ok = true;
    std::uint64_t checksum_out = 0;
    for (const auto& asu_runs : stored_) {
      rep.runs_stored += asu_runs.size();
      for (const auto& run : asu_runs) {
        rep.records_stored += run.records.size();
        if (!std::is_sorted(run.records.begin(), run.records.end())) {
          rep.runs_sorted_ok = false;
        }
        for (const auto& r : run.records) {
          checksum_out += r.key;
          if (cfg_.distribute_on_asus &&
              classifier_(r) != run.subset) {
            rep.subsets_ok = false;
          }
        }
      }
    }
    rep.checksum_ok = (checksum_in == checksum_out) &&
                      (rep.records_in == rep.records_stored);
    rep.records_sorted_per_host = records_sorted_per_host_;
  }

  // ----------------------------- pass 2 -------------------------------

  void run_pass2(DsmSortReport& rep) {
    merge_in_ = std::make_unique<StageInboxes>(eng_, h_, 16);
    final_in_ = std::make_unique<StageInboxes>(eng_, d_, 8);

    std::vector<asu_ns::Node*> host_nodes, asu_nodes;
    for (unsigned i = 0; i < h_; ++i) host_nodes.push_back(&cluster_.host(i));
    for (unsigned i = 0; i < d_; ++i) asu_nodes.push_back(&cluster_.asu(i));

    to_host_merge_ = std::make_unique<StageOutput>(
        eng_, cluster_.network(),
        StageSpec{.record_bytes = mp_.record_bytes,
                  .endpoints = merge_in_->endpoints(host_nodes),
                  .router = std::make_unique<StaticPartitionRouter>(),
                  .producers = d_,
                  .name = "to_host_merge",
                  .telemetry = cfg_.telemetry.histograms});
    to_final_store_ = std::make_unique<StageOutput>(
        eng_, cluster_.network(),
        StageSpec{.record_bytes = mp_.record_bytes,
                  .endpoints = final_in_->endpoints(asu_nodes),
                  .router = std::make_unique<RoundRobinRouter>(),
                  .producers = h_,
                  .name = "to_final_store",
                  .telemetry = cfg_.telemetry.histograms});

    final_end_.assign(d_, pass1_end_);
    subset_bounds_.assign(alpha_, {});
    final_sorted_ok_ = true;

    for (unsigned a = 0; a < d_; ++a) {
      eng_.spawn(asu_merge_instance(a), "asu_merge" + std::to_string(a));
    }
    for (unsigned hh = 0; hh < h_; ++hh) {
      eng_.spawn(host_merge_instance(hh), "host_merge" + std::to_string(hh));
    }
    for (unsigned a = 0; a < d_; ++a) {
      eng_.spawn(final_store_instance(a), "final_store" + std::to_string(a));
    }

    eng_.run();
    if (eng_.unfinished_tasks() != 0) {
      throw std::logic_error("DSM-Sort pass 2 deadlocked; unfinished: " +
                             join_names(eng_.unfinished_task_names()));
    }

    rep.pass2_seconds =
        *std::max_element(final_end_.begin(), final_end_.end()) - pass1_end_;
    rep.records_final = records_final_;

    // Cross-subset order: max key of subset s <= min key of subset s+1.
    std::uint32_t prev_max = 0;
    bool have_prev = false;
    for (const auto& b : subset_bounds_) {
      if (b.count == 0) continue;
      if (have_prev && b.min_key < prev_max) final_sorted_ok_ = false;
      prev_max = b.max_key;
      have_prev = true;
    }
    rep.final_sorted_ok =
        final_sorted_ok_ && records_final_ == rep.records_in;
  }

  sim::Task<> asu_merge_instance(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    std::uint32_t next_run_id = a * 0x10000u + 1;
    for (std::uint32_t s = 0; s < alpha_; ++s) {
      // Collect this ASU's local runs of subset s.
      std::vector<const StoredRun*> runs;
      for (const auto& run : stored_[a]) {
        if (run.subset == s && !run.records.empty()) runs.push_back(&run);
      }
      if (!runs.empty()) {
        // Sequential disk read of the runs we are about to merge.
        std::size_t bytes = 0;
        for (const auto* r : runs) {
          bytes += r->records.size() * mp_.record_bytes;
        }
        co_await node.disk().read(bytes);

        if (cfg_.gamma1 == 1 || runs.size() == 1) {
          // No ASU-side merge: ship runs as-is (hosts take full fan-in).
          for (const auto* r : runs) {
            co_await ship_run(node, s, next_run_id++, r->records);
          }
        } else {
          const std::size_t g =
              cfg_.gamma1 == 0 ? runs.size()
                               : std::min<std::size_t>(cfg_.gamma1,
                                                       runs.size());
          for (std::size_t base = 0; base < runs.size(); base += g) {
            const std::size_t cnt = std::min(g, runs.size() - base);
            auto merged = merge_group(runs, base, cnt);
            co_await node.compute(
                double(merged.size()) *
                mp_.cost.merge_per_record(unsigned(cnt), /*on_asu=*/true));
            co_await ship_run(node, s, next_run_id++, merged);
          }
        }
      }
      // Per-subset completion marker so hosts can merge s immediately.
      Packet marker;
      marker.subset = s;
      marker.run_id = kSubsetDoneMarker;
      co_await to_host_merge_->emit(node, std::move(marker));
    }
    to_host_merge_->producer_done();
  }

  static std::vector<em::KeyRecord> merge_group(
      const std::vector<const StoredRun*>& runs, std::size_t base,
      std::size_t cnt) {
    std::vector<em::LoserTree<em::KeyRecord>::Source> sources;
    sources.reserve(cnt);
    for (std::size_t i = 0; i < cnt; ++i) {
      const auto* run = runs[base + i];
      sources.push_back(
          [run, pos = std::size_t(0)]() mutable -> std::optional<em::KeyRecord> {
            if (pos >= run->records.size()) return std::nullopt;
            return run->records[pos++];
          });
    }
    em::LoserTree<em::KeyRecord> tree(std::move(sources));
    std::vector<em::KeyRecord> out;
    while (auto r = tree.next()) out.push_back(*r);
    return out;
  }

  sim::Task<> ship_run(asu_ns::Node& node, std::uint32_t subset,
                       std::uint32_t run_id,
                       const std::vector<em::KeyRecord>& records) {
    std::size_t off = 0;
    std::uint32_t seq = 0;
    while (off < records.size()) {
      const std::size_t n =
          std::min(packet_records_, records.size() - off);
      Packet out;
      out.subset = subset;
      out.run_id = run_id;
      out.seq = seq++;
      out.sorted = true;
      out.records = to_host_merge_->pool().acquire(n);
      out.records.assign(records.begin() + std::ptrdiff_t(off),
                         records.begin() + std::ptrdiff_t(off + n));
      off += n;
      co_await to_host_merge_->emit(node, std::move(out));
    }
  }

  sim::Task<> host_merge_instance(unsigned hh) {
    asu_ns::Node& node = cluster_.host(hh);
    auto& in = merge_in_->inbox(hh);
    const std::uint32_t track =
        eng_.tracer().track("host_merge" + std::to_string(hh));
    std::map<std::uint32_t, std::map<std::uint32_t, std::vector<em::KeyRecord>>>
        pending;  // subset -> run_id -> records
    std::vector<unsigned> done_markers(alpha_, 0);

    while (true) {
      auto p = co_await in.recv();
      if (!p) break;
      to_host_merge_->consumed(*p, track);
      if (p->run_id == kSubsetDoneMarker) {
        if (++done_markers[p->subset] == d_) {
          co_await merge_subset(node, p->subset, pending[p->subset]);
          pending.erase(p->subset);
        }
        continue;
      }
      auto& run = pending[p->subset][p->run_id];
      if (run.empty()) {
        run = std::move(p->records);
      } else {
        run.insert(run.end(), p->records.begin(), p->records.end());
        to_host_merge_->pool().release(std::move(p->records));
      }
    }
    to_final_store_->producer_done();
  }

  sim::Task<> merge_subset(
      asu_ns::Node& node, std::uint32_t subset,
      std::map<std::uint32_t, std::vector<em::KeyRecord>>& runs) {
    if (runs.empty()) co_return;

    // Multiple host-side merge passes when the fan-in exceeds gamma2_max
    // (bounded merge buffers): groups of gamma2_max runs pre-merge into
    // intermediate runs, charged at the grouped fan-in.
    std::vector<std::vector<em::KeyRecord>> work;
    work.reserve(runs.size());
    for (auto& [id, vec] : runs) work.push_back(std::move(vec));
    while (cfg_.gamma2_max >= 2 && work.size() > cfg_.gamma2_max) {
      std::vector<std::vector<em::KeyRecord>> next;
      for (std::size_t base = 0; base < work.size();
           base += cfg_.gamma2_max) {
        const std::size_t cnt =
            std::min<std::size_t>(cfg_.gamma2_max, work.size() - base);
        if (cnt == 1) {
          next.push_back(std::move(work[base]));
          continue;
        }
        std::vector<em::LoserTree<em::KeyRecord>::Source> sources;
        sources.reserve(cnt);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cnt; ++i) {
          total += work[base + i].size();
          sources.push_back([v = &work[base + i],
                             pos = std::size_t(0)]() mutable
                            -> std::optional<em::KeyRecord> {
            if (pos >= v->size()) return std::nullopt;
            return (*v)[pos++];
          });
        }
        em::LoserTree<em::KeyRecord> tree(std::move(sources));
        std::vector<em::KeyRecord> merged;
        merged.reserve(total);
        while (auto r = tree.next()) merged.push_back(*r);
        co_await node.compute(
            double(total) *
            mp_.cost.merge_per_record(unsigned(cnt), /*on_asu=*/false));
        next.push_back(std::move(merged));
      }
      work = std::move(next);
    }
    runs.clear();
    for (std::size_t i = 0; i < work.size(); ++i) {
      runs.emplace(std::uint32_t(i), std::move(work[i]));
    }

    const unsigned gamma2 = unsigned(runs.size());
    std::vector<em::LoserTree<em::KeyRecord>::Source> sources;
    sources.reserve(runs.size());
    for (auto& [id, vec] : runs) {
      sources.push_back(
          [v = &vec, pos = std::size_t(0)]() mutable
          -> std::optional<em::KeyRecord> {
            if (pos >= v->size()) return std::nullopt;
            return (*v)[pos++];
          });
    }
    em::LoserTree<em::KeyRecord> tree(std::move(sources));
    const double per_rec =
        mp_.cost.merge_per_record(gamma2, /*on_asu=*/false);

    SubsetBounds bounds;
    std::uint32_t prev_key = 0;
    bool first = true;
    std::uint32_t seq = 0;
    while (true) {
      Packet out;
      out.subset = subset;
      out.seq = seq++;
      out.sorted = true;
      out.records = to_final_store_->pool().acquire(packet_records_);
      while (out.records.size() < packet_records_) {
        auto r = tree.next();
        if (!r) break;
        if (!first && r->key < prev_key) final_sorted_ok_ = false;
        prev_key = r->key;
        first = false;
        if (bounds.count == 0) bounds.min_key = r->key;
        bounds.max_key = r->key;
        ++bounds.count;
        out.records.push_back(*r);
      }
      if (out.records.empty()) {
        to_final_store_->pool().release(std::move(out.records));
        break;
      }
      co_await node.compute(double(out.records.size()) * per_rec);
      co_await to_final_store_->emit(node, std::move(out));
    }
    subset_bounds_[subset] = bounds;
  }

  sim::Task<> final_store_instance(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    auto& in = final_in_->inbox(a);
    const std::uint32_t track =
        eng_.tracer().track("final_store" + std::to_string(a));
    while (true) {
      auto p = co_await in.recv();
      if (!p) break;
      to_final_store_->consumed(*p, track);
      co_await node.disk().write(p->wire_bytes(mp_.record_bytes));
      records_final_ += p->records.size();
      to_final_store_->pool().release(std::move(p->records));
    }
    final_end_[a] = eng_.now();
  }

  // ----------------------------- reporting ----------------------------

  void collect_utilization(DsmSortReport& rep) {
    const double horizon = rep.makespan > 0 ? rep.makespan : 1e-9;
    for (unsigned i = 0; i < h_; ++i) {
      const auto& cpu = cluster_.host(i).cpu();
      rep.hosts.push_back({cpu.name(),
                           cpu.utilization().mean_utilization(horizon),
                           cpu.utilization().series(horizon)});
    }
    for (unsigned i = 0; i < d_; ++i) {
      const auto& cpu = cluster_.asu(i).cpu();
      rep.asus.push_back({cpu.name(),
                          cpu.utilization().mean_utilization(horizon),
                          cpu.utilization().series(horizon)});
    }
    rep.util_bin_seconds = mp_.util_bin;
  }

  /// Build the bucket classifier. Sampled splitters take a deterministic
  /// pre-pass over each ASU's key stream (the generators are cheap and
  /// reproducible; a real deployment would sample the stored input).
  [[nodiscard]] std::function<std::uint32_t(const em::KeyRecord&)>
  make_classifier() const {
    if (cfg_.splitters == DsmSortConfig::Splitters::Sampled && alpha_ > 1) {
      std::vector<std::uint32_t> sample;
      for (unsigned a = 0; a < d_; ++a) {
        const std::size_t n_local = local_share(a);
        if (n_local == 0) continue;
        KeyGenerator gen(cfg_.key_dist, n_local, workload_stream(a));
        const std::size_t stride = std::max<std::size_t>(1, n_local / 4096);
        for (std::size_t i = 0; i < n_local; ++i) {
          const auto k = gen.next();
          if (i % stride == 0) sample.push_back(k);
        }
      }
      return SplitterClassifier(choose_splitters(std::move(sample), alpha_));
    }
    return [cls = em::RangeClassifier<std::uint32_t>(0, std::uint32_t(-1),
                                                     alpha_)](
               const em::KeyRecord& r) { return std::uint32_t(cls(r)); };
  }

  [[nodiscard]] std::size_t derive_packet_records() const {
    if (cfg_.packet_records != 0) return cfg_.packet_records;
    const unsigned buckets = cfg_.distribute_on_asus ? cfg_.alpha : 1;
    const std::size_t by_memory =
        mp_.asu_memory / (std::size_t(buckets) * mp_.record_bytes);
    return std::clamp<std::size_t>(by_memory, 64, 4096);
  }

  struct SubsetBounds {
    std::uint32_t min_key = 0;
    std::uint32_t max_key = 0;
    std::size_t count = 0;
  };

  asu_ns::MachineParams mp_;
  DsmSortConfig cfg_;
  // Ownership mode (see the class comment): standalone owns, embedded
  // borrows. The references are what the rest of the class uses, so the
  // two modes share every line of pipeline code. Declaration order
  // matters: the owned slots must initialize before the references bind.
  std::unique_ptr<sim::Engine> owned_eng_;
  std::unique_ptr<asu_ns::Cluster> owned_cluster_;
  sim::Engine& eng_;
  asu_ns::Cluster& cluster_;
  unsigned d_;
  unsigned h_;
  unsigned alpha_;
  std::size_t packet_records_;
  std::size_t block_records_;
  std::function<std::uint32_t(const em::KeyRecord&)> classifier_;

  std::unique_ptr<StageInboxes> sort_in_;
  std::unique_ptr<StageInboxes> store_in_;
  std::unique_ptr<StageOutput> to_sort_;
  std::unique_ptr<StageOutput> to_store_;

  std::unique_ptr<StageInboxes> merge_in_;
  std::unique_ptr<StageInboxes> final_in_;
  std::unique_ptr<StageOutput> to_host_merge_;
  std::unique_ptr<StageOutput> to_final_store_;

  std::vector<std::uint64_t> checksum_in_;
  std::vector<std::size_t> count_in_;
  std::vector<std::vector<StoredRun>> stored_;  // per ASU
  std::vector<std::size_t> records_sorted_per_host_;
  /// Live working set per sort instance (records staged toward
  /// incomplete runs) — the quantity its MigrationDeclaration reports.
  /// Pure bookkeeping on existing control flow: no events, no charges,
  /// digest-neutral in every mode.
  std::vector<std::size_t> sort_staged_records_;
  /// Current rack of each sort instance (hierarchical topologies with
  /// rack_affinity_store only; empty otherwise). Migrations update it so
  /// run storage follows the instance to its new rack.
  std::vector<unsigned> sort_rack_;
  std::vector<double> store_end_;
  double pass1_end_ = 0;

  std::vector<double> final_end_;
  std::vector<SubsetBounds> subset_bounds_;
  std::size_t records_final_ = 0;
  bool final_sorted_ok_ = true;
  std::uint32_t dsm_track_ = 0;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<LoadMonitor> monitor_;
  std::unique_ptr<LoadManager> manager_;
  std::unique_ptr<obs::Sampler> sampler_;
  obs::LatencyHistogram* sort_hist_ = nullptr;
  obs::LatencyHistogram* store_hist_ = nullptr;
  obs::LatencyHistogram* migration_hist_ = nullptr;
  obs::LatencyHistogram* phase_hist_ = nullptr;
  obs::LatencyHistogram* job_hist_ = nullptr;
  SwitchableRouter* switch_router_ = nullptr;  // owned by to_sort_'s router

  // Embedded (job) mode state — inert in standalone runs: embedded_
  // stays false, the condition is constructed but never notified (a
  // no-event operation), and charge_scale_ is exactly 1.0 at the
  // default weight, so the standalone event stream is unchanged.
  bool embedded_ = false;
  double charge_scale_ = 1.0;  // 1 / cfg.fair_share_weight
  double t0_ = 0;
  std::size_t total_instances_ = 0;
  std::size_t finished_instances_ = 0;
  sim::Condition job_done_{eng_};
  LoadManager* ext_manager_ = nullptr;  // shared cross-job arbiter
  std::size_t ext_client_ = 0;
  DsmSortReport rep_;
  bool finished_flag_ = false;
};

DsmSortReport run_dsm_sort(const asu::MachineParams& machine,
                           const DsmSortConfig& config) {
  DsmSortSim sim(machine, config);
  return sim.run();
}

DsmSortJob::DsmSortJob(sim::Engine& eng, asu::Cluster& cluster,
                       const DsmSortConfig& cfg)
    : sim_(std::make_unique<DsmSortSim>(eng, cluster, cfg)) {
  sim_->build_embedded();
}

DsmSortJob::~DsmSortJob() = default;

sim::Task<> DsmSortJob::body() { return sim_->job_body(); }

bool DsmSortJob::finished() const noexcept { return sim_->job_finished(); }

const DsmSortReport& DsmSortJob::report() const {
  return sim_->job_report();
}

SwitchableRouter* DsmSortJob::switch_router() const {
  return sim_->job_switch_router();
}

std::vector<asu::Node*> DsmSortJob::sort_placement() const {
  return sim_->job_sort_placement();
}

void DsmSortJob::set_external_manager(LoadManager* manager,
                                      std::size_t client) {
  sim_->set_external_manager(manager, client);
}

obs::Json dsm_report_to_json(const DsmSortReport& rep) {
  obs::Json j = obs::Json::object();
  j["pass1_seconds"] = rep.pass1_seconds;
  j["pass2_seconds"] = rep.pass2_seconds;
  j["makespan"] = rep.makespan;
  j["records_in"] = rep.records_in;
  j["records_stored"] = rep.records_stored;
  j["records_final"] = rep.records_final;
  j["runs_stored"] = rep.runs_stored;
  j["ok"] = rep.ok();
  j["sim_events"] = rep.sim_events;
  j["digest"] = obs::digest_to_string(rep.digest);
  j["records_sorted_per_host"] =
      obs::Json::array_of(rep.records_sorted_per_host);
  j["peak_host_imbalance"] = rep.peak_host_imbalance;
  j["mean_host_imbalance"] = rep.mean_host_imbalance;
  j["lm_migrations"] = rep.lm_migrations;
  j["lm_router_switches"] = rep.lm_router_switches;
  obs::Json lm_events = obs::Json::array();
  for (const auto& e : rep.lm_events) {
    obs::Json entry = obs::Json::object();
    entry["time"] = e.time;
    entry["what"] = e.what;
    lm_events.push_back(std::move(entry));
  }
  j["lm_events"] = std::move(lm_events);
  // The placer decision journal is present iff the run constructed a
  // manager (config-driven: mode == Manage), so serial and parallel
  // sweeps emit identically shaped artifacts.
  if (rep.lm_managed) {
    obs::Json placer = obs::Json::array();
    for (const auto& d : rep.lm_decisions) {
      obs::Json entry = obs::Json::object();
      entry["time"] = d.time;
      entry["client"] = d.client;
      entry["instance"] = d.instance;
      entry["from"] = d.from;
      entry["to"] = d.to;
      entry["mode"] = std::string(migration_mode_name(d.mode));
      entry["bytes"] = d.bytes;
      entry["est_stall_seconds"] = d.est_stall;
      entry["gain_seconds"] = d.gain;
      placer.push_back(std::move(entry));
    }
    j["placer"] = std::move(placer);
  }
  obs::Json util = obs::Json::object();
  const auto add_nodes = [&](const std::vector<NodeUtilization>& nodes) {
    for (const auto& n : nodes) {
      obs::Json e = obs::Json::object();
      e["mean"] = n.mean;
      e["bin_seconds"] = rep.util_bin_seconds;
      e["series"] = obs::Json::array_of(n.series);
      util[n.node] = std::move(e);
    }
  };
  add_nodes(rep.hosts);
  add_nodes(rep.asus);
  j["utilization"] = std::move(util);
  // Telemetry blocks are config-driven (present iff the run opted in),
  // so serial and parallel sweeps of the same cells emit bit-identical
  // artifacts — presence never depends on runtime state.
  if (!rep.histograms.is_null()) j["histograms"] = rep.histograms;
  if (!rep.time_series.is_null()) j["time_series"] = rep.time_series;
  j["metrics"] = rep.metrics;
  return j;
}

}  // namespace lmas::core

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "asu/network.hpp"
#include "core/functor.hpp"
#include "core/pipeline.hpp"
#include "core/routing.hpp"

namespace lmas::core {

/// Pull-style packet source for a program's input stage: fill `out` and
/// return true, or return false when this instance's input is exhausted.
/// Sources on ASUs are charged disk read time for the bytes they emit.
using SourceFn = std::function<bool(unsigned instance, Packet& out)>;

/// Declarative description of one functor stage: which nodes host its
/// instances (the replication degree is the placement size) and how
/// packets are routed across those instances.
struct ProgramStageSpec {
  std::string name;
  FunctorFactory make;
  std::vector<asu::Node*> placement;
  RouterKind router = RouterKind::RoundRobin;
  /// For Static routing: total subset count (contiguous block ownership).
  std::uint32_t router_subsets = 0;
  /// Inbox depth per instance, in packets.
  std::size_t inbox_packets = 64;

  /// Optional dynamic migration policy (Section 3.3: "load management may
  /// ... migrate functors between host nodes and ASUs"), consulted
  /// between packets. Return the node the instance should run on
  /// (nullptr or the current node = stay). Moving charges the functor's
  /// declared state plus a fixed overhead over the network.
  std::function<asu::Node*(unsigned instance, asu::Node& current)> migrate;
};

struct StageStats {
  std::string name;
  std::uint64_t packets_in = 0;
  std::uint64_t records_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t records_out = 0;
  double busy_seconds = 0;  // declared-cost CPU charged by this stage
  std::uint32_t migrations = 0;
};

struct ProgramStats {
  double makespan = 0;
  std::vector<StageStats> stages;
  /// Packets that reached the final stage's output (the program result).
  std::vector<Packet> sink_output;
};

/// A linear dataflow program: source stage -> functor stages -> sink.
/// This is the general executor behind the model of Section 3 — programs
/// are specified by composing functors; the *system* (this class) owns
/// channels, routing, placement enforcement, and completion tracking.
/// DSM-Sort's phases are a hand-specialized instance of the same
/// machinery (see dsm_sort.cpp).
class Program {
 public:
  explicit Program(asu::Cluster& cluster);
  ~Program();

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Define the source: one generator instance per placement node.
  /// `record_bytes` sets wire/disk accounting (the model's record size).
  void set_source(std::string name, std::vector<asu::Node*> placement,
                  SourceFn source, double per_record_cost = 0);

  /// Append a functor stage. Placement on an ASU requires the functor's
  /// declared state to fit the ASU memory bound (throws otherwise).
  void add_stage(ProgramStageSpec spec);

  /// Execute to completion and collect the last stage's output packets.
  ProgramStats run();

 private:
  struct StageRt;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lmas::core

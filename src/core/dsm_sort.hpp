#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asu/params.hpp"
#include "core/load_manager.hpp"
#include "core/routing.hpp"
#include "core/workload.hpp"
#include "fault/plan.hpp"
#include "obs/json.hpp"

namespace lmas::core {

/// Distribution-level telemetry for a DSM-Sort run (ISSUE: the registry's
/// scalar counters/gauges cannot answer tail questions). Everything here
/// defaults OFF and is digest-neutral when on: histograms are push-model
/// instruments fed from existing control flow, and the sampler is driven
/// by the engine's run loop at period boundaries rather than by a
/// scheduled process — no extra events, no RNG draws, no resource use,
/// so the pinned golden digests are bit-identical either way (only the
/// metrics snapshot grows, which is why the default stays off: the
/// goldens also pin a metrics fingerprint).
struct TelemetryConfig {
  /// Latency histograms: per-stage packet service time, per-packet queue
  /// wait and delivery time (StageSpec.telemetry on every stage),
  /// migration duration, and job/phase completion time. Quantile
  /// summaries land in DsmSortReport::histograms.
  bool histograms = false;

  /// Sim-time series: periodic snapshots of host/ASU CPU backlog, fault
  /// state (when a plan is active) and lm.* decisions (when managed)
  /// into bounded rings, emitted as DsmSortReport::time_series.
  bool sampler = false;

  /// Sampling period in sim seconds; 0 derives it from the machine's
  /// utilization bin so the series lines up with the utilization block.
  double sample_period = 0;

  /// Ring capacity per probe (oldest samples evicted beyond this).
  std::size_t sample_capacity = 4096;

  [[nodiscard]] bool any() const noexcept { return histograms || sampler; }
};

/// Configuration of the hybrid distribute/sort/merge program (Section 4.3).
/// DSM-Sort partitions records into alpha buckets, forms sorted runs of
/// beta records per bucket, and gamma-way merges the runs, with
/// alpha * beta * gamma = n and `Total Work = n log(alpha beta gamma)`.
/// Choosing alpha shifts comparisons between the ASU-resident distribute
/// functors and the host-resident sort functors — the knob behind Fig. 9.
struct DsmSortConfig {
  std::size_t total_records = 1 << 20;

  /// Distribute order (buckets). alpha = 1 degenerates to pure forwarding.
  unsigned alpha = 16;

  /// log2 of the fixed product K = alpha * beta: both configurations reach
  /// the same post-pass-1 sortedness (pass-2 fan-in gamma = n / K), so
  /// raising alpha lowers beta one-for-one in compare counts.
  unsigned log2_alpha_beta = 18;

  /// false = passive-storage baseline: conventional storage units stream
  /// raw blocks, all computation (full-K run formation) on the hosts.
  bool distribute_on_asus = true;

  /// Routing of subset packets across replicated host sort functors.
  /// Static partitioning is Fig. 10's unmanaged run; SR is the managed one.
  RouterKind sort_router = RouterKind::Static;

  KeyDist key_dist = KeyDist::Uniform;

  /// How distribute buckets are delimited: Range = equal-width key
  /// slices (assumes uniform keys); Sampled = quantile splitters from a
  /// key sample (balances stationary skew, but not time-varying skew —
  /// that is what SR routing addresses).
  enum class Splitters { Range, Sampled };
  Splitters splitters = Splitters::Range;

  /// Records per network packet; 0 derives it from the ASU memory bound
  /// (alpha staging buffers of packet_records * record_bytes must fit).
  std::size_t packet_records = 0;

  /// Run pass 2 (the final merges) as well; Fig. 9 reports pass 1 only.
  bool run_merge_pass = false;

  /// Rack-locality preference for run storage on hierarchical
  /// topologies: sorted-run chunks round-robin over the ASUs in the
  /// producing sort instance's own rack (RackAffinityRouter) instead of
  /// over all ASUs, keeping pass-1 run traffic off the oversubscribed
  /// spine. No effect on flat specs — those build the exact pre-existing
  /// RoundRobinRouter, so flat runs (and all pinned goldens) are
  /// byte-identical whatever this is set to.
  bool rack_affinity_store = true;

  /// ASU-side pre-merge fan-in gamma_1 (gamma = gamma_1 * gamma_2 split
  /// between ASUs and hosts): 0 = merge all local runs per subset at the
  /// ASU, 1 = no ASU merge (hosts take the full fan-in).
  unsigned gamma1 = 0;

  /// Host-side merge fan-in cap gamma_2 (0 = unlimited). When a subset
  /// arrives with more runs than this, the host merges in multiple
  /// passes — the paper notes more passes may be required if gamma is
  /// small, though two suffice in practice.
  unsigned gamma2_max = 0;

  std::uint64_t seed = 42;

  /// Metric/trace/spawn-name prefix for this job ("<label>." prepended
  /// to every instrument, functor counter, and spawned-task name).
  /// Empty (the default) keeps every name at its legacy form, so
  /// single-program runs and their pinned goldens are byte-identical.
  /// The tenant scheduler assigns a unique label per admitted job so
  /// concurrent jobs on one engine never collide in the registry.
  std::string label;

  /// Fair-share weight for multi-tenant charging: this job's CPU and
  /// wire charges scale at 1/weight, so a weight-2 tenant occupies
  /// shared resources half as long per unit of work (weighted fair
  /// sharing approximated at functor granularity; ASU disk time is the
  /// job's own data and is never scaled). Must be > 0 — rejected at
  /// construction with std::invalid_argument otherwise. 1.0 multiplies
  /// exactly, so single-tenant runs stay bit-identical.
  double fair_share_weight = 1.0;

  /// Deterministic fault schedule driven while pass 1 runs (the injector
  /// drains its whole timeline inside the pass-1 event loop). Empty plan
  /// = injector never spawned: zero digest drift, zero extra metrics —
  /// fault-free runs stay bit-identical to pre-fault-layer builds.
  fault::FaultPlan faults;

  /// Online load management for pass 1 (Section 3.3). Off (the default)
  /// constructs neither monitor nor manager: zero extra events, zero
  /// extra metrics, pinned golden digests stay bit-for-bit intact.
  /// Monitor samples backlogs (peak_host_imbalance in the report) but
  /// never acts — sampling occupies no resources, so pass timings match
  /// Off exactly. Manage additionally hot-swaps the sort router between
  /// the configured `sort_router` baseline and SR, and migrates sort
  /// instances between hosts, paying state transfer plus
  /// kMigrationOverheadBytes per move.
  LoadManagerConfig load_manager;

  /// When non-empty, enable sim-time tracing for this run and export the
  /// Chrome trace-event file here (loadable in chrome://tracing or
  /// Perfetto). Benches wire this to the LMAS_TRACE environment variable.
  std::string trace_file;

  /// Latency histograms + sim-time series (see TelemetryConfig). Both
  /// default off; enabling them does not move the execution digest.
  TelemetryConfig telemetry;

  [[nodiscard]] std::size_t beta() const {
    const std::size_t k = std::size_t(1) << log2_alpha_beta;
    const std::size_t b = k / std::max(1u, alpha);
    return b == 0 ? 1 : b;
  }
  /// Effective run length on the host: the baseline forms full-K runs.
  [[nodiscard]] std::size_t host_run_length() const {
    return distribute_on_asus ? beta()
                              : (std::size_t(1) << log2_alpha_beta);
  }
};

/// Per-node utilization summary extracted from the simulation.
struct NodeUtilization {
  std::string node;
  double mean = 0;                   // busy fraction over the makespan
  std::vector<double> series;        // per-bin utilization (Fig. 10)
};

struct DsmSortReport {
  double pass1_seconds = 0;
  double pass2_seconds = 0;          // 0 when pass 2 not run
  double makespan = 0;

  std::size_t records_in = 0;
  std::size_t records_stored = 0;    // run records written back to ASUs
  std::size_t records_final = 0;     // pass-2 output records
  std::size_t runs_stored = 0;

  bool runs_sorted_ok = false;       // every stored run is key-sorted
  bool subsets_ok = false;           // records landed in the right bucket
  bool checksum_ok = false;          // key-sum conservation in == out
  bool final_sorted_ok = false;      // pass-2 global order (if run)

  std::vector<NodeUtilization> hosts;
  std::vector<NodeUtilization> asus;

  /// Records sorted per host (skew visibility for Fig. 10).
  std::vector<std::size_t> records_sorted_per_host;

  /// Load-management observations (zero when load_manager.mode == Off):
  /// the monitor's peak and actionable-window-mean host imbalance, and
  /// the manager's action counts plus its decision journal. The peak
  /// saturates on any lone-straggler window; the mean is the
  /// managed-vs-unmanaged figure of merit.
  double peak_host_imbalance = 0;
  double mean_host_imbalance = 0;
  std::uint64_t lm_migrations = 0;
  std::uint64_t lm_router_switches = 0;
  std::vector<LoadManagerEvent> lm_events;

  /// Structured placer journal (one entry per planned move with mode,
  /// priced bytes, stall estimate, gain). `lm_managed` records whether
  /// the run constructed a manager at all — config-driven, so artifact
  /// shape (the `placer` block's presence) never depends on runtime
  /// state.
  bool lm_managed = false;
  std::vector<PlacerDecision> lm_decisions;

  double util_bin_seconds = 0;

  /// Full registry snapshot of the run's engine (per-resource busy
  /// seconds / requests, per-channel bytes, per-functor record counts,
  /// routing choices, pass gauges) — everything a bench artifact needs.
  obs::Json metrics;

  /// Quantile summaries ({name: {count, mean, p50, p90, p99, max}}) of
  /// every latency histogram, when telemetry.histograms was on; null
  /// otherwise (and then absent from the serialized artifact).
  obs::Json histograms;

  /// The sampler's time-series block ({period, samples, times, series:
  /// {probe: [...]}}), when telemetry.sampler was on; null otherwise.
  obs::Json time_series;

  /// Events the engine processed for this run (simulator work metric).
  std::uint64_t sim_events = 0;

  /// Execution digest of the run's engine (see sim::Engine::digest):
  /// identical configuration + seed must reproduce this value exactly.
  std::uint64_t digest = 0;

  [[nodiscard]] bool ok() const {
    return runs_sorted_ok && subsets_ok && checksum_ok &&
           (pass2_seconds == 0 || final_sorted_ok);
  }
};

/// Serialize a report for a BENCH_*.json artifact: validation flags,
/// per-pass timings, per-node utilization series, and the metrics
/// snapshot.
[[nodiscard]] obs::Json dsm_report_to_json(const DsmSortReport& rep);

/// Execute DSM-Sort on an emulated cluster built from `machine`, timing it
/// with the discrete-event simulator. Records are really distributed,
/// sorted and merged; only time is modeled.
DsmSortReport run_dsm_sort(const asu::MachineParams& machine,
                           const DsmSortConfig& config);

class DsmSortSim;

/// One DSM-Sort embedded as a *job* on a shared engine/cluster (the
/// multi-tenant serving path): construction builds the pass-1 pipeline
/// against the caller's cluster, body() is the root coroutine the
/// scheduler spawns, and report() is valid once finished(). Embedded
/// jobs never construct their own monitor/manager, sampler, or fault
/// injector — the tenant scheduler owns cross-job arbitration (shared
/// LoadManager clients) and the cluster's fault timeline — and pass 2
/// is unsupported (std::invalid_argument at construction). Give each
/// concurrent job a unique cfg.label or their registry instruments
/// collide.
class DsmSortJob {
 public:
  DsmSortJob(sim::Engine& eng, asu::Cluster& cluster,
             const DsmSortConfig& cfg);
  ~DsmSortJob();
  DsmSortJob(const DsmSortJob&) = delete;
  DsmSortJob& operator=(const DsmSortJob&) = delete;

  /// The job's root coroutine: spawns the pipeline instances, waits for
  /// all of them to drain, assembles the report. Spawn exactly once.
  [[nodiscard]] sim::Task<> body();

  [[nodiscard]] bool finished() const noexcept;

  /// Valid once finished(). Timings are relative to the job's own start
  /// (body()'s first resume), so pass1_seconds/makespan compose with an
  /// admission-queue wait measured by the scheduler. Engine-wide blocks
  /// (metrics/digest/utilization/time_series) are left empty — they
  /// belong to the shared engine's owner.
  [[nodiscard]] const DsmSortReport& report() const;

  /// The job's switchable sort router (nullptr unless built with mode
  /// Manage + router_swap + distribute_on_asus), for registration with
  /// a shared LoadManager client.
  [[nodiscard]] SwitchableRouter* switch_router() const;

  /// Initial placement of the sort instances (hosts 0..H-1), matching
  /// the instance indexing LoadManager::client_instances expects.
  [[nodiscard]] std::vector<asu::Node*> sort_placement() const;

  /// Wire this job's migration consult points to a shared cross-job
  /// LoadManager client (plan → consult → confirm, per client).
  void set_external_manager(LoadManager* manager, std::size_t client);

 private:
  std::unique_ptr<DsmSortSim> sim_;
};

}  // namespace lmas::core

#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "asu/network.hpp"
#include "asu/node.hpp"
#include "core/packet.hpp"
#include "core/routing.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::core {

/// Declared execution cost of a functor, in host-seconds. Bounded,
/// statically known per-record cost is what makes functors safe to place
/// on shared ASUs and lets the load manager predict placement effects
/// (Section 3.1).
struct FunctorCost {
  double per_record = 0;
  double per_packet = 0;

  [[nodiscard]] double packet_cost(std::size_t records) const noexcept {
    return per_packet + per_record * double(records);
  }
};

/// One instance of a (possibly replicated) downstream functor: its inbox
/// and the node it is pinned to.
struct Endpoint {
  sim::Channel<Packet>* ch = nullptr;
  asu::Node* node = nullptr;
};

/// The outbound side of a functor stage: routes packets across the
/// replicated instances of the next stage, charging network transfer
/// between nodes. Producers must call producer_done(); when the last
/// producer finishes and the last in-flight packet lands, all downstream
/// inboxes are closed.
///
/// Sends are windowed-asynchronous: the sender is occupied only for its
/// own NIC serialization, while link occupancy, propagation latency and
/// receiver-side NIC time play out in flight (DMA-style). A bounded
/// in-flight window keeps memory finite and re-imposes backpressure when
/// the receiver or the wire is the bottleneck.
class StageOutput {
 public:
  StageOutput(sim::Engine& eng, asu::Network& net, std::size_t record_bytes,
              std::vector<Endpoint> endpoints,
              std::unique_ptr<RoutingPolicy> router, unsigned producers,
              std::size_t window_per_producer = 32,
              std::string name = "stage")
      : eng_(&eng),
        net_(&net),
        record_bytes_(record_bytes),
        endpoints_(std::move(endpoints)),
        router_(std::move(router)),
        producers_left_(producers),
        window_(std::max<std::size_t>(1, window_per_producer) * producers),
        slot_free_(eng),
        drained_(eng),
        name_(std::move(name)) {
    targets_.reserve(endpoints_.size());
    for (const auto& ep : endpoints_) targets_.push_back({ep.node});
    // Per-channel instruments: total traffic, batch-size shape, and one
    // counter per downstream instance (= packets routed per choice).
    auto& reg = eng.metrics();
    packets_counter_ = &reg.counter(name_ + ".packets");
    records_counter_ = &reg.counter(name_ + ".records");
    bytes_counter_ = &reg.counter(name_ + ".bytes");
    batch_hist_ = &reg.histogram(name_ + ".packet_records",
                                 {16, 64, 256, 1024, 4096});
    routed_.reserve(endpoints_.size());
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      routed_.push_back(
          &reg.counter(name_ + ".routed." + std::to_string(i)));
    }
    track_ = eng.tracer().track(name_);
  }

  StageOutput(const StageOutput&) = delete;
  StageOutput& operator=(const StageOutput&) = delete;

  [[nodiscard]] std::size_t target_count() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] asu::Node& target_node(std::size_t i) {
    return *endpoints_.at(i).node;
  }

  /// Re-pin an instance's inbox to a new node (functor migration):
  /// subsequent transfers are charged to the new location. Packets
  /// already in flight complete against the old accounting.
  void set_target_node(std::size_t i, asu::Node& node) {
    endpoints_.at(i).node = &node;
    targets_.at(i).node = &node;
  }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t records_sent() const noexcept {
    return records_sent_;
  }

  /// Route `p` with this stage's policy, pay the transfer, deliver.
  [[nodiscard]] sim::Task<> emit(asu::Node& from, Packet p) {
    const std::size_t idx = router_->pick(p, targets_);
    co_await emit_to(idx, from, std::move(p));
  }

  /// Deliver to an explicit instance (ordered streams pin their route).
  [[nodiscard]] sim::Task<> emit_to(std::size_t idx, asu::Node& from,
                                    Packet p) {
    while (inflight_ >= window_) {
      co_await slot_free_.wait();
    }
    ++inflight_;
    ++packets_sent_;
    records_sent_ += p.records.size();
    const std::size_t bytes = p.wire_bytes(record_bytes_);
    packets_counter_->inc();
    records_counter_->inc(p.records.size());
    bytes_counter_->inc(bytes);
    batch_hist_->observe(double(p.records.size()));
    routed_[idx]->inc();
    if (eng_->tracer().enabled()) {
      eng_->tracer().instant(track_,
                             "pkt s" + std::to_string(p.subset) + "->" +
                                 std::to_string(idx),
                             eng_->now());
    }
    // Sender occupancy: its own NIC only.
    co_await from.nic_transfer(bytes);
    eng_->spawn(deliver(idx, &from, std::move(p), bytes));
  }

  void producer_done() {
    assert(producers_left_ > 0);
    if (--producers_left_ == 0) {
      eng_->spawn(close_when_drained());
    }
  }

 private:
  [[nodiscard]] sim::Task<> deliver(std::size_t idx, asu::Node* from,
                                    Packet p, std::size_t bytes) {
    Endpoint& ep = endpoints_[idx];
    if (from != ep.node) {
      if (from->is_asu() != ep.node->is_asu()) {
        co_await net_->link(*from, *ep.node)
            .use(double(bytes) / link_bandwidth());
      }
      co_await eng_->sleep(link_latency());
      co_await ep.node->nic_transfer(bytes);
    }
    co_await ep.ch->send(std::move(p));
    --inflight_;
    slot_free_.notify_one();
    if (inflight_ == 0) drained_.notify_all();
  }

  [[nodiscard]] sim::Task<> close_when_drained() {
    while (inflight_ > 0) {
      co_await drained_.wait();
    }
    for (auto& ep : endpoints_) ep.ch->close();
  }

  [[nodiscard]] double link_bandwidth() const noexcept {
    return net_->params().link_bandwidth;
  }
  [[nodiscard]] double link_latency() const noexcept {
    return net_->params().link_latency;
  }

  sim::Engine* eng_;
  asu::Network* net_;
  std::size_t record_bytes_;
  std::vector<Endpoint> endpoints_;
  std::vector<RouteTarget> targets_;
  std::unique_ptr<RoutingPolicy> router_;
  unsigned producers_left_;
  std::size_t window_;
  std::size_t inflight_ = 0;
  sim::Condition slot_free_;
  sim::Condition drained_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t records_sent_ = 0;
  std::string name_;
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Histogram* batch_hist_ = nullptr;
  std::vector<obs::Counter*> routed_;
  std::uint32_t track_ = 0;
};

/// Inboxes for one stage: one bounded channel per instance. Bounded
/// capacity gives backpressure, modeling the bounded buffers that the
/// model requires of ASU-resident functors.
class StageInboxes {
 public:
  StageInboxes(sim::Engine& eng, std::size_t instances,
               std::size_t capacity_packets = 8) {
    chans_.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i) {
      chans_.push_back(
          std::make_unique<sim::Channel<Packet>>(eng, capacity_packets));
    }
  }

  [[nodiscard]] sim::Channel<Packet>& inbox(std::size_t i) {
    return *chans_.at(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return chans_.size(); }

  /// Build the endpoint list for a StageOutput feeding these inboxes.
  [[nodiscard]] std::vector<Endpoint> endpoints(
      const std::vector<asu::Node*>& nodes) {
    assert(nodes.size() == chans_.size());
    std::vector<Endpoint> eps;
    eps.reserve(chans_.size());
    for (std::size_t i = 0; i < chans_.size(); ++i) {
      eps.push_back({chans_[i].get(), nodes[i]});
    }
    return eps;
  }

 private:
  std::vector<std::unique_ptr<sim::Channel<Packet>>> chans_;
};

}  // namespace lmas::core

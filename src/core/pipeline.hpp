#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "asu/network.hpp"
#include "asu/node.hpp"
#include "core/packet.hpp"
#include "core/packet_pool.hpp"
#include "core/routing.hpp"
#include "sim/channel.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::core {

/// Declared execution cost of a functor, in host-seconds. Bounded,
/// statically known per-record cost is what makes functors safe to place
/// on shared ASUs and lets the load manager predict placement effects
/// (Section 3.1).
struct FunctorCost {
  double per_record = 0;
  double per_packet = 0;

  [[nodiscard]] double packet_cost(std::size_t records) const noexcept {
    return per_packet + per_record * double(records);
  }
};

/// Fixed overhead charged when a functor instance migrates between nodes,
/// on top of its declared state bytes: control messages plus the
/// execution context that moves with the functor (Section 3.3). Shared by
/// Program's migrate hook and the online LoadManager wiring so both
/// charge the paper's migration cost identically.
inline constexpr std::size_t kMigrationOverheadBytes = 4096;

/// One instance of a (possibly replicated) downstream functor: its inbox
/// and the node it is pinned to. A null channel marks a REMOTE instance —
/// one owned by another simulation shard (sim::ShardedEngine, DESIGN.md
/// §14): it has no local inbox, is never offered to the router, and its
/// packets leave the engine through StageOutput::set_remote_sink.
struct Endpoint {
  sim::Channel<Packet>* ch = nullptr;
  asu::Node* node = nullptr;

  [[nodiscard]] bool remote() const noexcept { return ch == nullptr; }
};

/// Everything that shapes one outbound stage, as an options struct so
/// construction sites read as configuration, not as a seven-positional
/// argument puzzle. Designated-initializer friendly:
///
///   StageOutput out(eng, net, {.record_bytes = mp.record_bytes,
///                              .endpoints = inboxes.endpoints(nodes),
///                              .router = make_router({.kind = ...}),
///                              .producers = 4,
///                              .name = "to_sort"});
///
/// Fields not named fall back to the defaults below. The struct is
/// move-only (it carries the routing policy) and is consumed by the
/// StageOutput constructor.
struct StageSpec {
  /// Modeled on-the-wire size of one record (transfer charging).
  std::size_t record_bytes = 0;

  /// Downstream instances: one inbox + pinned node per replica.
  std::vector<Endpoint> endpoints;

  /// Routing policy across the replicas (required).
  std::unique_ptr<RoutingPolicy> router;

  /// Number of upstream producers that will call producer_done().
  /// Must be >= 1: the in-flight window is per-producer, so zero
  /// producers would grant a zero window and the first emit would block
  /// forever. StageOutput validates this at construction. The default
  /// stays 0 so forgetting the field is a loud construction-time error,
  /// not a silently single-producer stage.
  unsigned producers = 0;

  /// In-flight packet window granted per producer (backpressure bound).
  std::size_t window_per_producer = 32;

  /// Metric/trace prefix for this stage's instruments.
  std::string name = "stage";

  /// Fair-share charge scaling for this stage's transfers (multi-tenant
  /// serving): a tenant with fair-share weight w is charged at 1/w for
  /// NIC serialization and link occupancy, approximating a weighted
  /// share of the wire. 1.0 (the default) multiplies exactly, so
  /// single-tenant stages stay bit-identical to the unscaled path.
  double charge_scale = 1.0;

  /// Distribution-level telemetry: registers `<name>.delivery_seconds`
  /// (emit → consumer-inbox arrival) and `<name>.queue_wait_seconds`
  /// (inbox arrival → consumption, via consumed()) latency histograms
  /// and stamps packet timestamps. Off by default: the pinned golden
  /// metrics fingerprints require that no instruments appear unless a
  /// run opts in.
  bool telemetry = false;
};

/// The outbound side of a functor stage: routes packets across the
/// replicated instances of the next stage, charging network transfer
/// between nodes. Producers must call producer_done(); when the last
/// producer finishes and the last in-flight packet lands, all downstream
/// inboxes are closed.
///
/// Sends are windowed-asynchronous: the sender is occupied only for its
/// own NIC serialization, while link occupancy, propagation latency and
/// receiver-side NIC time play out in flight (DMA-style). A bounded
/// in-flight window keeps memory finite and re-imposes backpressure when
/// the receiver or the wire is the bottleneck.
class StageOutput {
 public:
  StageOutput(sim::Engine& eng, asu::Network& net, StageSpec spec)
      : eng_(&eng),
        net_(&net),
        record_bytes_(spec.record_bytes),
        endpoints_(std::move(spec.endpoints)),
        router_(std::move(spec.router)),
        producers_left_(spec.producers),
        window_(std::max<std::size_t>(1, spec.window_per_producer) *
                spec.producers),
        charge_scale_(spec.charge_scale),
        slot_free_(eng),
        drained_(eng),
        name_(std::move(spec.name)) {
    // producers == 0 would make window_ zero and the first emit_to spin
    // on `inflight_ >= window_` forever; catch the misconfiguration here.
    // A throw, not an assert: the default build defines NDEBUG, where an
    // assert-only guard degrades back into the silent hang.
    if (spec.producers == 0) {
      throw std::invalid_argument("StageOutput '" + name_ +
                                  "': StageSpec.producers must be >= 1 "
                                  "(the in-flight window is per-producer)");
    }
    targets_.reserve(endpoints_.size());
    for (const auto& ep : endpoints_) targets_.push_back({ep.node});
    // Per-channel instruments: total traffic, batch-size shape, and one
    // counter per downstream instance (= packets routed per choice).
    auto& reg = eng.metrics();
    packets_counter_ = &reg.counter(name_ + ".packets");
    records_counter_ = &reg.counter(name_ + ".records");
    bytes_counter_ = &reg.counter(name_ + ".bytes");
    batch_hist_ = &reg.histogram(name_ + ".packet_records",
                                 {16, 64, 256, 1024, 4096});
    routed_.reserve(endpoints_.size());
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      routed_.push_back(
          &reg.counter(name_ + ".routed." + std::to_string(i)));
    }
    if (spec.telemetry) {
      delivery_hist_ = &reg.latency(name_ + ".delivery_seconds");
      queue_wait_hist_ = &reg.latency(name_ + ".queue_wait_seconds");
    }
    track_ = eng.tracer().track(name_);
  }

  StageOutput(const StageOutput&) = delete;
  StageOutput& operator=(const StageOutput&) = delete;

  [[nodiscard]] std::size_t target_count() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] asu::Node& target_node(std::size_t i) {
    return *endpoints_.at(i).node;
  }

  /// Cross-shard delivery hook (sim::ShardedEngine integration): called
  /// with (instance index, arrival sim-time, packet) when a packet is
  /// emitted to a remote endpoint. The sender side of the transfer — its
  /// NIC serialization and the wire propagation latency — is charged in
  /// THIS engine before the sink fires; receiver-side charging (NIC,
  /// inbox backpressure) belongs to the shard that owns the instance and
  /// happens when it applies the message at a window boundary. Remote
  /// endpoints are reachable via emit_to only: routing policies need
  /// receiver-local load state this shard cannot see, so the router's
  /// active set never includes them.
  using RemoteSink = std::function<void(std::size_t, double, Packet&&)>;
  void set_remote_sink(RemoteSink sink) { remote_sink_ = std::move(sink); }

  /// Re-pin an instance's inbox to a new node (functor migration):
  /// subsequent transfers are charged to the new location. Packets
  /// already in flight complete against the old accounting.
  void set_target_node(std::size_t i, asu::Node& node) {
    endpoints_.at(i).node = &node;
    targets_.at(i).node = &node;
    targets_dirty_ = true;
  }

  /// Degraded-mode delivery contract (see fault::FaultPlan): how long an
  /// in-flight packet waits before re-entering the router when its target
  /// crashes under it, and how many re-routes it attempts before parking
  /// until that replica recovers.
  void set_fault_retry(double timeout, std::size_t max_retries) {
    assert(timeout > 0);
    retry_timeout_ = timeout;
    max_retries_ = max_retries;
  }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t records_sent() const noexcept {
    return records_sent_;
  }

  /// Record-buffer recycler for this stage's traffic: producers acquire
  /// staging buffers here and the consumers on the other end of the
  /// channel release spent ones back, closing the allocation loop.
  /// Same-engine (single-thread) use only — see PacketPool.
  [[nodiscard]] PacketPool& pool() noexcept { return pool_; }

  /// Route `p` with this stage's policy, pay the transfer, deliver.
  /// Routing sees only instances whose node is currently running
  /// (Section 3.3: the target set of a set-typed functor shrinks and
  /// grows); if every replica is down the sender parks on the health
  /// board until one recovers.
  [[nodiscard]] sim::Task<> emit(asu::Node& from, Packet p) {
    refresh_active();
    while (active_.empty()) {
      // Without a health board there is no recovery signal to park on:
      // waiting would be an unbounded spin through the event queue. This
      // must stay a throw, not an assert — under NDEBUG an assert-only
      // guard degrades into a silent infinite loop.
      if (net_->health_board() == nullptr) {
        throw std::logic_error(
            "StageOutput '" + name_ +
            "': every target is down and the network has no health board "
            "to wait on");
      }
      co_await net_->health_board()->wait();
      refresh_active();
    }
    const std::size_t idx = active_index_[router_->pick(p, active_)];
    co_await emit_to(idx, from, std::move(p));
  }

  /// Deliver to an explicit instance (ordered streams pin their route).
  [[nodiscard]] sim::Task<> emit_to(std::size_t idx, asu::Node& from,
                                    Packet p) {
    // Fail at the emit site, not in the spawned deliver() task: the
    // producer coroutine holds the context a debugger needs.
    if (endpoints_.at(idx).remote() && !remote_sink_) {
      throw std::logic_error("StageOutput '" + name_ +
                             "': emit_to targeted a remote endpoint but no "
                             "remote sink is installed (set_remote_sink)");
    }
    while (inflight_ >= window_) {
      co_await slot_free_.wait();
    }
    ++inflight_;
    ++packets_sent_;
    records_sent_ += p.records.size();
    const std::size_t bytes = p.wire_bytes(record_bytes_);
    packets_counter_->inc();
    records_counter_->inc(p.records.size());
    bytes_counter_->inc(bytes);
    batch_hist_->observe(double(p.records.size()));
    routed_[idx]->inc();
    if (delivery_hist_ != nullptr) p.t_emit = eng_->now();
    if (eng_->tracer().enabled()) {
      // Open (or continue) the packet's causal flow lane. Packets that
      // already carry a flow id — e.g. re-emitted after a retry — keep
      // it; fresh packets get a new id, parented to whatever upstream
      // flow fed them (parent_id set by the producer, 0 = root).
      if (p.trace_id == 0) p.trace_id = eng_->next_trace_id();
      eng_->tracer().flow_begin(track_,
                                "pkt s" + std::to_string(p.subset) + "->" +
                                    std::to_string(idx),
                                eng_->now(), p.trace_id, p.parent_id);
    }
    // Sender occupancy: its own NIC only.
    co_await from.nic_transfer(bytes, charge_scale_);
    eng_->spawn(deliver(idx, &from, std::move(p), bytes));
  }

  void producer_done() {
    assert(producers_left_ > 0);
    if (--producers_left_ == 0) {
      eng_->spawn(close_when_drained());
    }
  }

  /// Consumer-side bookkeeping: call once per packet received from this
  /// stage's inboxes, as close to the recv as possible. Closes the
  /// packet's queue-wait measurement (inbox arrival → here, including
  /// any time the channel was full) and terminates its causal flow lane
  /// on the consumer's track. Free when telemetry and tracing are off.
  void consumed(const Packet& p, std::uint32_t consumer_track) {
    if (queue_wait_hist_ != nullptr) {
      queue_wait_hist_->observe(eng_->now() - p.t_enqueue);
    }
    if (p.trace_id != 0 && eng_->tracer().enabled()) {
      eng_->tracer().flow_end(consumer_track,
                              "consume s" + std::to_string(p.subset),
                              eng_->now(), p.trace_id);
    }
  }

 private:
  /// Rebuild the healthy target subset when the cluster health epoch (or
  /// a migration) changed. Fault-free cost per emit: one integer compare.
  void refresh_active() {
    const asu::HealthBoard* board = net_->health_board();
    const std::uint64_t epoch = board ? board->epoch() : 1;
    if (!targets_dirty_ && epoch == seen_epoch_) return;
    seen_epoch_ = epoch;
    targets_dirty_ = false;
    active_.clear();
    active_index_.clear();
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      // Remote instances never enter the active set (emit_to-only).
      if (endpoints_[i].remote()) continue;
      if (targets_[i].node->running()) {
        active_.push_back(targets_[i]);
        active_index_.push_back(i);
      }
    }
  }

  /// Lazily registered so fault-free runs publish no fault metrics (the
  /// golden harness pins the metrics fingerprint).
  obs::Counter& fault_retries() {
    if (!retries_counter_) {
      retries_counter_ = &eng_->metrics().counter(name_ + ".fault_retries");
    }
    return *retries_counter_;
  }

  [[nodiscard]] sim::Task<> deliver(std::size_t idx, asu::Node* from,
                                    Packet p, std::size_t bytes) {
    if (endpoints_[idx].remote()) {
      // The packet leaves this engine: sender NIC was charged in emit_to,
      // the wire latency elapses here, and the sink takes ownership.
      // Delivery/queue-wait telemetry is the receiving shard's to
      // measure — it sees the inbox this shard does not have.
      co_await eng_->sleep(net_->sample_latency());
      if (p.trace_id != 0 && eng_->tracer().enabled()) {
        eng_->tracer().flow_step(track_, "remote i" + std::to_string(idx),
                                 eng_->now(), p.trace_id);
      }
      remote_sink_(idx, eng_->now(), std::move(p));
      --inflight_;
      slot_free_.notify_one();
      if (inflight_ == 0) drained_.notify_all();
      co_return;
    }
    std::size_t tries = 0;
    for (;;) {
      Endpoint& ep = endpoints_[idx];
      if (from != ep.node) {
        if (from->is_asu() != ep.node->is_asu()) {
          co_await net_->link(*from, *ep.node)
              .use(charge_scale_ * double(bytes) / link_bandwidth());
        }
        // Cross-rack hop on a hierarchical topology: occupy both racks'
        // oversubscribed spine uplinks and pay the spine tier's latency,
        // mirroring Network::transfer. Flat topologies take neither
        // branch nor any extra charge (pinned goldens are all flat).
        const asu::TopologySpec& topo = net_->topology();
        if (topo.hierarchical()) {
          const unsigned ra = net_->rack_of(*from);
          const unsigned rb = net_->rack_of(*ep.node);
          if (ra != rb) {
            co_await net_->spine(ra).use(charge_scale_ *
                                         topo.spine.seconds(bytes));
            co_await net_->spine(rb).use(charge_scale_ *
                                         topo.spine.seconds(bytes));
            co_await eng_->sleep(topo.spine.latency);
          }
        }
        co_await eng_->sleep(net_->sample_latency());
        co_await ep.node->nic_transfer(bytes, charge_scale_);
      }
      if (ep.node->running()) break;
      // The receiver crashed while this packet was in flight. Retry with
      // timeout: wait, then re-enter the router over the healthy actives
      // and physically move the packet there (transfer is re-paid). After
      // max_retries_ park until *this* replica recovers — the packet is
      // owned either way, never dropped, so record conservation holds.
      if (tries < max_retries_) {
        ++tries;
        fault_retries().inc();
        if (p.trace_id != 0 && eng_->tracer().enabled()) {
          eng_->tracer().flow_step(track_, "retry i" + std::to_string(idx),
                                   eng_->now(), p.trace_id);
        }
        co_await eng_->sleep(retry_timeout_);
        refresh_active();
        if (!active_.empty()) {
          idx = active_index_[router_->pick(p, active_)];
        }
      } else {
        if (p.trace_id != 0 && eng_->tracer().enabled()) {
          eng_->tracer().flow_step(track_, "park i" + std::to_string(idx),
                                   eng_->now(), p.trace_id);
        }
        while (!ep.node->running()) co_await ep.node->health_wait();
      }
    }
    if (delivery_hist_ != nullptr) {
      // Arrival at the inbox boundary. Queue wait (measured at
      // consumed()) starts here, so time blocked on a full channel
      // counts as queueing, not delivery — backpressure is a property
      // of the consumer side.
      p.t_enqueue = eng_->now();
      delivery_hist_->observe(p.t_enqueue - p.t_emit);
    }
    if (p.trace_id != 0 && eng_->tracer().enabled()) {
      eng_->tracer().flow_step(track_, "deliver i" + std::to_string(idx),
                               eng_->now(), p.trace_id);
    }
    // A failed send means the inbox closed with this packet in flight —
    // the records are gone and conservation is silently broken for
    // whoever closed early. Surface it: deliver() runs as a spawned root
    // task, so the throw lands in Engine::run()'s root-failure check.
    const bool delivered = co_await endpoints_[idx].ch->send(std::move(p));
    if (!delivered) {
      throw std::logic_error(
          "StageOutput '" + name_ +
          "': packet dropped — target inbox closed while the packet was "
          "in flight (close the stage via producer_done/close_when_drained"
          ", not by closing inboxes directly)");
    }
    --inflight_;
    slot_free_.notify_one();
    if (inflight_ == 0) drained_.notify_all();
  }

  [[nodiscard]] sim::Task<> close_when_drained() {
    while (inflight_ > 0) {
      co_await drained_.wait();
    }
    // Remote instances have no local inbox to close; their stream
    // termination is coordinated by whoever owns the remote sink.
    for (auto& ep : endpoints_) {
      if (!ep.remote()) ep.ch->close();
    }
  }

  [[nodiscard]] double link_bandwidth() const noexcept {
    return net_->params().link_bandwidth;
  }

  sim::Engine* eng_;
  asu::Network* net_;
  std::size_t record_bytes_;
  std::vector<Endpoint> endpoints_;
  std::vector<RouteTarget> targets_;
  std::vector<RouteTarget> active_;
  std::vector<std::size_t> active_index_;
  std::uint64_t seen_epoch_ = 0;  ///< 0 forces the first refresh
  bool targets_dirty_ = false;
  double retry_timeout_ = 1e-3;
  std::size_t max_retries_ = 8;
  std::unique_ptr<RoutingPolicy> router_;
  unsigned producers_left_;
  std::size_t window_;
  double charge_scale_ = 1.0;
  std::size_t inflight_ = 0;
  sim::Condition slot_free_;
  sim::Condition drained_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t records_sent_ = 0;
  PacketPool pool_;
  std::string name_;
  obs::Counter* packets_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Histogram* batch_hist_ = nullptr;
  obs::LatencyHistogram* delivery_hist_ = nullptr;
  obs::LatencyHistogram* queue_wait_hist_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  RemoteSink remote_sink_;
  std::vector<obs::Counter*> routed_;
  std::uint32_t track_ = 0;
};

/// Inboxes for one stage: one bounded channel per instance. Bounded
/// capacity gives backpressure, modeling the bounded buffers that the
/// model requires of ASU-resident functors.
class StageInboxes {
 public:
  StageInboxes(sim::Engine& eng, std::size_t instances,
               std::size_t capacity_packets = 8) {
    chans_.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i) {
      chans_.push_back(
          std::make_unique<sim::Channel<Packet>>(eng, capacity_packets));
    }
  }

  [[nodiscard]] sim::Channel<Packet>& inbox(std::size_t i) {
    return *chans_.at(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return chans_.size(); }

  /// Build the endpoint list for a StageOutput feeding these inboxes.
  [[nodiscard]] std::vector<Endpoint> endpoints(
      const std::vector<asu::Node*>& nodes) {
    assert(nodes.size() == chans_.size());
    std::vector<Endpoint> eps;
    eps.reserve(chans_.size());
    for (std::size_t i = 0; i < chans_.size(); ++i) {
      eps.push_back({chans_[i].get(), nodes[i]});
    }
    return eps;
  }

 private:
  std::vector<std::unique_ptr<sim::Channel<Packet>>> chans_;
};

}  // namespace lmas::core

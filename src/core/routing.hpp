#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asu/node.hpp"
#include "core/packet.hpp"
#include "sim/random.hpp"

namespace lmas::core {

/// A candidate destination for a packet: one instance of a replicated
/// functor, pinned to a node whose load the router may inspect.
struct RouteTarget {
  asu::Node* node = nullptr;
};

/// Chooses which instance of a replicated functor consumes a packet.
/// Because sets do not define record order, the system is free to route
/// each packet to any instance (Section 3.3); policies differ in how they
/// use static and dynamic information.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Return the target index in [0, targets.size()) for this packet.
  /// The target set may shrink or grow between calls (replica failure,
  /// removal, re-replication); policies must tolerate any size, including
  /// the degenerate cases: a single target always yields index 0, and an
  /// empty set yields 0 as a sentinel — the caller must check
  /// targets.empty() before dereferencing (there is nowhere to route).
  virtual std::size_t pick(const Packet& p,
                           std::span<const RouteTarget> targets) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Baseline static partitioning. With the total subset count known, each
/// instance owns a contiguous block of subsets — the paper's Figure 10
/// baseline "assigns half of the alpha distribute subsets to one host,
/// and the other half to the second host". Skewed subsets then produce
/// persistent imbalance. Without a subset count it falls back to modulo.
class StaticPartitionRouter final : public RoutingPolicy {
 public:
  explicit StaticPartitionRouter(std::uint32_t total_subsets = 0)
      : total_subsets_(total_subsets) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    const std::size_t k = targets.size();
    if (k == 0) return 0;
    if (total_subsets_ == 0) return p.subset % k;
    const std::size_t idx = std::size_t(p.subset) * k / total_subsets_;
    return idx >= k ? k - 1 : idx;
  }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  std::uint32_t total_subsets_;
};

/// Oblivious rotation over instances, ignoring subsets.
class RoundRobinRouter final : public RoutingPolicy {
 public:
  std::size_t pick(const Packet&,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    return next_++ % targets.size();
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

/// Simple randomization (SR) in the randomized-cycling style of Vitter &
/// Hutchinson [35]: for every subset, targets are visited in a random
/// cyclic order, reshuffled each cycle. Each subset's records spread
/// evenly over all instances while consecutive packets of a subset avoid
/// hammering one instance — Figure 10's "load-controlled" configuration.
class SimpleRandomizationRouter final : public RoutingPolicy {
 public:
  explicit SimpleRandomizationRouter(sim::Rng rng) : rng_(rng) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    Cycle& c = cycles_[p.subset];
    if (c.order.size() != targets.size()) {
      c.order.resize(targets.size());
      std::iota(c.order.begin(), c.order.end(), std::size_t{0});
      c.pos = c.order.size();  // force shuffle below
    }
    if (c.pos >= c.order.size()) {
      shuffle(c.order);
      c.pos = 0;
    }
    return c.order[c.pos++];
  }
  [[nodiscard]] std::string name() const override { return "sr"; }

 private:
  struct Cycle {
    std::vector<std::size_t> order;
    std::size_t pos = 0;
  };

  void shuffle(std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.below(i)]);
    }
  }

  sim::Rng rng_;
  std::unordered_map<std::uint32_t, Cycle> cycles_;
};

/// Dynamic policy: send to the instance whose node has the least queued
/// CPU work right now. Uses exactly the information the load manager is
/// entitled to — declared functor costs produce a CPU backlog per node.
class LeastLoadedRouter final : public RoutingPolicy {
 public:
  std::size_t pick(const Packet&,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    std::size_t best = 0;
    double best_backlog = targets[0].node->cpu().backlog();
    for (std::size_t i = 1; i < targets.size(); ++i) {
      const double b = targets[i].node->cpu().backlog();
      if (b < best_backlog) {
        best = i;
        best_backlog = b;
      }
    }
    return best;
  }
  [[nodiscard]] std::string name() const override { return "least-loaded"; }
};

/// Decorator that lets the load manager hot-swap a stage's routing policy
/// at runtime: packets follow the static `baseline` policy until
/// promote() engages the `dynamic` policy, and demote() falls back again
/// when load evens out (Section 3.3's adaptive reconfiguration — the
/// target set of a set-typed functor admits any per-packet choice, so
/// swapping policies mid-stream is always safe for correctness; only
/// placement balance changes). The switch is O(1) and leaves both
/// policies' internal state (round-robin cursors, SR cycles) intact, so
/// repeated promote/demote cycles stay deterministic.
class SwitchableRouter final : public RoutingPolicy {
 public:
  SwitchableRouter(std::unique_ptr<RoutingPolicy> baseline,
                   std::unique_ptr<RoutingPolicy> dynamic)
      : baseline_(std::move(baseline)), dynamic_(std::move(dynamic)) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    return (dynamic_active_ ? dynamic_ : baseline_)->pick(p, targets);
  }

  void promote() noexcept { dynamic_active_ = true; }
  void demote() noexcept { dynamic_active_ = false; }
  [[nodiscard]] bool dynamic_active() const noexcept {
    return dynamic_active_;
  }

  /// Reports the *currently engaged* policy so instruments and journals
  /// show which regime routed a given packet.
  [[nodiscard]] std::string name() const override {
    return (dynamic_active_ ? dynamic_ : baseline_)->name() + "(switchable)";
  }

 private:
  std::unique_ptr<RoutingPolicy> baseline_;
  std::unique_ptr<RoutingPolicy> dynamic_;
  bool dynamic_active_ = false;
};

/// Decorator that publishes every routing decision of the wrapped policy:
/// a `route.<label>.target.<i>` counter per chosen instance in the
/// engine's registry, and — when tracing — an instant event on the
/// router's track, so a Chrome trace shows exactly when the load manager
/// steered packets away from a node (the mechanism behind Figure 10).
class InstrumentedRouter final : public RoutingPolicy {
 public:
  InstrumentedRouter(std::unique_ptr<RoutingPolicy> inner, sim::Engine& eng,
                     std::string label)
      : inner_(std::move(inner)),
        eng_(&eng),
        label_(std::move(label)),
        track_(eng.tracer().track("router." + label_)) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    const std::size_t idx = inner_->pick(p, targets);
    if (counters_.size() < targets.size()) {
      const std::string base = "route." + label_ + ".target.";
      for (std::size_t i = counters_.size(); i < targets.size(); ++i) {
        counters_.push_back(
            &eng_->metrics().counter(base + std::to_string(i)));
      }
    }
    if (idx < counters_.size()) counters_[idx]->inc();
    if (eng_->tracer().enabled()) {
      eng_->tracer().instant(track_,
                             "s" + std::to_string(p.subset) + "->" +
                                 std::to_string(idx),
                             eng_->now());
    }
    return idx;
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<RoutingPolicy> inner_;
  sim::Engine* eng_;
  std::string label_;
  std::uint32_t track_;
  std::vector<lmas::obs::Counter*> counters_;
};

enum class RouterKind { Static, RoundRobin, SimpleRandomization, LeastLoaded };

/// Build a policy; when `instrument` is non-null the policy is wrapped in
/// an InstrumentedRouter publishing into that engine's registry/tracer
/// under `label` (defaults to the policy's own name).
///
/// `rng` is deliberately NOT defaulted: every SR router must get a
/// caller-derived named stream (seeding hygiene — a shared default seed
/// would correlate every uncustomized router; see sim::Rng::stream).
/// Deterministic kinds ignore it; pass any derived stream.
inline std::unique_ptr<RoutingPolicy> make_router(
    RouterKind kind, sim::Rng rng, std::uint32_t total_subsets = 0,
    sim::Engine* instrument = nullptr, std::string label = "") {
  std::unique_ptr<RoutingPolicy> p;
  switch (kind) {
    case RouterKind::Static:
      p = std::make_unique<StaticPartitionRouter>(total_subsets);
      break;
    case RouterKind::RoundRobin:
      p = std::make_unique<RoundRobinRouter>();
      break;
    case RouterKind::SimpleRandomization:
      p = std::make_unique<SimpleRandomizationRouter>(rng);
      break;
    case RouterKind::LeastLoaded:
      p = std::make_unique<LeastLoadedRouter>();
      break;
  }
  if (p && instrument) {
    if (label.empty()) label = p->name();
    p = std::make_unique<InstrumentedRouter>(std::move(p), *instrument,
                                             std::move(label));
  }
  return p;
}

inline const char* router_kind_name(RouterKind k) {
  switch (k) {
    case RouterKind::Static: return "static";
    case RouterKind::RoundRobin: return "round-robin";
    case RouterKind::SimpleRandomization: return "sr";
    case RouterKind::LeastLoaded: return "least-loaded";
  }
  return "?";
}

}  // namespace lmas::core

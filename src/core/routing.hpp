#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asu/node.hpp"
#include "core/packet.hpp"
#include "sim/random.hpp"

namespace lmas::core {

/// A candidate destination for a packet: one instance of a replicated
/// functor, pinned to a node whose load the router may inspect.
struct RouteTarget {
  asu::Node* node = nullptr;
};

/// Chooses which instance of a replicated functor consumes a packet.
/// Because sets do not define record order, the system is free to route
/// each packet to any instance (Section 3.3); policies differ in how they
/// use static and dynamic information.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Return the target index in [0, targets.size()) for this packet.
  /// The target set may shrink or grow between calls (replica failure,
  /// removal, re-replication); policies must tolerate any size, including
  /// the degenerate cases: a single target always yields index 0, and an
  /// empty set yields 0 as a sentinel — the caller must check
  /// targets.empty() before dereferencing (there is nowhere to route).
  virtual std::size_t pick(const Packet& p,
                           std::span<const RouteTarget> targets) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Baseline static partitioning. With the total subset count known, each
/// instance owns a contiguous block of subsets — the paper's Figure 10
/// baseline "assigns half of the alpha distribute subsets to one host,
/// and the other half to the second host". Skewed subsets then produce
/// persistent imbalance. Without a subset count it falls back to modulo.
class StaticPartitionRouter final : public RoutingPolicy {
 public:
  explicit StaticPartitionRouter(std::uint32_t total_subsets = 0)
      : total_subsets_(total_subsets) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    const std::size_t k = targets.size();
    if (k == 0) return 0;
    if (total_subsets_ == 0) return p.subset % k;
    const std::size_t idx = std::size_t(p.subset) * k / total_subsets_;
    return idx >= k ? k - 1 : idx;
  }
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  std::uint32_t total_subsets_;
};

/// Oblivious rotation over instances, ignoring subsets.
class RoundRobinRouter final : public RoutingPolicy {
 public:
  std::size_t pick(const Packet&,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    return next_++ % targets.size();
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

/// Rack-locality preference for hierarchical topologies: prefer targets
/// in the same rack as the packet's producer, round-robin among them
/// (per-source-rack cursor, so each rack's producers spread over their
/// local targets evenly); fall back to a global round-robin only when
/// the producer's rack holds no healthy target. On a 2-rack topology
/// this keeps pass-1 run chunks off the oversubscribed spine entirely
/// when every rack has stores — the topology-blind RoundRobinRouter
/// ships (racks-1)/racks of all bytes cross-rack. Deterministic: no RNG,
/// cursors only. The rack callbacks keep the router independent of any
/// concrete TopologySpec wiring (callers bind them to rack_of_host /
/// rack_of_asu).
class RackAffinityRouter final : public RoutingPolicy {
 public:
  using SourceRack = std::function<unsigned(const Packet&)>;
  using TargetRack = std::function<unsigned(const asu::Node*)>;

  RackAffinityRouter(SourceRack source_rack, TargetRack target_rack)
      : source_rack_(std::move(source_rack)),
        target_rack_(std::move(target_rack)) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    const unsigned rack = source_rack_(p);
    local_.clear();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (target_rack_(targets[i].node) == rack) local_.push_back(i);
    }
    if (local_.empty()) return global_next_++ % targets.size();
    if (rack_next_.size() <= rack) rack_next_.resize(rack + 1, 0);
    return local_[rack_next_[rack]++ % local_.size()];
  }
  [[nodiscard]] std::string name() const override { return "rack-affinity"; }

 private:
  SourceRack source_rack_;
  TargetRack target_rack_;
  std::vector<std::size_t> rack_next_;  // per-source-rack cursor
  std::size_t global_next_ = 0;
  std::vector<std::size_t> local_;      // scratch: local target indices
};

/// Simple randomization (SR) in the randomized-cycling style of Vitter &
/// Hutchinson [35]: for every subset, targets are visited in a random
/// cyclic order, reshuffled each cycle. Each subset's records spread
/// evenly over all instances while consecutive packets of a subset avoid
/// hammering one instance — Figure 10's "load-controlled" configuration.
class SimpleRandomizationRouter final : public RoutingPolicy {
 public:
  explicit SimpleRandomizationRouter(sim::Rng rng) : rng_(rng) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    Cycle& c = cycles_[p.subset];
    if (c.order.size() != targets.size()) {
      c.order.resize(targets.size());
      std::iota(c.order.begin(), c.order.end(), std::size_t{0});
      c.pos = c.order.size();  // force shuffle below
    }
    if (c.pos >= c.order.size()) {
      shuffle(c.order);
      c.pos = 0;
    }
    return c.order[c.pos++];
  }
  [[nodiscard]] std::string name() const override { return "sr"; }

 private:
  struct Cycle {
    std::vector<std::size_t> order;
    std::size_t pos = 0;
  };

  void shuffle(std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.below(i)]);
    }
  }

  sim::Rng rng_;
  std::unordered_map<std::uint32_t, Cycle> cycles_;
};

/// The load a router may consult for target index `i`: by default the
/// target node's queued CPU work — exactly the information the load
/// manager is entitled to (declared functor costs produce a CPU backlog
/// per node). Callers routing over synthetic target sets (no asu::Node
/// behind them — e.g. the sharded-engine scale bench) supply their own
/// probe instead.
using LoadProbe = std::function<double(std::span<const RouteTarget>,
                                       std::size_t)>;

[[nodiscard]] inline double cpu_backlog_probe(
    std::span<const RouteTarget> targets, std::size_t i) {
  return targets[i].node->cpu().backlog();
}

/// Dynamic policy: send to the instance whose probed load is least right
/// now (first of ties). The default probe reads the node CPU backlog.
class LeastLoadedRouter final : public RoutingPolicy {
 public:
  explicit LeastLoadedRouter(LoadProbe probe = {})
      : probe_(probe ? std::move(probe) : cpu_backlog_probe) {}

  std::size_t pick(const Packet&,
                   std::span<const RouteTarget> targets) override {
    if (targets.empty()) return 0;
    std::size_t best = 0;
    double best_backlog = probe_(targets, 0);
    for (std::size_t i = 1; i < targets.size(); ++i) {
      const double b = probe_(targets, i);
      if (b < best_backlog) {
        best = i;
        best_backlog = b;
      }
    }
    return best;
  }
  [[nodiscard]] std::string name() const override { return "least-loaded"; }

 private:
  LoadProbe probe_;
};

/// Power-of-d-choices (the supermarket model): sample `d` distinct
/// targets uniformly at random, send to the least-loaded of the sample
/// (first sampled wins ties). d = 1 degenerates to uniform random; d >=
/// the target count degenerates to least-loaded with a fixed scan order.
/// Mean-field theory predicts the fraction of servers with queue >= i
/// drops from rho^i (random) to rho^((d^i - 1)/(d - 1)) — doubly
/// exponential in i — for any d >= 2, at probe cost d instead of D
/// (bench/fig_scale verifies the simulator against that curve).
class PowerOfDChoicesRouter final : public RoutingPolicy {
 public:
  PowerOfDChoicesRouter(sim::Rng rng, unsigned d, LoadProbe probe = {})
      : rng_(rng),
        d_(d > 0 ? d : 1),
        probe_(probe ? std::move(probe) : cpu_backlog_probe) {}

  std::size_t pick(const Packet&,
                   std::span<const RouteTarget> targets) override {
    const std::size_t k = targets.size();
    if (k == 0) return 0;
    if (scratch_.size() != k) {
      scratch_.resize(k);
      std::iota(scratch_.begin(), scratch_.end(), std::size_t{0});
    }
    // Partial Fisher-Yates: draw min(d, k) distinct indices. The scratch
    // permutation persists across picks (only the sampled prefix is
    // re-randomized), keeping the draw count per pick exactly min(d, k).
    const std::size_t n = std::min<std::size_t>(d_, k);
    std::size_t best = 0;
    double best_load = 0;
    for (std::size_t j = 0; j < n; ++j) {
      std::swap(scratch_[j], scratch_[j + rng_.below(k - j)]);
      const std::size_t cand = scratch_[j];
      const double load = probe_(targets, cand);
      if (j == 0 || load < best_load) {
        best = cand;
        best_load = load;
      }
    }
    return best;
  }
  [[nodiscard]] std::string name() const override {
    return "power-of-" + std::to_string(d_);
  }

 private:
  sim::Rng rng_;
  unsigned d_;
  LoadProbe probe_;
  std::vector<std::size_t> scratch_;
};

/// Decorator that lets the load manager hot-swap a stage's routing policy
/// at runtime: packets follow the static `baseline` policy until
/// promote() engages the `dynamic` policy, and demote() falls back again
/// when load evens out (Section 3.3's adaptive reconfiguration — the
/// target set of a set-typed functor admits any per-packet choice, so
/// swapping policies mid-stream is always safe for correctness; only
/// placement balance changes). The switch is O(1) and leaves both
/// policies' internal state (round-robin cursors, SR cycles) intact, so
/// repeated promote/demote cycles stay deterministic.
class SwitchableRouter final : public RoutingPolicy {
 public:
  SwitchableRouter(std::unique_ptr<RoutingPolicy> baseline,
                   std::unique_ptr<RoutingPolicy> dynamic)
      : baseline_(std::move(baseline)), dynamic_(std::move(dynamic)) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    return (dynamic_active_ ? dynamic_ : baseline_)->pick(p, targets);
  }

  void promote() noexcept { dynamic_active_ = true; }
  void demote() noexcept { dynamic_active_ = false; }
  [[nodiscard]] bool dynamic_active() const noexcept {
    return dynamic_active_;
  }

  /// Reports the *currently engaged* policy so instruments and journals
  /// show which regime routed a given packet.
  [[nodiscard]] std::string name() const override {
    return (dynamic_active_ ? dynamic_ : baseline_)->name() + "(switchable)";
  }

 private:
  std::unique_ptr<RoutingPolicy> baseline_;
  std::unique_ptr<RoutingPolicy> dynamic_;
  bool dynamic_active_ = false;
};

/// Decorator that publishes every routing decision of the wrapped policy:
/// a `route.<label>.target.<i>` counter per chosen instance in the
/// engine's registry, and — when tracing — an instant event on the
/// router's track, so a Chrome trace shows exactly when the load manager
/// steered packets away from a node (the mechanism behind Figure 10).
class InstrumentedRouter final : public RoutingPolicy {
 public:
  InstrumentedRouter(std::unique_ptr<RoutingPolicy> inner, sim::Engine& eng,
                     std::string label)
      : inner_(std::move(inner)),
        eng_(&eng),
        label_(std::move(label)),
        track_(eng.tracer().track("router." + label_)) {}

  std::size_t pick(const Packet& p,
                   std::span<const RouteTarget> targets) override {
    const std::size_t idx = inner_->pick(p, targets);
    if (counters_.size() < targets.size()) {
      const std::string base = "route." + label_ + ".target.";
      for (std::size_t i = counters_.size(); i < targets.size(); ++i) {
        counters_.push_back(
            &eng_->metrics().counter(base + std::to_string(i)));
      }
    }
    if (idx < counters_.size()) counters_[idx]->inc();
    if (eng_->tracer().enabled()) {
      eng_->tracer().instant(track_,
                             "s" + std::to_string(p.subset) + "->" +
                                 std::to_string(idx),
                             eng_->now());
    }
    return idx;
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<RoutingPolicy> inner_;
  sim::Engine* eng_;
  std::string label_;
  std::uint32_t track_;
  std::vector<lmas::obs::Counter*> counters_;
};

enum class RouterKind {
  Static,
  RoundRobin,
  SimpleRandomization,
  LeastLoaded,
  PowerOfD,
};

/// Everything make_router needs, named. Designated initializers replace
/// the positional-argument tail the old factory had grown:
///
///   make_router({.kind = RouterKind::SimpleRandomization,
///                .rng = stream,
///                .total_subsets = alpha});
///
/// `rng` is deliberately value-initialized rather than seeded: every SR /
/// power-of-d router must get a caller-derived named stream (seeding
/// hygiene — a shared default seed would correlate every uncustomized
/// router; see sim::Rng::stream). Deterministic kinds ignore it.
struct RouterSpec {
  RouterKind kind = RouterKind::Static;
  sim::Rng rng{};

  /// Total distribute-subset count (StaticPartitionRouter's block map).
  std::uint32_t total_subsets = 0;

  /// Load view for the dynamic kinds (LeastLoaded, PowerOfD): maps a
  /// target index to its current load. Defaults to the target node's CPU
  /// backlog; callers with synthetic target sets substitute their own.
  LoadProbe node_of{};

  /// Sample width for PowerOfD.
  unsigned d_choices = 2;

  /// When non-null, wrap in an InstrumentedRouter publishing into this
  /// engine's registry/tracer under `label` (default: the policy's name).
  sim::Engine* instrument = nullptr;
  std::string label{};
};

inline std::unique_ptr<RoutingPolicy> make_router(RouterSpec spec) {
  std::unique_ptr<RoutingPolicy> p;
  switch (spec.kind) {
    case RouterKind::Static:
      p = std::make_unique<StaticPartitionRouter>(spec.total_subsets);
      break;
    case RouterKind::RoundRobin:
      p = std::make_unique<RoundRobinRouter>();
      break;
    case RouterKind::SimpleRandomization:
      p = std::make_unique<SimpleRandomizationRouter>(spec.rng);
      break;
    case RouterKind::LeastLoaded:
      p = std::make_unique<LeastLoadedRouter>(std::move(spec.node_of));
      break;
    case RouterKind::PowerOfD:
      p = std::make_unique<PowerOfDChoicesRouter>(spec.rng, spec.d_choices,
                                                  std::move(spec.node_of));
      break;
  }
  if (p && spec.instrument) {
    if (spec.label.empty()) spec.label = p->name();
    p = std::make_unique<InstrumentedRouter>(std::move(p), *spec.instrument,
                                             std::move(spec.label));
  }
  return p;
}

inline const char* router_kind_name(RouterKind k) {
  switch (k) {
    case RouterKind::Static: return "static";
    case RouterKind::RoundRobin: return "round-robin";
    case RouterKind::SimpleRandomization: return "sr";
    case RouterKind::LeastLoaded: return "least-loaded";
    case RouterKind::PowerOfD: return "power-of-d";
  }
  return "?";
}

}  // namespace lmas::core

#pragma once

#include <algorithm>
#include <span>
#include <string>

#include "asu/params.hpp"
#include "asu/topology.hpp"
#include "core/dsm_sort.hpp"

namespace lmas::core {

/// Analytic pass-1 time prediction. This is the heart of load management:
/// because functor costs are declared and bounded, the system can predict
/// the effect of a configuration before running it, and pick the alpha
/// that best matches the machine (hosts, ASUs, their speed ratio c).
/// The pipeline completes when its slowest station finishes, so the
/// prediction is the max over per-station aggregate service times.
struct Pass1Prediction {
  double seconds = 0;
  double host_cpu_seconds = 0;  // run formation across H hosts
  double asu_cpu_seconds = 0;   // distribute across D ASUs
  double disk_seconds = 0;      // per-ASU read input + write runs
  double net_seconds = 0;       // busiest network resource
  std::string bottleneck;
};

namespace detail {

/// Shared body of the flat and topology-aware predictors. The speed
/// floors are the slowest node's relative speed per tier (1.0 = the
/// homogeneous machine): the pipeline completes when its slowest station
/// finishes, and on a heterogeneous topology the slowest station is the
/// slowest *node*, whose CPU charges stretch by 1/floor. Only the
/// compute components stretch — NIC serialization, disk, and links are
/// not scaled by the per-node CPU multiplier.
inline Pass1Prediction predict_pass1_scaled(const asu::MachineParams& mp,
                                            const DsmSortConfig& cfg,
                                            double host_speed_floor,
                                            double asu_speed_floor) {
  const double n = double(cfg.total_records);
  const double d = double(mp.num_asus);
  const double h = double(mp.num_hosts);
  const double host_floor = std::max(1e-9, host_speed_floor);
  const double asu_floor = std::max(1e-9, asu_speed_floor);

  Pass1Prediction p;
  // A station's serial work is its CPU charge plus its own send-side NIC
  // serialization (sends are asynchronous past the local NIC).
  const double host_send_nic =
      double(mp.record_bytes) / mp.host_nic_bandwidth;
  const double asu_send_nic = double(mp.record_bytes) / mp.asu_nic_bandwidth;
  p.host_cpu_seconds =
      n *
      (mp.cost.sort_per_record(cfg.host_run_length(), /*on_asu=*/false) /
           host_floor +
       host_send_nic) /
      h;
  const double asu_free = std::max(1e-9, 1.0 - mp.asu_background_load);
  p.asu_cpu_seconds =
      cfg.distribute_on_asus
          ? (n / d) * (mp.c / asu_free / asu_floor *
                           mp.cost.distribute_per_record(cfg.alpha,
                                                         /*on_asu=*/true) +
                       asu_send_nic)
          : (n / d) * asu_send_nic;
  // Each ASU reads its input share and receives ~1/D of the run writes.
  p.disk_seconds = (n / d) * 2.0 * double(mp.record_bytes) / mp.disk_rate;
  // Busiest network element: an ASU link carries its share up and down;
  // a host NIC carries 1/H of all traffic in both directions.
  const double link = (n / d) * 2.0 * double(mp.record_bytes) /
                      mp.link_bandwidth;
  const double host_nic =
      (n / h) * 2.0 * double(mp.record_bytes) / mp.host_nic_bandwidth;
  p.net_seconds = std::max(link, host_nic);

  p.seconds = std::max({p.host_cpu_seconds, p.asu_cpu_seconds,
                        p.disk_seconds, p.net_seconds});
  if (p.seconds == p.host_cpu_seconds) {
    p.bottleneck = "host-cpu";
  } else if (p.seconds == p.asu_cpu_seconds) {
    p.bottleneck = "asu-cpu";
  } else if (p.seconds == p.disk_seconds) {
    p.bottleneck = "disk";
  } else {
    p.bottleneck = "network";
  }
  return p;
}

}  // namespace detail

inline Pass1Prediction predict_pass1(const asu::MachineParams& mp,
                                     const DsmSortConfig& cfg) {
  return detail::predict_pass1_scaled(mp, cfg, 1.0, 1.0);
}

/// Topology-aware prediction: folds the spec's per-node speed
/// multipliers into the declared-cost evaluation via the slowest-node
/// floors. A flat spec (no multipliers) is bit-identical to the flat
/// predictor.
inline Pass1Prediction predict_pass1(const asu::MachineParams& mp,
                                     const DsmSortConfig& cfg,
                                     const asu::TopologySpec& topo) {
  double host_floor = 1.0, asu_floor = 1.0;
  for (unsigned h = 0; h < mp.num_hosts; ++h) {
    const double m = topo.host_multiplier(h);
    host_floor = h == 0 ? m : std::min(host_floor, m);
  }
  for (unsigned a = 0; a < mp.num_asus; ++a) {
    const double m = topo.asu_multiplier(a);
    asu_floor = a == 0 ? m : std::min(asu_floor, m);
  }
  return detail::predict_pass1_scaled(mp, cfg, host_floor, asu_floor);
}

/// Predicted pass-1 speedup of a configuration over the passive baseline
/// (all computation on the hosts) on the same machine.
inline double predict_speedup(const asu::MachineParams& mp,
                              const DsmSortConfig& cfg) {
  DsmSortConfig base = cfg;
  base.distribute_on_asus = false;
  return predict_pass1(mp, base).seconds / predict_pass1(mp, cfg).seconds;
}

/// The adaptive configuration of Figure 9: evaluate the declared-cost
/// model for each candidate distribute order and take the best. Ties
/// break toward smaller alpha (less ASU state).
inline unsigned choose_alpha(const asu::MachineParams& mp,
                             const DsmSortConfig& base,
                             std::span<const unsigned> candidates) {
  unsigned best = candidates.empty() ? base.alpha : candidates.front();
  double best_time = 1e300;
  for (unsigned a : candidates) {
    DsmSortConfig cfg = base;
    cfg.alpha = a;
    cfg.distribute_on_asus = true;
    const double t = predict_pass1(mp, cfg).seconds;
    if (t < best_time) {
      best_time = t;
      best = a;
    }
  }
  return best;
}

/// Topology-aware adaptive configuration: on a heterogeneous spec the
/// slowest ASU's stretched distribute cost shifts the host/ASU tradeoff,
/// so the best alpha generally differs from the homogeneous answer. Flat
/// specs pick exactly what the flat overload picks.
inline unsigned choose_alpha(const asu::MachineParams& mp,
                             const DsmSortConfig& base,
                             std::span<const unsigned> candidates,
                             const asu::TopologySpec& topo) {
  unsigned best = candidates.empty() ? base.alpha : candidates.front();
  double best_time = 1e300;
  for (unsigned a : candidates) {
    DsmSortConfig cfg = base;
    cfg.alpha = a;
    cfg.distribute_on_asus = true;
    const double t = predict_pass1(mp, cfg, topo).seconds;
    if (t < best_time) {
      best_time = t;
      best = a;
    }
  }
  return best;
}

}  // namespace lmas::core

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "asu/network.hpp"
#include "core/routing.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace lmas::core {

/// One utilization sample across the cluster.
struct LoadSample {
  double time = 0;
  double period = 0;                 // sampling window this sample covers
  std::vector<double> host_backlog;  // queued CPU seconds per host
  std::vector<double> asu_backlog;
  /// CPU service-seconds *accepted* during the sampling window (the delta
  /// of Resource::total_service between ticks). Instantaneous backlog
  /// alone under-observes bursty stages: a sort charge of a few hundred
  /// microseconds is almost never in flight at a sample instant, so a
  /// heavily skewed host can read as idle at every tick. The offered-work
  /// delta integrates over the whole window and cannot miss bursts.
  std::vector<double> host_offered;
  std::vector<double> asu_offered;
  /// Effective work-drain rate per node (relative speed times the current
  /// fault rate-scale), published for diagnosis. Charges are already
  /// expressed in wall-seconds on each node's own CPU — a slow or
  /// degraded node accrues proportionally more backlog/offered seconds
  /// for the same records — so load comparisons need no rate division.
  std::vector<double> host_rate;
  std::vector<double> asu_rate;

  /// The decision signal: queued work plus work accepted this window, in
  /// wall-seconds per node. Offered entries are optional (hand-built
  /// samples in tests may carry backlogs only).
  [[nodiscard]] std::vector<double> host_load() const {
    return combine(host_backlog, host_offered);
  }
  [[nodiscard]] std::vector<double> asu_load() const {
    return combine(asu_backlog, asu_offered);
  }

  [[nodiscard]] double host_imbalance() const { return imbalance(host_load()); }
  [[nodiscard]] double asu_imbalance() const { return imbalance(asu_load()); }

  /// Aggregate load per rack under `topo`'s block partition: each rack's
  /// entry is the summed host + ASU load of the nodes it holds. This is
  /// the tier the hierarchical balance story is about — per-node balance
  /// can look fine while one rack's spine uplink carries all the traffic.
  [[nodiscard]] std::vector<double> rack_load(
      const asu::TopologySpec& topo) const {
    std::vector<double> v(topo.racks, 0.0);
    const auto hosts = host_load();
    const auto asus = asu_load();
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      v[topo.rack_of_host(unsigned(h))] += hosts[h];
    }
    for (std::size_t a = 0; a < asus.size(); ++a) {
      v[topo.rack_of_asu(unsigned(a))] += asus[a];
    }
    return v;
  }
  [[nodiscard]] double rack_imbalance(const asu::TopologySpec& topo) const {
    return imbalance(rack_load(topo));
  }

  static std::vector<double> combine(const std::vector<double>& backlog,
                                     const std::vector<double>& offered) {
    std::vector<double> v = backlog;
    for (std::size_t i = 0; i < v.size() && i < offered.size(); ++i) {
      v[i] += offered[i];
    }
    return v;
  }

  static double imbalance(const std::vector<double>& v) {
    if (v.size() < 2) return 0;
    const double mx = *std::max_element(v.begin(), v.end());
    const double sum = std::accumulate(v.begin(), v.end(), 0.0);
    if (sum <= 0) return 0;
    // 0 = perfectly even, 1 = all load on one node.
    const double even = sum / double(v.size());
    return (mx - even) / (sum - even + 1e-30);
  }
};

/// The monitoring half of the load manager: a simulated process that, on
/// a fixed period, samples every node's queued CPU backlog plus the
/// service it accepted during the window. Dynamic policies
/// (LeastLoadedRouter, migration callbacks, adaptive reconfiguration)
/// consume exactly this kind of information; the monitor makes it
/// observable and testable on its own.
class LoadMonitor {
 public:
  LoadMonitor(asu::Cluster& cluster, double period_seconds = 0.05)
      : cluster_(&cluster), period_(period_seconds) {}

  /// Spawn the sampling process; it runs until the engine drains (it
  /// samples only while other work is pending, so it cannot keep the
  /// simulation alive by itself... which a periodic task would; instead
  /// it stops after `max_samples`).
  ///
  /// `stop_when_idle = false` disables the two-consecutive-idle auto-stop
  /// for open-arrival workloads, where quiescent gaps between job
  /// arrivals are normal and stopping inside one would blind the manager
  /// to every later job. Such a monitor keeps the event queue alive, so
  /// its owner MUST call request_stop() once the workload is known to be
  /// complete (the multi-tenant scheduler does this after the last job).
  void start(std::size_t max_samples = 10000, bool stop_when_idle = true) {
    stop_when_idle_ = stop_when_idle;
    cluster_->engine().spawn(run(max_samples), "load-monitor");
  }

  /// Ask the sampling process to exit at its next tick (open-arrival
  /// mode; see start()). Safe to call multiple times or before start.
  void request_stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] const std::vector<LoadSample>& samples() const noexcept {
    return samples_;
  }

  /// Deliver every sample, as it is taken, to one downstream consumer —
  /// the LoadManager's decision loop plugs in here. Called after the
  /// sample is published to metrics/traces, so the observer sees exactly
  /// what the instruments recorded.
  void set_observer(std::function<void(const LoadSample&)> observer) {
    observer_ = std::move(observer);
  }

  /// Peak observed host imbalance (0 = always even). A max statistic
  /// saturates easily — one window where a single host drains the last
  /// run while the others sit idle reads as imbalance 1.0 — so pair it
  /// with mean_host_imbalance when comparing runs.
  [[nodiscard]] double peak_host_imbalance() const {
    double peak = 0;
    for (const auto& s : samples_) peak = std::max(peak, s.host_imbalance());
    return peak;
  }

  /// Mean host imbalance over *actionable* windows: samples where the
  /// busiest host's load is at least `min_load_factor` of the sampling
  /// window (the same floor the manager applies — imbalance ratios over
  /// a near-idle cluster are noise). This is the figure of merit for
  /// managed-vs-unmanaged comparisons: the manager cannot avoid the
  /// short hot streaks that *trigger* its actions (so the peak stays
  /// high in both runs), but it shrinks how long they last.
  [[nodiscard]] double mean_host_imbalance(
      double min_load_factor = 0.05) const {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
      const auto load = s.host_load();
      if (load.empty()) continue;
      const double w = s.period > 0 ? s.period : period_;
      const double peak = *std::max_element(load.begin(), load.end());
      if (peak / (w > 0 ? w : 1.0) < min_load_factor) continue;
      sum += s.host_imbalance();
      ++n;
    }
    return n == 0 ? 0 : sum / double(n);
  }

 private:
  sim::Task<> run(std::size_t max_samples) {
    // Publish every sample into the engine's registry (and, when tracing,
    // as Chrome counter events) so routing decisions and bench artifacts
    // see the same backlog signal the manager acts on. The private
    // samples() vector stays as the compatibility accessor.
    sim::Engine& eng = cluster_->engine();
    std::vector<lmas::obs::Gauge*> host_gauges, asu_gauges;
    std::vector<lmas::obs::Gauge*> host_pressure, asu_pressure;
    for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
      host_gauges.push_back(
          &eng.metrics().gauge("host.backlog." + std::to_string(h)));
      host_pressure.push_back(
          &eng.metrics().gauge("pressure.host." + std::to_string(h)));
    }
    for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
      asu_gauges.push_back(
          &eng.metrics().gauge("asu.backlog." + std::to_string(a)));
      asu_pressure.push_back(
          &eng.metrics().gauge("pressure.asu." + std::to_string(a)));
    }
    lmas::obs::Gauge& imbalance_gauge =
        eng.metrics().gauge("load.host_imbalance");
    // Rack-tier gauges exist only on hierarchical topologies: a flat
    // cluster must keep the exact metric fingerprint it had before
    // TopologySpec (the pinned goldens enumerate metric names).
    const asu::TopologySpec& topo = cluster_->topology();
    std::vector<lmas::obs::Gauge*> rack_gauges;
    lmas::obs::Gauge* rack_imbalance_gauge = nullptr;
    if (topo.hierarchical()) {
      for (unsigned r = 0; r < topo.racks; ++r) {
        rack_gauges.push_back(
            &eng.metrics().gauge("rack.load." + std::to_string(r)));
      }
      rack_imbalance_gauge = &eng.metrics().gauge("load.rack_imbalance");
    }
    const std::uint32_t track = eng.tracer().track("load-monitor");

    // Offered-work baselines: total_service at the start of the current
    // window, per node. The first window's baseline is taken at spawn.
    std::vector<double> host_service_base, asu_service_base;
    for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
      host_service_base.push_back(cluster_->host(h).cpu().total_service());
    }
    for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
      asu_service_base.push_back(cluster_->asu(a).cpu().total_service());
    }

    for (std::size_t i = 0; i < max_samples; ++i) {
      co_await eng.sleep(period_);
      if (stop_requested_) break;
      LoadSample s;
      s.time = eng.now();
      s.period = period_;
      // Pressure = (queued backlog + work accepted this window) per
      // window second: the dimensionless utilization-like signal the
      // placer's economy ranks nodes by (DESIGN.md §16).
      const double win = period_ > 0 ? period_ : 1.0;
      for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
        const asu::Node& n = cluster_->host(h);
        const double b = n.cpu().backlog();
        const double total = n.cpu().total_service();
        const double offered = total - host_service_base[h];
        s.host_backlog.push_back(b);
        s.host_offered.push_back(offered);
        host_service_base[h] = total;
        s.host_rate.push_back(n.speed() * n.cpu().rate_scale());
        host_gauges[h]->set(b);
        host_pressure[h]->set((b + offered) / win);
      }
      for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
        const asu::Node& n = cluster_->asu(a);
        const double b = n.cpu().backlog();
        const double total = n.cpu().total_service();
        const double offered = total - asu_service_base[a];
        s.asu_backlog.push_back(b);
        s.asu_offered.push_back(offered);
        asu_service_base[a] = total;
        s.asu_rate.push_back(n.speed() * n.cpu().rate_scale());
        asu_gauges[a]->set(b);
        asu_pressure[a]->set((b + offered) / win);
      }
      imbalance_gauge.set(s.host_imbalance());
      if (rack_imbalance_gauge != nullptr) {
        const auto racks = s.rack_load(topo);
        for (unsigned r = 0; r < topo.racks; ++r) {
          rack_gauges[r]->set(racks[r]);
        }
        rack_imbalance_gauge->set(LoadSample::imbalance(racks));
      }
      if (eng.tracer().enabled()) {
        for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
          eng.tracer().counter(track, "host.backlog." + std::to_string(h),
                               s.time, s.host_backlog[h]);
        }
        for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
          eng.tracer().counter(track, "asu.backlog." + std::to_string(a),
                               s.time, s.asu_backlog[a]);
        }
      }
      // Idle = no queued work AND nothing accepted this whole window;
      // checking backlog alone would call a bursty-but-busy cluster idle.
      const auto idle = [](const std::vector<double>& v) {
        return std::all_of(v.begin(), v.end(),
                           [](double x) { return x <= 0; });
      };
      const bool all_idle = idle(s.host_load()) && idle(s.asu_load());
      samples_.push_back(std::move(s));
      if (observer_) observer_(samples_.back());
      // Two consecutive all-idle samples after any work: the workload has
      // drained; stop so the monitor does not keep the event queue alive
      // forever. A single idle sample is not enough — DSM-Sort-style
      // programs have quiescent gaps between phases longer than one
      // period, and stopping inside one would miss all later load.
      if (all_idle && saw_work_ && stop_when_idle_) {
        if (++idle_streak_ >= 2) break;
      } else {
        idle_streak_ = 0;
      }
      if (!all_idle) saw_work_ = true;
    }
  }

  asu::Cluster* cluster_;
  double period_;
  std::vector<LoadSample> samples_;
  std::function<void(const LoadSample&)> observer_;
  bool saw_work_ = false;
  bool stop_when_idle_ = true;
  bool stop_requested_ = false;
  std::size_t idle_streak_ = 0;
};

/// How aggressively the online manager acts. Off is the digest-neutral
/// default: no monitor process, no manager, no extra metrics — byte-for-
/// byte the unmanaged execution. Monitor samples (for peak-imbalance
/// reporting) but never acts; Manage acts.
enum class LoadManagerMode { Off, Monitor, Manage };

/// How a planned move ships the instance's state (the economy's cost
/// model, DESIGN.md §16). StopCopy freezes the instance for the whole
/// working-set transfer; PreCopy ships the bulk in the background while
/// the instance keeps consuming, then stalls only for the fixed control
/// overhead plus the dirty delta that accumulated meanwhile.
enum class MigrationMode { StopCopy, PreCopy };

inline const char* migration_mode_name(MigrationMode m) noexcept {
  return m == MigrationMode::PreCopy ? "pre-copy" : "stop-copy";
}

/// Declared migration economics of one functor instance (ROADMAP item 5:
/// every migratable instance carries a declared working-set size and
/// migration cost). The working set is a callback, not a number, because
/// the placer must price the move at planning time with the *live*
/// staged size — a sort functor's state grows and shrinks with every
/// packet. All fields are optional: a default declaration prices the
/// move at the fixed overhead only and always stop-copies, which is
/// exactly the pre-economy behavior.
struct MigrationDeclaration {
  /// Live working-set size in bytes (staged records the move must ship).
  /// Unset = 0: the instance declares no bulk state.
  std::function<std::size_t()> working_set_bytes{};

  /// Fixed control/context cost of any move, shipped stalled in either
  /// mode (mirrors core::kMigrationOverheadBytes).
  std::size_t overhead_bytes = 4096;

  /// Declared wire cost of the move's path, seconds per byte. 0 (unset)
  /// disables stall estimation: the placer prices every move at zero
  /// stall and never chooses pre-copy.
  double wire_seconds_per_byte = 0;

  /// Fraction of the working set expected to be re-dirtied during a
  /// background bulk copy (the pre-copy delta the instance still stalls
  /// for).
  double dirty_fraction = 0.125;

  /// Total bytes a move of this instance ships while stalled under
  /// stop-copy — the quantity the placer's byte budget meters.
  [[nodiscard]] std::size_t declared_bytes() const {
    return (working_set_bytes ? working_set_bytes() : 0) + overhead_bytes;
  }
};

/// One planned move, priced by the placer from the instance's
/// declaration. The stage-side consult point reads the mode to decide
/// how to pay: stop-copy = one stalled transfer of the whole state;
/// pre-copy = background bulk + a short stalled transfer of
/// overhead + dirty delta.
struct MigrationPlan {
  asu::Node* to = nullptr;
  MigrationMode mode = MigrationMode::StopCopy;
  std::size_t bytes = 0;       ///< declared total at planning time
  double est_stall = 0;        ///< seconds the instance is expected frozen
  double gain = 0;             ///< load-here − load-there at planning time
};

/// One structured placer decision (the economy's journal, serialized
/// into bench artifacts as the `placer` block). Every *planned* move is
/// recorded here at planning time; confirmation still flows through
/// migration_performed() and the lm.* counters.
struct PlacerDecision {
  double time = 0;
  std::string client;          ///< client label ("" = anonymous client 0)
  std::size_t instance = 0;
  std::string from;
  std::string to;
  MigrationMode mode = MigrationMode::StopCopy;
  std::size_t bytes = 0;
  double est_stall = 0;
  double gain = 0;
};

/// Tuning for the control loop. The defaults follow the hysteresis /
/// cooldown discipline of Section 3.3's reconfiguration discussion: act
/// only on a *sustained* signal, then hold still long enough for the last
/// action's effect to show up in the signal before acting again.
struct LoadManagerConfig {
  LoadManagerMode mode = LoadManagerMode::Off;

  /// Monitor sampling period (simulated seconds) and sample budget.
  double period = 0.05;
  std::size_t max_samples = 10000;

  /// Router hot-swap thresholds on host imbalance (0 = even, 1 = all on
  /// one node). Promote static -> dynamic when imbalance holds at or
  /// above `promote_imbalance` for `promote_hysteresis` consecutive
  /// samples; demote back when it holds at or below `demote_imbalance`.
  /// The gap between the two watermarks prevents threshold chatter.
  bool router_swap = true;
  double promote_imbalance = 0.25;
  double demote_imbalance = 0.10;
  std::size_t promote_hysteresis = 2;
  std::size_t demote_hysteresis = 4;

  /// Ignore imbalance while the busiest host's load (queued + offered
  /// this window) is under this fraction of the sampling window: ratios
  /// over near-zero loads are noise (a drained cluster with one 1ms
  /// straggler reads as imbalance 1.0). Expressed in utilization units so
  /// one floor works across sampling periods.
  double min_actionable_load = 0.05;

  /// Functor migration: move an instance only when its node's projected
  /// drain time exceeds the best candidate's post-move drain time by
  /// `migrate_factor`, sustained for `migrate_hysteresis` samples. The
  /// factor absorbs both the migration overhead and estimation error —
  /// near-even moves never pay for themselves.
  bool migration = true;
  double migrate_factor = 2.0;
  std::size_t migrate_hysteresis = 2;

  /// After any action: samples to hold still before the next action.
  std::size_t cooldown_samples = 4;
  /// Per-instance lockout after its own migration (anti-ping-pong).
  std::size_t dwell_samples = 8;

  /// Migration budget, metered per manager tick across ALL clients. The
  /// defaults (one move, unlimited bytes) reproduce the pre-economy
  /// one-move-per-tick arbiter exactly. Raising budget_moves_per_tick
  /// lets the placer admit several moves in one gate opening (greedy by
  /// gain, with a virtual-rebalance update between admissions so it
  /// never piles two moves onto the same cold node); lowering
  /// budget_bytes_per_tick makes state-heavy instances inadmissible
  /// until they drain.
  std::size_t budget_moves_per_tick = 1;
  std::size_t budget_bytes_per_tick = std::size_t(-1);

  /// Pre-copy selection threshold: when an admitted move's stop-copy
  /// stall estimate (declared bytes × declared wire cost) exceeds this
  /// fraction of the sampling window, the placer orders pre-copy
  /// instead — the bulk ships in the background and only
  /// overhead + dirty-delta bytes ship stalled. Declarations without a
  /// wire cost always stop-copy (stall estimate 0).
  double precopy_stall_fraction = 0.25;
};

/// One journaled control decision (also emitted as a trace instant on the
/// `load-manager` track when tracing is on).
struct LoadManagerEvent {
  double time = 0;
  std::string what;
};

/// The acting half of the load manager: a control process consuming the
/// LoadMonitor's load signal and steering the computation two ways —
/// hot-swapping a stage's router between its static baseline and a
/// dynamic policy (SwitchableRouter), and re-pinning replicated functor
/// instances onto less-loaded nodes (the paper's functor migration,
/// Section 3.3).
///
/// Multi-tenant arbitration: the manager holds a registry of *clients*
/// (one per concurrently running program). Client 0 always exists — it
/// is the anonymous legacy client behind the single-program
/// manage_router / manage_instances / migration_target(i) API, and it
/// charges the original `lm.migrations` / `lm.router_switches` counters,
/// so single-program callers are byte-compatible. add_client() registers
/// further labeled clients (one per tenant job); their actions charge
/// both the aggregate counters and per-tenant `lm.<label>.*` counters,
/// and their journal lines carry the label. Decisions are arbitrated
/// globally: one shared cooldown and one migration *budget* per tick
/// across ALL clients' instances (moves and bytes,
/// LoadManagerConfig::budget_*), chosen against aggregate per-node load
/// read directly off the candidate nodes and priced from each
/// instance's MigrationDeclaration.
///
/// Division of labor for migration: the manager only *plans* a move (it
/// runs off the sampling tick and cannot touch functor state); the stage
/// coroutine that owns the instance consults migration_target() between
/// packets, pays the state transfer itself, re-pins the instance's inbox
/// via StageOutput::set_target_node, and then confirms with
/// migration_performed(). Until confirmation the plan stays pending and
/// no further plan is issued for that instance.
class LoadManager {
 public:
  LoadManager(sim::Engine& eng, LoadManagerConfig cfg)
      : eng_(&eng),
        cfg_(cfg),
        migrations_counter_(&eng.metrics().counter("lm.migrations")),
        switches_counter_(&eng.metrics().counter("lm.router_switches")),
        track_(eng.tracer().track("load-manager")) {
    // Client 0: the anonymous legacy client (empty label charges the
    // aggregate counters directly, so single-program metric names and
    // counts are unchanged).
    clients_.push_back(make_client(""));
  }

  /// Register a labeled client (one per tenant job); returns its id for
  /// the per-client API below. Empty labels share the aggregate
  /// counters; non-empty labels additionally charge
  /// `lm.<label>.migrations` / `lm.<label>.router_switches`.
  std::size_t add_client(const std::string& label) {
    clients_.push_back(make_client(label));
    return clients_.size() - 1;
  }

  /// Detach a finished client: its router is no longer swapped and its
  /// instances no longer migrate. Ids are never reused.
  void remove_client(std::size_t c) {
    Client& cl = clients_.at(c);
    if (!cl.active) return;
    cl.active = false;
    cl.router = nullptr;
    cl.placement.clear();
    cl.pending.clear();
    cl.declarations.clear();
    cl.dwell_left.clear();
    if (!cl.label.empty()) journal(eng_->now(), cl.label + ": detached");
  }

  /// Attach the stage router to hot-swap (optional; may be wrapped in an
  /// InstrumentedRouter — pass the inner SwitchableRouter).
  void manage_router(SwitchableRouter* router) { client_router(0, router); }
  void client_router(std::size_t c, SwitchableRouter* router) {
    clients_.at(c).router = router;
  }

  /// Attach the replicated instances eligible for migration: their
  /// current placement (indexed like the stage's instances) and the
  /// candidate node set moves may target.
  void manage_instances(std::vector<asu::Node*> placement,
                        std::vector<asu::Node*> candidates) {
    client_instances(0, std::move(placement), std::move(candidates));
  }
  void client_instances(std::size_t c, std::vector<asu::Node*> placement,
                        std::vector<asu::Node*> candidates) {
    Client& cl = clients_.at(c);
    cl.placement = std::move(placement);
    cl.candidates = std::move(candidates);
    cl.pending.assign(cl.placement.size(), MigrationPlan{});
    cl.dwell_left.assign(cl.placement.size(), 0);
    cl.declarations.assign(cl.placement.size(), MigrationDeclaration{});
    cl.cand_service.clear();
    for (const asu::Node* n : cl.candidates) {
      cl.cand_service.push_back(n->cpu().total_service());
    }
  }

  /// Declare instance `i`'s migration economics (working set, wire cost,
  /// dirty fraction). Call after client_instances / manage_instances —
  /// that call resets declarations to the default (overhead-only,
  /// stop-copy) declaration.
  void declare_instance(std::size_t c, std::size_t i,
                        MigrationDeclaration decl) {
    clients_.at(c).declarations.at(i) = std::move(decl);
  }
  void declare_instance(std::size_t i, MigrationDeclaration decl) {
    declare_instance(0, i, std::move(decl));
  }

  /// The decision tick; plug into LoadMonitor::set_observer.
  void on_sample(const LoadSample& s) {
    if (cooldown_left_ > 0) --cooldown_left_;
    for (auto& cl : clients_) {
      for (auto& d : cl.dwell_left) {
        if (d > 0) --d;
      }
    }
    for (auto& cl : clients_) maybe_switch_router(cl, s);
    maybe_plan_migration(s);
  }

  /// Stage-side consult point: the planned destination for instance `i`,
  /// or nullptr. The plan stays up until migration_performed() confirms
  /// it (the stage may be blocked in recv and pick it up late).
  [[nodiscard]] asu::Node* migration_target(std::size_t i) const {
    return migration_target(0, i);
  }
  [[nodiscard]] asu::Node* migration_target(std::size_t c,
                                            std::size_t i) const {
    const Client& cl = clients_.at(c);
    return i < cl.pending.size() ? cl.pending[i].to : nullptr;
  }

  /// Full pending plan for instance `i` (mode, priced bytes, stall
  /// estimate) — the consult point reads this to choose how to pay for
  /// the move. `to == nullptr` means no plan.
  [[nodiscard]] const MigrationPlan& migration_plan(std::size_t c,
                                                    std::size_t i) const {
    static const MigrationPlan none{};
    const Client& cl = clients_.at(c);
    return i < cl.pending.size() ? cl.pending[i] : none;
  }
  [[nodiscard]] const MigrationPlan& migration_plan(std::size_t i) const {
    return migration_plan(0, i);
  }

  /// Confirm that instance `i` now runs on `to` (the stage already paid
  /// the transfer and re-pinned its inbox).
  void migration_performed(std::size_t i, asu::Node& to) {
    migration_performed(0, i, to);
  }
  void migration_performed(std::size_t c, std::size_t i, asu::Node& to) {
    Client& cl = clients_.at(c);
    cl.placement.at(i) = &to;
    cl.pending.at(i) = MigrationPlan{};
    cl.dwell_left.at(i) = cfg_.dwell_samples;
    cl.migrations->inc();
    if (cl.migrations != migrations_counter_) migrations_counter_->inc();
    journal(eng_->now(),
            tag(cl) + "migrated i" + std::to_string(i) + " -> " + to.name());
  }

  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_counter_->value();
  }
  [[nodiscard]] std::uint64_t router_switches() const noexcept {
    return switches_counter_->value();
  }
  [[nodiscard]] std::uint64_t client_migrations(std::size_t c) const {
    return clients_.at(c).migrations->value();
  }
  [[nodiscard]] std::uint64_t client_router_switches(std::size_t c) const {
    return clients_.at(c).switches->value();
  }
  [[nodiscard]] const std::vector<LoadManagerEvent>& events() const noexcept {
    return journal_;
  }
  /// Structured placer journal: one entry per planned move, in planning
  /// order (serialized into bench artifacts as the `placer` block).
  [[nodiscard]] const std::vector<PlacerDecision>& decisions() const noexcept {
    return decisions_;
  }

 private:
  /// Per-program decision state. Streaks are per client (each router has
  /// its own sustained-signal history); cooldown and the one-move-per-
  /// tick migration plan are global — the whole point of cross-job
  /// arbitration is that tenants do not act simultaneously on the same
  /// overload signal.
  struct Client {
    std::string label;
    bool active = true;
    SwitchableRouter* router = nullptr;
    std::vector<asu::Node*> placement;
    std::vector<asu::Node*> candidates;
    std::vector<MigrationPlan> pending;
    std::vector<MigrationDeclaration> declarations;
    std::vector<std::size_t> dwell_left;
    std::vector<double> cand_service;  // offered-work baselines
    std::size_t promote_streak = 0;
    std::size_t demote_streak = 0;
    obs::Counter* migrations = nullptr;
    obs::Counter* switches = nullptr;
  };

  [[nodiscard]] Client make_client(const std::string& label) {
    Client cl;
    cl.label = label;
    if (label.empty()) {
      cl.migrations = migrations_counter_;
      cl.switches = switches_counter_;
    } else {
      cl.migrations = &eng_->metrics().counter("lm." + label + ".migrations");
      cl.switches =
          &eng_->metrics().counter("lm." + label + ".router_switches");
    }
    return cl;
  }

  [[nodiscard]] static std::string tag(const Client& cl) {
    return cl.label.empty() ? std::string() : cl.label + ": ";
  }

  void maybe_switch_router(Client& cl, const LoadSample& s) {
    if (!cl.active || cl.router == nullptr || !cfg_.router_swap) return;
    const auto load = s.host_load();
    const double imb = LoadSample::imbalance(load);
    const double peak_util =
        load.empty()
            ? 0
            : *std::max_element(load.begin(), load.end()) / window(s);
    if (!cl.router->dynamic_active()) {
      const bool hot = imb >= cfg_.promote_imbalance &&
                       peak_util >= cfg_.min_actionable_load;
      cl.promote_streak = hot ? cl.promote_streak + 1 : 0;
      if (cl.promote_streak >= cfg_.promote_hysteresis &&
          cooldown_left_ == 0) {
        cl.router->promote();
        cl.switches->inc();
        if (cl.switches != switches_counter_) switches_counter_->inc();
        cooldown_left_ = cfg_.cooldown_samples;
        cl.promote_streak = cl.demote_streak = 0;
        journal(s.time, tag(cl) + "promote router -> dynamic (imbalance " +
                            std::to_string(imb) + ")");
      }
    } else {
      // No backlog floor on the way down: an idle cluster is even.
      cl.demote_streak =
          imb <= cfg_.demote_imbalance ? cl.demote_streak + 1 : 0;
      if (cl.demote_streak >= cfg_.demote_hysteresis && cooldown_left_ == 0) {
        cl.router->demote();
        cl.switches->inc();
        if (cl.switches != switches_counter_) switches_counter_->inc();
        cooldown_left_ = cfg_.cooldown_samples;
        cl.promote_streak = cl.demote_streak = 0;
        journal(s.time, tag(cl) + "demote router -> baseline (imbalance " +
                            std::to_string(imb) + ")");
      }
    }
  }

  /// Plan at most one move per tick ACROSS ALL CLIENTS: the instance
  /// whose projected gain is largest, and only when the gain is
  /// sustained. Per-node load is read directly off the candidate nodes
  /// at the sampling tick: queued backlog plus the service accepted
  /// since the previous tick, both in wall-seconds on that node's own
  /// CPU (speed ratio and fault degradation already folded in, so no
  /// rate division). Because the backlog is the node's — every tenant's
  /// queued work combined — this is aggregate cross-job load, which is
  /// exactly what a shared-substrate arbiter must balance. Work already
  /// queued at a node does NOT move with the functor (the CPU queue is
  /// the node's, not the instance's); what moves is the instance's
  /// future arrivals, which will wait behind the destination's current
  /// queue. Hence the comparison is load-here vs load-there, and the
  /// factor + dwell absorb the transient where the old node is still
  /// draining work the instance left behind.
  /// One candidate move the placer considers this tick, priced from the
  /// instance's declaration.
  struct Move {
    Client* cl = nullptr;
    std::size_t i = 0;       // instance index within the client
    std::size_t from_j = 0;  // indices into the client's candidate set
    std::size_t to_j = 0;
    MigrationPlan plan;
  };

  void maybe_plan_migration(const LoadSample& s) {
    if (!cfg_.migration) return;
    // Refresh every client's candidate load vector once per tick (queued
    // backlog + offered-work delta since the previous tick, in
    // wall-seconds on each node's own CPU). Baselines advance every tick
    // whether or not the gate opens, exactly as before the economy.
    std::vector<std::vector<double>> loads(clients_.size());
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      Client& cl = clients_[c];
      if (!cl.active || cl.placement.empty()) continue;
      loads[c].assign(cl.candidates.size(), 0);
      for (std::size_t j = 0; j < cl.candidates.size(); ++j) {
        const double total = cl.candidates[j]->cpu().total_service();
        loads[c][j] =
            cl.candidates[j]->cpu().backlog() + (total - cl.cand_service[j]);
        cl.cand_service[j] = total;
      }
    }

    const auto best_move = [&](std::size_t bytes_left) {
      Move best;
      for (std::size_t c = 0; c < clients_.size(); ++c) {
        Client& cl = clients_[c];
        if (!cl.active || cl.placement.empty()) continue;
        const auto& load = loads[c];
        for (std::size_t i = 0; i < cl.placement.size(); ++i) {
          if (cl.dwell_left[i] > 0 || cl.pending[i].to != nullptr) continue;
          asu::Node* from = cl.placement[i];
          const auto from_it =
              std::find(cl.candidates.begin(), cl.candidates.end(), from);
          if (from_it == cl.candidates.end()) continue;
          const std::size_t fj = std::size_t(from_it - cl.candidates.begin());
          const double load_here = load[fj];
          if (load_here / window(s) < cfg_.min_actionable_load) continue;
          const std::size_t bytes = cl.declarations[i].declared_bytes();
          if (bytes > bytes_left) continue;  // over the byte budget: wait
          for (std::size_t j = 0; j < cl.candidates.size(); ++j) {
            asu::Node* to = cl.candidates[j];
            if (to == from || !to->running()) continue;
            if (load_here >= cfg_.migrate_factor * load[j] &&
                load_here - load[j] > best.plan.gain) {
              best.cl = &cl;
              best.i = i;
              best.from_j = fj;
              best.to_j = j;
              best.plan = price(cl.declarations[i], to, bytes,
                                load_here - load[j], window(s));
            }
          }
        }
      }
      return best;
    };

    // The hysteresis streak counts ticks where at least one admissible
    // move exists (gain, factor, actionability, AND byte budget — a move
    // too fat for the per-tick budget cannot sustain the streak).
    const bool any = best_move(cfg_.budget_bytes_per_tick).cl != nullptr;
    migrate_streak_ = any ? migrate_streak_ + 1 : 0;
    if (!any || migrate_streak_ < cfg_.migrate_hysteresis ||
        cooldown_left_ != 0) {
      return;
    }

    // Gate open: greedily admit moves by descending gain until either
    // budget is exhausted. After each admission the admitted pair's
    // loads are virtually rebalanced to their mean so a second move in
    // the same tick never dog-piles the node the first move just chose
    // (the classic budgeted-placer failure mode).
    std::size_t moves_left = cfg_.budget_moves_per_tick;
    std::size_t bytes_left = cfg_.budget_bytes_per_tick;
    std::size_t planned = 0;
    while (moves_left > 0) {
      Move m = best_move(bytes_left);
      if (m.cl == nullptr) break;
      m.cl->pending[m.i] = m.plan;
      --moves_left;
      bytes_left -= m.plan.bytes;
      ++planned;
      auto& load = loads[std::size_t(
          std::find_if(clients_.begin(), clients_.end(),
                       [&](const Client& cl) { return &cl == m.cl; }) -
          clients_.begin())];
      const double mean = (load[m.from_j] + load[m.to_j]) / 2.0;
      load[m.from_j] = load[m.to_j] = mean;
      journal(eng_->now(),
              tag(*m.cl) + "plan migrate i" + std::to_string(m.i) + " " +
                  m.cl->placement[m.i]->name() + " -> " + m.plan.to->name() +
                  " (" + migration_mode_name(m.plan.mode) + ", " +
                  std::to_string(m.plan.bytes) + " B)");
      decisions_.push_back({eng_->now(), m.cl->label, m.i,
                            m.cl->placement[m.i]->name(), m.plan.to->name(),
                            m.plan.mode, m.plan.bytes, m.plan.est_stall,
                            m.plan.gain});
    }
    if (planned > 0) {
      cooldown_left_ = cfg_.cooldown_samples;
      migrate_streak_ = 0;
    }
  }

  /// Price a move from the instance's declaration: stop-copy stalls for
  /// the whole declared state; pre-copy is chosen when that stall would
  /// exceed `precopy_stall_fraction` of the sampling window AND the
  /// declaration carries both a wire cost and bulk state worth shipping
  /// in the background.
  [[nodiscard]] MigrationPlan price(const MigrationDeclaration& decl,
                                    asu::Node* to, std::size_t bytes,
                                    double gain, double win) const {
    MigrationPlan p;
    p.to = to;
    p.bytes = bytes;
    p.gain = gain;
    const std::size_t ws = bytes - decl.overhead_bytes;
    const double stop_stall = double(bytes) * decl.wire_seconds_per_byte;
    if (decl.wire_seconds_per_byte > 0 && ws > 0 &&
        stop_stall > cfg_.precopy_stall_fraction * win) {
      p.mode = MigrationMode::PreCopy;
      p.est_stall =
          (double(decl.overhead_bytes) + decl.dirty_fraction * double(ws)) *
          decl.wire_seconds_per_byte;
    } else {
      p.mode = MigrationMode::StopCopy;
      p.est_stall = stop_stall;
    }
    return p;
  }

  /// Normalizing window for the actionability floor: the sample's own
  /// period when it carries one, the configured period otherwise
  /// (hand-built samples in unit tests).
  [[nodiscard]] double window(const LoadSample& s) const {
    const double w = s.period > 0 ? s.period : cfg_.period;
    return w > 0 ? w : 1.0;
  }

  void journal(double t, std::string what) {
    if (eng_->tracer().enabled()) {
      eng_->tracer().instant(track_, what, t);
    }
    journal_.push_back({t, std::move(what)});
  }

  sim::Engine* eng_;
  LoadManagerConfig cfg_;
  std::vector<Client> clients_;
  std::size_t migrate_streak_ = 0;
  std::size_t cooldown_left_ = 0;
  std::vector<LoadManagerEvent> journal_;
  std::vector<PlacerDecision> decisions_;
  obs::Counter* migrations_counter_;
  obs::Counter* switches_counter_;
  std::uint32_t track_;
};

}  // namespace lmas::core

#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "asu/network.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace lmas::core {

/// One utilization sample across the cluster.
struct LoadSample {
  double time = 0;
  std::vector<double> host_backlog;  // queued CPU seconds per host
  std::vector<double> asu_backlog;

  [[nodiscard]] double host_imbalance() const {
    return imbalance(host_backlog);
  }
  [[nodiscard]] double asu_imbalance() const { return imbalance(asu_backlog); }

  static double imbalance(const std::vector<double>& v) {
    if (v.size() < 2) return 0;
    const double mx = *std::max_element(v.begin(), v.end());
    const double sum = std::accumulate(v.begin(), v.end(), 0.0);
    if (sum <= 0) return 0;
    // 0 = perfectly even, 1 = all load on one node.
    const double even = sum / double(v.size());
    return (mx - even) / (sum - even + 1e-30);
  }
};

/// The monitoring half of the load manager: a simulated process that
/// samples every node's CPU backlog on a fixed period. Dynamic policies
/// (LeastLoadedRouter, migration callbacks, adaptive reconfiguration)
/// consume exactly this kind of information; the monitor makes it
/// observable and testable on its own.
class LoadMonitor {
 public:
  LoadMonitor(asu::Cluster& cluster, double period_seconds = 0.05)
      : cluster_(&cluster), period_(period_seconds) {}

  /// Spawn the sampling process; it runs until the engine drains (it
  /// samples only while other work is pending, so it cannot keep the
  /// simulation alive by itself... which a periodic task would; instead
  /// it stops after `max_samples`).
  void start(std::size_t max_samples = 10000) {
    cluster_->engine().spawn(run(max_samples), "load-monitor");
  }

  [[nodiscard]] const std::vector<LoadSample>& samples() const noexcept {
    return samples_;
  }

  /// Peak observed host imbalance (0 = always even).
  [[nodiscard]] double peak_host_imbalance() const {
    double peak = 0;
    for (const auto& s : samples_) peak = std::max(peak, s.host_imbalance());
    return peak;
  }

 private:
  sim::Task<> run(std::size_t max_samples) {
    // Publish every sample into the engine's registry (and, when tracing,
    // as Chrome counter events) so routing decisions and bench artifacts
    // see the same backlog signal the manager acts on. The private
    // samples() vector stays as the compatibility accessor.
    sim::Engine& eng = cluster_->engine();
    std::vector<lmas::obs::Gauge*> host_gauges, asu_gauges;
    for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
      host_gauges.push_back(
          &eng.metrics().gauge("host.backlog." + std::to_string(h)));
    }
    for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
      asu_gauges.push_back(
          &eng.metrics().gauge("asu.backlog." + std::to_string(a)));
    }
    lmas::obs::Gauge& imbalance_gauge =
        eng.metrics().gauge("load.host_imbalance");
    const std::uint32_t track = eng.tracer().track("load-monitor");

    for (std::size_t i = 0; i < max_samples; ++i) {
      co_await eng.sleep(period_);
      LoadSample s;
      s.time = eng.now();
      for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
        const double b = cluster_->host(h).cpu().backlog();
        s.host_backlog.push_back(b);
        host_gauges[h]->set(b);
      }
      for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
        const double b = cluster_->asu(a).cpu().backlog();
        s.asu_backlog.push_back(b);
        asu_gauges[a]->set(b);
      }
      imbalance_gauge.set(s.host_imbalance());
      if (eng.tracer().enabled()) {
        for (unsigned h = 0; h < cluster_->num_hosts(); ++h) {
          eng.tracer().counter(track, "host.backlog." + std::to_string(h),
                               s.time, s.host_backlog[h]);
        }
        for (unsigned a = 0; a < cluster_->num_asus(); ++a) {
          eng.tracer().counter(track, "asu.backlog." + std::to_string(a),
                               s.time, s.asu_backlog[a]);
        }
      }
      const bool all_idle =
          std::all_of(s.host_backlog.begin(), s.host_backlog.end(),
                      [](double b) { return b <= 0; }) &&
          std::all_of(s.asu_backlog.begin(), s.asu_backlog.end(),
                      [](double b) { return b <= 0; });
      samples_.push_back(std::move(s));
      // Two consecutive all-idle samples after any work: the workload has
      // drained; stop so the monitor does not keep the event queue alive
      // forever. A single idle sample is not enough — DSM-Sort-style
      // programs have quiescent gaps between phases longer than one
      // period, and stopping inside one would miss all later load.
      if (all_idle && saw_work_) {
        if (++idle_streak_ >= 2) break;
      } else {
        idle_streak_ = 0;
      }
      if (!all_idle) saw_work_ = true;
    }
  }

  asu::Cluster* cluster_;
  double period_;
  std::vector<LoadSample> samples_;
  bool saw_work_ = false;
  std::size_t idle_streak_ = 0;
};

}  // namespace lmas::core

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "extmem/record.hpp"

namespace lmas::core {

/// A packet groups related records that must be processed as a whole
/// (Section 3.2). Packets give sets intermediate structure: they impose a
/// partial order (records within a packet stay together and in order) while
/// leaving the system free to route whole packets to any instance of a
/// replicated functor.
struct Packet {
  /// The distribute subset (bucket) these records belong to. Routing
  /// constraints and merge grouping key off this.
  std::uint32_t subset = 0;

  /// Sequence number of this packet within its subset at its producer
  /// (used by tests to check per-producer FIFO delivery).
  std::uint32_t seq = 0;

  /// Identifier of the sorted run this packet belongs to (unique per
  /// producer); consumers reassemble multi-packet runs with it.
  std::uint32_t run_id = 0;

  /// True when the records inside the packet are sorted by key — e.g. a
  /// run emitted by a sort functor (Figure 4). Downstream functors may
  /// rely on this to merge rather than re-sort.
  bool sorted = false;

  std::vector<em::KeyRecord> records;

  // ---- telemetry context (never folded into the execution digest) ----

  /// Causal span id: assigned by StageOutput at first emit while tracing
  /// is enabled (0 otherwise), carried through channel delivery to the
  /// consuming stage so one packet's path — including retry-park loops
  /// and migration re-pins — renders as a single flow lane.
  std::uint64_t trace_id = 0;

  /// Flow id of the upstream packet whose records fed this one (e.g. a
  /// sorted-run packet derived from distribute packets); 0 = root flow.
  std::uint64_t parent_id = 0;

  /// Sim time the producer handed the packet to StageOutput::emit, and
  /// sim time delivery enqueued it at the consumer inbox — the stamps
  /// behind the <stage>.delivery_seconds / .queue_wait_seconds latency
  /// histograms. Untouched (0) when stage telemetry is off.
  double t_emit = 0;
  double t_enqueue = 0;

  [[nodiscard]] std::size_t size() const noexcept { return records.size(); }

  /// Modeled wire/storage footprint: the evaluation's records are
  /// `record_bytes` long even though the simulation carries only keys.
  [[nodiscard]] std::size_t wire_bytes(std::size_t record_bytes) const {
    return records.size() * record_bytes;
  }
};

}  // namespace lmas::core

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extmem/record.hpp"

namespace lmas::core {

/// Pick alpha-1 splitter keys as quantiles of a key sample, so the alpha
/// distribute buckets carry near-equal record counts even for skewed key
/// distributions. This is how distribution sorts balance *stationary*
/// skew; Figure 10's point is that it cannot fix skew that changes over
/// time, which is what the SR routing of sets handles.
inline std::vector<std::uint32_t> choose_splitters(
    std::vector<std::uint32_t> sample, unsigned alpha) {
  std::vector<std::uint32_t> splitters;
  if (alpha <= 1 || sample.empty()) return splitters;
  std::sort(sample.begin(), sample.end());
  splitters.reserve(alpha - 1);
  for (unsigned i = 1; i < alpha; ++i) {
    const std::size_t idx =
        std::min(sample.size() - 1, i * sample.size() / alpha);
    splitters.push_back(sample[idx]);
  }
  // Duplicate splitters simply leave some buckets empty, which is
  // correct (ordered, conserving).
  return splitters;
}

/// Bucket index by binary search over sorted splitters: ceil(log2 alpha)
/// compares per key — exactly the distribute cost the model declares.
class SplitterClassifier {
 public:
  explicit SplitterClassifier(std::vector<std::uint32_t> splitters)
      : splitters_(std::move(splitters)) {}

  /// Keys equal to a splitter go to the lower bucket.
  template <typename R>
  [[nodiscard]] std::size_t operator()(const R& r) const {
    return std::size_t(std::lower_bound(splitters_.begin(), splitters_.end(),
                                        r.key) -
                       splitters_.begin());
  }

  [[nodiscard]] unsigned buckets() const noexcept {
    return unsigned(splitters_.size()) + 1;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& splitters() const noexcept {
    return splitters_;
  }

 private:
  std::vector<std::uint32_t> splitters_;
};

}  // namespace lmas::core

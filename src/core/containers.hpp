#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace lmas::core {

/// The model's three container types (Section 3.2, Figure 3). They differ
/// only in the ordering contract their scans make — exactly the degrees of
/// freedom the system may exploit:
///   SetContainer    — unordered scan: any pending record may come next.
///   StreamContainer — ordered scan: next unconsumed record in sequence.
///   ArrayContainer  — random access in application-defined order.
///
/// Sets and streams are processed in their entirety per scan; records are
/// marked pending/completed, and destructive scans release storage for
/// completed records as they are consumed.

template <typename T>
class SetContainer {
 public:
  void insert(T v) { pending_.push_back(std::move(v)); }

  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::size_t completed_count() const noexcept {
    return completed_.size();
  }
  [[nodiscard]] bool scan_done() const noexcept { return pending_.empty(); }

  /// Consume any pending record (the system's choice; here FIFO for
  /// determinism, but callers must not rely on the order). Destructive
  /// scans drop the record after return; otherwise it is kept as
  /// completed and restored by reset_scan().
  std::optional<T> take_any(bool destructive = false,
                            sim::Rng* rng = nullptr) {
    if (pending_.empty()) return std::nullopt;
    std::size_t idx = 0;
    if (rng) idx = std::size_t(rng->below(pending_.size()));
    T out = std::move(pending_[idx]);
    pending_.erase(pending_.begin() + std::ptrdiff_t(idx));
    if (!destructive) completed_.push_back(out);
    return out;
  }

  /// Make all completed records pending again for the next scan pass.
  void reset_scan() {
    for (auto& v : completed_) pending_.push_back(std::move(v));
    completed_.clear();
  }

 private:
  std::deque<T> pending_;
  std::vector<T> completed_;
};

template <typename T>
class StreamContainer {
 public:
  void push_back(T v) { items_.push_back(std::move(v)); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return items_.size() - cursor_;
  }
  [[nodiscard]] bool scan_done() const noexcept {
    return cursor_ >= items_.size();
  }

  /// Always delivers the next unconsumed record in sequence, even when a
  /// set would have had something more convenient available. Use a
  /// consistent `destructive` flag for the whole scan.
  std::optional<T> take_next(bool destructive = false) {
    if (cursor_ >= items_.size()) return std::nullopt;
    if (destructive) {
      T out = std::move(items_.front());
      items_.pop_front();
      return out;
    }
    return items_[cursor_++];
  }

  void reset_scan() { cursor_ = 0; }

 private:
  std::deque<T> items_;
  std::size_t cursor_ = 0;
};

template <typename T>
class ArrayContainer {
 public:
  explicit ArrayContainer(std::size_t n = 0) : items_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  void resize(std::size_t n) { items_.resize(n); }
  void push_back(T v) { items_.push_back(std::move(v)); }

  [[nodiscard]] T& at(std::size_t i) { return items_.at(i); }
  [[nodiscard]] const T& at(std::size_t i) const { return items_.at(i); }
  [[nodiscard]] T& operator[](std::size_t i) { return items_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return items_[i]; }

 private:
  std::vector<T> items_;
};

}  // namespace lmas::core

#include "core/dist_btree.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <memory>
#include <vector>

#include "asu/asu.hpp"
#include "extmem/btree.hpp"
#include "sim/sim.hpp"

namespace lmas::core {

namespace {

namespace sim = lmas::sim;
namespace asu_ns = lmas::asu;
namespace em = lmas::em;

constexpr std::size_t kIoBlockBytes = 4096;

struct IndexRequest {
  enum class Kind { Lookup, Insert, Batch } kind = Kind::Lookup;
  std::uint32_t client = 0;
  std::uint32_t key = 0;
  std::uint32_t value = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> batch;
};

struct IndexReply {
  bool found = false;
  std::uint32_t value = 0;
};

class DistBTreeSim {
 public:
  /// Client-id tag width in the low key bits (supports up to 16 clients).
  static constexpr std::uint32_t kKeyMask = 0xf;

  DistBTreeSim(const asu_ns::MachineParams& mp, const DistBTreeConfig& cfg)
      : mp_(mp), cfg_(cfg), cluster_(eng_, mp), d_(mp.num_asus) {}

  DistBTreeReport run() {
    if (cfg_.clients > kKeyMask + 1) {
      throw std::invalid_argument("dist btree sim supports <= 16 clients");
    }
    build_initial();
    for (unsigned a = 0; a < d_; ++a) {
      req_.push_back(std::make_unique<sim::Channel<IndexRequest>>(eng_, 16));
    }
    for (unsigned c = 0; c < cfg_.clients; ++c) {
      reply_.push_back(std::make_unique<sim::Channel<IndexReply>>(eng_, 0));
    }
    pending_.assign(d_, {});

    for (unsigned a = 0; a < d_; ++a) eng_.spawn(asu_worker(a));
    for (unsigned c = 0; c < cfg_.clients; ++c) eng_.spawn(client(c));
    eng_.run();

    DistBTreeReport rep;
    rep.makespan = eng_.now();
    rep.mean_lookup_latency = lookup_lat_.mean();
    rep.max_lookup_latency = lookup_lat_.max();
    rep.lookups = lookup_lat_.count();
    rep.inserts = inserts_;
    rep.batches_shipped = batches_;
    rep.lookups_ok = lookups_ok_;
    rep.final_state_ok = check_final_state();
    return rep;
  }

 private:
  [[nodiscard]] unsigned owner(std::uint32_t key) const {
    return unsigned((std::uint64_t(key) * d_) >> 32);
  }

  void build_initial() {
    sim::Rng rng = sim::Rng(cfg_.seed).stream(sim::stream_id("initial-keys"));
    for (std::size_t i = 0; i < cfg_.initial_keys; ++i) {
      const auto k = std::uint32_t(rng.next());
      oracle_[k] = std::uint32_t(rng.next());  // duplicates: last wins
    }
    // The oracle *is* the initial state; slice it into per-ASU ranges
    // (std::map iterates in key order, so slices arrive sorted).
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> per(d_);
    for (const auto& [k, v] : oracle_) per[owner(k)].emplace_back(k, v);
    for (unsigned a = 0; a < d_; ++a) {
      trees_.push_back(std::make_unique<em::BTree>(
          em::BTree::bulk_load(per[a], em::make_memory_bte())));
    }
  }

  sim::Task<> client(unsigned c) {
    asu_ns::Node& host = cluster_.host(0);
    sim::Rng rng = sim::Rng(cfg_.seed).stream(sim::stream_id("client", c));
    const std::size_t ops = cfg_.operations / cfg_.clients;

    for (std::size_t i = 0; i < ops; ++i) {
      const bool is_insert = rng.uniform() < cfg_.insert_ratio;
      // Clients own disjoint key slices (low bits = client id): the
      // system guarantees per-client FIFO visibility (one channel per
      // ASU, inserts ordered before later lookups), not global
      // linearizability, so the oracle check must respect that.
      const auto key =
          (std::uint32_t(rng.next()) & ~std::uint32_t(kKeyMask)) | c;
      // Host layer: route through the in-memory upper levels.
      co_await host.compute(mp_.cost.host_handling +
                            asu_ns::ceil_log2(d_) * mp_.cost.compare);
      const unsigned a = owner(key);

      if (is_insert) {
        const auto value = std::uint32_t(rng.next());
        oracle_[key] = value;
        ++inserts_;
        if (cfg_.maintenance == MaintenanceMode::Online) {
          co_await send(host, a,
                        IndexRequest{IndexRequest::Kind::Insert, c, key,
                                     value, {}});
        } else {
          pending_[a].emplace_back(key, value);
          if (pending_[a].size() >= cfg_.batch_size) {
            co_await ship_batch(host, a);
          }
        }
        continue;
      }

      // Lookup. The host's write buffer is part of the index: consult it
      // first (batched maintenance must not lose visibility).
      const double t0 = eng_.now();
      bool found = false;
      std::uint32_t value = 0;
      if (cfg_.maintenance == MaintenanceMode::Batched) {
        for (auto it = pending_[a].rbegin(); it != pending_[a].rend(); ++it) {
          if (it->first == key) {
            found = true;
            value = it->second;
            break;
          }
        }
        co_await host.compute(
            double(asu_ns::ceil_log2(
                std::max<std::size_t>(2, pending_[a].size()))) *
            mp_.cost.compare);
      }
      if (!found) {
        co_await send(host, a,
                      IndexRequest{IndexRequest::Kind::Lookup, c, key, 0,
                                   {}});
        const auto r = co_await reply_[c]->recv();
        if (r) {
          found = r->found;
          value = r->value;
        }
      }
      lookup_lat_.add(eng_.now() - t0);
      // Oracle check.
      const auto it = oracle_.find(key);
      const bool expect = it != oracle_.end();
      if (expect != found || (expect && it->second != value)) {
        lookups_ok_ = false;
      }
    }

    if (++clients_done_ == cfg_.clients) {
      // Flush any buffered maintenance, then close the workers.
      for (unsigned a = 0; a < d_; ++a) {
        if (!pending_[a].empty()) {
          co_await ship_batch(cluster_.host(0), a);
        }
      }
      for (auto& ch : req_) ch->close();
    }
  }

  sim::Task<> ship_batch(asu_ns::Node& host, unsigned a) {
    IndexRequest r{IndexRequest::Kind::Batch, 0, 0, 0,
                   std::move(pending_[a])};
    pending_[a].clear();
    std::sort(r.batch.begin(), r.batch.end());
    ++batches_;
    co_await send(host, a, std::move(r));
  }

  sim::Task<> send(asu_ns::Node& host, unsigned a, IndexRequest r) {
    const std::size_t bytes = 32 + r.batch.size() * 8;
    co_await cluster_.network().transfer(host, cluster_.asu(a), bytes);
    co_await req_[a]->send(std::move(r));
  }

  sim::Task<> asu_worker(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    asu_ns::Node& host = cluster_.host(0);
    em::BTree& tree = *trees_[a];
    const double node_probe =
        mp_.cost.asu_handling +
        double(asu_ns::ceil_log2(em::BTree::kMaxKeys)) * mp_.cost.compare;

    while (true) {
      auto r = co_await req_[a]->recv();
      if (!r) break;
      switch (r->kind) {
        case IndexRequest::Kind::Lookup: {
          // Root-to-leaf block reads + per-node search.
          co_await node.disk().read(tree.height() * kIoBlockBytes);
          co_await node.compute(double(tree.height()) * node_probe);
          const auto v = tree.find(r->key);
          co_await cluster_.network().transfer(node, host, 16);
          co_await reply_[r->client]->send(
              IndexReply{v.has_value(), v.value_or(0)});
          break;
        }
        case IndexRequest::Kind::Insert: {
          // Online maintenance: random read-modify-write per insert.
          co_await node.disk().read(tree.height() * kIoBlockBytes);
          co_await node.disk().write(kIoBlockBytes);
          co_await node.compute(double(tree.height()) * node_probe);
          tree.insert(r->key, r->value);
          break;
        }
        case IndexRequest::Kind::Batch: {
          // Offline batch maintenance: one leaf-span pass, amortized.
          const std::size_t touched_blocks =
              tree.height() +
              (r->batch.size() + em::BTree::kMaxKeys - 1) /
                  em::BTree::kMaxKeys;
          co_await node.disk().read(touched_blocks * kIoBlockBytes);
          co_await node.disk().write(touched_blocks * kIoBlockBytes);
          co_await node.compute(double(r->batch.size()) * node_probe);
          for (const auto& [k, v] : r->batch) tree.insert(k, v);
          break;
        }
      }
    }
  }

  [[nodiscard]] bool check_final_state() {
    for (const auto& [k, v] : oracle_) {
      const auto got = trees_[owner(k)]->find(k);
      if (!got || *got != v) return false;
    }
    return true;
  }

  asu_ns::MachineParams mp_;
  DistBTreeConfig cfg_;
  sim::Engine eng_;
  asu_ns::Cluster cluster_;
  unsigned d_;
  std::vector<std::unique_ptr<em::BTree>> trees_;
  std::vector<std::unique_ptr<sim::Channel<IndexRequest>>> req_;
  std::vector<std::unique_ptr<sim::Channel<IndexReply>>> reply_;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> pending_;
  std::map<std::uint32_t, std::uint32_t> oracle_;
  sim::Accumulator lookup_lat_;
  std::size_t inserts_ = 0;
  std::size_t batches_ = 0;
  unsigned clients_done_ = 0;
  bool lookups_ok_ = true;
};

}  // namespace

DistBTreeReport run_dist_btree(const asu::MachineParams& mp,
                               const DistBTreeConfig& cfg) {
  DistBTreeSim s(mp, cfg);
  return s.run();
}

}  // namespace lmas::core

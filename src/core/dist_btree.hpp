#pragma once

#include <cstdint>

#include "asu/params.hpp"

namespace lmas::core {

/// Distributed two-level B+-tree (Section 4.2: the R-tree distribution
/// technique "also applies to other two-level I/O-efficient index
/// structures. For online data structures, the maintenance work ... at
/// the lower levels can run as a batch job running on the ASUs, while
/// the host layer maintains the upper levels online").
///
/// The host keeps the range map (upper levels) in memory and routes
/// operations; each ASU owns a real extmem::BTree over a contiguous key
/// range (lower levels). Inserts can be applied per-operation (online
/// random I/O at the ASU) or accumulated at the host and shipped as
/// sorted batches that the ASU applies as offline maintenance.
enum class MaintenanceMode { Online, Batched };

struct DistBTreeConfig {
  std::size_t initial_keys = 100000;
  std::size_t operations = 4000;
  /// Fraction of operations that are inserts (the rest are lookups).
  double insert_ratio = 0.5;
  unsigned clients = 4;
  MaintenanceMode maintenance = MaintenanceMode::Batched;
  /// Inserts buffered per ASU before a batch ships.
  std::size_t batch_size = 256;
  std::uint64_t seed = 5;
};

struct DistBTreeReport {
  double makespan = 0;
  double mean_lookup_latency = 0;
  double max_lookup_latency = 0;
  std::size_t lookups = 0;
  std::size_t inserts = 0;
  std::size_t batches_shipped = 0;
  bool lookups_ok = false;   // every lookup agreed with the oracle
  bool final_state_ok = false;  // all inserts present afterwards
};

DistBTreeReport run_dist_btree(const asu::MachineParams& mp,
                               const DistBTreeConfig& cfg);

}  // namespace lmas::core

#include "core/program.hpp"

#include <stdexcept>

#include "asu/asu.hpp"
#include "sim/sim.hpp"

namespace lmas::core {

struct Program::StageRt {
  ProgramStageSpec spec;
  std::unique_ptr<StageInboxes> inboxes;
  StageStats stats;
};

struct Program::Impl {
  explicit Impl(asu::Cluster& c) : cluster(&c), eng(&c.engine()) {}

  asu::Cluster* cluster;
  sim::Engine* eng;

  std::string src_name;
  std::vector<asu::Node*> src_nodes;
  SourceFn src;
  double src_per_record_cost = 0;
  StageStats src_stats;

  std::vector<std::unique_ptr<StageRt>> stages;
  std::vector<std::unique_ptr<StageOutput>> outputs;  // outputs[i] feeds stage i

  std::vector<Packet> sink_output;
  StageStats* sink_stats = nullptr;

  [[nodiscard]] std::size_t record_bytes() const {
    return cluster->params().record_bytes;
  }

  sim::Task<> drive_source(unsigned i) {
    asu::Node& node = *src_nodes[i];
    StageOutput* downstream = outputs.front().get();
    Packet p;
    while (src(i, p)) {
      // Degraded modes: a crashed source node stops producing until it
      // recovers (the healthy path costs one branch, no engine work).
      while (!node.running()) co_await node.health_wait();
      src_stats.packets_out++;
      src_stats.records_out += p.records.size();
      if (node.has_disk()) {
        co_await node.disk().read(p.wire_bytes(record_bytes()));
      }
      if (src_per_record_cost > 0) {
        const double cost = src_per_record_cost * double(p.records.size());
        src_stats.busy_seconds += cost;
        co_await node.compute(cost);
      }
      co_await downstream->emit(node, std::move(p));
      p = Packet{};
    }
    downstream->producer_done();
  }

  sim::Task<> drive_stage(std::size_t stage_index, unsigned i) {
    StageRt& st = *stages[stage_index];
    StageOutput* downstream = stage_index + 1 < stages.size()
                                  ? outputs[stage_index + 1].get()
                                  : nullptr;
    asu::Node* node = st.spec.placement[i];
    auto functor = st.spec.make(i);
    auto& inbox = st.inboxes->inbox(i);
    std::vector<Packet> outs;

    while (true) {
      auto p = co_await inbox.recv();
      if (!p) break;
      // A crashed instance keeps its accepted packets queued but pauses
      // processing until recovery (nothing is lost, work resumes).
      while (!node->running()) co_await node->health_wait();
      if (st.spec.migrate) {
        if (asu::Node* target = st.spec.migrate(i, *node);
            target != nullptr && target != node) {
          co_await cluster->network().transfer(
              *node, *target,
              functor->state_bytes() + kMigrationOverheadBytes);
          node = target;
          outputs[stage_index]->set_target_node(i, *target);
          ++st.stats.migrations;
        }
      }
      st.stats.packets_in++;
      st.stats.records_in += p->records.size();
      const double cost = functor->cost().packet_cost(p->records.size());
      st.stats.busy_seconds += cost;
      co_await node->compute(cost);
      outs.clear();
      functor->process(std::move(*p), outs);
      co_await emit_all(st, *node, outs, downstream);
    }
    outs.clear();
    functor->finish(outs);
    if (!outs.empty()) {
      // Flushing is real work too: charge the per-packet cost.
      double flush_cost = 0;
      for (const auto& o : outs) {
        flush_cost += functor->cost().packet_cost(o.records.size());
      }
      st.stats.busy_seconds += flush_cost;
      co_await node->compute(flush_cost);
      co_await emit_all(st, *node, outs, downstream);
    }
    if (downstream) downstream->producer_done();
  }

  sim::Task<> emit_all(StageRt& st, asu::Node& node, std::vector<Packet>& outs,
                       StageOutput* downstream) {
    for (auto& o : outs) {
      st.stats.packets_out++;
      st.stats.records_out += o.records.size();
      if (downstream) {
        co_await downstream->emit(node, std::move(o));
      } else {
        sink_output.push_back(std::move(o));
      }
    }
    outs.clear();
  }
};

Program::Program(asu::Cluster& cluster)
    : impl_(std::make_unique<Impl>(cluster)) {}

Program::~Program() = default;

void Program::set_source(std::string name, std::vector<asu::Node*> placement,
                         SourceFn source, double per_record_cost) {
  if (placement.empty()) {
    throw std::invalid_argument("source needs at least one instance");
  }
  impl_->src_name = std::move(name);
  impl_->src_nodes = std::move(placement);
  impl_->src = std::move(source);
  impl_->src_per_record_cost = per_record_cost;
}

void Program::add_stage(ProgramStageSpec spec) {
  if (spec.placement.empty()) {
    throw std::invalid_argument("stage '" + spec.name +
                                "' needs at least one instance");
  }
  // ASU eligibility: bounded state must fit the ASU memory bound.
  auto probe = spec.make(0);
  for (const auto* node : spec.placement) {
    if (node->is_asu() && probe->state_bytes() > node->memory_bytes()) {
      throw std::invalid_argument(
          "stage '" + spec.name +
          "': functor state exceeds the ASU memory bound");
    }
  }
  auto rt = std::make_unique<StageRt>();
  rt->spec = std::move(spec);
  rt->stats.name = rt->spec.name;
  impl_->stages.push_back(std::move(rt));
}

ProgramStats Program::run() {
  Impl& im = *impl_;
  if (!im.src || im.stages.empty()) {
    throw std::logic_error("program needs a source and at least one stage");
  }

  // Wire the pipeline: outputs[i] routes into stage i's inboxes.
  im.outputs.clear();
  for (std::size_t i = 0; i < im.stages.size(); ++i) {
    StageRt& st = *im.stages[i];
    st.inboxes = std::make_unique<StageInboxes>(
        *im.eng, st.spec.placement.size(), st.spec.inbox_packets);
    const unsigned producers =
        i == 0 ? unsigned(im.src_nodes.size())
               : unsigned(im.stages[i - 1]->spec.placement.size());
    im.outputs.push_back(std::make_unique<StageOutput>(
        *im.eng, im.cluster->network(),
        StageSpec{
            .record_bytes = im.record_bytes(),
            .endpoints = st.inboxes->endpoints(st.spec.placement),
            .router = make_router(
                {.kind = st.spec.router,
                 .rng = sim::Rng(0x9ab).stream(sim::stream_id("routing", i)),
                 .total_subsets = st.spec.router_subsets,
                 .instrument = im.eng,
                 .label = st.spec.name}),
            .producers = producers,
            .name = "to_" + st.spec.name}));
  }

  const double t0 = im.eng->now();
  for (unsigned i = 0; i < im.src_nodes.size(); ++i) {
    im.eng->spawn(im.drive_source(i), im.src_name + std::to_string(i));
  }
  for (std::size_t s = 0; s < im.stages.size(); ++s) {
    for (unsigned i = 0; i < im.stages[s]->spec.placement.size(); ++i) {
      im.eng->spawn(im.drive_stage(s, i),
                    im.stages[s]->spec.name + std::to_string(i));
    }
  }
  im.eng->run();
  if (im.eng->unfinished_tasks() != 0) {
    std::string who;
    for (const auto& n : im.eng->unfinished_task_names()) {
      if (!who.empty()) who += ", ";
      who += n;
    }
    throw std::logic_error("program deadlocked; unfinished: " + who);
  }

  ProgramStats out;
  out.makespan = im.eng->now() - t0;
  im.src_stats.name = im.src_name;
  out.stages.push_back(im.src_stats);
  for (const auto& st : im.stages) out.stages.push_back(st->stats);
  out.sink_output = std::move(im.sink_output);
  return out;
}

}  // namespace lmas::core

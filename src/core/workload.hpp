#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace lmas::core {

/// Key distributions used by the evaluation. `HalfUniformHalfExp` is the
/// Figure 10 workload: the first half of the input is uniform, the second
/// half exponential, so a range partition that was balanced early becomes
/// skewed mid-run.
enum class KeyDist {
  Uniform,
  Exponential,
  HalfUniformHalfExp,
  Sorted,
  ReverseSorted,
};

inline const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::Uniform: return "uniform";
    case KeyDist::Exponential: return "exponential";
    case KeyDist::HalfUniformHalfExp: return "half-uniform-half-exp";
    case KeyDist::Sorted: return "sorted";
    case KeyDist::ReverseSorted: return "reverse-sorted";
  }
  return "?";
}

/// Streaming generator of 4-byte keys: position-aware so HalfUniformHalfExp
/// can switch distribution at the midpoint of the (per-producer) input.
class KeyGenerator {
 public:
  KeyGenerator(KeyDist dist, std::size_t total, sim::Rng rng)
      : dist_(dist), total_(total), rng_(rng) {}

  [[nodiscard]] std::uint32_t next() {
    const std::size_t i = emitted_++;
    switch (dist_) {
      case KeyDist::Uniform:
        return uniform_key();
      case KeyDist::Exponential:
        return exponential_key();
      case KeyDist::HalfUniformHalfExp:
        return i < total_ / 2 ? uniform_key() : exponential_key();
      case KeyDist::Sorted:
        return scale_index(i);
      case KeyDist::ReverseSorted:
        return scale_index(total_ - 1 - i);
    }
    return 0;
  }

  [[nodiscard]] std::vector<std::uint32_t> take(std::size_t n) {
    std::vector<std::uint32_t> out(n);
    for (auto& k : out) k = next();
    return out;
  }

  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

 private:
  [[nodiscard]] std::uint32_t uniform_key() {
    return std::uint32_t(rng_.next());
  }

  /// Exponential keys concentrated at the low end of the key space:
  /// mean at 1/8 of the range, clipped. Roughly 87% of keys land in the
  /// lowest quarter — a severe skew for a uniform range partition.
  [[nodiscard]] std::uint32_t exponential_key() {
    const double x = std::min(rng_.exponential(8.0), 0.999999);
    return std::uint32_t(x * 4294967296.0);
  }

  [[nodiscard]] std::uint32_t scale_index(std::size_t i) const {
    if (total_ <= 1) return 0;
    return std::uint32_t((double(i) / double(total_ - 1)) * 4294967295.0);
  }

  KeyDist dist_;
  std::size_t total_;
  sim::Rng rng_;
  std::size_t emitted_ = 0;
};

}  // namespace lmas::core

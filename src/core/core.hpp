#pragma once

/// Umbrella header for the load-managed active storage programming model.
#include "core/adaptive.hpp"
#include "core/containers.hpp"
#include "core/dist_btree.hpp"
#include "core/dsm_sort.hpp"
#include "core/functor.hpp"
#include "core/load_manager.hpp"
#include "core/packet.hpp"
#include "core/pipeline.hpp"
#include "core/program.hpp"
#include "core/routing.hpp"
#include "core/workload.hpp"

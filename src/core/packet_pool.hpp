#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "extmem/record.hpp"

namespace lmas::core {

/// Recycler for the record buffers that dominate per-send allocation in
/// the pipeline hot path: every staged packet a producer flushes and
/// every chunk a consumer absorbs used to allocate (and free) a fresh
/// std::vector<KeyRecord>. The pool keeps spent buffers (cleared, with
/// their capacity intact) and hands them back LIFO, so the most recently
/// released — cache-warm — buffer is reused first.
///
/// Single-threaded by design: a pool belongs to one StageOutput and
/// therefore to one engine; the sweep executor runs one engine per
/// thread, so no locking is needed (DESIGN.md §10). Reuse is purely a
/// memory-traffic optimization — it changes no event timing, no RNG
/// draws, and no metrics, so execution digests are bit-identical with
/// the pool on or off.
class PacketPool {
 public:
  using Buffer = std::vector<em::KeyRecord>;

  /// An empty buffer with capacity >= `min_capacity` (freshly reserved
  /// when the free list is empty or the reused buffer is too small).
  [[nodiscard]] Buffer acquire(std::size_t min_capacity = 0) {
    ++acquired_;
    if (!free_.empty()) {
      Buffer b = std::move(free_.back());
      free_.pop_back();
      ++reused_;
      if (b.capacity() < min_capacity) b.reserve(min_capacity);
      return b;
    }
    Buffer b;
    if (min_capacity > 0) b.reserve(min_capacity);
    return b;
  }

  /// Return a spent buffer: contents are cleared, capacity survives.
  /// Beyond `max_free` buffers the extra one is simply freed, bounding
  /// pool memory at max_free * largest-buffer bytes.
  void release(Buffer&& b) {
    ++released_;
    if (free_.size() >= max_free_ || b.capacity() == 0) return;
    b.clear();
    free_.push_back(std::move(b));
  }

  /// Drop every cached buffer (the capacities go back to the allocator).
  void clear() noexcept { free_.clear(); }

  void set_max_free(std::size_t n) noexcept { max_free_ = n; }

  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_.size();
  }
  [[nodiscard]] std::uint64_t acquired() const noexcept { return acquired_; }
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }

 private:
  std::vector<Buffer> free_;
  std::size_t max_free_ = 256;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace lmas::core

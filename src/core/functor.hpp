#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/packet.hpp"
#include "core/pipeline.hpp"

namespace lmas::core {

/// A functor (Section 3.1): a passive streaming operator applied to
/// packets of records as a side effect of data access. Its per-record
/// cost and internal state are bounded and *declared*, which is what
/// makes it safe to stack on shared ASUs and lets the load manager
/// predict the effect of any placement.
class Functor {
 public:
  virtual ~Functor() = default;

  /// Declared execution cost, charged to the hosting node per packet.
  [[nodiscard]] virtual FunctorCost cost() const = 0;

  /// Upper bound on internal state. Instances whose state exceeds the
  /// hosting ASU's memory bound are rejected at program build time.
  [[nodiscard]] virtual std::size_t state_bytes() const { return 0; }

  /// Consume one packet, appending zero or more output packets.
  virtual void process(Packet&& in, std::vector<Packet>& out) = 0;

  /// Input exhausted: flush any buffered state.
  virtual void finish(std::vector<Packet>& out) { (void)out; }
};

using FunctorFactory =
    std::function<std::unique_ptr<Functor>(unsigned instance)>;

// ---------------------------------------------------------------------
// A small library of prevalidated functors — the "common, verified
// computation kernels" the model permits on ASUs.
// ---------------------------------------------------------------------

/// Keep records satisfying a predicate (searching/filtering directly at
/// the ASUs is the canonical active-storage win: it cuts interconnect
/// traffic by the filter's selectivity).
class FilterFunctor final : public Functor {
 public:
  using Pred = std::function<bool(const em::KeyRecord&)>;
  FilterFunctor(Pred pred, FunctorCost cost) : pred_(std::move(pred)),
                                               cost_(cost) {}

  [[nodiscard]] FunctorCost cost() const override { return cost_; }

  void process(Packet&& in, std::vector<Packet>& out) override {
    Packet kept;
    kept.subset = in.subset;
    kept.seq = in.seq;
    for (const auto& r : in.records) {
      if (pred_(r)) kept.records.push_back(r);
    }
    if (!kept.records.empty()) out.push_back(std::move(kept));
  }

 private:
  Pred pred_;
  FunctorCost cost_;
};

/// Transform each record (bounded per-record function).
class MapFunctor final : public Functor {
 public:
  using Fn = std::function<em::KeyRecord(const em::KeyRecord&)>;
  MapFunctor(Fn fn, FunctorCost cost) : fn_(std::move(fn)), cost_(cost) {}

  [[nodiscard]] FunctorCost cost() const override { return cost_; }

  void process(Packet&& in, std::vector<Packet>& out) override {
    for (auto& r : in.records) r = fn_(r);
    out.push_back(std::move(in));
  }

 private:
  Fn fn_;
  FunctorCost cost_;
};

/// Per-instance partial histogram over key buckets; emits one summary
/// packet (bucket counts as records: key = bucket, id = count) when the
/// input closes. Commutative and associative, so the system may
/// replicate it freely and combine the partials downstream — the
/// aggregation pattern of the active-storage literature.
class HistogramFunctor final : public Functor {
 public:
  HistogramFunctor(unsigned buckets, FunctorCost cost)
      : counts_(buckets, 0), cost_(cost) {}

  [[nodiscard]] FunctorCost cost() const override { return cost_; }
  [[nodiscard]] std::size_t state_bytes() const override {
    return counts_.size() * sizeof(std::uint64_t);
  }

  void process(Packet&& in, std::vector<Packet>& out) override {
    (void)out;  // fully absorbing until finish()
    const auto buckets = std::uint64_t(counts_.size());
    for (const auto& r : in.records) {
      const auto b = std::size_t((std::uint64_t(r.key) * buckets) >> 32);
      ++counts_[b];
    }
  }

  void finish(std::vector<Packet>& out) override {
    Packet summary;
    summary.subset = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      // Records double as (bucket, count) pairs in the summary packet.
      summary.records.push_back(
          {std::uint32_t(b), std::uint32_t(counts_[b])});
    }
    out.push_back(std::move(summary));
  }

 private:
  std::vector<std::uint64_t> counts_;
  FunctorCost cost_;
};

/// Sum partial histograms into a final one (the host-side combiner).
class CombineHistogramsFunctor final : public Functor {
 public:
  CombineHistogramsFunctor(unsigned buckets, FunctorCost cost)
      : counts_(buckets, 0), cost_(cost) {}

  [[nodiscard]] FunctorCost cost() const override { return cost_; }
  [[nodiscard]] std::size_t state_bytes() const override {
    return counts_.size() * sizeof(std::uint64_t);
  }

  void process(Packet&& in, std::vector<Packet>& out) override {
    (void)out;
    for (const auto& r : in.records) {
      counts_.at(r.key) += r.id;
    }
  }

  void finish(std::vector<Packet>& out) override {
    Packet total;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      total.records.push_back({std::uint32_t(b), std::uint32_t(counts_[b])});
    }
    out.push_back(std::move(total));
  }

 private:
  std::vector<std::uint64_t> counts_;
  FunctorCost cost_;
};

/// Pre-sort batches of records into sorted packets (Figure 4): packets
/// preserve the local order as records move through later phases.
class PacketSortFunctor final : public Functor {
 public:
  explicit PacketSortFunctor(FunctorCost cost) : cost_(cost) {}

  [[nodiscard]] FunctorCost cost() const override { return cost_; }

  void process(Packet&& in, std::vector<Packet>& out) override {
    std::sort(in.records.begin(), in.records.end());
    in.sorted = true;
    out.push_back(std::move(in));
  }

 private:
  FunctorCost cost_;
};

}  // namespace lmas::core

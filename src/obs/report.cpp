#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>

namespace lmas::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  root_ = Json::object();
  root_["schema"] = "lmas-bench-v1";
  root_["bench"] = name_;
}

void BenchReport::add_utilization(const std::string& node, double mean,
                                  double bin_seconds,
                                  const std::vector<double>& series) {
  Json entry = Json::object();
  entry["mean"] = mean;
  entry["bin_seconds"] = bin_seconds;
  entry["series"] = Json::array_of(series);
  root_["utilization"][node] = std::move(entry);
}

void BenchReport::add_metrics(const MetricsRegistry& registry) {
  root_["metrics"] = registry.snapshot();
}

std::string BenchReport::path(const std::string& dir) const {
  std::string d = dir;
  if (d.empty()) {
    if (const char* env = std::getenv("LMAS_BENCH_DIR")) d = env;
  }
  const std::string file = "BENCH_" + name_ + ".json";
  if (d.empty()) return file;
  if (d.back() != '/') d += '/';
  return d + file;
}

bool BenchReport::write(const std::string& dir) const {
  std::ofstream f(path(dir), std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << root_.dump(2);
  f << '\n';
  return bool(f);
}

}  // namespace lmas::obs

#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace lmas::obs {

std::string digest_to_string(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::optional<std::uint64_t> digest_from_string(std::string_view s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s.substr(2)) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= std::uint64_t(c - '0');
    else if (c >= 'a' && c <= 'f') v |= std::uint64_t(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= std::uint64_t(c - 'A' + 10);
    else return std::nullopt;
  }
  return v;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  root_ = Json::object();
  root_["schema"] = "lmas-bench-v1";
  root_["bench"] = name_;
}

void BenchReport::add_utilization(const std::string& node, double mean,
                                  double bin_seconds,
                                  const std::vector<double>& series) {
  Json entry = Json::object();
  entry["mean"] = mean;
  entry["bin_seconds"] = bin_seconds;
  entry["series"] = Json::array_of(series);
  root_["utilization"][node] = std::move(entry);
}

void BenchReport::add_metrics(const MetricsRegistry& registry) {
  root_["metrics"] = registry.snapshot();
}

void BenchReport::add_digest(std::uint64_t digest) {
  root_["digest"] = digest_to_string(digest);
}

void BenchReport::set_wall_clock(double seconds) {
  root_["wall_clock_s"] = seconds;
}

void BenchReport::set_events_per_sec(double eps) {
  root_["events_per_sec"] = eps;
}

std::optional<std::uint64_t> BenchReport::digest() const {
  const Json* d = root_.find("digest");
  if (!d || !d->is_string()) return std::nullopt;
  return digest_from_string(d->as_string());
}

std::string BenchReport::path(const std::string& dir) const {
  std::string d = dir;
  if (d.empty()) {
    if (const char* env = std::getenv("LMAS_BENCH_DIR")) d = env;
  }
  const std::string file = "BENCH_" + name_ + ".json";
  if (d.empty()) return file;
  if (d.back() != '/') d += '/';
  return d + file;
}

bool BenchReport::write(const std::string& dir) const {
  std::ofstream f(path(dir), std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << root_.dump(2);
  f << '\n';
  return bool(f);
}

}  // namespace lmas::obs

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

// Compiled-in by default; configure with -DLMAS_TRACE=OFF to stub every
// recording call out entirely (the hot loop then pays literally nothing).
#ifndef LMAS_TRACE_ENABLED
#define LMAS_TRACE_ENABLED 1
#endif

namespace lmas::obs {

inline constexpr bool kTraceCompiled = LMAS_TRACE_ENABLED != 0;

/// One Chrome trace-event. Timestamps are in microseconds (the trace-event
/// format's unit); sim time is seconds, so recorders multiply by 1e6.
struct TraceEvent {
  std::string name;
  char ph = 'i';        // 'B' begin, 'E' end, 'X' complete, 'i' instant,
                        // 'C' counter, 's'/'t'/'f' flow start/step/finish
  double ts = 0;        // microseconds
  double dur = 0;       // microseconds, 'X' only
  std::uint32_t tid = 0;
  double value = 0;     // 'C' only
  std::uint64_t id = 0;      // flow id ('s'/'t'/'f' only)
  std::uint64_t parent = 0;  // upstream flow id ('s' only; 0 = root)
};

/// Records spans / instants / counter samples in *virtual* time and
/// exports them as Chrome trace-event JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). Tracks (exported as
/// "threads") are registered once per resource / task / subsystem; the
/// emulated machine then renders as one swimlane per server, which is the
/// picture the paper's Figure 10 squints at through utilization bins.
///
/// Recording is a no-op unless both compiled in (LMAS_TRACE) and enabled
/// at runtime (enable() or the LMAS_TRACE=1 environment variable, which
/// sim::Engine checks at construction).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept {
    return kTraceCompiled && enabled_;
  }

  /// Register a named track (exported as a thread). Cheap; call once and
  /// cache the id. Safe to call when disabled — ids stay valid if tracing
  /// is enabled later.
  std::uint32_t track(std::string name) {
    if constexpr (!kTraceCompiled) return 0;
    tracks_.push_back(std::move(name));
    return std::uint32_t(tracks_.size() - 1);
  }

  void begin(std::uint32_t tid, std::string_view name, double t_seconds) {
    if (!enabled()) return;
    record({std::string(name), 'B', t_seconds * 1e6, 0, tid, 0});
  }
  void end(std::uint32_t tid, std::string_view name, double t_seconds) {
    if (!enabled()) return;
    record({std::string(name), 'E', t_seconds * 1e6, 0, tid, 0});
  }
  /// A closed span [t0, t1] in one event (resource occupancy, disk I/O).
  void complete(std::uint32_t tid, std::string_view name, double t0_seconds,
                double t1_seconds) {
    if (!enabled()) return;
    record({std::string(name), 'X', t0_seconds * 1e6,
            (t1_seconds - t0_seconds) * 1e6, tid, 0});
  }
  void instant(std::uint32_t tid, std::string_view name, double t_seconds) {
    if (!enabled()) return;
    record({std::string(name), 'i', t_seconds * 1e6, 0, tid, 0});
  }
  /// Sampled value series ('C' events graph as counters in the viewer).
  void counter(std::uint32_t tid, std::string_view name, double t_seconds,
               double value) {
    if (!enabled()) return;
    record({std::string(name), 'C', t_seconds * 1e6, 0, tid, value});
  }

  // ---- causal flows --------------------------------------------------
  // A flow is one connected lane across tracks in the viewer: start it
  // where a packet is emitted, step it at every hop (delivery, retry,
  // migration re-pin), finish it where the packet is consumed. `id` must
  // be unique per flow within the trace (sim::Engine::next_trace_id);
  // `parent` on the start event links a derived flow (e.g. a sorted-run
  // packet) back to the flow that produced it.
  void flow_begin(std::uint32_t tid, std::string_view name, double t_seconds,
                  std::uint64_t id, std::uint64_t parent = 0) {
    if (!enabled()) return;
    record({std::string(name), 's', t_seconds * 1e6, 0, tid, 0, id, parent});
  }
  void flow_step(std::uint32_t tid, std::string_view name, double t_seconds,
                 std::uint64_t id) {
    if (!enabled()) return;
    record({std::string(name), 't', t_seconds * 1e6, 0, tid, 0, id});
  }
  void flow_end(std::uint32_t tid, std::string_view name, double t_seconds,
                std::uint64_t id) {
    if (!enabled()) return;
    record({std::string(name), 'f', t_seconds * 1e6, 0, tid, 0, id});
  }

  /// Cap on retained events: once reached, further events are counted in
  /// dropped_events() and discarded (the retained prefix stays valid
  /// JSON). The default bounds a long sweep's memory at roughly a few
  /// hundred MB of event records; benches that want full traces of big
  /// runs can raise it before the run starts.
  void set_capacity(std::size_t cap) noexcept {
    capacity_ = cap == 0 ? 1 : cap;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_;
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const noexcept {
    return tracks_;
  }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

  /// The trace-event array form: thread_name metadata for each track,
  /// then every recorded event as {name, ph, ts, pid, tid, ...}.
  [[nodiscard]] Json to_json() const;

  /// Write to_json() to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  void record(TraceEvent ev) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(ev));
  }

  bool enabled_ = false;
  std::size_t capacity_ = std::size_t(1) << 20;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> tracks_;
  std::vector<TraceEvent> events_;
};

}  // namespace lmas::obs

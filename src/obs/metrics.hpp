#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"
#include "obs/latency.hpp"

namespace lmas::obs {

/// Monotone event count (requests served, packets routed, bytes moved).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written scalar (backlog seconds, busy seconds, pass duration).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: N upper bounds define N+1 buckets, the last one
/// catching everything above the largest bound (Prometheus-style
/// cumulative export is derivable; we store per-bucket counts).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {}

  void observe(double x) noexcept {
    ++count_;
    sum_ += x;
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    ++buckets_[b];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / double(count_) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bucket_counts()[i] counts observations in (bounds[i-1], bounds[i]];
  /// the final entry counts observations above the last bound.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Named instruments with stable addresses: callers resolve an instrument
/// once (typically at construction) and bump it on the hot path without
/// further lookups. One registry per sim::Engine, so every instrument in a
/// run shares the engine's virtual clock and a single snapshot captures
/// the whole emulated machine.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References remain valid for the registry's lifetime.
  /// Find-or-create is per kind (resolving the same counter twice is the
  /// intended hot-path idiom), but a name may exist in only ONE kind:
  /// re-registering it as a different kind would emit the same JSON key
  /// under two snapshot sections, so creation throws std::invalid_argument
  /// instead of silently producing an ambiguous artifact.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Find-or-create; `upper_bounds` is used only on first creation and
  /// must be sorted ascending.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);
  /// Find-or-create a log-bucketed streaming histogram (shared fixed
  /// layout; see LatencyHistogram). Exported in the snapshot's
  /// "histograms" section alongside the fixed-bounds kind.
  LatencyHistogram& latency(std::string_view name);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* find_latency(
      std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() +
           latencies_.size();
  }

  /// Pull-model instruments: a collector runs just before every
  /// snapshot() and publishes state the owner keeps in plain members.
  /// This keeps hot paths free of registry traffic — a Resource, for
  /// example, only bumps its own fields per request and lets its
  /// collector materialize gauges when somebody actually looks.
  /// Returns an id for remove_collector; owners whose lifetime is
  /// shorter than the registry's MUST deregister in their destructor.
  std::size_t add_collector(std::function<void()> fn);
  void remove_collector(std::size_t id);

  /// Point-in-time JSON snapshot, keys sorted for determinism:
  /// {"counters": {name: n}, "gauges": {name: v},
  ///  "histograms": {name: {count, sum, bounds, buckets}}}.
  /// Latency histograms appear in the same "histograms" section (merged
  /// name-sorted with the fixed-bounds kind) with their own shape:
  /// {count, sum, min, max, p50, p90, p99, buckets: [[idx, n], ...]}.
  [[nodiscard]] Json snapshot() const;

  /// Quantile summaries of every latency histogram, name-sorted:
  /// {name: {count, mean, p50, p90, p99, max}} — the `histograms` block
  /// bench artifacts embed. Does not run collectors (latency histograms
  /// are push-model).
  [[nodiscard]] Json latency_summaries() const;

 private:
  /// Throws if `name` is already registered under a different kind
  /// (`self` is the map the caller is about to insert into).
  void ensure_name_free(std::string_view name, const void* self) const;

  template <typename T>
  using Map = std::unordered_map<std::string, std::unique_ptr<T>>;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
  Map<LatencyHistogram> latencies_;
  // Collectors may create instruments, so snapshot() (const) runs them
  // against mutable state; ids are never reused.
  mutable std::vector<std::pair<std::size_t, std::function<void()>>>
      collectors_;
  std::size_t next_collector_id_ = 0;
};

}  // namespace lmas::obs

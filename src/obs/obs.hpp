#pragma once

/// Umbrella header for the observability layer: metrics instruments +
/// registry, sim-time tracing with Chrome trace-event export, JSON, and
/// the bench artifact writer.
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace lmas::obs {

/// Bounded ring of samples. Once full, the OLDEST samples are evicted —
/// a long run keeps its most recent window, and `dropped()` says how much
/// history scrolled off. Eviction is purely a function of push count, so
/// serial and parallel sweeps retain identical windows.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(double v) {
    if (data_.size() < capacity_) {
      data_.push_back(v);
    } else {
      data_[head_] = v;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Samples in chronological order (oldest retained first).
  [[nodiscard]] std::vector<double> values() const {
    std::vector<double> out;
    out.reserve(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) {
      out.push_back(data_[(head_ + i) % data_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest sample once full
  std::uint64_t dropped_ = 0;
  std::vector<double> data_;
};

/// Sim-time-driven gauge sampler. NOT a simulation process: scheduling a
/// sampling coroutine would add events and sequence numbers to the run
/// and move the execution digest, breaking the pinned goldens. Instead
/// the engine's run loop consults `due()` before committing each event
/// and, when a period boundary has been crossed, parks the virtual clock
/// exactly on the boundary and calls `sample()` — probes read owner state
/// through plain function calls, no events, no RNG, no resource use. The
/// engine pays one pointer test per event when no sampler is installed.
///
/// Probes are registered once (typically right after construction) and
/// read into per-probe bounded rings; `to_json()` emits the whole block
/// in registration order, which is deterministic per configuration.
class Sampler {
 public:
  explicit Sampler(double period_seconds, std::size_t capacity = 4096)
      : period_(period_seconds > 0 ? period_seconds : 1.0),
        capacity_(capacity),
        times_(capacity),
        next_(period_) {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void add_probe(std::string name, std::function<double()> probe) {
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    series_.emplace_back(capacity_);
  }

  /// True when sim time `t` has reached the next sampling boundary.
  [[nodiscard]] bool due(double t) const noexcept { return t >= next_; }
  [[nodiscard]] double next_time() const noexcept { return next_; }
  [[nodiscard]] double period() const noexcept { return period_; }

  /// Record one sample at boundary time `t` (the engine passes
  /// next_time(), with the virtual clock parked there so probes that
  /// read clock-relative state, e.g. resource backlog, see the boundary
  /// instant). Advances the boundary by one period.
  void sample(double t) {
    times_.push(t);
    ++samples_;
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      series_[i].push(probes_[i]());
    }
    next_ += period_;
  }

  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t probe_count() const noexcept {
    return probes_.size();
  }

  /// {"period", "capacity", "samples", "dropped", "times": [...],
  ///  "series": {probe: [...]}} — series in probe registration order.
  [[nodiscard]] Json to_json() const {
    Json j = Json::object();
    j["period"] = Json(period_);
    j["capacity"] = Json(capacity_);
    j["samples"] = Json(samples_);
    j["dropped"] = Json(times_.dropped());
    j["times"] = Json::array_of(times_.values());
    Json series = Json::object();
    for (std::size_t i = 0; i < names_.size(); ++i) {
      series[names_[i]] = Json::array_of(series_[i].values());
    }
    j["series"] = std::move(series);
    return j;
  }

 private:
  double period_;
  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> probes_;
  std::vector<TimeSeries> series_;
  TimeSeries times_;
  std::uint64_t samples_ = 0;
  double next_;
};

}  // namespace lmas::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmas::obs {

namespace {

template <typename T, typename... Args>
T& find_or_create(
    std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name, Args&&... args) {
  if (auto it = map.find(std::string(name)); it != map.end()) {
    return *it->second;
  }
  auto [it, inserted] = map.emplace(
      std::string(name), std::make_unique<T>(std::forward<Args>(args)...));
  return *it->second;
}

template <typename T>
const T* find_in(
    const std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name) {
  auto it = map.find(std::string(name));
  return it == map.end() ? nullptr : it->second.get();
}

template <typename T>
std::vector<const std::pair<const std::string, std::unique_ptr<T>>*>
sorted_entries(
    const std::unordered_map<std::string, std::unique_ptr<T>>& map) {
  std::vector<const std::pair<const std::string, std::unique_ptr<T>>*> out;
  out.reserve(map.size());
  for (const auto& e : map) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return out;
}

}  // namespace

void MetricsRegistry::ensure_name_free(std::string_view name,
                                       const void* self) const {
  const std::string key(name);
  const char* kind = nullptr;
  if (static_cast<const void*>(&counters_) != self &&
      counters_.contains(key)) {
    kind = "counter";
  } else if (static_cast<const void*>(&gauges_) != self &&
             gauges_.contains(key)) {
    kind = "gauge";
  } else if (static_cast<const void*>(&histograms_) != self &&
             histograms_.contains(key)) {
    kind = "histogram";
  } else if (static_cast<const void*>(&latencies_) != self &&
             latencies_.contains(key)) {
    kind = "latency histogram";
  }
  if (kind != nullptr) {
    throw std::invalid_argument(
        "MetricsRegistry: metric name '" + key +
        "' is already registered as a " + kind +
        " — one name maps to one instrument kind (duplicate names would "
        "emit ambiguous snapshot keys)");
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const Counter* c = find_in(counters_, name)) {
    return const_cast<Counter&>(*c);
  }
  ensure_name_free(name, &counters_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const Gauge* g = find_in(gauges_, name)) {
    return const_cast<Gauge&>(*g);
  }
  ensure_name_free(name, &gauges_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  if (const Histogram* h = find_in(histograms_, name)) {
    return const_cast<Histogram&>(*h);
  }
  ensure_name_free(name, &histograms_);
  return find_or_create(histograms_, name, std::move(upper_bounds));
}

LatencyHistogram& MetricsRegistry::latency(std::string_view name) {
  if (const LatencyHistogram* h = find_in(latencies_, name)) {
    return const_cast<LatencyHistogram&>(*h);
  }
  ensure_name_free(name, &latencies_);
  return find_or_create(latencies_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_in(histograms_, name);
}

const LatencyHistogram* MetricsRegistry::find_latency(
    std::string_view name) const {
  return find_in(latencies_, name);
}

std::size_t MetricsRegistry::add_collector(std::function<void()> fn) {
  const std::size_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(std::size_t id) {
  std::erase_if(collectors_,
                [id](const auto& e) { return e.first == id; });
}

Json MetricsRegistry::snapshot() const {
  // Collectors publish owner-side state (and may create instruments), so
  // they must run before the maps are walked.
  for (const auto& [id, fn] : collectors_) fn();
  Json out = Json::object();
  Json& counters = out["counters"] = Json::object();
  for (const auto* e : sorted_entries(counters_)) {
    counters[e->first] = Json(e->second->value());
  }
  Json& gauges = out["gauges"] = Json::object();
  for (const auto* e : sorted_entries(gauges_)) {
    gauges[e->first] = Json(e->second->value());
  }
  // Both histogram kinds share one section, name-sorted across kinds
  // (names are unique across kinds, so the merge cannot collide).
  Json& hists = out["histograms"] = Json::object();
  std::vector<std::pair<const std::string*, Json>> merged;
  merged.reserve(histograms_.size() + latencies_.size());
  for (const auto* e : sorted_entries(histograms_)) {
    const Histogram& h = *e->second;
    Json j = Json::object();
    j["count"] = Json(h.count());
    j["sum"] = Json(h.sum());
    j["bounds"] = Json::array_of(h.bounds());
    j["buckets"] = Json::array_of(h.bucket_counts());
    merged.emplace_back(&e->first, std::move(j));
  }
  for (const auto* e : sorted_entries(latencies_)) {
    merged.emplace_back(&e->first, e->second->to_json());
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (auto& [name, j] : merged) hists[*name] = std::move(j);
  return out;
}

Json MetricsRegistry::latency_summaries() const {
  Json out = Json::object();
  for (const auto* e : sorted_entries(latencies_)) {
    out[e->first] = e->second->summary_json();
  }
  return out;
}

}  // namespace lmas::obs

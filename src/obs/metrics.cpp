#include "obs/metrics.hpp"

#include <algorithm>

namespace lmas::obs {

namespace {

template <typename T, typename... Args>
T& find_or_create(
    std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name, Args&&... args) {
  if (auto it = map.find(std::string(name)); it != map.end()) {
    return *it->second;
  }
  auto [it, inserted] = map.emplace(
      std::string(name), std::make_unique<T>(std::forward<Args>(args)...));
  return *it->second;
}

template <typename T>
const T* find_in(
    const std::unordered_map<std::string, std::unique_ptr<T>>& map,
    std::string_view name) {
  auto it = map.find(std::string(name));
  return it == map.end() ? nullptr : it->second.get();
}

template <typename T>
std::vector<const std::pair<const std::string, std::unique_ptr<T>>*>
sorted_entries(
    const std::unordered_map<std::string, std::unique_ptr<T>>& map) {
  std::vector<const std::pair<const std::string, std::unique_ptr<T>>*> out;
  out.reserve(map.size());
  for (const auto& e : map) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  return find_or_create(histograms_, name, std::move(upper_bounds));
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_in(histograms_, name);
}

std::size_t MetricsRegistry::add_collector(std::function<void()> fn) {
  const std::size_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(std::size_t id) {
  std::erase_if(collectors_,
                [id](const auto& e) { return e.first == id; });
}

Json MetricsRegistry::snapshot() const {
  // Collectors publish owner-side state (and may create instruments), so
  // they must run before the maps are walked.
  for (const auto& [id, fn] : collectors_) fn();
  Json out = Json::object();
  Json& counters = out["counters"] = Json::object();
  for (const auto* e : sorted_entries(counters_)) {
    counters[e->first] = Json(e->second->value());
  }
  Json& gauges = out["gauges"] = Json::object();
  for (const auto* e : sorted_entries(gauges_)) {
    gauges[e->first] = Json(e->second->value());
  }
  Json& hists = out["histograms"] = Json::object();
  for (const auto* e : sorted_entries(histograms_)) {
    const Histogram& h = *e->second;
    Json j = Json::object();
    j["count"] = Json(h.count());
    j["sum"] = Json(h.sum());
    j["bounds"] = Json::array_of(h.bounds());
    j["buckets"] = Json::array_of(h.bucket_counts());
    hists[e->first] = std::move(j);
  }
  return out;
}

}  // namespace lmas::obs

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lmas::obs {

/// Minimal self-contained JSON document: enough to serialize metric
/// snapshots, utilization series and trace events, and to parse them back
/// in tests (round-trip is part of the observability contract — a bench
/// artifact nobody can re-read is not an artifact). No external deps.
///
/// Objects preserve insertion order so emitted documents are deterministic
/// and diffs between bench runs stay readable.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(double v) noexcept : type_(Type::Number), num_(v) {}
  Json(int v) noexcept : type_(Type::Number), num_(v) {}
  Json(unsigned v) noexcept : type_(Type::Number), num_(v) {}
  Json(long v) noexcept : type_(Type::Number), num_(double(v)) {}
  Json(unsigned long v) noexcept : type_(Type::Number), num_(double(v)) {}
  Json(long long v) noexcept : type_(Type::Number), num_(double(v)) {}
  Json(unsigned long long v) noexcept : type_(Type::Number), num_(double(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  template <typename T>
  static Json array_of(const std::vector<T>& v) {
    Json j = array();
    j.arr_.reserve(v.size());
    for (const auto& x : v) j.arr_.emplace_back(x);
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return num_; }
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return std::int64_t(num_);
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

  // ----- array interface -----
  void push_back(Json v) {
    type_ = Type::Array;
    arr_.push_back(std::move(v));
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return type_ == Type::Object ? obj_.size() : arr_.size();
  }
  [[nodiscard]] const Json& at(std::size_t i) const { return arr_.at(i); }
  [[nodiscard]] const std::vector<Json>& items() const noexcept {
    return arr_;
  }

  // ----- object interface -----
  /// Insert-or-get a member; converts a null value to an object in place.
  Json& operator[](std::string_view key) {
    type_ = Type::Object;
    for (auto& [k, v] : obj_) {
      if (k == key) return v;
    }
    obj_.emplace_back(std::string(key), Json());
    return obj_.back().second;
  }
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] const Json* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return obj_;
  }

  /// Serialize. indent < 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace lmas::obs

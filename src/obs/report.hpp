#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace lmas::obs {

/// Execution digests are 64-bit words, but JSON numbers are doubles; they
/// travel as fixed-width "0x%016llx" strings so round-trips are lossless.
[[nodiscard]] std::string digest_to_string(std::uint64_t digest);
/// Inverse of digest_to_string; nullopt on malformed input.
[[nodiscard]] std::optional<std::uint64_t> digest_from_string(
    std::string_view s);

/// Builder for the machine-readable artifact every bench writes alongside
/// its text output: `BENCH_<name>.json`. Schema (lmas-bench-v1):
///
///   {
///     "schema": "lmas-bench-v1",
///     "bench": "<name>",
///     "params": {...},          // bench-specific configuration
///     "results": [...],         // bench-specific series / rows
///     "utilization": {          // optional, per instrumented run
///        "<node>": {"mean": f, "bin_seconds": f, "series": [f,...]}},
///     "metrics": {...}          // optional MetricsRegistry::snapshot()
///   }
///
/// A perf trajectory is only as good as its artifacts: text tables drift,
/// JSON diffs. Everything here is deterministic (sorted metric keys, no
/// wall-clock stamps) so two identical runs produce identical bytes.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The whole document; benches fill "params" / "results" directly.
  [[nodiscard]] Json& root() noexcept { return root_; }
  Json& params() { return root_["params"]; }
  Json& results() { return root_["results"]; }

  /// Record one node's utilization series under "utilization".
  void add_utilization(const std::string& node, double mean,
                       double bin_seconds, const std::vector<double>& series);

  /// Embed a registry snapshot under "metrics".
  void add_metrics(const MetricsRegistry& registry);

  /// Record the run's engine execution digest under "digest" (hex
  /// string; see digest_to_string). Golden-run tooling compares this
  /// field across artifact generations.
  void add_digest(std::uint64_t digest);

  /// Parse the "digest" field back; nullopt if absent or malformed.
  [[nodiscard]] std::optional<std::uint64_t> digest() const;

  /// Record the bench's end-to-end wall time under "wall_clock_s". This
  /// and events_per_sec are the only machine-dependent fields a bench
  /// should write: they live at the document root so two runs of the
  /// same build still produce identical bytes everywhere else.
  void set_wall_clock(double seconds);

  /// Record engine throughput (simulated events committed per second of
  /// compute wall time) under "events_per_sec".
  void set_events_per_sec(double eps);

  /// Output path: `<dir>/BENCH_<name>.json`. `dir` defaults to the
  /// LMAS_BENCH_DIR environment variable, falling back to the working
  /// directory.
  [[nodiscard]] std::string path(const std::string& dir = "") const;

  /// Serialize and write the artifact; returns false on I/O failure.
  bool write(const std::string& dir = "") const;

 private:
  std::string name_;
  Json root_;
};

}  // namespace lmas::obs

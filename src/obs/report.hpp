#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace lmas::obs {

/// Builder for the machine-readable artifact every bench writes alongside
/// its text output: `BENCH_<name>.json`. Schema (lmas-bench-v1):
///
///   {
///     "schema": "lmas-bench-v1",
///     "bench": "<name>",
///     "params": {...},          // bench-specific configuration
///     "results": [...],         // bench-specific series / rows
///     "utilization": {          // optional, per instrumented run
///        "<node>": {"mean": f, "bin_seconds": f, "series": [f,...]}},
///     "metrics": {...}          // optional MetricsRegistry::snapshot()
///   }
///
/// A perf trajectory is only as good as its artifacts: text tables drift,
/// JSON diffs. Everything here is deterministic (sorted metric keys, no
/// wall-clock stamps) so two identical runs produce identical bytes.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The whole document; benches fill "params" / "results" directly.
  [[nodiscard]] Json& root() noexcept { return root_; }
  Json& params() { return root_["params"]; }
  Json& results() { return root_["results"]; }

  /// Record one node's utilization series under "utilization".
  void add_utilization(const std::string& node, double mean,
                       double bin_seconds, const std::vector<double>& series);

  /// Embed a registry snapshot under "metrics".
  void add_metrics(const MetricsRegistry& registry);

  /// Output path: `<dir>/BENCH_<name>.json`. `dir` defaults to the
  /// LMAS_BENCH_DIR environment variable, falling back to the working
  /// directory.
  [[nodiscard]] std::string path(const std::string& dir = "") const;

  /// Serialize and write the artifact; returns false on I/O failure.
  bool write(const std::string& dir = "") const;

 private:
  std::string name_;
  Json root_;
};

}  // namespace lmas::obs

#include "obs/trace.hpp"

#include <fstream>

namespace lmas::obs {

Json Tracer::to_json() const {
  Json out = Json::array();
  // Thread-name metadata first, so viewers label the swimlanes.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    Json m = Json::object();
    m["name"] = "thread_name";
    m["ph"] = "M";
    m["ts"] = 0;
    m["pid"] = 0;
    m["tid"] = std::uint64_t(t);
    Json args = Json::object();
    args["name"] = tracks_[t];
    m["args"] = std::move(args);
    out.push_back(std::move(m));
  }
  for (const TraceEvent& ev : events_) {
    Json e = Json::object();
    e["name"] = ev.name;
    e["ph"] = std::string(1, ev.ph);
    e["ts"] = ev.ts;
    e["pid"] = 0;
    e["tid"] = std::uint64_t(ev.tid);
    if (ev.ph == 'X') e["dur"] = ev.dur;
    if (ev.ph == 'i') e["s"] = "t";  // instant scope: thread
    if (ev.ph == 'C') {
      Json args = Json::object();
      args["value"] = ev.value;
      e["args"] = std::move(args);
    }
    if (ev.ph == 's' || ev.ph == 't' || ev.ph == 'f') {
      e["cat"] = "flow";  // flow events require a category for binding
      e["id"] = ev.id;
      // Bind the finish to the enclosing slice so the arrow lands where
      // the consuming span is, not at the next slice boundary.
      if (ev.ph == 'f') e["bp"] = "e";
      if (ev.ph == 's' && ev.parent != 0) {
        Json args = Json::object();
        args["parent"] = ev.parent;
        e["args"] = std::move(args);
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_json().dump();
  f << '\n';
  return bool(f);
}

}  // namespace lmas::obs

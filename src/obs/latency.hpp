#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace lmas::obs {

/// Log-bucketed streaming histogram for latency-like quantities
/// (HDR-histogram style). The bucket layout is FIXED at compile time —
/// every instance shares it — which is what makes merges and quantile
/// queries deterministic and order-independent: merging shard histograms
/// is element-wise addition of counts, so any merge order (and any
/// serial-vs-parallel shard assignment) produces bit-identical state.
///
/// Layout: each power-of-two octave [2^o, 2^(o+1)) is split into
/// K = 2^kSubBits equal-width sub-buckets, for octaves o in
/// [kMinOctave, kMaxOctave]. Values below 2^kMinOctave (including zero)
/// land in a dedicated underflow bucket; values at or above
/// 2^(kMaxOctave+1) land in an overflow bucket. With K = 32 the relative
/// width of every finite bucket is 1/K ≈ 3.1%, so any quantile estimate
/// taken at a bucket midpoint is within 1/(2K) ≈ 1.6% of the true value
/// — the documented error bound the property suite checks against.
///
/// In sim-seconds terms the finite range is [2^-30, 2^11) ≈ [0.93 ns,
/// 2048 s): below any modeled device time, above any modeled run length.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // K = 32
  static constexpr int kMinOctave = -30;
  static constexpr int kMaxOctave = 10;
  static constexpr int kOctaves = kMaxOctave - kMinOctave + 1;
  /// [0] underflow | [1 .. kOctaves*K] finite | [last] overflow.
  static constexpr std::size_t kBucketCount =
      1 + std::size_t(kOctaves) * kSubBuckets + 1;
  /// Documented per-bucket relative half-width of a midpoint estimate.
  static constexpr double kRelativeError = 1.0 / (2 * kSubBuckets);

  LatencyHistogram() : buckets_(kBucketCount, 0) {}

  void observe(double v) noexcept {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    ++buckets_[bucket_of(v)];
  }

  /// Element-wise count addition: commutative and associative by
  /// construction (the property suite pins this across shard orders).
  void merge(const LatencyHistogram& other) noexcept;

  /// Nearest-rank quantile estimate, q in [0, 1]. Finite buckets answer
  /// with their midpoint clamped to the observed [min, max] (so a
  /// single-valued histogram is exact); the underflow bucket answers 0,
  /// and the top rank (q = 1, or any q whose rank reaches the count)
  /// answers the exactly-tracked max. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / double(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return buckets_;
  }

  /// Lower edge of finite bucket `idx` (idx in [1, kOctaves*K]).
  [[nodiscard]] static double bucket_lower(std::size_t idx) noexcept;
  [[nodiscard]] static double bucket_upper(std::size_t idx) noexcept;

  [[nodiscard]] static std::size_t bucket_of(double v) noexcept {
    // NaN and negatives compare false here and fall into underflow,
    // keeping observe() total without a branch per pathological input.
    if (!(v >= kMinValue())) return 0;
    if (v >= kMaxValue()) return kBucketCount - 1;
    int exp = 0;
    const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    const int octave = exp - 1;            // v in [2^octave, 2^(octave+1))
    const int sub = int((m - 0.5) * (2 * kSubBuckets));
    return 1 +
           std::size_t(octave - kMinOctave) * kSubBuckets +
           std::size_t(sub < kSubBuckets - 1 ? sub : kSubBuckets - 1);
  }

  /// {"count", "sum", "min", "max", "p50", "p90", "p99", "buckets":
  ///  [[index, count], ...]} — buckets sparse and index-sorted, so two
  /// identical histograms always serialize identically.
  [[nodiscard]] Json to_json() const;

  /// The quantile summary alone ({count, mean, p50, p90, p99, max}) —
  /// what bench artifacts embed per metric.
  [[nodiscard]] Json summary_json() const;

 private:
  [[nodiscard]] static double kMinValue() noexcept {
    return std::ldexp(1.0, kMinOctave);
  }
  [[nodiscard]] static double kMaxValue() noexcept {
    return std::ldexp(1.0, kMaxOctave + 1);
  }

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace lmas::obs

#include "obs/latency.hpp"

#include <algorithm>

namespace lmas::obs {

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double LatencyHistogram::bucket_lower(std::size_t idx) noexcept {
  const std::size_t fin = idx - 1;  // finite buckets start at index 1
  const int octave = kMinOctave + int(fin / kSubBuckets);
  const int sub = int(fin % kSubBuckets);
  return std::ldexp(1.0 + double(sub) / kSubBuckets, octave);
}

double LatencyHistogram::bucket_upper(std::size_t idx) noexcept {
  const std::size_t fin = idx - 1;
  const int octave = kMinOctave + int(fin / kSubBuckets);
  const int sub = int(fin % kSubBuckets);
  return std::ldexp(1.0 + double(sub + 1) / kSubBuckets, octave);
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * N), with rank 1 as the floor so q=0 answers the minimum.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count_))));
  if (rank >= count_) return max_;  // the top rank is tracked exactly
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      if (i == 0) return 0.0;                    // underflow
      if (i == kBucketCount - 1) return max_;    // overflow
      const double mid = 0.5 * (bucket_lower(i) + bucket_upper(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // unreachable: cum == count_ >= rank by the last bucket
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j["count"] = Json(count_);
  j["sum"] = Json(sum_);
  j["min"] = Json(min());
  j["max"] = Json(max());
  j["p50"] = Json(quantile(0.50));
  j["p90"] = Json(quantile(0.90));
  j["p99"] = Json(quantile(0.99));
  Json buckets = Json::array();
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    Json pair = Json::array();
    pair.push_back(Json(i));
    pair.push_back(Json(buckets_[i]));
    buckets.push_back(std::move(pair));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

Json LatencyHistogram::summary_json() const {
  Json j = Json::object();
  j["count"] = Json(count_);
  j["mean"] = Json(mean());
  j["p50"] = Json(quantile(0.50));
  j["p90"] = Json(quantile(0.90));
  j["p99"] = Json(quantile(0.99));
  j["max"] = Json(max());
  return j;
}

}  // namespace lmas::obs

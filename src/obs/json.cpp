#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lmas::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the least-surprising stand-in.
    out += "null";
    return;
  }
  // Integral values (counters, counts) print without a fraction.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec == std::errc()) {
    out.append(buf, p);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return std::nullopt;
            }
            // UTF-8 encode the BMP code point (surrogate pairs land as
            // two 3-byte sequences; fine for diagnostics).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xc0 | (code >> 6));
              out += char(0x80 | (code & 0x3f));
            } else {
              out += char(0xe0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3f));
              out += char(0x80 | (code & 0x3f));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_value() {
    if (depth >= kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    const char c = text[pos];
    if (c == 'n') return literal("null") ? std::optional<Json>(Json())
                                         : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Json>(Json(true))
                                         : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json(false))
                                          : std::nullopt;
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == '[') {
      ++pos;
      ++depth;
      Json arr = Json::array();
      skip_ws();
      if (eat(']')) {
        --depth;
        return arr;
      }
      while (true) {
        auto v = parse_value();
        if (!v) return std::nullopt;
        arr.push_back(std::move(*v));
        skip_ws();
        if (eat(']')) break;
        if (!eat(',')) return std::nullopt;
      }
      --depth;
      return arr;
    }
    if (c == '{') {
      ++pos;
      ++depth;
      Json obj = Json::object();
      skip_ws();
      if (eat('}')) {
        --depth;
        return obj;
      }
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key) return std::nullopt;
        skip_ws();
        if (!eat(':')) return std::nullopt;
        auto v = parse_value();
        if (!v) return std::nullopt;
        obj[*key] = std::move(*v);
        skip_ws();
        if (eat('}')) break;
        if (!eat(',')) return std::nullopt;
      }
      --depth;
      return obj;
    }
    // number
    const std::size_t start = pos;
    if (c == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    double v = 0;
    const auto [p, ec] =
        std::from_chars(text.data() + start, text.data() + pos, v);
    if (ec != std::errc() || p != text.data() + pos) return std::nullopt;
    return Json(v);
  }
};

}  // namespace

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (!v) throw std::out_of_range("Json::at: no member '" + std::string(key) +
                                  "'");
  return *v;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(std::size_t(indent) * std::size_t(d), ' ');
    }
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String: append_escaped(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace lmas::obs

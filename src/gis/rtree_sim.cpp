#include "gis/rtree_sim.hpp"

#include <map>
#include <memory>

#include "asu/asu.hpp"
#include "sim/sim.hpp"

namespace lmas::gis {

namespace {

namespace sim = lmas::sim;
namespace asu_ns = lmas::asu;

/// Sub-query shipped to one ASU: scan these leaves against rect `q`.
struct LeafRequest {
  std::uint32_t client = 0;
  std::uint32_t query = 0;
  Rect q;
  std::vector<std::uint32_t> leaves;
};

struct LeafReply {
  std::uint32_t query = 0;
  std::size_t hits = 0;
};

constexpr std::size_t kRequestBytes = 64;
constexpr std::size_t kItemBytes = 20;  // rect + id on the wire

class RTreeQuerySim {
 public:
  RTreeQuerySim(const asu_ns::MachineParams& mp, const RTreeSimConfig& cfg)
      : mp_(mp), cfg_(cfg), cluster_(eng_, mp) {}

  RTreeSimReport run() {
    auto items = make_random_rects(cfg_.num_rects, cfg_.seed);
    tree_ = RTree::bulk_load(std::move(items));
    placement_ = leaf_replicas(tree_.num_leaves(), mp_.num_asus,
                               cfg_.layout, cfg_.replication);

    for (unsigned a = 0; a < mp_.num_asus; ++a) {
      req_.push_back(
          std::make_unique<sim::Channel<LeafRequest>>(eng_, 0));
    }
    for (unsigned c = 0; c < cfg_.clients; ++c) {
      reply_.push_back(std::make_unique<sim::Channel<LeafReply>>(eng_, 0));
    }

    for (unsigned a = 0; a < mp_.num_asus; ++a) {
      eng_.spawn(asu_worker(a));
    }
    for (unsigned c = 0; c < cfg_.clients; ++c) {
      eng_.spawn(client(c));
    }
    eng_.run();

    RTreeSimReport rep;
    rep.makespan = makespan_;
    rep.total_queries =
        std::size_t(cfg_.clients) * cfg_.queries_per_client;
    rep.mean_latency = latency_.mean();
    rep.max_latency = latency_.max();
    rep.throughput_qps =
        rep.makespan > 0 ? double(rep.total_queries) / rep.makespan : 0;
    rep.total_results = total_results_;
    rep.leaves_scanned = leaves_scanned_;
    rep.mean_asus_per_query =
        double(asu_fanout_total_) / double(rep.total_queries);
    rep.results_match_oracle = oracle_ok_;
    return rep;
  }

 private:
  /// One concurrent query stream, pinned to host 0 (the paper's server
  /// application with many concurrent searches).
  sim::Task<> client(unsigned c) {
    asu_ns::Node& host = cluster_.host(0);
    sim::Rng rng = sim::Rng(cfg_.seed).stream(sim::stream_id("client", c));
    const auto& cost = mp_.cost;

    for (unsigned qi = 0; qi < cfg_.queries_per_client; ++qi) {
      const double t0 = eng_.now();
      const Rect q = random_query(rng);

      // Host-side: traverse the upper levels (CPU work per node visited).
      std::size_t internal = 0;
      const auto leaves = tree_.leaves_for(q, &internal);
      co_await host.compute(
          double(internal) *
          (cost.host_handling +
           double(asu_ns::ceil_log2(tree_.params().node_fanout)) *
               cost.compare));

      // Group leaves by owning ASU (least-loaded replica when a leaf has
      // several owners) and fan out.
      std::map<std::uint32_t, std::vector<std::uint32_t>> by_asu;
      for (const auto leaf : leaves) {
        by_asu[pick_owner(placement_[leaf])].push_back(leaf);
      }
      asu_fanout_total_ += by_asu.size();

      // Fan the sub-queries out in parallel: the host should not pay
      // propagation latency serially once per contacted ASU.
      for (auto& [a, leaf_list] : by_asu) {
        eng_.spawn(
            send_request(a, LeafRequest{c, qi, q, std::move(leaf_list)}));
      }

      // Await one reply per contacted ASU; the slowest defines latency.
      std::size_t hits = 0;
      for (std::size_t i = 0; i < by_asu.size(); ++i) {
        auto rep = co_await reply_[c]->recv();
        if (rep) hits += rep->hits;
      }
      total_results_ += hits;

      // Oracle check: the distributed execution saw exactly the records
      // the centralized tree reports.
      RTree::QueryStats st;
      const auto oracle = tree_.query(q, &st);
      if (oracle.size() != hits) oracle_ok_ = false;

      latency_.add(eng_.now() - t0);
      if (eng_.now() > makespan_) makespan_ = eng_.now();
    }
    if (++clients_done_ == cfg_.clients) {
      for (auto& ch : req_) ch->close();
    }
  }

  /// Least-loaded replica: queued CPU + disk work decides.
  [[nodiscard]] std::uint32_t pick_owner(
      const std::vector<std::uint32_t>& candidates) {
    std::uint32_t best = candidates.front();
    double best_load = 1e300;
    for (const auto a : candidates) {
      asu_ns::Node& n = cluster_.asu(a);
      const double load = n.cpu().backlog() + n.disk().arm().backlog();
      if (load < best_load) {
        best_load = load;
        best = a;
      }
    }
    return best;
  }

  sim::Task<> send_request(std::uint32_t a, LeafRequest r) {
    co_await cluster_.network().transfer(cluster_.host(0), cluster_.asu(a),
                                         kRequestBytes);
    co_await req_[a]->send(std::move(r));
  }

  sim::Task<> asu_worker(unsigned a) {
    asu_ns::Node& node = cluster_.asu(a);
    asu_ns::Node& host = cluster_.host(0);
    const auto& cost = mp_.cost;
    const std::size_t leaf_bytes = tree_.params().leaf_capacity * kItemBytes;

    while (true) {
      auto r = co_await req_[a]->recv();
      if (!r) break;
      std::size_t hits = 0;
      for (const auto leaf : r->leaves) {
        co_await node.disk().read(leaf_bytes);
        co_await node.compute(
            double(tree_.params().leaf_capacity) *
            (cost.compare * 2.0));  // 4 float compares ~ 2 key compares
        hits += tree_.scan_leaf(leaf, r->q, nullptr);
        ++leaves_scanned_;
      }
      const std::size_t reply_bytes = 16 + hits * kItemBytes;
      co_await cluster_.network().transfer(node, host, reply_bytes);
      co_await reply_[r->client]->send(LeafReply{r->query, hits});
    }
  }

  [[nodiscard]] Rect random_query(sim::Rng& rng) const {
    const float e = cfg_.query_extent;
    const float x = float(rng.uniform()) * (1.0f - e);
    const float y = float(rng.uniform()) * (1.0f - e);
    return Rect{x, y, x + e, y + e};
  }

  asu_ns::MachineParams mp_;
  RTreeSimConfig cfg_;
  sim::Engine eng_;
  asu_ns::Cluster cluster_;
  RTree tree_;
  std::vector<std::vector<std::uint32_t>> placement_;
  std::vector<std::unique_ptr<sim::Channel<LeafRequest>>> req_;
  std::vector<std::unique_ptr<sim::Channel<LeafReply>>> reply_;
  sim::Accumulator latency_;
  double makespan_ = 0;
  std::size_t total_results_ = 0;
  std::size_t leaves_scanned_ = 0;
  std::size_t asu_fanout_total_ = 0;
  unsigned clients_done_ = 0;
  bool oracle_ok_ = true;
};

}  // namespace

std::vector<std::uint32_t> leaf_placement(std::size_t num_leaves,
                                          unsigned num_asus,
                                          RTreeLayout layout) {
  std::vector<std::uint32_t> owner(num_leaves, 0);
  if (num_asus == 0) return owner;
  if (layout == RTreeLayout::Stripe) {
    for (std::size_t i = 0; i < num_leaves; ++i) {
      owner[i] = std::uint32_t(i % num_asus);
    }
  } else {
    const std::size_t chunk =
        (num_leaves + num_asus - 1) / std::max(1u, num_asus);
    for (std::size_t i = 0; i < num_leaves; ++i) {
      owner[i] = std::uint32_t(std::min<std::size_t>(i / chunk,
                                                     num_asus - 1));
    }
  }
  return owner;
}

std::vector<std::vector<std::uint32_t>> leaf_replicas(std::size_t num_leaves,
                                                      unsigned num_asus,
                                                      RTreeLayout layout,
                                                      unsigned replication) {
  std::vector<std::vector<std::uint32_t>> owners(num_leaves);
  if (num_asus == 0) {
    for (auto& o : owners) o = {0};
    return owners;
  }
  if (layout == RTreeLayout::Hybrid) {
    const unsigned r = std::max(1u, std::min(replication, num_asus));
    const std::size_t chunk =
        (num_leaves + num_asus - 1) / std::max(1u, num_asus);
    for (std::size_t i = 0; i < num_leaves; ++i) {
      const auto primary = std::uint32_t(
          std::min<std::size_t>(i / std::max<std::size_t>(1, chunk),
                                num_asus - 1));
      for (unsigned k = 0; k < r; ++k) {
        owners[i].push_back((primary + k) % num_asus);
      }
    }
    return owners;
  }
  const auto single = leaf_placement(num_leaves, num_asus, layout);
  for (std::size_t i = 0; i < num_leaves; ++i) owners[i] = {single[i]};
  return owners;
}

RTreeSimReport run_rtree_sim(const asu::MachineParams& mp,
                             const RTreeSimConfig& cfg) {
  RTreeQuerySim sim(mp, cfg);
  return sim.run();
}

}  // namespace lmas::gis

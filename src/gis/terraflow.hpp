#pragma once

#include <cstdint>
#include <vector>

#include "asu/params.hpp"
#include "extmem/record.hpp"
#include "extmem/sort.hpp"
#include "gis/grid.hpp"

namespace lmas::gis {

/// The restructured grid cell of TerraFlow's step 1 (Section 4.1): the
/// cell plus its position and the elevations of its neighbors, so later
/// steps can process cells independently — "effectively converting the
/// grid from a stream into a set".
struct CellRecord {
  float elevation = 0;
  std::uint32_t id = 0;        // y * width + x
  float nbr_elev[8] = {};      // neighbor elevations (dx,dy) row-major
  std::uint8_t nbr_mask = 0;   // bit i set = neighbor i exists
  std::uint8_t pad_[3] = {};

  /// Neighbor slot order: (dx, dy) for dy in {-1,0,1}, dx in {-1,0,1},
  /// skipping (0,0): slots 0..7.
  static constexpr int kDx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
  static constexpr int kDy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
};
static_assert(sizeof(CellRecord) % 4 == 0);
static_assert(em::FixedSizeRecord<CellRecord>);

/// Total order on cells: lexicographic (elevation, id). This is the
/// "time" of time-forward processing, and also breaks plateau ties
/// deterministically (a plateau drains toward its smallest-id cell).
struct CellBefore {
  bool operator()(const CellRecord& a, const CellRecord& b) const noexcept {
    if (a.elevation != b.elevation) return a.elevation < b.elevation;
    return a.id < b.id;
  }
};

struct TerraFlowStats {
  std::size_t cells = 0;
  std::size_t watersheds = 0;
  std::size_t messages_sent = 0;
  std::size_t pq_spills = 0;
  em::SortStats sort;
};

struct TerraFlowOptions {
  /// Memory for the external sort and the time-forward priority queue.
  std::size_t memory_bytes = 16u << 20;
  em::BteFactory scratch = em::memory_bte_factory();
};

/// Step 1: restructure the grid into self-contained cell records.
void restructure_grid(const Grid& g, em::Stream<CellRecord>& out);

/// Steps 1-3: label every cell with its watershed color. Colors are dense
/// in [0, watersheds). Uses the external-memory toolkit throughout: scan,
/// external sort by elevation, then time-forward processing over an
/// external priority queue (step 3 is inherently sequential — the part
/// the paper notes gains little from ASUs).
std::vector<std::uint32_t> watershed_labels(const Grid& g,
                                            TerraFlowStats* stats = nullptr,
                                            const TerraFlowOptions& opt = {});

/// Count local minima under the (elevation, id) order — every watershed
/// has exactly one, so this is an independent oracle for tests.
std::size_t count_local_minima(const Grid& g);

/// Analytic phase-cost model for the active vs. passive placement of the
/// TerraFlow steps (ablation for Section 4.1's claim: steps 1-2
/// parallelize onto ASUs, step 3 does not).
struct TerraFlowPhaseModel {
  double step1_passive = 0, step1_active = 0;  // restructure scan
  double step2_passive = 0, step2_active = 0;  // external sort pass 1
  double step3 = 0;                            // time-forward labeling
  [[nodiscard]] double total_passive() const {
    return step1_passive + step2_passive + step3;
  }
  [[nodiscard]] double total_active() const {
    return step1_active + step2_active + step3;
  }
};

TerraFlowPhaseModel terraflow_phase_model(const asu::MachineParams& mp,
                                          std::size_t cells, unsigned alpha);

}  // namespace lmas::gis

#pragma once

#include <cstdint>
#include <vector>

#include "extmem/sort.hpp"
#include "gis/grid.hpp"
#include "gis/terraflow.hpp"

namespace lmas::gis {

/// TerraFlow's headline products (Section 4.1): flow indices
/// characterizing the slope orientation and the "upstream" area of each
/// grid cell. Flow direction is D8 steepest descent under the
/// (elevation, id) total order; upstream area counts every cell whose
/// flow path passes through this one (including itself).

/// Per-cell D8 flow direction: the neighbor slot (CellRecord::kDx/kDy
/// index, 0..7) the cell drains to, or -1 for local minima (pits).
std::vector<std::int8_t> flow_directions(const Grid& g);

struct FlowStats {
  std::size_t cells = 0;
  std::size_t pits = 0;             // local minima (flow sinks)
  std::uint64_t max_area = 0;       // largest upstream area
  std::size_t messages_sent = 0;
  std::size_t pq_spills = 0;
  em::SortStats sort;
};

/// Upstream (contributing) area of every cell, in cells, computed
/// I/O-efficiently: restructure -> external sort by *descending*
/// (elevation, id) -> time-forward accumulation (each cell receives the
/// areas of all higher cells draining into it, adds itself, and forwards
/// the total to its steepest-descent neighbor).
std::vector<std::uint64_t> flow_accumulation(const Grid& g,
                                             FlowStats* stats = nullptr,
                                             const TerraFlowOptions& opt = {});

}  // namespace lmas::gis

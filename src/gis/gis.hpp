#pragma once

/// Umbrella header for the GIS application layer (Section 4).
#include "gis/flow.hpp"
#include "gis/grid.hpp"
#include "gis/rtree.hpp"
#include "gis/rtree_sim.hpp"
#include "gis/terraflow.hpp"

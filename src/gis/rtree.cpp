#include "gis/rtree.hpp"

#include <algorithm>
#include <cmath>

namespace lmas::gis {

RTree RTree::bulk_load(std::vector<Item> items, RTreeParams params) {
  RTree t;
  t.params_ = params;
  if (items.empty()) {
    t.items_ = std::move(items);
    return t;
  }

  // STR: sort by center-x, cut into vertical slabs of ~sqrt(P) leaf
  // groups, sort each slab by center-y, then chunk into leaves.
  const std::size_t cap = std::max<std::size_t>(1, params.leaf_capacity);
  const std::size_t num_leaves = (items.size() + cap - 1) / cap;
  const std::size_t slabs =
      std::max<std::size_t>(1, std::size_t(std::ceil(std::sqrt(
                                   double(num_leaves)))));
  const std::size_t slab_items =
      (items.size() + slabs - 1) / slabs;

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.rect.cx() < b.rect.cx();
  });
  for (std::size_t s = 0; s < slabs; ++s) {
    const std::size_t lo = std::min(s * slab_items, items.size());
    const std::size_t hi = std::min(lo + slab_items, items.size());
    std::sort(items.begin() + std::ptrdiff_t(lo),
              items.begin() + std::ptrdiff_t(hi),
              [](const Item& a, const Item& b) {
                return a.rect.cy() < b.rect.cy();
              });
  }

  t.items_ = std::move(items);

  // Leaves over consecutive chunks.
  std::vector<Node> level;
  for (std::size_t i = 0; i < t.items_.size(); i += cap) {
    Node n;
    n.first_child = std::uint32_t(i);
    n.num_children =
        std::uint32_t(std::min(cap, t.items_.size() - i));
    n.mbr = t.items_[i].rect;
    for (std::size_t j = 1; j < n.num_children; ++j) {
      n.mbr.grow(t.items_[i + j].rect);
    }
    level.push_back(n);
  }
  t.levels_.push_back(level);

  // Internal levels until a single root.
  const std::size_t fanout = std::max<std::size_t>(2, params.node_fanout);
  while (t.levels_.back().size() > 1) {
    const auto& below = t.levels_.back();
    std::vector<Node> up;
    for (std::size_t i = 0; i < below.size(); i += fanout) {
      Node n;
      n.first_child = std::uint32_t(i);
      n.num_children = std::uint32_t(std::min(fanout, below.size() - i));
      n.mbr = below[i].mbr;
      for (std::size_t j = 1; j < n.num_children; ++j) {
        n.mbr.grow(below[i + j].mbr);
      }
      up.push_back(n);
    }
    t.levels_.push_back(std::move(up));
  }
  return t;
}

std::vector<std::uint32_t> RTree::query(const Rect& q,
                                        QueryStats* stats) const {
  QueryStats local;
  QueryStats& st = stats ? *stats : local;
  st = {};
  std::vector<std::uint32_t> out;
  std::size_t internal = 0;
  const auto leaves = leaves_for(q, &internal);
  st.internal_visited = internal;
  for (const auto leaf_index : leaves) {
    ++st.leaves_visited;
    st.results += scan_leaf(leaf_index, q, &out);
  }
  return out;
}

std::vector<std::uint32_t> RTree::leaves_for(
    const Rect& q, std::size_t* internal_visited) const {
  std::vector<std::uint32_t> out;
  std::size_t visited = 0;
  if (!levels_.empty()) {
    // Walk down from the root, keeping per-level frontiers of node
    // indices whose MBR intersects the query.
    std::vector<std::uint32_t> frontier = {0};
    for (std::size_t lvl = levels_.size(); lvl-- > 1;) {
      std::vector<std::uint32_t> next;
      for (const auto idx : frontier) {
        const Node& n = levels_[lvl][idx];
        ++visited;
        if (!n.mbr.intersects(q)) continue;
        for (std::uint32_t j = 0; j < n.num_children; ++j) {
          const std::uint32_t child = n.first_child + j;
          if (levels_[lvl - 1][child].mbr.intersects(q)) {
            next.push_back(child);
          }
        }
      }
      frontier = std::move(next);
    }
    // `frontier` now holds intersecting leaf indices (or the root when
    // the tree has a single level).
    if (levels_.size() == 1) {
      if (levels_[0][0].mbr.intersects(q)) out = {0};
    } else {
      out = std::move(frontier);
    }
  }
  if (internal_visited) *internal_visited = visited;
  return out;
}

std::size_t RTree::scan_leaf(std::uint32_t leaf_index, const Rect& q,
                             std::vector<std::uint32_t>* out) const {
  const Node& leaf = levels_.at(0).at(leaf_index);
  std::size_t hits = 0;
  for (std::uint32_t j = 0; j < leaf.num_children; ++j) {
    const Item& it = items_[leaf.first_child + j];
    if (it.rect.intersects(q)) {
      ++hits;
      if (out) out->push_back(it.id);
    }
  }
  return hits;
}

std::vector<RTree::Item> make_random_rects(std::size_t n, std::uint64_t seed,
                                           float max_extent) {
  sim::Rng rng(seed);
  std::vector<RTree::Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float x = float(rng.uniform());
    const float y = float(rng.uniform());
    const float w = float(rng.uniform()) * max_extent;
    const float h = float(rng.uniform()) * max_extent;
    items[i].rect = {x, y, std::min(1.0f, x + w), std::min(1.0f, y + h)};
    items[i].id = std::uint32_t(i);
  }
  return items;
}

}  // namespace lmas::gis

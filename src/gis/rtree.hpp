#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace lmas::gis {

struct Rect {
  float x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  [[nodiscard]] bool intersects(const Rect& o) const noexcept {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  [[nodiscard]] bool contains(float x, float y) const noexcept {
    return x0 <= x && x <= x1 && y0 <= y && y <= y1;
  }
  [[nodiscard]] float cx() const noexcept { return (x0 + x1) * 0.5f; }
  [[nodiscard]] float cy() const noexcept { return (y0 + y1) * 0.5f; }

  void grow(const Rect& o) noexcept {
    if (o.x0 < x0) x0 = o.x0;
    if (o.y0 < y0) y0 = o.y0;
    if (o.x1 > x1) x1 = o.x1;
    if (o.y1 > y1) y1 = o.y1;
  }
};

struct RTreeParams {
  std::size_t leaf_capacity = 64;
  std::size_t node_fanout = 16;
};

/// Packed R-tree built with Sort-Tile-Recursive (STR) bulk loading:
/// multi-dimensional index structure of Section 4.2. Nodes are stored
/// level by level with contiguous children, which is also what makes the
/// two distribution schemes of Figure 5 easy to express (leaves in STR
/// order are spatially clustered).
class RTree {
 public:
  struct Item {
    Rect rect;
    std::uint32_t id = 0;
  };

  struct Node {
    Rect mbr;
    std::uint32_t first_child = 0;  // index into the level below (or items)
    std::uint32_t num_children = 0;
  };

  static RTree bulk_load(std::vector<Item> items, RTreeParams params = {});

  struct QueryStats {
    std::size_t internal_visited = 0;
    std::size_t leaves_visited = 0;
    std::size_t results = 0;
  };

  /// Ids of items intersecting `q`.
  [[nodiscard]] std::vector<std::uint32_t> query(const Rect& q,
                                                 QueryStats* stats = nullptr)
      const;

  /// Host-side top traversal only: which leaves does `q` reach, and how
  /// many internal nodes were inspected to find out? This is the split
  /// point for distributed execution: the upper levels stay on the host,
  /// the leaf scans run on ASUs.
  [[nodiscard]] std::vector<std::uint32_t> leaves_for(
      const Rect& q, std::size_t* internal_visited = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t num_leaves() const noexcept {
    return levels_.empty() ? 0 : levels_[0].size();
  }
  [[nodiscard]] std::size_t height() const noexcept { return levels_.size(); }
  [[nodiscard]] const RTreeParams& params() const noexcept { return params_; }
  [[nodiscard]] const Node& leaf(std::size_t i) const {
    return levels_.at(0).at(i);
  }
  [[nodiscard]] const std::vector<Item>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] Rect bounds() const {
    return levels_.empty() ? Rect{} : levels_.back().at(0).mbr;
  }

  /// Scan one leaf against a query (the ASU-side primitive).
  [[nodiscard]] std::size_t scan_leaf(std::uint32_t leaf_index, const Rect& q,
                                      std::vector<std::uint32_t>* out) const;

 private:
  RTreeParams params_;
  std::vector<Item> items_;           // grouped by leaf, STR order
  std::vector<std::vector<Node>> levels_;  // [0] = leaves ... back() = root
};

/// Uniformly scattered small rectangles in [0,1)^2 (synthetic spatial
/// objects standing in for GIS feature data).
std::vector<RTree::Item> make_random_rects(std::size_t n, std::uint64_t seed,
                                           float max_extent = 0.002f);

}  // namespace lmas::gis

#pragma once

#include <cstdint>
#include <vector>

#include "asu/params.hpp"
#include "gis/rtree.hpp"

namespace lmas::gis {

/// The two distributed R-tree organizations of Figure 5:
///   Partition — contiguous runs of STR-ordered leaves per ASU; a query's
///     leaves cluster on few ASUs, so concurrent queries spread across
///     the ASU population (good throughput for many concurrent searches).
///   Stripe — leaf i lives on ASU i mod D; every query fans out over all
///     ASUs, each doing a small share (bounds single-query latency).
/// Hybrid (also Figure 5's discussion): partition-style contiguous
/// chunks, each *replicated* on `replication` ASUs; queries send every
/// leaf scan to the least-loaded replica, combining partition locality
/// with dynamic load spreading.
enum class RTreeLayout { Partition, Stripe, Hybrid };

inline const char* rtree_layout_name(RTreeLayout l) {
  switch (l) {
    case RTreeLayout::Partition: return "partition";
    case RTreeLayout::Stripe: return "stripe";
    case RTreeLayout::Hybrid: return "hybrid";
  }
  return "?";
}

struct RTreeSimConfig {
  RTreeLayout layout = RTreeLayout::Partition;
  /// Replicas per leaf chunk (Hybrid layout only).
  unsigned replication = 2;
  std::size_t num_rects = 100000;
  unsigned clients = 4;            // concurrent query streams on the host
  unsigned queries_per_client = 64;
  float query_extent = 0.02f;      // query square side in [0,1) space
  std::uint64_t seed = 99;
};

struct RTreeSimReport {
  double makespan = 0;
  double mean_latency = 0;
  double max_latency = 0;
  double throughput_qps = 0;
  std::size_t total_queries = 0;
  std::size_t total_results = 0;
  std::size_t leaves_scanned = 0;
  double mean_asus_per_query = 0;
  bool results_match_oracle = false;  // simulated result count == RTree::query
};

/// Execute concurrent range queries against a distributed R-tree on the
/// emulated cluster: the host traverses the upper levels, ASUs scan their
/// leaves (disk read + CPU at 1/c speed), replies return over the network.
RTreeSimReport run_rtree_sim(const asu::MachineParams& mp,
                             const RTreeSimConfig& cfg);

/// Which ASU owns each leaf under a single-owner layout.
std::vector<std::uint32_t> leaf_placement(std::size_t num_leaves,
                                          unsigned num_asus,
                                          RTreeLayout layout);

/// Candidate owners per leaf (multi-owner layouts; single-owner layouts
/// return one candidate each).
std::vector<std::vector<std::uint32_t>> leaf_replicas(std::size_t num_leaves,
                                                      unsigned num_asus,
                                                      RTreeLayout layout,
                                                      unsigned replication);

}  // namespace lmas::gis

#include "gis/terraflow.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/adaptive.hpp"
#include "extmem/pqueue.hpp"
#include "extmem/scan.hpp"

namespace lmas::gis {

namespace {

/// A time-forward message: the color of a lower cell delivered to a
/// higher neighbor at the moment that neighbor is processed.
struct FlowMsg {
  float to_elev = 0;
  std::uint32_t to_id = 0;
  float from_elev = 0;
  std::uint32_t from_id = 0;
  std::uint32_t color = 0;

  friend bool operator<(const FlowMsg& a, const FlowMsg& b) noexcept {
    if (a.to_elev != b.to_elev) return a.to_elev < b.to_elev;
    if (a.to_id != b.to_id) return a.to_id < b.to_id;
    if (a.from_elev != b.from_elev) return a.from_elev < b.from_elev;
    return a.from_id < b.from_id;
  }
};
static_assert(em::FixedSizeRecord<FlowMsg>);

/// Is neighbor slot i of `c` lower than `c` in the (elev, id) order?
bool neighbor_is_lower(const CellRecord& c, int slot,
                       std::uint32_t neighbor_id) {
  const float ne = c.nbr_elev[slot];
  if (ne != c.elevation) return ne < c.elevation;
  return neighbor_id < c.id;
}

}  // namespace

void restructure_grid(const Grid& g, em::Stream<CellRecord>& out) {
  for (std::uint32_t y = 0; y < g.height(); ++y) {
    for (std::uint32_t x = 0; x < g.width(); ++x) {
      CellRecord c;
      c.elevation = g.at(x, y);
      c.id = g.cell_id(x, y);
      for (int s = 0; s < 8; ++s) {
        const std::int64_t nx = std::int64_t(x) + CellRecord::kDx[s];
        const std::int64_t ny = std::int64_t(y) + CellRecord::kDy[s];
        if (nx < 0 || ny < 0 || nx >= std::int64_t(g.width()) ||
            ny >= std::int64_t(g.height())) {
          continue;
        }
        c.nbr_mask |= std::uint8_t(1u << s);
        c.nbr_elev[s] = g.at(std::uint32_t(nx), std::uint32_t(ny));
      }
      out.push_back(c);
    }
  }
  out.rewind();
}

std::vector<std::uint32_t> watershed_labels(const Grid& g,
                                            TerraFlowStats* stats,
                                            const TerraFlowOptions& opt) {
  TerraFlowStats local;
  TerraFlowStats& st = stats ? *stats : local;
  st = {};
  st.cells = g.cells();

  // Step 1: restructure (stream -> set of self-contained records).
  em::Stream<CellRecord> cells(opt.scratch());
  restructure_grid(g, cells);

  // Step 2: external sort by (elevation, id).
  em::Stream<CellRecord> sorted(opt.scratch());
  em::SortOptions sort_opt;
  sort_opt.memory_bytes = opt.memory_bytes;
  sort_opt.scratch = opt.scratch;
  em::sort_stream(cells, sorted, sort_opt, CellBefore{}, &st.sort);

  // Step 3: time-forward processing. Each cell receives the colors of all
  // its lower neighbors; it adopts the color of the steepest one, or
  // starts a new watershed if it is a local minimum.
  const std::size_t pq_hot =
      std::max<std::size_t>(64, opt.memory_bytes / sizeof(FlowMsg) / 4);
  em::ExternalPq<FlowMsg> pq(pq_hot, opt.scratch);
  std::vector<std::uint32_t> colors(g.cells(), 0);
  std::uint32_t next_color = 0;

  const std::uint32_t w = g.width();
  sorted.rewind();
  while (auto cell = sorted.read()) {
    // Drain this cell's inbound messages.
    bool have_color = false;
    std::uint32_t color = 0;
    while (auto m = pq.peek()) {
      if (m->to_elev != cell->elevation || m->to_id != cell->id) break;
      const FlowMsg msg = *pq.pop();
      if (!have_color) {  // messages arrive steepest-first (PQ order)
        color = msg.color;
        have_color = true;
      }
    }
    if (!have_color) {
      color = next_color++;  // local minimum: new watershed
    }
    colors[cell->id] = color;

    // Forward our color to every strictly higher neighbor.
    for (int s = 0; s < 8; ++s) {
      if (!(cell->nbr_mask & (1u << s))) continue;
      const std::uint32_t nid =
          cell->id + std::uint32_t(CellRecord::kDy[s]) * w +
          std::uint32_t(CellRecord::kDx[s]);
      if (neighbor_is_lower(*cell, s, nid)) continue;
      pq.push(FlowMsg{cell->nbr_elev[s], nid, cell->elevation, cell->id,
                      color});
      ++st.messages_sent;
    }
  }
  if (!pq.empty()) {
    throw std::logic_error("terraflow: undelivered time-forward messages");
  }
  st.watersheds = next_color;
  st.pq_spills = pq.spill_count();
  return colors;
}

std::size_t count_local_minima(const Grid& g) {
  std::size_t minima = 0;
  for (std::uint32_t y = 0; y < g.height(); ++y) {
    for (std::uint32_t x = 0; x < g.width(); ++x) {
      const float e = g.at(x, y);
      const std::uint32_t id = g.cell_id(x, y);
      bool is_min = true;
      g.for_each_neighbor(x, y, [&](std::uint32_t nx, std::uint32_t ny) {
        const float ne = g.at(nx, ny);
        if (ne < e || (ne == e && g.cell_id(nx, ny) < id)) is_min = false;
      });
      if (is_min) ++minima;
    }
  }
  return minima;
}

TerraFlowPhaseModel terraflow_phase_model(const asu::MachineParams& mp,
                                          std::size_t cells, unsigned alpha) {
  TerraFlowPhaseModel m;
  const double n = double(cells);
  const double d = double(mp.num_asus);
  const double h = double(mp.num_hosts);
  const auto& c = mp.cost;

  // Step 1: a pure scan that assembles 8 neighbor values per cell
  // (modeled as 8 compares of work). Blocking makes it perfectly
  // data-parallel (minimal data dependencies), so it runs at the ASUs'
  // aggregate rate when active.
  const double step1_work = c.compare * 8.0;
  m.step1_passive = n * (c.host_handling + step1_work) / h;
  m.step1_active = (n / d) * mp.c * (c.asu_handling + step1_work);

  // Step 2: the pass-1 DSM-Sort split at the given alpha vs. the passive
  // all-on-host baseline.
  core::DsmSortConfig cfg;
  cfg.total_records = cells;
  cfg.alpha = alpha;
  cfg.distribute_on_asus = true;
  m.step2_active = core::predict_pass1(mp, cfg).seconds;
  cfg.distribute_on_asus = false;
  m.step2_passive = core::predict_pass1(mp, cfg).seconds;

  // Step 3: time-forward processing is sequential (ordering-dependent):
  // one host, roughly one PQ push+pop (log-cost) per cell-edge.
  const double pq_op = c.host_handling + 24.0 * c.compare;
  m.step3 = n * 4.0 * pq_op;  // ~4 higher neighbors on average
  return m;
}

}  // namespace lmas::gis

#include "gis/flow.hpp"

#include <stdexcept>

#include "extmem/pqueue.hpp"

namespace lmas::gis {

namespace {

/// Area message: accumulated upstream area delivered to the receiving
/// cell at its (descending-order) processing time.
struct AreaMsg {
  float to_elev = 0;
  std::uint32_t to_id = 0;
  std::uint64_t area = 0;

  /// Min-PQ order = descending (elevation, id): higher cells first.
  friend bool operator<(const AreaMsg& a, const AreaMsg& b) noexcept {
    if (a.to_elev != b.to_elev) return a.to_elev > b.to_elev;
    return a.to_id > b.to_id;
  }
};
static_assert(em::FixedSizeRecord<AreaMsg>);

/// Descending (elevation, id): the processing order of accumulation.
struct CellAfter {
  bool operator()(const CellRecord& a, const CellRecord& b) const noexcept {
    if (a.elevation != b.elevation) return a.elevation > b.elevation;
    return a.id > b.id;
  }
};

/// Steepest-descent neighbor slot of a cell, or -1 for a pit. Ties on
/// elevation break toward the smaller neighbor id (the same total order
/// the watershed step uses, so the two analyses agree on plateaus).
int steepest_descent_slot(const CellRecord& c, std::uint32_t grid_width) {
  int best = -1;
  float best_elev = 0;
  std::uint32_t best_id = 0;
  for (int s = 0; s < 8; ++s) {
    if (!(c.nbr_mask & (1u << s))) continue;
    const std::uint32_t nid =
        c.id + std::uint32_t(CellRecord::kDy[s]) * grid_width +
        std::uint32_t(CellRecord::kDx[s]);
    const float ne = c.nbr_elev[s];
    const bool lower = ne < c.elevation ||
                       (ne == c.elevation && nid < c.id);
    if (!lower) continue;
    const bool better =
        best < 0 || ne < best_elev || (ne == best_elev && nid < best_id);
    if (better) {
      best = s;
      best_elev = ne;
      best_id = nid;
    }
  }
  return best;
}

}  // namespace

std::vector<std::int8_t> flow_directions(const Grid& g) {
  std::vector<std::int8_t> dir(g.cells(), -1);
  em::Stream<CellRecord> cells;
  restructure_grid(g, cells);
  cells.rewind();
  while (auto c = cells.read()) {
    dir[c->id] = std::int8_t(steepest_descent_slot(*c, g.width()));
  }
  return dir;
}

std::vector<std::uint64_t> flow_accumulation(const Grid& g, FlowStats* stats,
                                             const TerraFlowOptions& opt) {
  FlowStats local;
  FlowStats& st = stats ? *stats : local;
  st = {};
  st.cells = g.cells();

  // Step 1: restructure.
  em::Stream<CellRecord> cells(opt.scratch());
  restructure_grid(g, cells);

  // Step 2: external sort, highest cell first.
  em::Stream<CellRecord> sorted(opt.scratch());
  em::SortOptions sort_opt;
  sort_opt.memory_bytes = opt.memory_bytes;
  sort_opt.scratch = opt.scratch;
  em::sort_stream(cells, sorted, sort_opt, CellAfter{}, &st.sort);

  // Step 3: descending time-forward accumulation.
  const std::size_t pq_hot =
      std::max<std::size_t>(64, opt.memory_bytes / sizeof(AreaMsg) / 4);
  em::ExternalPq<AreaMsg> pq(pq_hot, opt.scratch);
  std::vector<std::uint64_t> area(g.cells(), 0);

  const std::uint32_t w = g.width();
  sorted.rewind();
  while (auto cell = sorted.read()) {
    std::uint64_t acc = 1;  // the cell itself
    while (auto m = pq.peek()) {
      if (m->to_elev != cell->elevation || m->to_id != cell->id) break;
      acc += pq.pop()->area;
    }
    area[cell->id] = acc;
    if (acc > st.max_area) st.max_area = acc;

    const int slot = steepest_descent_slot(*cell, w);
    if (slot < 0) {
      ++st.pits;  // sink: the area stays here
      continue;
    }
    const std::uint32_t nid =
        cell->id + std::uint32_t(CellRecord::kDy[slot]) * w +
        std::uint32_t(CellRecord::kDx[slot]);
    pq.push(AreaMsg{cell->nbr_elev[slot], nid, acc});
    ++st.messages_sent;
  }
  if (!pq.empty()) {
    throw std::logic_error("flow: undelivered accumulation messages");
  }
  st.pq_spills = pq.spill_count();
  return area;
}

}  // namespace lmas::gis

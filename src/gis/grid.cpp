#include "gis/grid.hpp"

namespace lmas::gis {

namespace {

/// Smallest 2^k + 1 covering max(w, h).
std::uint32_t fractal_size(std::uint32_t need) {
  std::uint32_t s = 2;
  while (s + 1 < need) s *= 2;
  return s + 1;
}

}  // namespace

Grid make_fractal(std::uint32_t w, std::uint32_t h, std::uint64_t seed,
                  double roughness) {
  const std::uint32_t n = fractal_size(std::max(w, h));
  std::vector<double> e(std::size_t(n) * n, 0.0);
  sim::Rng rng(seed);
  auto at = [&](std::uint32_t x, std::uint32_t y) -> double& {
    return e[std::size_t(y) * n + x];
  };

  at(0, 0) = rng.uniform(0, 100);
  at(n - 1, 0) = rng.uniform(0, 100);
  at(0, n - 1) = rng.uniform(0, 100);
  at(n - 1, n - 1) = rng.uniform(0, 100);

  double amp = 50.0;
  for (std::uint32_t step = n - 1; step > 1; step /= 2, amp *= roughness) {
    const std::uint32_t half = step / 2;
    // Diamond step.
    for (std::uint32_t y = half; y < n; y += step) {
      for (std::uint32_t x = half; x < n; x += step) {
        const double avg = (at(x - half, y - half) + at(x + half, y - half) +
                            at(x - half, y + half) + at(x + half, y + half)) /
                           4.0;
        at(x, y) = avg + rng.uniform(-amp, amp);
      }
    }
    // Square step.
    for (std::uint32_t y = 0; y < n; y += half) {
      for (std::uint32_t x = (y / half) % 2 == 0 ? half : 0; x < n;
           x += step) {
        double sum = 0;
        int cnt = 0;
        if (x >= half) { sum += at(x - half, y); ++cnt; }
        if (x + half < n) { sum += at(x + half, y); ++cnt; }
        if (y >= half) { sum += at(x, y - half); ++cnt; }
        if (y + half < n) { sum += at(x, y + half); ++cnt; }
        at(x, y) = sum / cnt + rng.uniform(-amp, amp);
      }
    }
  }

  Grid g(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      g.set(x, y, float(at(x, y)));
    }
  }
  return g;
}

}  // namespace lmas::gis

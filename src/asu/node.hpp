#pragma once

#include <cassert>
#include <memory>
#include <string>

#include "asu/disk.hpp"
#include "asu/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

enum class NodeKind { Host, Asu };

/// Degraded-mode state of a node (Section 3.3 allows the target set of a
/// set-typed functor to shrink and grow: "replica failure, removal,
/// re-replication"). Healthy and Degraded nodes run — a degraded node
/// merely computes slower (its CPU's service rate is scaled down);
/// a Crashed node accepts no new packets and its record pumps pause
/// until recovery.
enum class NodeHealth { Healthy, Degraded, Crashed };

/// Cluster-wide health change board: a monotone epoch plus a condition.
/// Routing fabric (StageOutput) caches the healthy target set per epoch,
/// so the per-packet cost of degraded-mode support is one integer compare
/// in the fault-free case; processes that must wait for *some* replica to
/// recover park on the condition.
class HealthBoard {
 public:
  explicit HealthBoard(sim::Engine& eng) : changed_(eng) {}

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  void bump() {
    ++epoch_;
    changed_.notify_all();
  }
  [[nodiscard]] auto wait() { return changed_.wait(); }

 private:
  std::uint64_t epoch_ = 1;
  sim::Condition changed_;
};

/// One processing element of the emulated machine. Hosts have a fast CPU
/// and no storage of their own; ASUs pair a (1/c)-speed CPU with a disk.
/// CPU work is expressed in host-seconds and scaled by the node's speed,
/// mirroring the paper's emulator, which scales measured execution-segment
/// times by the relative speed of the emulated processor.
class Node {
 public:
  /// `speed_multiplier` scales the node's base speed (hosts: 1.0; ASUs:
  /// (1 - background) / c) for heterogeneous machines — per-node c
  /// instead of one global ratio. The homogeneous default multiplies by
  /// exactly 1.0, so flat-topology clusters charge bit-identically.
  Node(sim::Engine& eng, NodeKind kind, unsigned id,
       const MachineParams& params, double speed_multiplier = 1.0)
      : eng_(&eng),
        kind_(kind),
        id_(id),
        speed_((kind == NodeKind::Host
                    ? 1.0
                    : (1.0 - params.asu_background_load) / params.c) *
               speed_multiplier),
        cpu_(eng, name() + ".cpu", params.util_bin),
        nic_(eng, name() + ".nic", params.util_bin),
        nic_rate_(kind == NodeKind::Host ? params.host_nic_bandwidth
                                         : params.asu_nic_bandwidth),
        memory_bytes_(kind == NodeKind::Host ? params.host_memory
                                             : params.asu_memory) {
    if (kind == NodeKind::Asu) {
      disk_ = std::make_unique<Disk>(eng, name() + ".disk", params.disk_rate,
                                     params.util_bin);
    }
  }

  [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_asu() const noexcept { return kind_ == NodeKind::Asu; }
  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return memory_bytes_;
  }

  [[nodiscard]] std::string name() const {
    return (kind_ == NodeKind::Host ? "host" : "asu") + std::to_string(id_);
  }

  /// Charge `host_seconds` of CPU work, scaled by this node's speed.
  [[nodiscard]] sim::Task<> compute(double host_seconds) {
    co_await cpu_.use(host_seconds / speed_);
  }

  /// Charge NIC occupancy for `bytes` (send or receive side). `scale`
  /// inflates the charge for deprioritized traffic (fair-share weight w
  /// charges at 1/w); 1.0 multiplies exactly, so default callers are
  /// bit-identical to the unscaled path.
  [[nodiscard]] sim::Task<> nic_transfer(std::size_t bytes,
                                         double scale = 1.0) {
    co_await nic_.use(scale * double(bytes) / nic_rate_);
  }

  [[nodiscard]] sim::Resource& cpu() noexcept { return cpu_; }
  [[nodiscard]] const sim::Resource& cpu() const noexcept { return cpu_; }
  [[nodiscard]] sim::Resource& nic() noexcept { return nic_; }

  // ---- health / degraded modes --------------------------------------

  [[nodiscard]] NodeHealth health() const noexcept { return health_; }
  [[nodiscard]] bool running() const noexcept {
    return health_ != NodeHealth::Crashed;
  }
  [[nodiscard]] bool crashed() const noexcept {
    return health_ == NodeHealth::Crashed;
  }

  /// CPU degradation: competing load or partial failure leaves 1/slowdown
  /// of the node's compute rate. Applies to subsequently charged work.
  void set_degraded(double slowdown) {
    assert(slowdown >= 1.0);
    health_ = NodeHealth::Degraded;
    cpu_.set_rate_scale(1.0 / slowdown);
    announce();
  }

  /// Crash/stop: the node leaves every routing target set and its record
  /// pumps pause at the next health check. Already-accepted packets stay
  /// queued (nothing is lost) and resume processing on recovery.
  void set_crashed() {
    health_ = NodeHealth::Crashed;
    announce();
  }

  /// Recovery: rejoin target sets at full speed; parked pumps resume.
  void set_healthy() {
    health_ = NodeHealth::Healthy;
    cpu_.set_rate_scale(1.0);
    resumed_.notify_all();
    announce();
  }

  /// Condition a paused pump parks on; use as
  ///   while (!node.running()) co_await node.health_wait();
  /// so the healthy path costs one branch and never touches the engine.
  [[nodiscard]] auto health_wait() { return resumed_.wait(); }

  /// Wire this node to the cluster's health board (Cluster does this at
  /// construction; standalone nodes in unit tests may leave it unset).
  void set_health_board(HealthBoard* board) noexcept { board_ = board; }

  /// ASU-only local disk.
  [[nodiscard]] Disk& disk() {
    assert(disk_);
    return *disk_;
  }
  [[nodiscard]] bool has_disk() const noexcept { return bool(disk_); }

 private:
  void announce() {
    if (board_) board_->bump();
  }

  sim::Engine* eng_;
  NodeKind kind_;
  unsigned id_;
  double speed_;
  sim::Resource cpu_;
  sim::Resource nic_;
  double nic_rate_;
  std::size_t memory_bytes_;
  std::unique_ptr<Disk> disk_;
  NodeHealth health_ = NodeHealth::Healthy;
  sim::Condition resumed_{*eng_};
  HealthBoard* board_ = nullptr;
};

}  // namespace lmas::asu

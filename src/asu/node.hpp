#pragma once

#include <cassert>
#include <memory>
#include <string>

#include "asu/disk.hpp"
#include "asu/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

enum class NodeKind { Host, Asu };

/// One processing element of the emulated machine. Hosts have a fast CPU
/// and no storage of their own; ASUs pair a (1/c)-speed CPU with a disk.
/// CPU work is expressed in host-seconds and scaled by the node's speed,
/// mirroring the paper's emulator, which scales measured execution-segment
/// times by the relative speed of the emulated processor.
class Node {
 public:
  Node(sim::Engine& eng, NodeKind kind, unsigned id,
       const MachineParams& params)
      : eng_(&eng),
        kind_(kind),
        id_(id),
        speed_(kind == NodeKind::Host
                   ? 1.0
                   : (1.0 - params.asu_background_load) / params.c),
        cpu_(eng, name() + ".cpu", params.util_bin),
        nic_(eng, name() + ".nic", params.util_bin),
        nic_rate_(kind == NodeKind::Host ? params.host_nic_bandwidth
                                         : params.asu_nic_bandwidth),
        memory_bytes_(kind == NodeKind::Host ? params.host_memory
                                             : params.asu_memory) {
    if (kind == NodeKind::Asu) {
      disk_ = std::make_unique<Disk>(eng, name() + ".disk", params.disk_rate,
                                     params.util_bin);
    }
  }

  [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_asu() const noexcept { return kind_ == NodeKind::Asu; }
  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return memory_bytes_;
  }

  [[nodiscard]] std::string name() const {
    return (kind_ == NodeKind::Host ? "host" : "asu") + std::to_string(id_);
  }

  /// Charge `host_seconds` of CPU work, scaled by this node's speed.
  [[nodiscard]] sim::Task<> compute(double host_seconds) {
    co_await cpu_.use(host_seconds / speed_);
  }

  /// Charge NIC occupancy for `bytes` (send or receive side).
  [[nodiscard]] sim::Task<> nic_transfer(std::size_t bytes) {
    co_await nic_.use(double(bytes) / nic_rate_);
  }

  [[nodiscard]] sim::Resource& cpu() noexcept { return cpu_; }
  [[nodiscard]] const sim::Resource& cpu() const noexcept { return cpu_; }
  [[nodiscard]] sim::Resource& nic() noexcept { return nic_; }

  /// ASU-only local disk.
  [[nodiscard]] Disk& disk() {
    assert(disk_);
    return *disk_;
  }
  [[nodiscard]] bool has_disk() const noexcept { return bool(disk_); }

 private:
  sim::Engine* eng_;
  NodeKind kind_;
  unsigned id_;
  double speed_;
  sim::Resource cpu_;
  sim::Resource nic_;
  double nic_rate_;
  std::size_t memory_bytes_;
  std::unique_ptr<Disk> disk_;
};

}  // namespace lmas::asu

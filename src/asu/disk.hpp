#pragma once

#include <cstddef>
#include <string>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

/// The paper's disk model (Section 5): a base sequential transfer rate,
/// read-ahead, and write caching. "The disk initiates the next I/O
/// automatically, and writes wait only for the previous write to
/// complete." Reads and writes share one arm (a FIFO Resource), so mixed
/// streams serialize against each other.
class Disk {
 public:
  Disk(sim::Engine& eng, std::string name, double rate_bytes_per_sec,
       double util_bin = 0.05)
      : eng_(&eng),
        arm_(eng, std::move(name), util_bin),
        rate_(rate_bytes_per_sec) {
    read_bytes_ = &eng.metrics().counter(arm_.name() + ".read_bytes");
    write_bytes_ = &eng.metrics().counter(arm_.name() + ".write_bytes");
  }

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] sim::Resource& arm() noexcept { return arm_; }
  [[nodiscard]] const sim::Resource& arm() const noexcept { return arm_; }

  /// Synchronous (random / first) read: waits for queued work + transfer.
  [[nodiscard]] sim::Task<> read(std::size_t bytes) {
    read_bytes_->inc(bytes);
    co_await arm_.use(seconds(bytes));
  }

  /// Write-behind: occupy the disk, but block the caller only if the
  /// previously posted write has not completed yet.
  [[nodiscard]] sim::Task<> write(std::size_t bytes) {
    write_bytes_->inc(bytes);
    const sim::SimTime prev = last_write_end_;
    if (prev > eng_->now()) {
      co_await eng_->sleep(prev - eng_->now());
    }
    last_write_end_ = arm_.post(seconds(bytes));
  }

  /// Sequential read stream with one-block read-ahead: while the consumer
  /// processes block i the disk fetches block i+1, so a consumer slower
  /// than the disk never waits.
  class ReadStream {
   public:
    ReadStream(Disk& disk, std::size_t block_bytes)
        : disk_(&disk), block_bytes_(block_bytes) {
      disk_->read_bytes_->inc(block_bytes_);
      next_ready_at_ = disk_->arm_.post(disk_->seconds(block_bytes_));
    }

    /// Wait for the current block and immediately start prefetching the
    /// next one. Pass `last = true` on the final block to stop prefetch.
    [[nodiscard]] sim::Task<> next_block(bool last = false) {
      const sim::SimTime ready = next_ready_at_;
      if (!last) {
        disk_->read_bytes_->inc(block_bytes_);
        next_ready_at_ = disk_->arm_.post(disk_->seconds(block_bytes_));
      }
      if (ready > disk_->eng_->now()) {
        co_await disk_->eng_->sleep(ready - disk_->eng_->now());
      }
    }

   private:
    Disk* disk_;
    std::size_t block_bytes_;
    sim::SimTime next_ready_at_;
  };

  [[nodiscard]] double seconds(std::size_t bytes) const noexcept {
    return double(bytes) / rate_;
  }

 private:
  friend class ReadStream;
  sim::Engine* eng_;
  sim::Resource arm_;
  double rate_;
  sim::SimTime last_write_end_ = 0;
  lmas::obs::Counter* read_bytes_ = nullptr;
  lmas::obs::Counter* write_bytes_ = nullptr;
};

}  // namespace lmas::asu

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace lmas::asu {

/// ceil(log2(x)) for x >= 1: comparisons per key for a fan-in/out of x.
constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  unsigned bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Declared per-record CPU costs, in **host-seconds** (an ASU of relative
/// speed 1/c multiplies all charges by c). This replaces the paper's
/// cycle-counter measurement of execution segments with a deterministic,
/// calibrated model; the accounting is the paper's own
/// `Total Work = n log(alpha beta gamma)` compares plus per-record stream
/// handling. Constants are calibrated so that one host saturates at about
/// sixteen c=8 ASUs in the Figure 9 configuration, as reported in the paper.
struct CostModel {
  /// One key comparison (the unit behind `n log(...)` work terms).
  double compare = 15e-9;
  /// Per-record stream handling at a host per functor stage (amortized
  /// dispatch + record move through memory).
  double host_handling = 20e-9;
  /// Per-record handling at an ASU per functor stage, in host-seconds.
  /// Larger than host_handling: covers the ASU-side I/O path (disk and
  /// NIC per-record work) that the paper attributes to storage units.
  double asu_handling = 150e-9;

  /// Cost to route one record through an alpha-way distributor.
  [[nodiscard]] double distribute_per_record(unsigned alpha,
                                             bool on_asu) const noexcept {
    return handling(on_asu) + double(ceil_log2(alpha)) * compare;
  }

  /// Cost per record of run formation with runs of `beta` records.
  [[nodiscard]] double sort_per_record(std::uint64_t beta,
                                       bool on_asu) const noexcept {
    return handling(on_asu) + double(ceil_log2(beta)) * compare;
  }

  /// Cost per record of a gamma-way merge step.
  [[nodiscard]] double merge_per_record(unsigned gamma,
                                        bool on_asu) const noexcept {
    return handling(on_asu) + double(ceil_log2(gamma)) * compare;
  }

  /// Cost per record of a pure forwarding / scan stage.
  [[nodiscard]] double scan_per_record(bool on_asu) const noexcept {
    return handling(on_asu);
  }

  [[nodiscard]] double handling(bool on_asu) const noexcept {
    return on_asu ? asu_handling : host_handling;
  }
};

}  // namespace lmas::asu

#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "asu/params.hpp"

namespace lmas::asu {

/// One interconnect tier of a hierarchical machine: the latency a message
/// pays to traverse it, the raw bandwidth of one link at this tier, and an
/// oversubscription factor (the ratio of attached demand to uplink
/// capacity — 4.0 means four racks' worth of traffic contends for one
/// rack's worth of spine bandwidth, charged as a 4x longer occupancy of
/// the shared uplink).
struct TierSpec {
  double latency = 0;          ///< seconds per message through this tier
  double bandwidth = 0;        ///< bytes/second of one link at this tier
  double oversubscription = 1.0;  ///< effective capacity divisor (>= 1 typical)

  /// Occupancy charged on a link of this tier for `bytes`. With
  /// oversubscription 1.0 this multiplies by exactly 1.0, so a flat
  /// topology reproduces MachineParams::link_seconds bit-for-bit.
  [[nodiscard]] double seconds(std::size_t bytes) const noexcept {
    return double(bytes) * oversubscription / bandwidth;
  }
};

/// Hierarchical machine description: the flat MachineParams plus the
/// interconnect shape above the (host, ASU) leaf links. Nodes are block-
/// partitioned into `racks` leaf groups; a transfer inside one rack pays
/// the rack tier only (exactly the paper's flat full-bisection model when
/// racks == 1), a cross-rack transfer additionally traverses the
/// oversubscribed spine — both directions' rack uplinks plus the spine's
/// latency. Per-node speed multipliers replace the single global host/ASU
/// speed ratio (per-node c): empty vectors mean a homogeneous machine and
/// multiply node speeds by exactly 1.0.
///
/// `TopologySpec::flat(params)` is the compatibility adapter: every
/// pre-topology entry point (Cluster/Network from bare MachineParams)
/// routes through it, and its behavior is byte-identical to the flat
/// model it replaces — same resources, same charges, same latencies, no
/// extra RNG draws — so the pinned golden digests stand.
struct TopologySpec {
  MachineParams machine;

  /// Leaf groups. Hosts and ASUs are independently block-partitioned into
  /// this many racks (rack_of_host / rack_of_asu); 1 = flat.
  unsigned racks = 1;

  /// Leaf tier: the dedicated (host, ASU) links inside a rack. flat()
  /// seeds it from machine.link_{latency,bandwidth}.
  TierSpec rack;

  /// Cross-rack tier: each rack owns one shared spine uplink of
  /// `spine.bandwidth / spine.oversubscription` effective capacity.
  /// Unused (and never instantiated as resources) when racks == 1.
  TierSpec spine;

  /// Per-node speed multipliers scaling the base node speed (hosts: 1.0;
  /// ASUs: (1 - background) / c). Empty = homogeneous (all 1.0).
  std::vector<double> host_speed;
  std::vector<double> asu_speed;

  [[nodiscard]] static TopologySpec flat(const MachineParams& params) {
    TopologySpec t;
    t.machine = params;
    t.racks = 1;
    t.rack = TierSpec{.latency = params.link_latency,
                      .bandwidth = params.link_bandwidth,
                      .oversubscription = 1.0};
    t.spine = TierSpec{.latency = 0, .bandwidth = 0, .oversubscription = 1.0};
    return t;
  }

  [[nodiscard]] bool hierarchical() const noexcept { return racks > 1; }

  /// Block partition of hosts (resp. ASUs) over racks: contiguous,
  /// balanced to within one node. Safe for any racks >= 1, including
  /// racks > node count (some racks simply hold no nodes of that kind).
  [[nodiscard]] unsigned rack_of_host(unsigned h) const noexcept {
    return rack_of(h, machine.num_hosts);
  }
  [[nodiscard]] unsigned rack_of_asu(unsigned a) const noexcept {
    return rack_of(a, machine.num_asus);
  }

  [[nodiscard]] double host_multiplier(unsigned h) const {
    return host_speed.empty() ? 1.0 : host_speed.at(h);
  }
  [[nodiscard]] double asu_multiplier(unsigned a) const {
    return asu_speed.empty() ? 1.0 : asu_speed.at(a);
  }

  /// Propagation latency of the full path between two racks: every
  /// transfer pays the rack tier; a cross-rack one adds the spine hop.
  [[nodiscard]] double path_latency(unsigned rack_a,
                                    unsigned rack_b) const noexcept {
    return rack_a == rack_b ? rack.latency : rack.latency + spine.latency;
  }

  /// Throw std::invalid_argument on an unusable shape. Cluster/Network
  /// call this at construction so a bad spec fails loudly, not as NaN
  /// charges mid-run.
  void validate() const {
    if (racks == 0) throw std::invalid_argument("TopologySpec: racks == 0");
    check_tier("rack", rack);
    if (hierarchical()) check_tier("spine", spine);
    check_speeds("host_speed", host_speed, machine.num_hosts);
    check_speeds("asu_speed", asu_speed, machine.num_asus);
  }

 private:
  [[nodiscard]] unsigned rack_of(unsigned i, unsigned count) const noexcept {
    if (count == 0) return 0;
    const auto r = unsigned(std::size_t(i) * racks / count);
    return r < racks ? r : racks - 1;
  }

  static void check_tier(const char* name, const TierSpec& t) {
    if (!(t.bandwidth > 0) || !(t.latency >= 0) || !(t.oversubscription > 0)) {
      throw std::invalid_argument(
          std::string("TopologySpec: tier '") + name +
          "' needs bandwidth > 0, latency >= 0, oversubscription > 0");
    }
  }
  static void check_speeds(const char* name, const std::vector<double>& v,
                           unsigned count) {
    if (!v.empty() && v.size() != count) {
      throw std::invalid_argument(std::string("TopologySpec: ") + name +
                                  " size must be 0 or the node count");
    }
    for (double s : v) {
      if (!(s > 0)) {
        throw std::invalid_argument(std::string("TopologySpec: ") + name +
                                    " entries must be > 0");
      }
    }
  }
};

/// Conservative lookahead for sharded simulation of this topology
/// (sim::ShardedEngine, DESIGN.md §14): the per-tier latency floor — the
/// minimum virtual time any cross-node message needs to propagate through
/// any tier it might traverse. Every transfer pays at least the rack
/// tier's latency and fault delay windows only ever add, so the rack
/// latency alone would bound same-rack influence; taking the minimum over
/// all charged tiers stays conservative for any shard-to-rack alignment.
/// Returns 0 for a degenerate zero-latency topology; the sharded engine
/// rejects that at shards > 1.
[[nodiscard]] inline double shard_lookahead(const TopologySpec& topo) noexcept {
  double floor = topo.rack.latency;
  if (topo.hierarchical()) floor = std::min(floor, topo.spine.latency);
  return floor > 0 ? floor : 0.0;
}

/// Flat-machine overload: the link-latency floor, identical to
/// shard_lookahead(TopologySpec::flat(params)).
[[nodiscard]] inline double shard_lookahead(
    const MachineParams& params) noexcept {
  return params.link_latency > 0 ? params.link_latency : 0.0;
}

}  // namespace lmas::asu

#pragma once

#include <cstddef>
#include <cstdint>

#include "asu/cost_model.hpp"

namespace lmas::asu {

/// Parameters of the emulated machine (Figure 2): H hosts with memory and
/// processor, D ASUs with processor + disk, a host/ASU speed ratio c, and
/// disk / network properties used by the embedded simulators.
struct MachineParams {
  unsigned num_hosts = 1;
  unsigned num_asus = 8;

  /// Ratio of host to ASU processing power (the paper's `c`).
  double c = 8.0;

  /// Record payload size used for I/O and network timing. The evaluation
  /// sorts 128-byte records with 4-byte keys.
  std::size_t record_bytes = 128;

  /// Sequential aggregate disk transfer rate, bytes/s. The paper's disk
  /// model is exactly this: a base rate with read-ahead and write-behind,
  /// no seek/rotation modeling (all experiment I/O is sequential). The
  /// default is an aggregate (multi-spindle brick) rate chosen so that
  /// sequential I/O does not bind in the Figure 9 regime — the paper's
  /// curves are CPU-shaped, with processors saturating first.
  double disk_rate = 640e6;

  /// Host<->ASU link bandwidth (bytes/s) and per-message latency. The
  /// paper assumes processors saturate before individual links; defaults
  /// keep links non-binding, and ablations can lower them.
  double link_bandwidth = 250e6;
  double link_latency = 50e-6;

  /// Per-node NIC aggregate bandwidth (bytes/s). Hosts talk to many ASUs;
  /// the default is large so the paper's processor-saturates-first regime
  /// holds.
  double host_nic_bandwidth = 5e9;
  double asu_nic_bandwidth = 1e9;

  /// Memory bounds (bytes). ASU memory bounds the distribute order alpha
  /// and packet size; host memory bounds run length beta.
  std::size_t asu_memory = std::size_t(8) << 20;
  std::size_t host_memory = std::size_t(256) << 20;

  /// Timing source for functor execution. false (default): charge the
  /// declared CostModel (deterministic). true: execute-and-measure — the
  /// paper's emulator methodology — time the real functor code on the
  /// emulation host with a fine-grained clock and scale the elapsed time
  /// into emulated host-seconds by `measured_scale` (then by the node's
  /// relative speed, as the paper does). Nondeterministic across runs.
  bool measured_timing = false;
  double measured_scale = 25.0;

  /// Fraction of each ASU's CPU consumed by competing applications
  /// (network storage is shared; Section 3.3 notes the load distribution
  /// cannot be determined statically when ASUs are shared). 0 = dedicated.
  double asu_background_load = 0.0;

  /// Width of utilization-recorder bins, seconds.
  double util_bin = 0.05;

  CostModel cost;

  [[nodiscard]] double disk_seconds(std::size_t bytes) const noexcept {
    return double(bytes) / disk_rate;
  }
  [[nodiscard]] double link_seconds(std::size_t bytes) const noexcept {
    return double(bytes) / link_bandwidth;
  }
};

}  // namespace lmas::asu

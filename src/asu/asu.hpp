#pragma once

/// Umbrella header for the active-storage machine model.
#include "asu/cost_model.hpp"
#include "asu/disk.hpp"
#include "asu/network.hpp"
#include "asu/node.hpp"
#include "asu/params.hpp"
#include "asu/topology.hpp"

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "asu/node.hpp"
#include "asu/params.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

/// Conservative lookahead for sharded simulation of a machine with these
/// parameters (sim::ShardedEngine, DESIGN.md §14): the minimum virtual
/// time any cross-node message needs to propagate. Every transfer pays at
/// least `link_latency` (Network::sample_latency returns it as the floor;
/// fault delay windows only ever add to it), so no node can influence
/// another sooner than that — which is exactly the window width a
/// conservative parallel simulation may safely advance without hearing
/// from other shards. Returns 0 for a degenerate zero-latency topology;
/// the sharded engine rejects that at shards > 1.
[[nodiscard]] inline double shard_lookahead(
    const MachineParams& params) noexcept {
  return params.link_latency > 0 ? params.link_latency : 0.0;
}

/// Host<->ASU interconnect: one full-duplex link per (host, ASU) pair,
/// plus per-node NIC serialization. The paper's network model only uses
/// host-ASU communication and assumes processors saturate before links;
/// the defaults preserve that regime while still charging transfer time.
class Network {
 public:
  Network(sim::Engine& eng, const MachineParams& params, unsigned num_hosts,
          unsigned num_asus)
      : eng_(&eng),
        params_(params),
        num_hosts_(num_hosts),
        num_asus_(num_asus) {
    links_.reserve(std::size_t(num_hosts) * num_asus);
    for (unsigned h = 0; h < num_hosts; ++h) {
      for (unsigned a = 0; a < num_asus; ++a) {
        links_.push_back(std::make_unique<sim::Resource>(
            eng, "link.h" + std::to_string(h) + ".a" + std::to_string(a),
            params.util_bin));
      }
    }
  }

  /// Move `bytes` between two nodes. Host<->ASU pairs (the only kind the
  /// paper's model uses) occupy their dedicated link; same-tier transfers
  /// charge only the two NICs plus latency; a node-to-itself transfer is
  /// free. All transfers serialize on sender and receiver NICs.
  [[nodiscard]] sim::Task<> transfer(Node& from, Node& to, std::size_t bytes) {
    if (&from == &to) co_return;
    co_await from.nic_transfer(bytes);
    if (from.is_asu() != to.is_asu()) {
      sim::Resource& l = link(from, to);
      co_await l.use(params_.link_seconds(bytes));
    }
    co_await eng_->sleep(sample_latency());
    co_await to.nic_transfer(bytes);
  }

  [[nodiscard]] const MachineParams& params() const noexcept {
    return params_;
  }

  // ---- fault windows: link delay / jitter ---------------------------

  /// Open a delay window: every transfer pays `extra` additional latency
  /// plus uniform jitter in [0, jitter). The jitter stream is a named
  /// sim::Rng stream owned by the injector, so the perturbation replays
  /// bit-identically per seed.
  void set_link_delay(double extra, double jitter, sim::Rng jitter_rng) {
    delay_active_ = true;
    extra_latency_ = extra;
    jitter_ = jitter;
    jitter_rng_ = jitter_rng;
  }
  void clear_link_delay() noexcept { delay_active_ = false; }
  [[nodiscard]] bool link_delay_active() const noexcept {
    return delay_active_;
  }

  /// Per-message propagation latency. Outside a delay window this returns
  /// the configured constant and draws nothing — fault-free runs must not
  /// consume randomness or perturb digests.
  [[nodiscard]] double sample_latency() {
    if (!delay_active_) return params_.link_latency;
    double d = params_.link_latency + extra_latency_;
    if (jitter_ > 0) d += jitter_rng_.uniform(0.0, jitter_);
    return d;
  }

  /// Health change board shared by every node of the owning cluster
  /// (null for a bare Network in unit tests).
  [[nodiscard]] HealthBoard* health_board() const noexcept { return board_; }
  void set_health_board(HealthBoard* board) noexcept { board_ = board; }

  [[nodiscard]] sim::Resource& link(const Node& a, const Node& b) {
    const Node& host = a.is_asu() ? b : a;
    const Node& asu = a.is_asu() ? a : b;
    assert(!host.is_asu() && asu.is_asu());
    return *links_[std::size_t(host.id()) * num_asus_ + asu.id()];
  }

 private:
  sim::Engine* eng_;
  MachineParams params_;
  unsigned num_hosts_;
  unsigned num_asus_;
  std::vector<std::unique_ptr<sim::Resource>> links_;
  bool delay_active_ = false;
  double extra_latency_ = 0;
  double jitter_ = 0;
  sim::Rng jitter_rng_;
  HealthBoard* board_ = nullptr;
};

/// The emulated machine: H hosts, D ASUs, interconnect (Figure 2).
class Cluster {
 public:
  Cluster(sim::Engine& eng, const MachineParams& params)
      : eng_(&eng), params_(params), board_(eng) {
    hosts_.reserve(params.num_hosts);
    for (unsigned h = 0; h < params.num_hosts; ++h) {
      hosts_.push_back(
          std::make_unique<Node>(eng, NodeKind::Host, h, params));
      hosts_.back()->set_health_board(&board_);
    }
    asus_.reserve(params.num_asus);
    for (unsigned a = 0; a < params.num_asus; ++a) {
      asus_.push_back(std::make_unique<Node>(eng, NodeKind::Asu, a, params));
      asus_.back()->set_health_board(&board_);
    }
    net_ = std::make_unique<Network>(eng, params, params.num_hosts,
                                     params.num_asus);
    net_->set_health_board(&board_);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] const MachineParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] unsigned num_hosts() const noexcept {
    return unsigned(hosts_.size());
  }
  [[nodiscard]] unsigned num_asus() const noexcept {
    return unsigned(asus_.size());
  }
  [[nodiscard]] Node& host(unsigned i) { return *hosts_.at(i); }
  [[nodiscard]] Node& asu(unsigned i) { return *asus_.at(i); }
  [[nodiscard]] Network& network() noexcept { return *net_; }
  [[nodiscard]] HealthBoard& health_board() noexcept { return board_; }

  /// Node by (tier, index) — the fault layer's addressing scheme.
  [[nodiscard]] Node& node(NodeKind kind, unsigned i) {
    return kind == NodeKind::Host ? host(i) : asu(i);
  }

 private:
  sim::Engine* eng_;
  MachineParams params_;
  HealthBoard board_;
  std::vector<std::unique_ptr<Node>> hosts_;
  std::vector<std::unique_ptr<Node>> asus_;
  std::unique_ptr<Network> net_;
};

}  // namespace lmas::asu

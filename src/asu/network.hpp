#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "asu/node.hpp"
#include "asu/params.hpp"
#include "asu/topology.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

/// Interconnect of a (possibly hierarchical) machine. Inside a rack the
/// model is the paper's: one full-duplex link per (host, ASU) pair plus
/// per-node NIC serialization, processors assumed to saturate before
/// links. With a hierarchical TopologySpec (racks > 1) a cross-rack
/// transfer additionally occupies the oversubscribed spine uplink of both
/// endpoint racks and pays the spine tier's latency on top of the rack
/// tier's. A flat spec (racks == 1, the default via TopologySpec::flat)
/// creates no spine resources and charges byte-identically to the
/// pre-topology flat model.
class Network {
 public:
  Network(sim::Engine& eng, const TopologySpec& topo)
      : eng_(&eng), topo_(topo) {
    topo_.validate();
    const MachineParams& p = topo_.machine;
    links_.reserve(std::size_t(p.num_hosts) * p.num_asus);
    for (unsigned h = 0; h < p.num_hosts; ++h) {
      for (unsigned a = 0; a < p.num_asus; ++a) {
        links_.push_back(std::make_unique<sim::Resource>(
            eng, "link.h" + std::to_string(h) + ".a" + std::to_string(a),
            p.util_bin));
      }
    }
    // Spine uplinks exist only for hierarchical shapes: a flat topology
    // must not register extra resources (metrics fingerprints of the
    // pinned goldens enumerate resource names).
    if (topo_.hierarchical()) {
      spines_.reserve(topo_.racks);
      for (unsigned r = 0; r < topo_.racks; ++r) {
        spines_.push_back(std::make_unique<sim::Resource>(
            eng, "spine.r" + std::to_string(r), p.util_bin));
      }
    }
  }

  /// Flat-machine adapter: the pre-topology constructor shape.
  Network(sim::Engine& eng, const MachineParams& params)
      : Network(eng, TopologySpec::flat(params)) {}

  /// Move `bytes` between two nodes. Host<->ASU pairs (the only kind the
  /// paper's model uses) occupy their dedicated rack link; same-tier
  /// transfers charge only the two NICs plus latency; a node-to-itself
  /// transfer is free. Cross-rack transfers additionally serialize on the
  /// source and destination racks' spine uplinks (each charged at the
  /// spine tier's oversubscribed rate) and pay the summed rack + spine
  /// latency. All transfers serialize on sender and receiver NICs.
  [[nodiscard]] sim::Task<> transfer(Node& from, Node& to, std::size_t bytes) {
    if (&from == &to) co_return;
    co_await from.nic_transfer(bytes);
    if (from.is_asu() != to.is_asu()) {
      sim::Resource& l = link(from, to);
      co_await l.use(topo_.rack.seconds(bytes));
    }
    if (topo_.hierarchical()) {
      const unsigned ra = rack_of(from);
      const unsigned rb = rack_of(to);
      if (ra != rb) {
        co_await spines_[ra]->use(topo_.spine.seconds(bytes));
        co_await spines_[rb]->use(topo_.spine.seconds(bytes));
        co_await eng_->sleep(sample_latency() + topo_.spine.latency);
        co_await to.nic_transfer(bytes);
        co_return;
      }
    }
    co_await eng_->sleep(sample_latency());
    co_await to.nic_transfer(bytes);
  }

  [[nodiscard]] const MachineParams& params() const noexcept {
    return topo_.machine;
  }
  [[nodiscard]] const TopologySpec& topology() const noexcept { return topo_; }

  // ---- fault windows: link delay / jitter ---------------------------

  /// Open a delay window: every transfer pays `extra` additional latency
  /// plus uniform jitter in [0, jitter). The jitter stream is a named
  /// sim::Rng stream owned by the injector, so the perturbation replays
  /// bit-identically per seed.
  void set_link_delay(double extra, double jitter, sim::Rng jitter_rng) {
    delay_active_ = true;
    extra_latency_ = extra;
    jitter_ = jitter;
    jitter_rng_ = jitter_rng;
  }
  void clear_link_delay() noexcept { delay_active_ = false; }
  [[nodiscard]] bool link_delay_active() const noexcept {
    return delay_active_;
  }

  /// Per-message rack-tier propagation latency. Outside a delay window
  /// this returns the configured constant and draws nothing — fault-free
  /// runs must not consume randomness or perturb digests. Cross-rack
  /// transfers add the spine tier's latency on top (see transfer).
  [[nodiscard]] double sample_latency() {
    if (!delay_active_) return topo_.rack.latency;
    double d = topo_.rack.latency + extra_latency_;
    if (jitter_ > 0) d += jitter_rng_.uniform(0.0, jitter_);
    return d;
  }

  /// Health change board shared by every node of the owning cluster
  /// (null for a bare Network in unit tests).
  [[nodiscard]] HealthBoard* health_board() const noexcept { return board_; }
  void set_health_board(HealthBoard* board) noexcept { board_ = board; }

  [[nodiscard]] sim::Resource& link(const Node& a, const Node& b) {
    const Node& host = a.is_asu() ? b : a;
    const Node& asu = a.is_asu() ? a : b;
    assert(!host.is_asu() && asu.is_asu());
    return *links_[std::size_t(host.id()) * topo_.machine.num_asus + asu.id()];
  }

  /// Rack `r`'s spine uplink (hierarchical topologies only).
  [[nodiscard]] sim::Resource& spine(unsigned r) { return *spines_.at(r); }

  /// Rack a node lives in, per the topology's block partition.
  [[nodiscard]] unsigned rack_of(const Node& n) const noexcept {
    return n.is_asu() ? topo_.rack_of_asu(n.id()) : topo_.rack_of_host(n.id());
  }

 private:
  sim::Engine* eng_;
  TopologySpec topo_;
  std::vector<std::unique_ptr<sim::Resource>> links_;
  std::vector<std::unique_ptr<sim::Resource>> spines_;
  bool delay_active_ = false;
  double extra_latency_ = 0;
  double jitter_ = 0;
  sim::Rng jitter_rng_;
  HealthBoard* board_ = nullptr;
};

/// The emulated machine: H hosts, D ASUs, interconnect (Figure 2) —
/// described by a TopologySpec (node counts and leaf parameters come from
/// its embedded MachineParams; racks/spine/speed vectors shape everything
/// above the leaves).
class Cluster {
 public:
  Cluster(sim::Engine& eng, const TopologySpec& topo)
      : eng_(&eng), topo_(topo), board_(eng) {
    topo_.validate();
    const MachineParams& params = topo_.machine;
    hosts_.reserve(params.num_hosts);
    for (unsigned h = 0; h < params.num_hosts; ++h) {
      hosts_.push_back(std::make_unique<Node>(eng, NodeKind::Host, h, params,
                                              topo_.host_multiplier(h)));
      hosts_.back()->set_health_board(&board_);
    }
    asus_.reserve(params.num_asus);
    for (unsigned a = 0; a < params.num_asus; ++a) {
      asus_.push_back(std::make_unique<Node>(eng, NodeKind::Asu, a, params,
                                             topo_.asu_multiplier(a)));
      asus_.back()->set_health_board(&board_);
    }
    net_ = std::make_unique<Network>(eng, topo_);
    net_->set_health_board(&board_);
  }

  /// Flat-machine adapter: the pre-topology constructor shape.
  Cluster(sim::Engine& eng, const MachineParams& params)
      : Cluster(eng, TopologySpec::flat(params)) {}

  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] const MachineParams& params() const noexcept {
    return topo_.machine;
  }
  [[nodiscard]] const TopologySpec& topology() const noexcept { return topo_; }
  [[nodiscard]] unsigned num_hosts() const noexcept {
    return unsigned(hosts_.size());
  }
  [[nodiscard]] unsigned num_asus() const noexcept {
    return unsigned(asus_.size());
  }
  [[nodiscard]] Node& host(unsigned i) { return *hosts_.at(i); }
  [[nodiscard]] Node& asu(unsigned i) { return *asus_.at(i); }
  [[nodiscard]] Network& network() noexcept { return *net_; }
  [[nodiscard]] HealthBoard& health_board() noexcept { return board_; }

  /// Node by (tier, index) — the fault layer's addressing scheme.
  [[nodiscard]] Node& node(NodeKind kind, unsigned i) {
    return kind == NodeKind::Host ? host(i) : asu(i);
  }

 private:
  sim::Engine* eng_;
  TopologySpec topo_;
  HealthBoard board_;
  std::vector<std::unique_ptr<Node>> hosts_;
  std::vector<std::unique_ptr<Node>> asus_;
  std::unique_ptr<Network> net_;
};

}  // namespace lmas::asu

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "asu/node.hpp"
#include "asu/params.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace lmas::asu {

/// Host<->ASU interconnect: one full-duplex link per (host, ASU) pair,
/// plus per-node NIC serialization. The paper's network model only uses
/// host-ASU communication and assumes processors saturate before links;
/// the defaults preserve that regime while still charging transfer time.
class Network {
 public:
  Network(sim::Engine& eng, const MachineParams& params, unsigned num_hosts,
          unsigned num_asus)
      : eng_(&eng),
        params_(params),
        num_hosts_(num_hosts),
        num_asus_(num_asus) {
    links_.reserve(std::size_t(num_hosts) * num_asus);
    for (unsigned h = 0; h < num_hosts; ++h) {
      for (unsigned a = 0; a < num_asus; ++a) {
        links_.push_back(std::make_unique<sim::Resource>(
            eng, "link.h" + std::to_string(h) + ".a" + std::to_string(a),
            params.util_bin));
      }
    }
  }

  /// Move `bytes` between two nodes. Host<->ASU pairs (the only kind the
  /// paper's model uses) occupy their dedicated link; same-tier transfers
  /// charge only the two NICs plus latency; a node-to-itself transfer is
  /// free. All transfers serialize on sender and receiver NICs.
  [[nodiscard]] sim::Task<> transfer(Node& from, Node& to, std::size_t bytes) {
    if (&from == &to) co_return;
    co_await from.nic_transfer(bytes);
    if (from.is_asu() != to.is_asu()) {
      sim::Resource& l = link(from, to);
      co_await l.use(params_.link_seconds(bytes));
    }
    co_await eng_->sleep(params_.link_latency);
    co_await to.nic_transfer(bytes);
  }

  [[nodiscard]] const MachineParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] sim::Resource& link(const Node& a, const Node& b) {
    const Node& host = a.is_asu() ? b : a;
    const Node& asu = a.is_asu() ? a : b;
    assert(!host.is_asu() && asu.is_asu());
    return *links_[std::size_t(host.id()) * num_asus_ + asu.id()];
  }

 private:
  sim::Engine* eng_;
  MachineParams params_;
  unsigned num_hosts_;
  unsigned num_asus_;
  std::vector<std::unique_ptr<sim::Resource>> links_;
};

/// The emulated machine: H hosts, D ASUs, interconnect (Figure 2).
class Cluster {
 public:
  Cluster(sim::Engine& eng, const MachineParams& params)
      : eng_(&eng), params_(params) {
    hosts_.reserve(params.num_hosts);
    for (unsigned h = 0; h < params.num_hosts; ++h) {
      hosts_.push_back(
          std::make_unique<Node>(eng, NodeKind::Host, h, params));
    }
    asus_.reserve(params.num_asus);
    for (unsigned a = 0; a < params.num_asus; ++a) {
      asus_.push_back(std::make_unique<Node>(eng, NodeKind::Asu, a, params));
    }
    net_ = std::make_unique<Network>(eng, params, params.num_hosts,
                                     params.num_asus);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return *eng_; }
  [[nodiscard]] const MachineParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] unsigned num_hosts() const noexcept {
    return unsigned(hosts_.size());
  }
  [[nodiscard]] unsigned num_asus() const noexcept {
    return unsigned(asus_.size());
  }
  [[nodiscard]] Node& host(unsigned i) { return *hosts_.at(i); }
  [[nodiscard]] Node& asu(unsigned i) { return *asus_.at(i); }
  [[nodiscard]] Network& network() noexcept { return *net_; }

 private:
  sim::Engine* eng_;
  MachineParams params_;
  std::vector<std::unique_ptr<Node>> hosts_;
  std::vector<std::unique_ptr<Node>> asus_;
  std::unique_ptr<Network> net_;
};

}  // namespace lmas::asu

#include "check/suites.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "asu/network.hpp"
#include "check/generators.hpp"
#include "core/adaptive.hpp"
#include "core/dsm_sort.hpp"
#include "core/pipeline.hpp"
#include "extmem/sort.hpp"
#include "fault/fault.hpp"
#include "extmem/stream.hpp"
#include "obs/latency.hpp"
#include "sim/sim.hpp"
#include "tenant/tenant.hpp"

namespace lmas::check {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string cfg_str(const asu::MachineParams& mp,
                    const core::DsmSortConfig& cfg) {
  return fmt("H=%u D=%u c=%.0f n=%zu alpha=%u K=2^%u dist=%s router=%s "
             "splitters=%s asus=%d merge=%d seed=0x%llx",
             mp.num_hosts, mp.num_asus, mp.c, cfg.total_records, cfg.alpha,
             cfg.log2_alpha_beta, core::key_dist_name(cfg.key_dist),
             core::router_kind_name(cfg.sort_router),
             cfg.splitters == core::DsmSortConfig::Splitters::Range
                 ? "range"
                 : "sampled",
             int(cfg.distribute_on_asus), int(cfg.run_merge_pass),
             static_cast<unsigned long long>(cfg.seed));
}

std::uint64_t metrics_fingerprint(const core::DsmSortReport& rep) {
  return sim::fnv1a64(rep.metrics.dump());
}

// ---- permutation ---------------------------------------------------

std::optional<std::string> prop_permutation(sim::Rng& rng, unsigned size) {
  const std::size_t n = 1 + rng.below(std::size_t(256) * size);
  const auto keys = gen_keys(rng, n);

  em::Stream<em::KeyRecord> in(em::make_memory_bte());
  for (std::size_t i = 0; i < n; ++i) {
    in.push_back({keys[i], std::uint32_t(i)});
  }
  em::SortOptions opt;
  // Tiny run-formation memory so even small inputs exercise multi-run
  // merging; fan-in 2..5 forces multiple merge passes.
  opt.memory_bytes = std::max<std::size_t>(1, 8 * (1 + rng.below(8)));
  opt.max_fan_in = 2 + rng.below(4);
  em::Stream<em::KeyRecord> out(em::make_memory_bte());
  em::sort_stream(in, out, opt);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> got;
  got.reserve(n);
  out.rewind();
  std::uint32_t prev = 0;
  while (auto r = out.read()) {
    if (!got.empty() && r->key < prev) {
      return fmt("output not sorted at position %zu: %u after %u",
                 got.size(), r->key, prev);
    }
    prev = r->key;
    got.emplace_back(r->key, r->id);
  }
  if (got.size() != n) {
    return fmt("record count changed: %zu in, %zu out", n, got.size());
  }
  // ids are unique, so multiset equality reduces to set equality of
  // (key, id) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> want;
  want.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    want.emplace_back(keys[i], std::uint32_t(i));
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  if (want != got) {
    return fmt("output is not a permutation of the input (n=%zu)", n);
  }
  return std::nullopt;
}

// ---- packet order --------------------------------------------------

sim::Task<> plan_producer(core::StageOutput& out, asu::Node& from,
                          std::vector<core::Packet> pkts) {
  for (auto& p : pkts) {
    co_await out.emit(from, std::move(p));
  }
  out.producer_done();
}

sim::Task<> plan_consumer(sim::Channel<core::Packet>& in,
                          std::vector<core::Packet>& got) {
  while (auto p = co_await in.recv()) {
    got.push_back(std::move(*p));
  }
}

std::optional<std::string> prop_packet_order(sim::Rng& rng, unsigned size) {
  PacketPlan plan = gen_packet_plan(rng, size);
  constexpr core::RouterKind kRouters[] = {
      core::RouterKind::Static, core::RouterKind::RoundRobin,
      core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded};
  const core::RouterKind kind = kRouters[rng.below(std::size(kRouters))];

  asu::MachineParams mp;
  mp.num_hosts = plan.targets;   // consumers
  mp.num_asus = plan.producers;  // producers
  sim::Engine eng;
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, plan.targets, /*capacity_packets=*/4);
  std::vector<asu::Node*> nodes;
  for (unsigned t = 0; t < plan.targets; ++t) {
    nodes.push_back(&cluster.host(t));
  }
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{
          .record_bytes = mp.record_bytes,
          .endpoints = inboxes.endpoints(nodes),
          .router = core::make_router(
              {.kind = kind, .rng = rng.split(), .total_subsets = plan.subsets}),
          .producers = plan.producers,
          .window_per_producer = 4,
          .name = "prop.stage"});

  std::size_t packets_sent = 0;
  for (unsigned p = 0; p < plan.producers; ++p) {
    packets_sent += plan.per_producer[p].size();
    eng.spawn(plan_producer(out, cluster.asu(p),
                            std::move(plan.per_producer[p])));
  }
  std::vector<std::vector<core::Packet>> got(plan.targets);
  for (unsigned t = 0; t < plan.targets; ++t) {
    eng.spawn(plan_consumer(inboxes.inbox(t), got[t]));
  }
  eng.run();

  std::size_t packets_got = 0, records_got = 0;
  for (unsigned t = 0; t < plan.targets; ++t) {
    // Per (producer, subset), the seqs seen at one instance must be a
    // strictly increasing subsequence of the producer's emission order.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> last;
    for (const auto& p : got[t]) {
      ++packets_got;
      records_got += p.records.size();
      const auto key = std::make_pair(p.run_id, p.subset);
      auto [it, fresh] = last.try_emplace(key, p.seq);
      if (!fresh) {
        if (p.seq <= it->second) {
          return fmt("instance %u saw producer %u subset %u seq %u after "
                     "seq %u (router=%s)",
                     t, p.run_id, p.subset, p.seq, it->second,
                     core::router_kind_name(kind));
        }
        it->second = p.seq;
      }
      // Records stay together and in order within the packet.
      for (std::size_t r = 0; r < p.records.size(); ++r) {
        if (p.records[r].id != std::uint32_t(r)) {
          return fmt("packet records reordered at instance %u", t);
        }
      }
    }
  }
  if (packets_got != packets_sent || records_got != plan.total_records) {
    return fmt("lost traffic: %zu/%zu packets, %zu/%zu records "
               "(router=%s)",
               packets_got, packets_sent, records_got, plan.total_records,
               core::router_kind_name(kind));
  }
  if (eng.unfinished_tasks() != 0) {
    return fmt("%zu tasks still blocked after run", eng.unfinished_tasks());
  }
  return std::nullopt;
}

// ---- conservation --------------------------------------------------

std::optional<std::string> prop_conservation(sim::Rng& rng, unsigned size) {
  const asu::MachineParams mp = gen_machine(rng, size);
  const core::DsmSortConfig cfg = gen_dsm_config(rng, size);
  const core::DsmSortReport rep = run_dsm_sort(mp, cfg);

  if (rep.records_in != cfg.total_records) {
    return fmt("records_in %zu != n %zu [%s]", rep.records_in,
               cfg.total_records, cfg_str(mp, cfg).c_str());
  }
  if (rep.records_stored != rep.records_in) {
    return fmt("pass 1 stored %zu of %zu records [%s]", rep.records_stored,
               rep.records_in, cfg_str(mp, cfg).c_str());
  }
  if (!rep.checksum_ok) {
    return fmt("key checksum not conserved [%s]", cfg_str(mp, cfg).c_str());
  }
  if (!rep.subsets_ok) {
    return fmt("records crossed subset boundaries [%s]",
               cfg_str(mp, cfg).c_str());
  }
  if (!rep.runs_sorted_ok) {
    return fmt("stored runs not sorted [%s]", cfg_str(mp, cfg).c_str());
  }
  if (cfg.run_merge_pass) {
    if (rep.records_final != rep.records_in) {
      return fmt("pass 2 emitted %zu of %zu records [%s]",
                 rep.records_final, rep.records_in,
                 cfg_str(mp, cfg).c_str());
    }
    if (!rep.final_sorted_ok) {
      return fmt("pass 2 output not globally sorted [%s]",
                 cfg_str(mp, cfg).c_str());
    }
  }
  return std::nullopt;
}

// ---- SR balance ----------------------------------------------------

std::optional<std::string> prop_sr_balance(sim::Rng& rng, unsigned size) {
  const std::size_t k = 1 + rng.below(std::max(2u, size));
  const unsigned subsets = 1 + unsigned(rng.below(8));
  core::SimpleRandomizationRouter router(rng.split());
  const std::vector<core::RouteTarget> targets(k);

  for (unsigned s = 0; s < subsets; ++s) {
    const std::size_t n_s = 1 + rng.below(16 * std::size_t(size));
    std::vector<std::size_t> count(k, 0);
    core::Packet p;
    p.subset = s;
    for (std::size_t i = 0; i < n_s; ++i) {
      const std::size_t idx = router.pick(p, targets);
      if (idx >= k) return fmt("pick returned %zu for k=%zu", idx, k);
      ++count[idx];
    }
    // Randomized cycling: every full cycle touches each target once, so
    // after n_s picks each target holds floor or ceil of n_s / k.
    const std::size_t lo = n_s / k;
    const std::size_t hi = lo + (n_s % k == 0 ? 0 : 1);
    for (std::size_t t = 0; t < k; ++t) {
      if (count[t] < lo || count[t] > hi) {
        return fmt("subset %u target %zu got %zu packets; bound [%zu, %zu] "
                   "with n_s=%zu k=%zu",
                   s, t, count[t], lo, hi, n_s, k);
      }
    }
  }
  return std::nullopt;
}

// ---- predictor -----------------------------------------------------

/// Declared tolerance: the analytic model prices aggregate station work
/// and takes the pipeline max; it ignores startup ramp, packet
/// quantization and interleaving, so at property-test scale (n = 2^13,
/// where fixed overheads are proportionally large) the emulated time can
/// sit up to ~2.5x above the bound. 3.0 leaves margin without letting a
/// mispriced cost term through.
constexpr double kPredictorTolerance = 3.0;

std::optional<std::string> prop_predictor(sim::Rng& rng, unsigned size) {
  asu::MachineParams mp;
  mp.num_hosts = 1 + unsigned(rng.below(2));
  mp.num_asus = 2 + unsigned(rng.below(std::max(2u, size)));
  mp.c = 2.0 * double(1 + rng.below(8));

  core::DsmSortConfig cfg;
  // Large enough that the modeled per-record terms dominate the fixed
  // startup/latency overheads the model leaves unpriced.
  cfg.total_records = std::size_t(1) << 15;
  cfg.log2_alpha_beta = 12;
  // The model's regime: enough subsets that static partitioning spreads
  // them evenly over the hosts (alpha >= 2H, divisible by H) — with
  // fewer, one host carries everything while the model divides by H —
  // and beta >= 64, because shorter runs (alpha -> K) are dominated by
  // per-packet overheads the model deliberately leaves unpriced. The
  // paper's configurations never operate outside either bound.
  cfg.alpha = 1u << (2 + rng.below(5));
  cfg.distribute_on_asus = true;
  cfg.key_dist = core::KeyDist::Uniform;
  cfg.splitters = core::DsmSortConfig::Splitters::Range;
  cfg.sort_router = core::RouterKind::Static;
  cfg.seed = rng.next();

  const double predicted = core::predict_pass1(mp, cfg).seconds;
  const core::DsmSortReport rep = run_dsm_sort(mp, cfg);
  if (!rep.ok()) {
    return fmt("run failed validation [%s]", cfg_str(mp, cfg).c_str());
  }
  const double actual = rep.pass1_seconds;
  if (predicted <= 0 || actual <= 0) {
    return fmt("non-positive time: predicted=%g actual=%g [%s]", predicted,
               actual, cfg_str(mp, cfg).c_str());
  }
  const double ratio = actual / predicted;
  if (ratio > kPredictorTolerance || ratio < 1.0 / kPredictorTolerance) {
    return fmt("predict_pass1=%.4fs vs emulated=%.4fs (ratio %.2f outside "
               "[%.2f, %.2f]) [%s]",
               predicted, actual, ratio, 1.0 / kPredictorTolerance,
               kPredictorTolerance, cfg_str(mp, cfg).c_str());
  }
  return std::nullopt;
}

// ---- digest --------------------------------------------------------

std::optional<std::string> prop_digest(sim::Rng& rng, unsigned size) {
  const asu::MachineParams mp = gen_machine(rng, size);
  core::DsmSortConfig cfg = gen_dsm_config(rng, size);
  cfg.total_records = std::size_t(1) << 10;  // digest cares about replay,
  cfg.log2_alpha_beta = 8;                   // not scale — keep runs tiny
  cfg.alpha = std::min(cfg.alpha, 1u << 8);

  const core::DsmSortReport a = run_dsm_sort(mp, cfg);
  const core::DsmSortReport b = run_dsm_sort(mp, cfg);
  if (a.digest != b.digest) {
    return fmt("same config, different digests: 0x%016llx vs 0x%016llx "
               "[%s]",
               static_cast<unsigned long long>(a.digest),
               static_cast<unsigned long long>(b.digest),
               cfg_str(mp, cfg).c_str());
  }
  if (metrics_fingerprint(a) != metrics_fingerprint(b)) {
    return fmt("same config, different metric snapshots [%s]",
               cfg_str(mp, cfg).c_str());
  }
  if (a.sim_events != b.sim_events || a.makespan != b.makespan) {
    return fmt("same config, different event counts or makespans [%s]",
               cfg_str(mp, cfg).c_str());
  }
  // A different seed must move the digest — but only in a regime where
  // the seed feeds the timing. Deterministic keys (sorted/reverse) or
  // quantile splitters make bucket sizes seed-independent, and the
  // simulator prices work by record counts, so such configs genuinely
  // replay the same execution under any seed (the harness caught both).
  // Pin the sensitivity check to ASU-side distribute with uniform keys,
  // range splitters and alpha >= 8: there bucket counts are multinomial
  // in the seed, so packet boundaries — and the digest — must move.
  // (The passive baseline ships fixed-size raw packets, so it too is
  // seed-insensitive by construction.)
  core::DsmSortConfig sens = cfg;
  sens.key_dist = core::KeyDist::Uniform;
  sens.splitters = core::DsmSortConfig::Splitters::Range;
  sens.distribute_on_asus = true;
  sens.alpha = std::max(sens.alpha, 8u);
  core::DsmSortConfig other = sens;
  other.seed = sens.seed + 1;
  const core::DsmSortReport s1 = run_dsm_sort(mp, sens);
  const core::DsmSortReport s2 = run_dsm_sort(mp, other);
  if (s1.digest == s2.digest) {
    return fmt("different seeds, same digest 0x%016llx [%s]",
               static_cast<unsigned long long>(s1.digest),
               cfg_str(mp, sens).c_str());
  }
  return std::nullopt;
}

// ---- fault conservation --------------------------------------------

std::optional<std::string> prop_fault_conservation(sim::Rng& rng,
                                                   unsigned size) {
  const asu::MachineParams mp = gen_machine(rng, size);
  core::DsmSortConfig cfg = gen_dsm_config(rng, size);
  // Fault plans perturb pass 1; keep runs single-pass so the measured
  // horizon brackets the whole faulted execution.
  cfg.run_merge_pass = false;

  const core::DsmSortReport base = run_dsm_sort(mp, cfg);
  if (!base.ok()) {
    return fmt("fault-free baseline failed validation [%s]",
               cfg_str(mp, cfg).c_str());
  }
  cfg.faults = gen_fault_plan(rng, mp, base.pass1_seconds, size);

  const core::DsmSortReport rep = run_dsm_sort(mp, cfg);
  if (rep.records_stored != rep.records_in) {
    return fmt("faults lost records: stored %zu of %zu (%zu fault events) "
               "[%s]",
               rep.records_stored, rep.records_in, cfg.faults.size(),
               cfg_str(mp, cfg).c_str());
  }
  if (!rep.checksum_ok) {
    return fmt("key checksum not conserved under faults [%s]",
               cfg_str(mp, cfg).c_str());
  }
  if (!rep.subsets_ok) {
    return fmt("records crossed subset boundaries under faults [%s]",
               cfg_str(mp, cfg).c_str());
  }
  if (!rep.runs_sorted_ok) {
    return fmt("stored runs not sorted under faults (retry re-ordering "
               "leaked through seq-keyed store) [%s]",
               cfg_str(mp, cfg).c_str());
  }
  if (rep.digest == base.digest) {
    return fmt("fault plan (%zu events) left the digest unchanged [%s]",
               cfg.faults.size(), cfg_str(mp, cfg).c_str());
  }
  // Same seed + same plan replay bit-identically.
  const core::DsmSortReport again = run_dsm_sort(mp, cfg);
  if (again.digest != rep.digest) {
    return fmt("same fault plan, different digests: 0x%016llx vs 0x%016llx "
               "[%s]",
               static_cast<unsigned long long>(rep.digest),
               static_cast<unsigned long long>(again.digest),
               cfg_str(mp, cfg).c_str());
  }
  return std::nullopt;
}

// ---- fault routing -------------------------------------------------

sim::Task<> fault_consumer(asu::Node& node, sim::Channel<core::Packet>& in,
                           std::vector<core::Packet>& got) {
  while (auto p = co_await in.recv()) {
    // Pump-pause convention: accepted packets wait out a crash window.
    while (!node.running()) co_await node.health_wait();
    got.push_back(std::move(*p));
  }
}

struct RoutedRun {
  std::size_t packets = 0;
  std::size_t records = 0;
  std::vector<std::vector<core::Packet>> got;  // per target
  std::uint64_t digest = 0;
  std::size_t unfinished = 0;
  double makespan = 0;
};

/// Drive a PacketPlan through one StageOutput with consumers on ASUs (the
/// crashable tier) under `faults`; empty plan = fault-free baseline.
RoutedRun run_routed_plan(const PacketPlan& plan, core::RouterKind kind,
                          sim::Rng router_rng, std::uint64_t fault_seed,
                          const fault::FaultPlan& faults) {
  asu::MachineParams mp;
  mp.num_hosts = plan.producers;
  mp.num_asus = plan.targets;
  sim::Engine eng;
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, plan.targets, /*capacity_packets=*/4);
  std::vector<asu::Node*> nodes;
  for (unsigned t = 0; t < plan.targets; ++t) {
    nodes.push_back(&cluster.asu(t));
  }
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{
          .record_bytes = mp.record_bytes,
          .endpoints = inboxes.endpoints(nodes),
          .router = core::make_router(
              {.kind = kind, .rng = router_rng, .total_subsets = plan.subsets}),
          .producers = plan.producers,
          .window_per_producer = 4,
          .name = "prop.fault_stage"});
  std::unique_ptr<fault::FaultInjector> inj;
  if (!faults.empty()) {
    out.set_fault_retry(faults.retry_timeout, faults.max_retries);
    inj = std::make_unique<fault::FaultInjector>(
        cluster, faults,
        sim::Rng(fault_seed).stream(sim::stream_id("faults")));
    eng.spawn(inj->run(), "fault-injector");
  }

  RoutedRun res;
  res.got.resize(plan.targets);
  for (unsigned p = 0; p < plan.producers; ++p) {
    eng.spawn(plan_producer(out, cluster.host(p), plan.per_producer[p]));
  }
  for (unsigned t = 0; t < plan.targets; ++t) {
    eng.spawn(fault_consumer(cluster.asu(t), inboxes.inbox(t), res.got[t]));
  }
  eng.run();
  for (const auto& g : res.got) {
    res.packets += g.size();
    for (const auto& p : g) res.records += p.records.size();
  }
  res.digest = eng.digest();
  res.unfinished = eng.unfinished_tasks();
  res.makespan = eng.now();
  return res;
}

std::optional<std::string> prop_fault_routing(sim::Rng& rng, unsigned size) {
  PacketPlan plan = gen_packet_plan(rng, size);
  constexpr core::RouterKind kRouters[] = {
      core::RouterKind::Static, core::RouterKind::RoundRobin,
      core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded};
  const core::RouterKind kind = kRouters[rng.below(std::size(kRouters))];
  const sim::Rng router_rng = rng.split();
  const std::uint64_t fault_seed = rng.next();

  std::size_t packets_sent = 0;
  for (const auto& pp : plan.per_producer) packets_sent += pp.size();

  asu::MachineParams shape;
  shape.num_hosts = plan.producers;
  shape.num_asus = plan.targets;

  const RoutedRun base =
      run_routed_plan(plan, kind, router_rng, fault_seed, {});
  if (base.unfinished != 0) {
    return fmt("baseline left %zu tasks blocked", base.unfinished);
  }
  const fault::FaultPlan faults =
      gen_fault_plan(rng, shape, base.makespan, size);

  const RoutedRun faulted =
      run_routed_plan(plan, kind, router_rng, fault_seed, faults);
  if (faulted.unfinished != 0) {
    return fmt("%zu tasks still blocked under faults (%zu events, "
               "router=%s)",
               faulted.unfinished, faults.size(),
               core::router_kind_name(kind));
  }
  if (faulted.packets != packets_sent ||
      faulted.records != plan.total_records) {
    return fmt("lost traffic under faults: %zu/%zu packets, %zu/%zu "
               "records (%zu events, router=%s)",
               faulted.packets, packets_sent, faulted.records,
               plan.total_records, faults.size(),
               core::router_kind_name(kind));
  }
  // Records stay together and in order within every delivered packet.
  for (unsigned t = 0; t < plan.targets; ++t) {
    for (const auto& p : faulted.got[t]) {
      for (std::size_t r = 0; r < p.records.size(); ++r) {
        if (p.records[r].id != std::uint32_t(r)) {
          return fmt("packet records reordered at instance %u under faults",
                     t);
        }
      }
    }
  }
  // Router balance: when the plan never shrinks the target set (no
  // crashes), SR's floor/ceil bound must survive slowdowns and link
  // delays untouched — degraded nodes stay routing targets.
  const bool has_crash = std::any_of(
      faults.events.begin(), faults.events.end(), [](const auto& e) {
        return e.kind == fault::FaultSpec::Kind::Crash;
      });
  if (!has_crash && kind == core::RouterKind::SimpleRandomization) {
    std::map<std::uint32_t, std::size_t> subset_totals;
    std::map<std::uint32_t, std::vector<std::size_t>> subset_counts;
    for (unsigned t = 0; t < plan.targets; ++t) {
      for (const auto& p : faulted.got[t]) {
        ++subset_totals[p.subset];
        auto& c = subset_counts[p.subset];
        c.resize(plan.targets, 0);
        ++c[t];
      }
    }
    for (const auto& [s, total] : subset_totals) {
      const std::size_t lo = total / plan.targets;
      const std::size_t hi = lo + (total % plan.targets == 0 ? 0 : 1);
      for (std::size_t t = 0; t < subset_counts[s].size(); ++t) {
        if (subset_counts[s][t] < lo || subset_counts[s][t] > hi) {
          return fmt("SR balance broken under crash-free faults: subset %u "
                     "target %zu got %zu, bound [%zu, %zu]",
                     s, t, subset_counts[s][t], lo, hi);
        }
      }
    }
  }
  // Same plan, same seeds: the faulted run replays bit-identically.
  const RoutedRun again =
      run_routed_plan(plan, kind, router_rng, fault_seed, faults);
  if (again.digest != faulted.digest) {
    return fmt("same fault plan, different digests (router=%s)",
               core::router_kind_name(kind));
  }
  return std::nullopt;
}

// ---- load-manager router hot-swap ----------------------------------

sim::Task<> switch_controller(sim::Engine& eng, core::SwitchableRouter* sw,
                              std::vector<double> delays) {
  bool promote = true;
  for (double d : delays) {
    co_await eng.sleep(d);
    if (promote) {
      sw->promote();
    } else {
      sw->demote();
    }
    promote = !promote;
  }
}

struct SwitchedRun {
  std::vector<std::vector<core::Packet>> got;  // per target
  std::uint64_t digest = 0;
  std::size_t unfinished = 0;
};

SwitchedRun run_switched_plan(const PacketPlan& plan,
                              core::RouterKind baseline,
                              core::RouterKind dynamic,
                              sim::Rng base_rng, sim::Rng dyn_rng,
                              const std::vector<double>& toggles) {
  asu::MachineParams mp;
  mp.num_hosts = plan.targets;
  mp.num_asus = plan.producers;
  sim::Engine eng;
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, plan.targets, /*capacity_packets=*/4);
  std::vector<asu::Node*> nodes;
  for (unsigned t = 0; t < plan.targets; ++t) {
    nodes.push_back(&cluster.host(t));
  }
  // The production composition: metrics wrapper outside, hot-swap
  // decorator inside, concrete policies innermost.
  auto sw = std::make_unique<core::SwitchableRouter>(
      core::make_router(
          {.kind = baseline, .rng = base_rng, .total_subsets = plan.subsets}),
      core::make_router(
          {.kind = dynamic, .rng = dyn_rng, .total_subsets = plan.subsets}));
  core::SwitchableRouter* sw_raw = sw.get();
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{
          .record_bytes = mp.record_bytes,
          .endpoints = inboxes.endpoints(nodes),
          .router = std::make_unique<core::InstrumentedRouter>(
              std::move(sw), eng, "lmswitch"),
          .producers = plan.producers,
          .window_per_producer = 4,
          .name = "prop.lmswitch"});

  SwitchedRun res;
  res.got.resize(plan.targets);
  for (unsigned p = 0; p < plan.producers; ++p) {
    eng.spawn(plan_producer(out, cluster.asu(p), plan.per_producer[p]));
  }
  for (unsigned t = 0; t < plan.targets; ++t) {
    eng.spawn(plan_consumer(inboxes.inbox(t), res.got[t]));
  }
  eng.spawn(switch_controller(eng, sw_raw, toggles));
  eng.run();
  res.digest = eng.digest();
  res.unfinished = eng.unfinished_tasks();
  return res;
}

std::optional<std::string> prop_lm_switch(sim::Rng& rng, unsigned size) {
  PacketPlan plan = gen_packet_plan(rng, size);
  constexpr core::RouterKind kRouters[] = {
      core::RouterKind::Static, core::RouterKind::RoundRobin,
      core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded};
  const core::RouterKind baseline = kRouters[rng.below(std::size(kRouters))];
  const core::RouterKind dynamic = kRouters[rng.below(std::size(kRouters))];
  const sim::Rng base_rng = rng.split();
  const sim::Rng dyn_rng = rng.split();
  // Promote/demote at random instants spanning microseconds to
  // milliseconds, so swaps land before, inside, and after the burst of
  // traffic.
  std::vector<double> toggles(1 + rng.below(8));
  for (double& d : toggles) d = double(1 + rng.below(1000)) * 1e-5;

  std::size_t packets_sent = 0;
  for (const auto& pp : plan.per_producer) packets_sent += pp.size();

  const SwitchedRun run =
      run_switched_plan(plan, baseline, dynamic, base_rng, dyn_rng, toggles);
  if (run.unfinished != 0) {
    return fmt("%zu tasks still blocked after hot-swapped run",
               run.unfinished);
  }
  // Hot-swapping the policy mid-run must not weaken the set contract at
  // all: every per-(producer, subset) stream still arrives seq-ordered at
  // every instance, packets stay intact, nothing is lost.
  std::size_t packets_got = 0, records_got = 0;
  for (unsigned t = 0; t < plan.targets; ++t) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> last;
    for (const auto& p : run.got[t]) {
      ++packets_got;
      records_got += p.records.size();
      const auto key = std::make_pair(p.run_id, p.subset);
      auto [it, fresh] = last.try_emplace(key, p.seq);
      if (!fresh) {
        if (p.seq <= it->second) {
          return fmt("instance %u saw producer %u subset %u seq %u after "
                     "seq %u across a router swap (%s -> %s)",
                     t, p.run_id, p.subset, p.seq, it->second,
                     core::router_kind_name(baseline),
                     core::router_kind_name(dynamic));
        }
        it->second = p.seq;
      }
      for (std::size_t r = 0; r < p.records.size(); ++r) {
        if (p.records[r].id != std::uint32_t(r)) {
          return fmt("packet records reordered at instance %u under swap",
                     t);
        }
      }
    }
  }
  if (packets_got != packets_sent || records_got != plan.total_records) {
    return fmt("lost traffic across router swaps: %zu/%zu packets, "
               "%zu/%zu records (%zu toggles)",
               packets_got, packets_sent, records_got, plan.total_records,
               toggles.size());
  }
  // Same plan + same toggle schedule replays bit-identically.
  const SwitchedRun again =
      run_switched_plan(plan, baseline, dynamic, base_rng, dyn_rng, toggles);
  if (again.digest != run.digest) {
    return fmt("same toggle schedule, different digests (%s -> %s)",
               core::router_kind_name(baseline),
               core::router_kind_name(dynamic));
  }
  return std::nullopt;
}

// ---- load-manager migration ----------------------------------------

struct MigrationMove {
  double delay = 0;       // sleep before this move
  std::size_t instance = 0;
  std::size_t node = 0;   // index into the host list
};

sim::Task<> migration_controller(sim::Engine& eng, core::StageOutput& out,
                                 std::vector<asu::Node*> hosts,
                                 std::vector<MigrationMove> moves) {
  for (const auto& m : moves) {
    co_await eng.sleep(m.delay);
    out.set_target_node(m.instance, *hosts[m.node]);
  }
}

struct MigratedRun {
  std::vector<std::vector<core::Packet>> got;  // per target
  std::uint64_t digest = 0;
  std::size_t unfinished = 0;
};

MigratedRun run_migrated_plan(const PacketPlan& plan, core::RouterKind kind,
                              sim::Rng router_rng,
                              const std::vector<MigrationMove>& moves) {
  asu::MachineParams mp;
  // One spare host beyond the consumers: a legal migration target that
  // never hosted an instance, so re-pins also exercise "fresh" nodes.
  mp.num_hosts = plan.targets + 1;
  mp.num_asus = plan.producers;
  sim::Engine eng;
  asu::Cluster cluster(eng, mp);

  core::StageInboxes inboxes(eng, plan.targets, /*capacity_packets=*/4);
  std::vector<asu::Node*> nodes;
  for (unsigned t = 0; t < plan.targets; ++t) {
    nodes.push_back(&cluster.host(t));
  }
  std::vector<asu::Node*> hosts = nodes;
  hosts.push_back(&cluster.host(plan.targets));
  core::StageOutput out(
      eng, cluster.network(),
      core::StageSpec{
          .record_bytes = mp.record_bytes,
          .endpoints = inboxes.endpoints(nodes),
          .router = core::make_router(
              {.kind = kind, .rng = router_rng, .total_subsets = plan.subsets}),
          .producers = plan.producers,
          .window_per_producer = 4,
          .name = "prop.lmmigrate"});

  MigratedRun res;
  res.got.resize(plan.targets);
  for (unsigned p = 0; p < plan.producers; ++p) {
    eng.spawn(plan_producer(out, cluster.asu(p), plan.per_producer[p]));
  }
  for (unsigned t = 0; t < plan.targets; ++t) {
    eng.spawn(plan_consumer(inboxes.inbox(t), res.got[t]));
  }
  eng.spawn(migration_controller(eng, out, hosts, moves));
  eng.run();
  res.digest = eng.digest();
  res.unfinished = eng.unfinished_tasks();
  return res;
}

std::optional<std::string> prop_lm_migration(sim::Rng& rng, unsigned size) {
  PacketPlan plan = gen_packet_plan(rng, size);
  constexpr core::RouterKind kRouters[] = {
      core::RouterKind::Static, core::RouterKind::RoundRobin,
      core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded};
  const core::RouterKind kind = kRouters[rng.below(std::size(kRouters))];
  const sim::Rng router_rng = rng.split();

  std::vector<MigrationMove> moves(1 + rng.below(8));
  for (auto& m : moves) {
    m.delay = double(1 + rng.below(1000)) * 1e-5;
    m.instance = rng.below(plan.targets);
    m.node = rng.below(plan.targets + 1);  // incl. the spare host
  }

  // The emitted multiset, keyed (producer, subset, seq) — unique per
  // packet by construction.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> want;
  for (const auto& pp : plan.per_producer) {
    for (const auto& p : pp) want.emplace_back(p.run_id, p.subset, p.seq);
  }
  std::sort(want.begin(), want.end());

  const MigratedRun run = run_migrated_plan(plan, kind, router_rng, moves);
  if (run.unfinished != 0) {
    return fmt("%zu tasks still blocked after migrated run",
               run.unfinished);
  }
  // Migration deliberately weakens the ordering half of the set contract:
  // re-pinning an endpoint changes the delivery path, so a later packet
  // can overtake an earlier one still in flight to the old location. What
  // must survive is conservation — the delivered multiset equals the
  // emitted multiset — and intra-packet record integrity.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> got;
  std::size_t records_got = 0;
  for (unsigned t = 0; t < plan.targets; ++t) {
    for (const auto& p : run.got[t]) {
      got.emplace_back(p.run_id, p.subset, p.seq);
      records_got += p.records.size();
      for (std::size_t r = 0; r < p.records.size(); ++r) {
        if (p.records[r].id != std::uint32_t(r)) {
          return fmt("packet records reordered at instance %u under "
                     "migration (router=%s)",
                     t, core::router_kind_name(kind));
        }
      }
    }
  }
  std::sort(got.begin(), got.end());
  if (got != want) {
    return fmt("delivered packet multiset differs from emitted under "
               "migration: %zu/%zu packets (%zu moves, router=%s)",
               got.size(), want.size(), moves.size(),
               core::router_kind_name(kind));
  }
  if (records_got != plan.total_records) {
    return fmt("lost records under migration: %zu/%zu (router=%s)",
               records_got, plan.total_records,
               core::router_kind_name(kind));
  }
  // Same plan + same move schedule replays bit-identically.
  const MigratedRun again = run_migrated_plan(plan, kind, router_rng, moves);
  if (again.digest != run.digest) {
    return fmt("same migration schedule, different digests (router=%s)",
               core::router_kind_name(kind));
  }
  return std::nullopt;
}

// ---- histogram -----------------------------------------------------

// The telemetry pipeline's accuracy contract: a log-bucketed
// LatencyHistogram's streamed nearest-rank quantile lands in the same
// bucket as the exact nearest-rank sample, so its midpoint answer is
// within the documented per-bucket relative error of the truth; and
// merging per-shard histograms is order- and grouping-independent in
// everything quantiles depend on (bucket counts, count, min, max).
std::optional<std::string> prop_histogram(sim::Rng& rng, unsigned size) {
  const std::size_t n = 1 + rng.below(std::size_t(512) * size);

  // Log-uniform samples spanning ~28 octaves, kept strictly inside the
  // bucketed range so neither the underflow nor overflow bucket (whose
  // answers are exact-min / exact-max, not midpoints) absorbs them.
  // A quarter of the draws repeat the previous value to exercise ties.
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!samples.empty() && rng.below(4) == 0) {
      samples.push_back(samples.back());
    } else {
      samples.push_back(std::exp2(rng.uniform(-20.0, 8.0)));
    }
  }

  obs::LatencyHistogram pooled;
  for (const double v : samples) pooled.observe(v);
  if (pooled.count() != n) {
    return fmt("pooled count %llu != n %zu",
               static_cast<unsigned long long>(pooled.count()), n);
  }

  // Streamed vs exact nearest-rank quantiles, within the documented
  // bound: both land in the same bucket, and the midpoint is at most
  // half a bucket width (<= kRelativeError, relative) from the sample.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(q * double(n))));
    const double exact = sorted[std::min(rank, n) - 1];
    const double streamed = pooled.quantile(q);
    const double tol =
        exact * obs::LatencyHistogram::kRelativeError * (1 + 1e-9) + 1e-12;
    if (std::abs(streamed - exact) > tol) {
      return fmt("q=%.2f streamed %.9g vs exact %.9g exceeds bound %.3g "
                 "(n=%zu)",
                 q, streamed, exact, tol, n);
    }
  }

  // Shard the samples round-robin, then merge the shards in two
  // different permutations and one nested grouping. Quantiles depend
  // only on bucket counts + min/max, all of which merge exactly, so
  // every merge order must agree with the pooled histogram bit-for-bit
  // on those — and therefore on every quantile.
  const std::size_t shards = 2 + rng.below(5);
  std::vector<obs::LatencyHistogram> parts(shards);
  for (std::size_t i = 0; i < n; ++i) parts[i % shards].observe(samples[i]);

  obs::LatencyHistogram fwd;
  for (const auto& p : parts) fwd.merge(p);
  obs::LatencyHistogram rev;
  for (std::size_t i = shards; i-- > 0;) rev.merge(parts[i]);
  obs::LatencyHistogram nested;  // (last..k) merged first, then (0..k)
  const std::size_t cut = rng.below(shards);
  obs::LatencyHistogram tail;
  for (std::size_t i = cut; i < shards; ++i) tail.merge(parts[i]);
  for (std::size_t i = 0; i < cut; ++i) nested.merge(parts[i]);
  nested.merge(tail);

  for (const obs::LatencyHistogram* m : {&fwd, &rev, &nested}) {
    if (m->count() != pooled.count() ||
        m->bucket_counts() != pooled.bucket_counts() ||
        m->min() != pooled.min() || m->max() != pooled.max()) {
      return fmt("merge order changed counts/min/max (shards=%zu n=%zu)",
                 shards, n);
    }
    for (const double q : {0.5, 0.9, 0.99}) {
      if (m->quantile(q) != pooled.quantile(q)) {
        return fmt("merge order changed q=%.2f (shards=%zu n=%zu)", q,
                   shards, n);
      }
    }
  }
  return std::nullopt;
}

// ---- tenant-conservation / tenant-arrival ----------------------------

/// Random multi-tenant serving config: 1-3 tenants with random fair-share
/// and arrival weights, mixed job shapes, a random admission cap, and
/// load management on for roughly half the cases (so migration and
/// router promotion run against concurrent jobs).
tenant::TenancyConfig gen_tenancy(sim::Rng& rng, unsigned size,
                                  asu::MachineParams& mp) {
  mp = asu::MachineParams{};
  mp.num_hosts = 1 + unsigned(rng.below(2));
  mp.num_asus = 2 + unsigned(rng.below(3));

  tenant::TenancyConfig cfg;
  static const char* kNames[] = {"t0", "t1", "t2"};
  const std::size_t tenants = 1 + rng.below(3);
  for (std::size_t t = 0; t < tenants; ++t) {
    tenant::TenantSpec ts;
    ts.name = kNames[t];
    ts.fair_share_weight = 0.5 + rng.uniform(0.0, 1.5);
    ts.arrival_weight = 0.5 + rng.uniform(0.0, 1.5);
    const std::size_t entries = 1 + rng.below(2);
    for (std::size_t e = 0; e < entries; ++e) {
      tenant::JobMixEntry m;
      switch (rng.below(3)) {
        case 0: m.kind = tenant::JobKind::DsmSort; break;
        case 1: m.kind = tenant::JobKind::ActiveScan; break;
        default: m.kind = tenant::JobKind::RTreeBulkLoad; break;
      }
      m.weight = 0.5 + rng.uniform(0.0, 1.5);
      m.records = 128 * (1 + rng.below(1 + size));
      ts.mix.push_back(m);
    }
    cfg.tenants.push_back(std::move(ts));
  }
  cfg.total_jobs = 1 + rng.below(2 + size / 2);
  cfg.offered_rate = 2.0 + rng.uniform(0.0, 48.0);
  cfg.seed = rng.next();
  cfg.max_in_flight = 1 + rng.below(3);
  cfg.pressure_limit = rng.below(2) == 0 ? 0.0 : 0.02 * (1 + rng.below(8));
  cfg.job_alpha = 2 + unsigned(rng.below(3));
  cfg.job_log2_alpha_beta = 7 + unsigned(rng.below(3));
  if (rng.below(2) == 0) {
    cfg.load_manager.mode = core::LoadManagerMode::Manage;
    cfg.load_manager.period = 0.002 + rng.uniform(0.0, 0.01);
    cfg.load_manager.promote_hysteresis = 1 + rng.below(2);
    cfg.load_manager.migrate_hysteresis = 1 + rng.below(2);
  }
  return cfg;
}

std::string tenancy_str(const asu::MachineParams& mp,
                        const tenant::TenancyConfig& cfg) {
  return fmt("H=%u D=%u tenants=%zu jobs=%zu rate=%.1f cap=%zu plim=%.2f "
             "mode=%d seed=0x%llx",
             mp.num_hosts, mp.num_asus, cfg.tenants.size(), cfg.total_jobs,
             cfg.offered_rate, cfg.max_in_flight, cfg.pressure_limit,
             int(cfg.load_manager.mode),
             static_cast<unsigned long long>(cfg.seed));
}

/// Per-tenant record conservation under concurrent jobs, admission
/// waits, fair-share charging, and (half the time) cross-job load
/// management with migration: every admitted job completes, and each
/// tenant's records-out multiset size equals its records-in.
std::optional<std::string> prop_tenant_conservation(sim::Rng& rng,
                                                    unsigned size) {
  asu::MachineParams mp;
  const tenant::TenancyConfig cfg = gen_tenancy(rng, size, mp);
  const tenant::TenancyReport rep = tenant::run_tenancy(mp, cfg);

  if (rep.jobs_submitted != cfg.total_jobs ||
      rep.jobs_completed != cfg.total_jobs) {
    return fmt("jobs lost: submitted=%zu completed=%zu of %zu (%s)",
               rep.jobs_submitted, rep.jobs_completed, cfg.total_jobs,
               tenancy_str(mp, cfg).c_str());
  }
  if (!rep.conservation_ok || !rep.ok()) {
    return fmt("conservation violated (%s)", tenancy_str(mp, cfg).c_str());
  }
  std::size_t tenant_jobs = 0;
  for (const auto& t : rep.tenants) {
    tenant_jobs += t.jobs_completed;
    if (!t.conservation_ok || t.records_in != t.records_out) {
      return fmt("tenant %s leaked records: in=%zu out=%zu (%s)",
                 t.name.c_str(), t.records_in, t.records_out,
                 tenancy_str(mp, cfg).c_str());
    }
  }
  if (tenant_jobs != cfg.total_jobs) {
    return fmt("per-tenant job counts sum to %zu, want %zu (%s)",
               tenant_jobs, cfg.total_jobs, tenancy_str(mp, cfg).c_str());
  }
  return std::nullopt;
}

/// The open-arrival determinism contract: the same config reproduces the
/// same schedule element-for-element (and the same fingerprint, and —
/// re-running the full sim — the same execution digest), every event is
/// well-formed against the tenant set, and a different seed moves the
/// fingerprint.
std::optional<std::string> prop_tenant_arrival(sim::Rng& rng,
                                               unsigned size) {
  asu::MachineParams mp;
  tenant::TenancyConfig cfg = gen_tenancy(rng, size, mp);

  const tenant::ArrivalProcess a(cfg);
  const tenant::ArrivalProcess b(cfg);
  if (a.fingerprint() != b.fingerprint()) {
    return fmt("same config, different fingerprints (%s)",
               tenancy_str(mp, cfg).c_str());
  }
  if (a.events().size() != cfg.total_jobs ||
      b.events().size() != cfg.total_jobs) {
    return fmt("schedule length %zu, want %zu (%s)", a.events().size(),
               cfg.total_jobs, tenancy_str(mp, cfg).c_str());
  }
  double prev = 0;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const tenant::ArrivalEvent& ea = a.events()[i];
    const tenant::ArrivalEvent& eb = b.events()[i];
    if (ea.time != eb.time || ea.tenant != eb.tenant ||
        ea.kind != eb.kind || ea.records != eb.records ||
        ea.job_seed != eb.job_seed) {
      return fmt("schedules diverge at arrival %zu (%s)", i,
                 tenancy_str(mp, cfg).c_str());
    }
    if (ea.time < prev || ea.tenant >= cfg.tenants.size()) {
      return fmt("malformed arrival %zu: t=%.9g tenant=%zu (%s)", i,
                 ea.time, ea.tenant, tenancy_str(mp, cfg).c_str());
    }
    prev = ea.time;
    bool in_mix = false;
    for (const auto& m : cfg.tenants[ea.tenant].mix) {
      in_mix = in_mix || (m.kind == ea.kind && m.records == ea.records);
    }
    if (!in_mix) {
      return fmt("arrival %zu not drawn from tenant %zu's mix (%s)", i,
                 ea.tenant, tenancy_str(mp, cfg).c_str());
    }
  }

  const std::uint64_t fp = a.fingerprint();
  cfg.seed += 1;
  const tenant::ArrivalProcess c(cfg);
  if (c.fingerprint() == fp) {
    return fmt("seed %llu and %llu share a fingerprint (%s)",
               static_cast<unsigned long long>(cfg.seed - 1),
               static_cast<unsigned long long>(cfg.seed),
               tenancy_str(mp, cfg).c_str());
  }
  cfg.seed -= 1;

  // Full-run determinism: the schedule contract extends through the sim
  // (same seed => same digest), with the report's fingerprint matching a
  // standalone ArrivalProcess of the same config. Kept small: two full
  // tenancy runs per case.
  cfg.total_jobs = std::min<std::size_t>(cfg.total_jobs, 3);
  const tenant::TenancyReport r1 = tenant::run_tenancy(mp, cfg);
  const tenant::TenancyReport r2 = tenant::run_tenancy(mp, cfg);
  if (r1.digest != r2.digest || r1.sim_events != r2.sim_events) {
    return fmt("rerun moved digest/events (%s)",
               tenancy_str(mp, cfg).c_str());
  }
  if (r1.arrival_fingerprint !=
      tenant::ArrivalProcess(cfg).fingerprint()) {
    return fmt("report fingerprint disagrees with ArrivalProcess (%s)",
               tenancy_str(mp, cfg).c_str());
  }
  return std::nullopt;
}

// ---- sharded-digest: shard-count invariance of the parallel engine ----
//
// A random PHOLD-style topology (node count, lookahead, hop probability,
// RNG seed all drawn per case) must produce a bit-identical canonical
// digest — and event count — when run serially (1 shard) and under
// conservative time windows at 2 and 4 shards. This is the ShardedEngine
// determinism contract (DESIGN.md §14) exercised over random models
// rather than the fixed unit-test workload. Each case also pins the
// zero-lookahead contract: a topology with no cross-shard latency must be
// rejected at construction, not discovered as a deadlocked window loop.

std::optional<std::string> prop_sharded_digest(sim::Rng& rng,
                                               unsigned size) {
  const auto nodes = std::uint32_t(4 + rng.below(8 * size));
  const double lookahead = 1e-5 * double(1 + rng.below(20));
  const double hop_prob = 0.2 + 0.6 * rng.uniform();
  const std::uint64_t model_seed = rng.next();
  const double horizon = 0.02;

  struct Hopper {
    double lookahead;
    double hop_prob;
    void operator()(sim::ShardContext& ctx,
                    const sim::ShardEvent& ev) const {
      sim::Rng& r = ctx.rng();
      const std::uint32_t n = ctx.engine().node_count();
      if (r.uniform() < hop_prob && n > 1) {
        auto dst = sim::LogicalNode(r.below(n));
        if (dst == ctx.node()) dst = (dst + 1) % n;
        ctx.send(dst, lookahead * (1.0 + r.uniform()), ev.payload + 1);
      } else {
        ctx.post(r.exponential(1000.0), ev.payload);
      }
    }
  };

  const auto run_at = [&](std::uint32_t shards) {
    sim::ShardedEngine eng(
        nodes,
        {.shards = shards, .lookahead = lookahead, .seed = model_seed},
        Hopper{lookahead, hop_prob});
    for (std::uint32_t n = 0; n < nodes; ++n) {
      eng.inject(n, n, 1e-6 * double(n % 5), n);
    }
    const std::uint64_t events = eng.run(horizon);
    return std::pair{eng.digest(), events};
  };

  const auto [serial_digest, serial_events] = run_at(1);
  if (serial_events == 0) {
    return fmt("degenerate case: no events (nodes=%u)", nodes);
  }
  for (const std::uint32_t shards : {2u, 4u}) {
    const auto [digest, events] = run_at(shards);
    if (events != serial_events) {
      return fmt("event count diverged at %u shards: %llu vs %llu "
                 "(nodes=%u lookahead=%g hop=%g)",
                 shards, static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(serial_events), nodes,
                 lookahead, hop_prob);
    }
    if (digest != serial_digest) {
      return fmt("digest diverged at %u shards "
                 "(nodes=%u lookahead=%g hop=%g)",
                 shards, nodes, lookahead, hop_prob);
    }
  }

  // Zero cross-shard latency: must throw, not deadlock (or quietly run).
  const auto zero_shards = std::uint32_t(2 + rng.below(3));
  try {
    sim::ShardedEngine bad(nodes, {.shards = zero_shards, .lookahead = 0.0},
                           Hopper{0.0, hop_prob});
    return fmt("zero lookahead accepted at %u shards", zero_shards);
  } catch (const std::invalid_argument&) {
    // expected
  }
  return std::nullopt;
}

// ---- topology conservation -----------------------------------------

std::optional<std::string> prop_topology_conservation(sim::Rng& rng,
                                                      unsigned size) {
  // The set contract is placement-free: where packets physically travel
  // (flat full bisection, or racks under an oversubscribed spine, with
  // heterogeneous node speeds) must never change what arrives. Run one
  // DSM-Sort config as an embedded job on a random topology AND on the
  // flat machine; both must conserve records, checksums, subset
  // boundaries, and run-sortedness.
  const asu::MachineParams mp = gen_machine(rng, size);
  core::DsmSortConfig cfg = gen_dsm_config(rng, size);
  cfg.run_merge_pass = false;  // embedded jobs are pass-1 only
  const asu::TopologySpec topo = gen_topology(rng, mp);

  const auto run_on = [&](const asu::TopologySpec& t)
      -> std::pair<core::DsmSortReport, std::string> {
    sim::Engine eng;
    asu::Cluster cluster(eng, t);
    core::DsmSortJob job(eng, cluster, cfg);
    eng.spawn(job.body(), "topo-conservation-job");
    eng.run();
    if (!job.finished()) return {{}, "job did not finish"};
    return {job.report(), ""};
  };

  for (const bool flat : {false, true}) {
    const auto& t = flat ? asu::TopologySpec::flat(mp) : topo;
    const auto [rep, err] = run_on(t);
    const char* shape = flat ? "flat" : "hierarchical";
    if (!err.empty()) {
      return fmt("%s (%s racks=%u) [%s]", err.c_str(), shape, t.racks,
                 cfg_str(mp, cfg).c_str());
    }
    if (rep.records_in != cfg.total_records ||
        rep.records_stored != rep.records_in) {
      return fmt("%s racks=%u: stored %zu of %zu records [%s]", shape,
                 t.racks, rep.records_stored, cfg.total_records,
                 cfg_str(mp, cfg).c_str());
    }
    if (!rep.checksum_ok) {
      return fmt("%s racks=%u: key checksum not conserved [%s]", shape,
                 t.racks, cfg_str(mp, cfg).c_str());
    }
    if (!rep.subsets_ok) {
      return fmt("%s racks=%u: records crossed subset boundaries [%s]",
                 shape, t.racks, cfg_str(mp, cfg).c_str());
    }
    if (!rep.runs_sorted_ok) {
      return fmt("%s racks=%u: stored runs not sorted [%s]", shape, t.racks,
                 cfg_str(mp, cfg).c_str());
    }
  }
  return std::nullopt;
}

// ---- pod balance ----------------------------------------------------

std::optional<std::string> prop_pod_balance(sim::Rng& rng, unsigned size) {
  // Balance contracts of the scale-out routers on (possibly) hierarchical
  // target sets. All load feedback is the running assignment count — the
  // balls-into-bins regime the mean-field model predicts.
  const std::size_t k = 2 + rng.below(std::max(2u, 2 * size));
  const std::size_t n = k * (8 + rng.below(32));
  const std::vector<core::RouteTarget> targets(k);

  asu::MachineParams mp;
  mp.num_asus = unsigned(k);
  const asu::TopologySpec topo = gen_topology(rng, mp);

  core::Packet pkt;  // subset 0 throughout
  std::vector<std::size_t> count(k, 0);
  const core::LoadProbe count_probe =
      [&count](std::span<const core::RouteTarget>, std::size_t i) {
        return double(count[i]);
      };

  // (1) SR's per-target floor/ceil cycle bound aggregates to per-rack
  // bounds: each rack's share lies within the sum of its targets' bounds.
  {
    core::SimpleRandomizationRouter sr(rng.split());
    std::vector<std::size_t> rack_count(topo.racks, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = sr.pick(pkt, targets);
      if (idx >= k) return fmt("SR pick %zu out of range k=%zu", idx, k);
      ++rack_count[topo.rack_of_asu(unsigned(idx))];
    }
    for (unsigned r = 0; r < topo.racks; ++r) {
      std::size_t width = 0;  // targets in rack r
      for (std::size_t i = 0; i < k; ++i) {
        width += topo.rack_of_asu(unsigned(i)) == r;
      }
      const std::size_t lo = width * (n / k);
      const std::size_t hi = width * (n / k + (n % k ? 1 : 0));
      if (rack_count[r] < lo || rack_count[r] > hi) {
        return fmt("SR rack %u got %zu picks, bounds [%zu, %zu] "
                   "(k=%zu n=%zu racks=%u width=%zu)",
                   r, rack_count[r], lo, hi, k, n, topo.racks, width);
      }
    }
  }

  // (2) d >= k is exact least-loaded: every pick lands on a target whose
  // probed load equals the global minimum, so counts stay within 1.
  {
    std::fill(count.begin(), count.end(), std::size_t{0});
    core::PowerOfDChoicesRouter pod(rng.split(), unsigned(k), count_probe);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = pod.pick(pkt, targets);
      if (idx >= k) return fmt("pod(k) pick %zu out of range k=%zu", idx, k);
      const auto min_now = *std::min_element(count.begin(), count.end());
      if (count[idx] != min_now) {
        return fmt("pod(d=k) picked load %zu, min was %zu (k=%zu pick %zu)",
                   count[idx], min_now, k, i);
      }
      ++count[idx];
    }
    const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
    if (*hi - *lo > 1) {
      return fmt("pod(d=k) spread %zu after %zu picks (k=%zu)", *hi - *lo,
                 n, k);
    }
  }

  // (3) d = 2 with count feedback: the mean-field gap is
  // log2(log2(k)) + O(1); assert a margin far above it — a failure means
  // the sampler stopped consulting load, not an unlucky seed.
  {
    std::fill(count.begin(), count.end(), std::size_t{0});
    core::PowerOfDChoicesRouter pod(rng.split(), 2, count_probe);
    for (std::size_t i = 0; i < n; ++i) ++count[pod.pick(pkt, targets)];
    const std::size_t max_count = *std::max_element(count.begin(),
                                                    count.end());
    if (max_count > n / k + 16) {
      return fmt("pod(2) max load %zu vs mean %zu (k=%zu n=%zu)",
                 max_count, n / k, k, n);
    }
  }

  // (4) d = 1 never consults load: even a target advertising zero load
  // forever must not absorb every pick.
  if (k >= 2) {
    const core::LoadProbe favor_zero =
        [](std::span<const core::RouteTarget>, std::size_t i) {
          return i == 0 ? 0.0 : 1e9;
        };
    core::PowerOfDChoicesRouter pod(rng.split(), 1, favor_zero);
    std::size_t zero_picks = 0;
    const std::size_t trials = std::max<std::size_t>(n, 64);
    for (std::size_t i = 0; i < trials; ++i) {
      zero_picks += pod.pick(pkt, targets) == 0;
    }
    if (zero_picks == trials) {
      return fmt("pod(1) always picked the advertised-idle target "
                 "(k=%zu trials=%zu)",
                 k, trials);
    }
  }
  return std::nullopt;
}

// ---- migration economy ---------------------------------------------

// The budgeted placer's safety contract. One managed DSM-Sort per case:
// random per-tick move/byte budgets, an aggressive control loop (short
// period, low hysteresis) so migrations actually fire, and — half the
// time — a random fault plan (crash windows included) underneath. The
// run must conserve records/checksums/subsets; every journaled placer
// tick must respect both budgets; and the managed run must replay
// bit-identically (plan + execute of concurrent pre-copy transfers is
// part of the digest).
std::optional<std::string> prop_migration_economy(sim::Rng& rng,
                                                  unsigned size) {
  asu::MachineParams mp = gen_machine(rng, size);
  mp.num_hosts = 2;  // migration needs somewhere to go
  core::DsmSortConfig cfg = gen_dsm_config(rng, size);
  // Static partitioning + a (usually) skewed distribution builds the
  // sustained imbalance the placer reacts to; single-pass so the
  // measured horizon brackets the managed run.
  cfg.sort_router = core::RouterKind::Static;
  cfg.run_merge_pass = false;
  if (rng.below(2) == 0) cfg.key_dist = core::KeyDist::Exponential;

  const core::DsmSortReport base = run_dsm_sort(mp, cfg);
  if (!base.ok()) {
    return fmt("unmanaged baseline failed validation [%s]",
               cfg_str(mp, cfg).c_str());
  }

  core::LoadManagerConfig lm;
  lm.mode = core::LoadManagerMode::Manage;
  lm.period = std::max(base.pass1_seconds, 1e-6) / 32.0;
  lm.promote_hysteresis = 1 + rng.below(2);
  lm.migrate_hysteresis = 1 + rng.below(2);
  lm.cooldown_samples = rng.below(3);
  lm.dwell_samples = 1 + rng.below(4);
  lm.budget_moves_per_tick = 1 + rng.below(3);
  // Half the time cap bytes per tick too (4 KiB .. 4 MiB — low caps make
  // state-heavy instances inadmissible, which the budget check must
  // still honor); otherwise unlimited.
  lm.budget_bytes_per_tick = rng.below(2) == 0
                                 ? std::size_t(-1)
                                 : std::size_t(1) << (12 + rng.below(11));
  lm.precopy_stall_fraction = rng.uniform(0.0, 0.5);
  cfg.load_manager = lm;
  if (rng.below(2) == 0) {
    cfg.faults = gen_fault_plan(rng, mp, base.pass1_seconds, size);
  }

  const core::DsmSortReport rep = run_dsm_sort(mp, cfg);
  if (rep.records_stored != rep.records_in || !rep.checksum_ok) {
    return fmt("managed run lost records: stored %zu of %zu, checksum %s "
               "(%zu migrations, %zu faults) [%s]",
               rep.records_stored, rep.records_in,
               rep.checksum_ok ? "ok" : "BAD",
               std::size_t(rep.lm_migrations), cfg.faults.size(),
               cfg_str(mp, cfg).c_str());
  }
  if (!rep.subsets_ok) {
    return fmt("records crossed subset boundaries under managed "
               "migration [%s]",
               cfg_str(mp, cfg).c_str());
  }

  // Budget accounting: the placer journals every admitted move with the
  // tick timestamp it was planned at. Group by identical time — one
  // group per manager tick — and check both budgets.
  std::map<double, std::pair<std::size_t, std::size_t>> ticks;
  for (const auto& d : rep.lm_decisions) {
    if (d.bytes < core::kMigrationOverheadBytes) {
      return fmt("placer decision at t=%.6f declares %zu bytes, below the "
                 "%zu-byte migration overhead [%s]",
                 d.time, d.bytes, core::kMigrationOverheadBytes,
                 cfg_str(mp, cfg).c_str());
    }
    auto& [moves, bytes] = ticks[d.time];
    ++moves;
    bytes += d.bytes;
  }
  for (const auto& [time, tally] : ticks) {
    if (tally.first > lm.budget_moves_per_tick) {
      return fmt("placer tick at t=%.6f admitted %zu moves over a budget "
                 "of %zu [%s]",
                 time, tally.first, lm.budget_moves_per_tick,
                 cfg_str(mp, cfg).c_str());
    }
    if (tally.second > lm.budget_bytes_per_tick) {
      return fmt("placer tick at t=%.6f admitted %zu bytes over a budget "
                 "of %zu [%s]",
                 time, tally.second, lm.budget_bytes_per_tick,
                 cfg_str(mp, cfg).c_str());
    }
  }
  if (rep.lm_migrations > rep.lm_decisions.size()) {
    return fmt("%zu migrations executed but only %zu placer decisions "
               "journaled [%s]",
               std::size_t(rep.lm_migrations), rep.lm_decisions.size(),
               cfg_str(mp, cfg).c_str());
  }

  // Same managed config (same budgets, same fault plan) replays
  // bit-identically.
  const core::DsmSortReport again = run_dsm_sort(mp, cfg);
  if (again.digest != rep.digest) {
    return fmt("managed run not deterministic: 0x%016llx vs 0x%016llx "
               "(%zu decisions) [%s]",
               static_cast<unsigned long long>(rep.digest),
               static_cast<unsigned long long>(again.digest),
               rep.lm_decisions.size(), cfg_str(mp, cfg).c_str());
  }
  return std::nullopt;
}

std::optional<Failure> run_suite(const char* name, std::size_t cases,
                                 std::uint64_t seed, unsigned min_size,
                                 unsigned max_size, const Property& prop) {
  Options opt;
  opt.suite = name;
  opt.cases = cases;
  opt.seed = seed;
  opt.min_size = min_size;
  opt.max_size = max_size;
  return forall(opt, prop);
}

}  // namespace

std::optional<Failure> suite_permutation(std::size_t cases,
                                         std::uint64_t seed) {
  return run_suite("permutation", cases, seed, 1, 16, prop_permutation);
}

std::optional<Failure> suite_packet_order(std::size_t cases,
                                          std::uint64_t seed) {
  return run_suite("packet-order", cases, seed, 1, 8, prop_packet_order);
}

std::optional<Failure> suite_conservation(std::size_t cases,
                                          std::uint64_t seed) {
  return run_suite("conservation", cases, seed, 1, 12, prop_conservation);
}

std::optional<Failure> suite_sr_balance(std::size_t cases,
                                        std::uint64_t seed) {
  return run_suite("sr-balance", cases, seed, 1, 16, prop_sr_balance);
}

std::optional<Failure> suite_predictor(std::size_t cases,
                                       std::uint64_t seed) {
  return run_suite("predictor", cases, seed, 1, 8, prop_predictor);
}

std::optional<Failure> suite_digest(std::size_t cases, std::uint64_t seed) {
  return run_suite("digest", cases, seed, 1, 6, prop_digest);
}

std::optional<Failure> suite_fault_conservation(std::size_t cases,
                                                std::uint64_t seed) {
  // Each case runs one baseline + two faulted DSM-Sorts; cap size to keep
  // a 100-case suite interactive.
  return run_suite("fault-conservation", cases, seed, 1, 8,
                   prop_fault_conservation);
}

std::optional<Failure> suite_fault_routing(std::size_t cases,
                                           std::uint64_t seed) {
  return run_suite("fault-routing", cases, seed, 1, 8, prop_fault_routing);
}

std::optional<Failure> suite_lm_switch(std::size_t cases,
                                       std::uint64_t seed) {
  return run_suite("lm-switch", cases, seed, 1, 8, prop_lm_switch);
}

std::optional<Failure> suite_lm_migration(std::size_t cases,
                                          std::uint64_t seed) {
  return run_suite("lm-migration", cases, seed, 1, 8, prop_lm_migration);
}

std::optional<Failure> suite_histogram(std::size_t cases,
                                       std::uint64_t seed) {
  return run_suite("histogram", cases, seed, 1, 16, prop_histogram);
}

std::optional<Failure> suite_tenant_conservation(std::size_t cases,
                                                 std::uint64_t seed) {
  // Each case is a full multi-tenant serving run (several concurrent
  // jobs); cap size like the other whole-sim suites.
  return run_suite("tenant-conservation", cases, seed, 1, 8,
                   prop_tenant_conservation);
}

std::optional<Failure> suite_tenant_arrival(std::size_t cases,
                                            std::uint64_t seed) {
  return run_suite("tenant-arrival", cases, seed, 1, 8,
                   prop_tenant_arrival);
}

std::optional<Failure> suite_sharded_digest(std::size_t cases,
                                            std::uint64_t seed) {
  // Each case runs the same random model three times (1, 2 and 4
  // shards); sized like the other whole-sim suites.
  return run_suite("sharded-digest", cases, seed, 1, 8,
                   prop_sharded_digest);
}

std::optional<Failure> suite_topology_conservation(std::size_t cases,
                                                   std::uint64_t seed) {
  // Each case runs one DSM-Sort twice (hierarchical + flat); sized like
  // the other whole-sim suites.
  return run_suite("topology-conservation", cases, seed, 1, 8,
                   prop_topology_conservation);
}

std::optional<Failure> suite_pod_balance(std::size_t cases,
                                         std::uint64_t seed) {
  return run_suite("pod-balance", cases, seed, 1, 16, prop_pod_balance);
}

std::optional<Failure> suite_migration_economy(std::size_t cases,
                                               std::uint64_t seed) {
  // Each case runs one baseline plus two managed DSM-Sorts (replay
  // included); sized like the other whole-sim suites.
  return run_suite("migration-economy", cases, seed, 1, 8,
                   prop_migration_economy);
}

const std::vector<SuiteInfo>& all_suites() {
  static const std::vector<SuiteInfo> kSuites = {
      {"permutation", &suite_permutation, 100},
      {"packet-order", &suite_packet_order, 100},
      {"conservation", &suite_conservation, 100},
      {"sr-balance", &suite_sr_balance, 100},
      {"predictor", &suite_predictor, 100},
      {"digest", &suite_digest, 100},
      {"fault-conservation", &suite_fault_conservation, 100},
      {"fault-routing", &suite_fault_routing, 100},
      {"lm-switch", &suite_lm_switch, 100},
      {"lm-migration", &suite_lm_migration, 100},
      {"histogram", &suite_histogram, 100},
      {"tenant-conservation", &suite_tenant_conservation, 100},
      {"tenant-arrival", &suite_tenant_arrival, 100},
      {"sharded-digest", &suite_sharded_digest, 100},
      {"topology-conservation", &suite_topology_conservation, 100},
      {"pod-balance", &suite_pod_balance, 100},
      {"migration-economy", &suite_migration_economy, 100},
  };
  return kSuites;
}

}  // namespace lmas::check

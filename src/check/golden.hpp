#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asu/params.hpp"
#include "core/dsm_sort.hpp"
#include "obs/json.hpp"

namespace lmas::check {

/// Golden-run regression: a handful of small, fully pinned DSM-Sort
/// configurations (miniature Figure 9 / Figure 10 shapes) whose execution
/// digests and metric-snapshot fingerprints are committed under
/// tests/golden/. Any behavioral drift in the engine, the pipeline, the
/// routers or the workload generators shows up as a digest mismatch here
/// before it silently shifts a figure.
///
/// Goldens pin behavior, not correctness — an intentional change to
/// scheduling, costs or seeding legitimately moves them. Regenerate with
/// `make regolden` (or `lmas_check regolden`) and commit the new file
/// together with the change that explains it.
struct GoldenCase {
  std::string name;
  asu::MachineParams machine;
  core::DsmSortConfig config;
};

/// The pinned configurations. Small on purpose (n = 2^14..2^15): the
/// digest covers every committed event, so size adds cost, not power.
[[nodiscard]] const std::vector<GoldenCase>& golden_cases();

struct GoldenResult {
  std::string name;
  std::uint64_t digest = 0;
  std::uint64_t metrics_fingerprint = 0;  // FNV-1a over the snapshot dump
  double pass1_seconds = 0;
  std::uint64_t records_in = 0;
  std::uint64_t sim_events = 0;
  bool ok = false;

  friend bool operator==(const GoldenResult&, const GoldenResult&) = default;
};

[[nodiscard]] GoldenResult run_golden_case(const GoldenCase& c);

/// Resolution order for the pinned file: $LMAS_GOLDEN_FILE, then the
/// build-time default (the committed tests/golden/golden_runs.json).
[[nodiscard]] std::string default_golden_path();

[[nodiscard]] obs::Json goldens_to_json(
    const std::vector<GoldenResult>& results);

/// nullopt when the file is missing, unparsable, or has the wrong schema.
[[nodiscard]] std::optional<std::vector<GoldenResult>> load_goldens(
    const std::string& path);

[[nodiscard]] bool write_goldens(const std::string& path,
                                 const std::vector<GoldenResult>& results);

struct GoldenMismatch {
  std::string name;
  std::string detail;
};

/// Field-by-field comparison of a fresh run against the pinned file;
/// empty means conformant. Cases present on one side only are mismatches.
[[nodiscard]] std::vector<GoldenMismatch> compare_goldens(
    const std::vector<GoldenResult>& pinned,
    const std::vector<GoldenResult>& fresh);

}  // namespace lmas::check

#include "check/property.hpp"

#include <cstdio>
#include <cstdlib>

namespace lmas::check {

namespace {

std::uint64_t case_seed(std::uint64_t base, std::string_view suite,
                        std::size_t i) {
  std::uint64_t s = base ^ sim::fnv1a64(suite) ^ sim::splitmix64_once(i + 1);
  return sim::splitmix64(s);
}

std::optional<std::string> run_case(const Property& prop, std::uint64_t seed,
                                    unsigned size) {
  sim::Rng rng = sim::Rng(seed).stream(sim::stream_id("property-case"));
  return prop(rng, size);
}

/// Smallest size (same seed) that still falsifies the property. Linear
/// from the bottom: properties here are cheap at small sizes, and the
/// minimum is what a human wants to debug.
Failure shrink(const Options& opt, const Property& prop, std::uint64_t seed,
               unsigned failing_size, std::string message) {
  Failure f{opt.suite, seed, failing_size, std::move(message)};
  for (unsigned size = opt.min_size; size < failing_size; ++size) {
    if (auto msg = run_case(prop, seed, size)) {
      f.size = size;
      f.message = std::move(*msg);
      break;
    }
  }
  return f;
}

}  // namespace

std::string Failure::repro() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "LMAS_CHECK_SEED=0x%016llx LMAS_CHECK_SIZE=%u "
                "lmas_check property --suite %s",
                static_cast<unsigned long long>(seed), size, suite.c_str());
  return buf;
}

std::string Failure::describe() const {
  char head[96];
  std::snprintf(head, sizeof head, "property '%s' falsified (seed=0x%016llx"
                ", size=%u)\n  ",
                suite.c_str(), static_cast<unsigned long long>(seed), size);
  return head + message + "\n  repro: " + repro();
}

std::optional<Failure> forall(Options opt, const Property& prop) {
  if (const char* e = std::getenv("LMAS_CHECK_CASES")) {
    opt.cases = std::strtoull(e, nullptr, 0);
  }
  if (opt.max_size < opt.min_size) opt.max_size = opt.min_size;

  // Pinned single-case mode: reproduce a reported failure exactly.
  if (const char* seed_env = std::getenv("LMAS_CHECK_SEED")) {
    const std::uint64_t seed = std::strtoull(seed_env, nullptr, 0);
    unsigned size = opt.max_size;
    if (const char* size_env = std::getenv("LMAS_CHECK_SIZE")) {
      size = unsigned(std::strtoul(size_env, nullptr, 0));
    }
    if (auto msg = run_case(prop, seed, size)) {
      return Failure{opt.suite, seed, size, std::move(*msg)};
    }
    return std::nullopt;
  }

  for (std::size_t i = 0; i < opt.cases; ++i) {
    // Ramp sizes so the earliest cases are the smallest: a generator or
    // property bug usually trips immediately at near-minimal input.
    const unsigned span = opt.max_size - opt.min_size;
    const unsigned size =
        opt.cases <= 1
            ? opt.max_size
            : opt.min_size + unsigned(span * i / (opt.cases - 1));
    const std::uint64_t seed = case_seed(opt.seed, opt.suite, i);
    if (auto msg = run_case(prop, seed, size)) {
      return shrink(opt, prop, seed, size, std::move(*msg));
    }
  }
  return std::nullopt;
}

}  // namespace lmas::check

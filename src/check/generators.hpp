#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "asu/params.hpp"
#include "asu/topology.hpp"
#include "core/dsm_sort.hpp"
#include "core/packet.hpp"
#include "core/workload.hpp"
#include "fault/plan.hpp"
#include "sim/random.hpp"

namespace lmas::check {

/// Generators for the property suites: machine shapes H×D×c, DSM-Sort
/// α/β/γ splits with α·β·γ = n, and workload shapes. All draw from the
/// per-case RNG only, so a (seed, size) pair fully determines the case.

/// Machine shape: 1–2 hosts, up to 2·size ASUs, c ∈ {2,4,...,16}.
/// Bandwidths stay at their defaults (the paper's processor-bound
/// regime); properties about other regimes override fields explicitly.
inline asu::MachineParams gen_machine(sim::Rng& rng, unsigned size) {
  asu::MachineParams mp;
  mp.num_hosts = 1 + unsigned(rng.below(2));
  mp.num_asus = 1 + unsigned(rng.below(std::max(2u, 2 * size)));
  mp.c = 2.0 * double(1 + rng.below(8));
  return mp;
}

/// A topology over a machine shape: 1–4 racks, spine latency/bandwidth
/// within an order of magnitude of the rack tier, oversubscription 1–4,
/// and (half the time) heterogeneous per-ASU speed multipliers in
/// [0.5, 2]. racks == 1 degenerates to the flat model, so suites drawing
/// from this generator cover both regimes.
inline asu::TopologySpec gen_topology(sim::Rng& rng,
                                      const asu::MachineParams& mp) {
  auto topo = asu::TopologySpec::flat(mp);
  topo.racks = 1 + unsigned(rng.below(4));
  if (topo.hierarchical()) {
    topo.spine.latency = mp.link_latency * (0.5 + rng.uniform(0.0, 4.0));
    topo.spine.bandwidth = mp.link_bandwidth * (0.5 + rng.uniform(0.0, 2.0));
    topo.spine.oversubscription = double(1 + rng.below(4));
  }
  if (rng.below(2) == 0) {
    topo.asu_speed.resize(mp.num_asus);
    for (auto& s : topo.asu_speed) s = rng.uniform(0.5, 2.0);
  }
  return topo;
}

/// One of the evaluation's key distributions: uniform, exponential, and
/// the adversarial shapes (pre-sorted, reverse-sorted, and the Figure 10
/// mid-run distribution shift).
inline core::KeyDist gen_key_dist(sim::Rng& rng) {
  constexpr core::KeyDist kAll[] = {
      core::KeyDist::Uniform,         core::KeyDist::Exponential,
      core::KeyDist::HalfUniformHalfExp, core::KeyDist::Sorted,
      core::KeyDist::ReverseSorted,
  };
  return kAll[rng.below(std::size(kAll))];
}

/// DSM-Sort configuration with a valid α·β·γ = n split: n = 2^log2_n,
/// K = α·β = 2^log2_ab ≤ n, α = 2^log2_a ≤ K, so γ = n / K ≥ 1 exactly.
/// Size scales n (2^10 .. 2^13) to keep a 100-case suite interactive.
inline core::DsmSortConfig gen_dsm_config(sim::Rng& rng, unsigned size) {
  core::DsmSortConfig cfg;
  const unsigned log2_n = 10 + unsigned(rng.below(1 + std::min(3u, size / 4)));
  const unsigned log2_ab = 6 + unsigned(rng.below(log2_n - 6 + 1));
  const unsigned log2_a = unsigned(rng.below(std::min(log2_ab, 8u) + 1));
  cfg.total_records = std::size_t(1) << log2_n;
  cfg.log2_alpha_beta = log2_ab;
  cfg.alpha = 1u << log2_a;
  cfg.distribute_on_asus = rng.below(8) != 0;  // occasionally the baseline
  cfg.key_dist = gen_key_dist(rng);
  cfg.splitters = rng.below(4) == 0 ? core::DsmSortConfig::Splitters::Sampled
                                    : core::DsmSortConfig::Splitters::Range;
  constexpr core::RouterKind kRouters[] = {
      core::RouterKind::Static, core::RouterKind::RoundRobin,
      core::RouterKind::SimpleRandomization, core::RouterKind::LeastLoaded};
  cfg.sort_router = kRouters[rng.below(std::size(kRouters))];
  cfg.run_merge_pass = rng.below(4) == 0;
  cfg.seed = rng.next();
  return cfg;
}

/// Key vector drawn from a random distribution (for container-level
/// permutation checks where the output records are directly accessible).
inline std::vector<std::uint32_t> gen_keys(sim::Rng& rng, std::size_t n) {
  core::KeyGenerator gen(gen_key_dist(rng), n, rng.split());
  return gen.take(n);
}

/// A routed packet workload: `producers` streams, each emitting packets
/// with random subsets and per-(producer, subset) sequence numbers —
/// exactly the partial order the paper's set contract must preserve.
/// Packet.run_id carries the producer id so consumers can check FIFO per
/// producer.
struct PacketPlan {
  unsigned producers = 1;
  unsigned subsets = 1;
  unsigned targets = 1;
  std::vector<std::vector<core::Packet>> per_producer;
  std::size_t total_records = 0;
};

inline PacketPlan gen_packet_plan(sim::Rng& rng, unsigned size) {
  PacketPlan plan;
  plan.producers = 1 + unsigned(rng.below(std::max(1u, size / 2) + 1));
  plan.subsets = 1 + unsigned(rng.below(8));
  plan.targets = 1 + unsigned(rng.below(std::max(2u, size)));
  plan.per_producer.resize(plan.producers);
  for (unsigned p = 0; p < plan.producers; ++p) {
    std::vector<std::uint32_t> seq(plan.subsets, 0);
    const std::size_t packets = 4 + rng.below(8 * size);
    for (std::size_t i = 0; i < packets; ++i) {
      core::Packet pkt;
      pkt.subset = std::uint32_t(rng.below(plan.subsets));
      pkt.seq = seq[pkt.subset]++;
      pkt.run_id = p;
      const std::size_t records = 1 + rng.below(8);
      for (std::size_t r = 0; r < records; ++r) {
        pkt.records.push_back({std::uint32_t(rng.next()), std::uint32_t(r)});
      }
      plan.total_records += records;
      plan.per_producer[p].push_back(std::move(pkt));
    }
  }
  return plan;
}

/// Fault schedule scaled to a machine shape and a measured (or estimated)
/// fault-free horizon: every window opens inside the first 80% of the
/// horizon and every crash recovers, so faulted runs always complete.
/// Size scales the number of windows (1 .. ~2 + size/2).
inline fault::FaultPlan gen_fault_plan(sim::Rng& rng,
                                       const asu::MachineParams& mp,
                                       double horizon, unsigned size) {
  return fault::generate_fault_plan(rng, mp.num_hosts, mp.num_asus,
                                    std::max(horizon, 1e-6), 2 + size / 2);
}

}  // namespace lmas::check

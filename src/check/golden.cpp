#include "check/golden.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/report.hpp"
#include "sim/random.hpp"

#ifndef LMAS_GOLDEN_DEFAULT_FILE
#define LMAS_GOLDEN_DEFAULT_FILE "tests/golden/golden_runs.json"
#endif

namespace lmas::check {

namespace {

constexpr const char* kSchema = "lmas-golden-v1";

GoldenCase fig9_case(std::string name, unsigned asus, unsigned alpha,
                     bool on_asus) {
  GoldenCase c;
  c.name = std::move(name);
  c.machine.num_hosts = 1;
  c.machine.num_asus = asus;
  c.machine.c = 8.0;
  c.config.total_records = std::size_t(1) << 14;
  c.config.log2_alpha_beta = 10;
  c.config.alpha = alpha;
  c.config.distribute_on_asus = on_asus;
  c.config.seed = 42;
  return c;
}

GoldenCase fig10_case(std::string name, core::RouterKind router) {
  GoldenCase c;
  c.name = std::move(name);
  c.machine.num_hosts = 2;
  c.machine.num_asus = 8;
  c.machine.c = 8.0;
  c.config.total_records = std::size_t(1) << 15;
  c.config.log2_alpha_beta = 10;
  c.config.alpha = 16;
  c.config.key_dist = core::KeyDist::HalfUniformHalfExp;
  c.config.sort_router = router;
  c.config.seed = 42;
  return c;
}

}  // namespace

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> kCases = [] {
    std::vector<GoldenCase> cases;
    cases.push_back(fig9_case("fig9-passive-d4", 4, 1, false));
    cases.push_back(fig9_case("fig9-alpha16-d4", 4, 16, true));
    cases.push_back(fig9_case("fig9-alpha64-d8", 8, 64, true));
    GoldenCase merge = fig9_case("fig9-alpha16-d8-merge", 8, 16, true);
    merge.config.run_merge_pass = true;
    cases.push_back(std::move(merge));
    cases.push_back(fig10_case("fig10-static", core::RouterKind::Static));
    cases.push_back(
        fig10_case("fig10-sr", core::RouterKind::SimpleRandomization));
    return cases;
  }();
  return kCases;
}

GoldenResult run_golden_case(const GoldenCase& c) {
  const core::DsmSortReport rep = run_dsm_sort(c.machine, c.config);
  GoldenResult r;
  r.name = c.name;
  r.digest = rep.digest;
  r.metrics_fingerprint = sim::fnv1a64(rep.metrics.dump());
  r.pass1_seconds = rep.pass1_seconds;
  r.records_in = rep.records_in;
  r.sim_events = rep.sim_events;
  r.ok = rep.ok();
  return r;
}

std::string default_golden_path() {
  if (const char* env = std::getenv("LMAS_GOLDEN_FILE")) return env;
  return LMAS_GOLDEN_DEFAULT_FILE;
}

obs::Json goldens_to_json(const std::vector<GoldenResult>& results) {
  obs::Json root = obs::Json::object();
  root["schema"] = kSchema;
  obs::Json runs = obs::Json::array();
  for (const auto& r : results) {
    obs::Json e = obs::Json::object();
    e["name"] = r.name;
    e["digest"] = obs::digest_to_string(r.digest);
    e["metrics_fingerprint"] = obs::digest_to_string(r.metrics_fingerprint);
    e["pass1_seconds"] = r.pass1_seconds;
    e["records_in"] = double(r.records_in);
    e["sim_events"] = double(r.sim_events);
    e["ok"] = r.ok;
    runs.push_back(std::move(e));
  }
  root["runs"] = std::move(runs);
  return root;
}

std::optional<std::vector<GoldenResult>> load_goldens(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  const auto doc = obs::Json::parse(buf.str());
  if (!doc || !doc->is_object()) return std::nullopt;
  const obs::Json* schema = doc->find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != kSchema) {
    return std::nullopt;
  }
  const obs::Json* runs = doc->find("runs");
  if (!runs || !runs->is_array()) return std::nullopt;

  std::vector<GoldenResult> out;
  for (const obs::Json& e : runs->items()) {
    if (!e.is_object()) return std::nullopt;
    GoldenResult r;
    const obs::Json* name = e.find("name");
    const obs::Json* digest = e.find("digest");
    const obs::Json* fp = e.find("metrics_fingerprint");
    const obs::Json* p1 = e.find("pass1_seconds");
    const obs::Json* rin = e.find("records_in");
    const obs::Json* ev = e.find("sim_events");
    const obs::Json* ok = e.find("ok");
    if (!name || !name->is_string() || !digest || !digest->is_string() ||
        !fp || !fp->is_string() || !p1 || !p1->is_number() || !rin ||
        !rin->is_number() || !ev || !ev->is_number() || !ok ||
        !ok->is_bool()) {
      return std::nullopt;
    }
    const auto d = obs::digest_from_string(digest->as_string());
    const auto m = obs::digest_from_string(fp->as_string());
    if (!d || !m) return std::nullopt;
    r.name = name->as_string();
    r.digest = *d;
    r.metrics_fingerprint = *m;
    r.pass1_seconds = p1->as_double();
    r.records_in = std::uint64_t(rin->as_int());
    r.sim_events = std::uint64_t(ev->as_int());
    r.ok = ok->as_bool();
    out.push_back(std::move(r));
  }
  return out;
}

bool write_goldens(const std::string& path,
                   const std::vector<GoldenResult>& results) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << goldens_to_json(results).dump(2) << '\n';
  return bool(f);
}

std::vector<GoldenMismatch> compare_goldens(
    const std::vector<GoldenResult>& pinned,
    const std::vector<GoldenResult>& fresh) {
  std::vector<GoldenMismatch> out;
  auto find = [](const std::vector<GoldenResult>& v, const std::string& n)
      -> const GoldenResult* {
    for (const auto& r : v) {
      if (r.name == n) return &r;
    }
    return nullptr;
  };
  char buf[256];
  for (const auto& p : pinned) {
    const GoldenResult* f = find(fresh, p.name);
    if (!f) {
      out.push_back({p.name, "pinned case no longer produced"});
      continue;
    }
    if (*f == p) continue;
    std::snprintf(
        buf, sizeof buf,
        "digest %s vs pinned %s; metrics %s vs %s; pass1 %.9g vs %.9g; "
        "events %llu vs %llu; ok %d vs %d",
        obs::digest_to_string(f->digest).c_str(),
        obs::digest_to_string(p.digest).c_str(),
        obs::digest_to_string(f->metrics_fingerprint).c_str(),
        obs::digest_to_string(p.metrics_fingerprint).c_str(),
        f->pass1_seconds, p.pass1_seconds,
        static_cast<unsigned long long>(f->sim_events),
        static_cast<unsigned long long>(p.sim_events), int(f->ok),
        int(p.ok));
    out.push_back({p.name, buf});
  }
  for (const auto& f : fresh) {
    if (!find(pinned, f.name)) {
      out.push_back({f.name, "new case not present in pinned file"});
    }
  }
  return out;
}

}  // namespace lmas::check
